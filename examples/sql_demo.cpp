/**
 * @file
 * SQL demo: the paper's SQLite deployment (Fig. 8) as an application.
 *
 * Boots the full CubicleOS library OS — PLAT, ALLOC, TIME, VFSCORE,
 * RAMFS as isolated cubicles, LIBC/RANDOM shared — loads the database
 * engine into its own application cubicle and executes SQL, printing
 * results and the cross-cubicle call graph afterwards.
 *
 * Usage:
 *   ./sql_demo                      # runs a built-in demo script
 *   ./sql_demo "SELECT 1+1 AS two"  # runs your statements
 */

#include <cstdio>
#include <memory>
#include <string>

#include "apps/minisql/db.h"
#include "libos/app.h"
#include "libos/stack.h"
#include "libos/ukapi.h"

using namespace cubicleos;

namespace {

const char *kDemoScript =
    "CREATE TABLE guests (id INTEGER PRIMARY KEY, name TEXT, "
    "room INTEGER);"
    "INSERT INTO guests VALUES (1, 'ada', 101), (2, 'brian', 102), "
    "(3, 'grace', 103), (4, 'linus', 101);"
    "CREATE INDEX room_idx ON guests(room);"
    "SELECT room, count(*) AS occupants FROM guests GROUP BY room "
    "ORDER BY room";

void
printResult(const minisql::ResultSet &rs)
{
    if (rs.columns.empty())
        return;
    for (const auto &col : rs.columns)
        std::printf("%-14s", col.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < rs.columns.size(); ++i)
        std::printf("%-14s", "------------");
    std::printf("\n");
    for (const auto &row : rs.rows) {
        for (const auto &v : row)
            std::printf("%-14s", v.asText().c_str());
        std::printf("\n");
    }
    std::printf("(%zu rows)\n", rs.rows.size());
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string sql = argc > 1 ? argv[1] : kDemoScript;

    core::SystemConfig cfg;
    cfg.numPages = 16384; // 64 MiB simulated machine
    core::System sys(cfg);
    libos::addLibosComponents(sys);
    auto *app = static_cast<libos::AppComponent *>(
        &sys.addComponent(std::make_unique<libos::AppComponent>(
            "sqlite")));
    libos::finishBoot(sys);
    std::printf("[boot] %zu cubicles up (Fig. 8 deployment)\n\n",
                sys.cubicleCount());

    app->run([&] {
        libos::CubicleFileApi fs(sys, "ramfs");
        minisql::DbAllocator mem;
        mem.alloc = [&](std::size_t n) { return sys.heapAlloc(n); };
        mem.free = [&](void *p) { sys.heapFree(p); };
        minisql::Database db(&fs, "/demo.db", 256, mem);
        if (db.open() != 0) {
            std::printf("cannot open database\n");
            return;
        }
        try {
            printResult(db.exec(sql));
        } catch (const minisql::SqlError &err) {
            std::printf("%s\n", err.what());
        }
    });

    std::printf("\ncross-cubicle call graph for this run:\n");
    for (const auto &edge : sys.stats().edges()) {
        std::printf("  %-10s -> %-10s %10llu calls\n",
                    sys.monitor().cubicle(edge.caller).name.c_str(),
                    sys.monitor().cubicle(edge.callee).name.c_str(),
                    static_cast<unsigned long long>(edge.count));
    }
    std::printf("traps: %llu, retags: %llu (trap-and-map)\n",
                static_cast<unsigned long long>(sys.stats().traps()),
                static_cast<unsigned long long>(sys.stats().retags()));
    return 0;
}
