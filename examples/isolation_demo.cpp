/**
 * @file
 * Isolation demo: the threat model (paper §2.3) in action.
 *
 * Walks through the attacks CubicleOS is designed to stop, using the
 * real library OS deployment: a compromised file system trying to
 * steal another component's secrets, a dangling window pointer, a
 * hostile binary with embedded wrpkru/syscall instructions, and a
 * code-injection attempt.
 *
 * Usage: ./isolation_demo
 */

#include <cstdio>
#include <cstring>

#include "core/codescan.h"
#include "core/system.h"
#include "libos/app.h"
#include "libos/stack.h"

using namespace cubicleos;

namespace {

int g_check = 0;

void
scenario(const char *title)
{
    std::printf("\n[%d] %s\n", ++g_check, title);
}

void
verdict(bool blocked, const char *detail)
{
    std::printf("    -> %s: %s\n", blocked ? "BLOCKED" : "ALLOWED",
                detail);
}

} // namespace

int
main()
{
    std::printf("CubicleOS isolation demo — the §2.3 threat model\n");

    core::SystemConfig cfg;
    cfg.numPages = 8192;
    core::System sys(cfg);
    libos::addLibosComponents(sys);
    auto *tls = static_cast<libos::AppComponent *>(
        &sys.addComponent(std::make_unique<libos::AppComponent>(
            "tls")));
    auto *evil = static_cast<libos::AppComponent *>(
        &sys.addComponent(std::make_unique<libos::AppComponent>(
            "evil")));
    libos::finishBoot(sys);

    // The TLS component holds a key in its cubicle.
    char *secret = nullptr;
    tls->run([&] {
        secret = static_cast<char *>(sys.heapAlloc(32));
        std::strcpy(secret, "-----TLS PRIVATE KEY-----");
    });

    scenario("compromised component reads another cubicle's TLS key "
             "(CVE-2018-5410 motivation)");
    evil->run([&] {
        try {
            sys.touch(secret, 25, hw::Access::kRead);
            verdict(false, "secret disclosed!");
        } catch (const hw::CubicleFault &fault) {
            verdict(true, fault.what());
        }
    });

    scenario("legitimate sharing through a window, then revocation");
    core::Wid wid = 0;
    tls->run([&] {
        wid = sys.windowInit();
        sys.windowAdd(wid, secret, 32);
        sys.windowOpen(wid, evil->self());
    });
    evil->run([&] {
        sys.touch(secret, 25, hw::Access::kRead);
        verdict(false, "access granted while the window is open "
                       "(zero-copy)");
    });
    tls->run([&] {
        sys.windowClose(wid, evil->self());
        sys.touch(secret, 32, hw::Access::kWrite); // owner reclaims
    });
    evil->run([&] {
        try {
            sys.touch(secret, 25, hw::Access::kRead);
            verdict(false, "stale pointer still works!");
        } catch (const hw::CubicleFault &) {
            verdict(true, "window closed; dangling pointer faults "
                          "(temporal isolation)");
        }
    });

    scenario("hostile binary containing wrpkru (0F 01 EF)");
    {
        std::vector<uint8_t> image(4096, 0x90);
        image[1000] = 0x0F;
        image[1001] = 0x01;
        image[1002] = 0xEF;
        if (auto hit = core::scanCodeImage(image)) {
            std::printf("    loader scan: found '%s' at offset %zu\n",
                        hit->mnemonic.c_str(), hit->offset);
            verdict(true, "loader refuses to map the image");
        } else {
            verdict(false, "scanner missed the instruction!");
        }
    }

    scenario("code injection: execute shellcode written to the heap");
    evil->run([&] {
        auto *shellcode = static_cast<uint8_t *>(sys.heapAlloc(64));
        shellcode[0] = 0xC3; // ret
        try {
            sys.checkExec(shellcode);
            verdict(false, "heap executed!");
        } catch (const hw::CubicleFault &) {
            verdict(true, "data pages carry no execute permission");
        }
    });

    scenario("jump into another cubicle's code without a trampoline");
    evil->run([&] {
        const auto &code = sys.monitor().cubicle(tls->self()).codeRange;
        try {
            sys.checkExec(code.ptr);
            verdict(false, "cross-cubicle jump executed!");
        } catch (const hw::CubicleFault &) {
            verdict(true, "modified-MPK execute semantics fault the "
                          "fetch (CFI)");
        }
    });

    std::printf("\n%llu isolation violations recorded by the "
                "monitor; the secret is intact: \"%s\"\n",
                static_cast<unsigned long long>(
                    sys.stats().violations()),
                secret);
    return 0;
}
