/**
 * @file
 * Web server demo: the paper's NGINX deployment (Fig. 5).
 *
 * Boots the networked library OS — eight isolated cubicles including
 * the LWIP TCP/IP stack and the NETDEV driver — serves static files
 * from RAMFS over HTTP, fetches them with an in-process TCP client,
 * and prints the per-edge call counts of the deployment graph.
 *
 * Usage: ./webserver_demo [file_size_bytes...]
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "apps/httpd/harness.h"

using namespace cubicleos;

int
main(int argc, char **argv)
{
    std::vector<std::size_t> sizes;
    for (int i = 1; i < argc; ++i)
        sizes.push_back(static_cast<std::size_t>(std::atoll(argv[i])));
    if (sizes.empty())
        sizes = {1024, 65536, 1 << 20};

    std::printf("booting the NGINX deployment (8 isolated "
                "cubicles)...\n");
    httpd::HttpHarness harness(core::IsolationMode::kFull, 65536);
    for (std::size_t size : sizes) {
        harness.createFile("/f" + std::to_string(size), size);
    }
    std::printf("serving %zu files from RAMFS via VFSCORE\n\n",
                sizes.size());

    std::printf("%-16s %8s %12s %14s\n", "request", "status",
                "bytes", "latency(ms)");
    for (std::size_t size : sizes) {
        const std::string path = "/f" + std::to_string(size);
        const auto res = harness.fetch(path);
        std::printf("GET %-12s %8d %12zu %14.2f\n", path.c_str(),
                    res.status, res.bodyBytes, res.latencyMs());
    }
    const auto missing = harness.fetch("/missing");
    std::printf("GET %-12s %8d %12zu %14.2f\n", "/missing",
                missing.status, missing.bodyBytes,
                missing.latencyMs());

    auto &sys = harness.sys();
    std::printf("\ncross-cubicle call graph (cf. paper Fig. 5):\n");
    for (const auto &edge : sys.stats().edges()) {
        std::printf("  %-10s -> %-10s %10llu calls\n",
                    sys.monitor().cubicle(edge.caller).name.c_str(),
                    sys.monitor().cubicle(edge.callee).name.c_str(),
                    static_cast<unsigned long long>(edge.count));
    }
    std::printf("wire: %llu frames, %llu bytes; traps: %llu, "
                "retags: %llu\n",
                static_cast<unsigned long long>(
                    harness.wire().framesCarried()),
                static_cast<unsigned long long>(
                    harness.wire().bytesCarried()),
                static_cast<unsigned long long>(sys.stats().traps()),
                static_cast<unsigned long long>(sys.stats().retags()));
    return 0;
}
