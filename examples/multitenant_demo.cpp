/**
 * @file
 * Multi-tenant demo: 64 logical cubicles on 16 physical MPK tags.
 *
 * Boots the virtual-protection-key deployment (DESIGN.md §14): the
 * networked library OS plus one cubicle group per tenant — an NGINX
 * instance serving a private RAMFS subtree and a request-log cubicle.
 * With 26 tenants that is 64 logical cubicles, four times the 16 tags
 * the MPK hardware has; the monitor's key table multiplexes them onto
 * a dynamic pool of physical tags, parking idle tenants under a
 * reserved tag and faulting them back in on their next request.
 *
 * Usage: ./multitenant_demo [tenants]   (default 26 → 64 cubicles)
 *
 * Tip: CUBICLEOS_TRACE_EVICTIONS=1 prints every park/fault-back-in
 * transition as it happens.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "baselines/deployments.h"

using namespace cubicleos;

int
main(int argc, char **argv)
{
    const int tenants = argc > 1 ? std::atoi(argv[1]) : 26;
    if (tenants < 1 || tenants > 58) {
        std::fprintf(stderr, "tenants must be in [1, 58]\n");
        return 1;
    }

    std::printf("booting %d tenant groups on the networked stack...\n",
                tenants);
    auto h = baselines::makeMultiTenantHttpd(
        tenants, core::IsolationMode::kFull, 65536);
    auto &sys = h->sys();
    std::printf("%zu logical cubicles on %d physical MPK tags "
                "(dynamic pool: 4, 1 parked tag)\n\n",
                sys.cubicleCount(), hw::kNumPhysPkeys);

    // Cold round: every tenant serves one request. With far more
    // cubicles than tags, most tenants start parked and this round
    // walks the full evict / fault-back-in path.
    std::printf("cold round — one request per tenant:\n");
    for (int t = 0; t < tenants; ++t) {
        h->createFile(t, "/index.html", 2048);
        const auto res = h->fetch(t, "/index.html");
        if (res.status != 200) {
            std::fprintf(stderr, "tenant %d: status %d\n", t,
                         res.status);
            return 1;
        }
    }
    std::printf("  served %d tenants; evictions: %llu, "
                "fault-ins: %llu, tag hit rate: %.1f%%\n\n",
                tenants,
                static_cast<unsigned long long>(sys.stats().evictions()),
                static_cast<unsigned long long>(sys.stats().faultIns()),
                sys.stats().tagHitRatePercent());

    // Steady state: a small working set served in per-tenant batches —
    // the pattern a fronting load balancer produces. Each group stays
    // resident across its burst, so the hit rate recovers.
    sys.stats().reset();
    const int hot = tenants < 6 ? tenants : 6;
    std::printf("steady round — %d-tenant working set, batches of 8:\n",
                hot);
    for (int t = 0; t < hot; ++t) {
        for (int i = 0; i < 8; ++i) {
            if (h->fetch(t, "/index.html").status != 200) {
                std::fprintf(stderr, "tenant %d: batch fetch failed\n",
                             t);
                return 1;
            }
        }
    }
    std::printf("  evictions: %llu, fault-ins: %llu, "
                "tag hit rate: %.1f%%\n\n",
                static_cast<unsigned long long>(sys.stats().evictions()),
                static_cast<unsigned long long>(sys.stats().faultIns()),
                sys.stats().tagHitRatePercent());

    // Per-tenant accounting crossed each tenant's private log cubicle.
    std::printf("per-tenant request logs (isolated log cubicles):\n");
    for (int t = 0; t < hot; ++t) {
        std::printf("  tenant%-3d %6llu requests\n", t,
                    static_cast<unsigned long long>(
                        h->tenantLog(t).totalRequests()));
    }
    return 0;
}
