/**
 * @file
 * Quickstart: the paper's Figure 1c / Figure 2 walkthrough in code.
 *
 * Two components, FOO and BAR. FOO owns a buffer; BAR exports a
 * function bar(ptr, a) that writes ptr[a]. With cubicles alone the
 * write faults; after FOO opens a window for BAR, the same pointer
 * works zero-copy; after FOO reclaims the buffer, BAR's stashed
 * pointer faults again.
 *
 * Build & run: ./quickstart
 */

#include <cstdio>
#include <cstring>

#include "core/system.h"

using namespace cubicleos;

namespace {

/** BAR: exports bar(ptr, a), which writes 0xAA at ptr[a] (Fig. 1). */
class BarComponent : public core::Component {
  public:
    core::ComponentSpec spec() const override
    {
        core::ComponentSpec s;
        s.name = "bar";
        return s;
    }

    void registerExports(core::Exporter &exp) override
    {
        exp.fn<void(char *, int)>("bar", [this](char *ptr, int a) {
            // The callee accesses the caller's memory directly —
            // ordinary call semantics, policed by MPK + windows.
            sys()->touch(ptr + a, 1, hw::Access::kWrite);
            ptr[a] = static_cast<char>(0xAA);
        });
    }
};

/** FOO: owns the array that gets shared through a window. */
class FooComponent : public core::Component {
  public:
    core::ComponentSpec spec() const override
    {
        core::ComponentSpec s;
        s.name = "foo";
        return s;
    }

    void registerExports(core::Exporter &) override {}
};

} // namespace

int
main()
{
    std::printf("CubicleOS quickstart: cubicles, windows, "
                "cross-cubicle calls\n\n");

    core::SystemConfig cfg;
    cfg.numPages = 1024; // 4 MiB simulated machine
    core::System sys(cfg);
    sys.addComponent(std::make_unique<FooComponent>());
    sys.addComponent(std::make_unique<BarComponent>());
    sys.boot();
    std::printf("[boot] 2 components loaded into isolated cubicles "
                "(one MPK key each)\n");

    auto bar = sys.resolve<void(char *, int)>("bar", "bar");
    const core::Cid foo = sys.cidOf("foo");
    const core::Cid bar_cid = sys.cidOf("bar");

    sys.runAs(foo, [&] {
        // foo: char array[10]; int a = 5;   (Figure 1)
        core::StackFrame frame(sys);
        char *array =
            static_cast<char *>(frame.allocPageAligned(10));
        std::memset(array, 0, 10);
        const int a = 5;

        // 1. Without a window the cross-cubicle access faults.
        std::printf("[1] calling bar(array, %d) with no window... ",
                    a);
        try {
            bar(array, a);
            std::printf("UNEXPECTED: write succeeded\n");
        } catch (const hw::CubicleFault &fault) {
            std::printf("blocked:\n      %s\n", fault.what());
        }

        // 2. open_window(array, BAR); bar(array, a); close_window.
        std::printf("[2] open_window(array, BAR); bar(array, a)... ");
        const core::Wid wid = sys.windowInit();
        sys.windowAdd(wid, array, 10);
        sys.windowOpen(wid, bar_cid);
        bar(array, a);
        std::printf("ok: array[%d] = 0x%02X (zero-copy)\n", a,
                    static_cast<unsigned char>(array[a]));
        sys.windowClose(wid, bar_cid);

        // 3. Causal tag consistency: after close + owner reclaim,
        //    BAR's access faults again.
        sys.touch(array, 10, hw::Access::kWrite); // owner reclaims
        std::printf("[3] window closed, owner reclaimed; calling "
                    "bar again... ");
        try {
            bar(array, a);
            std::printf("UNEXPECTED: write succeeded\n");
        } catch (const hw::CubicleFault &) {
            std::printf("blocked (temporal isolation)\n");
        }
        sys.windowDestroy(wid);
    });

    std::printf("\nstats: %llu cross-cubicle calls, %llu traps, "
                "%llu retags, %llu wrpkru writes\n",
                static_cast<unsigned long long>(
                    sys.stats().totalCalls()),
                static_cast<unsigned long long>(sys.stats().traps()),
                static_cast<unsigned long long>(sys.stats().retags()),
                static_cast<unsigned long long>(sys.stats().wrpkrus()));
    return 0;
}
