
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/codescan.cc" "src/core/CMakeFiles/cubicle_core.dir/codescan.cc.o" "gcc" "src/core/CMakeFiles/cubicle_core.dir/codescan.cc.o.d"
  "/root/repo/src/core/monitor.cc" "src/core/CMakeFiles/cubicle_core.dir/monitor.cc.o" "gcc" "src/core/CMakeFiles/cubicle_core.dir/monitor.cc.o.d"
  "/root/repo/src/core/system.cc" "src/core/CMakeFiles/cubicle_core.dir/system.cc.o" "gcc" "src/core/CMakeFiles/cubicle_core.dir/system.cc.o.d"
  "/root/repo/src/core/verifier/insn.cc" "src/core/CMakeFiles/cubicle_core.dir/verifier/insn.cc.o" "gcc" "src/core/CMakeFiles/cubicle_core.dir/verifier/insn.cc.o.d"
  "/root/repo/src/core/verifier/lint.cc" "src/core/CMakeFiles/cubicle_core.dir/verifier/lint.cc.o" "gcc" "src/core/CMakeFiles/cubicle_core.dir/verifier/lint.cc.o.d"
  "/root/repo/src/core/verifier/scanner.cc" "src/core/CMakeFiles/cubicle_core.dir/verifier/scanner.cc.o" "gcc" "src/core/CMakeFiles/cubicle_core.dir/verifier/scanner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/cubicle_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cubicle_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
