
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/codescan_test.cc" "tests/CMakeFiles/core_tests.dir/core/codescan_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/codescan_test.cc.o.d"
  "/root/repo/tests/core/concurrency_test.cc" "tests/CMakeFiles/core_tests.dir/core/concurrency_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/concurrency_test.cc.o.d"
  "/root/repo/tests/core/hot_window_test.cc" "tests/CMakeFiles/core_tests.dir/core/hot_window_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/hot_window_test.cc.o.d"
  "/root/repo/tests/core/lint_test.cc" "tests/CMakeFiles/core_tests.dir/core/lint_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/lint_test.cc.o.d"
  "/root/repo/tests/core/monitor_test.cc" "tests/CMakeFiles/core_tests.dir/core/monitor_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/monitor_test.cc.o.d"
  "/root/repo/tests/core/system_test.cc" "tests/CMakeFiles/core_tests.dir/core/system_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/system_test.cc.o.d"
  "/root/repo/tests/core/threat_model_test.cc" "tests/CMakeFiles/core_tests.dir/core/threat_model_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/threat_model_test.cc.o.d"
  "/root/repo/tests/core/verifier_diff_test.cc" "tests/CMakeFiles/core_tests.dir/core/verifier_diff_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/verifier_diff_test.cc.o.d"
  "/root/repo/tests/core/verifier_test.cc" "tests/CMakeFiles/core_tests.dir/core/verifier_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/verifier_test.cc.o.d"
  "/root/repo/tests/core/window_test.cc" "tests/CMakeFiles/core_tests.dir/core/window_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/window_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cubicle_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cubicle_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/cubicle_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
