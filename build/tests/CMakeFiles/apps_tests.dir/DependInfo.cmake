
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/apps/harness_lint_test.cc" "tests/CMakeFiles/apps_tests.dir/apps/harness_lint_test.cc.o" "gcc" "tests/CMakeFiles/apps_tests.dir/apps/harness_lint_test.cc.o.d"
  "/root/repo/tests/apps/httpd_test.cc" "tests/CMakeFiles/apps_tests.dir/apps/httpd_test.cc.o" "gcc" "tests/CMakeFiles/apps_tests.dir/apps/httpd_test.cc.o.d"
  "/root/repo/tests/apps/speedtest_test.cc" "tests/CMakeFiles/apps_tests.dir/apps/speedtest_test.cc.o" "gcc" "tests/CMakeFiles/apps_tests.dir/apps/speedtest_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/minisql.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/httpd.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/libos/CMakeFiles/cubicle_libos.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cubicle_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cubicle_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/cubicle_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
