# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/hw_tests[1]_include.cmake")
include("/root/repo/build/tests/mem_tests[1]_include.cmake")
include("/root/repo/build/tests/libos_tests[1]_include.cmake")
include("/root/repo/build/tests/minisql_tests[1]_include.cmake")
include("/root/repo/build/tests/apps_tests[1]_include.cmake")
include("/root/repo/build/tests/baselines_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
