# Empty compiler generated dependencies file for webserver_demo.
# This may be replaced when dependencies are built.
