
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/webserver_demo.cpp" "examples/CMakeFiles/webserver_demo.dir/webserver_demo.cpp.o" "gcc" "examples/CMakeFiles/webserver_demo.dir/webserver_demo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitize/src/baselines/CMakeFiles/baselines.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/apps/CMakeFiles/httpd.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/apps/CMakeFiles/minisql.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/libos/CMakeFiles/cubicle_libos.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/core/CMakeFiles/cubicle_core.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/mem/CMakeFiles/cubicle_mem.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/hw/CMakeFiles/cubicle_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
