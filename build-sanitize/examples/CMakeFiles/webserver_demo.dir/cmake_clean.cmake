file(REMOVE_RECURSE
  "CMakeFiles/webserver_demo.dir/webserver_demo.cpp.o"
  "CMakeFiles/webserver_demo.dir/webserver_demo.cpp.o.d"
  "webserver_demo"
  "webserver_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webserver_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
