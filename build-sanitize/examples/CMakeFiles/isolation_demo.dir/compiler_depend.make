# Empty compiler generated dependencies file for isolation_demo.
# This may be replaced when dependencies are built.
