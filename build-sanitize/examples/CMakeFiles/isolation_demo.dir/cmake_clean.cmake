file(REMOVE_RECURSE
  "CMakeFiles/isolation_demo.dir/isolation_demo.cpp.o"
  "CMakeFiles/isolation_demo.dir/isolation_demo.cpp.o.d"
  "isolation_demo"
  "isolation_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isolation_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
