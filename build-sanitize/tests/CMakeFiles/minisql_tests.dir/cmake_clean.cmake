file(REMOVE_RECURSE
  "CMakeFiles/minisql_tests.dir/minisql/btree_sweep_test.cc.o"
  "CMakeFiles/minisql_tests.dir/minisql/btree_sweep_test.cc.o.d"
  "CMakeFiles/minisql_tests.dir/minisql/btree_test.cc.o"
  "CMakeFiles/minisql_tests.dir/minisql/btree_test.cc.o.d"
  "CMakeFiles/minisql_tests.dir/minisql/pager_test.cc.o"
  "CMakeFiles/minisql_tests.dir/minisql/pager_test.cc.o.d"
  "CMakeFiles/minisql_tests.dir/minisql/parser_test.cc.o"
  "CMakeFiles/minisql_tests.dir/minisql/parser_test.cc.o.d"
  "CMakeFiles/minisql_tests.dir/minisql/sql_test.cc.o"
  "CMakeFiles/minisql_tests.dir/minisql/sql_test.cc.o.d"
  "CMakeFiles/minisql_tests.dir/minisql/txn_property_test.cc.o"
  "CMakeFiles/minisql_tests.dir/minisql/txn_property_test.cc.o.d"
  "CMakeFiles/minisql_tests.dir/minisql/value_test.cc.o"
  "CMakeFiles/minisql_tests.dir/minisql/value_test.cc.o.d"
  "minisql_tests"
  "minisql_tests.pdb"
  "minisql_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minisql_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
