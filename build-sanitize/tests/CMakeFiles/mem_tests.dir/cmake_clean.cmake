file(REMOVE_RECURSE
  "CMakeFiles/mem_tests.dir/mem/arena_test.cc.o"
  "CMakeFiles/mem_tests.dir/mem/arena_test.cc.o.d"
  "CMakeFiles/mem_tests.dir/mem/page_meta_test.cc.o"
  "CMakeFiles/mem_tests.dir/mem/page_meta_test.cc.o.d"
  "CMakeFiles/mem_tests.dir/mem/suballoc_test.cc.o"
  "CMakeFiles/mem_tests.dir/mem/suballoc_test.cc.o.d"
  "mem_tests"
  "mem_tests.pdb"
  "mem_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
