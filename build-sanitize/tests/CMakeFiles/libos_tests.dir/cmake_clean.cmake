file(REMOVE_RECURSE
  "CMakeFiles/libos_tests.dir/libos/components_test.cc.o"
  "CMakeFiles/libos_tests.dir/libos/components_test.cc.o.d"
  "CMakeFiles/libos_tests.dir/libos/fs_test.cc.o"
  "CMakeFiles/libos_tests.dir/libos/fs_test.cc.o.d"
  "CMakeFiles/libos_tests.dir/libos/net_stack_test.cc.o"
  "CMakeFiles/libos_tests.dir/libos/net_stack_test.cc.o.d"
  "CMakeFiles/libos_tests.dir/libos/netdev_test.cc.o"
  "CMakeFiles/libos_tests.dir/libos/netdev_test.cc.o.d"
  "CMakeFiles/libos_tests.dir/libos/tcp_property_test.cc.o"
  "CMakeFiles/libos_tests.dir/libos/tcp_property_test.cc.o.d"
  "CMakeFiles/libos_tests.dir/libos/tcp_test.cc.o"
  "CMakeFiles/libos_tests.dir/libos/tcp_test.cc.o.d"
  "CMakeFiles/libos_tests.dir/libos/ukapi_test.cc.o"
  "CMakeFiles/libos_tests.dir/libos/ukapi_test.cc.o.d"
  "libos_tests"
  "libos_tests.pdb"
  "libos_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/libos_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
