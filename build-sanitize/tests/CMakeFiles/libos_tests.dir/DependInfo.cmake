
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/libos/components_test.cc" "tests/CMakeFiles/libos_tests.dir/libos/components_test.cc.o" "gcc" "tests/CMakeFiles/libos_tests.dir/libos/components_test.cc.o.d"
  "/root/repo/tests/libos/fs_test.cc" "tests/CMakeFiles/libos_tests.dir/libos/fs_test.cc.o" "gcc" "tests/CMakeFiles/libos_tests.dir/libos/fs_test.cc.o.d"
  "/root/repo/tests/libos/net_stack_test.cc" "tests/CMakeFiles/libos_tests.dir/libos/net_stack_test.cc.o" "gcc" "tests/CMakeFiles/libos_tests.dir/libos/net_stack_test.cc.o.d"
  "/root/repo/tests/libos/netdev_test.cc" "tests/CMakeFiles/libos_tests.dir/libos/netdev_test.cc.o" "gcc" "tests/CMakeFiles/libos_tests.dir/libos/netdev_test.cc.o.d"
  "/root/repo/tests/libos/tcp_property_test.cc" "tests/CMakeFiles/libos_tests.dir/libos/tcp_property_test.cc.o" "gcc" "tests/CMakeFiles/libos_tests.dir/libos/tcp_property_test.cc.o.d"
  "/root/repo/tests/libos/tcp_test.cc" "tests/CMakeFiles/libos_tests.dir/libos/tcp_test.cc.o" "gcc" "tests/CMakeFiles/libos_tests.dir/libos/tcp_test.cc.o.d"
  "/root/repo/tests/libos/ukapi_test.cc" "tests/CMakeFiles/libos_tests.dir/libos/ukapi_test.cc.o" "gcc" "tests/CMakeFiles/libos_tests.dir/libos/ukapi_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitize/src/libos/CMakeFiles/cubicle_libos.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/core/CMakeFiles/cubicle_core.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/mem/CMakeFiles/cubicle_mem.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/hw/CMakeFiles/cubicle_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
