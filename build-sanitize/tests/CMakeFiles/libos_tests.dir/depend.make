# Empty dependencies file for libos_tests.
# This may be replaced when dependencies are built.
