file(REMOVE_RECURSE
  "CMakeFiles/hw_tests.dir/hw/cycles_test.cc.o"
  "CMakeFiles/hw_tests.dir/hw/cycles_test.cc.o.d"
  "CMakeFiles/hw_tests.dir/hw/mpk_test.cc.o"
  "CMakeFiles/hw_tests.dir/hw/mpk_test.cc.o.d"
  "CMakeFiles/hw_tests.dir/hw/page_table_test.cc.o"
  "CMakeFiles/hw_tests.dir/hw/page_table_test.cc.o.d"
  "hw_tests"
  "hw_tests.pdb"
  "hw_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
