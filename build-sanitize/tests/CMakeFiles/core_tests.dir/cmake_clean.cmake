file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/codescan_test.cc.o"
  "CMakeFiles/core_tests.dir/core/codescan_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/concurrency_test.cc.o"
  "CMakeFiles/core_tests.dir/core/concurrency_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/hot_window_test.cc.o"
  "CMakeFiles/core_tests.dir/core/hot_window_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/lint_test.cc.o"
  "CMakeFiles/core_tests.dir/core/lint_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/monitor_test.cc.o"
  "CMakeFiles/core_tests.dir/core/monitor_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/system_test.cc.o"
  "CMakeFiles/core_tests.dir/core/system_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/threat_model_test.cc.o"
  "CMakeFiles/core_tests.dir/core/threat_model_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/verifier_diff_test.cc.o"
  "CMakeFiles/core_tests.dir/core/verifier_diff_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/verifier_test.cc.o"
  "CMakeFiles/core_tests.dir/core/verifier_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/window_test.cc.o"
  "CMakeFiles/core_tests.dir/core/window_test.cc.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
