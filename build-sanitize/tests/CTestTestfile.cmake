# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-sanitize/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-sanitize/tests/hw_tests[1]_include.cmake")
include("/root/repo/build-sanitize/tests/mem_tests[1]_include.cmake")
include("/root/repo/build-sanitize/tests/libos_tests[1]_include.cmake")
include("/root/repo/build-sanitize/tests/minisql_tests[1]_include.cmake")
include("/root/repo/build-sanitize/tests/apps_tests[1]_include.cmake")
include("/root/repo/build-sanitize/tests/baselines_tests[1]_include.cmake")
include("/root/repo/build-sanitize/tests/core_tests[1]_include.cmake")
