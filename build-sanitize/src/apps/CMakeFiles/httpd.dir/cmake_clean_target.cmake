file(REMOVE_RECURSE
  "libhttpd.a"
)
