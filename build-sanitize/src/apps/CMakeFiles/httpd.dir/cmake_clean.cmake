file(REMOVE_RECURSE
  "CMakeFiles/httpd.dir/httpd/harness.cc.o"
  "CMakeFiles/httpd.dir/httpd/harness.cc.o.d"
  "CMakeFiles/httpd.dir/httpd/httpd.cc.o"
  "CMakeFiles/httpd.dir/httpd/httpd.cc.o.d"
  "libhttpd.a"
  "libhttpd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/httpd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
