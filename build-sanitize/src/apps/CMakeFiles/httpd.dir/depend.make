# Empty dependencies file for httpd.
# This may be replaced when dependencies are built.
