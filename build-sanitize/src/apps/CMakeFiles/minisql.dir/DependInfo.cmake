
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/minisql/btree.cc" "src/apps/CMakeFiles/minisql.dir/minisql/btree.cc.o" "gcc" "src/apps/CMakeFiles/minisql.dir/minisql/btree.cc.o.d"
  "/root/repo/src/apps/minisql/catalog.cc" "src/apps/CMakeFiles/minisql.dir/minisql/catalog.cc.o" "gcc" "src/apps/CMakeFiles/minisql.dir/minisql/catalog.cc.o.d"
  "/root/repo/src/apps/minisql/db.cc" "src/apps/CMakeFiles/minisql.dir/minisql/db.cc.o" "gcc" "src/apps/CMakeFiles/minisql.dir/minisql/db.cc.o.d"
  "/root/repo/src/apps/minisql/pager.cc" "src/apps/CMakeFiles/minisql.dir/minisql/pager.cc.o" "gcc" "src/apps/CMakeFiles/minisql.dir/minisql/pager.cc.o.d"
  "/root/repo/src/apps/minisql/parser.cc" "src/apps/CMakeFiles/minisql.dir/minisql/parser.cc.o" "gcc" "src/apps/CMakeFiles/minisql.dir/minisql/parser.cc.o.d"
  "/root/repo/src/apps/minisql/speedtest.cc" "src/apps/CMakeFiles/minisql.dir/minisql/speedtest.cc.o" "gcc" "src/apps/CMakeFiles/minisql.dir/minisql/speedtest.cc.o.d"
  "/root/repo/src/apps/minisql/value.cc" "src/apps/CMakeFiles/minisql.dir/minisql/value.cc.o" "gcc" "src/apps/CMakeFiles/minisql.dir/minisql/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitize/src/libos/CMakeFiles/cubicle_libos.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/core/CMakeFiles/cubicle_core.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/mem/CMakeFiles/cubicle_mem.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/hw/CMakeFiles/cubicle_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
