file(REMOVE_RECURSE
  "CMakeFiles/minisql.dir/minisql/btree.cc.o"
  "CMakeFiles/minisql.dir/minisql/btree.cc.o.d"
  "CMakeFiles/minisql.dir/minisql/catalog.cc.o"
  "CMakeFiles/minisql.dir/minisql/catalog.cc.o.d"
  "CMakeFiles/minisql.dir/minisql/db.cc.o"
  "CMakeFiles/minisql.dir/minisql/db.cc.o.d"
  "CMakeFiles/minisql.dir/minisql/pager.cc.o"
  "CMakeFiles/minisql.dir/minisql/pager.cc.o.d"
  "CMakeFiles/minisql.dir/minisql/parser.cc.o"
  "CMakeFiles/minisql.dir/minisql/parser.cc.o.d"
  "CMakeFiles/minisql.dir/minisql/speedtest.cc.o"
  "CMakeFiles/minisql.dir/minisql/speedtest.cc.o.d"
  "CMakeFiles/minisql.dir/minisql/value.cc.o"
  "CMakeFiles/minisql.dir/minisql/value.cc.o.d"
  "libminisql.a"
  "libminisql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minisql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
