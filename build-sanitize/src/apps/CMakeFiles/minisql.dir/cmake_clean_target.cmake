file(REMOVE_RECURSE
  "libminisql.a"
)
