# Empty compiler generated dependencies file for minisql.
# This may be replaced when dependencies are built.
