file(REMOVE_RECURSE
  "CMakeFiles/baselines.dir/deployments.cc.o"
  "CMakeFiles/baselines.dir/deployments.cc.o.d"
  "CMakeFiles/baselines.dir/memfs.cc.o"
  "CMakeFiles/baselines.dir/memfs.cc.o.d"
  "CMakeFiles/baselines.dir/microkernel.cc.o"
  "CMakeFiles/baselines.dir/microkernel.cc.o.d"
  "libbaselines.a"
  "libbaselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
