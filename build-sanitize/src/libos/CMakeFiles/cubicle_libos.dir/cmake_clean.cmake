file(REMOVE_RECURSE
  "CMakeFiles/cubicle_libos.dir/alloc.cc.o"
  "CMakeFiles/cubicle_libos.dir/alloc.cc.o.d"
  "CMakeFiles/cubicle_libos.dir/libc.cc.o"
  "CMakeFiles/cubicle_libos.dir/libc.cc.o.d"
  "CMakeFiles/cubicle_libos.dir/lwip.cc.o"
  "CMakeFiles/cubicle_libos.dir/lwip.cc.o.d"
  "CMakeFiles/cubicle_libos.dir/netdev.cc.o"
  "CMakeFiles/cubicle_libos.dir/netdev.cc.o.d"
  "CMakeFiles/cubicle_libos.dir/plat.cc.o"
  "CMakeFiles/cubicle_libos.dir/plat.cc.o.d"
  "CMakeFiles/cubicle_libos.dir/ramfs.cc.o"
  "CMakeFiles/cubicle_libos.dir/ramfs.cc.o.d"
  "CMakeFiles/cubicle_libos.dir/sockapi.cc.o"
  "CMakeFiles/cubicle_libos.dir/sockapi.cc.o.d"
  "CMakeFiles/cubicle_libos.dir/stack.cc.o"
  "CMakeFiles/cubicle_libos.dir/stack.cc.o.d"
  "CMakeFiles/cubicle_libos.dir/tcpip.cc.o"
  "CMakeFiles/cubicle_libos.dir/tcpip.cc.o.d"
  "CMakeFiles/cubicle_libos.dir/time.cc.o"
  "CMakeFiles/cubicle_libos.dir/time.cc.o.d"
  "CMakeFiles/cubicle_libos.dir/ukapi.cc.o"
  "CMakeFiles/cubicle_libos.dir/ukapi.cc.o.d"
  "CMakeFiles/cubicle_libos.dir/vfscore.cc.o"
  "CMakeFiles/cubicle_libos.dir/vfscore.cc.o.d"
  "libcubicle_libos.a"
  "libcubicle_libos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cubicle_libos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
