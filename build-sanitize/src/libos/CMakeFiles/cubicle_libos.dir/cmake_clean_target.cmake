file(REMOVE_RECURSE
  "libcubicle_libos.a"
)
