# Empty dependencies file for cubicle_libos.
# This may be replaced when dependencies are built.
