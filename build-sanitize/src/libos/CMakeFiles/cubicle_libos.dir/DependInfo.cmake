
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/libos/alloc.cc" "src/libos/CMakeFiles/cubicle_libos.dir/alloc.cc.o" "gcc" "src/libos/CMakeFiles/cubicle_libos.dir/alloc.cc.o.d"
  "/root/repo/src/libos/libc.cc" "src/libos/CMakeFiles/cubicle_libos.dir/libc.cc.o" "gcc" "src/libos/CMakeFiles/cubicle_libos.dir/libc.cc.o.d"
  "/root/repo/src/libos/lwip.cc" "src/libos/CMakeFiles/cubicle_libos.dir/lwip.cc.o" "gcc" "src/libos/CMakeFiles/cubicle_libos.dir/lwip.cc.o.d"
  "/root/repo/src/libos/netdev.cc" "src/libos/CMakeFiles/cubicle_libos.dir/netdev.cc.o" "gcc" "src/libos/CMakeFiles/cubicle_libos.dir/netdev.cc.o.d"
  "/root/repo/src/libos/plat.cc" "src/libos/CMakeFiles/cubicle_libos.dir/plat.cc.o" "gcc" "src/libos/CMakeFiles/cubicle_libos.dir/plat.cc.o.d"
  "/root/repo/src/libos/ramfs.cc" "src/libos/CMakeFiles/cubicle_libos.dir/ramfs.cc.o" "gcc" "src/libos/CMakeFiles/cubicle_libos.dir/ramfs.cc.o.d"
  "/root/repo/src/libos/sockapi.cc" "src/libos/CMakeFiles/cubicle_libos.dir/sockapi.cc.o" "gcc" "src/libos/CMakeFiles/cubicle_libos.dir/sockapi.cc.o.d"
  "/root/repo/src/libos/stack.cc" "src/libos/CMakeFiles/cubicle_libos.dir/stack.cc.o" "gcc" "src/libos/CMakeFiles/cubicle_libos.dir/stack.cc.o.d"
  "/root/repo/src/libos/tcpip.cc" "src/libos/CMakeFiles/cubicle_libos.dir/tcpip.cc.o" "gcc" "src/libos/CMakeFiles/cubicle_libos.dir/tcpip.cc.o.d"
  "/root/repo/src/libos/time.cc" "src/libos/CMakeFiles/cubicle_libos.dir/time.cc.o" "gcc" "src/libos/CMakeFiles/cubicle_libos.dir/time.cc.o.d"
  "/root/repo/src/libos/ukapi.cc" "src/libos/CMakeFiles/cubicle_libos.dir/ukapi.cc.o" "gcc" "src/libos/CMakeFiles/cubicle_libos.dir/ukapi.cc.o.d"
  "/root/repo/src/libos/vfscore.cc" "src/libos/CMakeFiles/cubicle_libos.dir/vfscore.cc.o" "gcc" "src/libos/CMakeFiles/cubicle_libos.dir/vfscore.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitize/src/core/CMakeFiles/cubicle_core.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/mem/CMakeFiles/cubicle_mem.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/hw/CMakeFiles/cubicle_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
