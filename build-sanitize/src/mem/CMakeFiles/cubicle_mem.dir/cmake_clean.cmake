file(REMOVE_RECURSE
  "CMakeFiles/cubicle_mem.dir/arena.cc.o"
  "CMakeFiles/cubicle_mem.dir/arena.cc.o.d"
  "CMakeFiles/cubicle_mem.dir/page_meta.cc.o"
  "CMakeFiles/cubicle_mem.dir/page_meta.cc.o.d"
  "CMakeFiles/cubicle_mem.dir/suballoc.cc.o"
  "CMakeFiles/cubicle_mem.dir/suballoc.cc.o.d"
  "libcubicle_mem.a"
  "libcubicle_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cubicle_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
