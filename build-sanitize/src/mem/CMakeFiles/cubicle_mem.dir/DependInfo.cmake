
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/arena.cc" "src/mem/CMakeFiles/cubicle_mem.dir/arena.cc.o" "gcc" "src/mem/CMakeFiles/cubicle_mem.dir/arena.cc.o.d"
  "/root/repo/src/mem/page_meta.cc" "src/mem/CMakeFiles/cubicle_mem.dir/page_meta.cc.o" "gcc" "src/mem/CMakeFiles/cubicle_mem.dir/page_meta.cc.o.d"
  "/root/repo/src/mem/suballoc.cc" "src/mem/CMakeFiles/cubicle_mem.dir/suballoc.cc.o" "gcc" "src/mem/CMakeFiles/cubicle_mem.dir/suballoc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitize/src/hw/CMakeFiles/cubicle_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
