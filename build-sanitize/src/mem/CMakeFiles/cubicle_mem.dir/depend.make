# Empty dependencies file for cubicle_mem.
# This may be replaced when dependencies are built.
