file(REMOVE_RECURSE
  "libcubicle_mem.a"
)
