# Empty compiler generated dependencies file for cubicle_hw.
# This may be replaced when dependencies are built.
