file(REMOVE_RECURSE
  "libcubicle_hw.a"
)
