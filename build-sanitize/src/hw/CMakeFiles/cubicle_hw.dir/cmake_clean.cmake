file(REMOVE_RECURSE
  "CMakeFiles/cubicle_hw.dir/fault.cc.o"
  "CMakeFiles/cubicle_hw.dir/fault.cc.o.d"
  "CMakeFiles/cubicle_hw.dir/page_table.cc.o"
  "CMakeFiles/cubicle_hw.dir/page_table.cc.o.d"
  "libcubicle_hw.a"
  "libcubicle_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cubicle_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
