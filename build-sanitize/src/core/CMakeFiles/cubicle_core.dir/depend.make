# Empty dependencies file for cubicle_core.
# This may be replaced when dependencies are built.
