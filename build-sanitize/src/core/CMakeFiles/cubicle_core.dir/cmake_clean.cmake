file(REMOVE_RECURSE
  "CMakeFiles/cubicle_core.dir/codescan.cc.o"
  "CMakeFiles/cubicle_core.dir/codescan.cc.o.d"
  "CMakeFiles/cubicle_core.dir/monitor.cc.o"
  "CMakeFiles/cubicle_core.dir/monitor.cc.o.d"
  "CMakeFiles/cubicle_core.dir/system.cc.o"
  "CMakeFiles/cubicle_core.dir/system.cc.o.d"
  "CMakeFiles/cubicle_core.dir/verifier/insn.cc.o"
  "CMakeFiles/cubicle_core.dir/verifier/insn.cc.o.d"
  "CMakeFiles/cubicle_core.dir/verifier/lint.cc.o"
  "CMakeFiles/cubicle_core.dir/verifier/lint.cc.o.d"
  "CMakeFiles/cubicle_core.dir/verifier/scanner.cc.o"
  "CMakeFiles/cubicle_core.dir/verifier/scanner.cc.o.d"
  "libcubicle_core.a"
  "libcubicle_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cubicle_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
