file(REMOVE_RECURSE
  "libcubicle_core.a"
)
