# Empty compiler generated dependencies file for bench_fig5_fig8_callcounts.
# This may be replaced when dependencies are built.
