file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_fig8_callcounts.dir/bench_fig5_fig8_callcounts.cc.o"
  "CMakeFiles/bench_fig5_fig8_callcounts.dir/bench_fig5_fig8_callcounts.cc.o.d"
  "bench_fig5_fig8_callcounts"
  "bench_fig5_fig8_callcounts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_fig8_callcounts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
