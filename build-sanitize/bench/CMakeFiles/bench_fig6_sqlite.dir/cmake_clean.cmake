file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_sqlite.dir/bench_fig6_sqlite.cc.o"
  "CMakeFiles/bench_fig6_sqlite.dir/bench_fig6_sqlite.cc.o.d"
  "bench_fig6_sqlite"
  "bench_fig6_sqlite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_sqlite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
