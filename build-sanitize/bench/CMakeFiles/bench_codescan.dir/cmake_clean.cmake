file(REMOVE_RECURSE
  "CMakeFiles/bench_codescan.dir/bench_codescan.cc.o"
  "CMakeFiles/bench_codescan.dir/bench_codescan.cc.o.d"
  "bench_codescan"
  "bench_codescan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_codescan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
