# Empty dependencies file for bench_codescan.
# This may be replaced when dependencies are built.
