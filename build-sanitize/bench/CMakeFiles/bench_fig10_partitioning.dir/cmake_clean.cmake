file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_partitioning.dir/bench_fig10_partitioning.cc.o"
  "CMakeFiles/bench_fig10_partitioning.dir/bench_fig10_partitioning.cc.o.d"
  "bench_fig10_partitioning"
  "bench_fig10_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
