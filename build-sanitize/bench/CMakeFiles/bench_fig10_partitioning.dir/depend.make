# Empty dependencies file for bench_fig10_partitioning.
# This may be replaced when dependencies are built.
