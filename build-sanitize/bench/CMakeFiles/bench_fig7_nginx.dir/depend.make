# Empty dependencies file for bench_fig7_nginx.
# This may be replaced when dependencies are built.
