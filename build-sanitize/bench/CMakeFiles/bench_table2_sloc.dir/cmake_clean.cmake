file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_sloc.dir/bench_table2_sloc.cc.o"
  "CMakeFiles/bench_table2_sloc.dir/bench_table2_sloc.cc.o.d"
  "bench_table2_sloc"
  "bench_table2_sloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_sloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
