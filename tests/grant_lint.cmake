# Source-level wiring lint: every port goes through the grant layer.
#
# Raw System::window* management calls — including the prestaging
# hint, windowPrestage — are forbidden in src/libos, src/apps and
# bench outside grant.cc: that file is the single place the window
# discipline (stage/open/close/reclaim, hot re-staging, prestage
# hints) is implemented. There are no whitelisted exemptions; even the
# window microbenchmarks measure the grant-layer wrappers, which is
# what every port actually pays.
#
# Usage: cmake -DSRC_DIR=<repo>/src [-DBENCH_DIR=<repo>/bench] -P grant_lint.cmake

if(NOT DEFINED SRC_DIR)
    message(FATAL_ERROR "grant_lint: pass -DSRC_DIR=<repo>/src")
endif()

file(GLOB_RECURSE lint_files
    "${SRC_DIR}/libos/*.h" "${SRC_DIR}/libos/*.cc"
    "${SRC_DIR}/apps/*.h" "${SRC_DIR}/apps/*.cc")
if(DEFINED BENCH_DIR)
    file(GLOB_RECURSE bench_files "${BENCH_DIR}/*.h" "${BENCH_DIR}/*.cc")
    list(APPEND lint_files ${bench_files})
endif()

set(violations "")
foreach(f IN LISTS lint_files)
    get_filename_component(fname "${f}" NAME)
    if(fname STREQUAL "grant.cc")
        continue()
    endif()
    file(STRINGS "${f}" lines)
    set(lineno 0)
    foreach(line IN LISTS lines)
        math(EXPR lineno "${lineno} + 1")
        if(line MATCHES
           "window(Init|Add|Remove|Open|Close|CloseAll|Destroy|SetHot|Prestage)[ \t]*\\(")
            string(APPEND violations "${f}:${lineno}: ${line}\n")
        endif()
    endforeach()
endforeach()

if(violations)
    message(FATAL_ERROR
        "raw System::window* call sites outside grant.cc — port them "
        "onto the grant layer (libos/grant.h):\n${violations}")
endif()
message(STATUS "grant_lint: src/libos, src/apps and bench are clean")
