/**
 * @file
 * Zero-copy sendfile tests: the borrowed-span data path must produce
 * byte-identical responses to the classic pread+send path while
 * copying strictly fewer payload bytes — with ZERO copies between the
 * RAMFS block and the TCP segment.
 */

#include <gtest/gtest.h>

#include "apps/httpd/harness.h"

namespace cubicleos::httpd {
namespace {

constexpr std::size_t kPages = 32768;
constexpr uint64_t kBaseCycles = 1000;

/** Runs one fetch and returns the server-side copy-stat deltas. */
struct CopyDeltas {
    uint64_t copies;
    uint64_t copyBytes;
    uint64_t zcSegs;
    uint64_t zcBytes;
};

CopyDeltas
fetchDeltas(HttpHarness &h, const std::string &path, FetchResult *out)
{
    auto &st = h.sys().stats();
    const uint64_t c0 = st.dataCopies();
    const uint64_t b0 = st.dataCopyBytes();
    const uint64_t z0 = st.zeroCopySends();
    const uint64_t y0 = st.zeroCopyBytes();
    *out = h.fetch(path);
    return {st.dataCopies() - c0, st.dataCopyBytes() - b0,
            st.zeroCopySends() - z0, st.zeroCopyBytes() - y0};
}

TEST(HttpdSendfileTest, ByteIdenticalToCopyPath)
{
    HttpHarness copy(core::IsolationMode::kFull, kPages, kBaseCycles,
                     /*sendfile=*/false);
    HttpHarness zc(core::IsolationMode::kFull, kPages, kBaseCycles,
                   /*sendfile=*/true);
    // Same path ⇒ same deterministic contents in both deployments.
    copy.createFile("/page.html", 12345);
    zc.createFile("/page.html", 12345);

    const FetchResult a = copy.fetch("/page.html");
    const FetchResult b = zc.fetch("/page.html");
    EXPECT_EQ(a.status, 200);
    EXPECT_EQ(b.status, 200);
    ASSERT_EQ(a.bodyBytes, 12345u);
    ASSERT_EQ(b.bodyBytes, 12345u);
    EXPECT_TRUE(a.body == b.body) << "sendfile changed payload bytes";
}

TEST(HttpdSendfileTest, BodyBytesAreNeverCopied)
{
    constexpr std::size_t kFile = 64 * 1024;
    HttpHarness zc(core::IsolationMode::kFull, kPages, kBaseCycles,
                   /*sendfile=*/true);
    zc.createFile("/f.bin", kFile);

    FetchResult res;
    const CopyDeltas d = fetchDeltas(zc, "/f.bin", &res);
    ASSERT_EQ(res.status, 200);
    ASSERT_EQ(res.bodyBytes, kFile);

    // Every body byte went out as a zero-copy segment...
    EXPECT_GT(d.zcSegs, 0u);
    EXPECT_EQ(d.zcBytes, kFile);
    // ...and none of them was ever memcpy'd: the only copies left on
    // the request are the response header and request parsing, which
    // are far smaller than the payload.
    EXPECT_LT(d.copyBytes, 2048u)
        << "payload bytes leaked onto the copy path";
}

TEST(HttpdSendfileTest, StrictlyFewerCopiesPerRequestThanCopyPath)
{
    constexpr std::size_t kFile = 64 * 1024;
    HttpHarness copy(core::IsolationMode::kFull, kPages, kBaseCycles,
                     /*sendfile=*/false);
    HttpHarness zc(core::IsolationMode::kFull, kPages, kBaseCycles,
                   /*sendfile=*/true);
    copy.createFile("/f.bin", kFile);
    zc.createFile("/f.bin", kFile);

    FetchResult a, b;
    const CopyDeltas dCopy = fetchDeltas(copy, "/f.bin", &a);
    const CopyDeltas dZc = fetchDeltas(zc, "/f.bin", &b);
    ASSERT_EQ(a.bodyBytes, kFile);
    ASSERT_EQ(b.bodyBytes, kFile);
    EXPECT_TRUE(a.body == b.body);

    // The copy path pays ≥2 payload copies (block→app buffer,
    // app buffer→send queue); the span path pays none.
    EXPECT_LT(dZc.copies, dCopy.copies);
    EXPECT_LT(dZc.copyBytes, dCopy.copyBytes);
    EXPECT_GE(dCopy.copyBytes, 2 * kFile);
    EXPECT_EQ(dCopy.zcSegs, 0u);
}

TEST(HttpdSendfileTest, StreamsFileLargerThanSocketBuffers)
{
    // 256 KiB > the 64 KiB TCP buffers: the span queue hits kNetAgain
    // and must retry borrowed spans without re-borrowing, releasing
    // ACKed spans as the window reopens.
    constexpr std::size_t kFile = 256 * 1024;
    HttpHarness zc(core::IsolationMode::kFull, kPages, kBaseCycles,
                   /*sendfile=*/true);
    zc.createFile("/big.bin", kFile);

    FetchResult res;
    const CopyDeltas d = fetchDeltas(zc, "/big.bin", &res);
    EXPECT_EQ(res.status, 200);
    EXPECT_EQ(res.bodyBytes, kFile);
    EXPECT_EQ(d.zcBytes, kFile);
    EXPECT_LT(d.copyBytes, 2048u);
    EXPECT_EQ(zc.nginx().stats().requests, 1u);
}

TEST(HttpdSendfileTest, SequentialRequestsReuseBorrowMachinery)
{
    HttpHarness zc(core::IsolationMode::kFull, kPages, kBaseCycles,
                   /*sendfile=*/true);
    zc.createFile("/a", 5000);
    zc.createFile("/b", 9000);
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(zc.fetch("/a").bodyBytes, 5000u);
        EXPECT_EQ(zc.fetch("/b").bodyBytes, 9000u);
    }
    EXPECT_EQ(zc.nginx().stats().requests, 6u);
    EXPECT_EQ(zc.nginx().stats().errors, 0u);
}

TEST(HttpdSendfileTest, TopologyStaysWithinFigureFive)
{
    HttpHarness zc(core::IsolationMode::kFull, kPages, kBaseCycles,
                   /*sendfile=*/true);
    zc.createFile("/f", 64 * 1024);
    zc.sys().stats().reset();
    zc.fetch("/f");

    auto &sys = zc.sys();
    const auto nginx = sys.cidOf("nginx");
    const auto lwip = sys.cidOf("lwip");
    const auto vfs = sys.cidOf("vfscore");
    const auto ramfs = sys.cidOf("ramfs");
    const auto netdev = sys.cidOf("netdev");

    // Borrow/release flow through VFSCORE like every other file op:
    // the app still never talks to RAMFS or NETDEV directly.
    EXPECT_GT(sys.stats().callsOnEdge(nginx, vfs), 0u);
    EXPECT_GT(sys.stats().callsOnEdge(vfs, ramfs), 0u);
    EXPECT_EQ(sys.stats().callsOnEdge(nginx, ramfs), 0u);
    EXPECT_EQ(sys.stats().callsOnEdge(nginx, netdev), 0u);
    EXPECT_GT(sys.stats().callsOnEdge(nginx, lwip),
              sys.stats().callsOnEdge(nginx, vfs));
}

} // namespace
} // namespace cubicleos::httpd
