/**
 * @file
 * Isolation-lint integration: the shipped NGINX and SQLite deployments
 * must lint clean (no warning-or-worse finding) after boot and after
 * real traffic has opened their windows.
 */

#include <gtest/gtest.h>

#include "apps/httpd/harness.h"
#include "baselines/deployments.h"
#include "core/verifier/lint.h"

namespace cubicleos {
namespace {

using core::verifier::LintFinding;
using core::verifier::LintSeverity;
using core::verifier::lintClean;

std::string
describe(const std::vector<LintFinding> &findings)
{
    std::string out;
    for (const auto &f : findings) {
        out += std::string(core::verifier::lintSeverityName(f.severity)) +
               ": " + f.message + "\n";
    }
    return out;
}

TEST(HarnessLint, NginxDeploymentLintsClean)
{
    httpd::HttpHarness harness(core::IsolationMode::kFull);
    harness.createFile("/index.html", 512);

    auto atBoot = harness.sys().lintWiring();
    EXPECT_TRUE(lintClean(atBoot)) << describe(atBoot);

    // Serve a request so the I/O windows carry live buffer grants.
    auto result = harness.fetch("/index.html");
    ASSERT_EQ(result.status, 200);

    auto afterTraffic = harness.sys().lintWiring();
    EXPECT_TRUE(lintClean(afterTraffic)) << describe(afterTraffic);
    EXPECT_EQ(harness.sys().stats().lintRuns(), 2u);
}

TEST(HarnessLint, SqliteFullDeploymentLintsClean)
{
    auto deployment = baselines::SqliteDeployment::makeCubicles(
        7, core::IsolationMode::kFull);
    ASSERT_NE(deployment->system(), nullptr);

    deployment->enter([&] {
        auto &db = deployment->database();
        db.exec("CREATE TABLE t (id INTEGER, name TEXT)");
        db.exec("INSERT INTO t VALUES (1, 'a')");
        db.exec("SELECT * FROM t");
    });

    auto findings = deployment->system()->lintWiring();
    EXPECT_TRUE(lintClean(findings)) << describe(findings);

    // The loader verified every cubicle image on the way in.
    EXPECT_GE(deployment->system()->stats().imagesVerified(), 7u);
    EXPECT_EQ(deployment->system()->stats().verifierRejected(), 0u);
}

} // namespace
} // namespace cubicleos
