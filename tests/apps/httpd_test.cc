/**
 * @file
 * NGINX stand-in tests: end-to-end HTTP over the eight-cubicle
 * deployment, content integrity, error handling and edge topology.
 */

#include <gtest/gtest.h>

#include "apps/httpd/harness.h"

namespace cubicleos::httpd {
namespace {

class HttpdTest : public ::testing::Test {
  protected:
    // Small base cost so tests run fast; benches use the real value.
    HttpHarness harness{core::IsolationMode::kFull, 32768,
                        /*request_base_cycles=*/1000};
};

TEST_F(HttpdTest, ServesSmallFile)
{
    harness.createFile("/index.html", 512);
    const FetchResult res = harness.fetch("/index.html");
    EXPECT_EQ(res.status, 200);
    EXPECT_EQ(res.bodyBytes, 512u);
    EXPECT_EQ(harness.nginx().stats().requests, 1u);
}

TEST_F(HttpdTest, Returns404ForMissingFile)
{
    const FetchResult res = harness.fetch("/nope.html");
    EXPECT_EQ(res.status, 404);
    EXPECT_EQ(res.bodyBytes, 0u);
    EXPECT_EQ(harness.nginx().stats().errors, 1u);
}

TEST_F(HttpdTest, ServesFileLargerThanSocketBuffers)
{
    // 256 KiB > the 64 KiB TCP buffers: requires flow-controlled
    // streaming through every cubicle boundary.
    harness.createFile("/big.bin", 256 * 1024);
    const FetchResult res = harness.fetch("/big.bin");
    EXPECT_EQ(res.status, 200);
    EXPECT_EQ(res.bodyBytes, 256u * 1024);
}

TEST_F(HttpdTest, SequentialRequestsOnFreshConnections)
{
    harness.createFile("/a", 1000);
    harness.createFile("/b", 2000);
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(harness.fetch("/a").bodyBytes, 1000u);
        EXPECT_EQ(harness.fetch("/b").bodyBytes, 2000u);
    }
    EXPECT_EQ(harness.nginx().stats().requests, 6u);
}

TEST_F(HttpdTest, EdgesMatchFigureFiveTopology)
{
    harness.createFile("/f", 64 * 1024);
    harness.sys().stats().reset();
    harness.fetch("/f");

    auto &sys = harness.sys();
    const auto nginx = sys.cidOf("nginx");
    const auto lwip = sys.cidOf("lwip");
    const auto netdev = sys.cidOf("netdev");
    const auto vfs = sys.cidOf("vfscore");
    const auto ramfs = sys.cidOf("ramfs");

    // Fig. 5: NGINX→LWIP is the hottest edge; LWIP→NETDEV carries the
    // packets; NGINX→VFSCORE→RAMFS carries the file; no layering
    // violations.
    EXPECT_GT(sys.stats().callsOnEdge(nginx, lwip), 0u);
    EXPECT_GT(sys.stats().callsOnEdge(lwip, netdev), 0u);
    EXPECT_GT(sys.stats().callsOnEdge(nginx, vfs), 0u);
    EXPECT_GT(sys.stats().callsOnEdge(vfs, ramfs), 0u);
    EXPECT_EQ(sys.stats().callsOnEdge(nginx, netdev), 0u);
    EXPECT_EQ(sys.stats().callsOnEdge(nginx, ramfs), 0u);
    EXPECT_GT(sys.stats().callsOnEdge(nginx, lwip),
              sys.stats().callsOnEdge(nginx, vfs))
        << "network edge dominates, as in Fig. 5";
}

TEST_F(HttpdTest, IsolationModesProduceSameBytes)
{
    for (auto mode : {core::IsolationMode::kUnikraft,
                      core::IsolationMode::kFull}) {
        HttpHarness h(mode, 32768, 1000);
        h.createFile("/data", 10000);
        const FetchResult res = h.fetch("/data");
        EXPECT_EQ(res.status, 200);
        EXPECT_EQ(res.bodyBytes, 10000u)
            << core::isolationModeName(mode);
    }
}

TEST_F(HttpdTest, CubicleOsCostsMoreThanUnikraft)
{
    HttpHarness uk(core::IsolationMode::kUnikraft, 32768, 0);
    HttpHarness cos(core::IsolationMode::kFull, 32768, 0);
    uk.createFile("/f", 128 * 1024);
    cos.createFile("/f", 128 * 1024);

    uk.sys().clock().reset();
    cos.sys().clock().reset();
    uk.fetch("/f");
    cos.fetch("/f");
    // The isolated run pays wrpkru/trap/retag cycles on top.
    EXPECT_GT(cos.sys().clock().read(), uk.sys().clock().read());
    EXPECT_GT(cos.sys().stats().retags(), 0u);
    EXPECT_EQ(uk.sys().stats().retags(), 0u);
}

} // namespace
} // namespace cubicleos::httpd
