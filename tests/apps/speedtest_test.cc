/**
 * @file
 * Speedtest workload tests: the full suite completes with consistent
 * results on the direct substrate, and a short run works end-to-end
 * over the CubicleOS deployment.
 */

#include <gtest/gtest.h>

#include "apps/minisql/speedtest.h"
#include "baselines/memfs.h"
#include "libos/app.h"
#include "libos/stack.h"
#include "libos/ukapi.h"

namespace cubicleos::minisql {
namespace {

TEST(Speedtest, FullSuiteRunsCleanOnMemFs)
{
    baselines::MemFileApi fs;
    Database db(&fs, "/bench.db", 128);
    ASSERT_EQ(db.open(), 0);
    Speedtest bench(&db, /*scale=*/200);

    for (int id : Speedtest::queryIds()) {
        SCOPED_TRACE("query " + std::to_string(id));
        SpeedtestResult res;
        ASSERT_NO_THROW(res = bench.run(id));
        EXPECT_EQ(res.id, id);
    }
    // Final integrity check doubles as a structural audit.
    auto rs = db.exec("PRAGMA integrity_check");
    EXPECT_EQ(rs.rows[0][0].asText(), "ok");
}

TEST(Speedtest, QueryIdsMatchFigureSix)
{
    const auto &ids = Speedtest::queryIds();
    EXPECT_EQ(ids.size(), 31u);
    EXPECT_EQ(ids.front(), 100);
    EXPECT_EQ(ids.back(), 990);
    // Spot-check the distinctive IDs from the paper's x-axis.
    for (int id : {142, 145, 161, 310, 980}) {
        EXPECT_NE(std::find(ids.begin(), ids.end(), id), ids.end())
            << id;
    }
}

TEST(Speedtest, DeterministicAcrossRuns)
{
    auto run = [](std::vector<uint64_t> *rows) {
        baselines::MemFileApi fs;
        Database db(&fs, "/bench.db", 128);
        ASSERT_EQ(db.open(), 0);
        Speedtest bench(&db, 100, /*seed=*/42);
        for (int id : Speedtest::queryIds())
            rows->push_back(bench.run(id).rowsTouched);
    };
    std::vector<uint64_t> first, second;
    run(&first);
    run(&second);
    EXPECT_EQ(first, second);
}

TEST(Speedtest, ShortRunOverCubicleOs)
{
    core::SystemConfig cfg;
    cfg.numPages = 16384;
    core::System sys(cfg);
    libos::addLibosComponents(sys);
    auto *app = static_cast<libos::AppComponent *>(
        &sys.addComponent(std::make_unique<libos::AppComponent>(
            "sqlite")));
    libos::finishBoot(sys);

    app->run([&] {
        libos::CubicleFileApi fs(sys, "ramfs");
        DbAllocator mem;
        mem.alloc = [&](std::size_t n) { return sys.heapAlloc(n); };
        mem.free = [&](void *p) { sys.heapFree(p); };
        Database db(&fs, "/bench.db", 64, mem);
        ASSERT_EQ(db.open(), 0);
        Speedtest bench(&db, 50);
        for (int id : {100, 110, 120, 130, 150, 160, 180, 980})
            ASSERT_NO_THROW(bench.run(id)) << id;
    });

    // The run exercised the Fig. 8 topology.
    const auto sqlite = sys.cidOf("sqlite");
    const auto vfs = sys.cidOf("vfscore");
    const auto ramfs = sys.cidOf("ramfs");
    EXPECT_GT(sys.stats().callsOnEdge(sqlite, vfs), 50u);
    EXPECT_GT(sys.stats().callsOnEdge(vfs, ramfs), 50u);
    EXPECT_GT(sys.stats().retags(), 10u);
}

} // namespace
} // namespace cubicleos::minisql
