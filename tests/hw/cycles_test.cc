/**
 * @file
 * Unit tests for the virtual cycle clock and the deterministic PRNG.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "hw/cycles.h"
#include "hw/prng.h"

namespace cubicleos::hw {
namespace {

TEST(CycleClock, StartsAtZeroAndAccumulates)
{
    CycleClock clock;
    EXPECT_EQ(clock.read(), 0u);
    clock.charge(100);
    clock.charge(cost::kWrpkru);
    EXPECT_EQ(clock.read(), 100 + cost::kWrpkru);
}

TEST(CycleClock, ResetClears)
{
    CycleClock clock;
    clock.charge(42);
    clock.reset();
    EXPECT_EQ(clock.read(), 0u);
}

TEST(CycleClock, ToNanosecondsUsesPaperFrequency)
{
    // 2.2 GHz: 2200 cycles == 1000 ns.
    EXPECT_DOUBLE_EQ(CycleClock::toNanoseconds(2200), 1000.0);
}

TEST(CycleClock, ConcurrentChargesAreNotLost)
{
    CycleClock clock;
    constexpr int kThreads = 4;
    constexpr int kPerThread = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&clock] {
            for (int i = 0; i < kPerThread; ++i)
                clock.charge(1);
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(clock.read(), uint64_t{kThreads} * kPerThread);
}

TEST(CycleCosts, RelativeOrderingMatchesPaper)
{
    // The cost model must preserve the paper's relative magnitudes:
    // wrpkru (user-level) << pkey assignment (kernel).
    EXPECT_LT(cost::kWrpkru, cost::kPkeyMprotect / 10);
    EXPECT_LT(cost::kTrampoline, cost::kFaultTrap);
}

TEST(Prng, DeterministicForSameSeed)
{
    Prng a(12345), b(12345);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Prng, DifferentSeedsDiverge)
{
    Prng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(Prng, NextBelowStaysInRange)
{
    Prng prng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(prng.nextBelow(17), 17u);
    EXPECT_EQ(prng.nextBelow(0), 0u);
}

TEST(Prng, NextInRangeInclusive)
{
    Prng prng(99);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        int64_t v = prng.nextInRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Prng, ZeroSeedDoesNotDegenerate)
{
    Prng prng(0);
    EXPECT_NE(prng.next(), prng.next());
}

} // namespace
} // namespace cubicleos::hw
