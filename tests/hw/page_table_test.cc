/**
 * @file
 * Unit tests for the simulated address space and page-table checks.
 */

#include <gtest/gtest.h>

#include "hw/page_table.h"

namespace cubicleos::hw {
namespace {

class AddressSpaceTest : public ::testing::Test {
  protected:
    CycleClock clock;
    AddressSpace space{64, &clock};
    Mpk mpk;
};

TEST_F(AddressSpaceTest, GeometryAndContainment)
{
    EXPECT_EQ(space.numPages(), 64u);
    EXPECT_EQ(space.sizeBytes(), 64u * kPageSize);
    EXPECT_TRUE(space.contains(space.base()));
    EXPECT_TRUE(space.contains(space.base() + space.sizeBytes() - 1));
    EXPECT_FALSE(space.contains(space.base() + space.sizeBytes()));

    int on_host_stack = 0;
    EXPECT_FALSE(space.contains(&on_host_stack));
}

TEST_F(AddressSpaceTest, PageIndexing)
{
    EXPECT_EQ(space.pageIndexOf(space.base()), 0u);
    EXPECT_EQ(space.pageIndexOf(space.base() + kPageSize), 1u);
    EXPECT_EQ(space.pageIndexOf(space.base() + kPageSize - 1), 0u);
    EXPECT_EQ(space.pageAt(3), space.base() + 3 * kPageSize);
}

TEST_F(AddressSpaceTest, UnmappedPagesFaultNotPresent)
{
    auto fault = space.check(mpk, Pkru::allowAll(), space.base(), 1,
                             Access::kRead);
    ASSERT_TRUE(fault.has_value());
    EXPECT_EQ(fault->reason, FaultReason::kNotPresent);
}

TEST_F(AddressSpaceTest, MappedPageRespectsPagePerms)
{
    space.map(0, 1, kPermRead, 2);
    Pkru pkru = Pkru::allowAll();
    EXPECT_FALSE(space.check(mpk, pkru, space.base(), 8, Access::kRead));
    auto w = space.check(mpk, pkru, space.base(), 8, Access::kWrite);
    ASSERT_TRUE(w.has_value());
    EXPECT_EQ(w->reason, FaultReason::kPagePerm);
}

TEST_F(AddressSpaceTest, PkuCheckUsesPageKey)
{
    space.map(0, 2, kPermRead | kPermWrite, 3);
    Pkru pkru = Pkru::denyAll();
    auto f = space.check(mpk, pkru, space.base(), 4, Access::kRead);
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->reason, FaultReason::kPkuRead);
    EXPECT_EQ(f->pkey, 3);

    pkru.allow(3);
    EXPECT_FALSE(space.check(mpk, pkru, space.base(), 4, Access::kRead));
}

TEST_F(AddressSpaceTest, MultiPageAccessChecksEveryPage)
{
    // Pages 0..2 mapped; page 1 carries a different key.
    space.map(0, 3, kPermRead | kPermWrite, 2);
    space.setKey(1, 1, 5);
    Pkru pkru = Pkru::denyAll();
    pkru.allow(2);

    auto f = space.check(mpk, pkru, space.base(), 3 * kPageSize,
                         Access::kRead);
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->pkey, 5);
    // Fault address points at the start of the offending page.
    EXPECT_EQ(f->addr, space.pageAt(1));
}

TEST_F(AddressSpaceTest, StraddlingAccessFaultsOnSecondPage)
{
    space.map(0, 1, kPermRead | kPermWrite, 2);
    // Page 1 unmapped: access straddling 0->1 faults not-present.
    Pkru pkru = Pkru::allowAll();
    const void *p = space.base() + kPageSize - 8;
    auto f = space.check(mpk, pkru, p, 16, Access::kRead);
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->reason, FaultReason::kNotPresent);
}

TEST_F(AddressSpaceTest, SetKeyChargesPkeyMprotectCost)
{
    space.map(0, 4, kPermRead, 2);
    const uint64_t before = clock.read();
    space.setKey(0, 4, 3);
    EXPECT_EQ(clock.read() - before, cost::kPkeyMprotect);
    EXPECT_EQ(space.retagCount(), 1u);
    EXPECT_EQ(space.entryAt(0).pkey, 3);
    EXPECT_EQ(space.entryAt(3).pkey, 3);
}

TEST_F(AddressSpaceTest, ZeroLengthAccessAlwaysAllowed)
{
    EXPECT_FALSE(
        space.check(mpk, Pkru::denyAll(), space.base(), 0, Access::kWrite));
}

TEST_F(AddressSpaceTest, OutsideSpaceFaults)
{
    int host_var = 0;
    auto f = space.check(mpk, Pkru::allowAll(), &host_var, 4,
                         Access::kRead);
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->reason, FaultReason::kOutsideSpace);
}

TEST_F(AddressSpaceTest, ExecOnlyPagesDenyReadAllowExec)
{
    space.map(0, 1, kPermExec, 2);
    Pkru pkru = Pkru::allowAll();
    auto r = space.check(mpk, pkru, space.base(), 1, Access::kRead);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->reason, FaultReason::kPagePerm);
    EXPECT_FALSE(space.check(mpk, pkru, space.base(), 1, Access::kExec));
}

TEST_F(AddressSpaceTest, ModifiedExecSemanticsInCombination)
{
    space.map(0, 1, kPermExec, 4);
    Pkru pkru = Pkru::denyAll(); // AD+WD on key 4 -> exec denied
    auto f = space.check(mpk, pkru, space.base(), 1, Access::kExec);
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->reason, FaultReason::kExecDenied);
}

TEST_F(AddressSpaceTest, UnmapClearsEntries)
{
    space.map(0, 2, kPermRead, 2);
    space.unmap(0, 1);
    EXPECT_FALSE(space.entryAt(0).present);
    EXPECT_TRUE(space.entryAt(1).present);
}

TEST(FaultTest, DescribeMentionsReasonAndAccess)
{
    Fault f{nullptr, Access::kWrite, FaultReason::kPkuWrite, 7};
    const std::string s = f.describe();
    EXPECT_NE(s.find("write"), std::string::npos);
    EXPECT_NE(s.find("pku-write"), std::string::npos);
    EXPECT_NE(s.find("pkey=7"), std::string::npos);
}

TEST(FaultTest, CubicleFaultCarriesFault)
{
    Fault f{nullptr, Access::kRead, FaultReason::kPkuRead, 3};
    CubicleFault ex(f);
    EXPECT_EQ(ex.fault().pkey, 3);
    EXPECT_NE(std::string(ex.what()).find("pku-read"), std::string::npos);
}

} // namespace
} // namespace cubicleos::hw
