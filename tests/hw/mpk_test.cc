/**
 * @file
 * Unit tests for the simulated MPK: PKRU register semantics, key
 * allocation, and the modified execute-permission semantics.
 */

#include <gtest/gtest.h>

#include "hw/mpk.h"

namespace cubicleos::hw {
namespace {

TEST(Pkru, DenyAllDeniesEveryKey)
{
    Pkru pkru = Pkru::denyAll();
    for (int k = 0; k < kNumPkeys; ++k) {
        EXPECT_FALSE(pkru.canRead(k)) << k;
        EXPECT_FALSE(pkru.canWrite(k)) << k;
    }
}

TEST(Pkru, AllowAllAllowsEveryKey)
{
    Pkru pkru = Pkru::allowAll();
    for (int k = 0; k < kNumPkeys; ++k) {
        EXPECT_TRUE(pkru.canRead(k)) << k;
        EXPECT_TRUE(pkru.canWrite(k)) << k;
    }
}

TEST(Pkru, AllowSingleKeyLeavesOthersDenied)
{
    Pkru pkru = Pkru::denyAll();
    pkru.allow(5);
    for (int k = 0; k < kNumPkeys; ++k) {
        EXPECT_EQ(pkru.canRead(k), k == 5) << k;
        EXPECT_EQ(pkru.canWrite(k), k == 5) << k;
    }
}

TEST(Pkru, ReadOnlyKeyAllowsReadDeniesWrite)
{
    Pkru pkru = Pkru::denyAll();
    pkru.allowReadOnly(3);
    EXPECT_TRUE(pkru.canRead(3));
    EXPECT_FALSE(pkru.canWrite(3));
}

TEST(Pkru, DenyRevokesAccess)
{
    Pkru pkru = Pkru::allowAll();
    pkru.deny(7);
    EXPECT_FALSE(pkru.canRead(7));
    EXPECT_FALSE(pkru.canWrite(7));
    EXPECT_TRUE(pkru.canRead(6));
}

TEST(Pkru, RawLayoutMatchesX86)
{
    // Key i: bit 2i = AD, bit 2i+1 = WD.
    Pkru pkru = Pkru::allowAll();
    pkru.deny(1);
    EXPECT_EQ(pkru.raw(), 0b1100u);

    Pkru ro = Pkru::allowAll();
    ro.allowReadOnly(0);
    EXPECT_EQ(ro.raw(), 0b10u);
}

TEST(Pkru, EqualityComparesRawValue)
{
    Pkru a = Pkru::denyAll();
    Pkru b = Pkru::denyAll();
    EXPECT_EQ(a, b);
    b.allow(2);
    EXPECT_NE(a, b);
}

TEST(Mpk, AllocatesFifteenKeysAfterMonitorKey)
{
    Mpk mpk;
    // Key 0 is reserved for the monitor; 1..15 are allocatable.
    for (int expected = 1; expected < kNumPkeys; ++expected)
        EXPECT_EQ(mpk.allocKey(), expected);
    EXPECT_EQ(mpk.allocKey(), -1) << "16th allocation must fail";
}

TEST(Mpk, LogicalKeysAreUnboundedAndDisjointFromPhysical)
{
    Mpk mpk;
    for (int i = 1; i < kNumPhysPkeys; ++i)
        mpk.allocKey();
    EXPECT_EQ(mpk.allocKey(), -1) << "physical pool is exhausted";
    // Logical keys come from a separate, unbounded namespace that
    // never reaches PKRU.
    EXPECT_EQ(mpk.allocLogicalKey(), kFirstLogicalKey);
    EXPECT_EQ(mpk.allocLogicalKey(), kFirstLogicalKey + 1);
    EXPECT_TRUE(Mpk::isLogicalKey(kFirstLogicalKey));
    EXPECT_FALSE(Mpk::isLogicalKey(kNumPhysPkeys - 1));
    EXPECT_EQ(mpk.allocatedLogicalKeys(), 2u);
}

TEST(Mpk, PhysBudgetCapsAllocation)
{
    Mpk mpk(/*modified_exec_semantics=*/true, /*phys_budget=*/4);
    EXPECT_EQ(mpk.physBudget(), 4);
    EXPECT_EQ(mpk.allocKey(), 1);
    EXPECT_EQ(mpk.allocKey(), 2);
    EXPECT_EQ(mpk.allocKey(), 3);
    EXPECT_EQ(mpk.allocKey(), -1) << "budget of 4 leaves 3 allocatable";
}

TEST(Mpk, CheckReadWrite)
{
    Mpk mpk;
    Pkru pkru = Pkru::denyAll();
    pkru.allowReadOnly(4);

    EXPECT_FALSE(mpk.check(pkru, 4, Access::kRead).has_value());
    auto w = mpk.check(pkru, 4, Access::kWrite);
    ASSERT_TRUE(w.has_value());
    EXPECT_EQ(*w, FaultReason::kPkuWrite);

    auto r = mpk.check(pkru, 9, Access::kRead);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(*r, FaultReason::kPkuRead);
}

TEST(Mpk, ModifiedSemanticsDenyExecOnFullyDeniedKey)
{
    Mpk mpk(/*modified_exec_semantics=*/true);
    Pkru pkru = Pkru::denyAll();
    auto x = mpk.check(pkru, 2, Access::kExec);
    ASSERT_TRUE(x.has_value());
    EXPECT_EQ(*x, FaultReason::kExecDenied);

    // Read-only access re-enables execution.
    pkru.allowReadOnly(2);
    EXPECT_FALSE(mpk.check(pkru, 2, Access::kExec).has_value());
}

TEST(Mpk, StockSemanticsAllowExecRegardlessOfPkru)
{
    // Stock MPK has no tag-wide execute control — the limitation the
    // paper's hardware modification addresses.
    Mpk mpk(/*modified_exec_semantics=*/false);
    Pkru pkru = Pkru::denyAll();
    EXPECT_FALSE(mpk.check(pkru, 2, Access::kExec).has_value());
}

/** PKRU sweep: every (key, mode) combination behaves independently. */
class PkruSweep : public ::testing::TestWithParam<int> {};

TEST_P(PkruSweep, KeyIndependence)
{
    const int key = GetParam();
    Pkru pkru = Pkru::denyAll();
    pkru.allow(key);
    for (int other = 0; other < kNumPkeys; ++other) {
        if (other == key)
            continue;
        EXPECT_FALSE(pkru.canRead(other));
        pkru.allowReadOnly(other);
        EXPECT_TRUE(pkru.canRead(other));
        EXPECT_FALSE(pkru.canWrite(other));
        pkru.deny(other);
        EXPECT_TRUE(pkru.canWrite(key)) << "key " << key << " disturbed";
    }
}

INSTANTIATE_TEST_SUITE_P(AllKeys, PkruSweep,
                         ::testing::Range(0, kNumPkeys));

} // namespace
} // namespace cubicleos::hw
