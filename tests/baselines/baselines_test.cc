/**
 * @file
 * Baseline-substrate tests: the microkernel IPC model, kernel
 * profiles, and the Fig. 9/10 deployment factories (including the
 * colocated cubicle partitionings).
 */

#include <gtest/gtest.h>

#include <cstring>

#include "apps/minisql/speedtest.h"
#include "baselines/deployments.h"
#include "baselines/memfs.h"
#include "baselines/microkernel.h"

namespace cubicleos::baselines {
namespace {

TEST(MicrokernelFileApi, RoundTripsDataThroughMessages)
{
    hw::CycleClock clock;
    MemFileApi server;
    MicrokernelFileApi ipc(kernels::seL4(), &clock, &server, 2);

    const int fd = ipc.open("/f", libos::kCreate | libos::kRdWr);
    ASSERT_GE(fd, 0);
    char out[64] = "through two protection domains";
    EXPECT_EQ(ipc.pwrite(fd, out, sizeof(out), 0),
              static_cast<int64_t>(sizeof(out)));
    char in[64] = {};
    EXPECT_EQ(ipc.pread(fd, in, sizeof(in), 0),
              static_cast<int64_t>(sizeof(in)));
    EXPECT_STREQ(in, out);
    ipc.close(fd);

    // 4 ops x 2 hops = 8 session/RPC pairs, plus the separated
    // backend's per-block protocol on the two data operations.
    EXPECT_GE(ipc.stats().rpcs, 8u);
    EXPECT_GE(ipc.stats().bytesCopied, 4u * sizeof(out));
    EXPECT_GT(clock.read(), 8 * kernels::seL4().rpcRoundTripCycles);
}

TEST(MicrokernelFileApi, TwoHopsCostMoreThanOne)
{
    hw::CycleClock c1, c2;
    MemFileApi s1, s2;
    MicrokernelFileApi one(kernels::nova(), &c1, &s1, 1);
    MicrokernelFileApi two(kernels::nova(), &c2, &s2, 2);

    char buf[4096] = {};
    for (auto *api : {&one, &two}) {
        const int fd = api->open("/f", libos::kCreate | libos::kRdWr);
        for (int i = 0; i < 50; ++i)
            api->pwrite(fd, buf, sizeof(buf),
                        static_cast<uint64_t>(i) * 4096);
        api->close(fd);
    }
    EXPECT_GT(c2.read(), c1.read() * 3 / 2)
        << "adding the RAMFS hop must add substantial cost";
}

TEST(KernelProfiles, RelativeCostsMatchPaper)
{
    // Fig. 10: Genode-on-Linux IPC is an order of magnitude costlier
    // than native microkernel IPC; seL4 (under Genode) costs more
    // than Fiasco.OC/NOVA.
    EXPECT_GT(kernels::genodeLinux().rpcRoundTripCycles,
              4 * kernels::fiascoOC().rpcRoundTripCycles);
    EXPECT_GT(kernels::seL4().rpcRoundTripCycles,
              kernels::fiascoOC().rpcRoundTripCycles);
    EXPECT_GT(kernels::seL4().rpcRoundTripCycles,
              kernels::nova().rpcRoundTripCycles);
}

TEST(Deployments, LinuxRunsSpeedtestSubset)
{
    auto dep = SqliteDeployment::makeLinux();
    minisql::Speedtest bench(&dep->database(), 50);
    dep->enter([&] {
        for (int id : {100, 110, 120, 130, 150, 160})
            ASSERT_NO_THROW(bench.run(id)) << id;
    });
    EXPECT_GT(dep->modelCycles(), 0u);
}

TEST(Deployments, MicrokernelRunsSpeedtestSubset)
{
    auto dep =
        SqliteDeployment::makeMicrokernel(kernels::fiascoOC(), 2);
    minisql::Speedtest bench(&dep->database(), 50);
    dep->enter([&] {
        for (int id : {100, 110, 120, 130, 150, 160})
            ASSERT_NO_THROW(bench.run(id)) << id;
    });
    EXPECT_GT(dep->modelCycles(), 0u);
}

TEST(Deployments, CubicleThreePartitioning)
{
    auto dep = SqliteDeployment::makeCubicles(
        3, core::IsolationMode::kFull);
    ASSERT_NE(dep->system(), nullptr);

    // Exactly 3 isolated cubicles: sqlite, core(plat+...), time.
    int isolated = 0;
    auto &sys = *dep->system();
    for (core::Cid cid = 0;
         cid < static_cast<core::Cid>(sys.cubicleCount()); ++cid) {
        if (sys.monitor().cubicle(cid).isolated())
            ++isolated;
    }
    EXPECT_EQ(isolated, 3);
    // VFS and RAMFS resolve to the same (core) cubicle.
    EXPECT_EQ(sys.cidOf("vfscore"), sys.cidOf("ramfs"));
    EXPECT_EQ(sys.cidOf("vfscore"), sys.cidOf("plat"));

    minisql::Speedtest bench(&dep->database(), 50);
    dep->enter([&] {
        for (int id : {100, 110, 120, 130, 150})
            ASSERT_NO_THROW(bench.run(id)) << id;
    });
    // No VFS->RAMFS cross-cubicle edge: they share a cubicle.
    EXPECT_EQ(sys.stats().callsOnEdge(sys.cidOf("vfscore"),
                                      sys.cidOf("ramfs")),
              0u);
}

TEST(Deployments, CubicleFourSeparatesRamfs)
{
    auto dep = SqliteDeployment::makeCubicles(
        4, core::IsolationMode::kFull);
    auto &sys = *dep->system();
    int isolated = 0;
    for (core::Cid cid = 0;
         cid < static_cast<core::Cid>(sys.cubicleCount()); ++cid) {
        if (sys.monitor().cubicle(cid).isolated())
            ++isolated;
    }
    EXPECT_EQ(isolated, 4);
    EXPECT_NE(sys.cidOf("vfscore"), sys.cidOf("ramfs"));

    minisql::Speedtest bench(&dep->database(), 50);
    dep->enter([&] {
        for (int id : {100, 110, 120, 130, 150})
            ASSERT_NO_THROW(bench.run(id)) << id;
    });
    // Now the separated boundary carries traffic.
    EXPECT_GT(sys.stats().callsOnEdge(sys.cidOf("vfscore"),
                                      sys.cidOf("ramfs")),
              100u);
}

TEST(Deployments, AddingRamfsCompartmentCostsLittleOnCubicleOs)
{
    // The paper's headline (Fig. 10b): separating RAMFS costs 4-7x on
    // microkernels but only ~1.4x on CubicleOS. Verify the CubicleOS
    // side: modelled cycles grow by far less than 4x.
    auto run = [](int components) {
        auto dep = SqliteDeployment::makeCubicles(
            components, core::IsolationMode::kFull);
        minisql::Speedtest bench(&dep->database(), 50);
        dep->enter([&] {
            for (int id : {100, 110, 120, 130, 150, 160, 180})
                bench.run(id);
        });
        return dep->modelCycles();
    };
    const uint64_t three = run(3);
    const uint64_t four = run(4);
    EXPECT_GT(four, three);
    EXPECT_LT(four, three * 3);
}

TEST(Deployments, ResultsAgreeAcrossSubstrates)
{
    // The same workload must produce identical query results on every
    // substrate: the OS underneath changes, the database must not.
    auto query_fingerprint = [](SqliteDeployment &dep) {
        int64_t sum = 0;
        dep.enter([&] {
            auto &db = dep.database();
            db.exec("CREATE TABLE t (a INTEGER PRIMARY KEY, "
                    "b INTEGER)");
            db.exec("BEGIN");
            for (int i = 1; i <= 200; ++i) {
                db.exec("INSERT INTO t VALUES (" + std::to_string(i) +
                        "," + std::to_string(i * i % 97) + ")");
            }
            db.exec("COMMIT");
            sum = db.exec("SELECT sum(b) FROM t WHERE a BETWEEN 50 "
                          "AND 150")
                      .scalarInt();
        });
        return sum;
    };

    auto linux_dep = SqliteDeployment::makeLinux();
    auto genode_dep =
        SqliteDeployment::makeMicrokernel(kernels::genodeLinux(), 2);
    auto cubicle_dep = SqliteDeployment::makeCubicles(
        4, core::IsolationMode::kFull);

    const int64_t expect = query_fingerprint(*linux_dep);
    EXPECT_EQ(query_fingerprint(*genode_dep), expect);
    EXPECT_EQ(query_fingerprint(*cubicle_dep), expect);
}

} // namespace
} // namespace cubicleos::baselines
