# Source-level locking lint: every lock in src/core, src/libos — and,
# since the auditor PR, tests/ and bench/ — goes through the annotated
# wrappers in core/locking.h.
#
# Raw std::mutex / std::shared_mutex declarations (and the raw guard
# templates) bypass both halves of the machine-checked hierarchy: the
# clang thread-safety annotations (tidy-tsa preset) and the debug
# lockdep rank checks. Two files are whitelisted: locking.h itself
# (where the wrappers wrap the standard types) and
# tests/core/tsa_seed_violation.cc (the deliberately broken TU the
# tsa_lint gate compiles to prove the analysis is alive).
#
# Usage: cmake -DSRC_DIR=<repo>/src [-DTESTS_DIR=<repo>/tests]
#              [-DBENCH_DIR=<repo>/bench] -P locking_lint.cmake

if(NOT DEFINED SRC_DIR)
    message(FATAL_ERROR "locking_lint: pass -DSRC_DIR=<repo>/src")
endif()

file(GLOB_RECURSE lint_files
    "${SRC_DIR}/core/*.h" "${SRC_DIR}/core/*.cc"
    "${SRC_DIR}/libos/*.h" "${SRC_DIR}/libos/*.cc")
if(DEFINED TESTS_DIR)
    file(GLOB_RECURSE extra "${TESTS_DIR}/*.h" "${TESTS_DIR}/*.cc")
    list(APPEND lint_files ${extra})
endif()
if(DEFINED BENCH_DIR)
    file(GLOB_RECURSE extra "${BENCH_DIR}/*.h" "${BENCH_DIR}/*.cc")
    list(APPEND lint_files ${extra})
endif()

set(violations "")
foreach(f IN LISTS lint_files)
    get_filename_component(fname "${f}" NAME)
    if(fname STREQUAL "locking.h" OR fname STREQUAL "locking.cc"
       OR fname STREQUAL "tsa_seed_violation.cc")
        continue()
    endif()
    file(STRINGS "${f}" lines)
    set(lineno 0)
    foreach(line IN LISTS lines)
        math(EXPR lineno "${lineno} + 1")
        # Skip pure comment lines; the hierarchy documentation is
        # allowed to *talk* about std::mutex.
        if(line MATCHES "^[ \t]*(//|\\*)")
            continue()
        endif()
        if(line MATCHES "std::(mutex|shared_mutex|recursive_mutex)[^a-zA-Z_]"
           OR line MATCHES "std::(lock_guard|unique_lock|shared_lock|scoped_lock)")
            string(APPEND violations "${f}:${lineno}: ${line}\n")
        endif()
    endforeach()
endforeach()

if(violations)
    message(FATAL_ERROR
        "raw standard mutex/guard use outside core/locking.h — declare "
        "locks as locking::Mutex/SharedMutex with a LockRank and take "
        "them through MutexLock/WriterLock/ReaderLock so the static "
        "annotations and lockdep both see them:\n${violations}")
endif()
message(STATUS
    "locking_lint: scanned src/core, src/libos, tests/ and bench/ — "
    "all locks use the annotated wrappers")
