# Source-level locking lint: every lock in src/core and src/libos goes
# through the annotated wrappers in core/locking.h.
#
# Raw std::mutex / std::shared_mutex declarations (and the raw guard
# templates) bypass both halves of the machine-checked hierarchy: the
# clang thread-safety annotations (tidy-tsa preset) and the debug
# lockdep rank checks. locking.h itself is the single whitelisted file
# — it is where the wrappers wrap the standard types.
#
# Usage: cmake -DSRC_DIR=<repo>/src -P locking_lint.cmake

if(NOT DEFINED SRC_DIR)
    message(FATAL_ERROR "locking_lint: pass -DSRC_DIR=<repo>/src")
endif()

file(GLOB_RECURSE lint_files
    "${SRC_DIR}/core/*.h" "${SRC_DIR}/core/*.cc"
    "${SRC_DIR}/libos/*.h" "${SRC_DIR}/libos/*.cc")

set(violations "")
foreach(f IN LISTS lint_files)
    get_filename_component(fname "${f}" NAME)
    if(fname STREQUAL "locking.h" OR fname STREQUAL "locking.cc")
        continue()
    endif()
    file(STRINGS "${f}" lines)
    set(lineno 0)
    foreach(line IN LISTS lines)
        math(EXPR lineno "${lineno} + 1")
        # Skip pure comment lines; the hierarchy documentation is
        # allowed to *talk* about std::mutex.
        if(line MATCHES "^[ \t]*(//|\\*)")
            continue()
        endif()
        if(line MATCHES "std::(mutex|shared_mutex|recursive_mutex)[^a-zA-Z_]"
           OR line MATCHES "std::(lock_guard|unique_lock|shared_lock|scoped_lock)")
            string(APPEND violations "${f}:${lineno}: ${line}\n")
        endif()
    endforeach()
endforeach()

if(violations)
    message(FATAL_ERROR
        "raw standard mutex/guard use outside core/locking.h — declare "
        "locks as locking::Mutex/SharedMutex with a LockRank and take "
        "them through MutexLock/WriterLock/ReaderLock so the static "
        "annotations and lockdep both see them:\n${violations}")
endif()
message(STATUS "locking_lint: src/core and src/libos use annotated wrappers")
