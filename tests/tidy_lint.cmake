# clang-tidy gate over src/core (ROADMAP carried item).
#
# Runs clang-tidy with the repo's .clang-tidy config against the
# compile database of an existing build tree. The container image used
# by CI does not ship clang-tidy, so absence of the tool is a SKIP
# (paired with SKIP_REGULAR_EXPRESSION in tests/CMakeLists.txt), not a
# failure — the check runs wherever the tool exists.
#
# Usage: cmake -DSRC_DIR=<repo>/src -DBUILD_DIR=<build> -P tidy_lint.cmake

if(NOT DEFINED SRC_DIR OR NOT DEFINED BUILD_DIR)
    message(FATAL_ERROR
        "tidy_lint: pass -DSRC_DIR=<repo>/src -DBUILD_DIR=<build>")
endif()

find_program(CLANG_TIDY NAMES clang-tidy clang-tidy-18 clang-tidy-17
    clang-tidy-16 clang-tidy-15 clang-tidy-14)
if(NOT CLANG_TIDY)
    message(STATUS "tidy_lint: [SKIP] clang-tidy not installed")
    return()
endif()
if(NOT EXISTS "${BUILD_DIR}/compile_commands.json")
    message(STATUS
        "tidy_lint: [SKIP] no compile_commands.json in ${BUILD_DIR}")
    return()
endif()

file(GLOB_RECURSE tidy_sources "${SRC_DIR}/core/*.cc")

set(failed 0)
foreach(src IN LISTS tidy_sources)
    execute_process(
        COMMAND "${CLANG_TIDY}" -p "${BUILD_DIR}" --quiet
                --warnings-as-errors=* "${src}"
        RESULT_VARIABLE rc
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
        message(SEND_ERROR "tidy_lint: ${src}\n${out}${err}")
        set(failed 1)
    endif()
endforeach()

if(failed)
    message(FATAL_ERROR "tidy_lint: clang-tidy findings in src/core")
endif()
message(STATUS "tidy_lint: src/core is clang-tidy clean")
