/**
 * @file
 * B+tree tests: basic operations, splits, cursors, deletion, and a
 * randomized property test against std::map as the reference model.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "apps/minisql/btree.h"
#include "baselines/memfs.h"
#include "hw/prng.h"

namespace cubicleos::minisql {
namespace {

std::vector<uint8_t>
bytes(const std::string &s)
{
    return std::vector<uint8_t>(s.begin(), s.end());
}

std::string
str(const std::vector<uint8_t> &v)
{
    return std::string(v.begin(), v.end());
}

class BTreeTest : public ::testing::Test {
  protected:
    BTreeTest() : pager(&fs, "/db", 64)
    {
        EXPECT_EQ(pager.open(true), 0);
        pager.begin();
        root = BTree::create(&pager);
    }

    ~BTreeTest() override
    {
        if (pager.inTransaction())
            pager.commit();
    }

    baselines::MemFileApi fs;
    Pager pager;
    uint32_t root = 0;
};

TEST_F(BTreeTest, InsertAndFind)
{
    BTree tree(&pager, root);
    EXPECT_TRUE(tree.insert(bytes("alpha"), bytes("1")));
    EXPECT_TRUE(tree.insert(bytes("beta"), bytes("2")));

    std::vector<uint8_t> val;
    EXPECT_TRUE(tree.find(bytes("alpha"), &val));
    EXPECT_EQ(str(val), "1");
    EXPECT_TRUE(tree.find(bytes("beta"), &val));
    EXPECT_EQ(str(val), "2");
    EXPECT_FALSE(tree.find(bytes("gamma"), &val));
}

TEST_F(BTreeTest, InsertReplacesExistingKey)
{
    BTree tree(&pager, root);
    EXPECT_TRUE(tree.insert(bytes("k"), bytes("old")));
    EXPECT_FALSE(tree.insert(bytes("k"), bytes("new")));
    std::vector<uint8_t> val;
    tree.find(bytes("k"), &val);
    EXPECT_EQ(str(val), "new");
    EXPECT_EQ(tree.countEntries(), 1u);
}

TEST_F(BTreeTest, EraseRemovesKey)
{
    BTree tree(&pager, root);
    tree.insert(bytes("a"), bytes("1"));
    tree.insert(bytes("b"), bytes("2"));
    EXPECT_TRUE(tree.erase(bytes("a")));
    EXPECT_FALSE(tree.erase(bytes("a")));
    EXPECT_FALSE(tree.find(bytes("a"), nullptr));
    EXPECT_TRUE(tree.find(bytes("b"), nullptr));
}

TEST_F(BTreeTest, EmptyValueAllowed)
{
    BTree tree(&pager, root);
    EXPECT_TRUE(tree.insert(bytes("key"), {}));
    std::vector<uint8_t> val{1, 2, 3};
    EXPECT_TRUE(tree.find(bytes("key"), &val));
    EXPECT_TRUE(val.empty());
}

TEST_F(BTreeTest, ManyInsertsForceSplitsAndStayOrdered)
{
    BTree tree(&pager, root);
    constexpr int kN = 5000;
    for (int i = 0; i < kN; ++i) {
        char key[16];
        std::snprintf(key, sizeof(key), "k%08d", i * 7919 % kN);
        std::string value = "value-" + std::to_string(i);
        tree.insert(bytes(key), bytes(value));
    }
    std::string err;
    EXPECT_TRUE(tree.validate(&err)) << err;
    EXPECT_EQ(tree.countEntries(), static_cast<uint64_t>(kN));

    // Cursor yields strictly ascending keys.
    auto cur = tree.cursor();
    std::string prev;
    int n = 0;
    for (cur.seekFirst(); cur.valid(); cur.next()) {
        const std::string k = str(cur.key());
        if (n > 0) {
            ASSERT_LT(prev, k);
        }
        prev = k;
        ++n;
    }
    EXPECT_EQ(n, kN);
    // Root page number is stable across splits.
    EXPECT_EQ(tree.root(), root);
}

TEST_F(BTreeTest, LargeEntriesNearTheLimit)
{
    BTree tree(&pager, root);
    for (int i = 0; i < 40; ++i) {
        std::string key = "key" + std::to_string(i);
        std::string value(kMaxEntryBytes - key.size() - 10, 'v');
        EXPECT_TRUE(tree.insert(bytes(key), bytes(value)));
    }
    std::string err;
    EXPECT_TRUE(tree.validate(&err)) << err;
    std::vector<uint8_t> val;
    EXPECT_TRUE(tree.find(bytes("key17"), &val));
    EXPECT_EQ(val.size(), kMaxEntryBytes - 15);
}

TEST_F(BTreeTest, CursorSeekPositionsAtLowerBound)
{
    BTree tree(&pager, root);
    tree.insert(bytes("b"), bytes("1"));
    tree.insert(bytes("d"), bytes("2"));
    tree.insert(bytes("f"), bytes("3"));

    auto cur = tree.cursor();
    bool exact = false;
    cur.seek(bytes("d"), &exact);
    EXPECT_TRUE(exact);
    EXPECT_EQ(str(cur.key()), "d");

    cur.seek(bytes("c"), &exact);
    EXPECT_FALSE(exact);
    EXPECT_EQ(str(cur.key()), "d");

    cur.seek(bytes("z"), &exact);
    EXPECT_FALSE(cur.valid());
}

TEST_F(BTreeTest, CursorSurvivesEmptyLeavesAfterMassDelete)
{
    BTree tree(&pager, root);
    for (int i = 0; i < 2000; ++i) {
        char key[16];
        std::snprintf(key, sizeof(key), "k%05d", i);
        tree.insert(bytes(key), bytes("x"));
    }
    // Delete a whole middle band, leaving empty leaves.
    for (int i = 500; i < 1500; ++i) {
        char key[16];
        std::snprintf(key, sizeof(key), "k%05d", i);
        EXPECT_TRUE(tree.erase(bytes(key)));
    }
    EXPECT_EQ(tree.countEntries(), 1000u);
    auto cur = tree.cursor();
    cur.seek(bytes("k00499"));
    EXPECT_EQ(str(cur.key()), "k00499");
    cur.next();
    EXPECT_EQ(str(cur.key()), "k01500") << "must skip the empty band";
    std::string err;
    EXPECT_TRUE(tree.validate(&err)) << err;
}

TEST_F(BTreeTest, TwoTreesDoNotInterfere)
{
    const uint32_t root2 = BTree::create(&pager);
    BTree a(&pager, root), b(&pager, root2);
    for (int i = 0; i < 500; ++i) {
        a.insert(bytes("a" + std::to_string(i)), bytes("A"));
        b.insert(bytes("b" + std::to_string(i)), bytes("B"));
    }
    EXPECT_EQ(a.countEntries(), 500u);
    EXPECT_EQ(b.countEntries(), 500u);
    EXPECT_FALSE(a.find(bytes("b1"), nullptr));
    EXPECT_FALSE(b.find(bytes("a1"), nullptr));
}

/** Property: matches std::map under random workloads. */
class BTreeProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BTreeProperty, MatchesReferenceModel)
{
    baselines::MemFileApi fs;
    Pager pager(&fs, "/db", 32);
    ASSERT_EQ(pager.open(true), 0);
    pager.begin();
    const uint32_t root = BTree::create(&pager);
    BTree tree(&pager, root);
    std::map<std::string, std::string> model;
    hw::Prng prng(GetParam());

    for (int step = 0; step < 4000; ++step) {
        const auto action = prng.nextBelow(10);
        std::string key =
            "key" + std::to_string(prng.nextBelow(800));
        if (action < 6) {
            std::string value =
                "v" + std::to_string(prng.nextBelow(100000));
            const bool fresh = tree.insert(bytes(key), bytes(value));
            EXPECT_EQ(fresh, model.find(key) == model.end());
            model[key] = value;
        } else if (action < 8) {
            const bool existed = tree.erase(bytes(key));
            EXPECT_EQ(existed, model.erase(key) > 0);
        } else {
            std::vector<uint8_t> val;
            const bool found = tree.find(bytes(key), &val);
            auto it = model.find(key);
            ASSERT_EQ(found, it != model.end()) << key;
            if (found) {
                EXPECT_EQ(str(val), it->second);
            }
        }
    }
    EXPECT_EQ(tree.countEntries(), model.size());
    std::string err;
    EXPECT_TRUE(tree.validate(&err)) << err;

    // Full-scan equivalence.
    auto cur = tree.cursor();
    auto it = model.begin();
    for (cur.seekFirst(); cur.valid(); cur.next(), ++it) {
        ASSERT_NE(it, model.end());
        EXPECT_EQ(str(cur.key()), it->first);
        EXPECT_EQ(str(cur.value()), it->second);
    }
    EXPECT_EQ(it, model.end());
    pager.commit();
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeProperty,
                         ::testing::Values(101, 202, 303, 404));

} // namespace
} // namespace cubicleos::minisql
