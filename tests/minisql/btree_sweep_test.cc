/**
 * @file
 * Parameterized B+tree sweeps: entry sizes from tiny keys to the
 * per-entry limit, ensuring split logic is correct at every payload
 * shape (cells per page ranges from ~2 to hundreds).
 */

#include <gtest/gtest.h>

#include <string>

#include "apps/minisql/btree.h"
#include "baselines/memfs.h"

namespace cubicleos::minisql {
namespace {

struct SweepParam {
    std::size_t keyLen;
    std::size_t valLen;
    int entries;
};

class BTreeSweep : public ::testing::TestWithParam<SweepParam> {};

std::vector<uint8_t>
paddedKey(int i, std::size_t len)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%012d", i);
    std::vector<uint8_t> key(buf, buf + 12);
    key.resize(std::max<std::size_t>(len, 12), 'k');
    return key;
}

TEST_P(BTreeSweep, InsertFindScanErase)
{
    const SweepParam p = GetParam();
    baselines::MemFileApi fs;
    Pager pager(&fs, "/sweep.db", 64);
    ASSERT_EQ(pager.open(true), 0);
    pager.begin();
    BTree tree(&pager, BTree::create(&pager));

    // Insert in a scattered order.
    for (int i = 0; i < p.entries; ++i) {
        const int k = (i * 31) % p.entries;
        std::vector<uint8_t> value(p.valLen,
                                   static_cast<uint8_t>(k & 0xFF));
        ASSERT_TRUE(tree.insert(paddedKey(k, p.keyLen), value)) << k;
    }
    std::string err;
    ASSERT_TRUE(tree.validate(&err)) << err;
    ASSERT_EQ(tree.countEntries(),
              static_cast<uint64_t>(p.entries));

    // Every entry is found with the right payload.
    for (int k = 0; k < p.entries; k += 7) {
        std::vector<uint8_t> value;
        ASSERT_TRUE(tree.find(paddedKey(k, p.keyLen), &value)) << k;
        ASSERT_EQ(value.size(), p.valLen);
        if (p.valLen > 0) {
            EXPECT_EQ(value[0], static_cast<uint8_t>(k & 0xFF));
        }
    }

    // Ordered scan sees every key exactly once, ascending.
    auto cur = tree.cursor();
    int count = 0;
    std::vector<uint8_t> prev;
    for (cur.seekFirst(); cur.valid(); cur.next(), ++count) {
        const auto k = cur.key();
        if (count > 0) {
            ASSERT_LT(std::lexicographical_compare(
                          k.begin(), k.end(), prev.begin(), prev.end()),
                      1);
        }
        prev = k;
    }
    EXPECT_EQ(count, p.entries);

    // Erase every other entry; the rest stay intact.
    for (int k = 0; k < p.entries; k += 2)
        ASSERT_TRUE(tree.erase(paddedKey(k, p.keyLen)));
    ASSERT_TRUE(tree.validate(&err)) << err;
    EXPECT_EQ(tree.countEntries(),
              static_cast<uint64_t>(p.entries / 2));
    for (int k = 1; k < p.entries; k += 2)
        ASSERT_TRUE(tree.find(paddedKey(k, p.keyLen), nullptr)) << k;

    pager.commit();
}

INSTANTIATE_TEST_SUITE_P(
    PayloadShapes, BTreeSweep,
    ::testing::Values(
        SweepParam{12, 0, 3000},    // index-like: key only
        SweepParam{12, 16, 2000},   // small rows
        SweepParam{12, 120, 1500},  // typical rows
        SweepParam{64, 400, 800},   // wide keys, medium rows
        SweepParam{12, 1500, 300},  // near the entry limit: ~2/page
        SweepParam{200, 1500, 200}, // max-ish everything
        SweepParam{12, 48, 6000})); // deep tree

} // namespace
} // namespace cubicleos::minisql
