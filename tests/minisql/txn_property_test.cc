/**
 * @file
 * Transaction property tests: randomized commit/rollback/crash
 * sequences must always leave the database equal to the reference
 * model built from committed operations only.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "apps/minisql/btree.h"
#include "apps/minisql/db.h"
#include "baselines/memfs.h"
#include "hw/prng.h"

namespace cubicleos::minisql {
namespace {

std::vector<uint8_t>
key(int64_t k)
{
    std::vector<uint8_t> out;
    Value(k).encodeKey(&out);
    return out;
}

/**
 * Property: after any interleaving of {insert, erase} batches ended by
 * {commit, rollback, crash}, reopening the database shows exactly the
 * committed state.
 */
class TxnDurability : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TxnDurability, CommittedStateSurvivesAnything)
{
    baselines::MemFileApi fs;
    hw::Prng prng(GetParam());
    std::map<int64_t, std::string> committed;

    // Create the tree once.
    uint32_t root;
    {
        Pager pager(&fs, "/p.db", 16);
        ASSERT_EQ(pager.open(true), 0);
        pager.begin();
        root = BTree::create(&pager);
        pager.setSchemaRoot(root);
        pager.commit();
    }

    for (int round = 0; round < 20; ++round) {
        auto pager = std::make_unique<Pager>(&fs, "/p.db", 16);
        ASSERT_EQ(pager->open(false), 0);
        root = pager->schemaRoot();
        BTree tree(pager.get(), root);

        // Verify the reopened state matches the committed model.
        uint64_t n = 0;
        auto cur = tree.cursor();
        auto it = committed.begin();
        for (cur.seekFirst(); cur.valid(); cur.next(), ++it, ++n) {
            ASSERT_NE(it, committed.end()) << "round " << round;
            const auto v = cur.value();
            ASSERT_EQ(std::string(v.begin(), v.end()), it->second);
        }
        ASSERT_EQ(n, committed.size()) << "round " << round;

        // Apply a random batch.
        pager->begin();
        std::map<int64_t, std::string> pending = committed;
        const int ops = 5 + static_cast<int>(prng.nextBelow(40));
        for (int i = 0; i < ops; ++i) {
            const int64_t k =
                static_cast<int64_t>(prng.nextBelow(300));
            if (prng.nextBelow(4) != 0) {
                std::string v =
                    "r" + std::to_string(round) + "v" +
                    std::to_string(prng.nextBelow(100000));
                tree.insert(key(k),
                            {reinterpret_cast<const uint8_t *>(
                                 v.data()),
                             v.size()});
                pending[k] = v;
            } else {
                tree.erase(key(k));
                pending.erase(k);
            }
        }

        // End the round: commit, rollback, or crash.
        switch (prng.nextBelow(3)) {
          case 0:
            pager->commit();
            committed = std::move(pending);
            break;
          case 1:
            pager->rollback();
            break;
          default:
            // Crash: flush some pages to "disk" first so recovery has
            // something real to undo, then drop the pager mid-txn.
            pager->flushAll();
            break; // destructor leaves the hot journal behind
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TxnDurability,
                         ::testing::Values(7, 77, 777, 7777));

/** Property: SQL-level transactions preserve aggregate invariants. */
TEST(TxnProperty, BankTransferInvariant)
{
    baselines::MemFileApi fs;
    Database db(&fs, "/bank.db", 32);
    ASSERT_EQ(db.open(), 0);
    db.exec("CREATE TABLE accounts (id INTEGER PRIMARY KEY, "
            "balance INTEGER)");
    db.exec("BEGIN");
    for (int i = 1; i <= 20; ++i) {
        db.exec("INSERT INTO accounts VALUES (" + std::to_string(i) +
                ", 100)");
    }
    db.exec("COMMIT");

    hw::Prng prng(99);
    for (int i = 0; i < 50; ++i) {
        const int from = 1 + static_cast<int>(prng.nextBelow(20));
        const int to = 1 + static_cast<int>(prng.nextBelow(20));
        const int amt = static_cast<int>(prng.nextBelow(50));
        db.exec("BEGIN");
        db.exec("UPDATE accounts SET balance = balance - " +
                std::to_string(amt) + " WHERE id = " +
                std::to_string(from));
        db.exec("UPDATE accounts SET balance = balance + " +
                std::to_string(amt) + " WHERE id = " +
                std::to_string(to));
        if (prng.nextBelow(3) == 0) {
            db.exec("ROLLBACK");
        } else {
            db.exec("COMMIT");
        }
        // Money is conserved after every transaction boundary.
        ASSERT_EQ(db.exec("SELECT sum(balance) FROM accounts")
                      .scalarInt(),
                  2000)
            << "iteration " << i;
    }
    EXPECT_EQ(db.exec("PRAGMA integrity_check").rows[0][0].asText(),
              "ok");
}

} // namespace
} // namespace cubicleos::minisql
