/**
 * @file
 * End-to-end SQL tests over the in-memory file substrate: DDL, DML,
 * planning (index vs full scan), joins, aggregates, transactions,
 * persistence, and error handling.
 */

#include <gtest/gtest.h>

#include "apps/minisql/db.h"
#include "baselines/memfs.h"

namespace cubicleos::minisql {
namespace {

class SqlTest : public ::testing::Test {
  protected:
    SqlTest() : db(&fs, "/test.db", 64)
    {
        EXPECT_EQ(db.open(), 0);
    }

    baselines::MemFileApi fs;
    Database db;
};

TEST_F(SqlTest, CreateInsertSelect)
{
    db.exec("CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT)");
    db.exec("INSERT INTO t VALUES (1, 'one'), (2, 'two'), (3, 'three')");
    auto rs = db.exec("SELECT name FROM t WHERE id = 2");
    ASSERT_EQ(rs.rows.size(), 1u);
    EXPECT_EQ(rs.rows[0][0].asText(), "two");
}

TEST_F(SqlTest, SelectStarPreservesColumnOrder)
{
    db.exec("CREATE TABLE t (a INTEGER, b TEXT, c REAL)");
    db.exec("INSERT INTO t VALUES (1, 'x', 2.5)");
    auto rs = db.exec("SELECT * FROM t");
    ASSERT_EQ(rs.columns.size(), 3u);
    EXPECT_EQ(rs.columns[0], "a");
    EXPECT_EQ(rs.columns[2], "c");
    EXPECT_DOUBLE_EQ(rs.rows[0][2].asReal(), 2.5);
}

TEST_F(SqlTest, AutoRowidWithoutIntegerPrimaryKey)
{
    db.exec("CREATE TABLE t (name TEXT)");
    db.exec("INSERT INTO t VALUES ('a'), ('b')");
    auto rs = db.exec("SELECT rowid, name FROM t ORDER BY rowid");
    ASSERT_EQ(rs.rows.size(), 2u);
    EXPECT_EQ(rs.rows[0][0].asInt(), 1);
    EXPECT_EQ(rs.rows[1][0].asInt(), 2);
}

TEST_F(SqlTest, WhereComparisonsAndLogic)
{
    db.exec("CREATE TABLE n (v INTEGER)");
    db.exec("INSERT INTO n VALUES (1),(2),(3),(4),(5),(6)");
    EXPECT_EQ(db.exec("SELECT count(*) FROM n WHERE v > 3").scalarInt(),
              3);
    EXPECT_EQ(db.exec("SELECT count(*) FROM n WHERE v >= 3 AND v < 6")
                  .scalarInt(),
              3);
    EXPECT_EQ(
        db.exec("SELECT count(*) FROM n WHERE v = 1 OR v = 6")
            .scalarInt(),
        2);
    EXPECT_EQ(db.exec("SELECT count(*) FROM n WHERE NOT v = 1")
                  .scalarInt(),
              5);
    EXPECT_EQ(db.exec("SELECT count(*) FROM n WHERE v BETWEEN 2 AND 4")
                  .scalarInt(),
              3);
    EXPECT_EQ(db.exec("SELECT count(*) FROM n WHERE v IN (1, 3, 9)")
                  .scalarInt(),
              2);
}

TEST_F(SqlTest, ArithmeticInSelect)
{
    db.exec("CREATE TABLE t (a INTEGER, b INTEGER)");
    db.exec("INSERT INTO t VALUES (7, 2)");
    auto rs = db.exec(
        "SELECT a + b, a - b, a * b, a / b, a % b, -a FROM t");
    EXPECT_EQ(rs.rows[0][0].asInt(), 9);
    EXPECT_EQ(rs.rows[0][1].asInt(), 5);
    EXPECT_EQ(rs.rows[0][2].asInt(), 14);
    EXPECT_EQ(rs.rows[0][3].asInt(), 3);
    EXPECT_EQ(rs.rows[0][4].asInt(), 1);
    EXPECT_EQ(rs.rows[0][5].asInt(), -7);
}

TEST_F(SqlTest, LikePatterns)
{
    db.exec("CREATE TABLE t (s TEXT)");
    db.exec("INSERT INTO t VALUES ('apple'),('apricot'),('banana')");
    EXPECT_EQ(
        db.exec("SELECT count(*) FROM t WHERE s LIKE 'ap%'").scalarInt(),
        2);
    EXPECT_EQ(db.exec("SELECT count(*) FROM t WHERE s LIKE '%an%'")
                  .scalarInt(),
              1);
    EXPECT_EQ(db.exec("SELECT count(*) FROM t WHERE s LIKE 'a____'")
                  .scalarInt(),
              1);
}

TEST_F(SqlTest, OrderByAndLimit)
{
    db.exec("CREATE TABLE t (v INTEGER)");
    db.exec("INSERT INTO t VALUES (3),(1),(4),(1),(5),(9),(2),(6)");
    auto rs = db.exec("SELECT v FROM t ORDER BY v DESC LIMIT 3");
    ASSERT_EQ(rs.rows.size(), 3u);
    EXPECT_EQ(rs.rows[0][0].asInt(), 9);
    EXPECT_EQ(rs.rows[1][0].asInt(), 6);
    EXPECT_EQ(rs.rows[2][0].asInt(), 5);
}

TEST_F(SqlTest, Aggregates)
{
    db.exec("CREATE TABLE t (v INTEGER, g TEXT)");
    db.exec("INSERT INTO t VALUES (1,'a'),(2,'a'),(3,'b'),(4,'b'),"
            "(5,'b')");
    auto rs = db.exec(
        "SELECT count(*), sum(v), avg(v), min(v), max(v) FROM t");
    EXPECT_EQ(rs.rows[0][0].asInt(), 5);
    EXPECT_EQ(rs.rows[0][1].asInt(), 15);
    EXPECT_DOUBLE_EQ(rs.rows[0][2].asReal(), 3.0);
    EXPECT_EQ(rs.rows[0][3].asInt(), 1);
    EXPECT_EQ(rs.rows[0][4].asInt(), 5);
}

TEST_F(SqlTest, GroupBy)
{
    db.exec("CREATE TABLE t (v INTEGER, g TEXT)");
    db.exec("INSERT INTO t VALUES (1,'a'),(2,'a'),(3,'b'),(4,'b'),"
            "(5,'b')");
    auto rs = db.exec(
        "SELECT g, count(*), sum(v) FROM t GROUP BY g ORDER BY g");
    ASSERT_EQ(rs.rows.size(), 2u);
    EXPECT_EQ(rs.rows[0][0].asText(), "a");
    EXPECT_EQ(rs.rows[0][1].asInt(), 2);
    EXPECT_EQ(rs.rows[0][2].asInt(), 3);
    EXPECT_EQ(rs.rows[1][0].asText(), "b");
    EXPECT_EQ(rs.rows[1][2].asInt(), 12);
}

TEST_F(SqlTest, AggregateOverEmptyTable)
{
    db.exec("CREATE TABLE t (v INTEGER)");
    auto rs = db.exec("SELECT count(*), sum(v) FROM t");
    ASSERT_EQ(rs.rows.size(), 1u);
    EXPECT_EQ(rs.rows[0][0].asInt(), 0);
    EXPECT_TRUE(rs.rows[0][1].isNull());
}

TEST_F(SqlTest, UpdateWithWhere)
{
    db.exec("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)");
    db.exec("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)");
    auto rs = db.exec("UPDATE t SET v = v + 100 WHERE id >= 2");
    EXPECT_EQ(rs.scalarInt(), 2);
    EXPECT_EQ(db.exec("SELECT v FROM t WHERE id = 1").scalarInt(), 10);
    EXPECT_EQ(db.exec("SELECT v FROM t WHERE id = 3").scalarInt(), 130);
}

TEST_F(SqlTest, DeleteWithWhere)
{
    db.exec("CREATE TABLE t (v INTEGER)");
    db.exec("INSERT INTO t VALUES (1),(2),(3),(4)");
    EXPECT_EQ(db.exec("DELETE FROM t WHERE v % 2 = 0").scalarInt(), 2);
    EXPECT_EQ(db.exec("SELECT count(*) FROM t").scalarInt(), 2);
}

TEST_F(SqlTest, IndexSpeedsLookupsAndStaysConsistent)
{
    db.exec("CREATE TABLE t (id INTEGER PRIMARY KEY, tag INTEGER)");
    db.exec("BEGIN");
    for (int i = 1; i <= 500; ++i) {
        db.exec("INSERT INTO t VALUES (" + std::to_string(i) + ", " +
                std::to_string(i % 50) + ")");
    }
    db.exec("COMMIT");
    db.exec("CREATE INDEX tag_idx ON t(tag)");

    // Indexed lookup touches far fewer pages than a full scan.
    db.resetPagerStats();
    EXPECT_EQ(db.exec("SELECT count(*) FROM t WHERE tag = 7")
                  .scalarInt(),
              10);
    const uint64_t with_index = db.pagerStats().cacheHits +
                                db.pagerStats().cacheMisses;
    db.resetPagerStats();
    EXPECT_EQ(db.exec("SELECT count(*) FROM t WHERE tag + 0 = 7")
                  .scalarInt(),
              10);
    const uint64_t full_scan = db.pagerStats().cacheHits +
                               db.pagerStats().cacheMisses;
    EXPECT_LT(with_index * 2, full_scan);

    // Index stays consistent under updates and deletes.
    db.exec("UPDATE t SET tag = 999 WHERE id = 7");
    EXPECT_EQ(db.exec("SELECT count(*) FROM t WHERE tag = 999")
                  .scalarInt(),
              1);
    EXPECT_EQ(db.exec("SELECT count(*) FROM t WHERE tag = 7")
                  .scalarInt(),
              9);
    db.exec("DELETE FROM t WHERE tag = 999");
    EXPECT_EQ(db.exec("SELECT count(*) FROM t WHERE tag = 999")
                  .scalarInt(),
              0);
}

TEST_F(SqlTest, UniqueIndexRejectsDuplicates)
{
    db.exec("CREATE TABLE t (v INTEGER)");
    db.exec("CREATE UNIQUE INDEX u ON t(v)");
    db.exec("INSERT INTO t VALUES (1)");
    EXPECT_THROW(db.exec("INSERT INTO t VALUES (1)"), SqlError);
    EXPECT_EQ(db.exec("SELECT count(*) FROM t").scalarInt(), 1);
}

TEST_F(SqlTest, PrimaryKeyDuplicateRejected)
{
    db.exec("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)");
    db.exec("INSERT INTO t VALUES (5, 'x')");
    EXPECT_THROW(db.exec("INSERT INTO t VALUES (5, 'y')"), SqlError);
}

TEST_F(SqlTest, JoinWithIndexedInner)
{
    db.exec("CREATE TABLE users (id INTEGER PRIMARY KEY, name TEXT)");
    db.exec("CREATE TABLE orders (id INTEGER PRIMARY KEY, "
            "user_id INTEGER, amount INTEGER)");
    db.exec("INSERT INTO users VALUES (1,'ann'),(2,'bob'),(3,'cat')");
    db.exec("INSERT INTO orders VALUES (1,1,10),(2,1,20),(3,2,30)");

    auto rs = db.exec(
        "SELECT u.name, sum(o.amount) FROM users u "
        "JOIN orders o ON o.user_id = u.id "
        "GROUP BY u.name ORDER BY u.name");
    ASSERT_EQ(rs.rows.size(), 2u);
    EXPECT_EQ(rs.rows[0][0].asText(), "ann");
    EXPECT_EQ(rs.rows[0][1].asInt(), 30);
    EXPECT_EQ(rs.rows[1][0].asText(), "bob");
    EXPECT_EQ(rs.rows[1][1].asInt(), 30);
}

TEST_F(SqlTest, ExplicitTransactionCommit)
{
    db.exec("CREATE TABLE t (v INTEGER)");
    db.exec("BEGIN");
    db.exec("INSERT INTO t VALUES (1)");
    db.exec("INSERT INTO t VALUES (2)");
    db.exec("COMMIT");
    EXPECT_EQ(db.exec("SELECT count(*) FROM t").scalarInt(), 2);
}

TEST_F(SqlTest, ExplicitTransactionRollback)
{
    db.exec("CREATE TABLE t (v INTEGER)");
    db.exec("INSERT INTO t VALUES (1)");
    db.exec("BEGIN");
    db.exec("INSERT INTO t VALUES (2)");
    db.exec("INSERT INTO t VALUES (3)");
    db.exec("ROLLBACK");
    EXPECT_EQ(db.exec("SELECT count(*) FROM t").scalarInt(), 1);
}

TEST_F(SqlTest, RollbackRestoresSchema)
{
    db.exec("BEGIN");
    db.exec("CREATE TABLE ephemeral (v INTEGER)");
    db.exec("ROLLBACK");
    EXPECT_THROW(db.exec("SELECT * FROM ephemeral"), SqlError);
}

TEST_F(SqlTest, PersistenceAcrossReopen)
{
    db.exec("CREATE TABLE t (id INTEGER PRIMARY KEY, s TEXT)");
    db.exec("INSERT INTO t VALUES (1, 'persisted')");
    db.exec("CREATE INDEX s_idx ON t(s)");

    Database db2(&fs, "/test.db", 64);
    ASSERT_EQ(db2.open(false), 0);
    auto rs =
        db2.exec("SELECT s FROM t WHERE s = 'persisted'");
    ASSERT_EQ(rs.rows.size(), 1u);
    EXPECT_EQ(rs.rows[0][0].asText(), "persisted");
    // Auto-rowid continues after the existing maximum.
    db2.exec("INSERT INTO t (s) VALUES ('second')");
    EXPECT_EQ(db2.exec("SELECT max(id) FROM t").scalarInt(), 2);
}

TEST_F(SqlTest, DropTable)
{
    db.exec("CREATE TABLE t (v INTEGER)");
    db.exec("INSERT INTO t VALUES (1)");
    db.exec("DROP TABLE t");
    EXPECT_THROW(db.exec("SELECT * FROM t"), SqlError);
    // Recreate works and starts empty.
    db.exec("CREATE TABLE t (v INTEGER)");
    EXPECT_EQ(db.exec("SELECT count(*) FROM t").scalarInt(), 0);
}

TEST_F(SqlTest, IntegrityCheckPragma)
{
    db.exec("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)");
    db.exec("BEGIN");
    for (int i = 0; i < 300; ++i) {
        db.exec("INSERT INTO t (v) VALUES ('row" + std::to_string(i) +
                "')");
    }
    db.exec("COMMIT");
    auto rs = db.exec("PRAGMA integrity_check");
    ASSERT_EQ(rs.rows.size(), 1u);
    EXPECT_EQ(rs.rows[0][0].asText(), "ok");
}

TEST_F(SqlTest, NullHandling)
{
    db.exec("CREATE TABLE t (v INTEGER)");
    db.exec("INSERT INTO t VALUES (1), (NULL), (3)");
    EXPECT_EQ(db.exec("SELECT count(v) FROM t").scalarInt(), 2);
    EXPECT_EQ(db.exec("SELECT count(*) FROM t").scalarInt(), 3);
    EXPECT_EQ(db.exec("SELECT count(*) FROM t WHERE v IS NULL")
                  .scalarInt(),
              1);
    EXPECT_EQ(db.exec("SELECT count(*) FROM t WHERE v IS NOT NULL")
                  .scalarInt(),
              2);
    EXPECT_EQ(db.exec("SELECT sum(v) FROM t").scalarInt(), 4);
}

TEST_F(SqlTest, SyntaxErrorsAreReported)
{
    EXPECT_THROW(db.exec("SELEC 1"), SqlError);
    EXPECT_THROW(db.exec("SELECT FROM t"), SqlError);
    EXPECT_THROW(db.exec("CREATE TABLE"), SqlError);
    EXPECT_THROW(db.exec("INSERT INTO nowhere VALUES (1)"), SqlError);
}

TEST_F(SqlTest, UnknownColumnIsError)
{
    db.exec("CREATE TABLE t (v INTEGER)");
    db.exec("INSERT INTO t VALUES (1)");
    EXPECT_THROW(db.exec("SELECT nope FROM t"), SqlError);
    EXPECT_THROW(db.exec("SELECT * FROM t WHERE nope = 1"), SqlError);
}

TEST_F(SqlTest, QuotedStringsWithEscapes)
{
    db.exec("CREATE TABLE t (s TEXT)");
    db.exec("INSERT INTO t VALUES ('it''s quoted')");
    auto rs = db.exec("SELECT s FROM t");
    EXPECT_EQ(rs.rows[0][0].asText(), "it's quoted");
}

TEST_F(SqlTest, RangeScanOnPrimaryKeyIsOrdered)
{
    db.exec("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)");
    db.exec("BEGIN");
    for (int i = 100; i >= 1; --i) {
        db.exec("INSERT INTO t VALUES (" + std::to_string(i) + "," +
                std::to_string(i * 10) + ")");
    }
    db.exec("COMMIT");
    auto rs =
        db.exec("SELECT id FROM t WHERE id > 40 AND id <= 45");
    ASSERT_EQ(rs.rows.size(), 5u);
    EXPECT_EQ(rs.rows[0][0].asInt(), 41);
    EXPECT_EQ(rs.rows[4][0].asInt(), 45);
}

TEST_F(SqlTest, SelectWithoutFrom)
{
    auto rs = db.exec("SELECT 41 + 1 AS answer, 'x'");
    ASSERT_EQ(rs.rows.size(), 1u);
    EXPECT_EQ(rs.columns[0], "answer");
    EXPECT_EQ(rs.rows[0][0].asInt(), 42);
    EXPECT_EQ(rs.rows[0][1].asText(), "x");
    // A false WHERE suppresses the row.
    EXPECT_TRUE(db.exec("SELECT 1 WHERE 0").rows.empty());
}

TEST_F(SqlTest, MultiStatementExec)
{
    auto rs = db.exec("CREATE TABLE t (v INTEGER); "
                      "INSERT INTO t VALUES (7); "
                      "SELECT v FROM t");
    ASSERT_EQ(rs.rows.size(), 1u);
    EXPECT_EQ(rs.rows[0][0].asInt(), 7);
}

} // namespace
} // namespace cubicleos::minisql
