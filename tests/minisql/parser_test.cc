/**
 * @file
 * Parser and tokenizer unit tests: statement structure, expression
 * precedence, literals, and syntax-error behaviour.
 */

#include <gtest/gtest.h>

#include "apps/minisql/parser.h"

namespace cubicleos::minisql {
namespace {

Stmt
one(const std::string &sql)
{
    auto stmts = parseSql(sql);
    EXPECT_EQ(stmts.size(), 1u);
    return std::move(stmts[0]);
}

TEST(Parser, CreateTableColumnsAndTypes)
{
    auto stmt = one("CREATE TABLE t (a INTEGER PRIMARY KEY, b REAL, "
                    "c TEXT, d VARCHAR(100))");
    auto &ct = std::get<CreateTableStmt>(stmt);
    ASSERT_EQ(ct.columns.size(), 4u);
    EXPECT_EQ(ct.columns[0].type, ValueType::kInt);
    EXPECT_TRUE(ct.columns[0].primaryKey);
    EXPECT_EQ(ct.columns[1].type, ValueType::kReal);
    EXPECT_EQ(ct.columns[2].type, ValueType::kText);
    EXPECT_EQ(ct.columns[3].type, ValueType::kText);
    EXPECT_FALSE(ct.ifNotExists);
}

TEST(Parser, CreateTableIfNotExists)
{
    auto stmt = one("CREATE TABLE IF NOT EXISTS t (a INTEGER)");
    EXPECT_TRUE(std::get<CreateTableStmt>(stmt).ifNotExists);
}

TEST(Parser, CreateUniqueIndex)
{
    auto stmt = one("CREATE UNIQUE INDEX i ON t(col)");
    auto &ci = std::get<CreateIndexStmt>(stmt);
    EXPECT_TRUE(ci.unique);
    EXPECT_EQ(ci.table, "t");
    EXPECT_EQ(ci.column, "col");
}

TEST(Parser, InsertMultiRowAndColumnList)
{
    auto stmt =
        one("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')");
    auto &ins = std::get<InsertStmt>(stmt);
    EXPECT_EQ(ins.columns, (std::vector<std::string>{"a", "b"}));
    ASSERT_EQ(ins.rows.size(), 2u);
    EXPECT_EQ(ins.rows[1][0]->lit.asInt(), 2);
    EXPECT_EQ(ins.rows[1][1]->lit.asText(), "y");
}

TEST(Parser, SelectFullClauseSet)
{
    auto stmt = one(
        "SELECT a, count(*) AS n FROM t u JOIN s ON s.id = u.id "
        "WHERE a > 1 AND b < 2 GROUP BY a ORDER BY n DESC LIMIT 7");
    auto &sel = std::get<SelectStmt>(stmt);
    EXPECT_EQ(sel.items.size(), 2u);
    EXPECT_EQ(sel.items[1].alias, "n");
    EXPECT_EQ(sel.table, "t");
    EXPECT_EQ(sel.tableAlias, "u");
    ASSERT_EQ(sel.joins.size(), 1u);
    EXPECT_EQ(sel.joins[0].table, "s");
    ASSERT_NE(sel.where, nullptr);
    EXPECT_EQ(sel.where->op, ExprOp::kAnd);
    EXPECT_EQ(sel.groupBy.size(), 1u);
    ASSERT_EQ(sel.orderBy.size(), 1u);
    EXPECT_TRUE(sel.orderBy[0].desc);
    EXPECT_EQ(sel.limit, 7);
}

TEST(Parser, ArithmeticPrecedence)
{
    auto stmt = one("SELECT 1 + 2 * 3 FROM t");
    auto &sel = std::get<SelectStmt>(stmt);
    const Expr &e = *sel.items[0].expr;
    ASSERT_EQ(e.op, ExprOp::kAdd);
    EXPECT_EQ(e.args[0]->lit.asInt(), 1);
    EXPECT_EQ(e.args[1]->op, ExprOp::kMul);
}

TEST(Parser, ParenthesesOverridePrecedence)
{
    auto stmt = one("SELECT (1 + 2) * 3 FROM t");
    const Expr &e = *std::get<SelectStmt>(stmt).items[0].expr;
    ASSERT_EQ(e.op, ExprOp::kMul);
    EXPECT_EQ(e.args[0]->op, ExprOp::kAdd);
}

TEST(Parser, AndBindsTighterThanOr)
{
    auto stmt = one("SELECT 1 FROM t WHERE a = 1 OR b = 2 AND c = 3");
    const Expr &w = *std::get<SelectStmt>(stmt).where;
    ASSERT_EQ(w.op, ExprOp::kOr);
    EXPECT_EQ(w.args[1]->op, ExprOp::kAnd);
}

TEST(Parser, ComparisonOperators)
{
    for (const char *op : {"=", "==", "!=", "<>", "<", "<=", ">", ">="}) {
        auto stmt =
            one(std::string("SELECT 1 FROM t WHERE a ") + op + " 1");
        EXPECT_NE(std::get<SelectStmt>(stmt).where, nullptr) << op;
    }
}

TEST(Parser, BetweenInLikeIsNull)
{
    auto s1 = one("SELECT 1 FROM t WHERE a BETWEEN 1 AND 5");
    EXPECT_EQ(std::get<SelectStmt>(s1).where->op, ExprOp::kBetween);
    auto s2 = one("SELECT 1 FROM t WHERE a IN (1, 2, 3)");
    EXPECT_EQ(std::get<SelectStmt>(s2).where->op, ExprOp::kIn);
    EXPECT_EQ(std::get<SelectStmt>(s2).where->args.size(), 4u);
    auto s3 = one("SELECT 1 FROM t WHERE a LIKE 'x%'");
    EXPECT_EQ(std::get<SelectStmt>(s3).where->op, ExprOp::kLike);
    auto s4 = one("SELECT 1 FROM t WHERE a IS NULL");
    EXPECT_EQ(std::get<SelectStmt>(s4).where->op, ExprOp::kEq);
    auto s5 = one("SELECT 1 FROM t WHERE a IS NOT NULL");
    EXPECT_EQ(std::get<SelectStmt>(s5).where->op, ExprOp::kNot);
}

TEST(Parser, NumericLiterals)
{
    auto stmt = one("SELECT 42, -7, 3.25, 1e3, .5 FROM t");
    auto &items = std::get<SelectStmt>(stmt).items;
    EXPECT_EQ(items[0].expr->lit.asInt(), 42);
    EXPECT_EQ(items[1].expr->op, ExprOp::kNeg);
    EXPECT_DOUBLE_EQ(items[2].expr->lit.asReal(), 3.25);
    EXPECT_DOUBLE_EQ(items[3].expr->lit.asReal(), 1000.0);
    EXPECT_DOUBLE_EQ(items[4].expr->lit.asReal(), 0.5);
}

TEST(Parser, StringEscaping)
{
    auto stmt = one("SELECT 'a''b' FROM t");
    EXPECT_EQ(std::get<SelectStmt>(stmt).items[0].expr->lit.asText(),
              "a'b");
}

TEST(Parser, KeywordsAreCaseInsensitive)
{
    auto stmt = one("select a from t where a = 1 order by a desc");
    EXPECT_EQ(std::get<SelectStmt>(stmt).orderBy.size(), 1u);
}

TEST(Parser, LineCommentsIgnored)
{
    auto stmts = parseSql("-- leading comment\n"
                          "SELECT 1 FROM t -- trailing\n");
    EXPECT_EQ(stmts.size(), 1u);
}

TEST(Parser, MultipleStatements)
{
    auto stmts = parseSql("BEGIN; INSERT INTO t VALUES (1); COMMIT;");
    ASSERT_EQ(stmts.size(), 3u);
    EXPECT_EQ(std::get<TxnStmt>(stmts[0]).kind, TxnStmt::kBegin);
    EXPECT_EQ(std::get<TxnStmt>(stmts[2]).kind, TxnStmt::kCommit);
}

TEST(Parser, QualifiedColumnRefs)
{
    auto stmt = one("SELECT t.a FROM t WHERE t.a = 1");
    const Expr &e = *std::get<SelectStmt>(stmt).items[0].expr;
    EXPECT_EQ(e.table, "t");
    EXPECT_EQ(e.column, "a");
}

TEST(Parser, UpdateAndDelete)
{
    auto u = one("UPDATE t SET a = a + 1, b = 'x' WHERE a < 3");
    auto &upd = std::get<UpdateStmt>(u);
    EXPECT_EQ(upd.sets.size(), 2u);
    EXPECT_NE(upd.where, nullptr);

    auto d = one("DELETE FROM t");
    EXPECT_EQ(std::get<DeleteStmt>(d).where, nullptr);
}

TEST(Parser, SyntaxErrors)
{
    EXPECT_THROW(parseSql("SELECT"), SqlError);
    EXPECT_THROW(parseSql("SELECT 1 FROM"), SqlError);
    EXPECT_THROW(parseSql("INSERT t VALUES (1)"), SqlError);
    EXPECT_THROW(parseSql("CREATE TABLE t ()"), SqlError);
    EXPECT_THROW(parseSql("SELECT 'unterminated FROM t"), SqlError);
    EXPECT_THROW(parseSql("SELECT 1 FROM t WHERE"), SqlError);
    EXPECT_THROW(parseSql("SELECT (1 FROM t"), SqlError);
    EXPECT_THROW(parseSql("SELECT 1 FROM t LIMIT x"), SqlError);
    EXPECT_THROW(parseSql("DELETE t"), SqlError);
    EXPECT_THROW(parseSql("xyzzy"), SqlError);
}

TEST(Parser, EmptyInputYieldsNothing)
{
    EXPECT_TRUE(parseSql("").empty());
    EXPECT_TRUE(parseSql("  ;;  ; ").empty());
}

TEST(Parser, PragmaStatement)
{
    auto stmt = one("PRAGMA integrity_check");
    EXPECT_EQ(std::get<PragmaStmt>(stmt).name, "integrity_check");
}

} // namespace
} // namespace cubicleos::minisql
