/**
 * @file
 * Unit and property tests for SQL values, comparison semantics and the
 * order-preserving key encoding.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "apps/minisql/value.h"
#include "hw/prng.h"

namespace cubicleos::minisql {
namespace {

int
keyCompare(const std::vector<uint8_t> &a, const std::vector<uint8_t> &b)
{
    const std::size_t n = std::min(a.size(), b.size());
    const int c = n ? std::memcmp(a.data(), b.data(), n) : 0;
    if (c != 0)
        return c < 0 ? -1 : 1;
    return a.size() < b.size() ? -1 : a.size() > b.size() ? 1 : 0;
}

std::vector<uint8_t>
enc(const Value &v)
{
    std::vector<uint8_t> out;
    v.encodeKey(&out);
    return out;
}

TEST(Value, TypesAndCoercions)
{
    EXPECT_TRUE(Value::null().isNull());
    EXPECT_EQ(Value(int64_t{42}).asInt(), 42);
    EXPECT_DOUBLE_EQ(Value(int64_t{42}).asReal(), 42.0);
    EXPECT_EQ(Value(3.5).asInt(), 3);
    EXPECT_EQ(Value(std::string("17")).asInt(), 17);
    EXPECT_EQ(Value(std::string("abc")).asText(), "abc");
    EXPECT_EQ(Value(int64_t{-5}).asText(), "-5");
    EXPECT_EQ(Value::null().asText(), "NULL");
}

TEST(Value, CompareWithinTypes)
{
    EXPECT_LT(Value(int64_t{1}).compare(Value(int64_t{2})), 0);
    EXPECT_EQ(Value(int64_t{7}).compare(Value(int64_t{7})), 0);
    EXPECT_GT(Value(2.5).compare(Value(2.0)), 0);
    EXPECT_LT(Value(std::string("apple")).compare(
                  Value(std::string("banana"))),
              0);
}

TEST(Value, CompareAcrossNumericTypes)
{
    EXPECT_EQ(Value(int64_t{3}).compare(Value(3.0)), 0);
    EXPECT_LT(Value(int64_t{3}).compare(Value(3.5)), 0);
    EXPECT_GT(Value(4.5).compare(Value(int64_t{4})), 0);
}

TEST(Value, StorageClassOrdering)
{
    // NULL < numbers < text (SQLite ordering).
    EXPECT_LT(Value::null().compare(Value(int64_t{-999})), 0);
    EXPECT_LT(Value(int64_t{999}).compare(Value(std::string(""))), 0);
}

TEST(Value, Truthiness)
{
    EXPECT_TRUE(Value(int64_t{1}).truthy());
    EXPECT_TRUE(Value(-0.5).truthy());
    EXPECT_FALSE(Value(int64_t{0}).truthy());
    EXPECT_FALSE(Value::null().truthy());
    EXPECT_FALSE(Value(std::string("x")).truthy());
}

TEST(Value, KeyEncodingOrdersIntegers)
{
    const int64_t cases[] = {-1000000, -17, -1, 0, 1, 5, 4096,
                             1000000000};
    for (std::size_t i = 0; i + 1 < std::size(cases); ++i) {
        EXPECT_LT(keyCompare(enc(Value(cases[i])),
                             enc(Value(cases[i + 1]))),
                  0)
            << cases[i] << " vs " << cases[i + 1];
    }
}

TEST(Value, KeyEncodingOrdersReals)
{
    const double cases[] = {-1e10, -3.5, -0.25, 0.0, 0.25, 3.14, 1e10};
    for (std::size_t i = 0; i + 1 < std::size(cases); ++i) {
        EXPECT_LT(keyCompare(enc(Value(cases[i])),
                             enc(Value(cases[i + 1]))),
                  0);
    }
}

TEST(Value, KeyEncodingOrdersText)
{
    EXPECT_LT(keyCompare(enc(Value(std::string("abc"))),
                         enc(Value(std::string("abd")))),
              0);
    EXPECT_LT(keyCompare(enc(Value(std::string("ab"))),
                         enc(Value(std::string("abc")))),
              0);
    EXPECT_LT(keyCompare(enc(Value(std::string(""))),
                         enc(Value(std::string("a")))),
              0);
}

TEST(Value, KeyEncodingTextIsPrefixSafe)
{
    // "ab" < "ab\x01" even though one is a prefix of the other, and
    // embedded NULs are escaped.
    std::string with_nul("a\0b", 3);
    EXPECT_LT(keyCompare(enc(Value(std::string("a"))),
                         enc(Value(with_nul))),
              0);
    EXPECT_LT(keyCompare(enc(Value(with_nul)),
                         enc(Value(std::string("ab")))),
              0);
}

TEST(Value, KeyEncodingCrossType)
{
    EXPECT_LT(keyCompare(enc(Value::null()), enc(Value(int64_t{0}))),
              0);
    EXPECT_LT(keyCompare(enc(Value(int64_t{1 << 30})),
                         enc(Value(std::string("")))),
              0);
}

/** Property: key encoding order == compare() order on random values. */
class KeyOrderProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KeyOrderProperty, MemcmpMatchesCompare)
{
    hw::Prng prng(GetParam());
    std::vector<Value> values;
    for (int i = 0; i < 200; ++i) {
        switch (prng.nextBelow(3)) {
          case 0:
            values.push_back(
                Value(prng.nextInRange(-1'000'000, 1'000'000)));
            break;
          case 1:
            values.push_back(Value(
                static_cast<double>(prng.nextInRange(-1000, 1000)) /
                7.0));
            break;
          default: {
            std::string s;
            const auto len = prng.nextBelow(12);
            for (uint64_t c = 0; c < len; ++c)
                s.push_back(
                    static_cast<char>('a' + prng.nextBelow(26)));
            values.push_back(Value(std::move(s)));
          }
        }
    }
    for (std::size_t i = 0; i < values.size(); i += 7) {
        for (std::size_t j = 0; j < values.size(); j += 5) {
            const int by_compare = values[i].compare(values[j]);
            const int by_key =
                keyCompare(enc(values[i]), enc(values[j]));
            if (by_compare == 0) {
                // Equal values of the same type encode identically.
                if (values[i].type() == values[j].type())
                    EXPECT_EQ(by_key, 0);
            } else {
                EXPECT_EQ(by_compare < 0, by_key < 0)
                    << values[i].asText() << " vs "
                    << values[j].asText();
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KeyOrderProperty,
                         ::testing::Values(3, 14, 159));

TEST(Record, RowRoundTrip)
{
    Row row;
    row.push_back(Value(int64_t{-42}));
    row.push_back(Value(2.75));
    row.push_back(Value(std::string("hello world")));
    row.push_back(Value::null());
    row.push_back(Value(std::string("")));

    const auto bytes = encodeRow(row);
    const Row back = decodeRow(bytes.data(), bytes.size());
    ASSERT_EQ(back.size(), row.size());
    for (std::size_t i = 0; i < row.size(); ++i) {
        EXPECT_EQ(back[i].type(), row[i].type()) << i;
        EXPECT_EQ(back[i].compare(row[i]), 0) << i;
    }
}

TEST(Record, LargeIntegersRoundTrip)
{
    for (int64_t v : {INT64_MIN + 1, int64_t{-1}, INT64_MAX}) {
        Row row{Value(v)};
        const auto bytes = encodeRow(row);
        const Row back = decodeRow(bytes.data(), bytes.size());
        EXPECT_EQ(back[0].asInt(), v);
    }
}

TEST(Record, EmptyRow)
{
    const auto bytes = encodeRow({});
    EXPECT_TRUE(decodeRow(bytes.data(), bytes.size()).empty());
}

} // namespace
} // namespace cubicleos::minisql
