/**
 * @file
 * Pager tests: caching, eviction, transactions, journal recovery.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "apps/minisql/pager.h"
#include "baselines/memfs.h"

namespace cubicleos::minisql {
namespace {

class PagerTest : public ::testing::Test {
  protected:
    baselines::MemFileApi fs;

    std::unique_ptr<Pager> makePager(std::size_t cache = 8)
    {
        auto pager = std::make_unique<Pager>(&fs, "/db", cache);
        EXPECT_EQ(pager->open(true), 0);
        return pager;
    }
};

TEST_F(PagerTest, FreshDatabaseHasHeaderPage)
{
    auto pager = makePager();
    EXPECT_EQ(pager->pageCount(), 1u);
    EXPECT_EQ(pager->schemaRoot(), 0u);
}

TEST_F(PagerTest, AllocateGrowsFile)
{
    auto pager = makePager();
    pager->begin();
    const uint32_t a = pager->allocatePage();
    const uint32_t b = pager->allocatePage();
    EXPECT_EQ(a, 2u);
    EXPECT_EQ(b, 3u);
    EXPECT_EQ(pager->pageCount(), 3u);
    pager->commit();
}

TEST_F(PagerTest, DataPersistsAcrossReopen)
{
    {
        auto pager = makePager();
        pager->begin();
        const uint32_t pgno = pager->allocatePage();
        DbPage *page = pager->fetch(pgno);
        pager->markDirty(page);
        std::strcpy(reinterpret_cast<char *>(page->data), "persisted");
        pager->release(page);
        pager->setSchemaRoot(pgno);
        pager->commit();
    }
    {
        auto pager = makePager();
        EXPECT_EQ(pager->schemaRoot(), 2u);
        DbPage *page = pager->fetch(2);
        EXPECT_STREQ(reinterpret_cast<char *>(page->data), "persisted");
        pager->release(page);
    }
}

TEST_F(PagerTest, CacheHitsDoNotReadFile)
{
    auto pager = makePager();
    pager->begin();
    const uint32_t pgno = pager->allocatePage();
    pager->commit();

    DbPage *p1 = pager->fetch(pgno);
    pager->release(p1);
    const uint64_t reads = pager->stats().pageReads;
    for (int i = 0; i < 10; ++i) {
        DbPage *p = pager->fetch(pgno);
        pager->release(p);
    }
    EXPECT_EQ(pager->stats().pageReads, reads);
    EXPECT_GE(pager->stats().cacheHits, 10u);
}

TEST_F(PagerTest, EvictionWritesBackDirtyPages)
{
    auto pager = makePager(/*cache=*/4);
    pager->begin();
    std::vector<uint32_t> pages;
    for (int i = 0; i < 12; ++i) {
        const uint32_t pgno = pager->allocatePage();
        DbPage *page = pager->fetch(pgno);
        pager->markDirty(page);
        page->data[0] = static_cast<uint8_t>(0xA0 + i);
        pager->release(page);
        pages.push_back(pgno);
    }
    pager->commit();
    EXPECT_GT(pager->stats().evictions, 0u);
    // All contents survive evictions.
    for (int i = 0; i < 12; ++i) {
        DbPage *page = pager->fetch(pages[static_cast<size_t>(i)]);
        EXPECT_EQ(page->data[0], static_cast<uint8_t>(0xA0 + i)) << i;
        pager->release(page);
    }
}

TEST_F(PagerTest, RollbackRestoresPages)
{
    auto pager = makePager();
    pager->begin();
    const uint32_t pgno = pager->allocatePage();
    DbPage *page = pager->fetch(pgno);
    pager->markDirty(page);
    page->data[100] = 0x11;
    pager->release(page);
    pager->commit();

    pager->begin();
    page = pager->fetch(pgno);
    pager->markDirty(page);
    page->data[100] = 0x22;
    pager->release(page);
    pager->rollback();

    page = pager->fetch(pgno);
    EXPECT_EQ(page->data[100], 0x11);
    pager->release(page);
}

TEST_F(PagerTest, RollbackRestoresPageCount)
{
    auto pager = makePager();
    pager->begin();
    pager->allocatePage();
    pager->commit();
    const uint32_t count = pager->pageCount();

    pager->begin();
    pager->allocatePage();
    pager->allocatePage();
    pager->rollback();
    EXPECT_EQ(pager->pageCount(), count);
}

TEST_F(PagerTest, HotJournalRecoveredOnOpen)
{
    {
        auto pager = makePager();
        pager->begin();
        const uint32_t pgno = pager->allocatePage();
        DbPage *page = pager->fetch(pgno);
        pager->markDirty(page);
        page->data[0] = 0x55;
        pager->release(page);
        pager->commit();

        // Simulate a crash mid-transaction: modify + flush, then
        // "die" without committing (journal left behind).
        pager->begin();
        page = pager->fetch(pgno);
        pager->markDirty(page);
        page->data[0] = 0x66;
        pager->release(page);
        pager->flushAll();
        // Destructor flushes but we bypass commit: drop the object
        // while still in a transaction.
    }
    // Reopen: hot-journal recovery must restore 0x55.
    {
        auto pager = makePager();
        DbPage *page = pager->fetch(2);
        EXPECT_EQ(page->data[0], 0x55);
        pager->release(page);
    }
}

TEST_F(PagerTest, FreelistRecyclesPages)
{
    auto pager = makePager();
    pager->begin();
    const uint32_t a = pager->allocatePage();
    pager->allocatePage();
    pager->freePage(a);
    const uint32_t c = pager->allocatePage();
    EXPECT_EQ(c, a) << "freed page must be reused";
    pager->commit();
}

TEST_F(PagerTest, ReadOnlyTransactionsCreateNoJournal)
{
    auto pager = makePager();
    pager->begin();
    DbPage *page = pager->fetch(1);
    pager->release(page);
    pager->commit();
    libos::VfsStat st;
    EXPECT_EQ(fs.stat("/db-journal", &st), libos::kErrNoEnt);
}

TEST_F(PagerTest, OpenMissingWithoutCreateFails)
{
    Pager pager(&fs, "/missing", 8);
    EXPECT_LT(pager.open(false), 0);
}

TEST_F(PagerTest, RejectsCorruptHeader)
{
    const int fd = fs.open("/bad", libos::kCreate | libos::kRdWr);
    std::vector<char> junk(kDbPageSize, 'X');
    fs.pwrite(fd, junk.data(), junk.size(), 0);
    fs.close(fd);
    Pager pager(&fs, "/bad", 8);
    EXPECT_EQ(pager.open(false), libos::kErrInval);
}

} // namespace
} // namespace cubicleos::minisql
