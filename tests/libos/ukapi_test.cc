/**
 * @file
 * Tests for the application-side porting glue (CubicleFileApi),
 * including the hot-windows ablation mode.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "libos/app.h"
#include "libos/stack.h"
#include "libos/ukapi.h"

namespace cubicleos::libos {
namespace {

class UkapiTest : public ::testing::Test {
  protected:
    void boot(bool hot_windows)
    {
        core::SystemConfig cfg;
        cfg.numPages = 8192;
        sys = std::make_unique<core::System>(cfg);
        addLibosComponents(*sys);
        app = static_cast<AppComponent *>(
            &sys->addComponent(std::make_unique<AppComponent>()));
        spy = static_cast<AppComponent *>(
            &sys->addComponent(std::make_unique<AppComponent>("spy")));
        finishBoot(*sys);
        app->run([&] {
            fs = std::make_unique<CubicleFileApi>(*sys, "ramfs",
                                                  hot_windows);
        });
    }

    void TearDown() override
    {
        if (app && fs)
            app->run([&] { fs.reset(); });
    }

    std::unique_ptr<core::System> sys;
    AppComponent *app = nullptr;
    AppComponent *spy = nullptr;
    std::unique_ptr<CubicleFileApi> fs;
};

TEST_F(UkapiTest, PerCallWindowsTrapOnEveryIo)
{
    boot(false);
    app->run([&] {
        char *buf = static_cast<char *>(sys->heapAlloc(4096));
        const int fd = fs->open("/f", kCreate | kRdWr);
        fs->pwrite(fd, buf, 4096, 0);
        sys->stats().reset();
        for (int i = 0; i < 10; ++i)
            fs->pread(fd, buf, 4096, 0);
        // Each pread retags the buffer to RAMFS and back to the app.
        EXPECT_GE(sys->stats().traps(), 20u);
        fs->close(fd);
    });
}

TEST_F(UkapiTest, HotWindowsEliminateSteadyStateTraps)
{
    boot(true);
    app->run([&] {
        char *buf = static_cast<char *>(sys->heapAlloc(4096));
        const int fd = fs->open("/f", kCreate | kRdWr);
        fs->pwrite(fd, buf, 4096, 0);
        fs->pread(fd, buf, 4096, 0); // settle the tag
        sys->stats().reset();
        for (int i = 0; i < 10; ++i)
            fs->pread(fd, buf, 4096, 0);
        EXPECT_LE(sys->stats().traps(), 2u);
        fs->close(fd);
    });
}

TEST_F(UkapiTest, HotWindowsStillExcludeThirdParties)
{
    boot(true);
    char *buf = nullptr;
    app->run([&] {
        buf = static_cast<char *>(sys->heapAlloc(4096));
        const int fd = fs->open("/f", kCreate | kRdWr);
        fs->pwrite(fd, buf, 4096, 0);
        fs->close(fd);
    });
    // The hot window is open for VFSCORE and RAMFS only; an unrelated
    // cubicle still faults.
    spy->run([&] {
        EXPECT_THROW(sys->touch(buf, 64, hw::Access::kRead),
                     hw::CubicleFault);
    });
}

TEST_F(UkapiTest, HotWindowRestagesWhenBufferChanges)
{
    boot(true);
    app->run([&] {
        char *a = static_cast<char *>(sys->heapAlloc(4096));
        char *b = static_cast<char *>(sys->heapAlloc(4096));
        const int fd = fs->open("/f", kCreate | kRdWr);
        std::memset(a, 0x11, 4096);
        fs->pwrite(fd, a, 4096, 0);
        EXPECT_EQ(fs->pread(fd, b, 4096, 0), 4096);
        EXPECT_EQ(static_cast<unsigned char>(b[100]), 0x11u);
        fs->close(fd);
    });
}

TEST_F(UkapiTest, PathsNeverExposeCallerMemory)
{
    boot(false);
    app->run([&] {
        // The path lives in app memory next to a "secret"; stagePath
        // copies it to the dedicated transfer page, so the secret's
        // page is never windowed.
        char *blob = static_cast<char *>(sys->heapAlloc(64));
        std::strcpy(blob, "/visible");
        std::strcpy(blob + 16, "SECRET");
        const int fd = fs->open(blob, kCreate | kRdWr);
        EXPECT_GE(fd, 0);
        fs->close(fd);
    });
    char *blob = nullptr;
    app->run([&] {
        blob = static_cast<char *>(sys->heapAlloc(16));
        std::strcpy(blob, "x");
    });
    (void)blob;
    // No window covers any app heap page at rest: a spy access faults.
    // (The transfer page is windowed, but it only ever holds paths.)
    const auto before = sys->stats().violations();
    spy->run([&] {
        EXPECT_THROW(sys->touch(blob, 1, hw::Access::kRead),
                     hw::CubicleFault);
    });
    EXPECT_GT(sys->stats().violations(), before);
}

TEST_F(UkapiTest, LongPathsAreTruncatedSafely)
{
    boot(false);
    app->run([&] {
        const std::string longpath =
            "/" + std::string(2 * kMaxPath, 'a');
        // Must not crash or overflow the transfer page; open fails
        // cleanly (path invalid after truncation is fine).
        const int fd = fs->open(longpath.c_str(), kCreate | kRdWr);
        if (fd >= 0)
            fs->close(fd);
    });
}

TEST_F(UkapiTest, StatAndReaddirThroughStagedStructs)
{
    boot(false);
    app->run([&] {
        fs->mkdir("/d");
        const int fd = fs->open("/d/file", kCreate | kWrOnly);
        char byte = 'x';
        fs->write(fd, &byte, 1);
        fs->close(fd);

        VfsStat st{};
        EXPECT_EQ(fs->stat("/d/file", &st), 0);
        EXPECT_EQ(st.size, 1u);

        VfsDirent ent{};
        EXPECT_EQ(fs->readdir("/d", 0, &ent), 0);
        EXPECT_STREQ(ent.name, "file");
        EXPECT_EQ(fs->readdir("/d", 1, &ent), kErrNoEnt);
    });
}

} // namespace
} // namespace cubicleos::libos
