/**
 * @file
 * Unit tests for the TCP/IP stack (LWIP stand-in), run stand-alone with
 * two endpoints connected by direct packet exchange.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "libos/tcpip.h"

namespace cubicleos::libos {
namespace {

/** Two stacks wired back-to-back with manual pumping. */
class TcpPair : public ::testing::Test {
  protected:
    TcpPair()
    {
        TcpConfig a, b;
        a.ipAddr = 0x0A000001;
        b.ipAddr = 0x0A000002;
        alice = std::make_unique<TcpIpStack>(a);
        bob = std::make_unique<TcpIpStack>(b);
    }

    /** Moves packets both ways until quiescent. Returns iterations. */
    int pump(int max_rounds = 200)
    {
        int rounds = 0;
        bool moved = true;
        while (moved && rounds < max_rounds) {
            moved = false;
            alice->tick(now);
            bob->tick(now);
            alice->pollOutput([&](const uint8_t *p, std::size_t n) {
                bob->input(p, n);
                moved = true;
            });
            bob->pollOutput([&](const uint8_t *p, std::size_t n) {
                alice->input(p, n);
                moved = true;
            });
            now += 1'000'000; // 1 ms per round
            ++rounds;
        }
        return rounds;
    }

    /** Establishes bob:port listener and a connection from alice. */
    void establish(uint16_t port, int *afd, int *bfd)
    {
        const int lfd = bob->socket();
        ASSERT_EQ(bob->bind(lfd, port), kNetOk);
        ASSERT_EQ(bob->listen(lfd, 8), kNetOk);
        *afd = alice->socket();
        ASSERT_EQ(alice->connect(*afd, 0x0A000002, port), kNetOk);
        pump();
        *bfd = bob->accept(lfd);
        ASSERT_GE(*bfd, 0);
        EXPECT_TRUE(alice->isEstablished(*afd));
    }

    std::unique_ptr<TcpIpStack> alice, bob;
    uint64_t now = 0;
};

TEST_F(TcpPair, HandshakeEstablishesBothEnds)
{
    int afd, bfd;
    establish(8080, &afd, &bfd);
    EXPECT_TRUE(bob->isEstablished(bfd));
}

TEST_F(TcpPair, ConnectToClosedPortRefused)
{
    const int afd = alice->socket();
    ASSERT_EQ(alice->connect(afd, 0x0A000002, 9999), kNetOk);
    pump();
    char c;
    EXPECT_EQ(alice->recv(afd, &c, 1), kNetRefused);
    EXPECT_FALSE(alice->isEstablished(afd));
}

TEST_F(TcpPair, SmallDataBothDirections)
{
    int afd, bfd;
    establish(80, &afd, &bfd);

    EXPECT_EQ(alice->send(afd, "ping", 4), 4);
    pump();
    char buf[16] = {};
    EXPECT_EQ(bob->recv(bfd, buf, sizeof(buf)), 4);
    EXPECT_EQ(std::memcmp(buf, "ping", 4), 0);

    EXPECT_EQ(bob->send(bfd, "pong!", 5), 5);
    pump();
    EXPECT_EQ(alice->recv(afd, buf, sizeof(buf)), 5);
    EXPECT_EQ(std::memcmp(buf, "pong!", 5), 0);
}

TEST_F(TcpPair, RecvOnEmptyConnectionWouldBlock)
{
    int afd, bfd;
    establish(80, &afd, &bfd);
    char c;
    EXPECT_EQ(alice->recv(afd, &c, 1), kNetAgain);
}

TEST_F(TcpPair, LargeTransferRespectsWindow)
{
    int afd, bfd;
    establish(80, &afd, &bfd);

    // 1 MiB transfer: far larger than the 64 KiB buffers, so progress
    // requires repeated window updates (the Fig. 7 dynamic).
    constexpr std::size_t kTotal = 1 << 20;
    std::vector<uint8_t> out(kTotal);
    for (std::size_t i = 0; i < kTotal; ++i)
        out[i] = static_cast<uint8_t>(i * 13);

    std::size_t sent = 0, rcvd = 0;
    std::vector<uint8_t> in(kTotal);
    int idle = 0;
    while (rcvd < kTotal && idle < 100) {
        if (sent < kTotal) {
            const int64_t n =
                alice->send(afd, out.data() + sent, kTotal - sent);
            if (n > 0)
                sent += static_cast<std::size_t>(n);
        }
        pump(4);
        const int64_t n =
            bob->recv(bfd, in.data() + rcvd, kTotal - rcvd);
        if (n > 0) {
            rcvd += static_cast<std::size_t>(n);
            idle = 0;
        } else {
            ++idle;
        }
    }
    ASSERT_EQ(rcvd, kTotal);
    EXPECT_EQ(std::memcmp(in.data(), out.data(), kTotal), 0);
    // Segments must respect the MSS.
    EXPECT_GE(bob->stats().segsIn, kTotal / 1460);
}

TEST_F(TcpPair, SenderBlockedByFullSendBuffer)
{
    int afd, bfd;
    establish(80, &afd, &bfd);
    std::vector<uint8_t> big(256 * 1024, 0x42);
    // Without pumping, at most sndBuf bytes can be queued.
    int64_t queued = alice->send(afd, big.data(), big.size());
    EXPECT_EQ(queued, static_cast<int64_t>(alice->config().sndBuf));
    EXPECT_EQ(alice->send(afd, big.data(), big.size()), kNetAgain);
}

TEST_F(TcpPair, OrderlyCloseDeliversEof)
{
    int afd, bfd;
    establish(80, &afd, &bfd);
    alice->send(afd, "bye", 3);
    alice->close(afd);
    pump();
    char buf[8];
    EXPECT_EQ(bob->recv(bfd, buf, sizeof(buf)), 3);
    EXPECT_EQ(bob->recv(bfd, buf, sizeof(buf)), 0) << "EOF after FIN";
    bob->close(bfd);
    pump();
}

TEST_F(TcpPair, ChecksumCorruptionDropsSegment)
{
    int afd, bfd;
    establish(80, &afd, &bfd);
    alice->send(afd, "data", 4);

    // Corrupt the first data segment in flight.
    bool corrupted = false;
    alice->tick(now);
    alice->pollOutput([&](const uint8_t *p, std::size_t n) {
        std::vector<uint8_t> pkt(p, p + n);
        if (!corrupted && n > 40) {
            pkt[40] ^= 0xFF; // flip the first payload byte
            corrupted = true;
        }
        bob->input(pkt.data(), pkt.size());
    });
    ASSERT_TRUE(corrupted);
    char buf[8];
    EXPECT_EQ(bob->recv(bfd, buf, sizeof(buf)), kNetAgain);
    EXPECT_GE(bob->stats().checksumDrops, 1u);

    // The retransmission timer recovers the loss.
    now += 300'000'000;
    pump();
    EXPECT_EQ(bob->recv(bfd, buf, sizeof(buf)), 4);
    EXPECT_GE(alice->stats().retransmits, 1u);
}

TEST_F(TcpPair, LostSynIsRetransmitted)
{
    const int lfd = bob->socket();
    bob->bind(lfd, 80);
    bob->listen(lfd, 8);
    const int afd = alice->socket();
    alice->connect(afd, 0x0A000002, 80);

    // Drop the first SYN on the floor.
    alice->pollOutput([](const uint8_t *, std::size_t) {});
    EXPECT_FALSE(alice->isEstablished(afd));

    now += 300'000'000; // beyond RTO
    pump();
    EXPECT_TRUE(alice->isEstablished(afd));
    EXPECT_GE(alice->stats().retransmits, 1u);
}

TEST_F(TcpPair, MultipleConcurrentConnections)
{
    const int lfd = bob->socket();
    bob->bind(lfd, 80);
    bob->listen(lfd, 16);

    constexpr int kConns = 8;
    int afds[kConns], bfds[kConns];
    for (int i = 0; i < kConns; ++i) {
        afds[i] = alice->socket();
        ASSERT_EQ(alice->connect(afds[i], 0x0A000002, 80), kNetOk);
    }
    pump();
    for (int i = 0; i < kConns; ++i) {
        bfds[i] = bob->accept(lfd);
        ASSERT_GE(bfds[i], 0) << i;
    }
    // Interleave traffic; streams must not cross.
    for (int i = 0; i < kConns; ++i) {
        const std::string msg = "conn-" + std::to_string(i);
        alice->send(afds[i], msg.data(), msg.size());
    }
    pump();
    for (int i = 0; i < kConns; ++i) {
        char buf[16] = {};
        const auto n = bob->recv(bfds[i], buf, sizeof(buf));
        EXPECT_EQ(std::string(buf, static_cast<std::size_t>(n)),
                  "conn-" + std::to_string(i));
    }
}

TEST_F(TcpPair, BindConflictRejected)
{
    const int a = bob->socket();
    const int b = bob->socket();
    EXPECT_EQ(bob->bind(a, 80), kNetOk);
    EXPECT_EQ(bob->listen(a, 4), kNetOk);
    EXPECT_EQ(bob->bind(b, 80), kNetInUse);
}

TEST_F(TcpPair, SendOnUnconnectedSocketFails)
{
    const int fd = alice->socket();
    EXPECT_EQ(alice->send(fd, "x", 1), kNetNotConn);
    EXPECT_EQ(alice->send(999, "x", 1), kNetBadFd);
}

TEST_F(TcpPair, GarbageInputIsIgnored)
{
    std::vector<uint8_t> junk(64, 0xEE);
    alice->input(junk.data(), junk.size()); // no crash, no effect
    alice->input(junk.data(), 3);
    const auto &st = alice->stats();
    EXPECT_EQ(st.segsIn, 0u);
}

} // namespace
} // namespace cubicleos::libos
