/**
 * @file
 * TCP property tests: random send/recv sizes, random pump schedules
 * and random loss must never corrupt, reorder or drop delivered
 * bytes.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <deque>
#include <memory>
#include <vector>

#include "hw/prng.h"
#include "libos/tcpip.h"

namespace cubicleos::libos {
namespace {

class TcpPropertyRig {
  public:
    explicit TcpPropertyRig(uint64_t seed) : prng(seed)
    {
        TcpConfig a, b;
        a.ipAddr = 0x0A000001;
        b.ipAddr = 0x0A000002;
        alice = std::make_unique<TcpIpStack>(a);
        bob = std::make_unique<TcpIpStack>(b);
    }

    /** One pump round; drops each frame with probability loss%. */
    void pump(int loss_percent)
    {
        now += 5'000'000; // 5 ms per round so RTO (200 ms) can fire
        alice->tick(now);
        bob->tick(now);
        alice->pollOutput([&](const uint8_t *p, std::size_t n) {
            if (prng.nextBelow(100) >= static_cast<uint64_t>(
                    loss_percent)) {
                bob->input(p, n);
            }
        });
        bob->pollOutput([&](const uint8_t *p, std::size_t n) {
            if (prng.nextBelow(100) >= static_cast<uint64_t>(
                    loss_percent)) {
                alice->input(p, n);
            }
        });
    }

    hw::Prng prng;
    std::unique_ptr<TcpIpStack> alice, bob;
    uint64_t now = 0;
};

class TcpStreamProperty
    : public ::testing::TestWithParam<std::pair<uint64_t, int>> {};

TEST_P(TcpStreamProperty, ByteStreamIsReliableAndOrdered)
{
    const auto [seed, loss] = GetParam();
    TcpPropertyRig rig(seed);

    const int lfd = rig.bob->socket();
    ASSERT_EQ(rig.bob->bind(lfd, 80), kNetOk);
    ASSERT_EQ(rig.bob->listen(lfd, 4), kNetOk);
    const int afd = rig.alice->socket();
    ASSERT_EQ(rig.alice->connect(afd, 0x0A000002, 80), kNetOk);

    int bfd = -1;
    for (int i = 0; i < 400 && bfd < 0; ++i) {
        rig.pump(loss);
        bfd = rig.bob->accept(lfd);
    }
    ASSERT_GE(bfd, 0) << "handshake failed under " << loss << "% loss";

    // Alice streams a pseudo-random byte sequence in random-size
    // chunks; Bob drains with random-size reads. Every byte must
    // arrive once, in order.
    constexpr std::size_t kTotal = 200'000;
    std::vector<uint8_t> out(kTotal);
    hw::Prng gen(seed ^ 0xABCD);
    for (auto &b : out)
        b = static_cast<uint8_t>(gen.next());

    std::size_t sent = 0, rcvd = 0;
    std::vector<uint8_t> in;
    in.reserve(kTotal);
    std::vector<uint8_t> buf(8192);
    int stall = 0;
    while (rcvd < kTotal && stall < 2000) {
        if (sent < kTotal && rig.prng.nextBelow(3) != 0) {
            const std::size_t chunk = std::min<std::size_t>(
                1 + rig.prng.nextBelow(6000), kTotal - sent);
            const int64_t n =
                rig.alice->send(afd, out.data() + sent, chunk);
            if (n > 0)
                sent += static_cast<std::size_t>(n);
        }
        rig.pump(loss);
        if (rig.prng.nextBelow(4) != 0) {
            const std::size_t want = 1 + rig.prng.nextBelow(8000);
            const int64_t n = rig.bob->recv(
                bfd, buf.data(), std::min(want, buf.size()));
            if (n > 0) {
                in.insert(in.end(), buf.begin(), buf.begin() + n);
                rcvd += static_cast<std::size_t>(n);
                stall = 0;
                continue;
            }
        }
        ++stall;
    }
    ASSERT_EQ(rcvd, kTotal) << "stalled under " << loss << "% loss";
    EXPECT_EQ(std::memcmp(in.data(), out.data(), kTotal), 0)
        << "byte stream corrupted";
    if (loss > 0) {
        EXPECT_GT(rig.alice->stats().retransmits, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndLoss, TcpStreamProperty,
    ::testing::Values(std::make_pair(uint64_t{1}, 0),
                      std::make_pair(uint64_t{2}, 0),
                      std::make_pair(uint64_t{3}, 2),
                      std::make_pair(uint64_t{4}, 5),
                      std::make_pair(uint64_t{5}, 10)));

} // namespace
} // namespace cubicleos::libos
