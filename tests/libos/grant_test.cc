/**
 * @file
 * Unit tests for the grant layer (PeerSet / GrantWindow / Grant /
 * XferArena) and the window-leak regression on the socket API.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>

#include "libos/app.h"
#include "libos/grant.h"
#include "libos/sockapi.h"
#include "libos/stack.h"

namespace cubicleos::libos {
namespace {

TEST(PeerSetTest, AddIsIdempotent)
{
    PeerSet peers{1, 2};
    peers.add(1);
    peers.add(2);
    EXPECT_EQ(peers.size(), 2u);
    EXPECT_TRUE(peers.contains(1));
    EXPECT_TRUE(peers.contains(2));
    EXPECT_FALSE(peers.contains(3));
}

TEST(PeerSetTest, RejectsMoreThanMaxPeers)
{
    PeerSet peers{1, 2, 3, 4};
    EXPECT_THROW(peers.add(5), core::WindowError);
    peers.add(4); // still idempotent at capacity
    EXPECT_EQ(peers.size(), PeerSet::kMaxPeers);
}

class GrantTest : public ::testing::Test {
  protected:
    void SetUp() override
    {
        core::SystemConfig cfg;
        cfg.numPages = 8192;
        sys = std::make_unique<core::System>(cfg);
        addLibosComponents(*sys);
        app = static_cast<AppComponent *>(
            &sys->addComponent(std::make_unique<AppComponent>()));
        spy = static_cast<AppComponent *>(
            &sys->addComponent(std::make_unique<AppComponent>("spy")));
        finishBoot(*sys);
        vfsCid = sys->cidOf("vfscore");
        ramfsCid = sys->cidOf("ramfs");
        spyCid = sys->cidOf("spy");
    }

    bool faults(core::Cid cid, const void *p, std::size_t n)
    {
        bool faulted = false;
        sys->runAs(cid, [&] {
            try {
                sys->touch(p, n, hw::Access::kRead);
            } catch (const hw::CubicleFault &) {
                faulted = true;
            }
        });
        return faulted;
    }

    std::unique_ptr<core::System> sys;
    AppComponent *app = nullptr;
    AppComponent *spy = nullptr;
    core::Cid vfsCid = core::kNoCubicle;
    core::Cid ramfsCid = core::kNoCubicle;
    core::Cid spyCid = core::kNoCubicle;
};

TEST_F(GrantTest, NestedCallPeerSetOpensForEveryTraversedCubicle)
{
    char *buf = nullptr;
    GrantWindow win;
    Grant grant;
    app->run([&] {
        buf = static_cast<char *>(sys->heapAlloc(256));
        std::memset(buf, 0x5a, 256);
        const PeerSet peers{vfsCid, ramfsCid};
        win = GrantWindow(*sys, peers);
        grant = Grant(*sys, win, peers, buf, 256, hw::Access::kRead);
    });
    // §5.6: the call traverses VFSCORE and RAMFS; both may fault the
    // buffer in. A third party stays excluded.
    EXPECT_FALSE(faults(vfsCid, buf, 256));
    EXPECT_FALSE(faults(ramfsCid, buf, 256));
    EXPECT_TRUE(faults(spyCid, buf, 256));

    app->run([&] { grant.release(); });
    // Lazy revocation closed the ACL: nobody but the owner gets in.
    EXPECT_TRUE(faults(vfsCid, buf, 256));
    EXPECT_TRUE(faults(ramfsCid, buf, 256));
    app->run([&] { win.destroy(); });
}

TEST_F(GrantTest, HotWindowPoolingReusesStagedRange)
{
    char *a = nullptr;
    char *b = nullptr;
    GrantWindow win;
    app->run([&] {
        a = static_cast<char *>(sys->heapAlloc(4096));
        b = static_cast<char *>(sys->heapAlloc(4096));
        const PeerSet peers{vfsCid};
        win = GrantWindow(*sys, peers, /*hot=*/true);

        { Grant g(*sys, win, peers, a, 4096, hw::Access::kRead); }
        EXPECT_EQ(win.staged(), a);

        // Steady state on the same buffer: zero window operations.
        const uint64_t ops = sys->stats().windowOps();
        for (int i = 0; i < 10; ++i) {
            Grant g(*sys, win, peers, a, 4096, hw::Access::kRead);
        }
        EXPECT_EQ(sys->stats().windowOps(), ops);

        // Buffer changed: exactly one remove + one add.
        { Grant g(*sys, win, peers, b, 4096, hw::Access::kRead); }
        EXPECT_EQ(win.staged(), b);
        EXPECT_EQ(sys->stats().windowOps(), ops + 2);
    });
    // The hot ACL stays open across calls for the peer...
    EXPECT_FALSE(faults(vfsCid, b, 4096));
    // ...but never admits a third party.
    EXPECT_TRUE(faults(spyCid, b, 4096));
    app->run([&] { win.destroy(); });
}

TEST_F(GrantTest, GrantSkipsHostPrivateBuffers)
{
    app->run([&] {
        const PeerSet peers{vfsCid};
        GrantWindow win(*sys, peers);
        char host_buf[64]; // lives outside the simulated machine
        const uint64_t ops = sys->stats().windowOps();
        {
            Grant g(*sys, win, peers, host_buf, sizeof(host_buf),
                    hw::Access::kRead);
            EXPECT_FALSE(g.active());
        }
        EXPECT_EQ(sys->stats().windowOps(), ops);
    });
}

TEST_F(GrantTest, ThrowingCalleeLeavesNoOpenWindow)
{
    char *buf = nullptr;
    app->run([&] {
        buf = static_cast<char *>(sys->heapAlloc(128));
        const PeerSet peers{vfsCid};
        GrantWindow win(*sys, peers);
        try {
            Grant g(*sys, win, peers, buf, 128, hw::Access::kRead);
            throw std::runtime_error("callee failed mid-call");
        } catch (const std::runtime_error &) {
        }
        // The monitor sees no residual grant on this window.
        EXPECT_EQ(sys->monitor().windowAcl(win.id()), 0u);
    });
    EXPECT_TRUE(faults(vfsCid, buf, 128));
    EXPECT_TRUE(faults(spyCid, buf, 128));
}

TEST_F(GrantTest, ArenaStagingIsPageAlignedAndBounded)
{
    app->run([&] {
        const PeerSet peers{vfsCid};
        XferArena arena(*sys, 1, peers);
        ASSERT_TRUE(arena.valid());
        EXPECT_EQ(reinterpret_cast<uintptr_t>(arena.base()) %
                      hw::kPageSize,
                  0u)
            << "arena pages must not share a page with caller state";
        EXPECT_EQ(arena.size(), hw::kPageSize);

        void *p8 = arena.alloc(10, 8);
        EXPECT_EQ(reinterpret_cast<uintptr_t>(p8) % 8, 0u);
        void *p64 = arena.alloc(1, 64);
        EXPECT_EQ(reinterpret_cast<uintptr_t>(p64) % 64, 0u);
        EXPECT_GT(p64, p8);

        EXPECT_THROW(arena.at(arena.size()), core::WindowError);
        EXPECT_THROW(arena.alloc(2 * hw::kPageSize), core::OutOfMemory);
        arena.rewind();
        EXPECT_EQ(arena.alloc(16, 8), arena.base());

        arena.touchForWrite(0, 64);
        std::memset(arena.base(), 0x77, 64);
    });
}

TEST_F(GrantTest, ArenaWindowAdmitsPeersForItsLifetime)
{
    char *base = nullptr;
    XferArena arena;
    app->run([&] {
        const PeerSet peers{vfsCid, ramfsCid};
        arena = XferArena(*sys, 1, peers);
        base = arena.base();
        arena.touchForWrite(0, 64);
        std::memcpy(base, "/staged-path", 13);
    });
    EXPECT_FALSE(faults(vfsCid, base, 64));
    EXPECT_FALSE(faults(ramfsCid, base, 64));
    EXPECT_TRUE(faults(spyCid, base, 64));
    app->run([&] { arena = XferArena(); }); // destroys window + pages
}

// --- socket-API window-leak regression --------------------------------

/**
 * An "lwip" stand-in whose send always throws, reproducing the seed
 * bug: CubicleSockApi::send staged the caller's buffer and opened the
 * window before the cross-call, and the inline cleanup sequence never
 * ran when the callee threw — leaking an open window over application
 * memory.
 */
class ThrowingLwip : public core::Component {
  public:
    core::ComponentSpec spec() const override
    {
        core::ComponentSpec s;
        s.name = "lwip";
        s.kind = core::CubicleKind::kIsolated;
        return s;
    }

    void registerExports(core::Exporter &exp) override
    {
        exp.fn<int()>("lwip_socket", [] { return 3; });
        exp.fn<int(int, uint16_t)>("lwip_bind",
                                   [](int, uint16_t) { return 0; });
        exp.fn<int(int, int)>("lwip_listen", [](int, int) { return 0; });
        exp.fn<int(int)>("lwip_accept", [](int) { return -11; });
        exp.fn<int(int, uint32_t, uint16_t)>(
            "lwip_connect", [](int, uint32_t, uint16_t) { return 0; });
        exp.fn<int64_t(int, const void *, std::size_t)>(
            "lwip_send",
            [](int, const void *, std::size_t) -> int64_t {
                throw std::runtime_error("lwip_send: injected failure");
            });
        exp.fn<int64_t(int, void *, std::size_t)>(
            "lwip_recv", [](int, void *, std::size_t) -> int64_t {
                throw std::runtime_error("lwip_recv: injected failure");
            });
        exp.fn<int(int)>("lwip_close", [](int) { return 0; });
        exp.fn<int(int)>("lwip_established", [](int) { return 1; });
        exp.fn<int(int)>("lwip_send_drained", [](int) { return 1; });
        exp.fn<int64_t(uint64_t)>("lwip_poll",
                                  [](uint64_t) -> int64_t { return 0; });
        exp.fn<int64_t(int, const void *, std::size_t)>(
            "lwip_sendz",
            [](int, const void *, std::size_t) -> int64_t { return 0; });
        exp.fn<int64_t(int)>("lwip_zc_done",
                             [](int) -> int64_t { return 0; });
    }
};

class SockApiLeakTest : public ::testing::Test {
  protected:
    void SetUp() override
    {
        core::SystemConfig cfg;
        cfg.numPages = 8192;
        sys = std::make_unique<core::System>(cfg);
        addLibosComponents(*sys);
        sys->addComponent(std::make_unique<ThrowingLwip>());
        app = static_cast<AppComponent *>(
            &sys->addComponent(std::make_unique<AppComponent>()));
        spy = static_cast<AppComponent *>(
            &sys->addComponent(std::make_unique<AppComponent>("spy")));
        finishBoot(*sys);
    }

    std::unique_ptr<core::System> sys;
    AppComponent *app = nullptr;
    AppComponent *spy = nullptr;
};

TEST_F(SockApiLeakTest, ThrowingCalleeLeavesNoLiveWindowOverBuffer)
{
    char *buf = nullptr;
    app->run([&] {
        CubicleSockApi sock(*sys);
        buf = static_cast<char *>(sys->heapAlloc(512));
        std::memset(buf, 0xab, 512);
        const int fd = sock.socket();
        EXPECT_THROW(sock.send(fd, buf, 512), std::runtime_error);
        EXPECT_THROW(sock.recv(fd, buf, 512), std::runtime_error);
        // The app still owns its buffer after the failed calls.
        sys->touch(buf, 512, hw::Access::kWrite);
        buf[0] = 'x';
    });
    // Neither LWIP nor anyone else retains access: the RAII grant
    // closed the window on the exception path.
    const core::Cid lwip = sys->cidOf("lwip");
    const core::Cid spyCid = sys->cidOf("spy");
    for (core::Cid cid : {lwip, spyCid}) {
        sys->runAs(cid, [&] {
            EXPECT_THROW(sys->touch(buf, 512, hw::Access::kRead),
                         hw::CubicleFault);
        });
    }
}

} // namespace
} // namespace cubicleos::libos
