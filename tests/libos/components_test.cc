/**
 * @file
 * Tests for the small library-OS components: PLAT, TIME, ALLOC wiring,
 * shared LIBC and RANDOM.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "libos/alloc.h"
#include "libos/app.h"
#include "libos/libc.h"
#include "libos/plat.h"
#include "libos/stack.h"

namespace cubicleos::libos {
namespace {

class ComponentsTest : public ::testing::Test {
  protected:
    void boot()
    {
        core::SystemConfig cfg;
        cfg.numPages = 4096;
        sys = std::make_unique<core::System>(cfg);
        addLibosComponents(*sys);
        app = static_cast<AppComponent *>(
            &sys->addComponent(std::make_unique<AppComponent>()));
        finishBoot(*sys);
    }

    std::unique_ptr<core::System> sys;
    AppComponent *app = nullptr;
};

TEST_F(ComponentsTest, ConsoleWriteLandsInPlatLog)
{
    boot();
    auto write = sys->resolve<void(const char *, std::size_t)>(
        "plat", "plat_console_write");
    const core::Cid plat_cid = sys->cidOf("plat");
    app->run([&] {
        char *msg = static_cast<char *>(sys->heapAlloc(64));
        std::strcpy(msg, "hello console");
        core::Wid wid = sys->windowInit();
        sys->windowAdd(wid, msg, 64);
        sys->windowOpen(wid, plat_cid);
        write(msg, 13);
        sys->windowDestroy(wid);
    });
    auto &plat = static_cast<PlatComponent &>(
        sys->componentAt(sys->cidOf("plat")));
    EXPECT_EQ(plat.consoleLog(), "hello console");
}

TEST_F(ComponentsTest, TimeIsMonotonic)
{
    boot();
    auto mono = sys->resolve<uint64_t()>("time", "time_monotonic_ns");
    app->run([&] {
        uint64_t prev = mono();
        for (int i = 0; i < 10; ++i) {
            sys->clock().charge(1000);
            const uint64_t cur = mono();
            EXPECT_GE(cur, prev);
            prev = cur;
        }
    });
}

TEST_F(ComponentsTest, BusyWaitAdvancesVirtualClock)
{
    boot();
    auto wait =
        sys->resolve<void(uint64_t)>("time", "time_busy_wait_ns");
    const uint64_t before = sys->clock().read();
    app->run([&] { wait(1000); });
    // 1 us at 2.2 GHz = 2200 cycles (plus call overhead).
    EXPECT_GE(sys->clock().read() - before, 2200u);
}

TEST_F(ComponentsTest, HeapChunksComeFromAllocAfterBoot)
{
    boot();
    const auto app_cid = sys->cidOf("app");
    const auto alloc_cid = sys->cidOf("alloc");
    sys->stats().reset();
    app->run([&] {
        // Exceed the initial chunk so the heap grows via ALLOC.
        for (int i = 0; i < 40; ++i)
            sys->heapAlloc(8192);
    });
    EXPECT_GE(sys->stats().callsOnEdge(app_cid, alloc_cid), 1u);
    auto &alloc = static_cast<AllocComponent &>(
        sys->componentAt(alloc_cid));
    EXPECT_GT(alloc.pagesServed(), 0u);
}

TEST_F(ComponentsTest, RandomIsDeterministicPerSeed)
{
    boot();
    auto rand = sys->resolve<uint64_t()>("random", "rand_u64");
    auto seed = sys->resolve<void(uint64_t)>("random", "rand_seed");
    std::vector<uint64_t> first, second;
    app->run([&] {
        seed(42);
        for (int i = 0; i < 8; ++i)
            first.push_back(rand());
        seed(42);
        for (int i = 0; i < 8; ++i)
            second.push_back(rand());
    });
    EXPECT_EQ(first, second);
}

TEST_F(ComponentsTest, LibcStrcmpAndStrnlen)
{
    boot();
    Libc libc;
    app->run([&] {
        libc = Libc(*sys);
        char *a = static_cast<char *>(sys->heapAlloc(16));
        char *b = static_cast<char *>(sys->heapAlloc(16));
        std::strcpy(a, "abc");
        std::strcpy(b, "abd");
        EXPECT_LT(libc.strcmp(a, b), 0);
        EXPECT_EQ(libc.strcmp(a, a), 0);
        EXPECT_EQ(libc.strnlen(a, 16), 3u);
        EXPECT_EQ(libc.strnlen(a, 2), 2u);
    });
}

TEST_F(ComponentsTest, SqliteDeploymentHasSevenIsolatedCubicles)
{
    boot();
    // PLAT, ALLOC, TIME, VFSCORE, RAMFS, APP, BOOT = 7 isolated
    // (paper Fig. 8); LIBC and RANDOM are shared.
    int isolated = 0, shared = 0;
    for (core::Cid cid = 0;
         cid < static_cast<core::Cid>(sys->cubicleCount()); ++cid) {
        if (sys->monitor().cubicle(cid).isolated())
            ++isolated;
        else
            ++shared;
    }
    EXPECT_EQ(isolated, 7);
    EXPECT_EQ(shared, 4);
}

} // namespace
} // namespace cubicleos::libos
