/**
 * @file
 * Integration test for the networked deployment (paper Fig. 5): a
 * host-side TCP client talks through the FrameChannel wire to the
 * NETDEV + LWIP cubicles, with an echo application on top.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "libos/app.h"
#include "libos/netdev.h"
#include "libos/sockapi.h"
#include "libos/stack.h"
#include "libos/tcpip.h"

namespace cubicleos::libos {
namespace {

class NetStackTest : public ::testing::Test {
  protected:
    void boot()
    {
        core::SystemConfig cfg;
        cfg.numPages = 8192;
        sys = std::make_unique<core::System>(cfg);
        wire = std::make_unique<FrameChannel>(&sys->clock());

        StackOptions opts;
        opts.withNet = true;
        opts.wire = wire.get();
        addLibosComponents(*sys, opts);
        app = static_cast<AppComponent *>(
            &sys->addComponent(std::make_unique<AppComponent>()));
        finishBoot(*sys);

        app->run([&] {
            sock = std::make_unique<CubicleSockApi>(*sys);
        });

        TcpConfig ccfg;
        ccfg.ipAddr = 0x0A000002; // client 10.0.0.2
        client = std::make_unique<TcpIpStack>(ccfg);
    }

    void TearDown() override
    {
        if (app && sock)
            app->run([&] { sock.reset(); });
    }

    /** One full pump round: client <-> wire <-> server cubicles. */
    void pump(int rounds = 50)
    {
        for (int i = 0; i < rounds; ++i) {
            now += 1'000'000;
            client->tick(now);
            client->pollOutput([&](const uint8_t *p, std::size_t n) {
                wire->hostSend(FrameChannel::Frame(p, p + n));
            });
            app->run([&] { sock->poll(now); });
            while (auto f = wire->hostRecv())
                client->input(f->data(), f->size());
        }
    }

    std::unique_ptr<core::System> sys;
    std::unique_ptr<FrameChannel> wire;
    AppComponent *app = nullptr;
    std::unique_ptr<CubicleSockApi> sock;
    std::unique_ptr<TcpIpStack> client;
    uint64_t now = 0;
};

TEST_F(NetStackTest, ClientConnectsToCubicleServer)
{
    boot();
    int listen_fd = -1;
    app->run([&] {
        listen_fd = sock->socket();
        ASSERT_EQ(sock->bind(listen_fd, 80), kNetOk);
        ASSERT_EQ(sock->listen(listen_fd, 8), kNetOk);
    });
    const int cfd = client->socket();
    ASSERT_EQ(client->connect(cfd, 0x0A000001, 80), kNetOk);
    pump();
    EXPECT_TRUE(client->isEstablished(cfd));
    int server_conn = -1;
    app->run([&] { server_conn = sock->accept(listen_fd); });
    EXPECT_GE(server_conn, 0);
}

TEST_F(NetStackTest, EchoThroughAllEightCubicles)
{
    boot();
    int listen_fd = -1;
    char *srv_buf = nullptr;
    app->run([&] {
        listen_fd = sock->socket();
        sock->bind(listen_fd, 7);
        sock->listen(listen_fd, 8);
        srv_buf = static_cast<char *>(sys->heapAlloc(4096));
    });

    const int cfd = client->socket();
    client->connect(cfd, 0x0A000001, 7);
    pump();

    const char kMsg[] = "echo through cubicles";
    client->send(cfd, kMsg, sizeof(kMsg));
    pump();

    // Server: accept, read, echo back (each op windowed).
    app->run([&] {
        const int conn = sock->accept(listen_fd);
        ASSERT_GE(conn, 0);
        const int64_t n = sock->recv(conn, srv_buf, 4096);
        ASSERT_EQ(n, static_cast<int64_t>(sizeof(kMsg)));
        EXPECT_EQ(sock->send(conn, srv_buf, sizeof(kMsg)),
                  static_cast<int64_t>(sizeof(kMsg)));
    });
    pump();

    char reply[64] = {};
    EXPECT_EQ(client->recv(cfd, reply, sizeof(reply)),
              static_cast<int64_t>(sizeof(kMsg)));
    EXPECT_STREQ(reply, kMsg);
}

TEST_F(NetStackTest, NginxDeploymentHasEightIsolatedCubicles)
{
    boot();
    int isolated = 0;
    for (core::Cid cid = 0;
         cid < static_cast<core::Cid>(sys->cubicleCount()); ++cid) {
        if (sys->monitor().cubicle(cid).isolated())
            ++isolated;
    }
    // PLAT, ALLOC, TIME, VFSCORE, RAMFS, NETDEV, LWIP, APP (+BOOT).
    EXPECT_EQ(isolated, 9);
}

TEST_F(NetStackTest, TrafficCrossesExpectedEdges)
{
    boot();
    int listen_fd = -1;
    app->run([&] {
        listen_fd = sock->socket();
        sock->bind(listen_fd, 80);
        sock->listen(listen_fd, 8);
    });
    sys->stats().reset();
    const int cfd = client->socket();
    client->connect(cfd, 0x0A000001, 80);
    pump(10);

    const auto app_cid = sys->cidOf("app");
    const auto lwip = sys->cidOf("lwip");
    const auto netdev = sys->cidOf("netdev");
    EXPECT_GT(sys->stats().callsOnEdge(app_cid, lwip), 0u);
    EXPECT_GT(sys->stats().callsOnEdge(lwip, netdev), 0u);
    EXPECT_EQ(sys->stats().callsOnEdge(app_cid, netdev), 0u)
        << "the app never talks to the driver directly";
}

TEST_F(NetStackTest, WireChargesLatency)
{
    boot();
    const uint64_t before = sys->clock().read();
    wire->hostSend(FrameChannel::Frame(100, 0x55));
    EXPECT_GT(sys->clock().read(), before);
    EXPECT_EQ(wire->framesCarried(), 1u);
    EXPECT_EQ(wire->bytesCarried(), 100u);
}

} // namespace
} // namespace cubicleos::libos
