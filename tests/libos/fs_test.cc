/**
 * @file
 * Integration tests for the file stack: application cubicle → VFSCORE
 * → RAMFS → ALLOC with window-managed buffers (the SQLite deployment's
 * file path, paper Fig. 8).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "libos/app.h"
#include "libos/stack.h"
#include "libos/ukapi.h"

namespace cubicleos::libos {
namespace {

class FsStackTest : public ::testing::Test {
  protected:
    void boot(core::IsolationMode mode = core::IsolationMode::kFull)
    {
        if (fs && app)
            app->run([&] { fs.reset(); }); // release before old System dies
        core::SystemConfig cfg;
        cfg.numPages = 8192; // 32 MiB
        cfg.mode = mode;
        sys = std::make_unique<core::System>(cfg);
        addLibosComponents(*sys);
        app = static_cast<AppComponent *>(
            &sys->addComponent(std::make_unique<AppComponent>()));
        finishBoot(*sys);
        app->run([&] {
            fs = std::make_unique<CubicleFileApi>(*sys, "ramfs");
        });
    }

    void TearDown() override
    {
        if (app && fs)
            app->run([&] { fs.reset(); });
    }

    /** Allocates an I/O buffer inside the app cubicle. */
    char *appBuf(std::size_t n)
    {
        char *p = nullptr;
        app->run(
            [&] { p = static_cast<char *>(sys->heapAllocZeroed(n)); });
        return p;
    }

    std::unique_ptr<core::System> sys;
    AppComponent *app = nullptr;
    std::unique_ptr<CubicleFileApi> fs;
};

TEST_F(FsStackTest, CreateWriteReadRoundtrip)
{
    boot();
    char *buf = appBuf(256);
    app->run([&] {
        int fd = fs->open("/hello.txt", kCreate | kRdWr);
        ASSERT_GE(fd, 0);
        std::strcpy(buf, "the quick brown fox");
        EXPECT_EQ(fs->write(fd, buf, 20), 20);
        EXPECT_EQ(fs->lseek(fd, 0, kSeekSet), 0);
        std::memset(buf, 0, 256);
        EXPECT_EQ(fs->read(fd, buf, 256), 20);
        EXPECT_STREQ(buf, "the quick brown fox");
        EXPECT_EQ(fs->close(fd), 0);
    });
}

TEST_F(FsStackTest, OpenMissingFileFails)
{
    boot();
    app->run([&] {
        EXPECT_EQ(fs->open("/nope", kRdOnly), kErrNoEnt);
    });
}

TEST_F(FsStackTest, PreadPwriteAtOffsets)
{
    boot();
    char *buf = appBuf(8192);
    app->run([&] {
        int fd = fs->open("/data.bin", kCreate | kRdWr);
        ASSERT_GE(fd, 0);
        // Write a pattern crossing the 4 KiB block boundary.
        for (int i = 0; i < 8192; ++i)
            buf[i] = static_cast<char>(i % 251);
        EXPECT_EQ(fs->pwrite(fd, buf, 8192, 0), 8192);
        std::memset(buf, 0, 8192);
        EXPECT_EQ(fs->pread(fd, buf, 4096, 2048), 4096);
        for (int i = 0; i < 4096; ++i) {
            ASSERT_EQ(buf[i], static_cast<char>((i + 2048) % 251))
                << "offset " << i;
        }
        fs->close(fd);
    });
}

TEST_F(FsStackTest, StatReportsSizeAndType)
{
    boot();
    char *buf = appBuf(100);
    app->run([&] {
        int fd = fs->open("/f", kCreate | kWrOnly);
        fs->write(fd, buf, 100);
        fs->close(fd);

        VfsStat st;
        EXPECT_EQ(fs->stat("/f", &st), 0);
        EXPECT_EQ(st.size, 100u);
        EXPECT_TRUE(st.isFile());

        EXPECT_EQ(fs->mkdir("/dir"), 0);
        EXPECT_EQ(fs->stat("/dir", &st), 0);
        EXPECT_TRUE(st.isDir());
    });
}

TEST_F(FsStackTest, UnlinkRemovesAndFreesBlocks)
{
    boot();
    char *buf = appBuf(64 * 1024);
    app->run([&] {
        int fd = fs->open("/big", kCreate | kWrOnly);
        EXPECT_EQ(fs->write(fd, buf, 64 * 1024), 64 * 1024);
        fs->close(fd);
        EXPECT_EQ(fs->unlink("/big"), 0);
        VfsStat st;
        EXPECT_EQ(fs->stat("/big", &st), kErrNoEnt);
    });
}

TEST_F(FsStackTest, TruncateShrinksAndZeroFills)
{
    boot();
    char *buf = appBuf(4096);
    app->run([&] {
        int fd = fs->open("/t", kCreate | kRdWr);
        std::memset(buf, 0xAA, 4096);
        fs->write(fd, buf, 4096);
        EXPECT_EQ(fs->ftruncate(fd, 100), 0);
        VfsStat st;
        fs->fstat(fd, &st);
        EXPECT_EQ(st.size, 100u);
        // Re-extend: the tail must read as zeros.
        EXPECT_EQ(fs->ftruncate(fd, 200), 0);
        EXPECT_EQ(fs->pread(fd, buf, 200, 0), 200);
        EXPECT_EQ(static_cast<unsigned char>(buf[50]), 0xAAu);
        EXPECT_EQ(buf[150], 0);
        fs->close(fd);
    });
}

TEST_F(FsStackTest, AppendMode)
{
    boot();
    char *buf = appBuf(16);
    app->run([&] {
        int fd = fs->open("/log", kCreate | kWrOnly);
        std::strcpy(buf, "aaaa");
        fs->write(fd, buf, 4);
        fs->close(fd);
        fd = fs->open("/log", kWrOnly | kAppend);
        std::strcpy(buf, "bbbb");
        fs->write(fd, buf, 4);
        fs->close(fd);
        fd = fs->open("/log", kRdOnly);
        EXPECT_EQ(fs->read(fd, buf, 16), 8);
        buf[8] = '\0';
        EXPECT_STREQ(buf, "aaaabbbb");
        fs->close(fd);
    });
}

TEST_F(FsStackTest, ReaddirEnumeratesChildren)
{
    boot();
    app->run([&] {
        fs->mkdir("/d");
        fs->close(fs->open("/d/one", kCreate | kWrOnly));
        fs->close(fs->open("/d/two", kCreate | kWrOnly));
        VfsDirent ent;
        std::vector<std::string> names;
        for (uint64_t i = 0; fs->readdir("/d", i, &ent) == 0; ++i)
            names.push_back(ent.name);
        ASSERT_EQ(names.size(), 2u);
        EXPECT_EQ(names[0], "one");
        EXPECT_EQ(names[1], "two");
    });
}

TEST_F(FsStackTest, NestedDirectories)
{
    boot();
    char *buf = appBuf(8);
    app->run([&] {
        EXPECT_EQ(fs->mkdir("/a"), 0);
        EXPECT_EQ(fs->mkdir("/a/b"), 0);
        int fd = fs->open("/a/b/c.txt", kCreate | kWrOnly);
        ASSERT_GE(fd, 0);
        std::strcpy(buf, "deep");
        fs->write(fd, buf, 4);
        fs->close(fd);
        VfsStat st;
        EXPECT_EQ(fs->stat("/a/b/c.txt", &st), 0);
        EXPECT_EQ(st.size, 4u);
        // Removing a non-empty directory fails.
        EXPECT_EQ(fs->unlink("/a/b"), kErrNotEmpty);
    });
}

TEST_F(FsStackTest, CallEdgesMatchDeploymentTopology)
{
    boot();
    char *buf = appBuf(4096);
    sys->stats().reset();
    app->run([&] {
        int fd = fs->open("/edges", kCreate | kRdWr);
        for (int i = 0; i < 10; ++i)
            fs->pwrite(fd, buf, 4096, static_cast<uint64_t>(i) * 4096);
        fs->close(fd);
    });
    const auto app_cid = sys->cidOf("app");
    const auto vfs = sys->cidOf("vfscore");
    const auto ramfs = sys->cidOf("ramfs");
    const auto alloc = sys->cidOf("alloc");
    // The Fig. 8 topology: app talks to VFS, VFS to RAMFS, RAMFS to
    // ALLOC; the app never calls RAMFS or ALLOC directly.
    EXPECT_GE(sys->stats().callsOnEdge(app_cid, vfs), 12u);
    EXPECT_GE(sys->stats().callsOnEdge(vfs, ramfs), 12u);
    EXPECT_GE(sys->stats().callsOnEdge(ramfs, alloc), 10u);
    EXPECT_EQ(sys->stats().callsOnEdge(app_cid, ramfs), 0u);
    EXPECT_EQ(sys->stats().callsOnEdge(app_cid, alloc), 0u);
}

TEST_F(FsStackTest, RamfsBlocksUnreachableFromApp)
{
    boot();
    char *buf = appBuf(64);
    core::Cid ramfs_cid = sys->cidOf("ramfs");
    app->run([&] {
        int fd = fs->open("/secret", kCreate | kWrOnly);
        std::strcpy(buf, "classified");
        fs->write(fd, buf, 11);
        fs->close(fd);
    });
    // Find a RAMFS-owned heap page (a data block) and try to read it
    // from the app cubicle: spatial isolation must hold.
    auto &mon = sys->monitor();
    const std::byte *block = nullptr;
    for (std::size_t page = 0; page < mon.pageMeta().numPages(); ++page) {
        const auto &pm = mon.pageMeta().at(page);
        if (pm.owner == ramfs_cid && pm.type == mem::PageType::kHeap) {
            block = mon.space().pageAt(page);
        }
    }
    ASSERT_NE(block, nullptr);
    app->run([&] {
        EXPECT_THROW(sys->touch(block, 16, hw::Access::kRead),
                     hw::CubicleFault);
    });
}

TEST_F(FsStackTest, WorksInEveryIsolationMode)
{
    for (auto mode :
         {core::IsolationMode::kUnikraft, core::IsolationMode::kNoMpk,
          core::IsolationMode::kNoAcl, core::IsolationMode::kFull}) {
        SCOPED_TRACE(core::isolationModeName(mode));
        boot(mode);
        char *buf = appBuf(1024);
        app->run([&] {
            int fd = fs->open("/m", kCreate | kRdWr);
            std::memset(buf, 0x5A, 1024);
            EXPECT_EQ(fs->write(fd, buf, 1024), 1024);
            std::memset(buf, 0, 1024);
            EXPECT_EQ(fs->pread(fd, buf, 1024, 0), 1024);
            EXPECT_EQ(static_cast<unsigned char>(buf[1000]), 0x5Au);
            fs->close(fd);
            fs.reset();
        });
    }
}

TEST_F(FsStackTest, LargeFileManyBlocks)
{
    boot();
    constexpr std::size_t kSize = 256 * 1024;
    char *buf = appBuf(kSize);
    app->run([&] {
        for (std::size_t i = 0; i < kSize; ++i)
            buf[i] = static_cast<char>((i * 7) & 0xFF);
        int fd = fs->open("/large", kCreate | kRdWr);
        EXPECT_EQ(fs->write(fd, buf, kSize),
                  static_cast<int64_t>(kSize));
        std::memset(buf, 0, kSize);
        EXPECT_EQ(fs->pread(fd, buf, kSize, 0),
                  static_cast<int64_t>(kSize));
        for (std::size_t i = 0; i < kSize; i += 1013) {
            ASSERT_EQ(buf[i], static_cast<char>((i * 7) & 0xFF))
                << "offset " << i;
        }
        fs->close(fd);
    });
}

} // namespace
} // namespace cubicleos::libos
