/**
 * @file
 * Unit tests for the FrameChannel wire and the NETDEV component.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "libos/app.h"
#include "libos/netdev.h"
#include "libos/stack.h"

namespace cubicleos::libos {
namespace {

TEST(FrameChannel, FifoBothDirections)
{
    FrameChannel wire;
    wire.hostSend({1, 2, 3});
    wire.hostSend({4, 5});
    auto a = wire.devRx();
    auto b = wire.devRx();
    ASSERT_TRUE(a && b);
    EXPECT_EQ(a->size(), 3u);
    EXPECT_EQ(b->size(), 2u);
    EXPECT_FALSE(wire.devRx().has_value());

    wire.devTx({9});
    auto c = wire.hostRecv();
    ASSERT_TRUE(c);
    EXPECT_EQ((*c)[0], 9);
}

TEST(FrameChannel, ChargesPerFrameAndPerByte)
{
    hw::CycleClock clock;
    FrameChannel wire(&clock, /*frame_cycles=*/1000,
                      /*byte_cycles=*/2.0);
    wire.hostSend(FrameChannel::Frame(100, 0));
    EXPECT_EQ(clock.read(), 1000u + 200u);
    wire.devTx(FrameChannel::Frame(50, 0));
    EXPECT_EQ(clock.read(), 1000u + 200u + 1000u + 100u);
    EXPECT_EQ(wire.framesCarried(), 2u);
    EXPECT_EQ(wire.bytesCarried(), 150u);
}

class NetdevFixture : public ::testing::Test {
  protected:
    NetdevFixture()
    {
        core::SystemConfig cfg;
        cfg.numPages = 2048;
        sys = std::make_unique<core::System>(cfg);
        wire = std::make_unique<FrameChannel>();
        netdev = static_cast<NetdevComponent *>(&sys->addComponent(
            std::make_unique<NetdevComponent>(wire.get())));
        app = static_cast<AppComponent *>(
            &sys->addComponent(std::make_unique<AppComponent>()));
        sys->boot();
        tx = sys->resolve<int(const uint8_t *, std::size_t)>(
            "netdev", "netdev_tx");
        rx = sys->resolve<int64_t(uint8_t *, std::size_t)>("netdev",
                                                           "netdev_rx");
        netdev_cid = sys->cidOf("netdev");
    }

    /** A windowed app buffer. */
    uint8_t *makeBuf(std::size_t n)
    {
        uint8_t *p = nullptr;
        app->run([&] {
            p = static_cast<uint8_t *>(sys->heapAlloc(n));
            const core::Wid wid = sys->windowInit();
            sys->windowAdd(wid, p, n);
            sys->windowOpen(wid, netdev_cid);
        });
        return p;
    }

    std::unique_ptr<core::System> sys;
    std::unique_ptr<FrameChannel> wire;
    NetdevComponent *netdev = nullptr;
    AppComponent *app = nullptr;
    core::CrossFn<int(const uint8_t *, std::size_t)> tx;
    core::CrossFn<int64_t(uint8_t *, std::size_t)> rx;
    core::Cid netdev_cid{};
};

TEST_F(NetdevFixture, TxMovesWindowedBufferToWire)
{
    uint8_t *buf = makeBuf(64);
    app->run([&] {
        std::memset(buf, 0x5A, 64);
        EXPECT_EQ(tx(buf, 64), 0);
    });
    auto frame = wire->hostRecv();
    ASSERT_TRUE(frame);
    EXPECT_EQ(frame->size(), 64u);
    EXPECT_EQ((*frame)[10], 0x5A);
    EXPECT_EQ(netdev->txCount(), 1u);
}

TEST_F(NetdevFixture, RxDeliversWireFrameIntoWindowedBuffer)
{
    uint8_t *buf = makeBuf(128);
    wire->hostSend(FrameChannel::Frame(100, 0x77));
    app->run([&] {
        EXPECT_EQ(rx(buf, 128), 100);
        sys->touch(buf, 100, hw::Access::kRead);
        EXPECT_EQ(buf[99], 0x77);
        // Queue empty now.
        EXPECT_EQ(rx(buf, 128), 0);
    });
    EXPECT_EQ(netdev->rxCount(), 1u);
}

TEST_F(NetdevFixture, OversizedFrameIsDropped)
{
    uint8_t *buf = makeBuf(64);
    wire->hostSend(FrameChannel::Frame(1000, 1));
    app->run([&] {
        EXPECT_EQ(rx(buf, 64), -1) << "too small: frame dropped";
        EXPECT_EQ(rx(buf, 64), 0) << "dropped, not requeued";
    });
}

TEST_F(NetdevFixture, TxRejectsOversizedAndEmptyFrames)
{
    uint8_t *buf = makeBuf(kMtu + 100);
    app->run([&] {
        EXPECT_EQ(tx(buf, kMtu + 1), -1);
        EXPECT_EQ(tx(buf, 0), -1);
        EXPECT_EQ(tx(buf, kMtu), 0);
    });
}

TEST_F(NetdevFixture, TxFromUnwindowedBufferFaults)
{
    uint8_t *foreign = nullptr;
    app->run([&] {
        foreign = static_cast<uint8_t *>(sys->heapAlloc(64));
        // No window opened for netdev this time.
    });
    app->run([&] {
        EXPECT_THROW(tx(foreign, 64), hw::CubicleFault);
    });
}

} // namespace
} // namespace cubicleos::libos
