# Static lock-hierarchy gate: clang thread-safety analysis as a ctest.
#
# Two directions, both required when clang is available:
#   1. every src/core + src/libos TU compiles cleanly under
#      -Wthread-safety -Werror=thread-safety (the annotated wrappers
#      and GUARDED_BY fields hold up), and
#   2. the deliberately seeded violation TU
#      (tests/core/tsa_seed_violation.cc) FAILS to compile — proving
#      the analysis is actually on and the macros are not no-ops.
#
# The container image used by CI ships only gcc; without clang this is
# a SKIP (paired with SKIP_REGULAR_EXPRESSION), not a failure. The
# tidy-tsa CMake preset gives the same guarantee as a full build.
#
# Usage: cmake -DSRC_DIR=<repo>/src -DTEST_DIR=<repo>/tests -P tsa_lint.cmake

if(NOT DEFINED SRC_DIR OR NOT DEFINED TEST_DIR)
    message(FATAL_ERROR
        "tsa_lint: pass -DSRC_DIR=<repo>/src -DTEST_DIR=<repo>/tests")
endif()

find_program(CLANGXX NAMES clang++ clang++-18 clang++-17 clang++-16
    clang++-15 clang++-14)
if(NOT CLANGXX)
    message(STATUS "tsa_lint: [SKIP] clang++ not installed")
    return()
endif()

set(tsa_flags -std=c++20 -fsyntax-only "-I${SRC_DIR}"
    -Wthread-safety -Werror=thread-safety)

file(GLOB_RECURSE tsa_sources
    "${SRC_DIR}/core/*.cc" "${SRC_DIR}/libos/*.cc")

set(failed 0)
foreach(src IN LISTS tsa_sources)
    execute_process(
        COMMAND "${CLANGXX}" ${tsa_flags} "${src}"
        RESULT_VARIABLE rc
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
        message(SEND_ERROR "tsa_lint: ${src}:\n${err}")
        set(failed 1)
    endif()
endforeach()
if(failed)
    message(FATAL_ERROR
        "tsa_lint: thread-safety violations in annotated sources")
endif()

# The seeded violation must NOT compile.
execute_process(
    COMMAND "${CLANGXX}" ${tsa_flags}
            "${TEST_DIR}/core/tsa_seed_violation.cc"
    RESULT_VARIABLE seed_rc
    OUTPUT_QUIET ERROR_QUIET)
if(seed_rc EQUAL 0)
    message(FATAL_ERROR
        "tsa_lint: tsa_seed_violation.cc compiled cleanly — the "
        "thread-safety analysis is not actually catching violations "
        "(annotation macros no-op under clang, or flags dropped)")
endif()

message(STATUS
    "tsa_lint: sources clean, seeded violation rejected")
