/**
 * @file
 * Unit tests for the O(1) page metadata map.
 */

#include <gtest/gtest.h>

#include "mem/page_meta.h"

namespace cubicleos::mem {
namespace {

TEST(PageMetaMap, StartsUnowned)
{
    PageMetaMap map(16);
    EXPECT_EQ(map.numPages(), 16u);
    for (std::size_t i = 0; i < 16; ++i) {
        EXPECT_EQ(map.at(i).owner, kNoCubicle);
        EXPECT_EQ(map.at(i).type, PageType::kFree);
    }
}

TEST(PageMetaMap, AssignAndRelease)
{
    PageMetaMap map(16);
    map.assign(4, 3, /*owner=*/2, PageType::kHeap);
    EXPECT_EQ(map.at(4).owner, 2);
    EXPECT_EQ(map.at(6).type, PageType::kHeap);
    EXPECT_EQ(map.at(3).owner, kNoCubicle);
    EXPECT_EQ(map.at(7).owner, kNoCubicle);

    map.release(4, 3);
    EXPECT_EQ(map.at(5).owner, kNoCubicle);
    EXPECT_EQ(map.at(5).type, PageType::kFree);
}

TEST(PageMetaMap, CountOwnedBy)
{
    PageMetaMap map(32);
    map.assign(0, 4, 1, PageType::kCode);
    map.assign(8, 2, 1, PageType::kStack);
    map.assign(16, 5, 2, PageType::kHeap);
    EXPECT_EQ(map.countOwnedBy(1), 6u);
    EXPECT_EQ(map.countOwnedBy(2), 5u);
    EXPECT_EQ(map.countOwnedBy(3), 0u);
}

TEST(PageMetaMap, TypeNamesAreDistinct)
{
    EXPECT_STREQ(pageTypeName(PageType::kCode), "code");
    EXPECT_STREQ(pageTypeName(PageType::kGlobal), "global");
    EXPECT_STREQ(pageTypeName(PageType::kStack), "stack");
    EXPECT_STREQ(pageTypeName(PageType::kHeap), "heap");
    EXPECT_STREQ(pageTypeName(PageType::kFree), "free");
}

} // namespace
} // namespace cubicleos::mem
