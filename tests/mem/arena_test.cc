/**
 * @file
 * Unit and property tests for the page-run allocator.
 */

#include <gtest/gtest.h>

#include <vector>

#include "hw/prng.h"
#include "mem/arena.h"

namespace cubicleos::mem {
namespace {

class PageAllocatorTest : public ::testing::Test {
  protected:
    hw::CycleClock clock;
    hw::AddressSpace space{128, &clock};
    PageMetaMap meta{128};
    PageAllocator alloc{&space, &meta};
};

TEST_F(PageAllocatorTest, AllocMapsTagsAndRecordsOwnership)
{
    PageRange r = alloc.allocPages(4, /*owner=*/3, PageType::kHeap,
                                   hw::kPermRead | hw::kPermWrite,
                                   /*pkey=*/5);
    ASSERT_TRUE(r.valid());
    EXPECT_EQ(r.count, 4u);
    EXPECT_EQ(r.ptr, space.pageAt(r.first));
    for (std::size_t i = r.first; i < r.first + r.count; ++i) {
        EXPECT_TRUE(space.entryAt(i).present);
        EXPECT_EQ(space.entryAt(i).pkey, 5);
        EXPECT_EQ(meta.at(i).owner, 3);
        EXPECT_EQ(meta.at(i).type, PageType::kHeap);
    }
}

TEST_F(PageAllocatorTest, ZeroPagesReturnsInvalid)
{
    EXPECT_FALSE(alloc.allocPages(0, 1, PageType::kHeap, 0, 1).valid());
}

TEST_F(PageAllocatorTest, ExhaustionReturnsInvalid)
{
    EXPECT_TRUE(alloc.allocPages(128, 1, PageType::kHeap, 0, 1).valid());
    EXPECT_FALSE(alloc.allocPages(1, 1, PageType::kHeap, 0, 1).valid());
}

TEST_F(PageAllocatorTest, FreeReturnsPagesAndClearsState)
{
    PageRange r = alloc.allocPages(8, 2, PageType::kStack,
                                   hw::kPermRead, 4);
    const std::size_t before = alloc.freePageCount();
    alloc.freePages(r);
    EXPECT_EQ(alloc.freePageCount(), before + 8);
    EXPECT_FALSE(space.entryAt(r.first).present);
    EXPECT_EQ(meta.at(r.first).owner, kNoCubicle);
}

TEST_F(PageAllocatorTest, CoalescingAllowsFullReallocation)
{
    PageRange a = alloc.allocPages(32, 1, PageType::kHeap, 0, 1);
    PageRange b = alloc.allocPages(32, 1, PageType::kHeap, 0, 1);
    PageRange c = alloc.allocPages(64, 1, PageType::kHeap, 0, 1);
    ASSERT_TRUE(a.valid() && b.valid() && c.valid());
    // Free in an order that requires both-side coalescing.
    alloc.freePages(a);
    alloc.freePages(c);
    alloc.freePages(b);
    EXPECT_EQ(alloc.freePageCount(), 128u);
    EXPECT_TRUE(
        alloc.allocPages(128, 1, PageType::kHeap, 0, 1).valid());
}

TEST_F(PageAllocatorTest, ReservedPagesStayOutOfPool)
{
    PageAllocator reserved(&space, &meta, /*reserve_first=*/16);
    EXPECT_EQ(reserved.freePageCount(), 112u);
    PageRange r = reserved.allocPages(1, 1, PageType::kHeap, 0, 1);
    EXPECT_GE(r.first, 16u);
}

TEST_F(PageAllocatorTest, UsedCountTracksAllocations)
{
    EXPECT_EQ(alloc.usedPageCount(), 0u);
    PageRange r = alloc.allocPages(10, 1, PageType::kHeap, 0, 1);
    EXPECT_EQ(alloc.usedPageCount(), 10u);
    alloc.freePages(r);
    EXPECT_EQ(alloc.usedPageCount(), 0u);
}

/**
 * Property: random alloc/free interleavings never hand out overlapping
 * ranges and never lose pages.
 */
class PageAllocatorProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PageAllocatorProperty, NoOverlapNoLeak)
{
    hw::CycleClock clock;
    hw::AddressSpace space(256, &clock);
    PageMetaMap meta(256);
    PageAllocator alloc(&space, &meta);
    hw::Prng prng(GetParam());

    std::vector<PageRange> live;
    for (int step = 0; step < 500; ++step) {
        if (live.empty() || prng.nextBelow(2) == 0) {
            const auto n = 1 + prng.nextBelow(16);
            PageRange r =
                alloc.allocPages(n, 1, PageType::kHeap, 0, 1);
            if (!r.valid())
                continue;
            // No overlap with any live range.
            for (const auto &o : live) {
                EXPECT_TRUE(r.first + r.count <= o.first ||
                            o.first + o.count <= r.first)
                    << "overlap at step " << step;
            }
            live.push_back(r);
        } else {
            const auto idx = prng.nextBelow(live.size());
            alloc.freePages(live[idx]);
            live[idx] = live.back();
            live.pop_back();
        }
    }
    std::size_t live_pages = 0;
    for (const auto &r : live)
        live_pages += r.count;
    EXPECT_EQ(alloc.usedPageCount(), live_pages);
    EXPECT_EQ(alloc.freePageCount() + live_pages, 256u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PageAllocatorProperty,
                         ::testing::Values(1, 2, 3, 42, 1337));

} // namespace
} // namespace cubicleos::mem
