/**
 * @file
 * Unit and property tests for the per-cubicle heap sub-allocator.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "hw/prng.h"
#include "mem/suballoc.h"

namespace cubicleos::mem {
namespace {

/** Fixture wiring a heap to a private page pool. */
class HeapTest : public ::testing::Test {
  protected:
    HeapTest()
        : space(256, &clock), meta(256), pages(&space, &meta),
          heap(
              [this](std::size_t n) {
                  return pages.allocPages(n, 1, PageType::kHeap,
                                          hw::kPermRead | hw::kPermWrite,
                                          1);
              },
              [this](const PageRange &r) { pages.freePages(r); },
              /*chunk_pages=*/4)
    {}

    hw::CycleClock clock;
    hw::AddressSpace space;
    PageMetaMap meta;
    PageAllocator pages;
    HeapAllocator heap;
};

TEST_F(HeapTest, AllocReturnsAlignedUsableMemory)
{
    void *p = heap.alloc(100);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 16, 0u);
    EXPECT_GE(heap.usableSize(p), 100u);
    std::memset(p, 0xAB, 100);
    EXPECT_TRUE(heap.checkIntegrity());
}

TEST_F(HeapTest, ZeroSizeAllocStillValid)
{
    void *p = heap.alloc(0);
    ASSERT_NE(p, nullptr);
    heap.free(p);
    EXPECT_TRUE(heap.checkIntegrity());
}

TEST_F(HeapTest, AllocZeroedIsZero)
{
    auto *p = static_cast<unsigned char *>(heap.allocZeroed(512));
    ASSERT_NE(p, nullptr);
    for (int i = 0; i < 512; ++i)
        EXPECT_EQ(p[i], 0) << i;
}

TEST_F(HeapTest, FreeNullIsNoop)
{
    heap.free(nullptr);
    EXPECT_EQ(heap.stats().freeCalls, 0u);
    EXPECT_TRUE(heap.checkIntegrity());
}

TEST_F(HeapTest, DistinctAllocationsDoNotOverlap)
{
    auto *a = static_cast<char *>(heap.alloc(64));
    auto *b = static_cast<char *>(heap.alloc(64));
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    std::memset(a, 1, 64);
    std::memset(b, 2, 64);
    EXPECT_EQ(a[0], 1);
    EXPECT_EQ(a[63], 1);
}

TEST_F(HeapTest, FreeCoalescesForLargeRealloc)
{
    // Fill a chunk with small blocks, free all, then allocate one
    // block that only fits if coalescing happened.
    std::vector<void *> ptrs;
    for (int i = 0; i < 16; ++i)
        ptrs.push_back(heap.alloc(256));
    for (void *p : ptrs)
        heap.free(p);
    EXPECT_TRUE(heap.checkIntegrity());
    void *big = heap.alloc(3 * 4096);
    EXPECT_NE(big, nullptr);
}

TEST_F(HeapTest, LargeAllocationGetsDedicatedChunk)
{
    void *p = heap.alloc(10 * 4096);
    ASSERT_NE(p, nullptr);
    EXPECT_GE(heap.usableSize(p), 10u * 4096);
    EXPECT_TRUE(heap.checkIntegrity());
}

TEST_F(HeapTest, WhollyFreeChunksReturnToSource)
{
    // First allocation creates chunk 0; a big second allocation makes
    // chunk 1, which is returned once freed.
    void *keep = heap.alloc(64);
    void *big = heap.alloc(8 * 4096);
    const std::size_t used_before = pages.usedPageCount();
    heap.free(big);
    EXPECT_LT(pages.usedPageCount(), used_before);
    heap.free(keep);
    EXPECT_TRUE(heap.checkIntegrity());
}

TEST_F(HeapTest, ExhaustionReturnsNull)
{
    // The pool has 256 pages; a 300-page request cannot be served.
    EXPECT_EQ(heap.alloc(300 * 4096), nullptr);
}

TEST_F(HeapTest, StatsTrackUsage)
{
    void *a = heap.alloc(100);
    void *b = heap.alloc(200);
    EXPECT_EQ(heap.stats().allocCalls, 2u);
    EXPECT_GT(heap.stats().bytesInUse, 300u);
    heap.free(a);
    heap.free(b);
    EXPECT_EQ(heap.stats().freeCalls, 2u);
}

/** Property: randomized alloc/free with content verification. */
class HeapProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HeapProperty, ContentsSurviveChurn)
{
    hw::CycleClock clock;
    hw::AddressSpace space(512, &clock);
    PageMetaMap meta(512);
    PageAllocator pages(&space, &meta);
    HeapAllocator heap(
        [&](std::size_t n) {
            return pages.allocPages(n, 1, PageType::kHeap,
                                    hw::kPermRead | hw::kPermWrite, 1);
        },
        [&](const PageRange &r) { pages.freePages(r); }, 8);

    hw::Prng prng(GetParam());
    struct Block {
        unsigned char *ptr;
        std::size_t size;
        unsigned char fill;
    };
    std::vector<Block> live;

    for (int step = 0; step < 2000; ++step) {
        if (live.empty() || prng.nextBelow(5) < 3) {
            const std::size_t size = 1 + prng.nextBelow(2000);
            auto *p = static_cast<unsigned char *>(heap.alloc(size));
            if (!p)
                continue;
            const auto fill =
                static_cast<unsigned char>(prng.nextBelow(256));
            std::memset(p, fill, size);
            live.push_back(Block{p, size, fill});
        } else {
            const auto idx = prng.nextBelow(live.size());
            Block blk = live[idx];
            // Verify the pattern survived every other operation.
            for (std::size_t i = 0; i < blk.size; ++i) {
                ASSERT_EQ(blk.ptr[i], blk.fill)
                    << "corruption at step " << step << " offset " << i;
            }
            heap.free(blk.ptr);
            live[idx] = live.back();
            live.pop_back();
        }
        if (step % 256 == 0) {
            ASSERT_TRUE(heap.checkIntegrity()) << "step " << step;
        }
    }
    for (const auto &blk : live)
        heap.free(blk.ptr);
    EXPECT_TRUE(heap.checkIntegrity());
    EXPECT_EQ(heap.stats().bytesInUse, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeapProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

} // namespace
} // namespace cubicleos::mem
