/**
 * @file
 * Randomized property test for MPK tag virtualisation (DESIGN.md §14):
 * a program must not be able to tell whether its cubicle holds a real
 * physical tag or a logical key that is being multiplexed. The same
 * seeded operation sequence runs once on plain hardware tags and once
 * under severe artificial tag pressure (physical tags forced to 4, so
 * a single dynamic tag serves every cubicle); the observable outputs
 * must be byte-identical.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "core/system.h"
#include "tests/core/toy_components.h"

namespace cubicleos::core {
namespace {

using testing::ToyComponent;
using testing::addToy;

constexpr int kToys = 10;
constexpr int kOps = 400;
constexpr uint32_t kSeed = 0xC0B1C1E5;

/** Host-side per-component accumulator, reset for every run. */
struct ToyState {
    uint64_t acc = 0;
};

/**
 * Runs the seeded op sequence on a fresh system built from @p cfg and
 * returns every observable value the program produced, in order.
 */
std::vector<uint64_t>
runScenario(const SystemConfig &cfg)
{
    System sys(cfg);
    std::vector<ToyState> state(kToys);
    for (int i = 0; i < kToys; ++i) {
        ToyState *st = &state[i];
        addToy(sys, "c" + std::to_string(i))
            .onExports([st](Exporter &exp, ToyComponent &me) {
                exp.fn<int(int)>("step", [st](int x) {
                    st->acc = st->acc * 1103515245u +
                              static_cast<uint64_t>(x);
                    return static_cast<int>(st->acc >> 16);
                });
                exp.fn<int(const char *, std::size_t)>(
                    "sum", [&me](const char *p, std::size_t n) {
                        me.sys()->touch(p, n, hw::Access::kRead);
                        int s = 0;
                        for (std::size_t j = 0; j < n; ++j)
                            s += p[j];
                        return s;
                    });
            });
    }
    sys.boot();

    std::vector<CrossFn<int(int)>> step;
    std::vector<CrossFn<int(const char *, std::size_t)>> sum;
    std::vector<char *> buf(kToys);
    for (int i = 0; i < kToys; ++i) {
        const std::string n = "c" + std::to_string(i);
        step.push_back(sys.resolve<int(int)>(n, "step"));
        sum.push_back(
            sys.resolve<int(const char *, std::size_t)>(n, "sum"));
        const Cid cid = sys.cidOf(n);
        buf[i] = reinterpret_cast<char *>(
            sys.monitor()
                .allocPagesFor(cid, 1, mem::PageType::kHeap)
                .ptr);
        // Each cubicle exposes its page to its ring neighbour.
        sys.runAs(cid, [&] {
            const Wid wid = sys.windowInit();
            sys.windowAdd(wid, buf[i], 256);
            sys.windowOpen(wid,
                           sys.cidOf("c" +
                                     std::to_string((i + 1) % kToys)));
        });
    }

    // The op stream depends only on the seed, never on system state,
    // so both runs draw the identical sequence.
    std::mt19937 rng(kSeed);
    std::vector<uint64_t> out;
    out.reserve(kOps);
    for (int op = 0; op < kOps; ++op) {
        const int kind = static_cast<int>(rng() % 3);
        const int a = static_cast<int>(rng() % kToys);
        const int b = (a + 1 + static_cast<int>(rng() % (kToys - 1))) %
                      kToys;
        const int v = static_cast<int>(rng() % 1000);
        switch (kind) {
        case 0: // cross-call into a random peer
            sys.runAs(sys.cidOf("c" + std::to_string(a)), [&] {
                out.push_back(
                    static_cast<uint64_t>(step[b](v)));
            });
            break;
        case 1: // owner rewrites its shared page
            sys.runAs(sys.cidOf("c" + std::to_string(a)), [&] {
                sys.touch(buf[a], 256, hw::Access::kWrite);
                std::memset(buf[a], v & 0x3f, 256);
                out.push_back(static_cast<uint64_t>(v & 0x3f));
            });
            break;
        default: // ring neighbour reads through the window
            sys.runAs(sys.cidOf("c" + std::to_string(a)), [&] {
                out.push_back(static_cast<uint64_t>(
                    sum[(a + 1) % kToys](buf[a], 256)));
            });
            break;
        }
    }
    // Final accumulator states are part of the observable output.
    for (int i = 0; i < kToys; ++i)
        out.push_back(state[i].acc);
    return out;
}

TEST(TagPressureProperty, PressuredRunIsByteIdenticalToPressureFree)
{
    SystemConfig base;
    base.numPages = 16384;
    base.stackPages = 2;

    SystemConfig pressured = base;
    pressured.virtualizeTags = true;
    pressured.physTagBudget = 4; // monitor, shared, parked + ONE tag
    pressured.dynamicTags = 1;

    const std::vector<uint64_t> want = runScenario(base);
    const std::vector<uint64_t> got = runScenario(pressured);

    ASSERT_EQ(want.size(), got.size());
    EXPECT_EQ(0, std::memcmp(want.data(), got.data(),
                             want.size() * sizeof(uint64_t)))
        << "tag multiplexing must be invisible to programs";
    EXPECT_EQ(want, got);
}

TEST(TagPressureProperty, PressuredRunActuallyEvicts)
{
    // Companion sanity check: the pressured configuration really does
    // exercise the eviction machinery (otherwise the property above
    // proves nothing).
    SystemConfig cfg;
    cfg.numPages = 16384;
    cfg.stackPages = 2;
    cfg.virtualizeTags = true;
    cfg.physTagBudget = 4;
    cfg.dynamicTags = 1;
    System sys(cfg);
    std::vector<ToyState> state(4);
    for (int i = 0; i < 4; ++i) {
        ToyState *st = &state[i];
        addToy(sys, "c" + std::to_string(i))
            .onExports([st](Exporter &exp, ToyComponent &) {
                exp.fn<int(int)>("step", [st](int x) {
                    st->acc += static_cast<uint64_t>(x);
                    return static_cast<int>(st->acc);
                });
            });
    }
    sys.boot();
    auto f = sys.resolve<int(int)>("c1", "step");
    for (int i = 0; i < 50; ++i) {
        sys.runAs(sys.cidOf("c0"), [&] { f(1); });
        auto &own = sys.monitor()
                        .cubicle(sys.cidOf("c2"))
                        .globalRange;
        sys.runAs(sys.cidOf("c2"), [&] {
            sys.touch(own.ptr, 16, hw::Access::kWrite);
        });
    }
    EXPECT_GT(sys.stats().evictions(), 0u);
    EXPECT_GT(sys.stats().faultIns(), 0u);
    EXPECT_LT(sys.stats().tagHitRatePercent(), 100.0);
}

} // namespace
} // namespace cubicleos::core
