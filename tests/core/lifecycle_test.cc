/**
 * @file
 * Lifecycle subsystem tests (DESIGN.md §15): destroy semantics,
 * resource reclaim, parked-cubicle destroy, hot-restart through the
 * verify cache, and the crash-lab fault-injection scenarios (a cubicle
 * dies under a serving deployment and the rest keeps going).
 *
 * Threaded kill-mid-call scenarios live in lifecycle_stress_test.cc
 * (also under the `concurrency` label for the TSan preset).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "baselines/crashlab.h"
#include "baselines/deployments.h"
#include "core/system.h"
#include "tests/core/toy_components.h"

namespace cubicleos::core {
namespace {

using testing::addToy;

SystemConfig
fullConfig()
{
    SystemConfig cfg;
    cfg.mode = IsolationMode::kFull;
    return cfg;
}

TEST(LifecycleTest, DestroyReclaimsAndRefusesEntry)
{
    System sys(fullConfig());
    addToy(sys, "alpha");
    addToy(sys, "beta").onExports([](Exporter &exp, auto &) {
        exp.fn<int(int)>("inc", [](int x) { return x + 1; });
    });
    sys.boot();

    auto inc = sys.resolve<int(int)>("beta", "inc");
    const Cid alpha = sys.cidOf("alpha");
    const Cid beta = sys.cidOf("beta");
    sys.runAs(alpha, [&] { EXPECT_EQ(inc(1), 2); });

    const uint64_t epoch0 = sys.monitor().windowEpoch();
    const std::size_t reclaimed = sys.destroyComponent("beta");

    EXPECT_GT(reclaimed, 0u);
    EXPECT_FALSE(sys.monitor().cubicleAlive(beta));
    EXPECT_EQ(sys.monitor().lifeState(beta), LifeState::kDead);
    EXPECT_EQ(sys.stats().destroys(), 1u);
    EXPECT_EQ(sys.stats().reclaimedPages(), reclaimed);
    // Revocation epoch bumped: no grant cache may touch freed pages.
    EXPECT_GT(sys.monitor().windowEpoch(), epoch0);

    // Cross-calls into the dead cubicle unwind instead of crashing.
    sys.runAs(alpha, [&] { EXPECT_THROW(inc(1), PeerFault); });
    EXPECT_GE(sys.stats().unwoundCalls(), 1u);

    // The rest of the deployment is untouched.
    EXPECT_TRUE(sys.monitor().cubicleAlive(alpha));
}

TEST(LifecycleTest, SelfDestroyRefused)
{
    System sys(fullConfig());
    addToy(sys, "alpha");
    sys.boot();

    // The quiesce would wait on the calling thread forever.
    sys.runAs(sys.cidOf("alpha"), [&] {
        EXPECT_THROW(sys.destroyComponent("alpha"), LoaderError);
    });
    EXPECT_TRUE(sys.monitor().cubicleAlive(sys.cidOf("alpha")));
}

TEST(LifecycleTest, DestroyAndRestartErrors)
{
    System sys(fullConfig());
    addToy(sys, "alpha");
    addToy(sys, "beta");
    sys.boot();

    EXPECT_THROW(sys.destroyComponent("nosuch"), LinkError);
    // Restart requires a dead cubicle.
    EXPECT_THROW(sys.restartComponent("beta"), LoaderError);

    sys.destroyComponent("beta");
    // Double destroy: the cubicle is no longer live.
    EXPECT_THROW(sys.destroyComponent("beta"), LoaderError);
}

TEST(LifecycleTest, RestartRelaunchesThroughVerifyCache)
{
    System sys(fullConfig());
    addToy(sys, "alpha");
    addToy(sys, "beta").onExports([](Exporter &exp, auto &) {
        exp.fn<int(int)>("inc", [](int x) { return x + 1; });
    });
    sys.boot();

    auto inc = sys.resolve<int(int)>("beta", "inc");
    const Cid alpha = sys.cidOf("alpha");
    const Cid beta = sys.cidOf("beta");

    sys.destroyComponent("beta");
    const uint64_t hits0 = sys.stats().verifyCacheHits();
    sys.restartComponent("beta");

    EXPECT_TRUE(sys.monitor().cubicleAlive(beta));
    EXPECT_EQ(sys.monitor().lifeGeneration(beta), 1u);
    EXPECT_EQ(sys.stats().restarts(), 1u);
    // The content-identical image re-verifies through the cache, not
    // a full decoder run — the cheap half of hot-restart.
    EXPECT_GT(sys.stats().verifyCacheHits(), hits0);

    sys.runAs(alpha, [&] { EXPECT_EQ(inc(41), 42); });

    // A second cycle keeps counting generations.
    sys.destroyComponent("beta");
    sys.restartComponent("beta");
    EXPECT_EQ(sys.monitor().lifeGeneration(beta), 2u);
    sys.runAs(alpha, [&] { EXPECT_EQ(inc(1), 2); });
}

/**
 * Satellite regression: destroying a *parked* (tag-evicted) cubicle
 * reclaims it in place — the revocation epoch is bumped but its pages
 * are never faulted back in just to be freed.
 */
TEST(LifecycleTest, ParkedDestroyReclaimsInPlace)
{
    SystemConfig cfg = fullConfig();
    cfg.virtualizeTags = true;
    cfg.physTagBudget = 8;
    cfg.dynamicTags = 1;
    System sys(cfg);

    constexpr int kToys = 10;
    for (int i = 0; i < kToys; ++i) {
        addToy(sys, "c" + std::to_string(i))
            .onExports([](Exporter &exp, auto &) {
                exp.fn<int()>("ping", [] { return 7; });
            });
    }
    sys.boot();

    // Find two dynamically-tagged cubicles; with a single dynamic tag,
    // calling into the second parks the first.
    std::vector<std::string> logical;
    for (int i = 0; i < kToys; ++i) {
        const std::string name = "c" + std::to_string(i);
        if (sys.monitor().cubicle(sys.cidOf(name)).lkey >= 0)
            logical.push_back(name);
    }
    ASSERT_GE(logical.size(), 2u);
    const Cid parked = sys.cidOf(logical[0]);

    auto pingA = sys.resolve<int()>(logical[0], "ping");
    auto pingB = sys.resolve<int()>(logical[1], "ping");
    sys.runAs(sys.cidOf("c0"), [&] {
        EXPECT_EQ(pingA(), 7);
        EXPECT_EQ(pingB(), 7); // evicts A onto the parked tag
    });
    ASSERT_EQ(sys.monitor().cubicle(parked).pkey.load(),
              sys.monitor().parkedKey());

    const uint64_t fault_ins0 = sys.stats().faultIns();
    const uint64_t cub_fault_ins0 =
        sys.monitor().cubicle(parked).faultIns.load();
    const uint64_t epoch0 = sys.monitor().windowEpoch();

    const std::size_t reclaimed = sys.destroyComponent(logical[0]);

    EXPECT_GT(reclaimed, 0u);
    EXPECT_EQ(sys.monitor().lifeState(parked), LifeState::kDead);
    EXPECT_GT(sys.monitor().windowEpoch(), epoch0);
    // The whole point: reclaim happened under the parked tag.
    EXPECT_EQ(sys.stats().faultIns(), fault_ins0);
    EXPECT_EQ(sys.monitor().cubicle(parked).faultIns.load(),
              cub_fault_ins0);

    // And a parked death is still restartable.
    sys.restartComponent(logical[0]);
    sys.runAs(sys.cidOf("c0"), [&] { EXPECT_EQ(pingA(), 7); });
}

/**
 * Crash lab: the network stack dies under the web server. Every
 * socket call degrades to kNetPeerFault; nginx drops the affected
 * connections and the process survives — no exception crosses an
 * application boundary.
 */
TEST(CrashLabTest, LwipCrashReturnsErrorsToHttpd)
{
    baselines::CrashLabHarness h(IsolationMode::kFull);
    h.createFile("/hello.txt", 4096);
    h.createFile("/big.txt", 262144);

    auto ok = h.fetch("/hello.txt");
    EXPECT_EQ(ok.status, 200);
    EXPECT_EQ(ok.bodyBytes, 4096u);

    // Leave a connection mid-body, then kill the stack under it.
    auto partial = h.fetch("/big.txt", /*max_rounds=*/25);
    (void)partial;
    const uint64_t errors0 = h.nginx().stats().errors;
    EXPECT_GT(h.killLwip(), 0u);

    // The server loop keeps running against the dead stack: calls
    // return kNetPeerFault, in-flight connections are dropped.
    h.pump(10);
    EXPECT_GE(h.nginx().stats().errors, errors0);

    // A fetch against the dead stack fails cleanly (status 0).
    auto dead = h.fetch("/hello.txt");
    EXPECT_EQ(dead.status, 0);

    // The database cubicle, sharing the deployment, is unaffected.
    auto rs = h.exec("CREATE TABLE t (k INT); INSERT INTO t VALUES (1);"
                     "SELECT COUNT(*) FROM t");
    EXPECT_EQ(rs.scalarInt(), 1);
}

/**
 * Crash lab: destroy and hot-restart the database cubicle while the
 * web server keeps serving through the shared stack. The restarted
 * cubicle reopens its file — rolling back any hot journal the crash
 * left — and answers queries again.
 */
TEST(CrashLabTest, HttpdServesAcrossMinisqlDestroyAndRestart)
{
    baselines::CrashLabHarness h(IsolationMode::kFull);
    h.createFile("/site.txt", 8192);

    h.exec("CREATE TABLE kv (k INT, v INT)");
    h.exec("INSERT INTO kv VALUES (1, 10)");
    EXPECT_EQ(h.fetch("/site.txt").status, 200);

    const std::size_t reclaimed = h.killMinisql();
    EXPECT_GT(reclaimed, 0u);
    EXPECT_EQ(h.sys().stats().destroys(), 1u);

    // Queries into the dead cubicle unwind with PeerFault...
    EXPECT_THROW(h.exec("SELECT COUNT(*) FROM kv"), PeerFault);
    // ...while HTTP service through the untouched stack continues.
    auto during = h.fetch("/site.txt");
    EXPECT_EQ(during.status, 200);
    EXPECT_EQ(during.bodyBytes, 8192u);

    h.restartMinisql();
    EXPECT_EQ(h.sys().stats().restarts(), 1u);

    // Committed state survived on the (never-crashed) RAMFS.
    EXPECT_EQ(h.exec("SELECT COUNT(*) FROM kv").scalarInt(), 1);
    h.exec("INSERT INTO kv VALUES (2, 20)");
    EXPECT_EQ(h.exec("SELECT COUNT(*) FROM kv").scalarInt(), 2);
    EXPECT_EQ(h.fetch("/site.txt").status, 200);
}

/**
 * Satellite: multi-tenant fault injection. One tenant's log cubicle is
 * killed and restarted under load; every tenant's HTTP responses are
 * byte-identical to an uninterrupted run, and the restarted log
 * converges to the true request total (the server keeps the
 * unreported delta while its peer is down).
 */
TEST(MultiTenantCrashTest, TenantLogKillIsInvisibleToOtherTenants)
{
    constexpr int kTenants = 26;
    constexpr int kVictim = 3;

    auto run = [&](bool inject) {
        auto h = baselines::makeMultiTenantHttpd(kTenants,
                                                 IsolationMode::kFull);
        for (int t = 0; t < kTenants; ++t)
            h->createFile(t, "/f.txt", 1024 + 128 * t);

        std::vector<std::string> bodies;
        for (int t = 0; t < kTenants; ++t) {
            auto r = h->fetch(t, "/f.txt");
            EXPECT_EQ(r.status, 200);
            bodies.push_back(r.body);
        }

        if (inject)
            h->sys().destroyComponent("tlog" + std::to_string(kVictim));

        for (int t = 0; t < kTenants; ++t) {
            auto r = h->fetch(t, "/f.txt");
            EXPECT_EQ(r.status, 200);
            bodies.push_back(r.body);
        }

        if (inject) {
            h->sys().restartComponent("tlog" + std::to_string(kVictim));
            // The next completed request re-delivers the full running
            // total: the restarted log converges to the truth.
            auto r = h->fetch(kVictim, "/f.txt");
            EXPECT_EQ(r.status, 200);
            EXPECT_EQ(h->tenantLog(kVictim).totalRequests(), 3u);
        }
        return bodies;
    };

    const auto clean = run(false);
    const auto injected = run(true);
    ASSERT_EQ(clean.size(), injected.size());
    for (std::size_t i = 0; i < clean.size(); ++i)
        EXPECT_EQ(clean[i], injected[i]) << "response " << i;
}

} // namespace
} // namespace cubicleos::core
