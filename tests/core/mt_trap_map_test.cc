/**
 * @file
 * Multi-threaded trap-and-map tests: concurrent faults through one
 * shared window on overlapping pages, window open/close racing
 * accessor faults, and grant-cache (simulated TLB) invalidation on
 * windowClose. These exercise the monitor's decomposed lock hierarchy
 * (monitor.h) rather than the per-thread-context behaviour covered by
 * concurrency_test.cc.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "core/system.h"
#include "tests/core/toy_components.h"

namespace cubicleos::core {
namespace {

using testing::addToy;

TEST(MtTrapMap, ThreadsFaultThroughOneWindowOnOverlappingPages)
{
    SystemConfig cfg;
    cfg.numPages = 4096;
    System sys(cfg);
    addToy(sys, "owner");
    constexpr int kThreads = 4;
    for (int i = 0; i < kThreads; ++i)
        addToy(sys, "acc" + std::to_string(i));
    sys.boot();
    const Cid owner = sys.cidOf("owner");

    // One 4-page buffer shared through one window with every accessor
    // in the ACL: all threads fault over the same pages, and the tag
    // ping-pongs between them until their grant caches absorb it.
    constexpr std::size_t kBufPages = 4;
    constexpr std::size_t kBufBytes = kBufPages * hw::kPageSize;
    char *buf = nullptr;
    sys.runAs(owner, [&] {
        buf = reinterpret_cast<char *>(
            sys.monitor()
                .allocPagesFor(owner, kBufPages, mem::PageType::kHeap)
                .ptr);
        std::memset(buf, 7, kBufBytes);
        const Wid wid = sys.windowInit();
        sys.windowAdd(wid, buf, kBufBytes);
        for (int i = 0; i < kThreads; ++i)
            sys.windowOpen(wid, sys.cidOf("acc" + std::to_string(i)));
    });

    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            const Cid me = sys.cidOf("acc" + std::to_string(t));
            sys.runAs(me, [&] {
                for (int i = 0; i < 300; ++i) {
                    try {
                        // Whole-buffer read: every thread's range
                        // covers every page of the window.
                        sys.touch(buf, kBufBytes, hw::Access::kRead);
                        long s = 0;
                        for (std::size_t b = 0; b < kBufBytes;
                             b += 512)
                            s += buf[b];
                        if (s != 7 * static_cast<long>(kBufBytes / 512))
                            ++failures;
                    } catch (const hw::CubicleFault &) {
                        ++failures; // window is open: never a violation
                    }
                    std::this_thread::yield();
                }
            });
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(sys.stats().violations(), 0u);
    // The first accessor fault per page retags. (Grant-cache hits also
    // occur whenever the threads interleave, but that is scheduler-
    // dependent; the deterministic hit test is
    // WindowCloseInvalidatesGrantCache below.)
    EXPECT_GE(sys.stats().retags(), kBufPages);
}

TEST(MtTrapMap, OpenCloseRacingAccessorFaults)
{
    SystemConfig cfg;
    cfg.numPages = 4096;
    System sys(cfg);
    addToy(sys, "owner");
    addToy(sys, "acc");
    sys.boot();
    const Cid owner = sys.cidOf("owner");
    const Cid acc = sys.cidOf("acc");

    char *buf = nullptr;
    Wid wid = kInvalidWindow;
    sys.runAs(owner, [&] {
        buf = reinterpret_cast<char *>(
            sys.monitor()
                .allocPagesFor(owner, 1, mem::PageType::kHeap)
                .ptr);
        wid = sys.windowInit();
        sys.windowAdd(wid, buf, hw::kPageSize);
    });

    constexpr int kRounds = 400;
    std::atomic<bool> done{false};
    std::atomic<int> granted{0};
    std::atomic<int> denied{0};

    std::thread owner_thread([&] {
        sys.runAs(owner, [&] {
            for (int i = 0; i < kRounds; ++i) {
                sys.windowOpen(wid, acc);
                std::this_thread::yield();
                sys.windowClose(wid, acc);
                // Reclaim the page so the next accessor attempt
                // re-faults instead of riding the lazily kept tag.
                sys.touch(buf, 1, hw::Access::kWrite);
            }
            done = true;
        });
    });
    std::thread acc_thread([&] {
        sys.runAs(acc, [&] {
            while (!done) {
                try {
                    sys.touch(buf, 1, hw::Access::kRead);
                    ++granted;
                } catch (const hw::CubicleFault &) {
                    ++denied;
                }
            }
        });
    });
    owner_thread.join();
    acc_thread.join();

    // Every attempt resolved to exactly one of the two outcomes — no
    // deadlock, no torn state — and the system still works afterwards.
    EXPECT_GT(granted + denied, 0);
    sys.runAs(owner, [&] {
        sys.windowOpen(wid, acc);
    });
    sys.runAs(acc, [&] {
        EXPECT_NO_THROW(sys.touch(buf, hw::kPageSize,
                                  hw::Access::kRead));
    });
    sys.runAs(owner, [&] { sys.windowDestroy(wid); });
}

TEST(MtTrapMap, WindowCloseInvalidatesGrantCache)
{
    SystemConfig cfg;
    cfg.numPages = 4096;
    System sys(cfg);
    addToy(sys, "owner");
    addToy(sys, "acc");
    sys.boot();
    const Cid owner = sys.cidOf("owner");
    const Cid acc = sys.cidOf("acc");

    char *buf = nullptr;
    Wid wid = kInvalidWindow;
    sys.runAs(owner, [&] {
        buf = reinterpret_cast<char *>(
            sys.monitor()
                .allocPagesFor(owner, 1, mem::PageType::kHeap)
                .ptr);
        std::memset(buf, 3, 64);
        wid = sys.windowInit();
        sys.windowAdd(wid, buf, hw::kPageSize);
        sys.windowOpen(wid, acc);
    });

    // Accessor faults in: full trap-and-map, grant cached.
    sys.runAs(acc, [&] {
        sys.touch(buf, 64, hw::Access::kRead);
    });
    // Owner reclaims the tag (owner self-retag fast path).
    sys.runAs(owner, [&] {
        sys.touch(buf, 64, hw::Access::kWrite);
    });

    // Accessor again: the PKU fault is absorbed by the cached grant —
    // no retag, one cache hit.
    const uint64_t retags_before = sys.stats().retags();
    sys.runAs(acc, [&] {
        sys.touch(buf, 64, hw::Access::kRead);
    });
    EXPECT_EQ(sys.stats().retags(), retags_before);
    EXPECT_GE(sys.stats().grantCacheHits(), 1u);

    // Close bumps the revocation epoch: the cached grant must never be
    // honoured again. The owner reclaims the tag, then the accessor's
    // access has to re-fault — and the ACL walk rejects it.
    sys.runAs(owner, [&] {
        sys.windowClose(wid, acc);
        sys.touch(buf, 64, hw::Access::kWrite);
    });
    sys.runAs(acc, [&] {
        EXPECT_THROW(sys.touch(buf, 64, hw::Access::kRead),
                     hw::CubicleFault);
    });
    EXPECT_GE(sys.stats().violations(), 1u);
}

TEST(MtTrapMap, RangeRetagsDoNotInvalidateOtherThreadsCachedGrants)
{
    SystemConfig cfg;
    cfg.numPages = 4096;
    System sys(cfg);
    addToy(sys, "owner");
    addToy(sys, "acc0");
    addToy(sys, "acc1");
    sys.boot();
    const Cid owner = sys.cidOf("owner");
    const Cid acc0 = sys.cidOf("acc0");
    const Cid acc1 = sys.cidOf("acc1");

    // An 8-page buffer behind one window, open for both accessors: big
    // enough that every prestage is a multi-page range retag, small
    // enough to stay one setKeyRange run (retagChunkPages default).
    constexpr std::size_t kBufPages = 8;
    constexpr std::size_t kBufBytes = kBufPages * hw::kPageSize;
    char *buf = nullptr;
    Wid wid = kInvalidWindow;
    sys.runAs(owner, [&] {
        buf = reinterpret_cast<char *>(
            sys.monitor()
                .allocPagesFor(owner, kBufPages, mem::PageType::kHeap)
                .ptr);
        std::memset(buf, 5, kBufBytes);
        wid = sys.windowInit();
        sys.windowAdd(wid, buf, kBufBytes);
        sys.windowOpen(wid, acc0);
        sys.windowOpen(wid, acc1);
    });

    // Warm both accessors' per-thread grant caches with one full-range
    // fault each (range-granular: one trap covers all eight pages).
    for (Cid acc : {acc0, acc1}) {
        sys.runAs(acc, [&] {
            sys.touch(buf, kBufBytes, hw::Access::kRead);
        });
    }

    // Owner storms range retags over exactly the pages the reader
    // threads hold cached grants for: windowPrestage to alternating
    // peers keeps flipping every page's tag between the two accessor
    // keys. These retags only WIDEN access — they must not bump the
    // revocation epoch, so both readers' caches stay valid and absorb
    // the PKU misses without a single rejected access.
    std::atomic<int> failures{0};
    std::atomic<bool> done{false};
    std::thread owner_thread([&] {
        sys.runAs(owner, [&] {
            for (int i = 0; i < 400; ++i) {
                sys.windowPrestage(wid, (i & 1) ? acc1 : acc0,
                                   hw::Access::kRead);
                std::this_thread::yield();
            }
            done = true;
        });
    });
    std::vector<std::thread> readers;
    for (Cid acc : {acc0, acc1}) {
        readers.emplace_back([&, acc] {
            sys.runAs(acc, [&] {
                while (!done) {
                    try {
                        sys.touch(buf, kBufBytes, hw::Access::kRead);
                        long s = 0;
                        for (std::size_t b = 0; b < kBufBytes;
                             b += 1024)
                            s += buf[b];
                        if (s !=
                            5 * static_cast<long>(kBufBytes / 1024))
                            ++failures;
                    } catch (const hw::CubicleFault &) {
                        ++failures; // ACL never changed: no violation
                    }
                    std::this_thread::yield();
                }
            });
        });
    }
    owner_thread.join();
    for (auto &th : readers)
        th.join();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(sys.stats().violations(), 0u);
    EXPECT_GE(sys.stats().grantCacheHits(), 2u);

    // windowRemove IS a revocation: it bumps the epoch, so the cached
    // grants — still warm in both reader threads — die at once. After
    // the owner reclaims the tags, a reader's next access must go
    // through the full fault path and be rejected.
    sys.runAs(owner, [&] {
        sys.windowRemove(wid, buf);
        sys.touch(buf, kBufBytes, hw::Access::kWrite);
    });
    sys.runAs(acc0, [&] {
        EXPECT_THROW(sys.touch(buf, 64, hw::Access::kRead),
                     hw::CubicleFault);
    });
    EXPECT_GE(sys.stats().violations(), 1u);
    sys.runAs(owner, [&] { sys.windowDestroy(wid); });
}

} // namespace
} // namespace cubicleos::core
