/**
 * @file
 * Unit tests for window descriptors and the per-cubicle window tables.
 */

#include <gtest/gtest.h>

#include "core/window.h"

namespace cubicleos::core {
namespace {

TEST(AclMask, BitPerCubicle)
{
    EXPECT_EQ(aclBit(0), 1u);
    EXPECT_EQ(aclBit(5), 1u << 5);
    AclMask acl = aclBit(2) | aclBit(7);
    EXPECT_TRUE(acl & aclBit(2));
    EXPECT_FALSE(acl & aclBit(3));
}

TEST(AclMask, OutOfRangeCubicleThrowsInsteadOfAliasing)
{
    // cid % kMaxCubicles used to silently alias cubicle 64 onto
    // cubicle 0's ACL bit — an isolation hole, not a convenience.
    EXPECT_EQ(aclBit(static_cast<Cid>(kMaxCubicles - 1)),
              AclMask{1} << (kMaxCubicles - 1));
    EXPECT_THROW(aclBit(static_cast<Cid>(kMaxCubicles)), WindowError);
    EXPECT_THROW(aclBit(static_cast<Cid>(kMaxCubicles + 1)), WindowError);
    EXPECT_THROW(aclBit(kNoCubicle), WindowError);
}

TEST(AclMask, OldSixtyFourCubicleBoundaryIsNoLongerACeiling)
{
    // Regression guard for the 64 -> 128 cid widening: the mask used
    // to be a bare uint64_t, so cid 64 was the first unrepresentable
    // cubicle. Bits on both sides of the old boundary must now be
    // distinct, usable, and must not alias into the low word.
    static_assert(kMaxCubicles >= 128,
                  "tag virtualisation needs headroom past 64 cubicles");
    const AclMask below = aclBit(static_cast<Cid>(63));
    const AclMask at = aclBit(static_cast<Cid>(64));
    const AclMask above = aclBit(static_cast<Cid>(127));
    EXPECT_TRUE(static_cast<bool>(at));
    EXPECT_TRUE(static_cast<bool>(above));
    EXPECT_FALSE(static_cast<bool>(below & at));
    EXPECT_FALSE(static_cast<bool>(at & above));
    // Bit 64 must live in the high word, not wrap onto cubicle 0.
    EXPECT_FALSE(static_cast<bool>(at & aclBit(0)));
    EXPECT_EQ(at.lo, 0u);
    EXPECT_EQ(at.hi, 1u);
    EXPECT_EQ(below.lo, uint64_t{1} << 63);
    EXPECT_EQ(below.hi, 0u);
    // Set-union and clearing work across the word boundary.
    AclMask acl = below | at | above;
    acl &= ~at;
    EXPECT_TRUE(static_cast<bool>(acl & below));
    EXPECT_FALSE(static_cast<bool>(acl & at));
    EXPECT_TRUE(static_cast<bool>(acl & above));
}

TEST(WindowRange, ContainsIsHalfOpen)
{
    char buf[64];
    WindowRange r{buf, 64, 1};
    EXPECT_TRUE(r.contains(buf));
    EXPECT_TRUE(r.contains(buf + 63));
    EXPECT_FALSE(r.contains(buf + 64));
    EXPECT_FALSE(r.contains(buf - 1));
}

class WindowTableTest : public ::testing::Test {
  protected:
    WindowTable table;
    char stack_buf[128];
    char heap_buf[128];
    char global_buf[128];
};

TEST_F(WindowTableTest, FindSearchesOnlyMatchingTypeArray)
{
    table.add(mem::PageType::kStack, stack_buf, 128, 1);
    table.add(mem::PageType::kHeap, heap_buf, 128, 2);
    table.add(mem::PageType::kGlobal, global_buf, 128, 3);

    EXPECT_EQ(table.findWindowFor(mem::PageType::kStack, stack_buf + 5), 1u);
    EXPECT_EQ(table.findWindowFor(mem::PageType::kHeap, heap_buf + 5), 2u);
    EXPECT_EQ(table.findWindowFor(mem::PageType::kGlobal, global_buf), 3u);

    // A stack address is not found via the heap array.
    EXPECT_EQ(table.findWindowFor(mem::PageType::kHeap, stack_buf),
              kInvalidWindow);
}

TEST_F(WindowTableTest, MissReturnsInvalid)
{
    table.add(mem::PageType::kHeap, heap_buf, 64, 2);
    EXPECT_EQ(table.findWindowFor(mem::PageType::kHeap, heap_buf + 100),
              kInvalidWindow);
}

TEST_F(WindowTableTest, RemoveSpecificRange)
{
    table.add(mem::PageType::kHeap, heap_buf, 64, 2);
    table.add(mem::PageType::kHeap, heap_buf + 64, 64, 2);
    EXPECT_TRUE(table.remove(2, heap_buf));
    EXPECT_EQ(table.findWindowFor(mem::PageType::kHeap, heap_buf),
              kInvalidWindow);
    EXPECT_EQ(table.findWindowFor(mem::PageType::kHeap, heap_buf + 64), 2u);
    EXPECT_FALSE(table.remove(2, heap_buf)) << "already removed";
}

TEST_F(WindowTableTest, RemoveAllForWindow)
{
    table.add(mem::PageType::kHeap, heap_buf, 64, 7);
    table.add(mem::PageType::kStack, stack_buf, 64, 7);
    table.add(mem::PageType::kHeap, heap_buf + 64, 64, 8);
    table.removeAll(7);
    EXPECT_EQ(table.totalRanges(), 1u);
    EXPECT_EQ(table.findWindowFor(mem::PageType::kHeap, heap_buf + 64), 8u);
}

TEST_F(WindowTableTest, MultipleRangesLinearSearchFindsFirstMatch)
{
    // Paper §5.3: all but one cubicle have <10 windows, so a linear
    // search suffices; verify many ranges still resolve correctly.
    for (int i = 0; i < 32; ++i)
        table.add(mem::PageType::kHeap, heap_buf + i * 4, 4, 100 + i);
    for (int i = 0; i < 32; ++i) {
        EXPECT_EQ(table.findWindowFor(mem::PageType::kHeap,
                                      heap_buf + i * 4 + 1),
                  static_cast<Wid>(100 + i));
    }
    EXPECT_EQ(table.rangeCount(mem::PageType::kHeap), 32u);
}

TEST_F(WindowTableTest, CodePagesShareGlobalArray)
{
    table.add(mem::PageType::kCode, global_buf, 16, 4);
    EXPECT_EQ(table.findWindowFor(mem::PageType::kGlobal, global_buf), 4u);
}

TEST_F(WindowTableTest, SortedIndexResolvesOutOfOrderInsertion)
{
    // The interval index sorts by start address at insert time, so
    // lookups must not depend on registration order.
    table.add(mem::PageType::kHeap, heap_buf + 96, 32, 12);
    table.add(mem::PageType::kHeap, heap_buf, 32, 10);
    table.add(mem::PageType::kHeap, heap_buf + 48, 32, 11);

    EXPECT_EQ(table.findWindowFor(mem::PageType::kHeap, heap_buf + 1), 10u);
    EXPECT_EQ(table.findWindowFor(mem::PageType::kHeap, heap_buf + 50), 11u);
    EXPECT_EQ(table.findWindowFor(mem::PageType::kHeap, heap_buf + 100),
              12u);
    // Gap between ranges misses.
    EXPECT_EQ(table.findWindowFor(mem::PageType::kHeap, heap_buf + 40),
              kInvalidWindow);
    // Just past the last range misses too.
    EXPECT_EQ(table.findWindowFor(mem::PageType::kHeap, heap_buf + 127),
              12u);
}

TEST_F(WindowTableTest, BackwardWalkBoundedByLargestRange)
{
    // A large early range must still be found for addresses deep
    // inside it even when many small later ranges sort between its
    // start and the queried address.
    table.add(mem::PageType::kStack, stack_buf, 128, 20);
    table.add(mem::PageType::kHeap, heap_buf, 8, 21);
    table.add(mem::PageType::kHeap, heap_buf + 16, 8, 22);
    EXPECT_EQ(table.findWindowFor(mem::PageType::kStack, stack_buf + 127),
              20u);
    EXPECT_EQ(table.findWindowFor(mem::PageType::kHeap, heap_buf + 17),
              22u);
    // Address between the small heap ranges: the bound must not stop
    // the walk before the containment checks reject both.
    EXPECT_EQ(table.findWindowFor(mem::PageType::kHeap, heap_buf + 12),
              kInvalidWindow);
}

TEST_F(WindowTableTest, CoverageForMergesAdjacentRangesOfSameWindow)
{
    // Window 7 staged as two back-to-back ranges (the per-block FS
    // grant layout); window 9 holds the adjacent bytes. coverageFor
    // must merge 7's ranges and stop at 9's, in both directions.
    table.add(mem::PageType::kHeap, heap_buf, 32, 7);
    table.add(mem::PageType::kHeap, heap_buf + 32, 32, 7);
    table.add(mem::PageType::kHeap, heap_buf + 64, 32, 9);

    const RangeSpan s =
        table.coverageFor(mem::PageType::kHeap, 7, heap_buf + 40);
    EXPECT_EQ(s.start, reinterpret_cast<uintptr_t>(heap_buf));
    EXPECT_EQ(s.size(), 64u);

    const RangeSpan other =
        table.coverageFor(mem::PageType::kHeap, 9, heap_buf + 70);
    EXPECT_EQ(other.start,
              reinterpret_cast<uintptr_t>(heap_buf) + 64);
    EXPECT_EQ(other.size(), 32u);

    // No range of the asked-for window contains the address: empty.
    EXPECT_TRUE(table.coverageFor(mem::PageType::kHeap, 7,
                                  heap_buf + 70)
                    .empty());
    EXPECT_TRUE(
        table.coverageFor(mem::PageType::kStack, 7, heap_buf).empty());
}

TEST_F(WindowTableTest, CoverageForDoesNotMergeAcrossGaps)
{
    table.add(mem::PageType::kHeap, heap_buf, 16, 4);
    table.add(mem::PageType::kHeap, heap_buf + 32, 16, 4); // gap at 16
    const RangeSpan s =
        table.coverageFor(mem::PageType::kHeap, 4, heap_buf + 4);
    EXPECT_EQ(s.start, reinterpret_cast<uintptr_t>(heap_buf));
    EXPECT_EQ(s.size(), 16u);
}

} // namespace
} // namespace cubicleos::core
