/**
 * @file
 * Tests for the loader's forbidden-instruction scanner (paper §5.4).
 */

#include <gtest/gtest.h>

#include "core/codescan.h"

namespace cubicleos::core {
namespace {

std::vector<uint8_t>
bytes(std::initializer_list<int> list)
{
    std::vector<uint8_t> v;
    for (int b : list)
        v.push_back(static_cast<uint8_t>(b));
    return v;
}

TEST(CodeScan, CleanImagePasses)
{
    auto image = bytes({0x90, 0x90, 0x48, 0x89, 0xC3, 0x90});
    EXPECT_FALSE(scanCodeImage(image).has_value());
}

TEST(CodeScan, DetectsWrpkru)
{
    auto image = bytes({0x90, 0x0F, 0x01, 0xEF, 0x90});
    auto hit = scanCodeImage(image);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->mnemonic, "wrpkru");
    EXPECT_EQ(hit->offset, 1u);
}

TEST(CodeScan, DetectsSyscall)
{
    auto image = bytes({0x48, 0x31, 0xC0, 0x0F, 0x05});
    auto hit = scanCodeImage(image);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->mnemonic, "syscall");
}

TEST(CodeScan, DetectsSysenter)
{
    auto image = bytes({0x0F, 0x34});
    ASSERT_TRUE(scanCodeImage(image).has_value());
    EXPECT_EQ(scanCodeImage(image)->mnemonic, "sysenter");
}

TEST(CodeScan, DetectsInt80)
{
    auto image = bytes({0xCD, 0x80});
    ASSERT_TRUE(scanCodeImage(image).has_value());
    EXPECT_EQ(scanCodeImage(image)->mnemonic, "int80");
}

TEST(CodeScan, DetectsXrstorMemoryForms)
{
    // 0F AE /5: any ModRM with reg field 5 matches the masked pattern.
    for (int modrm : {0x28, 0x68, 0xA8, 0x2C, 0x6D}) {
        auto image = bytes({0x90, 0x0F, 0xAE, modrm});
        auto hit = scanCodeImage(image);
        ASSERT_TRUE(hit.has_value()) << modrm;
        EXPECT_EQ(hit->mnemonic, "xrstor") << modrm;
        EXPECT_EQ(hit->offset, 1u);
        EXPECT_EQ(hit->length, 3u);
    }
}

TEST(CodeScan, XrstorMaskMatchesRegisterAlias)
{
    // lfence (0F AE E8) shares reg field 5: the conservative grep
    // flags it too; the verifier downgrades it (benign alias).
    auto image = bytes({0x0F, 0xAE, 0xE8});
    auto hit = scanCodeImage(image);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->mnemonic, "xrstor");
}

TEST(CodeScan, OtherXsaveGroupMembersAreNotXrstor)
{
    // reg fields other than 5 (xsave /4, mfence /6, clflush /7, ...).
    for (int modrm : {0x20, 0x00, 0xF0, 0x38, 0x08}) {
        auto image = bytes({0x0F, 0xAE, modrm});
        EXPECT_FALSE(scanCodeImage(image).has_value()) << modrm;
    }
}

TEST(CodeScan, DetectsSequenceSpanningPageBoundary)
{
    // wrpkru straddles the 4096-byte page boundary: byte 0x0F at 4095.
    std::vector<uint8_t> image(8192, 0x90);
    image[4095] = 0x0F;
    image[4096] = 0x01;
    image[4097] = 0xEF;
    auto hit = scanCodeImage(image);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->offset, 4095u);
    EXPECT_EQ(hit->mnemonic, "wrpkru");
}

TEST(CodeScan, PrefixOnlyIsNotAMatch)
{
    // 0F 01 without EF is a different instruction group (e.g. SGDT).
    auto image = bytes({0x0F, 0x01, 0x00});
    EXPECT_FALSE(scanCodeImage(image).has_value());
}

TEST(CodeScan, TruncatedSequenceAtEndDoesNotMatch)
{
    auto image = bytes({0x90, 0x0F, 0x01});
    EXPECT_FALSE(scanCodeImage(image).has_value());
}

TEST(CodeScan, AllFindsEveryOccurrence)
{
    auto image = bytes({0x0F, 0x05, 0x90, 0x0F, 0x01, 0xEF, 0xCD, 0x80});
    auto hits = scanCodeImageAll(image);
    ASSERT_EQ(hits.size(), 3u);
    EXPECT_EQ(hits[0].mnemonic, "syscall");
    EXPECT_EQ(hits[1].mnemonic, "wrpkru");
    EXPECT_EQ(hits[2].mnemonic, "int80");
}

TEST(CodeScan, AllReportsAdjacentSequencesExactlyOnceEach)
{
    // Regression: the all-matches scan must resume past a match, so
    // back-to-back sequences yield one entry each, with no duplicate
    // or overlapping reports from the matched bytes' interior.
    auto image = bytes({0x0F, 0x01, 0xEF, 0x0F, 0x01, 0xEF,
                        0xCD, 0x80, 0xCD, 0x80});
    auto hits = scanCodeImageAll(image);
    ASSERT_EQ(hits.size(), 4u);
    EXPECT_EQ(hits[0].offset, 0u);
    EXPECT_EQ(hits[1].offset, 3u);
    EXPECT_EQ(hits[2].offset, 6u);
    EXPECT_EQ(hits[3].offset, 8u);
}

TEST(CodeScan, AllDoesNotRescanMatchedInterior)
{
    // 0F AE 28 (xrstor) followed by 80: the 0x28 0x80 tail of the
    // match must not seed further matches, and the scan continues
    // cleanly after it (syscall at offset 4).
    auto image = bytes({0x0F, 0xAE, 0x28, 0x80, 0x0F, 0x05});
    auto hits = scanCodeImageAll(image);
    ASSERT_EQ(hits.size(), 2u);
    EXPECT_EQ(hits[0].mnemonic, "xrstor");
    EXPECT_EQ(hits[0].offset, 0u);
    EXPECT_EQ(hits[1].mnemonic, "syscall");
    EXPECT_EQ(hits[1].offset, 4u);
}

TEST(CodeScan, ReportsMatchLengths)
{
    auto image = bytes({0x0F, 0x05, 0x90, 0x0F, 0x01, 0xEF});
    auto hits = scanCodeImageAll(image);
    ASSERT_EQ(hits.size(), 2u);
    EXPECT_EQ(hits[0].length, 2u);
    EXPECT_EQ(hits[1].length, 3u);
}

TEST(CodeScan, PatternTableIsExposed)
{
    auto patterns = forbiddenPatterns();
    ASSERT_EQ(patterns.size(), 6u);
    bool sawXrstor = false;
    for (const auto &p : patterns) {
        if (std::string(p.mnemonic) == "xrstor") {
            sawXrstor = true;
            EXPECT_EQ(p.mask[2], 0x38); // ModRM reg-field mask
        }
    }
    EXPECT_TRUE(sawXrstor);
}

TEST(CodeScan, EmptyImageIsClean)
{
    EXPECT_FALSE(scanCodeImage({}).has_value());
}

TEST(CodeScan, BenignImagesAreAlwaysClean)
{
    for (uint64_t seed = 1; seed <= 32; ++seed) {
        auto image = makeBenignImage(16384, seed);
        EXPECT_EQ(image.size(), 16384u);
        EXPECT_FALSE(scanCodeImage(image).has_value()) << seed;
    }
}

} // namespace
} // namespace cubicleos::core
