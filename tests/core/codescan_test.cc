/**
 * @file
 * Tests for the loader's forbidden-instruction scanner (paper §5.4).
 */

#include <gtest/gtest.h>

#include "core/codescan.h"

namespace cubicleos::core {
namespace {

std::vector<uint8_t>
bytes(std::initializer_list<int> list)
{
    std::vector<uint8_t> v;
    for (int b : list)
        v.push_back(static_cast<uint8_t>(b));
    return v;
}

TEST(CodeScan, CleanImagePasses)
{
    auto image = bytes({0x90, 0x90, 0x48, 0x89, 0xC3, 0x90});
    EXPECT_FALSE(scanCodeImage(image).has_value());
}

TEST(CodeScan, DetectsWrpkru)
{
    auto image = bytes({0x90, 0x0F, 0x01, 0xEF, 0x90});
    auto hit = scanCodeImage(image);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->mnemonic, "wrpkru");
    EXPECT_EQ(hit->offset, 1u);
}

TEST(CodeScan, DetectsSyscall)
{
    auto image = bytes({0x48, 0x31, 0xC0, 0x0F, 0x05});
    auto hit = scanCodeImage(image);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->mnemonic, "syscall");
}

TEST(CodeScan, DetectsSysenter)
{
    auto image = bytes({0x0F, 0x34});
    ASSERT_TRUE(scanCodeImage(image).has_value());
    EXPECT_EQ(scanCodeImage(image)->mnemonic, "sysenter");
}

TEST(CodeScan, DetectsInt80)
{
    auto image = bytes({0xCD, 0x80});
    ASSERT_TRUE(scanCodeImage(image).has_value());
    EXPECT_EQ(scanCodeImage(image)->mnemonic, "int80");
}

TEST(CodeScan, DetectsSequenceSpanningPageBoundary)
{
    // wrpkru straddles the 4096-byte page boundary: byte 0x0F at 4095.
    std::vector<uint8_t> image(8192, 0x90);
    image[4095] = 0x0F;
    image[4096] = 0x01;
    image[4097] = 0xEF;
    auto hit = scanCodeImage(image);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->offset, 4095u);
    EXPECT_EQ(hit->mnemonic, "wrpkru");
}

TEST(CodeScan, PrefixOnlyIsNotAMatch)
{
    // 0F 01 without EF is a different instruction group (e.g. SGDT).
    auto image = bytes({0x0F, 0x01, 0x00});
    EXPECT_FALSE(scanCodeImage(image).has_value());
}

TEST(CodeScan, TruncatedSequenceAtEndDoesNotMatch)
{
    auto image = bytes({0x90, 0x0F, 0x01});
    EXPECT_FALSE(scanCodeImage(image).has_value());
}

TEST(CodeScan, AllFindsEveryOccurrence)
{
    auto image = bytes({0x0F, 0x05, 0x90, 0x0F, 0x01, 0xEF, 0xCD, 0x80});
    auto hits = scanCodeImageAll(image);
    ASSERT_EQ(hits.size(), 3u);
    EXPECT_EQ(hits[0].mnemonic, "syscall");
    EXPECT_EQ(hits[1].mnemonic, "wrpkru");
    EXPECT_EQ(hits[2].mnemonic, "int80");
}

TEST(CodeScan, EmptyImageIsClean)
{
    EXPECT_FALSE(scanCodeImage({}).has_value());
}

TEST(CodeScan, BenignImagesAreAlwaysClean)
{
    for (uint64_t seed = 1; seed <= 32; ++seed) {
        auto image = makeBenignImage(16384, seed);
        EXPECT_EQ(image.size(), 16384u);
        EXPECT_FALSE(scanCodeImage(image).has_value()) << seed;
    }
}

} // namespace
} // namespace cubicleos::core
