/**
 * @file
 * Whole-deployment isolation auditor tests: verifier pass 3
 * (interprocedural resolution of indirect flow) at load time, the
 * least-privilege dataflow audit at boot (AuditLevel), and the
 * machine-readable JSON report diffed against a committed baseline.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <span>
#include <sstream>
#include <vector>

#include "apps/httpd/harness.h"
#include "apps/minisql/speedtest.h"
#include "baselines/deployments.h"
#include "core/system.h"
#include "core/verifier/audit.h"
#include "core/verifier/ipcfg.h"
#include "core/verifier/lint.h"
#include "tests/core/toy_components.h"

namespace cubicleos::core {
namespace {

using testing::ToyComponent;
using testing::addToy;

// ----------------------------------------------------------------------
// Image builders: the codescan case-12 bounded-switch dispatch idiom
// and small hand-laid images around it. The table always starts at
// offset 22 (cmp 4 + ja 2 + lea 7 + movsxd 4 + add 3 + jmp 2).
// ----------------------------------------------------------------------

constexpr std::size_t kTableBase = 22;

/**
 * cmp rax,bound; ja +jaDisp; lea rcx,[rip+9]; movsxd rdx,[rcx+rax*4];
 * add rcx,rdx; jmp rcx; then the table: one LE32 entry per element of
 * @p entries, each relative to the table base at offset 22.
 */
std::vector<uint8_t>
jumpTableIdiom(const std::vector<int32_t> &entries, uint8_t jaDisp)
{
    const auto bound = static_cast<uint8_t>(entries.size() - 1);
    std::vector<uint8_t> img = {
        0x48, 0x83, 0xF8, bound,             // cmp rax, bound
        0x77, jaDisp,                        // ja default
        0x48, 0x8D, 0x0D, 0x09, 0, 0, 0,     // lea rcx, [rip+9]
        0x48, 0x63, 0x14, 0x81,              // movsxd rdx, [rcx+rax*4]
        0x48, 0x01, 0xD1,                    // add rcx, rdx
        0xFF, 0xE1,                          // jmp rcx
    };
    for (const int32_t e : entries) {
        for (int b = 0; b < 4; ++b)
            img.push_back(static_cast<uint8_t>(
                (static_cast<uint32_t>(e) >> (8 * b)) & 0xFF));
    }
    return img;
}

const std::vector<uint8_t> kWrpkru = {0x0F, 0x01, 0xEF};

void
append(std::vector<uint8_t> &img, const std::vector<uint8_t> &tail)
{
    img.insert(img.end(), tail.begin(), tail.end());
}

/** Dispatch over two entries; entry 0 lands on wrpkru at offset 31. */
std::vector<uint8_t>
maliciousJumpTableImage()
{
    // ja default → offset 30 (disp 24 from the ja fall-through at 6).
    std::vector<uint8_t> img = jumpTableIdiom({9, 12}, 24);
    img.push_back(0xC3);   // 30: ja default target
    append(img, kWrpkru);  // 31: entry 0 target (22 + 9)
    img.push_back(0xC3);   // 34: entry 1 target (22 + 12)
    return img;
}

/** Same shape, both entries land on plain rets. */
std::vector<uint8_t>
cleanJumpTableImage()
{
    std::vector<uint8_t> img = jumpTableIdiom({8, 12}, 24);
    img.push_back(0xC3); // 30: entry 0 target and ja default
    img.push_back(0x90); // 31..33: sled
    img.push_back(0x90);
    img.push_back(0x90);
    img.push_back(0xC3); // 34: entry 1 target
    return img;
}

/** lea rax,[rip+3]; call rax; ret — the callee starts at offset 10. */
std::vector<uint8_t>
leaCallImage(const std::vector<uint8_t> &callee)
{
    std::vector<uint8_t> img = {
        0x48, 0x8D, 0x05, 0x03, 0, 0, 0, // lea rax, [rip+3] → 10
        0xFF, 0xD0,                      // call rax
        0xC3,                            // ret
    };
    append(img, callee); // offset 10
    return img;
}

SystemConfig
toyConfig()
{
    SystemConfig cfg;
    cfg.numPages = 2048;
    return cfg;
}

// ----------------------------------------------------------------------
// Pass 3 at load time
// ----------------------------------------------------------------------

TEST(VerifierPass3, JumpTableReachingForbiddenInsnRejectsAtLoad)
{
    System sys(toyConfig());
    addToy(sys, "switcher")
        .withImage(maliciousJumpTableImage())
        .withEntryPoints({0});
    try {
        sys.boot();
        FAIL() << "loader accepted a jump table dispatching to wrpkru";
    } catch (const VerifierError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("switcher"), std::string::npos) << what;
        EXPECT_NE(what.find("wrpkru"), std::string::npos) << what;
    }
}

TEST(VerifierPass3, CleanJumpTableResolvesAndLoads)
{
    System sys(toyConfig());
    addToy(sys, "switcher")
        .withImage(cleanJumpTableImage())
        .withEntryPoints({0});
    ASSERT_NO_THROW(sys.boot());

    const verifier::VerifierReport &report =
        sys.monitor().verifierReport(sys.cidOf("switcher"));
    ASSERT_TRUE(report.audit.ran);
    EXPECT_EQ(report.audit.unresolvedSites, 0u);
    ASSERT_GE(report.audit.resolvedSites, 1u);
    ASSERT_EQ(report.audit.indirectSites.size(), 1u);
    const verifier::IndirectSiteRecord &site = report.audit.indirectSites[0];
    EXPECT_TRUE(site.isJump);
    EXPECT_TRUE(site.resolved);
    EXPECT_STREQ(site.how, "jump-table");
    EXPECT_EQ(site.tableBase, kTableBase);
    EXPECT_EQ(site.targets, (std::vector<std::size_t>{30, 34}));
    // The 8 table bytes count as identified data, not undecoded gap.
    EXPECT_EQ(report.audit.tableBytes, 8u);
}

TEST(VerifierPass3, UnresolvedIndirectJumpWithForbiddenBytesRejects)
{
    // jmp rax at the entry point stays opaque; wrpkru behind it is
    // dead to pass 2, but pass 3 cannot prove the jump misses it.
    std::vector<uint8_t> img = {0xFF, 0xE0}; // jmp rax
    append(img, kWrpkru);
    img.push_back(0xC3);

    System sys(toyConfig());
    addToy(sys, "opaque").withImage(img).withEntryPoints({0});
    try {
        sys.boot();
        FAIL() << "loader trusted an unresolved indirect jump";
    } catch (const VerifierError &e) {
        EXPECT_NE(std::string(e.what()).find("indirect-reachable"),
                  std::string::npos)
            << e.what();
    }
}

TEST(VerifierPass3, UnresolvedIndirectJumpWithoutForbiddenBytesLoads)
{
    // The same opacity with nothing forbidden in the image is
    // tolerated — but counted and listed, never silently ignored.
    System sys(toyConfig());
    addToy(sys, "opaque")
        .withImage({0xFF, 0xE0, 0xC3})
        .withEntryPoints({0});
    ASSERT_NO_THROW(sys.boot());

    const verifier::VerifierReport &report =
        sys.monitor().verifierReport(sys.cidOf("opaque"));
    ASSERT_TRUE(report.audit.ran);
    EXPECT_EQ(report.audit.unresolvedSites, 1u);
    ASSERT_EQ(report.audit.indirectSites.size(), 1u);
    EXPECT_TRUE(report.audit.indirectSites[0].isJump);
    EXPECT_FALSE(report.audit.indirectSites[0].resolved);
    EXPECT_STREQ(report.audit.indirectSites[0].how, "");
}

TEST(VerifierPass3, LeaCallSingletonReachingForbiddenInsnRejects)
{
    std::vector<uint8_t> callee = kWrpkru;
    callee.push_back(0xC3);
    System sys(toyConfig());
    addToy(sys, "caller")
        .withImage(leaCallImage(callee))
        .withEntryPoints({0});
    EXPECT_THROW(sys.boot(), VerifierError);
}

TEST(VerifierPass3, LeaCallSingletonResolves)
{
    System sys(toyConfig());
    addToy(sys, "caller")
        .withImage(leaCallImage({0xC3}))
        .withEntryPoints({0});
    ASSERT_NO_THROW(sys.boot());

    const verifier::VerifierReport &report =
        sys.monitor().verifierReport(sys.cidOf("caller"));
    ASSERT_TRUE(report.audit.ran);
    EXPECT_EQ(report.audit.unresolvedSites, 0u);
    ASSERT_EQ(report.audit.indirectSites.size(), 1u);
    EXPECT_STREQ(report.audit.indirectSites[0].how, "lea-call");
    EXPECT_EQ(report.audit.indirectSites[0].targets,
              (std::vector<std::size_t>{10}));
}

TEST(VerifierPass3, EntryTableResolvesIndirectCalls)
{
    // call rax; ret; callee at 3; pad; table of one absolute image
    // offset at 8 — the builder's declared address-taken set.
    const std::vector<uint8_t> img = {
        0xFF, 0xD0,             // 0: call rax
        0xC3,                   // 2: ret
        0x90, 0xC3,             // 3: callee
        0x90, 0x90, 0x90,       // 5..7: pad to the table
        0x03, 0x00, 0x00, 0x00, // 8: table entry → offset 3
    };
    System sys(toyConfig());
    addToy(sys, "plugin")
        .withImage(img)
        .withEntryPoints({0})
        .withIndirectTables({{8, 1}});
    ASSERT_NO_THROW(sys.boot());

    const verifier::VerifierReport &report =
        sys.monitor().verifierReport(sys.cidOf("plugin"));
    ASSERT_TRUE(report.audit.ran);
    EXPECT_EQ(report.audit.unresolvedSites, 0u);
    ASSERT_EQ(report.audit.indirectSites.size(), 1u);
    EXPECT_STREQ(report.audit.indirectSites[0].how, "entry-table");
    EXPECT_EQ(report.audit.indirectSites[0].targets,
              (std::vector<std::size_t>{3}));
}

TEST(VerifierPass3, EntryTableDeclaringForbiddenTargetRejects)
{
    const std::vector<uint8_t> img = {
        0xFF, 0xD0,             // 0: call rax
        0xC3,                   // 2: ret
        0x0F, 0x01, 0xEF,       // 3: wrpkru — the declared target
        0xC3,                   // 6: ret
        0x90,                   // 7: pad
        0x03, 0x00, 0x00, 0x00, // 8: table entry → offset 3
    };
    System sys(toyConfig());
    addToy(sys, "plugin")
        .withImage(img)
        .withEntryPoints({0})
        .withIndirectTables({{8, 1}});
    EXPECT_THROW(sys.boot(), VerifierError);
}

TEST(VerifierPass3, UndeclaredIndirectCallStaysTrustedButCounted)
{
    // Without the table the call is CFI-trusted (fall-through kept,
    // like pass 2), so the image loads — but the residual opacity is
    // recorded, not hidden.
    const std::vector<uint8_t> img = {0xFF, 0xD0, 0xC3};
    System sys(toyConfig());
    addToy(sys, "plugin").withImage(img).withEntryPoints({0});
    ASSERT_NO_THROW(sys.boot());

    const verifier::VerifierReport &report =
        sys.monitor().verifierReport(sys.cidOf("plugin"));
    EXPECT_EQ(report.audit.unresolvedSites, 1u);
    ASSERT_EQ(report.audit.indirectSites.size(), 1u);
    EXPECT_FALSE(report.audit.indirectSites[0].isJump);
    EXPECT_FALSE(report.audit.indirectSites[0].resolved);
}

TEST(VerifierPass3, MalformedEntryTableRejectedBeforeVerification)
{
    System sys(toyConfig());
    addToy(sys, "plugin")
        .withImage({0xC3, 0x90, 0x90, 0x90, 0x90, 0x90, 0x90, 0x90})
        .withEntryPoints({0})
        .withIndirectTables({{100, 5}});
    try {
        sys.boot();
        FAIL() << "loader accepted an out-of-image entry table";
    } catch (const VerifierError &e) {
        EXPECT_NE(std::string(e.what()).find("indirect-target table"),
                  std::string::npos)
            << e.what();
    }
}

// ----------------------------------------------------------------------
// Jump-table resolution soundness: the statically resolved target set
// must equal what a brute-force interpreter of the guarded dispatch
// computes for every in-bounds index.
// ----------------------------------------------------------------------

std::vector<std::size_t>
interpretTable(std::span<const uint8_t> image, std::size_t tableBase,
               std::size_t count)
{
    std::vector<std::size_t> targets;
    for (std::size_t i = 0; i < count; ++i) {
        const std::size_t at = tableBase + 4 * i;
        uint32_t v = 0;
        for (int b = 3; b >= 0; --b)
            v = (v << 8) | image[at + static_cast<std::size_t>(b)];
        targets.push_back(tableBase +
                          static_cast<std::size_t>(
                              static_cast<int32_t>(v)));
    }
    return targets;
}

TEST(VerifierPass3, JumpTableResolutionMatchesBruteForce)
{
    // Deterministic LCG; no entropy wanted in a soundness sweep.
    uint32_t state = 0x2bad'cafe;
    auto next = [&state](uint32_t below) {
        state = state * 1664525u + 1013904223u;
        return (state >> 16) % below;
    };

    for (std::size_t count = 1; count <= 8; ++count) {
        for (int trial = 0; trial < 32; ++trial) {
            const std::size_t sled = 4 * count + 8;
            std::vector<int32_t> entries;
            for (std::size_t i = 0; i < count; ++i)
                entries.push_back(static_cast<int32_t>(
                    4 * count + next(static_cast<uint32_t>(sled))));
            std::vector<uint8_t> img = jumpTableIdiom(
                entries, static_cast<uint8_t>(16 + 4 * count + sled));
            for (std::size_t i = 0; i < sled; ++i)
                img.push_back(0x90);
            img.push_back(0xC3);

            const verifier::JumpTableMatch m =
                verifier::matchJumpTable(img, 0);
            ASSERT_TRUE(m.matched) << "count " << count;
            EXPECT_EQ(m.tableBase, kTableBase);
            EXPECT_EQ(m.count, count);
            // Resolved ⊇ interpreted — and in fact identical, in
            // table order with duplicates kept.
            EXPECT_EQ(m.targets,
                      interpretTable(img, kTableBase, count));
        }
    }
}

TEST(VerifierPass3, MutatedDispatchIdiomDoesNotMatch)
{
    const std::vector<uint8_t> base = cleanJumpTableImage();

    {
        // movsxd indexes a different base register than the lea loaded.
        std::vector<uint8_t> img = base;
        img[16] = 0x82; // sib base rdx, not rcx
        EXPECT_FALSE(verifier::matchJumpTable(img, 0).matched);
    }
    {
        // The dispatch jumps through a register the add never wrote.
        std::vector<uint8_t> img = base;
        img[21] = 0xE2; // jmp rdx
        EXPECT_FALSE(verifier::matchJumpTable(img, 0).matched);
    }
    {
        // Table truncated by the image end.
        std::vector<uint8_t> img(base.begin(), base.begin() + 25);
        EXPECT_FALSE(verifier::matchJumpTable(img, 0).matched);
    }
}

// ----------------------------------------------------------------------
// Least-privilege dataflow audit at boot (AuditLevel)
// ----------------------------------------------------------------------

/**
 * producer shares a buffer with consumer and bystander; consumer
 * always writes through its grant during init, bystander's behaviour
 * is the test parameter.
 */
void
wireThreeWay(System &sys, char **buf, bool bystanderReads)
{
    auto &producer = testing::addToy(sys, "producer");
    auto &consumer = testing::addToy(sys, "consumer");
    auto &bystander = testing::addToy(sys, "bystander");
    producer.onInit([buf](ToyComponent &self) {
        System &s = *self.sys();
        *buf = static_cast<char *>(s.heapAlloc(256));
        const Wid wid = s.windowInit();
        s.windowAdd(wid, *buf, 256);
        s.windowOpen(wid, s.cidOf("consumer"));
        s.windowOpen(wid, s.cidOf("bystander"));
    });
    consumer.onInit([buf](ToyComponent &self) {
        self.sys()->touch(*buf, 64, hw::Access::kWrite);
    });
    if (bystanderReads) {
        bystander.onInit([buf](ToyComponent &self) {
            self.sys()->touch(*buf, 64, hw::Access::kRead);
        });
    }
}

TEST(AuditLevel, StrictRefusesOverBroadAcl)
{
    SystemConfig cfg = toyConfig();
    cfg.strictVerify = true;
    cfg.auditLevel = AuditLevel::kStrict;
    System sys(cfg);
    char *buf = nullptr;
    wireThreeWay(sys, &buf, /*bystanderReads=*/false);
    try {
        sys.boot();
        FAIL() << "strict audit accepted an unexercised grant";
    } catch (const LoaderError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("strict verify"), std::string::npos);
        EXPECT_NE(what.find("acl-over-broad"), std::string::npos);
        EXPECT_NE(what.find("bystander"), std::string::npos);
    }
}

TEST(AuditLevel, StrictBootsWhenEveryGrantIsExercised)
{
    SystemConfig cfg = toyConfig();
    cfg.strictVerify = true;
    cfg.auditLevel = AuditLevel::kStrict;
    System sys(cfg);
    char *buf = nullptr;
    // bystander only reads: that leaves the info-severity
    // write-grant-read-only finding, which strict mode tolerates.
    wireThreeWay(sys, &buf, /*bystanderReads=*/true);
    EXPECT_NO_THROW(sys.boot());
    EXPECT_EQ(sys.stats().auditRuns(), 1u);
}

TEST(AuditLevel, OffPreservesLintOnlyStrictBoot)
{
    SystemConfig cfg = toyConfig();
    cfg.strictVerify = true; // auditLevel stays kOff (the default)
    System sys(cfg);
    char *buf = nullptr;
    wireThreeWay(sys, &buf, /*bystanderReads=*/false);
    EXPECT_NO_THROW(sys.boot());
    EXPECT_EQ(sys.stats().auditRuns(), 0u);
}

TEST(AuditLevel, ReportCountsWithoutRefusing)
{
    SystemConfig cfg = toyConfig();
    cfg.strictVerify = true;
    cfg.auditLevel = AuditLevel::kReport;
    System sys(cfg);
    char *buf = nullptr;
    wireThreeWay(sys, &buf, /*bystanderReads=*/false);
    EXPECT_NO_THROW(sys.boot());
    EXPECT_EQ(sys.stats().auditRuns(), 1u);
    EXPECT_GE(sys.stats().auditFindings(), 1u);
}

TEST(AuditLevel, AuditIsolationConcatenatesBothRuleSets)
{
    System sys(toyConfig());
    char *buf = nullptr;
    wireThreeWay(sys, &buf, /*bystanderReads=*/false);
    sys.boot();

    const std::vector<verifier::LintFinding> findings =
        sys.auditIsolation();
    bool sawOverBroad = false;
    for (const verifier::LintFinding &f : findings)
        sawOverBroad |= f.rule == verifier::LintRule::kAclOverBroad;
    EXPECT_TRUE(sawOverBroad);
    EXPECT_FALSE(verifier::lintClean(findings));
    EXPECT_EQ(sys.stats().auditRuns(), 1u);
    EXPECT_EQ(sys.stats().lintRuns(), 1u);
}

// ----------------------------------------------------------------------
// JSON report: determinism and the committed clean baseline
// ----------------------------------------------------------------------

/** A fixed toy deployment exercising every JSON section. */
std::unique_ptr<System>
fixtureSystem()
{
    auto sys = std::make_unique<System>(toyConfig());
    static char *buf; // rebound in init on every boot
    auto &gateway = testing::addToy(*sys, "gateway");
    auto &engine = testing::addToy(*sys, "engine");
    gateway.withImage(cleanJumpTableImage()).withEntryPoints({0});
    engine.withImage(leaCallImage({0xC3})).withEntryPoints({0});
    gateway.onInit([](ToyComponent &self) {
        System &s = *self.sys();
        buf = static_cast<char *>(s.heapAlloc(256));
        const Wid wid = s.windowInit();
        s.windowAdd(wid, buf, 256);
        s.windowOpen(wid, s.cidOf("engine"));
    });
    engine.onInit([](ToyComponent &self) {
        self.sys()->touch(buf, 64, hw::Access::kRead);
    });
    sys->boot();
    return sys;
}

TEST(AuditJson, DeterministicAcrossCalls)
{
    auto sys = fixtureSystem();
    const std::string first = sys->auditJson();
    const std::string second = sys->auditJson();
    EXPECT_EQ(first, second);
    EXPECT_NE(first.find("\"schema\":\"cubicleos-audit-v1\""),
              std::string::npos);
}

TEST(AuditJson, MatchesCommittedBaseline)
{
    const char *path =
        CUBICLEOS_SOURCE_DIR "/tests/fixtures/audit_baseline.json";
    auto sys = fixtureSystem();
    const std::string actual = sys->auditJson();

    if (std::getenv("CUBICLEOS_REGEN_FIXTURES") != nullptr) {
        std::ofstream out(path, std::ios::trunc);
        ASSERT_TRUE(out.good()) << path;
        out << actual;
        return;
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good())
        << path << " missing — regenerate with "
        << "CUBICLEOS_REGEN_FIXTURES=1";
    std::stringstream expected;
    expected << in.rdbuf();
    EXPECT_EQ(actual, expected.str())
        << "audit JSON drifted from the committed baseline; if the "
        << "change is intended, regenerate with "
        << "CUBICLEOS_REGEN_FIXTURES=1";
}

// ----------------------------------------------------------------------
// In-tree deployments: the full-system gate. After real traffic the
// audit must come back clean, and the pass-3 resolution rate must
// leave fewer than 20% of indirect sites opaque.
// ----------------------------------------------------------------------

void
expectDeploymentClean(System &sys)
{
    const std::vector<verifier::LintFinding> findings =
        sys.auditIsolation();
    std::string report;
    for (const verifier::LintFinding &f : findings) {
        if (f.severity >= verifier::LintSeverity::kWarning)
            report += std::string(verifier::lintRuleName(f.rule)) +
                      ": " + f.message + "\n";
    }
    EXPECT_TRUE(verifier::lintClean(findings)) << report;

    const std::size_t count = sys.monitor().cubicleCount();
    ASSERT_GT(count, 0u);
    for (Cid cid = 0; cid < count; ++cid) {
        const verifier::VerifierReport &r =
            sys.monitor().verifierReport(cid);
        ASSERT_TRUE(r.audit.ran) << cid;
        EXPECT_LT(r.audit.unresolvedRate(), 0.2)
            << "cubicle " << cid << " ('"
            << sys.monitor().cubicle(cid).name << "'): "
            << r.audit.unresolvedSites << " of "
            << r.audit.resolvedSites + r.audit.unresolvedSites
            << " indirect sites unresolved";
    }
    // The JSON render of a real deployment stays deterministic.
    EXPECT_EQ(sys.auditJson(), sys.auditJson());
}

TEST(DeploymentAudit, HttpdEightCubiclesAuditsClean)
{
    httpd::HttpHarness harness(IsolationMode::kFull, 32768, 0);
    harness.createFile("/index.html", 1024);
    const auto fetched = harness.fetch("/index.html");
    ASSERT_EQ(fetched.status, 200);
    expectDeploymentClean(harness.sys());
}

TEST(DeploymentAudit, MultiTenantSixtyFourCubiclesAuditsClean)
{
    // 12 infrastructure cubicles + 26 tenant groups of 2 = 64 logical
    // cubicles multiplexed onto 16 physical MPK tags. The deployment
    // must boot, serve real traffic for resident AND parked tenants,
    // and come back audit-clean.
    auto harness = baselines::makeMultiTenantHttpd(
        26, IsolationMode::kFull, 65536);
    ASSERT_GE(harness->sys().cubicleCount(), 64u);
    harness->createFile(0, "/index.html", 1024);
    harness->createFile(25, "/index.html", 1024);
    ASSERT_EQ(harness->fetch(0, "/index.html").status, 200);
    ASSERT_EQ(harness->fetch(25, "/index.html").status, 200);
    expectDeploymentClean(harness->sys());
}

TEST(DeploymentAudit, MinisqlSevenCubiclesAuditsClean)
{
    auto dep = baselines::SqliteDeployment::makeCubicles(
        7, IsolationMode::kFull);
    ASSERT_NE(dep->system(), nullptr);
    minisql::Speedtest bench(&dep->database(), 50);
    dep->enter([&] {
        for (int id : {100, 110, 120})
            ASSERT_NO_THROW(bench.run(id)) << id;
    });
    expectDeploymentClean(*dep->system());
}

} // namespace
} // namespace cubicleos::core
