/**
 * @file
 * System facade tests: boot, symbol resolution, cross-cubicle calls,
 * call accounting, per-thread contexts and isolation-mode costs.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "core/system.h"
#include "tests/core/toy_components.h"

namespace cubicleos::core {
namespace {

using testing::ToyComponent;
using testing::addToy;

SystemConfig
smallCfg(IsolationMode mode = IsolationMode::kFull)
{
    SystemConfig cfg;
    cfg.numPages = 1024;
    cfg.mode = mode;
    return cfg;
}

TEST(SystemTest, BootAssignsDenseCids)
{
    System sys(smallCfg());
    addToy(sys, "a");
    addToy(sys, "b");
    addToy(sys, "c");
    sys.boot();
    EXPECT_EQ(sys.cidOf("a"), 0);
    EXPECT_EQ(sys.cidOf("b"), 1);
    EXPECT_EQ(sys.cidOf("c"), 2);
    EXPECT_EQ(sys.cubicleCount(), 3u);
}

TEST(SystemTest, UnknownComponentThrows)
{
    System sys(smallCfg());
    addToy(sys, "a");
    sys.boot();
    EXPECT_THROW(sys.cidOf("nope"), LinkError);
}

TEST(SystemTest, CannotAddAfterBootOrDoubleBoot)
{
    System sys(smallCfg());
    addToy(sys, "a");
    sys.boot();
    EXPECT_THROW(addToy(sys, "late"), LoaderError);
    EXPECT_THROW(sys.boot(), LoaderError);
}

TEST(SystemTest, InitRunsInsideOwnCubicle)
{
    System sys(smallCfg());
    Cid observed = kNoCubicle;
    addToy(sys, "a").onInit([&](ToyComponent &me) {
        observed = me.sys()->currentCubicle();
        EXPECT_EQ(observed, me.self());
    });
    sys.boot();
    EXPECT_EQ(observed, 0);
}

TEST(SystemTest, ResolveAndCall)
{
    System sys(smallCfg());
    addToy(sys, "math").onExports([](Exporter &exp, ToyComponent &) {
        exp.fn<int(int, int)>("add",
                              [](int a, int b) { return a + b; });
    });
    addToy(sys, "app");
    sys.boot();

    auto add = sys.resolve<int(int, int)>("math", "add");
    int result = 0;
    sys.runAs(sys.cidOf("app"), [&] { result = add(2, 40); });
    EXPECT_EQ(result, 42);
}

TEST(SystemTest, ResolveUnknownSymbolThrows)
{
    System sys(smallCfg());
    addToy(sys, "math").onExports([](Exporter &exp, ToyComponent &) {
        exp.fn<int()>("f", [] { return 1; });
    });
    sys.boot();
    EXPECT_THROW((sys.resolve<int()>("math", "g")), LinkError);
}

TEST(SystemTest, ResolveSignatureMismatchThrows)
{
    // The builder parses the function definition to generate a matching
    // trampoline; calling with the wrong ABI is refused at link time.
    System sys(smallCfg());
    addToy(sys, "math").onExports([](Exporter &exp, ToyComponent &) {
        exp.fn<int(int, int)>("add",
                              [](int a, int b) { return a + b; });
    });
    sys.boot();
    EXPECT_THROW((sys.resolve<double(double)>("math", "add")), LinkError);
}

TEST(SystemTest, ResolveBeforeBootThrows)
{
    System sys(smallCfg());
    addToy(sys, "math");
    EXPECT_THROW((sys.resolve<int()>("math", "f")), LinkError);
}

TEST(SystemTest, CrossCallSwitchesCurrentCubicle)
{
    System sys(smallCfg());
    Cid seen_inside = kNoCubicle;
    addToy(sys, "srv").onExports(
        [&seen_inside](Exporter &exp, ToyComponent &me) {
            exp.fn<void()>("probe", [&seen_inside, &me] {
                seen_inside = me.sys()->currentCubicle();
            });
        });
    addToy(sys, "app");
    sys.boot();
    auto probe = sys.resolve<void()>("srv", "probe");
    sys.runAs(sys.cidOf("app"), [&] {
        probe();
        // After return the caller's cubicle is restored.
        EXPECT_EQ(sys.currentCubicle(), sys.cidOf("app"));
    });
    EXPECT_EQ(seen_inside, sys.cidOf("srv"));
}

TEST(SystemTest, CrossCallCountsEdges)
{
    System sys(smallCfg());
    addToy(sys, "srv").onExports([](Exporter &exp, ToyComponent &) {
        exp.fn<void()>("noop", [] {});
    });
    addToy(sys, "app");
    sys.boot();
    auto noop = sys.resolve<void()>("srv", "noop");
    const Cid app = sys.cidOf("app");
    const Cid srv = sys.cidOf("srv");
    sys.runAs(app, [&] {
        for (int i = 0; i < 17; ++i)
            noop();
    });
    EXPECT_EQ(sys.stats().callsOnEdge(app, srv), 17u);
    EXPECT_EQ(sys.stats().callsOnEdge(srv, app), 0u);
}

TEST(SystemTest, NestedCrossCallsRestoreInOrder)
{
    System sys(smallCfg());
    addToy(sys, "inner").onExports([](Exporter &exp, ToyComponent &me) {
        exp.fn<Cid()>("who",
                      [&me] { return me.sys()->currentCubicle(); });
    });
    addToy(sys, "outer");
    addToy(sys, "app");
    sys.boot();
    auto who = sys.resolve<Cid()>("inner", "who");

    // Register a late-bound chain: app -> outer -> inner.
    ToyComponent &outer =
        static_cast<ToyComponent &>(sys.componentAt(sys.cidOf("outer")));
    (void)outer;
    sys.runAs(sys.cidOf("app"), [&] {
        sys.runAs(sys.cidOf("outer"), [&] {
            EXPECT_EQ(who(), sys.cidOf("inner"));
            EXPECT_EQ(sys.currentCubicle(), sys.cidOf("outer"));
        });
        EXPECT_EQ(sys.currentCubicle(), sys.cidOf("app"));
    });
}

TEST(SystemTest, ExceptionsUnwindAcrossCubicles)
{
    System sys(smallCfg());
    addToy(sys, "srv").onExports([](Exporter &exp, ToyComponent &) {
        exp.fn<void()>("boom", [] { throw std::runtime_error("inner"); });
    });
    addToy(sys, "app");
    sys.boot();
    auto boom = sys.resolve<void()>("srv", "boom");
    sys.runAs(sys.cidOf("app"), [&] {
        EXPECT_THROW(boom(), std::runtime_error);
        // The trampoline guard restored the caller context.
        EXPECT_EQ(sys.currentCubicle(), sys.cidOf("app"));
    });
}

TEST(SystemTest, SharedCubicleCallsBypassTrampolines)
{
    System sys(smallCfg());
    addToy(sys, "libc", CubicleKind::kShared)
        .onExports([](Exporter &exp, ToyComponent &me) {
            exp.fn<Cid()>("whoami", [&me] {
                // Shared cubicles execute with the caller's privileges:
                // the current cubicle is still the caller.
                return me.sys()->currentCubicle();
            });
        });
    addToy(sys, "app");
    sys.boot();
    auto whoami = sys.resolve<Cid()>("libc", "whoami");
    const Cid app = sys.cidOf("app");
    Cid seen = kNoCubicle;
    sys.runAs(app, [&] { seen = whoami(); });
    EXPECT_EQ(seen, app);
    // No cross-cubicle edge was recorded.
    EXPECT_EQ(sys.stats().callsOnEdge(app, sys.cidOf("libc")), 0u);
}

TEST(SystemTest, WrpkruChargedPerCrossCallInMpkModes)
{
    System sys(smallCfg(IsolationMode::kFull));
    addToy(sys, "srv").onExports([](Exporter &exp, ToyComponent &) {
        exp.fn<void()>("noop", [] {});
    });
    addToy(sys, "app");
    sys.boot();
    auto noop = sys.resolve<void()>("srv", "noop");
    sys.stats().reset();
    const uint64_t cycles_before = sys.clock().read();
    sys.runAs(sys.cidOf("app"), [&] { noop(); });
    // runAs enter/exit + call/return = 4 switch points, 2 wrpkru each.
    EXPECT_EQ(sys.stats().wrpkrus(), 8u);
    EXPECT_GE(sys.clock().read() - cycles_before,
              8 * hw::cost::kWrpkru);
}

TEST(SystemTest, UnikraftModeChargesNothing)
{
    System sys(smallCfg(IsolationMode::kUnikraft));
    addToy(sys, "srv").onExports([](Exporter &exp, ToyComponent &) {
        exp.fn<void()>("noop", [] {});
    });
    addToy(sys, "app");
    sys.boot();
    auto noop = sys.resolve<void()>("srv", "noop");
    const uint64_t before = sys.clock().read();
    sys.runAs(sys.cidOf("app"), [&] { noop(); });
    EXPECT_EQ(sys.clock().read(), before);
    EXPECT_EQ(sys.stats().wrpkrus(), 0u);
}

TEST(SystemTest, PerThreadContextsAreIndependent)
{
    System sys(smallCfg());
    addToy(sys, "a");
    addToy(sys, "b");
    sys.boot();
    const Cid a = sys.cidOf("a");
    const Cid b = sys.cidOf("b");

    std::atomic<bool> ok_a{false}, ok_b{false};
    std::thread ta([&] {
        sys.runAs(a, [&] {
            for (int i = 0; i < 1000; ++i) {
                if (sys.currentCubicle() != a)
                    return;
            }
            ok_a = true;
        });
    });
    std::thread tb([&] {
        sys.runAs(b, [&] {
            for (int i = 0; i < 1000; ++i) {
                if (sys.currentCubicle() != b)
                    return;
            }
            ok_b = true;
        });
    });
    ta.join();
    tb.join();
    EXPECT_TRUE(ok_a);
    EXPECT_TRUE(ok_b);
}

TEST(SystemTest, TwoSystemsCoexistOnOneThread)
{
    System s1(smallCfg());
    System s2(smallCfg());
    addToy(s1, "x");
    addToy(s2, "y");
    s1.boot();
    s2.boot();
    s1.runAs(s1.cidOf("x"), [&] {
        EXPECT_EQ(s1.currentCubicle(), s1.cidOf("x"));
        s2.runAs(s2.cidOf("y"), [&] {
            EXPECT_EQ(s2.currentCubicle(), s2.cidOf("y"));
            EXPECT_EQ(s1.currentCubicle(), s1.cidOf("x"));
        });
    });
}

TEST(SystemTest, MemcpyCheckedMovesDataThroughWindows)
{
    System sys(smallCfg());
    addToy(sys, "src_comp");
    addToy(sys, "dst_comp").onExports(
        [](Exporter &exp, ToyComponent &me) {
            exp.fn<void(char *, const char *, std::size_t)>(
                "copy_in",
                [&me](char *dst, const char *src, std::size_t n) {
                    me.sys()->memcpyChecked(dst, src, n);
                });
        });
    sys.boot();
    const Cid src_c = sys.cidOf("src_comp");
    const Cid dst_c = sys.cidOf("dst_comp");

    char *src_buf = nullptr;
    sys.runAs(src_c, [&] {
        src_buf = static_cast<char *>(sys.heapAlloc(64));
        std::memcpy(src_buf, "hello-cubicle", 14);
    });
    char *dst_buf = nullptr;
    sys.runAs(dst_c, [&] {
        dst_buf = static_cast<char *>(sys.heapAlloc(64));
    });

    auto copy_in = sys.resolve<void(char *, const char *, std::size_t)>(
        "dst_comp", "copy_in");
    sys.runAs(src_c, [&] {
        Wid wid = sys.windowInit();
        sys.windowAdd(wid, src_buf, 64);
        sys.windowOpen(wid, dst_c);
        copy_in(dst_buf, src_buf, 14);
        sys.windowDestroy(wid);
    });
    EXPECT_STREQ(dst_buf, "hello-cubicle");
}

TEST(SystemTest, ModeNamesAreStable)
{
    EXPECT_STREQ(isolationModeName(IsolationMode::kUnikraft), "unikraft");
    EXPECT_STREQ(isolationModeName(IsolationMode::kFull), "cubicleos");
}

TEST(SystemTest, StatsResetClearsEverything)
{
    System sys(smallCfg());
    addToy(sys, "srv").onExports([](Exporter &exp, ToyComponent &) {
        exp.fn<void()>("noop", [] {});
    });
    addToy(sys, "app");
    sys.boot();
    auto noop = sys.resolve<void()>("srv", "noop");
    sys.runAs(sys.cidOf("app"), [&] { noop(); });
    EXPECT_GT(sys.stats().totalCalls(), 0u);
    sys.stats().reset();
    EXPECT_EQ(sys.stats().totalCalls(), 0u);
    EXPECT_EQ(sys.stats().wrpkrus(), 0u);
    EXPECT_TRUE(sys.stats().edges().empty());
}

/**
 * Mode sweep: cross-call cost ordering must satisfy
 * unikraft <= no-mpk <= no-acl == full (for call overhead alone).
 */
class ModeSweep : public ::testing::TestWithParam<IsolationMode> {};

TEST_P(ModeSweep, CallsWorkInEveryMode)
{
    System sys(smallCfg(GetParam()));
    addToy(sys, "srv").onExports([](Exporter &exp, ToyComponent &) {
        exp.fn<int(int)>("inc", [](int x) { return x + 1; });
    });
    addToy(sys, "app");
    sys.boot();
    auto inc = sys.resolve<int(int)>("srv", "inc");
    int v = 0;
    sys.runAs(sys.cidOf("app"), [&] {
        for (int i = 0; i < 100; ++i)
            v = inc(v);
    });
    EXPECT_EQ(v, 100);
}

INSTANTIATE_TEST_SUITE_P(AllModes, ModeSweep,
                         ::testing::Values(IsolationMode::kUnikraft,
                                           IsolationMode::kNoMpk,
                                           IsolationMode::kNoAcl,
                                           IsolationMode::kFull));

TEST(RangeRetag, OneFaultRetagsWholeWindowCoverage)
{
    SystemConfig cfg;
    cfg.numPages = 1024;
    System sys(cfg);
    addToy(sys, "owner");
    addToy(sys, "acc");
    sys.boot();
    const Cid owner = sys.cidOf("owner");
    const Cid acc = sys.cidOf("acc");

    constexpr std::size_t kPages = 8;
    char *buf = nullptr;
    sys.runAs(owner, [&] {
        buf = reinterpret_cast<char *>(
            sys.monitor()
                .allocPagesFor(owner, kPages, mem::PageType::kHeap)
                .ptr);
        const Wid wid = sys.windowInit();
        sys.windowAdd(wid, buf, kPages * hw::kPageSize);
        sys.windowOpen(wid, acc);
    });

    // One byte in the middle of the window: the trap's ACL decision
    // covers the whole window, so the grant does too — one trap, one
    // retag operation, all eight pages.
    const uint64_t traps0 = sys.stats().traps();
    const uint64_t retags0 = sys.stats().retags();
    const uint64_t pages0 = sys.stats().retagPages();
    sys.runAs(acc, [&] {
        sys.touch(buf + 3 * hw::kPageSize, 1, hw::Access::kRead);
    });
    EXPECT_EQ(sys.stats().traps(), traps0 + 1);
    EXPECT_EQ(sys.stats().retags(), retags0 + 1);
    EXPECT_EQ(sys.stats().retagPages(), pages0 + kPages);

    // Every other page of the window was granted by that one trap.
    sys.runAs(acc, [&] {
        sys.touch(buf, kPages * hw::kPageSize, hw::Access::kRead);
    });
    EXPECT_EQ(sys.stats().traps(), traps0 + 1);
}

TEST(RangeRetag, OwnerReclaimStopsAtDifferentlyTaggedPages)
{
    SystemConfig cfg;
    cfg.numPages = 1024;
    System sys(cfg);
    addToy(sys, "owner");
    addToy(sys, "a0");
    addToy(sys, "a1");
    sys.boot();
    const Cid owner = sys.cidOf("owner");
    const Cid a0 = sys.cidOf("a0");
    const Cid a1 = sys.cidOf("a1");

    // Two 2-page windows back to back, granted to different peers, so
    // the owner's reclaim run hits a tag boundary in the middle.
    char *buf = nullptr;
    sys.runAs(owner, [&] {
        buf = reinterpret_cast<char *>(
            sys.monitor()
                .allocPagesFor(owner, 4, mem::PageType::kHeap)
                .ptr);
        const Wid w0 = sys.windowInit();
        sys.windowAdd(w0, buf, 2 * hw::kPageSize);
        sys.windowOpen(w0, a0);
        const Wid w1 = sys.windowInit();
        sys.windowAdd(w1, buf + 2 * hw::kPageSize, 2 * hw::kPageSize);
        sys.windowOpen(w1, a1);
    });
    sys.runAs(a0, [&] { sys.touch(buf, 1, hw::Access::kRead); });
    sys.runAs(a1, [&] {
        sys.touch(buf + 2 * hw::kPageSize, 1, hw::Access::kRead);
    });

    // Owner reclaims page 0: the run extends over the pages still
    // carrying a0's tag (pages 0-1) and stops at a1's tag boundary.
    const uint64_t traps0 = sys.stats().traps();
    const uint64_t pages0 = sys.stats().retagPages();
    sys.runAs(owner, [&] { sys.touch(buf, 1, hw::Access::kWrite); });
    EXPECT_EQ(sys.stats().traps(), traps0 + 1);
    EXPECT_EQ(sys.stats().retagPages(), pages0 + 2);

    // Pages 2-3 still belong to a1's grant: no fault for a1.
    const uint64_t traps1 = sys.stats().traps();
    sys.runAs(a1, [&] {
        sys.touch(buf + 2 * hw::kPageSize, 2 * hw::kPageSize,
                  hw::Access::kRead);
    });
    EXPECT_EQ(sys.stats().traps(), traps1);
}

TEST(Prestage, EagerlyRetagsStagedRangeAndSkipsTaggedPages)
{
    SystemConfig cfg;
    cfg.numPages = 1024;
    System sys(cfg);
    addToy(sys, "owner");
    addToy(sys, "peer");
    addToy(sys, "stranger");
    sys.boot();
    const Cid owner = sys.cidOf("owner");
    const Cid peer = sys.cidOf("peer");
    const Cid stranger = sys.cidOf("stranger");

    constexpr std::size_t kPages = 4;
    char *buf = nullptr;
    Wid wid = kInvalidWindow;
    sys.runAs(owner, [&] {
        buf = reinterpret_cast<char *>(
            sys.monitor()
                .allocPagesFor(owner, kPages, mem::PageType::kHeap)
                .ptr);
        wid = sys.windowInit();
        sys.windowAdd(wid, buf, kPages * hw::kPageSize);
        sys.windowOpen(wid, peer);

        // The hint never widens rights: prestaging a cubicle outside
        // the ACL is refused, not granted.
        EXPECT_THROW(
            sys.windowPrestage(wid, stranger, hw::Access::kRead),
            WindowError);

        const uint64_t pre0 = sys.stats().prestages();
        EXPECT_EQ(sys.windowPrestage(wid, peer, hw::Access::kRead),
                  kPages);
        EXPECT_EQ(sys.stats().prestages(), pre0 + 1);
        // Idempotent: every page already carries the peer's tag.
        EXPECT_EQ(sys.windowPrestage(wid, peer, hw::Access::kRead),
                  0u);
        EXPECT_EQ(sys.stats().prestages(), pre0 + 1);
    });

    // The peer's first touch was prestaged away: no trap at all.
    const uint64_t traps0 = sys.stats().traps();
    sys.runAs(peer, [&] {
        sys.touch(buf, kPages * hw::kPageSize, hw::Access::kRead);
    });
    EXPECT_EQ(sys.stats().traps(), traps0);
}

TEST(Prestage, HintSurvivesEvictionAndReplaysOnFaultIn)
{
    // A Prestage declaration is standing state, not a one-shot retag:
    // evicting the peer parks the prestaged pages, and the peer's
    // fault-back-in must replay the sweep (DESIGN.md §14) so its next
    // access is still trap-free instead of decaying to first-touch
    // faults.
    SystemConfig cfg;
    cfg.numPages = 1024;
    cfg.virtualizeTags = true;
    cfg.physTagBudget = 6; // monitor + shared + parked + 3-tag pool
    cfg.dynamicTags = 3;
    System sys(cfg);
    addToy(sys, "owner");
    addToy(sys, "peer").onExports([](Exporter &exp, ToyComponent &toy) {
        exp.fn<int64_t(const char *, int64_t)>(
            "sum", [&toy](const char *p, int64_t n) {
                toy.sys()->touch(p, static_cast<std::size_t>(n),
                                 hw::Access::kRead);
                int64_t acc = 0;
                for (int64_t i = 0; i < n; ++i)
                    acc += static_cast<unsigned char>(p[i]);
                return acc;
            });
    });
    for (int i = 0; i < 3; ++i) {
        addToy(sys, "f" + std::to_string(i))
            .onExports([](Exporter &exp, ToyComponent &) {
                exp.fn<int(int)>("ping", [](int x) { return x + 1; });
            });
    }
    sys.boot();
    const Cid owner = sys.cidOf("owner");
    const Cid peer = sys.cidOf("peer");
    auto sum = sys.resolve<int64_t(const char *, int64_t)>("peer", "sum");
    std::vector<CrossFn<int(int)>> fill;
    for (int i = 0; i < 3; ++i) {
        fill.push_back(
            sys.resolve<int(int)>("f" + std::to_string(i), "ping"));
    }

    constexpr std::size_t kPages = 4;
    char *buf = nullptr;
    sys.runAs(owner, [&] {
        buf = reinterpret_cast<char *>(
            sys.monitor()
                .allocPagesFor(owner, kPages, mem::PageType::kHeap)
                .ptr);
        sys.touch(buf, kPages * hw::kPageSize, hw::Access::kWrite);
        std::memset(buf, 1, kPages * hw::kPageSize);
        const Wid wid = sys.windowInit();
        sys.windowAdd(wid, buf, kPages * hw::kPageSize);
        sys.windowOpen(wid, peer);
        sum(buf, 1); // bind the peer so the prestage sweeps for real
        // The range fault above already granted the staged range, so
        // the eager sweep may find nothing left to retag — what this
        // test needs is the *standing hint* the call records.
        sys.windowPrestage(wid, peer, hw::Access::kRead);
    });

    // Cycle every filler through the 3-tag dynamic pool: the peer is
    // evicted and its prestaged pages are swept to the parked tag.
    sys.runAs(owner, [&] {
        for (auto &f : fill)
            f(0);
    });
    const int parked = sys.monitor().parkedKey();
    ASSERT_EQ(sys.monitor().cubicle(peer).pkey, parked);
    const std::size_t page = sys.monitor().space().pageIndexOf(buf);
    ASSERT_EQ(sys.monitor().space().entryAt(page).pkey,
              static_cast<uint8_t>(parked));

    // Fault back in via the cross-call: noteSwitch re-binds the peer
    // and the fault-in replays the standing hint, so the peer's read
    // of the whole staged range costs zero traps.
    const uint64_t traps0 = sys.stats().traps();
    const uint64_t faultins0 = sys.stats().faultIns();
    int64_t got = 0;
    sys.runAs(owner, [&] {
        got = sum(buf, static_cast<int64_t>(kPages * hw::kPageSize));
    });
    EXPECT_EQ(got, static_cast<int64_t>(kPages * hw::kPageSize));
    EXPECT_EQ(sys.stats().traps(), traps0);
    EXPECT_GT(sys.stats().faultIns(), faultins0);
}

TEST(CallRingTest, FlushRunsBatchUnderOneCrossing)
{
    SystemConfig cfg;
    cfg.numPages = 1024;
    System sys(cfg);
    addToy(sys, "srv").onExports([](Exporter &exp, ToyComponent &) {
        exp.fn<int(int)>("inc", [](int x) { return x + 1; });
    });
    addToy(sys, "app");
    sys.boot();
    auto inc = sys.resolve<int(int)>("srv", "inc");
    const Cid app = sys.cidOf("app");
    const Cid srv = sys.cidOf("srv");

    sys.runAs(app, [&] {
        // Reference: the PKRU-write cost of one direct crossing.
        const uint64_t w0 = sys.stats().wrpkrus();
        (void)inc(0);
        const uint64_t one_crossing = sys.stats().wrpkrus() - w0;
        ASSERT_GT(one_crossing, 0u);

        CallRing ring(sys, srv);
        int r1 = 0, r2 = 0, r3 = 0;
        ASSERT_TRUE(ring.push([&] { r1 = inc(10); }));
        ASSERT_TRUE(ring.push([&] { r2 = inc(20); }));
        ASSERT_TRUE(ring.push([&] { r3 = inc(30); }));
        EXPECT_EQ(ring.pending(), 3u);

        const uint64_t w1 = sys.stats().wrpkrus();
        const uint64_t calls0 = sys.stats().callsOnEdge(app, srv);
        const uint64_t flushes0 = sys.stats().ringFlushes();
        EXPECT_EQ(ring.flush(), 3u);
        EXPECT_TRUE(ring.empty());

        // In-order execution, per-call Fig. 5 accounting (exactly one
        // count per queued call — the inner CrossFn runs on the
        // current==callee direct path), but ONE PKRU round trip.
        EXPECT_EQ(r1, 11);
        EXPECT_EQ(r2, 21);
        EXPECT_EQ(r3, 31);
        EXPECT_EQ(sys.stats().callsOnEdge(app, srv), calls0 + 3);
        EXPECT_EQ(sys.stats().ringFlushes(), flushes0 + 1);
        EXPECT_EQ(sys.stats().wrpkrus() - w1, one_crossing);

        // An empty flush is free: no crossing, no flush counted.
        const uint64_t w2 = sys.stats().wrpkrus();
        EXPECT_EQ(ring.flush(), 0u);
        EXPECT_EQ(sys.stats().wrpkrus(), w2);
        EXPECT_EQ(sys.stats().ringFlushes(), flushes0 + 1);
    });
}

TEST(CallRingTest, SharedCalleeFlushSkipsTheCrossing)
{
    SystemConfig cfg;
    cfg.numPages = 1024;
    System sys(cfg);
    addToy(sys, "shared", CubicleKind::kShared)
        .onExports([](Exporter &exp, ToyComponent &) {
            exp.fn<int(int)>("dbl", [](int x) { return 2 * x; });
        });
    addToy(sys, "app");
    sys.boot();
    auto dbl = sys.resolve<int(int)>("shared", "dbl");

    sys.runAs(sys.cidOf("app"), [&] {
        CallRing ring(sys, sys.cidOf("shared"));
        int r = 0;
        ASSERT_TRUE(ring.push([&] { r = dbl(21); }));
        const uint64_t w0 = sys.stats().wrpkrus();
        const uint64_t flushes0 = sys.stats().ringFlushes();
        EXPECT_EQ(ring.flush(), 1u);
        EXPECT_EQ(r, 42);
        // Shared callee: direct execution, no PKRU switch and no
        // batched-crossing stat (nothing was batched away).
        EXPECT_EQ(sys.stats().wrpkrus(), w0);
        EXPECT_EQ(sys.stats().ringFlushes(), flushes0);
    });
}

} // namespace
} // namespace cubicleos::core
