/**
 * @file
 * Trap-and-map, window-API and loader tests against a booted System.
 *
 * These are the core behavioural guarantees of the paper: spatial
 * isolation (cubicles), temporal isolation (windows), causal tag
 * consistency, and loader-enforced integrity.
 */

#include <gtest/gtest.h>

#include "core/system.h"
#include "tests/core/toy_components.h"

namespace cubicleos::core {
namespace {

using testing::addToy;
using testing::ToyComponent;

class TwoCubicleTest : public ::testing::Test {
  protected:
    void bootWith(IsolationMode mode)
    {
        SystemConfig cfg;
        cfg.numPages = 1024;
        cfg.mode = mode;
        sys = std::make_unique<System>(cfg);
        addToy(*sys, "foo");
        addToy(*sys, "bar");
        sys->boot();
        foo = sys->cidOf("foo");
        bar = sys->cidOf("bar");
        sys->runAs(foo, [&] {
            buf = static_cast<char *>(sys->heapAlloc(64));
            std::memset(buf, 0x11, 64);
        });
    }

    std::unique_ptr<System> sys;
    Cid foo = kNoCubicle;
    Cid bar = kNoCubicle;
    char *buf = nullptr;
};

TEST_F(TwoCubicleTest, SpatialIsolationBlocksForeignAccess)
{
    bootWith(IsolationMode::kFull);
    // BAR has no window over FOO's buffer: read and write both fault.
    sys->runAs(bar, [&] {
        EXPECT_THROW(sys->touch(buf, 64, hw::Access::kRead),
                     hw::CubicleFault);
        EXPECT_THROW(sys->touch(buf, 64, hw::Access::kWrite),
                     hw::CubicleFault);
    });
    EXPECT_GE(sys->stats().violations(), 2u);
    // FOO itself accesses freely (implicit window 0).
    sys->runAs(foo, [&] {
        EXPECT_NO_THROW(sys->touch(buf, 64, hw::Access::kWrite));
    });
}

TEST_F(TwoCubicleTest, WindowGrantsZeroCopyAccess)
{
    bootWith(IsolationMode::kFull);
    Wid wid = 0;
    sys->runAs(foo, [&] {
        wid = sys->windowInit();
        sys->windowAdd(wid, buf, 64);
        sys->windowOpen(wid, bar);
    });
    sys->runAs(bar, [&] {
        EXPECT_NO_THROW(sys->touch(buf, 64, hw::Access::kWrite));
        buf[5] = 0x42; // zero-copy: writes land in FOO's memory
    });
    EXPECT_EQ(buf[5], 0x42);
    EXPECT_GE(sys->stats().traps(), 1u);
    EXPECT_GE(sys->stats().retags(), 1u);
}

TEST_F(TwoCubicleTest, FirstAccessTrapsSecondDoesNot)
{
    bootWith(IsolationMode::kFull);
    sys->runAs(foo, [&] {
        Wid wid = sys->windowInit();
        sys->windowAdd(wid, buf, 64);
        sys->windowOpen(wid, bar);
    });
    sys->runAs(bar, [&] {
        sys->touch(buf, 64, hw::Access::kRead);
        const uint64_t traps = sys->stats().traps();
        sys->touch(buf, 64, hw::Access::kRead);
        // Lazy retagging: the page now carries BAR's tag; no new trap.
        EXPECT_EQ(sys->stats().traps(), traps);
    });
}

TEST_F(TwoCubicleTest, CausalTagConsistencyAfterClose)
{
    bootWith(IsolationMode::kFull);
    Wid wid = 0;
    sys->runAs(foo, [&] {
        wid = sys->windowInit();
        sys->windowAdd(wid, buf, 64);
        sys->windowOpen(wid, bar);
    });
    sys->runAs(bar, [&] { sys->touch(buf, 64, hw::Access::kRead); });

    // FOO closes the window. Pages are NOT retagged eagerly: BAR may
    // still access them until another cubicle touches the page (§5.6).
    sys->runAs(foo, [&] { sys->windowClose(wid, bar); });
    sys->runAs(bar, [&] {
        EXPECT_NO_THROW(sys->touch(buf, 64, hw::Access::kRead));
    });

    // Once FOO touches the page it is retagged back; now BAR's access
    // is a real violation.
    sys->runAs(foo, [&] { sys->touch(buf, 64, hw::Access::kWrite); });
    sys->runAs(bar, [&] {
        EXPECT_THROW(sys->touch(buf, 64, hw::Access::kRead),
                     hw::CubicleFault);
    });
}

TEST_F(TwoCubicleTest, ReopenRestoresAccess)
{
    bootWith(IsolationMode::kFull);
    Wid wid = 0;
    sys->runAs(foo, [&] {
        wid = sys->windowInit();
        sys->windowAdd(wid, buf, 64);
        sys->windowOpen(wid, bar);
    });
    sys->runAs(bar, [&] { sys->touch(buf, 64, hw::Access::kRead); });
    sys->runAs(foo, [&] {
        sys->windowClose(wid, bar);
        sys->touch(buf, 64, hw::Access::kWrite); // retag back
        sys->windowOpen(wid, bar);               // reopen
    });
    sys->runAs(bar, [&] {
        EXPECT_NO_THROW(sys->touch(buf, 64, hw::Access::kRead));
    });
}

TEST_F(TwoCubicleTest, WindowRemoveStopsFutureGrants)
{
    bootWith(IsolationMode::kFull);
    Wid wid = 0;
    sys->runAs(foo, [&] {
        wid = sys->windowInit();
        sys->windowAdd(wid, buf, 64);
        sys->windowOpen(wid, bar);
        sys->windowRemove(wid, buf);
    });
    sys->runAs(bar, [&] {
        EXPECT_THROW(sys->touch(buf, 64, hw::Access::kRead),
                     hw::CubicleFault);
    });
}

TEST_F(TwoCubicleTest, WindowDestroyStopsFutureGrants)
{
    bootWith(IsolationMode::kFull);
    Wid wid = 0;
    sys->runAs(foo, [&] {
        wid = sys->windowInit();
        sys->windowAdd(wid, buf, 64);
        sys->windowOpen(wid, bar);
        sys->windowDestroy(wid);
    });
    sys->runAs(bar, [&] {
        EXPECT_THROW(sys->touch(buf, 64, hw::Access::kRead),
                     hw::CubicleFault);
    });
    // The wid slot can be reused by a fresh window.
    sys->runAs(foo, [&] { EXPECT_EQ(sys->windowInit(), wid); });
}

TEST_F(TwoCubicleTest, CloseAllClearsEveryPeer)
{
    bootWith(IsolationMode::kFull);
    Wid wid = 0;
    sys->runAs(foo, [&] {
        wid = sys->windowInit();
        sys->windowAdd(wid, buf, 64);
        sys->windowOpen(wid, bar);
        sys->windowCloseAll(wid);
        sys->touch(buf, 1, hw::Access::kRead); // ensure owner tag
    });
    EXPECT_EQ(sys->monitor().windowAcl(wid), 0u);
    sys->runAs(bar, [&] {
        EXPECT_THROW(sys->touch(buf, 64, hw::Access::kRead),
                     hw::CubicleFault);
    });
}

TEST_F(TwoCubicleTest, OnlyOwnerManagesWindow)
{
    bootWith(IsolationMode::kFull);
    Wid wid = 0;
    sys->runAs(foo, [&] {
        wid = sys->windowInit();
        sys->windowAdd(wid, buf, 64);
    });
    // The nested-call rule (§5.6): BAR cannot manage FOO's window.
    sys->runAs(bar, [&] {
        EXPECT_THROW(sys->windowOpen(wid, bar), WindowError);
        EXPECT_THROW(sys->windowClose(wid, foo), WindowError);
        EXPECT_THROW(sys->windowRemove(wid, buf), WindowError);
        EXPECT_THROW(sys->windowDestroy(wid), WindowError);
    });
}

TEST_F(TwoCubicleTest, WindowAddRequiresOwnedMemory)
{
    bootWith(IsolationMode::kFull);
    sys->runAs(bar, [&] {
        Wid wid = sys->windowInit();
        // buf belongs to FOO; BAR cannot share it.
        EXPECT_THROW(sys->windowAdd(wid, buf, 64), WindowError);
    });
}

TEST_F(TwoCubicleTest, InvalidWidRejected)
{
    bootWith(IsolationMode::kFull);
    sys->runAs(foo, [&] {
        EXPECT_THROW(sys->windowOpen(12345, bar), WindowError);
    });
}

TEST_F(TwoCubicleTest, OutOfRangePeerRejectedNotAliased)
{
    bootWith(IsolationMode::kFull);
    sys->runAs(foo, [&] {
        const Wid wid = sys->windowInit();
        sys->windowAdd(wid, buf, 64);
        // A peer id beyond the ACL width used to wrap modulo
        // kMaxCubicles and grant the aliased cubicle instead.
        EXPECT_THROW(sys->windowOpen(
                         wid, static_cast<Cid>(kMaxCubicles)),
                     WindowError);
        EXPECT_THROW(sys->windowOpen(
                         wid, static_cast<Cid>(kMaxCubicles + bar)),
                     WindowError);
        EXPECT_EQ(sys->monitor().windowAcl(wid), 0u)
            << "failed opens must not leave ACL bits behind";
    });
}

TEST_F(TwoCubicleTest, NoAclModeGrantsAnyCrossAccess)
{
    bootWith(IsolationMode::kNoAcl);
    // "Windows open for any access": no window was created, yet the
    // access succeeds after a trap-and-map retag.
    sys->runAs(bar, [&] {
        EXPECT_NO_THROW(sys->touch(buf, 64, hw::Access::kWrite));
    });
    EXPECT_GE(sys->stats().traps(), 1u);
    EXPECT_GE(sys->stats().retags(), 1u);
}

TEST_F(TwoCubicleTest, NoMpkModeSkipsChecks)
{
    bootWith(IsolationMode::kNoMpk);
    sys->runAs(bar, [&] {
        EXPECT_NO_THROW(sys->touch(buf, 64, hw::Access::kWrite));
    });
    EXPECT_EQ(sys->stats().traps(), 0u);
}

TEST_F(TwoCubicleTest, UnikraftModeSkipsChecks)
{
    bootWith(IsolationMode::kUnikraft);
    sys->runAs(bar, [&] {
        EXPECT_NO_THROW(sys->touch(buf, 64, hw::Access::kWrite));
    });
    EXPECT_EQ(sys->stats().traps(), 0u);
}

TEST_F(TwoCubicleTest, HostMemoryIsNotPoliced)
{
    bootWith(IsolationMode::kFull);
    int host_var = 7;
    sys->runAs(bar, [&] {
        EXPECT_NO_THROW(sys->touch(&host_var, 4, hw::Access::kWrite));
    });
}

TEST_F(TwoCubicleTest, ExecOfForeignPagesDenied)
{
    bootWith(IsolationMode::kFull);
    // BAR attempts to execute FOO's code pages: modified-MPK exec
    // semantics deny it (CFI building block).
    const auto &code = sys->monitor().cubicle(foo).codeRange;
    sys->runAs(bar, [&] {
        EXPECT_THROW(sys->checkExec(code.ptr), hw::CubicleFault);
    });
    // FOO may execute its own code.
    sys->runAs(foo, [&] { EXPECT_NO_THROW(sys->checkExec(code.ptr)); });
}

TEST_F(TwoCubicleTest, DataPagesAreNotExecutable)
{
    bootWith(IsolationMode::kFull);
    sys->runAs(foo, [&] {
        EXPECT_THROW(sys->checkExec(buf), hw::CubicleFault);
    });
}

TEST_F(TwoCubicleTest, StackFrameAllocatesTaggedMemory)
{
    bootWith(IsolationMode::kFull);
    sys->runAs(foo, [&] {
        StackFrame frame(*sys);
        auto *stack_buf =
            static_cast<char *>(frame.allocPageAligned(100));
        ASSERT_NE(stack_buf, nullptr);
        EXPECT_EQ(reinterpret_cast<uintptr_t>(stack_buf) % 4096, 0u);
        sys->touch(stack_buf, 100, hw::Access::kWrite);
        // The page is typed kStack and owned by FOO.
        const auto &meta = sys->monitor().pageMeta().at(
            sys->monitor().space().pageIndexOf(stack_buf));
        EXPECT_EQ(meta.owner, foo);
        EXPECT_EQ(meta.type, mem::PageType::kStack);
    });
    // Frame destruction restored the bump pointer.
    EXPECT_EQ(sys->monitor().stackOffset(foo), 0u);
}

TEST(MonitorTest, StackWindowsWorkLikeHeapWindows)
{
    // Figure 2's scenario: a caller shares a stack buffer with the
    // callee through a window, and the callee writes it zero-copy.
    SystemConfig cfg;
    cfg.numPages = 1024;
    System sys(cfg);
    addToy(sys, "writer").onExports([](Exporter &exp, ToyComponent &me) {
        exp.fn<void(char *, std::size_t)>(
            "poke", [&me](char *p, std::size_t n) {
                me.sys()->touch(p, n, hw::Access::kWrite);
                p[0] = 1;
            });
    });
    addToy(sys, "caller");
    sys.boot();

    auto poke = sys.resolve<void(char *, std::size_t)>("writer", "poke");
    const Cid writer = sys.cidOf("writer");
    const Cid caller = sys.cidOf("caller");
    (void)caller;
    sys.runAs(sys.cidOf("caller"), [&] {
        StackFrame frame(sys);
        auto *sbuf = static_cast<char *>(frame.allocPageAligned(64));
        Wid wid = sys.windowInit();
        sys.windowAdd(wid, sbuf, 64);
        sys.windowOpen(wid, writer);
        poke(sbuf, 64);
        EXPECT_EQ(sbuf[0], 1);
        sys.windowDestroy(wid);
    });
}

TEST(MonitorTest, LoaderRejectsHostileImage)
{
    SystemConfig cfg;
    cfg.numPages = 512;
    System sys(cfg);
    std::vector<uint8_t> evil(128, 0x90);
    evil[7] = 0x0F;
    evil[8] = 0x01;
    evil[9] = 0xEF; // wrpkru
    addToy(sys, "evil").withImage(evil);
    EXPECT_THROW(sys.boot(), LoaderError);
}

TEST(MonitorTest, LoaderRejectsSyscallImage)
{
    SystemConfig cfg;
    cfg.numPages = 512;
    System sys(cfg);
    std::vector<uint8_t> evil(128, 0x90);
    evil[100] = 0x0F;
    evil[101] = 0x05; // syscall
    addToy(sys, "evil").withImage(evil);
    EXPECT_THROW(sys.boot(), LoaderError);
}

TEST(MonitorTest, KeyExhaustionWithoutVirtualisation)
{
    SystemConfig cfg;
    cfg.numPages = 4096;
    cfg.stackPages = 2;
    System sys(cfg);
    // Keys: 0 monitor, 1 shared => 14 isolated cubicles fit.
    for (int i = 0; i < 14; ++i)
        addToy(sys, "c" + std::to_string(i));
    EXPECT_NO_THROW(sys.boot());

    System sys2(cfg);
    for (int i = 0; i < 15; ++i)
        addToy(sys2, "c" + std::to_string(i));
    EXPECT_THROW(sys2.boot(), LoaderError);
}

TEST(MonitorTest, TagVirtualisationAllowsMoreCubicles)
{
    SystemConfig cfg;
    cfg.numPages = 8192;
    cfg.stackPages = 2;
    cfg.virtualizeTags = true;
    System sys(cfg);
    for (int i = 0; i < 20; ++i)
        addToy(sys, "c" + std::to_string(i));
    EXPECT_NO_THROW(sys.boot());
    const int parked = sys.monitor().parkedKey();
    ASSERT_GE(parked, 0);
    // Overflow cubicles hold a logical key and boot parked; no cubicle
    // ever owns a physical tag outside the hardware range.
    std::size_t n_parked = 0;
    for (int i = 0; i < 20; ++i) {
        const Cubicle &c = sys.monitor().cubicle(sys.cidOf(
            "c" + std::to_string(i)));
        EXPECT_LT(c.pkey.load(), hw::kNumPhysPkeys);
        if (c.pkey == parked) {
            ++n_parked;
            EXPECT_GE(c.lkey, hw::kFirstLogicalKey);
        }
    }
    EXPECT_GT(n_parked, 0u) << "20 cubicles must overflow 16 tags";

    // Touching a parked cubicle's own memory faults it back in,
    // transparently binding a dynamic physical tag. Boot init calls
    // already cycled every cubicle through the dynamic pool, so pick
    // two that ended up parked.
    ASSERT_GE(n_parked, 2u);
    Cid late = kNoCubicle, other = kNoCubicle;
    for (int i = 19; i >= 0; --i) {
        const Cid cid = sys.cidOf("c" + std::to_string(i));
        if (sys.monitor().cubicle(cid).pkey != parked)
            continue;
        if (late == kNoCubicle)
            late = cid;
        else if (other == kNoCubicle)
            other = cid;
    }
    ASSERT_NE(late, kNoCubicle);
    ASSERT_NE(other, kNoCubicle);
    auto &own = sys.monitor().cubicle(late).globalRange;
    sys.runAs(late, [&] {
        EXPECT_NO_THROW(sys.touch(own.ptr, 16, hw::Access::kWrite));
    });
    EXPECT_NE(sys.monitor().cubicle(late).pkey.load(), parked);
    EXPECT_LT(sys.monitor().cubicle(late).pkey.load(),
              hw::kNumPhysPkeys);
    EXPECT_GE(sys.monitor().cubicle(late).faultIns.load(), 1u);

    // Isolation survives virtualisation: another parked cubicle's
    // pages stay unreachable from the resident one.
    ASSERT_EQ(sys.monitor().cubicle(other).pkey.load(), parked);
    auto &foreign = sys.monitor().cubicle(other).globalRange;
    sys.runAs(late, [&] {
        EXPECT_THROW(sys.touch(foreign.ptr, 16, hw::Access::kRead),
                     hw::CubicleFault);
    });
}

TEST(MonitorTest, TagPressureEvictsLeastRecentlyUsedCubicle)
{
    SystemConfig cfg;
    cfg.numPages = 8192;
    cfg.stackPages = 2;
    cfg.virtualizeTags = true;
    cfg.physTagBudget = 6; // monitor, shared, parked + 3 dynamic
    cfg.dynamicTags = 3;
    System sys(cfg);
    for (int i = 0; i < 8; ++i)
        addToy(sys, "c" + std::to_string(i));
    EXPECT_NO_THROW(sys.boot());
    const int parked = sys.monitor().parkedKey();
    // With a budget of 6 every cubicle overflows into the logical
    // namespace; cycling through more cubicles than dynamic tags
    // forces LRU evictions yet every touch succeeds.
    for (int round = 0; round < 2; ++round) {
        for (int i = 0; i < 8; ++i) {
            const Cid cid = sys.cidOf("c" + std::to_string(i));
            auto &own = sys.monitor().cubicle(cid).globalRange;
            sys.runAs(cid, [&] {
                EXPECT_NO_THROW(
                    sys.touch(own.ptr, 16, hw::Access::kWrite));
            });
            EXPECT_NE(sys.monitor().cubicle(cid).pkey.load(), parked);
        }
    }
    EXPECT_GT(sys.stats().evictions(), 0u);
    EXPECT_GT(sys.stats().faultIns(), 0u);
    // Exactly dynamicTags cubicles can be resident at once.
    std::size_t resident = 0;
    for (int i = 0; i < 8; ++i) {
        if (sys.monitor()
                .cubicle(sys.cidOf("c" + std::to_string(i)))
                .pkey != parked)
            ++resident;
    }
    EXPECT_LE(resident, cfg.dynamicTags);
}

TEST(MonitorTest, SharedCubicleDataReadableEverywhere)
{
    SystemConfig cfg;
    cfg.numPages = 1024;
    System sys(cfg);
    addToy(sys, "libc", CubicleKind::kShared);
    addToy(sys, "app");
    sys.boot();
    const Cid libc = sys.cidOf("libc");
    const Cid app = sys.cidOf("app");
    auto &global = sys.monitor().cubicle(libc).globalRange;
    sys.runAs(app, [&] {
        EXPECT_NO_THROW(
            sys.touch(global.ptr, 16, hw::Access::kRead));
    });
}

TEST(MonitorTest, PkruForAllowsOwnAndSharedKeysOnly)
{
    SystemConfig cfg;
    cfg.numPages = 1024;
    System sys(cfg);
    addToy(sys, "a");
    addToy(sys, "b");
    sys.boot();
    const Cid a = sys.cidOf("a");
    const Cid b = sys.cidOf("b");
    hw::Pkru pkru = sys.monitor().pkruFor(a);
    EXPECT_TRUE(pkru.canWrite(sys.monitor().cubicle(a).pkey));
    EXPECT_TRUE(pkru.canRead(sys.monitor().sharedKey()));
    EXPECT_FALSE(pkru.canRead(sys.monitor().cubicle(b).pkey));
    EXPECT_FALSE(pkru.canRead(hw::Mpk::kMonitorKey));
}

TEST(MonitorTest, HeapPagesOwnedByAllocatingCubicle)
{
    SystemConfig cfg;
    cfg.numPages = 1024;
    System sys(cfg);
    addToy(sys, "a");
    sys.boot();
    const Cid a = sys.cidOf("a");
    sys.runAs(a, [&] {
        void *p = sys.heapAlloc(100);
        const auto &pm = sys.monitor().pageMeta().at(
            sys.monitor().space().pageIndexOf(p));
        EXPECT_EQ(pm.owner, a);
        EXPECT_EQ(pm.type, mem::PageType::kHeap);
        sys.heapFree(p);
    });
}

} // namespace
} // namespace cubicleos::core
