/**
 * @file
 * Threat-model scenarios (paper §2.3, §6): attacks a malicious or
 * compromised component might attempt, and the guarantee that CubicleOS
 * blocks each one.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "core/system.h"
#include "tests/core/toy_components.h"

namespace cubicleos::core {
namespace {

using testing::ToyComponent;
using testing::addToy;

SystemConfig
cfg()
{
    SystemConfig c;
    c.numPages = 2048;
    return c;
}

/**
 * Scenario: a compromised file system tries to read TLS keys held by
 * another component (the CVE-2018-5410 motivation from the paper's
 * introduction).
 */
TEST(ThreatModel, CompromisedFsCannotStealKeys)
{
    System sys(cfg());
    char *secret = nullptr;

    addToy(sys, "tls").onInit([&](ToyComponent &me) {
        secret = static_cast<char *>(me.sys()->heapAlloc(32));
        std::memcpy(secret, "-----SECRET-KEY-----", 21);
    });
    addToy(sys, "evil_fs").onExports(
        [&](Exporter &exp, ToyComponent &me) {
            exp.fn<int()>("steal", [&me, &secret]() -> int {
                // The hostile component scans another cubicle's heap.
                me.sys()->touch(secret, 21, hw::Access::kRead);
                return secret[0];
            });
        });
    addToy(sys, "app");
    sys.boot();

    auto steal = sys.resolve<int()>("evil_fs", "steal");
    sys.runAs(sys.cidOf("app"), [&] {
        EXPECT_THROW(steal(), hw::CubicleFault);
    });
    EXPECT_GE(sys.stats().violations(), 1u);
    // The secret is intact.
    EXPECT_EQ(std::memcmp(secret, "-----SECRET-KEY-----", 21), 0);
}

/**
 * Scenario: a callee keeps a pointer from a legitimate window and tries
 * to use it after the caller closed the window and reclaimed the page.
 */
TEST(ThreatModel, DanglingWindowPointerBlockedAfterReclaim)
{
    System sys(cfg());
    addToy(sys, "srv").onExports([](Exporter &exp, ToyComponent &me) {
        static const char *stash = nullptr;
        exp.fn<void(const char *, std::size_t)>(
            "process", [&me](const char *p, std::size_t n) {
                me.sys()->touch(p, n, hw::Access::kRead);
                stash = p; // hostile: remember the pointer
            });
        exp.fn<int()>("replay", [&me]() -> int {
            me.sys()->touch(stash, 1, hw::Access::kRead);
            return stash[0];
        });
    });
    addToy(sys, "client");
    sys.boot();

    auto process =
        sys.resolve<void(const char *, std::size_t)>("srv", "process");
    auto replay = sys.resolve<int()>("srv", "replay");
    const Cid srv = sys.cidOf("srv");

    sys.runAs(sys.cidOf("client"), [&] {
        char *buf = static_cast<char *>(sys.heapAlloc(64));
        buf[0] = 9;
        Wid wid = sys.windowInit();
        sys.windowAdd(wid, buf, 64);
        sys.windowOpen(wid, srv);
        process(buf, 64);
        sys.windowClose(wid, srv);
        // Owner touches the page: lazily reclaims the tag.
        sys.touch(buf, 64, hw::Access::kWrite);
        // The stashed pointer is now useless to the server.
        EXPECT_THROW(replay(), hw::CubicleFault);
    });
}

/**
 * Scenario: component A opens a window for B; C (not in the ACL) tries
 * to piggy-back on it.
 */
TEST(ThreatModel, AclIsPerCubicle)
{
    System sys(cfg());
    addToy(sys, "a");
    addToy(sys, "b");
    addToy(sys, "c");
    sys.boot();
    const Cid a = sys.cidOf("a");
    const Cid b = sys.cidOf("b");
    const Cid c = sys.cidOf("c");

    char *buf = nullptr;
    sys.runAs(a, [&] {
        buf = static_cast<char *>(sys.heapAlloc(64));
        Wid wid = sys.windowInit();
        sys.windowAdd(wid, buf, 64);
        sys.windowOpen(wid, b);
    });
    sys.runAs(b, [&] {
        EXPECT_NO_THROW(sys.touch(buf, 64, hw::Access::kRead));
    });
    sys.runAs(c, [&] {
        EXPECT_THROW(sys.touch(buf, 64, hw::Access::kRead),
                     hw::CubicleFault);
    });
    (void)a;
}

/**
 * Scenario: the callee of a nested call tries to re-share data it was
 * granted through a window. Only the owner manages windows, so the
 * attempt is refused (§5.6 nested calls).
 */
TEST(ThreatModel, GranteeCannotReShareForeignMemory)
{
    System sys(cfg());
    addToy(sys, "owner");
    addToy(sys, "middleman");
    addToy(sys, "spy");
    sys.boot();
    const Cid owner = sys.cidOf("owner");
    const Cid mid = sys.cidOf("middleman");
    const Cid spy = sys.cidOf("spy");

    char *buf = nullptr;
    sys.runAs(owner, [&] {
        buf = static_cast<char *>(sys.heapAlloc(64));
        Wid wid = sys.windowInit();
        sys.windowAdd(wid, buf, 64);
        sys.windowOpen(wid, mid);
    });
    sys.runAs(mid, [&] {
        sys.touch(buf, 64, hw::Access::kRead); // legitimate
        Wid own_wid = sys.windowInit();
        // Re-sharing foreign memory is refused: not the owner.
        EXPECT_THROW(sys.windowAdd(own_wid, buf, 64), WindowError);
    });
    sys.runAs(spy, [&] {
        EXPECT_THROW(sys.touch(buf, 64, hw::Access::kRead),
                     hw::CubicleFault);
    });
}

/** Scenario: hostile component ships wrpkru in its binary. */
TEST(ThreatModel, LoaderBlocksPkruTampering)
{
    System sys(cfg());
    std::vector<uint8_t> evil(4096, 0x90);
    // Hide the sequence deep in the image, across a cache line.
    evil[2047] = 0x0F;
    evil[2048] = 0x01;
    evil[2049] = 0xEF;
    addToy(sys, "rootkit").withImage(std::move(evil));
    EXPECT_THROW(sys.boot(), LoaderError);
}

/** Scenario: hostile component ships a raw syscall to call mprotect. */
TEST(ThreatModel, LoaderBlocksDirectSyscalls)
{
    System sys(cfg());
    std::vector<uint8_t> evil(4096, 0x90);
    evil[4094] = 0x0F;
    evil[4095] = 0x05;
    addToy(sys, "escapee").withImage(std::move(evil));
    EXPECT_THROW(sys.boot(), LoaderError);
}

/**
 * Scenario: code-injection attempt — a cubicle writes shellcode into
 * its heap and jumps to it. Data pages never carry execute permission
 * and cubicles cannot change execute permissions (§5.4 rule 1).
 */
TEST(ThreatModel, HeapIsNeverExecutable)
{
    System sys(cfg());
    addToy(sys, "app");
    sys.boot();
    sys.runAs(sys.cidOf("app"), [&] {
        auto *shellcode = static_cast<uint8_t *>(sys.heapAlloc(64));
        shellcode[0] = 0xC3; // ret
        EXPECT_THROW(sys.checkExec(shellcode), hw::CubicleFault);
    });
}

/**
 * Scenario: jumping into another cubicle's code without going through
 * a trampoline (CFI bypass attempt). The modified-MPK execute
 * semantics fault the fetch.
 */
TEST(ThreatModel, DirectCodeJumpAcrossCubiclesFaults)
{
    System sys(cfg());
    addToy(sys, "victim");
    addToy(sys, "attacker");
    sys.boot();
    const auto &victim_code =
        sys.monitor().cubicle(sys.cidOf("victim")).codeRange;
    sys.runAs(sys.cidOf("attacker"), [&] {
        EXPECT_THROW(sys.checkExec(victim_code.ptr), hw::CubicleFault);
        EXPECT_THROW(
            sys.checkExec(victim_code.ptr + 100), hw::CubicleFault);
    });
}

/**
 * Scenario: integrity of the window table itself — it lives in monitor
 * memory (key 0), unreachable from any cubicle.
 */
TEST(ThreatModel, MonitorKeyUnreachableFromCubicles)
{
    System sys(cfg());
    addToy(sys, "app");
    sys.boot();
    hw::Pkru pkru = sys.monitor().pkruFor(sys.cidOf("app"));
    EXPECT_FALSE(pkru.canRead(hw::Mpk::kMonitorKey));
    EXPECT_FALSE(pkru.canWrite(hw::Mpk::kMonitorKey));
}

/**
 * Scenario: window ranges are page-granular in enforcement; data on the
 * same page as a windowed buffer leaks to the grantee. The paper tells
 * developers to pad/align (Fig. 4's pad[4086]); verify both the hazard
 * and the remedy so the behaviour is documented by test.
 */
TEST(ThreatModel, PageGranularityHazardAndPaddingRemedy)
{
    System sys(cfg());
    addToy(sys, "a");
    addToy(sys, "b");
    sys.boot();
    const Cid a = sys.cidOf("a");
    const Cid b = sys.cidOf("b");

    char *shared_page = nullptr;
    char *secret_same_page = nullptr;
    char *secret_padded = nullptr;
    sys.runAs(a, [&] {
        StackFrame frame(sys);
        shared_page = static_cast<char *>(frame.allocPageAligned(64));
        secret_same_page = shared_page + 128; // same page!
        secret_padded =
            static_cast<char *>(frame.allocPageAligned(64)); // next page
        std::memcpy(secret_same_page, "on-page-secret", 15);
        std::memcpy(secret_padded, "padded-secret", 14);
        Wid wid = sys.windowInit();
        sys.windowAdd(wid, shared_page, 64);
        sys.windowOpen(wid, b);
    });
    sys.runAs(b, [&] {
        // Granted range: OK. Retag covers the whole page, so the
        // same-page secret is exposed (the documented hazard)...
        EXPECT_NO_THROW(sys.touch(shared_page, 64, hw::Access::kRead));
        EXPECT_NO_THROW(
            sys.touch(secret_same_page, 15, hw::Access::kRead));
        // ...but page-aligned padding keeps the secret safe.
        EXPECT_THROW(sys.touch(secret_padded, 14, hw::Access::kRead),
                     hw::CubicleFault);
    });
}

/**
 * Scenario: exhausting another cubicle's window table or heap is not
 * possible — windows are created by their owner only, and heaps are
 * per-cubicle.
 */
TEST(ThreatModel, ResourceSeparationBetweenCubicles)
{
    System sys(cfg());
    addToy(sys, "hog");
    addToy(sys, "victim");
    sys.boot();
    const Cid hog = sys.cidOf("hog");
    const Cid victim = sys.cidOf("victim");

    sys.runAs(hog, [&] {
        for (int i = 0; i < 100; ++i) {
            Wid w = sys.windowInit();
            (void)w;
        }
    });
    // Victim's own window numbering/managment is unaffected.
    sys.runAs(victim, [&] {
        Wid w = sys.windowInit();
        char *p = static_cast<char *>(sys.heapAlloc(32));
        sys.windowAdd(w, p, 32);
        sys.windowOpen(w, hog);
        sys.windowDestroy(w);
    });
}

} // namespace
} // namespace cubicleos::core
