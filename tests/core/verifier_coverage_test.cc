/**
 * @file
 * Decode-coverage regression floor: the verifier's length decoder must
 * cover at least 99.5% of every in-tree component image. A new menu
 * entry in makeBenignImage, or a decoder regression, that leaves gaps
 * in the sweep fails here before it degrades real verdicts (gaps force
 * conservative rejects).
 */

#include <gtest/gtest.h>

#include "apps/httpd/harness.h"
#include "baselines/deployments.h"
#include "core/system.h"
#include "core/verifier/report.h"

namespace cubicleos {
namespace {

constexpr double kCoverageFloor = 0.995;

void
expectFloor(core::System &sys)
{
    const std::size_t count = sys.monitor().cubicleCount();
    ASSERT_GT(count, 0u);
    for (core::Cid cid = 0; cid < count; ++cid) {
        const core::verifier::VerifierReport &report =
            sys.monitor().verifierReport(cid);
        EXPECT_GE(report.decodeCoverage(), kCoverageFloor)
            << "cubicle " << cid << " ('"
            << sys.monitor().cubicle(cid).name << "'): "
            << report.undecodableBytes << " undecodable of "
            << report.imageBytes << " bytes, first gap at offset "
            << report.firstUndecodable;
        EXPECT_EQ(report.undecodableBytes, 0u) << cid;
        EXPECT_TRUE(report.cfg.ran) << cid;
        EXPECT_FALSE(report.cfg.opaque) << cid;
    }
}

TEST(VerifierCoverage, NginxDeploymentImagesFullyDecoded)
{
    httpd::HttpHarness harness(core::IsolationMode::kFull);
    expectFloor(harness.sys());
}

TEST(VerifierCoverage, SqliteDeploymentImagesFullyDecoded)
{
    auto deployment = baselines::SqliteDeployment::makeCubicles(
        7, core::IsolationMode::kFull);
    ASSERT_NE(deployment->system(), nullptr);
    expectFloor(*deployment->system());
}

} // namespace
} // namespace cubicleos
