/**
 * @file
 * Tests for SystemConfig::strictVerify: boot runs the isolation linter
 * over the wired system and refuses to hand over a deployment with
 * warning-or-worse findings.
 */

#include <gtest/gtest.h>

#include "core/system.h"
#include "core/verifier/lint.h"
#include "tests/core/toy_components.h"

namespace cubicleos::core {
namespace {

SystemConfig
strictConfig()
{
    SystemConfig cfg;
    cfg.strictVerify = true;
    return cfg;
}

/** producer shares a buffer with consumer — textbook wiring. */
void
wireCleanly(System &sys)
{
    auto &producer = testing::addToy(sys, "producer");
    testing::addToy(sys, "consumer");
    producer.onInit([](testing::ToyComponent &self) {
        System &s = *self.sys();
        void *buf = s.heapAlloc(256);
        const Wid wid = s.windowInit();
        s.windowAdd(wid, buf, 256);
        s.windowOpen(wid, s.cidOf("consumer"));
    });
}

/** producer grants itself — a warning-severity self-grant. */
void
wireWithSelfGrant(System &sys)
{
    auto &producer = testing::addToy(sys, "producer");
    testing::addToy(sys, "consumer");
    producer.onInit([](testing::ToyComponent &self) {
        System &s = *self.sys();
        void *buf = s.heapAlloc(256);
        const Wid wid = s.windowInit();
        s.windowAdd(wid, buf, 256);
        s.windowOpen(wid, self.self());
    });
}

TEST(StrictBoot, WellWiredSystemBoots)
{
    System sys(strictConfig());
    wireCleanly(sys);
    EXPECT_NO_THROW(sys.boot());
    EXPECT_EQ(sys.stats().lintRuns(), 1u);
}

TEST(StrictBoot, RefusesMisWiredSystem)
{
    System sys(strictConfig());
    wireWithSelfGrant(sys);
    try {
        sys.boot();
        FAIL() << "strict boot accepted a mis-wired system";
    } catch (const LoaderError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("strict verify"), std::string::npos);
        EXPECT_NE(what.find("acl-self-grant"), std::string::npos);
        EXPECT_NE(what.find("warning"), std::string::npos);
    }
}

TEST(StrictBoot, RefusesGhostPeerGrant)
{
    System sys(strictConfig());
    auto &producer = testing::addToy(sys, "producer");
    producer.onInit([](testing::ToyComponent &self) {
        System &s = *self.sys();
        void *buf = s.heapAlloc(64);
        const Wid wid = s.windowInit();
        s.windowAdd(wid, buf, 64);
        // Grants a cubicle id that was never loaded.
        s.windowOpen(wid, 9);
    });
    try {
        sys.boot();
        FAIL() << "strict boot accepted a ghost-peer grant";
    } catch (const LoaderError &e) {
        EXPECT_NE(std::string(e.what()).find("acl-ghost-peer"),
                  std::string::npos);
    }
}

TEST(StrictBoot, RefusesStaleAclLeftByInit)
{
    System sys(strictConfig());
    auto &producer = testing::addToy(sys, "producer");
    testing::addToy(sys, "consumer");
    producer.onInit([](testing::ToyComponent &self) {
        System &s = *self.sys();
        void *buf = s.heapAlloc(128);
        const Wid wid = s.windowInit();
        s.windowAdd(wid, buf, 128);
        s.windowOpen(wid, s.cidOf("consumer"));
        s.windowRemove(wid, buf); // grant outlives the range
    });
    try {
        sys.boot();
        FAIL() << "strict boot accepted a stale ACL";
    } catch (const LoaderError &e) {
        EXPECT_NE(std::string(e.what()).find("acl-stale-grant"),
                  std::string::npos);
    }
}

TEST(StrictBoot, InfoFindingsDoNotBlockBoot)
{
    // A pointer-taking export with no window anywhere is info-severity:
    // strict mode tolerates it.
    System sys(strictConfig());
    auto &fs = testing::addToy(sys, "fs");
    fs.onExports([](Exporter &exp, testing::ToyComponent &) {
        exp.fn<int(const char *)>("open", [](const char *) { return 3; });
    });
    EXPECT_NO_THROW(sys.boot());
}

TEST(StrictBoot, DefaultModeToleratesMisWiring)
{
    // The same mis-wired deployment boots when strictVerify is off;
    // the findings surface only through an explicit lintWiring call.
    System sys;
    wireWithSelfGrant(sys);
    EXPECT_NO_THROW(sys.boot());
    EXPECT_FALSE(verifier::lintClean(sys.lintWiring()));
}

} // namespace
} // namespace cubicleos::core
