/**
 * @file
 * Concurrency tests: MPK permissions are per-thread (paper §2.2), so
 * threads carry independent PKRU state and cross-cubicle contexts.
 * Threads operate on disjoint pages, matching the runtime's
 * documented discipline.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/system.h"
#include "tests/core/toy_components.h"

namespace cubicleos::core {
namespace {

using testing::ToyComponent;
using testing::addToy;

TEST(Concurrency, ParallelCrossCallsKeepContextsSeparate)
{
    SystemConfig cfg;
    cfg.numPages = 4096;
    System sys(cfg);
    addToy(sys, "srv").onExports([](Exporter &exp, ToyComponent &me) {
        exp.fn<Cid()>("who",
                      [&me] { return me.sys()->currentCubicle(); });
    });
    for (int i = 0; i < 4; ++i)
        addToy(sys, "app" + std::to_string(i));
    sys.boot();
    auto who = sys.resolve<Cid()>("srv", "who");
    const Cid srv = sys.cidOf("srv");

    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&, t] {
            const Cid me = sys.cidOf("app" + std::to_string(t));
            sys.runAs(me, [&] {
                for (int i = 0; i < 2000; ++i) {
                    if (who() != srv)
                        ++failures;
                    if (sys.currentCubicle() != me)
                        ++failures;
                }
            });
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(failures.load(), 0);
    // Every app->srv edge carries exactly its own calls.
    for (int t = 0; t < 4; ++t) {
        EXPECT_EQ(sys.stats().callsOnEdge(
                      sys.cidOf("app" + std::to_string(t)), srv),
                  2000u);
    }
}

TEST(Concurrency, ParallelWindowGrantsOnDisjointPages)
{
    SystemConfig cfg;
    cfg.numPages = 8192;
    System sys(cfg);
    addToy(sys, "reader").onExports(
        [](Exporter &exp, ToyComponent &me) {
            exp.fn<int(const char *, std::size_t)>(
                "sum", [&me](const char *p, std::size_t n) {
                    me.sys()->touch(p, n, hw::Access::kRead);
                    int s = 0;
                    for (std::size_t i = 0; i < n; ++i)
                        s += p[i];
                    return s;
                });
        });
    for (int i = 0; i < 3; ++i)
        addToy(sys, "w" + std::to_string(i));
    sys.boot();
    auto sum = sys.resolve<int(const char *, std::size_t)>("reader",
                                                           "sum");
    const Cid reader = sys.cidOf("reader");

    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 3; ++t) {
        threads.emplace_back([&, t] {
            const Cid me = sys.cidOf("w" + std::to_string(t));
            sys.runAs(me, [&] {
                // Each thread shares its own pages only.
                auto *buf = reinterpret_cast<char *>(
                    sys.monitor()
                        .allocPagesFor(me, 1, mem::PageType::kHeap)
                        .ptr);
                std::memset(buf, t + 1, 100);
                const Wid wid = sys.windowInit();
                sys.windowAdd(wid, buf, 100);
                sys.windowOpen(wid, reader);
                for (int i = 0; i < 500; ++i) {
                    if (sum(buf, 100) != 100 * (t + 1))
                        ++failures;
                    sys.touch(buf, 100, hw::Access::kWrite); // reclaim
                }
                sys.windowDestroy(wid);
            });
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_GE(sys.stats().retags(), 3u);
}

TEST(Concurrency, ViolationInOneThreadDoesNotPoisonOthers)
{
    SystemConfig cfg;
    cfg.numPages = 4096;
    System sys(cfg);
    addToy(sys, "victim");
    addToy(sys, "attacker");
    addToy(sys, "worker");
    sys.boot();

    char *secret = nullptr;
    sys.runAs(sys.cidOf("victim"), [&] {
        secret = static_cast<char *>(sys.heapAlloc(32));
    });

    std::atomic<int> violations{0};
    std::atomic<int> worker_errors{0};
    std::thread attacker([&] {
        sys.runAs(sys.cidOf("attacker"), [&] {
            for (int i = 0; i < 200; ++i) {
                try {
                    sys.touch(secret, 8, hw::Access::kRead);
                } catch (const hw::CubicleFault &) {
                    ++violations;
                }
            }
        });
    });
    std::thread worker([&] {
        sys.runAs(sys.cidOf("worker"), [&] {
            for (int i = 0; i < 200; ++i) {
                void *p = sys.heapAlloc(64);
                try {
                    sys.touch(p, 64, hw::Access::kWrite);
                } catch (const hw::CubicleFault &) {
                    ++worker_errors;
                }
                sys.heapFree(p);
            }
        });
    });
    attacker.join();
    worker.join();
    EXPECT_EQ(violations.load(), 200);
    EXPECT_EQ(worker_errors.load(), 0);
}

// Virtual-key eviction must invalidate cached grants (DESIGN.md §14):
// evicting a cubicle sweeps every page carrying its physical tag — the
// pages it was *granted* included — to the parked tag, then rebinds the
// tag to another cubicle. A grant-cache entry that survived the
// eviction would absorb the fault and let the thread touch a parked
// page whose tag now belongs to someone else. The eviction therefore
// bumps the revocation epoch, unlike PR 8's widening retags which
// deliberately do not.
TEST(Concurrency, EvictionInvalidatesCachedGrantsDeterministically)
{
    SystemConfig cfg;
    cfg.numPages = 8192;
    cfg.stackPages = 2;
    cfg.virtualizeTags = true;
    cfg.physTagBudget = 5; // monitor, shared, parked + 2 dynamic
    cfg.dynamicTags = 2;
    System sys(cfg);
    addToy(sys, "reader").onExports(
        [](Exporter &exp, ToyComponent &me) {
            exp.fn<int(const char *, std::size_t)>(
                "sum", [&me](const char *p, std::size_t n) {
                    me.sys()->touch(p, n, hw::Access::kRead);
                    int s = 0;
                    for (std::size_t i = 0; i < n; ++i)
                        s += p[i];
                    return s;
                });
        });
    addToy(sys, "owner");
    for (int i = 0; i < 3; ++i)
        addToy(sys, "filler" + std::to_string(i));
    sys.boot();
    auto sum = sys.resolve<int(const char *, std::size_t)>("reader",
                                                           "sum");
    const Cid reader = sys.cidOf("reader");
    const Cid owner = sys.cidOf("owner");
    const int parked = sys.monitor().parkedKey();
    ASSERT_GE(parked, 0);

    char *buf = nullptr;
    sys.runAs(owner, [&] {
        buf = reinterpret_cast<char *>(
            sys.monitor()
                .allocPagesFor(owner, 1, mem::PageType::kHeap)
                .ptr);
        std::memset(buf, 3, 64);
        const Wid wid = sys.windowInit();
        sys.windowAdd(wid, buf, 64);
        sys.windowOpen(wid, reader);
        // First call trap-and-maps and fills the grant cache; after
        // the owner reclaims the tag, the repeat is absorbed by it.
        ASSERT_EQ(sum(buf, 64), 3 * 64);
        sys.touch(buf, 64, hw::Access::kWrite); // reclaim the tag
        const uint64_t hits0 = sys.stats().grantCacheHits();
        ASSERT_EQ(sum(buf, 64), 3 * 64);
        EXPECT_GT(sys.stats().grantCacheHits(), hits0)
            << "grant cache must absorb the repeat access";
    });

    // Force the reader (and owner) out of the dynamic pool: cycling
    // three fillers through two dynamic tags evicts everyone else.
    for (int round = 0; round < 3 &&
                        sys.monitor().cubicle(reader).pkey != parked;
         ++round) {
        for (int i = 0; i < 3; ++i) {
            const Cid f = sys.cidOf("filler" + std::to_string(i));
            auto &own = sys.monitor().cubicle(f).globalRange;
            sys.runAs(f, [&] {
                sys.touch(own.ptr, 16, hw::Access::kWrite);
            });
        }
    }
    ASSERT_EQ(sys.monitor().cubicle(reader).pkey.load(), parked);
    EXPECT_GT(sys.stats().evictions(), 0u);
    // The granted page was swept along with the reader's tag.
    const std::size_t page = sys.monitor().space().pageIndexOf(buf);
    ASSERT_EQ(sys.monitor().space().entryAt(page).pkey.load(),
              static_cast<uint8_t>(parked));

    // The cached grant is dead: the next access must take a full
    // trap-and-map (re-checking the window ACL), not a cache hit.
    sys.runAs(owner, [&] {
        const uint64_t hits1 = sys.stats().grantCacheHits();
        const uint64_t traps1 = sys.stats().traps();
        EXPECT_EQ(sum(buf, 64), 3 * 64);
        EXPECT_EQ(sys.stats().grantCacheHits(), hits1)
            << "a cached grant must not absorb a parked page";
        EXPECT_GT(sys.stats().traps(), traps1)
            << "parked page must re-trap through handleFault";
    });
}

TEST(Concurrency, GrantsStayCoherentUnderConcurrentEvictions)
{
    SystemConfig cfg;
    cfg.numPages = 16384;
    cfg.stackPages = 2;
    cfg.virtualizeTags = true;
    cfg.physTagBudget = 5;
    cfg.dynamicTags = 2;
    System sys(cfg);
    addToy(sys, "reader").onExports(
        [](Exporter &exp, ToyComponent &me) {
            exp.fn<int(const char *, std::size_t)>(
                "sum", [&me](const char *p, std::size_t n) {
                    me.sys()->touch(p, n, hw::Access::kRead);
                    int s = 0;
                    for (std::size_t i = 0; i < n; ++i)
                        s += p[i];
                    return s;
                });
        });
    addToy(sys, "owner");
    for (int i = 0; i < 3; ++i)
        addToy(sys, "filler" + std::to_string(i));
    sys.boot();
    auto sum = sys.resolve<int(const char *, std::size_t)>("reader",
                                                           "sum");
    const Cid owner = sys.cidOf("owner");
    const Cid reader = sys.cidOf("reader");

    char *buf = nullptr;
    sys.runAs(owner, [&] {
        buf = reinterpret_cast<char *>(
            sys.monitor()
                .allocPagesFor(owner, 1, mem::PageType::kHeap)
                .ptr);
        std::memset(buf, 5, 64);
        const Wid wid = sys.windowInit();
        sys.windowAdd(wid, buf, 64);
        sys.windowOpen(wid, reader);
    });

    std::atomic<int> failures{0};
    std::thread caller([&] {
        sys.runAs(owner, [&] {
            for (int i = 0; i < 1500; ++i) {
                if (sum(buf, 64) != 5 * 64)
                    ++failures;
            }
        });
    });
    std::thread evictor([&] {
        for (int round = 0; round < 100; ++round) {
            for (int i = 0; i < 3; ++i) {
                const Cid f =
                    sys.cidOf("filler" + std::to_string(i));
                auto &own = sys.monitor().cubicle(f).globalRange;
                sys.runAs(f, [&] {
                    sys.touch(own.ptr, 16, hw::Access::kWrite);
                });
            }
        }
    });
    caller.join();
    evictor.join();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_GT(sys.stats().evictions(), 0u);
    EXPECT_GT(sys.stats().faultIns(), 0u);
}

} // namespace
} // namespace cubicleos::core
