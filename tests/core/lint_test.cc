/**
 * @file
 * Tests for the isolation linter: every rule against hand-built wiring
 * snapshots, the pointer-signature detector, and the System-level
 * entry point.
 */

#include <gtest/gtest.h>

#include <typeinfo>

#include "core/system.h"
#include "core/verifier/lint.h"
#include "tests/core/toy_components.h"

namespace cubicleos::core {
namespace {

using verifier::LintFinding;
using verifier::LintRule;
using verifier::LintSeverity;
using verifier::WiringSnapshot;
using verifier::lintClean;
using verifier::lintWiring;
using verifier::signaturePassesPointers;

/** Two isolated cubicles + one shared, correctly keyed. */
WiringSnapshot
baseSnapshot()
{
    WiringSnapshot snap;
    snap.sharedKey = 1;
    snap.cubicles = {
        {0, "fs", CubicleKind::kIsolated, 2},
        {1, "app", CubicleKind::kIsolated, 3},
        {2, "libc", CubicleKind::kShared, 1},
    };
    return snap;
}

bool
hasRule(const std::vector<LintFinding> &findings, LintRule rule)
{
    for (const auto &f : findings) {
        if (f.rule == rule)
            return true;
    }
    return false;
}

TEST(Lint, CleanWiringHasNoFindings)
{
    WiringSnapshot snap = baseSnapshot();
    // app's window grants fs — which satisfies fs's pointer export.
    snap.windows = {{0, 1, aclBit(0), 2, -1}};
    snap.exports = {{"read", 0, CubicleKind::kIsolated, true}};
    auto findings = lintWiring(snap);
    EXPECT_TRUE(findings.empty());
    EXPECT_TRUE(lintClean(findings));
}

TEST(Lint, IsolatedComponentWithSharedKeyIsAnError)
{
    WiringSnapshot snap = baseSnapshot();
    snap.cubicles[1].pkey = snap.sharedKey; // isolated 'app', shared key
    auto findings = lintWiring(snap);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, LintRule::kIsolatedUsesSharedKey);
    EXPECT_EQ(findings[0].severity, LintSeverity::kError);
    EXPECT_EQ(findings[0].cubicle, 1u);
    EXPECT_NE(findings[0].message.find("app"), std::string::npos);
    EXPECT_FALSE(lintClean(findings));
}

TEST(Lint, SharedCubicleWithSharedKeyIsFine)
{
    auto findings = lintWiring(baseSnapshot());
    EXPECT_TRUE(findings.empty());
}

TEST(Lint, GhostPeerGrantIsAnError)
{
    WiringSnapshot snap = baseSnapshot();
    // Grants cubicle 7, which does not exist (only 0..2 are loaded).
    snap.windows = {{0, 0, aclBit(1) | aclBit(7), 1, -1}};
    auto findings = lintWiring(snap);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, LintRule::kAclGhostPeer);
    EXPECT_EQ(findings[0].severity, LintSeverity::kError);
    EXPECT_EQ(findings[0].window, 0u);
    EXPECT_FALSE(lintClean(findings));
}

TEST(Lint, SelfGrantIsAWarning)
{
    WiringSnapshot snap = baseSnapshot();
    snap.windows = {{0, 0, aclBit(0) | aclBit(1), 1, -1}};
    auto findings = lintWiring(snap);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, LintRule::kAclSelfGrant);
    EXPECT_EQ(findings[0].severity, LintSeverity::kWarning);
    EXPECT_FALSE(lintClean(findings));
    EXPECT_TRUE(lintClean(findings, LintSeverity::kError));
}

TEST(Lint, SharedPeerGrantIsAWarning)
{
    WiringSnapshot snap = baseSnapshot();
    snap.windows = {{0, 0, aclBit(2), 1, -1}}; // grants shared 'libc'
    auto findings = lintWiring(snap);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, LintRule::kAclSharedPeer);
    EXPECT_EQ(findings[0].severity, LintSeverity::kWarning);
    EXPECT_NE(findings[0].message.find("libc"), std::string::npos);
}

TEST(Lint, OpenAclOverEmptyWindowIsInfo)
{
    WiringSnapshot snap = baseSnapshot();
    snap.windows = {{0, 0, aclBit(1), 0, -1}}; // open ACL, no ranges
    auto findings = lintWiring(snap);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, LintRule::kOpenWindowNoRanges);
    EXPECT_EQ(findings[0].severity, LintSeverity::kInfo);
    EXPECT_TRUE(lintClean(findings)); // info does not fail CI
}

TEST(Lint, StaleAclAfterAllRangesRemovedIsAWarning)
{
    WiringSnapshot snap = baseSnapshot();
    // Open ACL, zero live ranges, but three ranges existed once: the
    // ACL has outlived everything it ever covered.
    snap.windows = {{0, 0, aclBit(1), 0, -1, 3}};
    auto findings = lintWiring(snap);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, LintRule::kAclStaleGrant);
    EXPECT_EQ(findings[0].severity, LintSeverity::kWarning);
    EXPECT_EQ(findings[0].window, 0u);
    EXPECT_NE(findings[0].message.find("3"), std::string::npos);
    EXPECT_FALSE(lintClean(findings));
}

TEST(Lint, StaleAclSupersedesTheInfoFlavour)
{
    // The two empty-window rules are mutually exclusive per window.
    WiringSnapshot snap = baseSnapshot();
    snap.windows = {{0, 0, aclBit(1), 0, -1, 1},  // stale (had a range)
                    {1, 1, aclBit(0), 0, -1, 0}}; // odd (never had one)
    auto findings = lintWiring(snap);
    ASSERT_EQ(findings.size(), 2u);
    EXPECT_TRUE(hasRule(findings, LintRule::kAclStaleGrant));
    EXPECT_TRUE(hasRule(findings, LintRule::kOpenWindowNoRanges));
}

TEST(Lint, LiveRangesOrClosedAclAreNotStale)
{
    WiringSnapshot snap = baseSnapshot();
    // Ranges still live → fine; ACL already closed → fine.
    snap.windows = {{0, 0, aclBit(1), 2, -1, 5},
                    {1, 1, 0, 0, -1, 5}};
    auto findings = lintWiring(snap);
    EXPECT_FALSE(hasRule(findings, LintRule::kAclStaleGrant));
    EXPECT_FALSE(hasRule(findings, LintRule::kOpenWindowNoRanges));
}

TEST(Lint, PointerExportWithoutAnyWindowIsInfo)
{
    WiringSnapshot snap = baseSnapshot();
    snap.exports = {
        {"write", 0, CubicleKind::kIsolated, true},
        {"stat", 0, CubicleKind::kIsolated, true}, // same owner: dedup
        {"sync", 1, CubicleKind::kIsolated, false},
        {"memcpy", 2, CubicleKind::kShared, true}, // shared: exempt
    };
    auto findings = lintWiring(snap);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, LintRule::kPointerExportNoWindow);
    EXPECT_EQ(findings[0].severity, LintSeverity::kInfo);
    EXPECT_EQ(findings[0].cubicle, 0u);
}

TEST(Lint, PointerExportSatisfiedByAnyWindowGrant)
{
    WiringSnapshot snap = baseSnapshot();
    snap.exports = {{"write", 0, CubicleKind::kIsolated, true}};
    // app's window grants fs access to caller memory.
    snap.windows = {{0, 1, aclBit(0), 1, -1}};
    auto findings = lintWiring(snap);
    EXPECT_FALSE(hasRule(findings, LintRule::kPointerExportNoWindow));
}

TEST(Lint, FindingsAccumulateAcrossRules)
{
    WiringSnapshot snap = baseSnapshot();
    snap.cubicles[0].pkey = snap.sharedKey;
    snap.windows = {{0, 0, aclBit(0) | aclBit(2) | aclBit(9), 0, -1}};
    auto findings = lintWiring(snap);
    EXPECT_TRUE(hasRule(findings, LintRule::kIsolatedUsesSharedKey));
    EXPECT_TRUE(hasRule(findings, LintRule::kAclGhostPeer));
    EXPECT_TRUE(hasRule(findings, LintRule::kAclSelfGrant));
    EXPECT_TRUE(hasRule(findings, LintRule::kAclSharedPeer));
    EXPECT_TRUE(hasRule(findings, LintRule::kOpenWindowNoRanges));
    EXPECT_FALSE(lintClean(findings));
}

TEST(Lint, RuleAndSeverityNames)
{
    EXPECT_STREQ(verifier::lintRuleName(LintRule::kAclGhostPeer),
                 "acl-ghost-peer");
    EXPECT_STREQ(verifier::lintSeverityName(LintSeverity::kError),
                 "error");
}

// ----------------------------------------------------------------------
// Pointer-signature detection (Itanium-mangled function types)
// ----------------------------------------------------------------------

struct Pager {}; // class name contains a capital P — must not confuse

TEST(Lint, SignaturePointerDetection)
{
    EXPECT_FALSE(signaturePassesPointers(nullptr));
    EXPECT_FALSE(signaturePassesPointers(typeid(int(int)).name()));
    EXPECT_FALSE(signaturePassesPointers(typeid(void()).name()));
    EXPECT_TRUE(signaturePassesPointers(typeid(int(void *)).name()));
    EXPECT_TRUE(signaturePassesPointers(
        typeid(int(const char *, int)).name()));
    EXPECT_TRUE(signaturePassesPointers(typeid(void *(int)).name()));
    // Identifier characters are skipped: 'Pager' must not read as a
    // pointer code, while a real Pager* must.
    EXPECT_FALSE(signaturePassesPointers(typeid(int(Pager)).name()));
    EXPECT_TRUE(signaturePassesPointers(typeid(int(Pager *)).name()));
}

// ----------------------------------------------------------------------
// System-level entry point
// ----------------------------------------------------------------------

TEST(LintSystem, WellWiredToySystemIsClean)
{
    System sys;
    auto &producer = testing::addToy(sys, "producer");
    testing::addToy(sys, "consumer");
    testing::addToy(sys, "util", CubicleKind::kShared);
    producer.onInit([](testing::ToyComponent &self) {
        System &s = *self.sys();
        void *buf = s.heapAlloc(256);
        const Wid wid = s.windowInit();
        s.windowAdd(wid, buf, 256);
        s.windowOpen(wid, s.cidOf("consumer"));
    });
    sys.boot();

    auto findings = sys.lintWiring();
    EXPECT_TRUE(lintClean(findings));
    EXPECT_EQ(sys.stats().lintRuns(), 1u);
    EXPECT_EQ(sys.stats().lintFindings(), findings.size());
}

TEST(LintSystem, FlagsOverBroadAclAtRuntime)
{
    System sys;
    auto &producer = testing::addToy(sys, "producer");
    testing::addToy(sys, "util", CubicleKind::kShared);
    producer.onInit([](testing::ToyComponent &self) {
        System &s = *self.sys();
        void *buf = s.heapAlloc(64);
        const Wid wid = s.windowInit();
        s.windowAdd(wid, buf, 64);
        // Over-broad: grants itself and a shared cubicle.
        s.windowOpen(wid, self.self());
        s.windowOpen(wid, s.cidOf("util"));
    });
    sys.boot();

    auto findings = sys.lintWiring();
    EXPECT_TRUE(hasRule(findings, LintRule::kAclSelfGrant));
    EXPECT_TRUE(hasRule(findings, LintRule::kAclSharedPeer));
    EXPECT_FALSE(lintClean(findings));
    EXPECT_EQ(sys.stats().lintFindings(), findings.size());
}

TEST(LintSystem, StaleAclFlaggedAfterAddRemoveCycle)
{
    System sys;
    auto &producer = testing::addToy(sys, "producer");
    testing::addToy(sys, "consumer");
    producer.onInit([](testing::ToyComponent &self) {
        System &s = *self.sys();
        void *buf = s.heapAlloc(128);
        const Wid wid = s.windowInit();
        s.windowAdd(wid, buf, 128);
        s.windowOpen(wid, s.cidOf("consumer"));
        // The range goes away, the grant stays behind.
        s.windowRemove(wid, buf);
    });
    sys.boot();

    auto findings = sys.lintWiring();
    EXPECT_TRUE(hasRule(findings, LintRule::kAclStaleGrant));
    EXPECT_FALSE(hasRule(findings, LintRule::kOpenWindowNoRanges));
    EXPECT_FALSE(lintClean(findings));
}

TEST(LintSystem, RecycledWindowSlotStartsWithFreshHistory)
{
    System sys;
    auto &producer = testing::addToy(sys, "producer");
    testing::addToy(sys, "consumer");
    producer.onInit([](testing::ToyComponent &self) {
        System &s = *self.sys();
        void *buf = s.heapAlloc(128);
        // First lifetime: add a range, then destroy the window.
        const Wid first = s.windowInit();
        s.windowAdd(first, buf, 128);
        s.windowDestroy(first);
        // Second lifetime reuses the slot; its ACL never covered a
        // range in *this* lifetime, so it must lint as the info
        // flavour, not as stale.
        const Wid second = s.windowInit();
        ASSERT_EQ(second, first);
        s.windowOpen(second, s.cidOf("consumer"));
    });
    sys.boot();

    auto findings = sys.lintWiring();
    EXPECT_TRUE(hasRule(findings, LintRule::kOpenWindowNoRanges));
    EXPECT_FALSE(hasRule(findings, LintRule::kAclStaleGrant));
}

TEST(LintSystem, SnapshotReflectsExportsAndWindows)
{
    System sys;
    auto &fs = testing::addToy(sys, "fs");
    fs.onExports([](Exporter &exp, testing::ToyComponent &) {
        exp.fn<int(const char *)>("open", [](const char *) { return 3; });
        exp.fn<int(int)>("close", [](int) { return 0; });
    });
    sys.boot();

    auto snap = sys.wiringSnapshot();
    ASSERT_EQ(snap.cubicles.size(), 1u);
    EXPECT_EQ(snap.cubicles[0].name, "fs");
    ASSERT_EQ(snap.exports.size(), 2u);
    EXPECT_TRUE(snap.exports[0].passesPointers);  // open(const char*)
    EXPECT_FALSE(snap.exports[1].passesPointers); // close(int)
    EXPECT_TRUE(snap.windows.empty());
}

} // namespace
} // namespace cubicleos::core
