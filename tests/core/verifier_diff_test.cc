/**
 * @file
 * Differential properties: byte-grep verdicts versus the instruction-
 * aware verifier, over many seeded random images.
 *
 * The load-time contract is that the old conservative grep is always
 * at least as strict as the new verifier: every verifier finding is
 * located by the grep, so
 *
 *   - grep clean            ⟹ verifier accepts (no findings at all);
 *   - verifier rejects      ⟹ grep finds something;
 *   - finding offsets       ⊆ grep match offsets (and counts agree).
 *
 * Images are drawn from three distributions: pure random bytes (mostly
 * undecodable — exercises the conservative resynchronisation path),
 * well-formed benign streams, and benign streams with forbidden
 * sequences spliced in at random offsets, including page-straddling
 * ones.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/codescan.h"
#include "core/verifier/cfg.h"
#include "core/verifier/scanner.h"
#include "hw/prng.h"

namespace cubicleos::core {
namespace {

using verifier::FindingClass;
using verifier::VerifierReport;
using verifier::verifyImage;
using verifier::verifyImageFrom;

std::vector<uint8_t>
randomBytes(std::size_t size, uint64_t seed)
{
    std::vector<uint8_t> image(size);
    hw::Prng prng(seed);
    for (auto &b : image)
        b = static_cast<uint8_t>(prng.nextBelow(256));
    return image;
}

/** Checks the grep-is-stricter contract on one image. */
void
checkDifferential(const std::vector<uint8_t> &image, uint64_t seed)
{
    const auto grepHits = scanCodeImageAll(image);
    const VerifierReport report = verifyImage(image);

    // Every grep match is classified; nothing invented, nothing lost.
    ASSERT_EQ(report.findings.size(), grepHits.size()) << seed;
    for (std::size_t i = 0; i < grepHits.size(); ++i) {
        EXPECT_EQ(report.findings[i].offset, grepHits[i].offset) << seed;
        EXPECT_EQ(report.findings[i].mnemonic, grepHits[i].mnemonic)
            << seed;
    }

    if (!scanCodeImage(image).has_value()) {
        EXPECT_TRUE(report.accepted())
            << "verifier rejected a grep-clean image, seed " << seed;
    }
    if (!report.accepted()) {
        EXPECT_TRUE(scanCodeImage(image).has_value())
            << "verifier rejected what the grep missed, seed " << seed;
    }
}

TEST(VerifierDiff, RandomByteImages)
{
    for (uint64_t seed = 1; seed <= 64; ++seed)
        checkDifferential(randomBytes(4096, seed), seed);
}

TEST(VerifierDiff, BenignStreamImages)
{
    for (uint64_t seed = 1; seed <= 64; ++seed) {
        auto image = makeBenignImage(4096, seed);
        checkDifferential(image, seed);
        // Benign streams must sail through both scanners.
        EXPECT_FALSE(scanCodeImage(image).has_value()) << seed;
        EXPECT_TRUE(verifyImage(image).accepted()) << seed;
    }
}

TEST(VerifierDiff, BenignStreamsWithSplicedForbiddenSequences)
{
    const uint8_t sequences[][3] = {
        {0x0F, 0x01, 0xEF}, // wrpkru
        {0x0F, 0x05, 0x90}, // syscall (+pad)
        {0xCD, 0x80, 0x90}, // int80 (+pad)
        {0x0F, 0xAE, 0x28}, // xrstor [rax]
    };
    hw::Prng prng(0xD1FFu);
    for (uint64_t seed = 1; seed <= 64; ++seed) {
        auto image = makeBenignImage(4096, seed);
        const auto &seq = sequences[prng.nextBelow(4)];
        const auto at = static_cast<std::size_t>(
            prng.nextBelow(image.size() - 3));
        std::copy(seq, seq + 3, image.begin() + at);

        // The splice may land on a boundary (aligned), mid-instruction
        // (misaligned or embedded) — in every case the differential
        // contract must hold.
        checkDifferential(image, seed);
        EXPECT_TRUE(scanCodeImage(image).has_value()) << seed;
    }
}

// ----------------------------------------------------------------------
// Pass 1 vs pass 2: the reachability walk may only downgrade
// ----------------------------------------------------------------------

/**
 * Checks the pass-2 monotonicity contract on one image:
 *   - pass 2 rejects      ⟹ pass 1 rejects (never *more* strict);
 *   - pass 2 opaque       ⟹ classes identical to pass 1;
 *   - every pass-1 kAligned finding that pass 2 keeps rejecting keeps
 *     the kAligned class (reachable-aligned occurrences never soften
 *     into a weaker rejecting class).
 */
void
checkReachabilityMonotone(const std::vector<uint8_t> &image, uint64_t seed)
{
    const VerifierReport r1 = verifyImage(image);
    const VerifierReport r2 = verifyImageFrom(image, {});

    if (!r2.accepted()) {
        EXPECT_FALSE(r1.accepted())
            << "walk rejected what the sweep accepted, seed " << seed;
    }
    if (r2.cfg.opaque) {
        ASSERT_EQ(r2.findings.size(), r1.findings.size()) << seed;
        for (std::size_t i = 0; i < r1.findings.size(); ++i) {
            EXPECT_EQ(r2.findings[i].cls, r1.findings[i].cls) << seed;
            EXPECT_EQ(r2.findings[i].offset, r1.findings[i].offset)
                << seed;
        }
    }
    if (!r2.cfg.opaque) {
        for (const verifier::CodeFinding &f : r2.findings) {
            if (f.rejecting()) {
                EXPECT_EQ(f.cls, FindingClass::kAligned) << seed;
            }
        }
    }
}

TEST(VerifierDiff, ReachabilityMonotoneOnRandomBytes)
{
    // Random byte soup is almost always opaque: the property reduces
    // to "classes identical to pass 1".
    for (uint64_t seed = 1; seed <= 64; ++seed)
        checkReachabilityMonotone(randomBytes(4096, seed), seed);
}

TEST(VerifierDiff, ReachabilityMonotoneOnBenignStreams)
{
    for (uint64_t seed = 1; seed <= 64; ++seed) {
        auto image = makeBenignImage(4096, seed);
        checkReachabilityMonotone(image, seed);
        EXPECT_TRUE(verifyImageFrom(image, {}).accepted()) << seed;
    }
}

TEST(VerifierDiff, ReachabilityMonotoneOnSplicedStreams)
{
    const uint8_t sequences[][3] = {
        {0x0F, 0x01, 0xEF}, // wrpkru
        {0x0F, 0x05, 0x90}, // syscall (+pad)
        {0xCD, 0x80, 0x90}, // int80 (+pad)
        {0x0F, 0xAE, 0x28}, // xrstor [rax]
    };
    hw::Prng prng(0xCF6u);
    for (uint64_t seed = 1; seed <= 128; ++seed) {
        auto image = makeBenignImage(4096, seed);
        const auto &seq = sequences[prng.nextBelow(4)];
        const auto at = static_cast<std::size_t>(
            prng.nextBelow(image.size() - 3));
        std::copy(seq, seq + 3, image.begin() + at);
        checkReachabilityMonotone(image, seed);
    }
}

TEST(VerifierDiff, NopSledSpliceRejectsUnderBothPasses)
{
    // Inside a nop sled every byte is a reachable boundary: a spliced
    // forbidden sequence must fail pass 1 AND pass 2 wherever it lands
    // before the first ret.
    hw::Prng prng(0xABCDu);
    for (int round = 0; round < 32; ++round) {
        std::vector<uint8_t> image(2048, 0x90);
        image.back() = 0xC3;
        const auto at =
            static_cast<std::size_t>(prng.nextBelow(image.size() - 4));
        image[at] = 0x0F;
        image[at + 1] = 0x01;
        image[at + 2] = 0xEF;
        EXPECT_FALSE(verifyImage(image).accepted()) << at;
        EXPECT_FALSE(verifyImageFrom(image, {}).accepted()) << at;
    }
}

TEST(VerifierDiff, RealComponentSnapshotsAcceptedWithFullDecodeCoverage)
{
    // The loader's synthesized component images, at every size the
    // in-tree deployments use: both passes accept, and the sweep
    // decodes every byte.
    for (uint64_t seed = 1; seed <= 16; ++seed) {
        for (std::size_t pages = 1; pages <= 4; ++pages) {
            auto image = makeBenignImage(pages * 4096, seed);
            const VerifierReport r = verifyImageFrom(image, {});
            EXPECT_TRUE(r.accepted()) << seed;
            EXPECT_FALSE(r.cfg.opaque) << seed;
            EXPECT_DOUBLE_EQ(r.decodeCoverage(), 1.0) << seed;
        }
    }
}

TEST(VerifierDiff, PageStraddlingSequencesAreAlwaysCaught)
{
    // Forbidden sequence straddling the 4 KiB page boundary of a nop
    // sled: both scanners must find it, and the verifier must reject
    // (every nop offset is an instruction boundary).
    for (std::size_t lead = 1; lead <= 2; ++lead) {
        std::vector<uint8_t> image(8192, 0x90);
        const std::size_t at = 4096 - lead;
        image[at] = 0x0F;
        image[at + 1] = 0x01;
        image[at + 2] = 0xEF;

        auto hit = scanCodeImage(image);
        ASSERT_TRUE(hit.has_value()) << lead;
        EXPECT_EQ(hit->offset, at);

        VerifierReport report = verifyImage(image);
        EXPECT_FALSE(report.accepted()) << lead;
        ASSERT_EQ(report.findings.size(), 1u);
        EXPECT_EQ(report.findings[0].offset, at);
    }
}

} // namespace
} // namespace cubicleos::core
