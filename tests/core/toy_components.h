/**
 * @file
 * Configurable toy components for core runtime tests.
 */

#ifndef CUBICLEOS_TESTS_CORE_TOY_COMPONENTS_H_
#define CUBICLEOS_TESTS_CORE_TOY_COMPONENTS_H_

#include <functional>
#include <string>
#include <utility>

#include "core/system.h"

namespace cubicleos::core::testing {

/**
 * A component whose spec, exports and init are supplied by the test.
 */
class ToyComponent : public Component {
  public:
    explicit ToyComponent(std::string name,
                          CubicleKind kind = CubicleKind::kIsolated)
        : name_(std::move(name)), kind_(kind)
    {}

    ComponentSpec spec() const override
    {
        ComponentSpec s;
        s.name = name_;
        s.kind = kind_;
        s.image = image_;
        s.entryPoints = entryPoints_;
        s.indirectTables = indirectTables_;
        return s;
    }

    void registerExports(Exporter &exp) override
    {
        if (exportsFn_)
            exportsFn_(exp, *this);
    }

    void init() override
    {
        if (initFn_)
            initFn_(*this);
    }

    ToyComponent &withImage(std::vector<uint8_t> image)
    {
        image_ = std::move(image);
        return *this;
    }

    ToyComponent &withEntryPoints(std::vector<std::size_t> entries)
    {
        entryPoints_ = std::move(entries);
        return *this;
    }

    ToyComponent &
    withIndirectTables(std::vector<verifier::EntryTable> tables)
    {
        indirectTables_ = std::move(tables);
        return *this;
    }

    ToyComponent &
    onExports(std::function<void(Exporter &, ToyComponent &)> f)
    {
        exportsFn_ = std::move(f);
        return *this;
    }

    ToyComponent &onInit(std::function<void(ToyComponent &)> f)
    {
        initFn_ = std::move(f);
        return *this;
    }

  private:
    std::string name_;
    CubicleKind kind_;
    std::vector<uint8_t> image_;
    std::vector<std::size_t> entryPoints_;
    std::vector<verifier::EntryTable> indirectTables_;
    std::function<void(Exporter &, ToyComponent &)> exportsFn_;
    std::function<void(ToyComponent &)> initFn_;
};

/** Adds a fresh ToyComponent to @p sys and returns a reference. */
inline ToyComponent &
addToy(System &sys, const std::string &name,
       CubicleKind kind = CubicleKind::kIsolated)
{
    return static_cast<ToyComponent &>(
        sys.addComponent(std::make_unique<ToyComponent>(name, kind)));
}

} // namespace cubicleos::core::testing

#endif // CUBICLEOS_TESTS_CORE_TOY_COMPONENTS_H_
