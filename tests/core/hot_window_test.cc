/**
 * @file
 * Hot-window tests (paper §8's "window-specific tags" proposal):
 * dedicated MPK keys per window, eager tagging, PKRU-mask grants and
 * revocation, key exhaustion.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "core/system.h"
#include "tests/core/toy_components.h"

namespace cubicleos::core {
namespace {

using testing::ToyComponent;
using testing::addToy;

class HotWindowTest : public ::testing::Test {
  protected:
    void boot()
    {
        SystemConfig cfg;
        cfg.numPages = 2048;
        sys = std::make_unique<System>(cfg);
        addToy(*sys, "owner");
        addToy(*sys, "peer");
        addToy(*sys, "spy");
        sys->boot();
        owner = sys->cidOf("owner");
        peer = sys->cidOf("peer");
        spy = sys->cidOf("spy");
        sys->runAs(owner, [&] {
            buf = static_cast<char *>(sys->heapAlloc(64));
            wid = sys->windowInit();
            sys->windowSetHot(wid);
            sys->windowAdd(wid, buf, 64);
            sys->windowOpen(wid, peer);
        });
    }

    std::unique_ptr<System> sys;
    Cid owner{}, peer{}, spy{};
    char *buf = nullptr;
    Wid wid{};
};

TEST_F(HotWindowTest, AclMemberAccessesWithoutTraps)
{
    boot();
    sys->stats().reset();
    sys->runAs(peer, [&] {
        for (int i = 0; i < 100; ++i)
            sys->touch(buf, 64, hw::Access::kWrite);
    });
    // The dedicated key is in the peer's PKRU: zero trap-and-map.
    EXPECT_EQ(sys->stats().traps(), 0u);
    EXPECT_EQ(sys->stats().retags(), 0u);
}

TEST_F(HotWindowTest, OwnerAndPeerInterleaveWithoutPingPong)
{
    boot();
    sys->stats().reset();
    for (int i = 0; i < 20; ++i) {
        sys->runAs(owner, [&] {
            sys->touch(buf, 64, hw::Access::kWrite);
        });
        sys->runAs(peer, [&] {
            sys->touch(buf, 64, hw::Access::kRead);
        });
    }
    EXPECT_EQ(sys->stats().retags(), 0u)
        << "hot windows must not retag per access";
}

TEST_F(HotWindowTest, NonAclCubicleStillFaults)
{
    boot();
    sys->runAs(spy, [&] {
        EXPECT_THROW(sys->touch(buf, 64, hw::Access::kRead),
                     hw::CubicleFault);
    });
}

TEST_F(HotWindowTest, CloseRevokesEagerly)
{
    boot();
    sys->runAs(peer,
               [&] { sys->touch(buf, 8, hw::Access::kRead); });
    sys->runAs(owner, [&] { sys->windowClose(wid, peer); });
    // Unlike lazy windows, hot windows revoke through the PKRU mask:
    // no owner reclaim needed before the peer faults.
    sys->runAs(peer, [&] {
        EXPECT_THROW(sys->touch(buf, 8, hw::Access::kRead),
                     hw::CubicleFault);
    });
}

TEST_F(HotWindowTest, DestroyReturnsPagesToOwner)
{
    boot();
    sys->runAs(owner, [&] {
        sys->windowDestroy(wid);
        EXPECT_NO_THROW(sys->touch(buf, 64, hw::Access::kWrite));
    });
    sys->runAs(peer, [&] {
        EXPECT_THROW(sys->touch(buf, 64, hw::Access::kRead),
                     hw::CubicleFault);
    });
}

TEST_F(HotWindowTest, OnlyOwnerCanPromote)
{
    boot();
    sys->runAs(peer, [&] {
        EXPECT_THROW(sys->windowSetHot(wid), WindowError);
    });
}

TEST(HotWindowKeys, ExhaustionIsReported)
{
    SystemConfig cfg;
    cfg.numPages = 4096;
    cfg.stackPages = 2;
    System sys(cfg);
    // 10 isolated cubicles consume keys 2..11; 0 monitor, 1 shared.
    for (int i = 0; i < 10; ++i)
        addToy(sys, "c" + std::to_string(i));
    sys.boot();
    sys.runAs(sys.cidOf("c0"), [&] {
        char *p = static_cast<char *>(sys.heapAlloc(32));
        // Keys 12..15 remain: four hot windows fit, the fifth throws.
        for (int i = 0; i < 4; ++i) {
            const Wid w = sys.windowInit();
            sys.windowSetHot(w);
            sys.windowAdd(w, p, 32);
        }
        const Wid w5 = sys.windowInit();
        EXPECT_THROW(sys.windowSetHot(w5), WindowError);
    });
}

} // namespace
} // namespace cubicleos::core
