/**
 * @file
 * Lock-inversion regression suite for the debug lockdep checker
 * (core/locking.cc).
 *
 * The static thread-safety annotations cannot express acquisition
 * *order* in a form gcc checks, so these death tests are the guard
 * that the documented hierarchy stays enforced at runtime: a seeded
 * pageMutex_→windowMutex_ inversion through a monitor test hook,
 * per-cubicle locks chained against cid order, and the fault path's
 * shared-vs-exclusive windowMutex_ re-entry. Positive cases pin down
 * that the legal orders stay silent.
 *
 * Death tests fork (threadsafe style), so the abort happens in a
 * throwaway child and the suite runs fine under the sanitizer presets.
 */

#include <gtest/gtest.h>

#include "core/locking.h"
#include "core/system.h"
#include "tests/core/toy_components.h"

namespace cubicleos::core {
namespace {

using testing::addToy;

class LockdepTest : public ::testing::Test {
  protected:
    void SetUp() override
    {
        ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
        if (!lockdep::kEnabled)
            GTEST_SKIP() << "built without CUBICLE_LOCKDEP";
    }
};

TEST_F(LockdepTest, MonitorInversionHookAborts)
{
    SystemConfig cfg;
    cfg.numPages = 256;
    System sys(cfg);
    addToy(sys, "foo");
    sys.boot();
    // The seeded inversion: pageMutex_ (leaf) before windowMutex_.
    EXPECT_DEATH(sys.monitor().debugAcquirePageThenWindowForTest(),
                 "rank inversion");
}

TEST_F(LockdepTest, UnguardedWindowTableLookupAborts)
{
    SystemConfig cfg;
    cfg.numPages = 256;
    System sys(cfg);
    addToy(sys, "foo");
    sys.boot();
    // The loader bound the cubicle's WindowTable to windowMutex_; a
    // lookup without holding it is the cross-object guard violation
    // the static analysis cannot see (DESIGN.md §11).
    EXPECT_DEATH(
        sys.monitor().debugWindowLookupUnlockedForTest(sys.cidOf("foo")),
        "WindowTable accessed without its guard");
}

TEST_F(LockdepTest, AssertHeldReportsBothModes)
{
    SharedMutex mu(LockRank::kWindow, "test.window");

    EXPECT_FALSE(lockdep::isHeld(&mu));
    mu.lockShared();
    EXPECT_TRUE(lockdep::isHeld(&mu)); // shared hold satisfies the guard
    lockdep::assertHeld(&mu, "test state"); // must not abort
    mu.unlockShared();

    mu.lock();
    EXPECT_TRUE(lockdep::isHeld(&mu));
    lockdep::assertHeld(&mu, "test state");
    mu.unlock();
    EXPECT_FALSE(lockdep::isHeld(&mu));

    EXPECT_DEATH(lockdep::assertHeld(&mu, "test state"),
                 "accessed without its guard");
}

TEST_F(LockdepTest, PerCubicleLocksOutOfCidOrderAbort)
{
    SystemConfig cfg;
    cfg.numPages = 256;
    System sys(cfg);
    addToy(sys, "foo");
    addToy(sys, "bar");
    sys.boot();
    const Cid lo = sys.cidOf("foo");
    const Cid hi = sys.cidOf("bar");
    ASSERT_LT(lo, hi);
    Cubicle &first = sys.monitor().cubicle(lo);
    Cubicle &second = sys.monitor().cubicle(hi);

    // Increasing cid order is the documented discipline: silent.
    {
        MutexLock a(first.stackMu);
        MutexLock b(second.stackMu);
        EXPECT_EQ(lockdep::heldCount(), 2u);
    }
    EXPECT_EQ(lockdep::heldCount(), 0u);

    // Decreasing cid order is the deadlock-capable chain: fatal.
    EXPECT_DEATH(
        {
            MutexLock a(second.stackMu);
            MutexLock b(first.stackMu);
        },
        "out of key order");
}

TEST_F(LockdepTest, SharedMutexReentryAborts)
{
    SharedMutex mu(LockRank::kWindow, "test.window");

    // Shared-then-exclusive re-entry: the upgrade self-deadlocks on a
    // real shared_mutex, so lockdep must refuse before blocking.
    EXPECT_DEATH(
        {
            mu.lockShared();
            mu.lock();
        },
        "re-entrant");

    // Shared-then-shared re-entry deadlocks behind a queued writer:
    // equally fatal.
    EXPECT_DEATH(
        {
            mu.lockShared();
            mu.lockShared();
        },
        "re-entrant");

    // Sequential (non-nested) holds in both modes are legal.
    mu.lockShared();
    mu.unlockShared();
    mu.lock();
    mu.unlock();
    EXPECT_EQ(lockdep::heldCount(), 0u);
}

TEST_F(LockdepTest, RankInversionOnRawWrappersAborts)
{
    Mutex low(LockRank::kLoader, "test.loader");
    Mutex high(LockRank::kPage, "test.page");

    // Hierarchy order (loader → page), including a skipped level, is
    // silent; the reverse aborts with the rank names in the report.
    {
        MutexLock a(low);
        MutexLock b(high);
    }
    EXPECT_DEATH(
        {
            MutexLock a(high);
            MutexLock b(low);
        },
        "rank inversion");
}

TEST_F(LockdepTest, LegalFullChainStaysSilent)
{
    // The deepest legal chain in the hierarchy: loader → verify-cache
    // → window → cubicle → page.
    Mutex loader(LockRank::kLoader, "t.loader");
    SharedMutex cacheMu(LockRank::kVerifyCache, "t.cache");
    SharedMutex window(LockRank::kWindow, "t.window");
    Mutex cub(LockRank::kCubicle, "t.cubicle", /*key=*/3);
    Mutex page(LockRank::kPage, "t.page");

    MutexLock a(loader);
    ReaderLock b(cacheMu);
    WriterLock c(window);
    MutexLock d(cub);
    MutexLock e(page);
    EXPECT_EQ(lockdep::heldCount(), 5u);
}

TEST_F(LockdepTest, OutOfOrderReleaseIsTolerated)
{
    // Hand-over-hand style release (not LIFO) must not confuse the
    // held stack.
    Mutex a(LockRank::kLoader, "t.a");
    Mutex b(LockRank::kWindow, "t.b");
    a.lock();
    b.lock();
    a.unlock();
    EXPECT_EQ(lockdep::heldCount(), 1u);
    b.unlock();
    EXPECT_EQ(lockdep::heldCount(), 0u);
}

} // namespace
} // namespace cubicleos::core
