/**
 * @file
 * Deliberately broken TU for the thread-safety-analysis gate
 * (tests/tsa_lint.cmake). NOT compiled into any target.
 *
 * Each function below violates one annotation from core/locking.h in a
 * way clang's -Wthread-safety must reject. The tsa lint compiles this
 * file expecting FAILURE: if it ever compiles cleanly under
 * -Werror=thread-safety, the annotation macros have gone no-op under
 * clang (or the flags were dropped) and the whole static layer is
 * silently off.
 */

#include "core/locking.h"

namespace cubicleos::core {

struct Guarded {
    Mutex mu{LockRank::kWindow, "seed.mu"};
    int counter GUARDED_BY(mu) = 0;

    void requiresHeld() REQUIRES(mu) { ++counter; }
};

// Violation 1: writing a GUARDED_BY field with no lock held.
int
writeWithoutLock(Guarded &g)
{
    g.counter = 42; // -Wthread-safety: writing without holding g.mu
    return g.counter;
}

// Violation 2: calling a REQUIRES function without the capability.
void
callWithoutLock(Guarded &g)
{
    g.requiresHeld(); // -Wthread-safety: requires g.mu
}

// Violation 3: releasing a lock that was never acquired in scope.
void
unbalancedRelease(Guarded &g)
{
    g.mu.unlock(); // -Wthread-safety: releasing un-held mutex
}

} // namespace cubicleos::core
