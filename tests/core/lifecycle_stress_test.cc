/**
 * @file
 * Threaded lifecycle tests: a cubicle is destroyed while other threads
 * are inside it or racing to enter it. Runs under both the `lifecycle`
 * and `concurrency` labels so the TSan preset exercises the quiesce
 * handshake (Cubicle::life / Cubicle::inFlight, seq_cst) under real
 * contention.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/system.h"
#include "tests/core/toy_components.h"

namespace cubicleos::core {
namespace {

using testing::addToy;

SystemConfig
fullConfig()
{
    SystemConfig cfg;
    cfg.mode = IsolationMode::kFull;
    return cfg;
}

/**
 * A thread busy inside a cubicle is unwound by its next checked
 * operation once destroy marks the cubicle draining — the quiesce
 * terminates even though the victim never returns voluntarily.
 */
TEST(LifecycleStressTest, MidCallUnwindTerminatesQuiesce)
{
    System sys(fullConfig());
    std::atomic<bool> entered{false};

    addToy(sys, "caller");
    addToy(sys, "victim")
        .onExports([&entered](Exporter &exp, auto &me) {
            exp.fn<int()>("spin", [&entered, &me]() -> int {
                // Loops forever unless the lifecycle unwinds it: each
                // heap round trip is a checked monitor operation.
                for (;;) {
                    void *p = me.sys()->heapAlloc(64);
                    me.sys()->heapFree(p);
                    entered.store(true);
                }
            });
        });
    sys.boot();

    auto spin = sys.resolve<int()>("victim", "spin");
    const Cid caller = sys.cidOf("caller");

    std::atomic<bool> unwound{false};
    std::thread t([&] {
        try {
            sys.runAs(caller, [&] { spin(); });
        } catch (const PeerFault &) {
            unwound.store(true);
        }
    });

    while (!entered.load())
        std::this_thread::yield();
    const std::size_t reclaimed = sys.destroyComponent("victim");
    t.join();

    EXPECT_TRUE(unwound.load());
    EXPECT_GT(reclaimed, 0u);
    EXPECT_GE(sys.stats().unwoundCalls(), 1u);
    EXPECT_EQ(sys.monitor().lifeState(sys.cidOf("victim")),
              LifeState::kDead);
}

/**
 * Destroy/restart churn against concurrent callers: every call either
 * completes normally or unwinds with PeerFault — never a crash, a
 * deadlock, or a corrupted counter — and the final generation matches
 * the number of completed cycles.
 */
TEST(LifecycleStressTest, DestroyRestartChurnUnderConcurrentCallers)
{
    constexpr int kCallers = 3;
    constexpr int kCallsPerThread = 300;
    constexpr int kCycles = 20;

    System sys(fullConfig());
    addToy(sys, "svc").onExports([](Exporter &exp, auto &) {
        exp.fn<int(int)>("work", [](int x) { return x + 1; });
    });
    for (int i = 0; i < kCallers; ++i)
        addToy(sys, "caller" + std::to_string(i));
    sys.boot();

    auto work = sys.resolve<int(int)>("svc", "work");
    const Cid svc = sys.cidOf("svc");

    std::atomic<uint64_t> completed{0};
    std::atomic<uint64_t> refused{0};
    std::vector<std::thread> threads;
    threads.reserve(kCallers);
    for (int i = 0; i < kCallers; ++i) {
        const Cid me = sys.cidOf("caller" + std::to_string(i));
        threads.emplace_back([&, me] {
            for (int c = 0; c < kCallsPerThread; ++c) {
                try {
                    sys.runAs(me, [&] {
                        if (work(c) != c + 1)
                            std::abort(); // corrupted result
                    });
                    completed.fetch_add(1);
                } catch (const PeerFault &) {
                    refused.fetch_add(1);
                }
            }
        });
    }

    for (int r = 0; r < kCycles; ++r) {
        sys.destroyComponent("svc");
        sys.restartComponent("svc");
    }
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(completed.load() + refused.load(),
              static_cast<uint64_t>(kCallers) * kCallsPerThread);
    EXPECT_EQ(sys.stats().destroys(), static_cast<uint64_t>(kCycles));
    EXPECT_EQ(sys.stats().restarts(), static_cast<uint64_t>(kCycles));
    EXPECT_EQ(sys.monitor().lifeGeneration(svc),
              static_cast<uint64_t>(kCycles));

    // The survivor is fully functional after the churn.
    sys.runAs(sys.cidOf("caller0"), [&] { EXPECT_EQ(work(1), 2); });
}

} // namespace
} // namespace cubicleos::core
