/**
 * @file
 * Tests for the load-time verifier: the x86-64 length decoder, the
 * linear-sweep classification of forbidden sequences, and the loader
 * integration (reject vs report-only, reports and stats).
 */

#include <gtest/gtest.h>

#include "core/codescan.h"
#include "core/system.h"
#include "core/verifier/insn.h"
#include "core/verifier/scanner.h"
#include "tests/core/toy_components.h"

namespace cubicleos::core {
namespace {

using verifier::FindingClass;
using verifier::Insn;
using verifier::VerifierReport;
using verifier::decodeAt;
using verifier::verifyImage;

std::vector<uint8_t>
bytes(std::initializer_list<int> list)
{
    std::vector<uint8_t> v;
    for (int b : list)
        v.push_back(static_cast<uint8_t>(b));
    return v;
}

// ----------------------------------------------------------------------
// Instruction-length decoder
// ----------------------------------------------------------------------

TEST(InsnDecode, SingleByteOpcodes)
{
    auto image = bytes({0x90, 0xC3, 0x55, 0x5D, 0xC9});
    for (std::size_t pos = 0; pos < image.size(); ++pos) {
        auto insn = decodeAt(image, pos);
        ASSERT_TRUE(insn.has_value()) << pos;
        EXPECT_EQ(insn->length, 1u) << pos;
        EXPECT_EQ(insn->payloadOff, 1u) << pos;
        EXPECT_FALSE(insn->forbidden);
    }
}

TEST(InsnDecode, RexMovRegReg)
{
    auto image = bytes({0x48, 0x89, 0xC3}); // mov rbx, rax
    auto insn = decodeAt(image, 0);
    ASSERT_TRUE(insn.has_value());
    EXPECT_EQ(insn->length, 3u);
    EXPECT_EQ(insn->payloadOff, 3u); // no data bytes
}

TEST(InsnDecode, MovImm32)
{
    auto image = bytes({0xB8, 0x11, 0x22, 0x33, 0x44}); // mov eax, imm32
    auto insn = decodeAt(image, 0);
    ASSERT_TRUE(insn.has_value());
    EXPECT_EQ(insn->length, 5u);
    EXPECT_EQ(insn->payloadOff, 1u); // imm32 is payload
}

TEST(InsnDecode, MovImm64UnderRexW)
{
    // movabs rax, imm64: REX.W widens the B8 immediate to 8 bytes.
    auto image = bytes({0x48, 0xB8, 1, 2, 3, 4, 5, 6, 7, 8});
    auto insn = decodeAt(image, 0);
    ASSERT_TRUE(insn.has_value());
    EXPECT_EQ(insn->length, 10u);
    EXPECT_EQ(insn->payloadOff, 2u);
}

TEST(InsnDecode, OperandSizePrefixNarrowsImmediate)
{
    auto image = bytes({0x66, 0xB8, 0x11, 0x22}); // mov ax, imm16
    auto insn = decodeAt(image, 0);
    ASSERT_TRUE(insn.has_value());
    EXPECT_EQ(insn->length, 4u);
    EXPECT_EQ(insn->payloadOff, 2u);
}

TEST(InsnDecode, ModRmDisp8AndDisp32)
{
    auto d8 = bytes({0x48, 0x8B, 0x45, 0x08}); // mov rax, [rbp+8]
    auto insn = decodeAt(d8, 0);
    ASSERT_TRUE(insn.has_value());
    EXPECT_EQ(insn->length, 4u);
    EXPECT_EQ(insn->payloadOff, 3u); // disp8 is payload

    auto d32 = bytes({0x48, 0x8B, 0x80, 1, 2, 3, 4}); // mov rax,[rax+d32]
    insn = decodeAt(d32, 0);
    ASSERT_TRUE(insn.has_value());
    EXPECT_EQ(insn->length, 7u);
    EXPECT_EQ(insn->payloadOff, 3u);
}

TEST(InsnDecode, SibAndRipRelative)
{
    auto sib = bytes({0x48, 0x8B, 0x04, 0x24}); // mov rax, [rsp]
    auto insn = decodeAt(sib, 0);
    ASSERT_TRUE(insn.has_value());
    EXPECT_EQ(insn->length, 4u);
    EXPECT_EQ(insn->payloadOff, 4u); // modrm+sib are structural

    auto rip = bytes({0x48, 0x8B, 0x05, 1, 2, 3, 4}); // mov rax,[rip+d32]
    insn = decodeAt(rip, 0);
    ASSERT_TRUE(insn.has_value());
    EXPECT_EQ(insn->length, 7u);
    EXPECT_EQ(insn->payloadOff, 3u);

    // SIB with base 101 and mod 00 carries a disp32.
    auto sibd = bytes({0x48, 0x8B, 0x04, 0x25, 1, 2, 3, 4});
    insn = decodeAt(sibd, 0);
    ASSERT_TRUE(insn.has_value());
    EXPECT_EQ(insn->length, 8u);
    EXPECT_EQ(insn->payloadOff, 4u);
}

TEST(InsnDecode, DirectBranches)
{
    auto jmp8 = bytes({0xEB, 0x05});
    auto insn = decodeAt(jmp8, 0);
    ASSERT_TRUE(insn.has_value());
    EXPECT_TRUE(insn->isDirectBranch);
    EXPECT_EQ(insn->branchRel, 5);

    auto jcc8 = bytes({0x74, 0xFE}); // je -2
    insn = decodeAt(jcc8, 0);
    ASSERT_TRUE(insn.has_value());
    EXPECT_TRUE(insn->isDirectBranch);
    EXPECT_EQ(insn->branchRel, -2);

    auto call = bytes({0xE8, 0x10, 0x00, 0x00, 0x00});
    insn = decodeAt(call, 0);
    ASSERT_TRUE(insn.has_value());
    EXPECT_EQ(insn->length, 5u);
    EXPECT_TRUE(insn->isDirectBranch);
    EXPECT_EQ(insn->branchRel, 16);

    auto jcc32 = bytes({0x0F, 0x84, 0x00, 0x01, 0x00, 0x00});
    insn = decodeAt(jcc32, 0);
    ASSERT_TRUE(insn.has_value());
    EXPECT_EQ(insn->length, 6u);
    EXPECT_EQ(insn->branchRel, 256);
}

TEST(InsnDecode, ForbiddenInstructions)
{
    struct Case {
        std::vector<uint8_t> image;
        const char *mnemonic;
    };
    const Case cases[] = {
        {bytes({0x0F, 0x01, 0xEF}), "wrpkru"},
        {bytes({0x0F, 0x01, 0xD1}), "xsetbv"},
        {bytes({0x0F, 0x05}), "syscall"},
        {bytes({0x0F, 0x34}), "sysenter"},
        {bytes({0xCD, 0x80}), "int80"},
        {bytes({0x0F, 0xAE, 0x28}), "xrstor"},
    };
    for (const Case &c : cases) {
        auto insn = decodeAt(c.image, 0);
        ASSERT_TRUE(insn.has_value()) << c.mnemonic;
        EXPECT_TRUE(insn->forbidden) << c.mnemonic;
        EXPECT_STREQ(insn->mnemonic, c.mnemonic);
    }
}

TEST(InsnDecode, BenignNeighboursOfForbiddenEncodings)
{
    // int 0x21 stays inside the cubicle; only vector 0x80 is the
    // legacy syscall gate.
    auto int21 = bytes({0xCD, 0x21});
    auto insn = decodeAt(int21, 0);
    ASSERT_TRUE(insn.has_value());
    EXPECT_FALSE(insn->forbidden);

    // lfence: register form of the 0F AE group, reg field 5.
    auto lfence = bytes({0x0F, 0xAE, 0xE8});
    insn = decodeAt(lfence, 0);
    ASSERT_TRUE(insn.has_value());
    EXPECT_FALSE(insn->forbidden);
    EXPECT_STREQ(insn->mnemonic, "fence");

    // xsave (reg field 4, memory form) is allowed.
    auto xsave = bytes({0x0F, 0xAE, 0x20});
    insn = decodeAt(xsave, 0);
    ASSERT_TRUE(insn.has_value());
    EXPECT_FALSE(insn->forbidden);
}

TEST(InsnDecode, UnsupportedBytesAreUndecodable)
{
    // 0x06 (push es) is invalid in 64-bit mode; 0F 01 with a non-
    // wrpkru/xsetbv ModRM is outside the supported subset.
    EXPECT_FALSE(decodeAt(bytes({0x06}), 0).has_value());
    EXPECT_FALSE(decodeAt(bytes({0x0F, 0x01, 0x00}), 0).has_value());
    // Register forms of 0F AE below reg 5 (ldmxcsr etc.).
    EXPECT_FALSE(decodeAt(bytes({0x0F, 0xAE, 0xC0}), 0).has_value());
}

TEST(InsnDecode, TruncationIsUndecodable)
{
    EXPECT_FALSE(decodeAt(bytes({0xB8, 0x01}), 0).has_value());
    EXPECT_FALSE(decodeAt(bytes({0x48}), 0).has_value());
    EXPECT_FALSE(decodeAt(bytes({0x48, 0x8B, 0x05, 1, 2}), 0).has_value());
    EXPECT_FALSE(decodeAt(bytes({0x90}), 1).has_value()); // past the end
}

TEST(InsnDecode, OverlongPrefixRunIsUndecodable)
{
    std::vector<uint8_t> image(16, 0x66);
    image.push_back(0x90);
    EXPECT_FALSE(decodeAt(image, 0).has_value());
}

// ----------------------------------------------------------------------
// Linear-sweep classification
// ----------------------------------------------------------------------

TEST(Verifier, CleanImageAccepted)
{
    auto image = makeBenignImage(4096, 7);
    VerifierReport report = verifyImage(image);
    EXPECT_TRUE(report.accepted());
    EXPECT_TRUE(report.findings.empty());
    EXPECT_EQ(report.undecodableBytes, 0u);
    EXPECT_DOUBLE_EQ(report.decodeCoverage(), 1.0);
    EXPECT_GT(report.insnCount, 0u);
}

TEST(Verifier, AlignedWrpkruRejected)
{
    auto image = bytes({0x90, 0x0F, 0x01, 0xEF, 0x90});
    VerifierReport report = verifyImage(image);
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings[0].cls, FindingClass::kAligned);
    EXPECT_EQ(report.findings[0].offset, 1u);
    EXPECT_FALSE(report.accepted());
    ASSERT_NE(report.firstRejecting(), nullptr);
    EXPECT_EQ(report.firstRejecting()->mnemonic, "wrpkru");
}

TEST(Verifier, EmbeddedInImmediateIsReportOnly)
{
    // mov eax, 0x90EF010F: the wrpkru bytes live entirely inside the
    // imm32 payload — a compiler constant, not reachable code.
    auto image = bytes({0xB8, 0x0F, 0x01, 0xEF, 0x90, 0xC3});
    VerifierReport report = verifyImage(image);
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings[0].cls, FindingClass::kEmbedded);
    EXPECT_TRUE(report.accepted());
    EXPECT_EQ(report.embeddedCount(), 1u);
    EXPECT_EQ(report.rejectingCount(), 0u);
}

TEST(Verifier, MisalignedSpanningInstructionsRejected)
{
    // mov al, 0x0F ; add eax, imm32 — the grep's "0F 05" spans the
    // first instruction's immediate and the second's opcode byte, so
    // jumping one byte in executes syscall.
    auto image = bytes({0xB0, 0x0F, 0x05, 0x11, 0x22, 0x33, 0x44});
    VerifierReport report = verifyImage(image);
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings[0].offset, 1u);
    EXPECT_EQ(report.findings[0].cls, FindingClass::kMisalignedReachable);
    EXPECT_FALSE(report.accepted());
}

TEST(Verifier, MatchInUndecodableRegionRejected)
{
    // Truncated xrstor memory form (mod 2 needs a disp32 that is not
    // there): the grep matches, the decoder cannot prove anything, so
    // the match is conservatively rejected.
    auto image = bytes({0x90, 0x0F, 0xAE, 0xA8});
    VerifierReport report = verifyImage(image);
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings[0].cls, FindingClass::kMisalignedReachable);
    EXPECT_FALSE(report.accepted());
    EXPECT_GT(report.undecodableBytes, 0u);
    EXPECT_LT(report.decodeCoverage(), 1.0);
}

TEST(Verifier, BenignAliasOfMaskedPatternIsReportOnly)
{
    // lfence matches the masked xrstor grep pattern but decodes to a
    // benign instruction at the match offset.
    auto image = bytes({0x0F, 0xAE, 0xE8, 0xC3});
    VerifierReport report = verifyImage(image);
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings[0].cls, FindingClass::kEmbedded);
    EXPECT_TRUE(report.accepted());
}

TEST(Verifier, BranchTargetingEmbeddedMatchUpgradesToReject)
{
    // jmp +6 lands exactly on the wrpkru bytes hidden in the second
    // mov's immediate: reachable after all.
    auto hostile = bytes({0xEB, 0x06,                    // jmp → 8
                          0xB8, 0x00, 0x00, 0x00, 0x00,  // mov eax, 0
                          0xB8, 0x0F, 0x01, 0xEF, 0x90,  // imm32 hides wrpkru
                          0xC3});
    VerifierReport report = verifyImage(hostile);
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings[0].offset, 8u);
    EXPECT_EQ(report.findings[0].cls, FindingClass::kMisalignedReachable);
    EXPECT_FALSE(report.accepted());

    // Without the jump the same bytes stay report-only.
    auto benign = std::vector<uint8_t>(hostile.begin() + 2, hostile.end());
    report = verifyImage(benign);
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings[0].cls, FindingClass::kEmbedded);
    EXPECT_TRUE(report.accepted());
}

TEST(Verifier, SequenceSpanningPageBoundaryStillRejected)
{
    std::vector<uint8_t> image(8192, 0x90);
    image[4095] = 0x0F;
    image[4096] = 0x01;
    image[4097] = 0xEF;
    VerifierReport report = verifyImage(image);
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings[0].offset, 4095u);
    EXPECT_EQ(report.findings[0].cls, FindingClass::kAligned);
    EXPECT_FALSE(report.accepted());
}

TEST(Verifier, EmptyImageAccepted)
{
    VerifierReport report = verifyImage({});
    EXPECT_TRUE(report.accepted());
    EXPECT_EQ(report.imageBytes, 0u);
    EXPECT_DOUBLE_EQ(report.decodeCoverage(), 1.0);
}

TEST(Verifier, CoverageCountsAreConsistent)
{
    auto image = makeBenignImage(16384, 3);
    // Splice an undecodable byte run into the middle.
    for (std::size_t i = 8000; i < 8016; ++i)
        image[i] = 0x06;
    VerifierReport report = verifyImage(image);
    EXPECT_EQ(report.imageBytes, image.size());
    EXPECT_GT(report.undecodableBytes, 0u);
    EXPECT_LE(report.decodedBytes + report.undecodableBytes, image.size());
    EXPECT_LE(report.firstUndecodable, 8000u + verifier::kMaxInsnLen);
}

// ----------------------------------------------------------------------
// Loader integration
// ----------------------------------------------------------------------

TEST(VerifierLoader, RejectsAlignedWrpkruWithClassification)
{
    System sys;
    std::vector<uint8_t> image(256, 0x90);
    image[10] = 0x0F;
    image[11] = 0x01;
    image[12] = 0xEF;
    testing::addToy(sys, "evil").withImage(image);
    try {
        sys.boot();
        FAIL() << "hostile image was loaded";
    } catch (const VerifierError &e) {
        EXPECT_NE(std::string(e.what()).find("wrpkru"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("instruction-aligned"),
                  std::string::npos);
    }
}

TEST(VerifierLoader, RejectsMisalignedReachableSequence)
{
    System sys;
    auto image = bytes({0xB0, 0x0F, 0x05, 0x11, 0x22, 0x33, 0x44});
    testing::addToy(sys, "sneaky").withImage(image);
    try {
        sys.boot();
        FAIL() << "misaligned-reachable image was loaded";
    } catch (const VerifierError &e) {
        EXPECT_NE(std::string(e.what()).find("misaligned-reachable"),
                  std::string::npos);
    }
}

TEST(VerifierLoader, VerifierErrorIsALoaderError)
{
    System sys;
    std::vector<uint8_t> image(64, 0x90);
    image[0] = 0x0F;
    image[1] = 0x05;
    testing::addToy(sys, "evil").withImage(image);
    EXPECT_THROW(sys.boot(), LoaderError);
}

TEST(VerifierLoader, AcceptsEmbeddedConstantAndRecordsReport)
{
    System sys;
    // A benign stream whose one mov immediate happens to contain the
    // wrpkru bytes; padded with real instructions.
    std::vector<uint8_t> image =
        bytes({0xB8, 0x0F, 0x01, 0xEF, 0x90, 0xC3});
    while (image.size() < 128)
        image.push_back(0x90);
    testing::addToy(sys, "app").withImage(image);
    sys.boot();

    const Cid cid = sys.cidOf("app");
    const verifier::VerifierReport &report =
        sys.monitor().verifierReport(cid);
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings[0].cls, FindingClass::kEmbedded);
    EXPECT_EQ(report.findings[0].mnemonic, "wrpkru");
    EXPECT_TRUE(report.accepted());
    EXPECT_EQ(report.imageBytes, 128u);

    EXPECT_EQ(sys.stats().verifierReported(), 1u);
    EXPECT_EQ(sys.stats().verifierRejected(), 0u);
}

TEST(VerifierLoader, StatsCoverEveryLoadedImage)
{
    System sys;
    testing::addToy(sys, "a");
    testing::addToy(sys, "b");
    testing::addToy(sys, "c", CubicleKind::kShared);
    sys.boot();

    const Stats &stats = sys.stats();
    EXPECT_EQ(stats.imagesVerified(), 3u);
    EXPECT_GT(stats.verifierBytesScanned(), 0u);
    EXPECT_GT(stats.verifierInsns(), 0u);
    // Synthesized images are fully decodable instruction streams.
    EXPECT_EQ(stats.verifierBytesDecoded(), stats.verifierBytesScanned());
    for (Cid cid = 0; cid < 3; ++cid) {
        const auto &report = sys.monitor().verifierReport(cid);
        EXPECT_TRUE(report.accepted());
        EXPECT_DOUBLE_EQ(report.decodeCoverage(), 1.0) << cid;
    }
}

} // namespace
} // namespace cubicleos::core
