/**
 * @file
 * Tests for the load-time verifier: the x86-64 length decoder, the
 * linear-sweep classification of forbidden sequences, the entry-point
 * reachability walk (pass 2), and the loader integration (reject vs
 * report-only, reports and stats).
 */

#include <gtest/gtest.h>

#include "core/codescan.h"
#include "core/system.h"
#include "core/verifier/cache.h"
#include "core/verifier/cfg.h"
#include "core/verifier/insn.h"
#include "core/verifier/scanner.h"
#include "tests/core/toy_components.h"

namespace cubicleos::core {
namespace {

using verifier::FindingClass;
using verifier::FlowKind;
using verifier::Insn;
using verifier::VerifierReport;
using verifier::decodeAt;
using verifier::verifyImage;
using verifier::verifyImageFrom;

std::vector<uint8_t>
bytes(std::initializer_list<int> list)
{
    std::vector<uint8_t> v;
    for (int b : list)
        v.push_back(static_cast<uint8_t>(b));
    return v;
}

// ----------------------------------------------------------------------
// Instruction-length decoder
// ----------------------------------------------------------------------

TEST(InsnDecode, SingleByteOpcodes)
{
    auto image = bytes({0x90, 0xC3, 0x55, 0x5D, 0xC9});
    for (std::size_t pos = 0; pos < image.size(); ++pos) {
        auto insn = decodeAt(image, pos);
        ASSERT_TRUE(insn.has_value()) << pos;
        EXPECT_EQ(insn->length, 1u) << pos;
        EXPECT_EQ(insn->payloadOff, 1u) << pos;
        EXPECT_FALSE(insn->forbidden);
    }
}

TEST(InsnDecode, RexMovRegReg)
{
    auto image = bytes({0x48, 0x89, 0xC3}); // mov rbx, rax
    auto insn = decodeAt(image, 0);
    ASSERT_TRUE(insn.has_value());
    EXPECT_EQ(insn->length, 3u);
    EXPECT_EQ(insn->payloadOff, 3u); // no data bytes
}

TEST(InsnDecode, MovImm32)
{
    auto image = bytes({0xB8, 0x11, 0x22, 0x33, 0x44}); // mov eax, imm32
    auto insn = decodeAt(image, 0);
    ASSERT_TRUE(insn.has_value());
    EXPECT_EQ(insn->length, 5u);
    EXPECT_EQ(insn->payloadOff, 1u); // imm32 is payload
}

TEST(InsnDecode, MovImm64UnderRexW)
{
    // movabs rax, imm64: REX.W widens the B8 immediate to 8 bytes.
    auto image = bytes({0x48, 0xB8, 1, 2, 3, 4, 5, 6, 7, 8});
    auto insn = decodeAt(image, 0);
    ASSERT_TRUE(insn.has_value());
    EXPECT_EQ(insn->length, 10u);
    EXPECT_EQ(insn->payloadOff, 2u);
}

TEST(InsnDecode, OperandSizePrefixNarrowsImmediate)
{
    auto image = bytes({0x66, 0xB8, 0x11, 0x22}); // mov ax, imm16
    auto insn = decodeAt(image, 0);
    ASSERT_TRUE(insn.has_value());
    EXPECT_EQ(insn->length, 4u);
    EXPECT_EQ(insn->payloadOff, 2u);
}

TEST(InsnDecode, ModRmDisp8AndDisp32)
{
    auto d8 = bytes({0x48, 0x8B, 0x45, 0x08}); // mov rax, [rbp+8]
    auto insn = decodeAt(d8, 0);
    ASSERT_TRUE(insn.has_value());
    EXPECT_EQ(insn->length, 4u);
    EXPECT_EQ(insn->payloadOff, 3u); // disp8 is payload

    auto d32 = bytes({0x48, 0x8B, 0x80, 1, 2, 3, 4}); // mov rax,[rax+d32]
    insn = decodeAt(d32, 0);
    ASSERT_TRUE(insn.has_value());
    EXPECT_EQ(insn->length, 7u);
    EXPECT_EQ(insn->payloadOff, 3u);
}

TEST(InsnDecode, SibAndRipRelative)
{
    auto sib = bytes({0x48, 0x8B, 0x04, 0x24}); // mov rax, [rsp]
    auto insn = decodeAt(sib, 0);
    ASSERT_TRUE(insn.has_value());
    EXPECT_EQ(insn->length, 4u);
    EXPECT_EQ(insn->payloadOff, 4u); // modrm+sib are structural

    auto rip = bytes({0x48, 0x8B, 0x05, 1, 2, 3, 4}); // mov rax,[rip+d32]
    insn = decodeAt(rip, 0);
    ASSERT_TRUE(insn.has_value());
    EXPECT_EQ(insn->length, 7u);
    EXPECT_EQ(insn->payloadOff, 3u);

    // SIB with base 101 and mod 00 carries a disp32.
    auto sibd = bytes({0x48, 0x8B, 0x04, 0x25, 1, 2, 3, 4});
    insn = decodeAt(sibd, 0);
    ASSERT_TRUE(insn.has_value());
    EXPECT_EQ(insn->length, 8u);
    EXPECT_EQ(insn->payloadOff, 4u);
}

TEST(InsnDecode, DirectBranches)
{
    auto jmp8 = bytes({0xEB, 0x05});
    auto insn = decodeAt(jmp8, 0);
    ASSERT_TRUE(insn.has_value());
    EXPECT_TRUE(insn->isDirectBranch);
    EXPECT_EQ(insn->branchRel, 5);

    auto jcc8 = bytes({0x74, 0xFE}); // je -2
    insn = decodeAt(jcc8, 0);
    ASSERT_TRUE(insn.has_value());
    EXPECT_TRUE(insn->isDirectBranch);
    EXPECT_EQ(insn->branchRel, -2);

    auto call = bytes({0xE8, 0x10, 0x00, 0x00, 0x00});
    insn = decodeAt(call, 0);
    ASSERT_TRUE(insn.has_value());
    EXPECT_EQ(insn->length, 5u);
    EXPECT_TRUE(insn->isDirectBranch);
    EXPECT_EQ(insn->branchRel, 16);

    auto jcc32 = bytes({0x0F, 0x84, 0x00, 0x01, 0x00, 0x00});
    insn = decodeAt(jcc32, 0);
    ASSERT_TRUE(insn.has_value());
    EXPECT_EQ(insn->length, 6u);
    EXPECT_EQ(insn->branchRel, 256);
}

TEST(InsnDecode, ForbiddenInstructions)
{
    struct Case {
        std::vector<uint8_t> image;
        const char *mnemonic;
    };
    const Case cases[] = {
        {bytes({0x0F, 0x01, 0xEF}), "wrpkru"},
        {bytes({0x0F, 0x01, 0xD1}), "xsetbv"},
        {bytes({0x0F, 0x05}), "syscall"},
        {bytes({0x0F, 0x34}), "sysenter"},
        {bytes({0xCD, 0x80}), "int80"},
        {bytes({0x0F, 0xAE, 0x28}), "xrstor"},
    };
    for (const Case &c : cases) {
        auto insn = decodeAt(c.image, 0);
        ASSERT_TRUE(insn.has_value()) << c.mnemonic;
        EXPECT_TRUE(insn->forbidden) << c.mnemonic;
        EXPECT_STREQ(insn->mnemonic, c.mnemonic);
    }
}

TEST(InsnDecode, BenignNeighboursOfForbiddenEncodings)
{
    // int 0x21 stays inside the cubicle; only vector 0x80 is the
    // legacy syscall gate.
    auto int21 = bytes({0xCD, 0x21});
    auto insn = decodeAt(int21, 0);
    ASSERT_TRUE(insn.has_value());
    EXPECT_FALSE(insn->forbidden);

    // lfence: register form of the 0F AE group, reg field 5.
    auto lfence = bytes({0x0F, 0xAE, 0xE8});
    insn = decodeAt(lfence, 0);
    ASSERT_TRUE(insn.has_value());
    EXPECT_FALSE(insn->forbidden);
    EXPECT_STREQ(insn->mnemonic, "fence");

    // xsave (reg field 4, memory form) is allowed.
    auto xsave = bytes({0x0F, 0xAE, 0x20});
    insn = decodeAt(xsave, 0);
    ASSERT_TRUE(insn.has_value());
    EXPECT_FALSE(insn->forbidden);
}

TEST(InsnDecode, UnsupportedBytesAreUndecodable)
{
    // 0x06 (push es) is invalid in 64-bit mode; 0F 01 with a non-
    // wrpkru/xsetbv ModRM is outside the supported subset.
    EXPECT_FALSE(decodeAt(bytes({0x06}), 0).has_value());
    EXPECT_FALSE(decodeAt(bytes({0x0F, 0x01, 0x00}), 0).has_value());
    // Register forms of 0F AE below reg 5 (ldmxcsr etc.).
    EXPECT_FALSE(decodeAt(bytes({0x0F, 0xAE, 0xC0}), 0).has_value());
}

TEST(InsnDecode, TruncationIsUndecodable)
{
    EXPECT_FALSE(decodeAt(bytes({0xB8, 0x01}), 0).has_value());
    EXPECT_FALSE(decodeAt(bytes({0x48}), 0).has_value());
    EXPECT_FALSE(decodeAt(bytes({0x48, 0x8B, 0x05, 1, 2}), 0).has_value());
    EXPECT_FALSE(decodeAt(bytes({0x90}), 1).has_value()); // past the end
}

TEST(InsnDecode, OverlongPrefixRunIsUndecodable)
{
    std::vector<uint8_t> image(16, 0x66);
    image.push_back(0x90);
    EXPECT_FALSE(decodeAt(image, 0).has_value());
}

// Round-trip cases for the opcode families added for real compiler
// output: (bytes, expected length, expected payload offset, mnemonic).
struct RoundTrip {
    std::vector<uint8_t> image;
    std::size_t length;
    std::size_t payloadOff;
    const char *mnemonic;
};

void
expectRoundTrip(const RoundTrip &c)
{
    auto insn = decodeAt(c.image, 0);
    ASSERT_TRUE(insn.has_value()) << c.mnemonic;
    EXPECT_EQ(insn->length, c.length) << c.mnemonic;
    EXPECT_EQ(insn->payloadOff, c.payloadOff) << c.mnemonic;
    EXPECT_STREQ(insn->mnemonic, c.mnemonic);
    EXPECT_FALSE(insn->forbidden) << c.mnemonic;
}

TEST(InsnDecode, Group2ShiftsAndRotates)
{
    const RoundTrip cases[] = {
        {bytes({0x48, 0xC1, 0xE0, 0x05}), 4, 3, "shift"}, // shl rax, 5
        {bytes({0xC1, 0xE8, 0x02}), 3, 2, "shift"},       // shr eax, 2
        {bytes({0xC0, 0xC8, 0x01}), 3, 2, "shift"},       // ror al, 1
        {bytes({0xD1, 0xE0}), 2, 2, "shift"},             // shl eax, 1
        {bytes({0x48, 0xD3, 0xE2}), 3, 3, "shift"},       // shl rdx, cl
    };
    for (const RoundTrip &c : cases)
        expectRoundTrip(c);
}

TEST(InsnDecode, StringOpsWithRepPrefixes)
{
    const RoundTrip cases[] = {
        {bytes({0xA4}), 1, 1, "string"},             // movsb
        {bytes({0xF3, 0xA4}), 2, 2, "string"},       // rep movsb
        {bytes({0xF3, 0x48, 0xA5}), 3, 3, "string"}, // rep movsq
        {bytes({0xF3, 0xAA}), 2, 2, "string"},       // rep stosb
        {bytes({0xF2, 0xAE}), 2, 2, "string"},       // repne scasb
        {bytes({0xA6}), 1, 1, "string"},             // cmpsb
    };
    for (const RoundTrip &c : cases)
        expectRoundTrip(c);
}

TEST(InsnDecode, SseMoves)
{
    const RoundTrip cases[] = {
        {bytes({0x0F, 0x28, 0xC1}), 3, 3, "ssemov"},       // movaps
        {bytes({0x0F, 0x10, 0x00}), 3, 3, "ssemov"},       // movups [rax]
        {bytes({0x66, 0x0F, 0x6F, 0xC8}), 4, 4, "sse"},    // movdqa
        {bytes({0xF3, 0x0F, 0x7E, 0xC0}), 4, 4, "ssemov"}, // movq
        {bytes({0x66, 0x0F, 0x7F, 0x01}), 4, 4, "ssemov"}, // movdqa [rcx]
        {bytes({0x66, 0x0F, 0xD6, 0xC1}), 4, 4, "ssemov"}, // movq xmm,xmm
        // movss xmm0, [rip+d32]: the disp32 is payload.
        {bytes({0xF3, 0x0F, 0x10, 0x05, 1, 2, 3, 4}), 8, 4, "ssemov"},
    };
    for (const RoundTrip &c : cases)
        expectRoundTrip(c);
}

TEST(InsnDecode, SsePackedArithmeticAndCompare)
{
    const RoundTrip cases[] = {
        {bytes({0x0F, 0x58, 0xC1}), 3, 3, "ssearith"},       // addps
        {bytes({0xF2, 0x0F, 0x59, 0xC8}), 4, 4, "ssearith"}, // mulsd
        {bytes({0x0F, 0x51, 0xC0}), 3, 3, "ssearith"},       // sqrtps
        {bytes({0x66, 0x0F, 0xEF, 0xC0}), 4, 4, "pxor"},     // pxor
        {bytes({0x66, 0x0F, 0x74, 0xC1}), 4, 4, "pcmpeq"},   // pcmpeqb
    };
    for (const RoundTrip &c : cases)
        expectRoundTrip(c);
}

TEST(InsnDecode, SseShuffleAndShiftImmediates)
{
    const RoundTrip cases[] = {
        // psrlw xmm0, 4 (group 12, /2, imm8 payload)
        {bytes({0x66, 0x0F, 0x71, 0xD0, 0x04}), 5, 4, "sseshift"},
        // pshufd xmm0, xmm1, 0x1B
        {bytes({0x66, 0x0F, 0x70, 0xC1, 0x1B}), 5, 4, "pshuf"},
        // shufps xmm0, xmm1, 3
        {bytes({0x0F, 0xC6, 0xC1, 0x03}), 4, 3, "shufps"},
    };
    for (const RoundTrip &c : cases)
        expectRoundTrip(c);
}

TEST(InsnDecode, VexTwoBytePrefix)
{
    const RoundTrip cases[] = {
        // vaddps xmm0, xmm0, xmm1 (c5 f8 58 c1)
        {bytes({0xC5, 0xF8, 0x58, 0xC1}), 4, 4, "ssearith"},
        // vmovaps xmm1, xmm2 (c5 f8 28 ca)
        {bytes({0xC5, 0xF8, 0x28, 0xCA}), 4, 4, "ssemov"},
        // vmovdqa ymm0, [rip+d32] (c5 fd 6f 05 d32): disp is payload
        {bytes({0xC5, 0xFD, 0x6F, 0x05, 1, 2, 3, 4}), 8, 4, "sse"},
        // vpxor xmm0, xmm1, [rax] (c5 f1 ef 00)
        {bytes({0xC5, 0xF1, 0xEF, 0x00}), 4, 4, "pxor"},
        // vpshufd xmm0, xmm0, 0x1e (c5 f9 70 c0 1e): imm8 payload
        {bytes({0xC5, 0xF9, 0x70, 0xC0, 0x1E}), 5, 4, "pshuf"},
    };
    for (const RoundTrip &c : cases)
        expectRoundTrip(c);
}

TEST(InsnDecode, VexThreeBytePrefix)
{
    const RoundTrip cases[] = {
        // Map 1 through the 3-byte form: vaddps ymm0, ymm0, ymm1
        // (c4 c1 7c 58 c1 encodes VEX.B for xmm9-class operands).
        {bytes({0xC4, 0xC1, 0x7C, 0x58, 0xC1}), 5, 5, "ssearith"},
        // Map 2 (0F 38), no immediate: vbroadcastss xmm0, [rip+d32]
        {bytes({0xC4, 0xE2, 0x79, 0x18, 0x05, 1, 2, 3, 4}), 9, 5, "avx"},
        // Map 2 register form: vpermd ymm0, ymm1, ymm2
        {bytes({0xC4, 0xE2, 0x75, 0x36, 0xC2}), 5, 5, "avx"},
        // Map 3 (0F 3A), imm8: vpblendw xmm0, xmm1, xmm2, 0x33
        {bytes({0xC4, 0xE3, 0x75, 0x0E, 0xC2, 0x33}), 6, 5, "avx"},
        // Map 3 with memory operand + SIB: vpalignr with disp8
        // (payload starts after VEX + opcode + ModRM + SIB = 6).
        {bytes({0xC4, 0xE3, 0x71, 0x0F, 0x44, 0x24, 0x10, 0x07}),
         8, 6, "avx"},
    };
    for (const RoundTrip &c : cases)
        expectRoundTrip(c);
}

TEST(InsnDecode, VexEdgeCasesAreUndecodable)
{
    // Reserved escape maps (mmmmm = 0, 4) in the 3-byte form.
    EXPECT_FALSE(decodeAt(bytes({0xC4, 0xE0, 0x79, 0x18, 0x05}), 0)
                     .has_value());
    EXPECT_FALSE(decodeAt(bytes({0xC4, 0xE4, 0x79, 0x18, 0x05}), 0)
                     .has_value());
    // Truncated VEX prefixes.
    EXPECT_FALSE(decodeAt(bytes({0xC5}), 0).has_value());
    EXPECT_FALSE(decodeAt(bytes({0xC5, 0xF8}), 0).has_value());
    EXPECT_FALSE(decodeAt(bytes({0xC4, 0xE2, 0x79}), 0).has_value());
    // VEX of a map-1 row with no VEX form (jcc, bswap, syscall):
    // undecodable, never a guessed length.
    EXPECT_FALSE(decodeAt(bytes({0xC5, 0xF8, 0x84, 0, 0, 0, 0}), 0)
                     .has_value());
    EXPECT_FALSE(decodeAt(bytes({0xC5, 0xF8, 0xC8}), 0).has_value());
    EXPECT_FALSE(decodeAt(bytes({0xC5, 0xF8, 0x05}), 0).has_value());
}

TEST(InsnDecode, EvexPrefix)
{
    const RoundTrip cases[] = {
        // vaddps zmm0, zmm0, zmm1 (62 f1 7c 48 58 c1): map 1 row.
        {bytes({0x62, 0xF1, 0x7C, 0x48, 0x58, 0xC1}), 6, 6, "avx512"},
        // vmovaps zmm1, zmm2 through the same map-1 reuse.
        {bytes({0x62, 0xF1, 0x7C, 0x48, 0x28, 0xCA}), 6, 6, "avx512"},
        // vmovdqa64 zmm0, [rip+d32] (62 f1 fd 48 6f 05 d32): the
        // disp32 is payload; disp8*N does not apply to disp32.
        {bytes({0x62, 0xF1, 0xFD, 0x48, 0x6F, 0x05, 1, 2, 3, 4}),
         10, 6, "avx512"},
        // Map 2 (0F 38), no immediate: vpermd zmm0, zmm1, zmm2.
        {bytes({0x62, 0xF2, 0x75, 0x48, 0x36, 0xC2}), 6, 6, "avx512"},
        // Map 2 memory form with compressed disp8 (width still 1):
        // vbroadcastss zmm0, [rax+0x40].
        {bytes({0x62, 0xF2, 0x7D, 0x48, 0x18, 0x40, 0x10}),
         7, 6, "avx512"},
        // Map 3 (0F 3A), imm8: valignd zmm0, zmm1, zmm2, 3.
        {bytes({0x62, 0xF3, 0x75, 0x48, 0x03, 0xC2, 0x03}),
         7, 6, "avx512"},
        // Map 3 with memory operand + SIB: payload after
        // EVEX(4) + opcode + ModRM + SIB = 7, then disp8 + imm8.
        {bytes({0x62, 0xF3, 0x75, 0x48, 0x0F, 0x44, 0x24, 0x10, 0x07}),
         9, 7, "avx512"},
    };
    for (const RoundTrip &c : cases)
        expectRoundTrip(c);
}

TEST(InsnDecode, EvexEdgeCasesAreUndecodable)
{
    // Truncated EVEX prefixes.
    EXPECT_FALSE(decodeAt(bytes({0x62}), 0).has_value());
    EXPECT_FALSE(decodeAt(bytes({0x62, 0xF1, 0x7C}), 0).has_value());
    EXPECT_FALSE(decodeAt(bytes({0x62, 0xF1, 0x7C, 0x48}), 0)
                     .has_value());
    // Reserved P0 bit 3 set, reserved map 0, unsupported map 5.
    EXPECT_FALSE(decodeAt(bytes({0x62, 0xF9, 0x7C, 0x48, 0x58, 0xC1}), 0)
                     .has_value());
    EXPECT_FALSE(decodeAt(bytes({0x62, 0xF0, 0x7C, 0x48, 0x58, 0xC1}), 0)
                     .has_value());
    EXPECT_FALSE(decodeAt(bytes({0x62, 0xF5, 0x7C, 0x48, 0x58, 0xC1}), 0)
                     .has_value());
    // P1's fixed bit 2 cleared: not a valid EVEX payload.
    EXPECT_FALSE(decodeAt(bytes({0x62, 0xF1, 0x78, 0x48, 0x58, 0xC1}), 0)
                     .has_value());
    // EVEX of a map-1 row with no vector form (jcc, syscall).
    EXPECT_FALSE(
        decodeAt(bytes({0x62, 0xF1, 0x7C, 0x48, 0x84, 0, 0, 0, 0}), 0)
            .has_value());
    EXPECT_FALSE(decodeAt(bytes({0x62, 0xF1, 0x7C, 0x48, 0x05}), 0)
                     .has_value());
}


TEST(InsnDecode, FlowKinds)
{
    struct FlowCase {
        std::vector<uint8_t> image;
        FlowKind flow;
    };
    const FlowCase cases[] = {
        {bytes({0x90}), FlowKind::kSequential},
        {bytes({0x48, 0x89, 0xC3}), FlowKind::kSequential},
        {bytes({0x74, 0x05}), FlowKind::kBranch},          // je
        {bytes({0x0F, 0x84, 1, 0, 0, 0}), FlowKind::kBranch},
        {bytes({0xEB, 0x05}), FlowKind::kJump},
        {bytes({0xE9, 1, 0, 0, 0}), FlowKind::kJump},
        {bytes({0xE8, 1, 0, 0, 0}), FlowKind::kCall},
        {bytes({0xFF, 0xD0}), FlowKind::kIndirectCall},    // call rax
        {bytes({0xFF, 0x10}), FlowKind::kIndirectCall},    // call [rax]
        {bytes({0xFF, 0xE0}), FlowKind::kIndirectJump},    // jmp rax
        {bytes({0xFF, 0x20}), FlowKind::kIndirectJump},    // jmp [rax]
        {bytes({0xFF, 0xC0}), FlowKind::kSequential},      // inc eax
        {bytes({0xC3}), FlowKind::kTerminal},              // ret
        {bytes({0xC2, 0x08, 0x00}), FlowKind::kTerminal},  // ret imm16
        {bytes({0xCC}), FlowKind::kTerminal},              // int3
        {bytes({0xF4}), FlowKind::kTerminal},              // hlt
        {bytes({0x0F, 0x0B}), FlowKind::kTerminal},        // ud2
    };
    for (const FlowCase &c : cases) {
        auto insn = decodeAt(c.image, 0);
        ASSERT_TRUE(insn.has_value()) << static_cast<int>(c.image[0]);
        EXPECT_EQ(insn->flow, c.flow)
            << "opcode " << static_cast<int>(c.image[0]);
    }
}

// ----------------------------------------------------------------------
// Linear-sweep classification
// ----------------------------------------------------------------------

TEST(Verifier, CleanImageAccepted)
{
    auto image = makeBenignImage(4096, 7);
    VerifierReport report = verifyImage(image);
    EXPECT_TRUE(report.accepted());
    EXPECT_TRUE(report.findings.empty());
    EXPECT_EQ(report.undecodableBytes, 0u);
    EXPECT_DOUBLE_EQ(report.decodeCoverage(), 1.0);
    EXPECT_GT(report.insnCount, 0u);
}

TEST(Verifier, AlignedWrpkruRejected)
{
    auto image = bytes({0x90, 0x0F, 0x01, 0xEF, 0x90});
    VerifierReport report = verifyImage(image);
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings[0].cls, FindingClass::kAligned);
    EXPECT_EQ(report.findings[0].offset, 1u);
    EXPECT_FALSE(report.accepted());
    ASSERT_NE(report.firstRejecting(), nullptr);
    EXPECT_EQ(report.firstRejecting()->mnemonic, "wrpkru");
}

TEST(Verifier, EmbeddedInImmediateIsReportOnly)
{
    // mov eax, 0x90EF010F: the wrpkru bytes live entirely inside the
    // imm32 payload — a compiler constant, not reachable code.
    auto image = bytes({0xB8, 0x0F, 0x01, 0xEF, 0x90, 0xC3});
    VerifierReport report = verifyImage(image);
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings[0].cls, FindingClass::kEmbedded);
    EXPECT_TRUE(report.accepted());
    EXPECT_EQ(report.embeddedCount(), 1u);
    EXPECT_EQ(report.rejectingCount(), 0u);
}

TEST(Verifier, MisalignedSpanningInstructionsRejected)
{
    // mov al, 0x0F ; add eax, imm32 — the grep's "0F 05" spans the
    // first instruction's immediate and the second's opcode byte, so
    // jumping one byte in executes syscall.
    auto image = bytes({0xB0, 0x0F, 0x05, 0x11, 0x22, 0x33, 0x44});
    VerifierReport report = verifyImage(image);
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings[0].offset, 1u);
    EXPECT_EQ(report.findings[0].cls, FindingClass::kMisalignedReachable);
    EXPECT_FALSE(report.accepted());
}

TEST(Verifier, MatchInUndecodableRegionRejected)
{
    // Truncated xrstor memory form (mod 2 needs a disp32 that is not
    // there): the grep matches, the decoder cannot prove anything, so
    // the match is conservatively rejected.
    auto image = bytes({0x90, 0x0F, 0xAE, 0xA8});
    VerifierReport report = verifyImage(image);
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings[0].cls, FindingClass::kMisalignedReachable);
    EXPECT_FALSE(report.accepted());
    EXPECT_GT(report.undecodableBytes, 0u);
    EXPECT_LT(report.decodeCoverage(), 1.0);
}

TEST(Verifier, BenignAliasOfMaskedPatternIsReportOnly)
{
    // lfence matches the masked xrstor grep pattern but decodes to a
    // benign instruction at the match offset.
    auto image = bytes({0x0F, 0xAE, 0xE8, 0xC3});
    VerifierReport report = verifyImage(image);
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings[0].cls, FindingClass::kEmbedded);
    EXPECT_TRUE(report.accepted());
}

TEST(Verifier, BranchTargetingEmbeddedMatchUpgradesToReject)
{
    // jmp +6 lands exactly on the wrpkru bytes hidden in the second
    // mov's immediate: reachable after all.
    auto hostile = bytes({0xEB, 0x06,                    // jmp → 8
                          0xB8, 0x00, 0x00, 0x00, 0x00,  // mov eax, 0
                          0xB8, 0x0F, 0x01, 0xEF, 0x90,  // imm32 hides wrpkru
                          0xC3});
    VerifierReport report = verifyImage(hostile);
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings[0].offset, 8u);
    EXPECT_EQ(report.findings[0].cls, FindingClass::kMisalignedReachable);
    EXPECT_FALSE(report.accepted());

    // Without the jump the same bytes stay report-only.
    auto benign = std::vector<uint8_t>(hostile.begin() + 2, hostile.end());
    report = verifyImage(benign);
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings[0].cls, FindingClass::kEmbedded);
    EXPECT_TRUE(report.accepted());
}

TEST(Verifier, SequenceSpanningPageBoundaryStillRejected)
{
    std::vector<uint8_t> image(8192, 0x90);
    image[4095] = 0x0F;
    image[4096] = 0x01;
    image[4097] = 0xEF;
    VerifierReport report = verifyImage(image);
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings[0].offset, 4095u);
    EXPECT_EQ(report.findings[0].cls, FindingClass::kAligned);
    EXPECT_FALSE(report.accepted());
}

TEST(Verifier, EmptyImageAccepted)
{
    VerifierReport report = verifyImage({});
    EXPECT_TRUE(report.accepted());
    EXPECT_EQ(report.imageBytes, 0u);
    EXPECT_DOUBLE_EQ(report.decodeCoverage(), 1.0);
}

TEST(Verifier, CoverageCountsAreConsistent)
{
    auto image = makeBenignImage(16384, 3);
    // Splice an undecodable byte run into the middle.
    for (std::size_t i = 8000; i < 8016; ++i)
        image[i] = 0x06;
    VerifierReport report = verifyImage(image);
    EXPECT_EQ(report.imageBytes, image.size());
    EXPECT_GT(report.undecodableBytes, 0u);
    EXPECT_LE(report.decodedBytes + report.undecodableBytes, image.size());
    EXPECT_LE(report.firstUndecodable, 8000u + verifier::kMaxInsnLen);
}

// ----------------------------------------------------------------------
// Pass 2: entry-point reachability walk
// ----------------------------------------------------------------------

TEST(Cfg, DataAfterRetIsUnreachable)
{
    // ret ; wrpkru — the linear sweep rejects, the walk proves the
    // forbidden bytes sit beyond the function's only exit.
    auto image = bytes({0xC3, 0x0F, 0x01, 0xEF});
    VerifierReport r1 = verifyImage(image);
    EXPECT_FALSE(r1.accepted());

    VerifierReport r2 = verifyImageFrom(image, {});
    EXPECT_TRUE(r2.accepted());
    ASSERT_EQ(r2.findings.size(), 1u);
    EXPECT_EQ(r2.findings[0].cls, FindingClass::kUnreachable);
    EXPECT_TRUE(r2.cfg.ran);
    EXPECT_FALSE(r2.cfg.opaque);
    EXPECT_EQ(r2.cfg.reachableInsns, 1u);
    EXPECT_EQ(r2.cfg.terminals, 1u);
}

TEST(Cfg, JumpOverDataSkipsForbiddenBytes)
{
    // jmp +3 hops over a wrpkru island; nothing branches back into it.
    auto image = bytes({0xEB, 0x03,             // jmp → 5
                        0x0F, 0x01, 0xEF,       // dead wrpkru
                        0x90, 0xC3});
    EXPECT_FALSE(verifyImage(image).accepted());

    VerifierReport r = verifyImageFrom(image, {});
    EXPECT_TRUE(r.accepted());
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].cls, FindingClass::kUnreachable);
    EXPECT_EQ(r.cfg.directBranches, 1u);
}

TEST(Cfg, ReachableAlignedStillRejected)
{
    auto image = bytes({0x90, 0x0F, 0x01, 0xEF, 0xC3});
    VerifierReport r = verifyImageFrom(image, {});
    EXPECT_FALSE(r.accepted());
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].cls, FindingClass::kAligned);
    EXPECT_EQ(r.findings[0].offset, 1u);
}

TEST(Cfg, ConditionalBranchWalksBothPaths)
{
    // Taken path reaches syscall.
    auto taken = bytes({0x74, 0x03,       // je → 5
                        0x90, 0x90, 0xC3, // fall-through exits cleanly
                        0x0F, 0x05});     // target: syscall
    EXPECT_FALSE(verifyImageFrom(taken, {}).accepted());

    // Fall-through path reaches syscall.
    auto fallthrough = bytes({0x74, 0x02, // je → 4 (ret)
                              0x0F, 0x05, // fall-through: syscall
                              0xC3});
    EXPECT_FALSE(verifyImageFrom(fallthrough, {}).accepted());
}

TEST(Cfg, CallWalksTargetAndFallThrough)
{
    // Callee (target of call rel32) contains the forbidden bytes.
    auto callee = bytes({0xE8, 0x01, 0x00, 0x00, 0x00, // call → 6
                         0xC3,
                         0x0F, 0x01, 0xEF});
    EXPECT_FALSE(verifyImageFrom(callee, {}).accepted());

    // Return path (after the call site) contains them.
    auto after = bytes({0xE8, 0x02, 0x00, 0x00, 0x00, // call → 7
                        0x0F, 0x05,                   // fall-through
                        0xC3});
    EXPECT_FALSE(verifyImageFrom(after, {}).accepted());
}

TEST(Cfg, EntryPointsSeedTheWalk)
{
    auto image = bytes({0xC3, 0x0F, 0x01, 0xEF});
    const std::size_t first[] = {0};
    const std::size_t both[] = {0, 1};
    EXPECT_TRUE(verifyImageFrom(image, first).accepted());
    EXPECT_FALSE(verifyImageFrom(image, both).accepted());
    EXPECT_EQ(verifyImageFrom(image, both).cfg.entryCount, 2u);
}

TEST(Cfg, EntryPointOnEmbeddedConstantUpgradesToReject)
{
    // Pass 1 calls the wrpkru bytes an immediate constant; an export
    // table handing out offset 1 makes them an entry point.
    auto image = bytes({0xB8, 0x0F, 0x01, 0xEF, 0x90, 0xC3});
    EXPECT_TRUE(verifyImage(image).accepted());
    const std::size_t entries[] = {1};
    VerifierReport r = verifyImageFrom(image, entries);
    EXPECT_FALSE(r.accepted());
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].cls, FindingClass::kAligned);
}

TEST(Cfg, IndirectJumpIsASink)
{
    // jmp rax ends the walk; the bytes after it are not provably
    // reachable through any direct edge.
    auto image = bytes({0xFF, 0xE0, 0x0F, 0x05});
    VerifierReport r = verifyImageFrom(image, {});
    EXPECT_TRUE(r.accepted());
    EXPECT_EQ(r.cfg.indirectJumps, 1u);
    EXPECT_EQ(r.cfg.terminals, 0u);
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].cls, FindingClass::kUnreachable);
}

TEST(Cfg, IndirectCallFallsThrough)
{
    // call rax returns: the syscall after it is reachable.
    auto image = bytes({0xFF, 0xD0, 0x0F, 0x05});
    VerifierReport r = verifyImageFrom(image, {});
    EXPECT_FALSE(r.accepted());
    EXPECT_EQ(r.cfg.indirectSites, 1u);
}

TEST(Cfg, ReachableUndecodableByteFallsBackToSweepVerdict)
{
    // 0x06 is undecodable; the walk cannot see past it, so the
    // conservative pass-1 classes stand (here: reject).
    auto image = bytes({0x06, 0x0F, 0x01, 0xEF});
    VerifierReport r = verifyImageFrom(image, {});
    EXPECT_TRUE(r.cfg.opaque);
    EXPECT_EQ(r.cfg.firstOpaque, 0u);
    EXPECT_FALSE(r.accepted());
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].cls, FindingClass::kAligned);
}

TEST(Cfg, OutOfRangeEntryPointIsOpaque)
{
    auto image = bytes({0xC3, 0x0F, 0x01, 0xEF});
    const std::size_t entries[] = {100};
    VerifierReport r = verifyImageFrom(image, entries);
    EXPECT_TRUE(r.cfg.opaque);
    EXPECT_FALSE(r.accepted()); // pass-1 verdict kept
}

TEST(Cfg, EdgesLeavingTheImageAreExternalSinks)
{
    // jmp far past the end, and a nop falling off the last byte: both
    // count as external targets, neither makes the image opaque.
    auto jump = bytes({0xEB, 0x10, 0xC3});
    VerifierReport r = verifyImageFrom(jump, {});
    EXPECT_TRUE(r.accepted());
    EXPECT_FALSE(r.cfg.opaque);
    EXPECT_EQ(r.cfg.externalTargets, 1u);

    auto falloff = bytes({0x90, 0x90});
    r = verifyImageFrom(falloff, {});
    EXPECT_TRUE(r.accepted());
    EXPECT_EQ(r.cfg.externalTargets, 1u);
}

TEST(Cfg, ReachableCoverageGauge)
{
    auto image = bytes({0xEB, 0x03,       // jmp → 5
                        0x90, 0x90, 0x90, // dead
                        0xC3});
    VerifierReport r = verifyImageFrom(image, {});
    EXPECT_EQ(r.cfg.reachableBytes, 3u); // jmp (2) + ret (1)
    EXPECT_GT(r.reachableCoverage(), 0.0);
    EXPECT_LT(r.reachableCoverage(), 1.0);
    // Pass 1 alone reports zero reachable coverage.
    EXPECT_DOUBLE_EQ(verifyImage(image).reachableCoverage(), 0.0);
}

TEST(Cfg, EmptyImageIsTriviallyAccepted)
{
    VerifierReport r = verifyImageFrom({}, {});
    EXPECT_TRUE(r.accepted());
    EXPECT_TRUE(r.cfg.ran);
    EXPECT_FALSE(r.cfg.opaque);
}

// ----------------------------------------------------------------------
// Loader integration
// ----------------------------------------------------------------------

TEST(VerifierLoader, RejectsAlignedWrpkruWithClassification)
{
    System sys;
    std::vector<uint8_t> image(256, 0x90);
    image[10] = 0x0F;
    image[11] = 0x01;
    image[12] = 0xEF;
    testing::addToy(sys, "evil").withImage(image);
    try {
        sys.boot();
        FAIL() << "hostile image was loaded";
    } catch (const VerifierError &e) {
        EXPECT_NE(std::string(e.what()).find("wrpkru"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("instruction-aligned"),
                  std::string::npos);
    }
}

TEST(VerifierLoader, AcceptsMisalignedSpanOnlyTheSweepWouldReject)
{
    // mov al, 0x0F ; add eax, imm32 ; ret — the grep's "0F 05" spans
    // two instructions, and no entry path executes at offset 1. Pass 1
    // alone rejected this shape (a false reject the reachability walk
    // exists to fix); the loader now accepts and keeps the downgraded
    // finding in the report.
    System sys;
    auto image = bytes({0xB0, 0x0F, 0x05, 0x11, 0x22, 0x33, 0x44, 0xC3});
    EXPECT_FALSE(verifyImage(image).accepted());
    testing::addToy(sys, "spanner").withImage(image);
    sys.boot();

    const auto &report = sys.monitor().verifierReport(sys.cidOf("spanner"));
    EXPECT_TRUE(report.accepted());
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings[0].cls, FindingClass::kUnreachable);
    EXPECT_TRUE(report.cfg.ran);
}

TEST(VerifierLoader, RejectsEntryPointIntoMisalignedSequence)
{
    // The same bytes with an export table handing out offset 1: the
    // walk decodes syscall right at the entry point.
    System sys;
    auto image = bytes({0xB0, 0x0F, 0x05, 0x11, 0x22, 0x33, 0x44, 0xC3});
    testing::addToy(sys, "sneaky")
        .withImage(image)
        .withEntryPoints({0, 1});
    try {
        sys.boot();
        FAIL() << "image with a forbidden entry path was loaded";
    } catch (const VerifierError &e) {
        EXPECT_NE(std::string(e.what()).find("syscall"), std::string::npos);
    }
}

TEST(VerifierLoader, RejectsEntryPointOutsideImage)
{
    System sys;
    std::vector<uint8_t> image(64, 0x90);
    image.push_back(0xC3);
    testing::addToy(sys, "broken")
        .withImage(image)
        .withEntryPoints({4096});
    try {
        sys.boot();
        FAIL() << "out-of-range entry point was accepted";
    } catch (const VerifierError &e) {
        EXPECT_NE(std::string(e.what()).find("outside"), std::string::npos);
    }
}

TEST(VerifierLoader, RetainsCfgSummaryInLoadReport)
{
    System sys;
    // jmp over a dead wrpkru island, then nops to a ret.
    auto image = bytes({0xEB, 0x03, 0x0F, 0x01, 0xEF});
    while (image.size() < 127)
        image.push_back(0x90);
    image.push_back(0xC3);
    testing::addToy(sys, "app").withImage(image);
    sys.boot();

    const auto &report = sys.monitor().verifierReport(sys.cidOf("app"));
    EXPECT_TRUE(report.accepted());
    EXPECT_TRUE(report.cfg.ran);
    EXPECT_FALSE(report.cfg.opaque);
    EXPECT_GT(report.cfg.reachableInsns, 0u);
    EXPECT_GT(report.reachableCoverage(), 0.9);
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings[0].cls, FindingClass::kUnreachable);
}

TEST(VerifierLoader, VerifierErrorIsALoaderError)
{
    System sys;
    std::vector<uint8_t> image(64, 0x90);
    image[0] = 0x0F;
    image[1] = 0x05;
    testing::addToy(sys, "evil").withImage(image);
    EXPECT_THROW(sys.boot(), LoaderError);
}

TEST(VerifierLoader, AcceptsEmbeddedConstantAndRecordsReport)
{
    System sys;
    // A benign stream whose one mov immediate happens to contain the
    // wrpkru bytes; padded with real instructions.
    std::vector<uint8_t> image =
        bytes({0xB8, 0x0F, 0x01, 0xEF, 0x90, 0xC3});
    while (image.size() < 128)
        image.push_back(0x90);
    testing::addToy(sys, "app").withImage(image);
    sys.boot();

    const Cid cid = sys.cidOf("app");
    const verifier::VerifierReport &report =
        sys.monitor().verifierReport(cid);
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings[0].cls, FindingClass::kEmbedded);
    EXPECT_EQ(report.findings[0].mnemonic, "wrpkru");
    EXPECT_TRUE(report.accepted());
    EXPECT_EQ(report.imageBytes, 128u);

    EXPECT_EQ(sys.stats().verifierReported(), 1u);
    EXPECT_EQ(sys.stats().verifierRejected(), 0u);
}

TEST(VerifierLoader, StatsCoverEveryLoadedImage)
{
    System sys;
    testing::addToy(sys, "a");
    testing::addToy(sys, "b");
    testing::addToy(sys, "c", CubicleKind::kShared);
    sys.boot();

    const Stats &stats = sys.stats();
    EXPECT_EQ(stats.imagesVerified(), 3u);
    EXPECT_GT(stats.verifierBytesScanned(), 0u);
    EXPECT_GT(stats.verifierInsns(), 0u);
    // Synthesized images are fully decodable instruction streams.
    EXPECT_EQ(stats.verifierBytesDecoded(), stats.verifierBytesScanned());
    for (Cid cid = 0; cid < 3; ++cid) {
        const auto &report = sys.monitor().verifierReport(cid);
        EXPECT_TRUE(report.accepted());
        EXPECT_DOUBLE_EQ(report.decodeCoverage(), 1.0) << cid;
    }
}

TEST(VerifyCache, IdenticalImagesLoadFromCache)
{
    verifier::VerifyCache::instance().clear();

    std::vector<uint8_t> shared_image(96, 0x90);
    shared_image.back() = 0xC3;
    std::vector<uint8_t> other_image(96, 0x90);
    other_image[0] = 0x50; // push rax: different bytes, different hash
    other_image.back() = 0xC3;

    System sys;
    testing::addToy(sys, "a").withImage(shared_image);
    testing::addToy(sys, "b").withImage(shared_image);
    testing::addToy(sys, "c").withImage(other_image);
    sys.boot();

    const Stats &stats = sys.stats();
    // Every load is a verified image; only two ran the sweep + walk.
    EXPECT_EQ(stats.imagesVerified(), 3u);
    EXPECT_EQ(stats.verifyCacheMisses(), 2u);
    EXPECT_EQ(stats.verifyCacheHits(), 1u);
    EXPECT_EQ(verifier::VerifyCache::instance().size(), 2u);

    // The cached report is indistinguishable from a fresh run.
    const auto &fresh = sys.monitor().verifierReport(sys.cidOf("a"));
    const auto &cached = sys.monitor().verifierReport(sys.cidOf("b"));
    EXPECT_EQ(cached.imageBytes, fresh.imageBytes);
    EXPECT_EQ(cached.insnCount, fresh.insnCount);
    EXPECT_EQ(cached.findings.size(), fresh.findings.size());
    EXPECT_TRUE(cached.cfg.ran);
}

TEST(VerifyCache, EntryPointsArePartOfTheKey)
{
    verifier::VerifyCache::instance().clear();

    // Same bytes, different export sets: the reachability walk seeds
    // differ, so the verdict may differ — they must not share a slot.
    std::vector<uint8_t> image(64, 0x90);
    image.back() = 0xC3;
    const std::size_t e0[] = {0};
    const std::size_t e8[] = {8};
    EXPECT_NE(verifier::VerifyCache::hashImage(image, e0),
              verifier::VerifyCache::hashImage(image, e8));

    bool hit = true;
    verifier::VerifyCache::instance().verify(image, e0, {}, &hit);
    EXPECT_FALSE(hit);
    verifier::VerifyCache::instance().verify(image, e8, {}, &hit);
    EXPECT_FALSE(hit);
    verifier::VerifyCache::instance().verify(image, e0, {}, &hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(verifier::VerifyCache::instance().size(), 2u);
}

TEST(VerifyCache, RejectingImageRejectsAgainOnHit)
{
    verifier::VerifyCache::instance().clear();

    std::vector<uint8_t> evil(64, 0x90);
    evil[0] = 0x0F; // aligned wrpkru
    evil[1] = 0x01;
    evil[2] = 0xEF;

    {
        System sys;
        testing::addToy(sys, "evil").withImage(evil);
        EXPECT_THROW(sys.boot(), VerifierError);
    }
    {
        // Second load is served from the cache — and still rejected.
        System sys;
        testing::addToy(sys, "evil2").withImage(evil);
        EXPECT_THROW(sys.boot(), VerifierError);
        EXPECT_EQ(sys.stats().verifyCacheHits(), 1u);
    }
}

} // namespace
} // namespace cubicleos::core
