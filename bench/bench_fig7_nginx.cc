/**
 * @file
 * Figure 7: NGINX download latency vs file size, baseline Unikraft vs
 * CubicleOS with 8 isolated cubicles.
 *
 * Paper result (§6.3): latency is almost flat up to 64 kB (5-6 ms
 * baseline, 6-7 ms CubicleOS, ~15% overhead), then grows linearly
 * with file size; at large sizes CubicleOS halves the throughput
 * (2x latency).
 */

#include <cstdio>
#include <vector>

#include "apps/httpd/harness.h"
#include "bench/bench_util.h"

using namespace cubicleos;

int
main()
{
    bench::header("Figure 7: NGINX download latency vs file size",
                  "Sartakov et al., ASPLOS'21, Fig. 7 / Sec. 6.3");

    const std::vector<std::size_t> sizes = {
        1 << 10,  2 << 10,  8 << 10,   32 << 10,  64 << 10,
        128 << 10, 512 << 10, 1 << 20, 2 << 20,   8 << 20,
    };
    const int reps = bench::intFromEnv("CUBICLE_BENCH_REPS", 2);

    struct Point {
        double base = 1e18;
        double cubicle = 1e18;
    };
    std::vector<Point> points(sizes.size());

    for (int rep = 0; rep < reps; ++rep) {
        httpd::HttpHarness base(core::IsolationMode::kUnikraft,
                                /*num_pages=*/65536);
        httpd::HttpHarness cubicle(core::IsolationMode::kFull,
                                   /*num_pages=*/65536);
        for (std::size_t i = 0; i < sizes.size(); ++i) {
            const std::string path =
                "/file" + std::to_string(sizes[i]);
            base.createFile(path, sizes[i]);
            cubicle.createFile(path, sizes[i]);
            // Warm request, then the measured one.
            base.fetch(path);
            cubicle.fetch(path);
            const auto b = base.fetch(path);
            const auto c = cubicle.fetch(path);
            if (b.status != 200 || c.status != 200 ||
                b.bodyBytes != sizes[i] || c.bodyBytes != sizes[i]) {
                std::fprintf(stderr, "transfer error at size %zu\n",
                             sizes[i]);
                return 1;
            }
            points[i].base = std::min(points[i].base, b.latencyMs());
            points[i].cubicle =
                std::min(points[i].cubicle, c.latencyMs());
        }
    }

    std::printf("%-12s %14s %14s %10s\n", "size", "unikraft(ms)",
                "cubicleos(ms)", "overhead");
    bench::rule('-', 56);
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        const char *unit = sizes[i] >= (1 << 20) ? "MB" : "kB";
        const double disp = sizes[i] >= (1 << 20)
                                ? sizes[i] / double(1 << 20)
                                : sizes[i] / double(1 << 10);
        std::printf("%7.0f %-4s %14.2f %14.2f %9.2fx\n", disp, unit,
                    points[i].base, points[i].cubicle,
                    points[i].cubicle / points[i].base);
    }
    bench::rule('-', 56);
    std::printf("\nexpected shape: flat until the 64 kB socket-buffer "
                "knee, then linear;\noverhead ~1.15x for small files "
                "rising towards ~2x for large ones.\n");
    return 0;
}
