/**
 * @file
 * Figure 7: NGINX download latency vs file size, baseline Unikraft vs
 * CubicleOS with 8 isolated cubicles — plus the zero-copy sendfile
 * comparison on the CubicleOS deployment.
 *
 * Paper result (§6.3): latency is almost flat up to 64 kB (5-6 ms
 * baseline, 6-7 ms CubicleOS, ~15% overhead), then grows linearly
 * with file size; at large sizes CubicleOS halves the throughput
 * (2x latency).
 *
 * The sendfile rows compare the classic pread-into-buffer-then-send
 * body path against the grant-layer sendfile path (vfs_borrow +
 * sendZero), which serves file bodies from RAMFS blocks in place —
 * zero payload copies between the block and the TCP segment. Results
 * go to stdout and, machine-readably, to BENCH_fig7_nginx.json
 * (see EXPERIMENTS.md).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "apps/httpd/harness.h"
#include "bench/bench_util.h"

using namespace cubicleos;

namespace {

/** One copy-vs-sendfile measurement row. */
struct XferRow {
    std::size_t size = 0;
    bool sendfile = false;
    int requests = 0;
    double reqPerSec = 0;
    double trapsPerReq = 0;
    double copiesPerReq = 0;
    uint64_t bytesCopied = 0;
    uint64_t zcBytes = 0;
};

XferRow
runXfer(std::size_t size, bool sendfile, int requests)
{
    httpd::HttpHarness h(core::IsolationMode::kFull,
                         /*num_pages=*/65536,
                         /*request_base_cycles=*/11'000'000, sendfile);
    const std::string path = "/file" + std::to_string(size);
    h.createFile(path, size);
    h.fetch(path); // warm-up: faults the working set in

    auto &st = h.sys().stats();
    const uint64_t traps0 = st.traps();
    const uint64_t copies0 = st.dataCopies();
    const uint64_t bytes0 = st.dataCopyBytes();
    const uint64_t zc0 = st.zeroCopyBytes();

    XferRow row;
    row.size = size;
    row.sendfile = sendfile;
    row.requests = requests;
    double total_ms = 0;
    for (int i = 0; i < requests; ++i) {
        const auto res = h.fetch(path);
        if (res.status != 200 || res.bodyBytes != size) {
            std::fprintf(stderr, "transfer error at size %zu\n", size);
            std::exit(1);
        }
        total_ms += res.latencyMs();
    }
    row.reqPerSec = requests / (total_ms / 1e3);
    row.trapsPerReq = double(st.traps() - traps0) / requests;
    row.copiesPerReq = double(st.dataCopies() - copies0) / requests;
    row.bytesCopied = st.dataCopyBytes() - bytes0;
    row.zcBytes = st.zeroCopyBytes() - zc0;
    return row;
}

} // namespace

int
main()
{
    bench::header("Figure 7: NGINX download latency vs file size",
                  "Sartakov et al., ASPLOS'21, Fig. 7 / Sec. 6.3");

    const std::vector<std::size_t> sizes = {
        1 << 10,  2 << 10,  8 << 10,   32 << 10,  64 << 10,
        128 << 10, 512 << 10, 1 << 20, 2 << 20,   8 << 20,
    };
    const int reps = bench::intFromEnv("CUBICLE_BENCH_REPS", 5);

    struct Point {
        double base = 1e18;
        double cubicle = 1e18;
        // Isolation work of the min-latency CubicleOS request: every
        // row carries its trap and copy counts, so a latency
        // regression is attributable at a glance (traps x 3,500
        // modelled cycles is the trap-and-map share of the gap).
        double traps = 0;
        double copies = 0;
    };
    std::vector<Point> points(sizes.size());

    for (int rep = 0; rep < reps; ++rep) {
        httpd::HttpHarness base(core::IsolationMode::kUnikraft,
                                /*num_pages=*/65536);
        httpd::HttpHarness cubicle(core::IsolationMode::kFull,
                                   /*num_pages=*/65536);
        for (std::size_t i = 0; i < sizes.size(); ++i) {
            const std::string path =
                "/file" + std::to_string(sizes[i]);
            base.createFile(path, sizes[i]);
            cubicle.createFile(path, sizes[i]);
            // Warm request, then the measured one.
            base.fetch(path);
            cubicle.fetch(path);
            const auto b = base.fetch(path);
            auto &st = cubicle.sys().stats();
            const uint64_t traps0 = st.traps();
            const uint64_t copies0 = st.dataCopies();
            const auto c = cubicle.fetch(path);
            if (b.status != 200 || c.status != 200 ||
                b.bodyBytes != sizes[i] || c.bodyBytes != sizes[i]) {
                std::fprintf(stderr, "transfer error at size %zu\n",
                             sizes[i]);
                return 1;
            }
            points[i].base = std::min(points[i].base, b.latencyMs());
            if (c.latencyMs() < points[i].cubicle) {
                points[i].cubicle = c.latencyMs();
                points[i].traps = double(st.traps() - traps0);
                points[i].copies = double(st.dataCopies() - copies0);
            }
        }
    }

    std::printf("%-12s %14s %14s %10s %10s %10s\n", "size",
                "unikraft(ms)", "cubicleos(ms)", "overhead",
                "traps/req", "copies/req");
    bench::rule('-', 78);
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        const char *unit = sizes[i] >= (1 << 20) ? "MB" : "kB";
        const double disp = sizes[i] >= (1 << 20)
                                ? sizes[i] / double(1 << 20)
                                : sizes[i] / double(1 << 10);
        std::printf("%7.0f %-4s %14.2f %14.2f %9.2fx %10.0f %10.0f\n",
                    disp, unit, points[i].base, points[i].cubicle,
                    points[i].cubicle / points[i].base,
                    points[i].traps, points[i].copies);
    }
    bench::rule('-', 78);
    std::printf("\nexpected shape: flat until the 64 kB socket-buffer "
                "knee, then linear;\noverhead ~1.15x for small files "
                "rising towards ~2x for large ones.\n");

    // --- copy path vs zero-copy sendfile on the CubicleOS deployment.
    const int requests = bench::intFromEnv("CUBICLE_BENCH_SF_REQS", 4);
    const std::vector<std::size_t> sf_sizes = {64 << 10, 512 << 10,
                                               2 << 20};
    std::vector<XferRow> rows;
    std::printf("\ncopy path vs zero-copy sendfile (CubicleOS, %d "
                "requests each):\n",
                requests);
    std::printf("%-10s %-9s %10s %12s %12s %14s %14s\n", "size",
                "path", "req/s", "traps/req", "copies/req",
                "bytes copied", "zc bytes");
    bench::rule('-', 88);
    for (std::size_t size : sf_sizes) {
        for (bool sendfile : {false, true}) {
            const XferRow r = runXfer(size, sendfile, requests);
            rows.push_back(r);
            const char *unit = size >= (1 << 20) ? "MB" : "kB";
            const double disp = size >= (1 << 20)
                                    ? size / double(1 << 20)
                                    : size / double(1 << 10);
            std::printf(
                "%5.0f %-4s %-9s %10.1f %12.1f %12.1f %14llu %14llu\n",
                disp, unit, sendfile ? "sendfile" : "copy", r.reqPerSec,
                r.trapsPerReq, r.copiesPerReq,
                static_cast<unsigned long long>(r.bytesCopied),
                static_cast<unsigned long long>(r.zcBytes));
        }
    }
    bench::rule('-', 88);
    std::printf("sendfile serves bodies from borrowed RAMFS blocks: "
                "copies/request drops to the\nheader-only residue and "
                "every body byte leaves as a zero-copy segment.\n");

    FILE *json = std::fopen("BENCH_fig7_nginx.json", "w");
    if (!json) {
        std::perror("BENCH_fig7_nginx.json");
        return 1;
    }
    std::fprintf(json,
                 "{\n"
                 "  \"bench\": \"fig7_nginx\",\n"
                 "  \"reps\": %d,\n"
                 "  \"latency_ms\": [\n",
                 reps);
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        std::fprintf(json,
                     "    {\"size_bytes\": %zu, \"unikraft\": %.3f, "
                     "\"cubicleos\": %.3f, \"overhead\": %.3f, "
                     "\"traps_per_request\": %.0f, "
                     "\"copies_per_request\": %.0f}%s\n",
                     sizes[i], points[i].base, points[i].cubicle,
                     points[i].cubicle / points[i].base,
                     points[i].traps, points[i].copies,
                     i + 1 < sizes.size() ? "," : "");
    }
    std::fprintf(json,
                 "  ],\n"
                 "  \"sendfile_requests\": %d,\n"
                 "  \"sendfile\": [\n",
                 requests);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const XferRow &r = rows[i];
        std::fprintf(
            json,
            "    {\"size_bytes\": %zu, \"path\": \"%s\", "
            "\"req_per_sec\": %.1f, \"traps_per_request\": %.1f, "
            "\"copies_per_request\": %.1f, \"bytes_copied\": %llu, "
            "\"zero_copy_bytes\": %llu}%s\n",
            r.size, r.sendfile ? "sendfile" : "copy", r.reqPerSec,
            r.trapsPerReq, r.copiesPerReq,
            static_cast<unsigned long long>(r.bytesCopied),
            static_cast<unsigned long long>(r.zcBytes),
            i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("\nwrote BENCH_fig7_nginx.json\n");
    return 0;
}
