/**
 * @file
 * Figures 9 and 10: the cost of adding a compartment, CubicleOS vs
 * message-based component systems.
 *
 * Fig. 9 defines two partitionings of the SQLite stack: 3 components
 * (app | core-with-RAMFS | timer) and 4 components (RAMFS separated).
 * Fig. 10a reports the slowdown of each deployment vs native Linux:
 * Unikraft 2.8x, Genode-3 1.4x, Genode-4 29x, CubicleOS-3 4.1x,
 * CubicleOS-4 5.4x. Fig. 10b reports the slowdown of the 4-component
 * deployment relative to the 3-component one per kernel: seL4 7.5x,
 * Fiasco.OC 4.5x, NOVA 4.7x, CubicleOS 1.4x (artifact notes: >4x for
 * microkernels, ~1.3x for CubicleOS on any platform).
 */

#include <cstdio>
#include <functional>

#include "apps/minisql/speedtest.h"
#include "baselines/deployments.h"
#include "bench/bench_util.h"

using namespace cubicleos;
using baselines::SqliteDeployment;
using baselines::kernels::fiascoOC;
using baselines::kernels::genodeLinux;
using baselines::kernels::nova;
using baselines::kernels::seL4;

namespace {

/** Runs the speedtest subset on a deployment; returns total ms. */
double
runWorkload(SqliteDeployment &dep, int scale)
{
    minisql::Speedtest suite(&dep.database(), scale);
    double total = 0;
    // The full suite, as in the paper ("average across all
    // speedtest1 queries").
    for (int id : minisql::Speedtest::queryIds()) {
        hw::CycleClock dummy;
        const uint64_t model0 = dep.modelCycles();
        const auto t0 = std::chrono::steady_clock::now();
        dep.enter([&] { suite.run(id); });
        const auto t1 = std::chrono::steady_clock::now();
        total +=
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        total += hw::CycleClock::toNanoseconds(dep.modelCycles() -
                                               model0) /
                 1e6;
    }
    return total;
}

double
minOverReps(const std::function<double()> &fn, int reps)
{
    double best = 1e18;
    for (int i = 0; i < reps; ++i)
        best = std::min(best, fn());
    return best;
}

} // namespace

int
main()
{
    const int scale = bench::scaleFromEnv("CUBICLE_BENCH_SCALE", 300);
    const int reps = bench::intFromEnv("CUBICLE_BENCH_REPS", 3);
    // A small page cache keeps the workload I/O-bound, as in the
    // paper's setup, so boundary-crossing costs dominate.
    const std::size_t cache = static_cast<std::size_t>(
        bench::intFromEnv("CUBICLE_BENCH_CACHE", 16, 8));

    bench::header(
        "Figures 9+10: partitioning cost across component systems",
        "Sartakov et al., ASPLOS'21, Fig. 9, Fig. 10a, Fig. 10b");
    std::printf("speedtest scale: %d, reps: %d\n\n", scale, reps);

    // Warm-up pass.
    {
        auto warm = SqliteDeployment::makeLinux(cache);
        runWorkload(*warm, scale);
    }

    struct Entry {
        std::string name;
        double ms3 = 0; ///< 3-component variant (0 if n/a)
        double ms4 = 0; ///< 4-component variant
    };

    const double linux_ms = minOverReps(
        [&] {
            auto dep = SqliteDeployment::makeLinux(cache);
            return runWorkload(*dep, scale);
        },
        reps);

    const double unikraft_ms = minOverReps(
        [&] {
            auto dep = SqliteDeployment::makeCubicles(
                7, core::IsolationMode::kUnikraft, cache);
            return runWorkload(*dep, scale);
        },
        reps);

    std::vector<Entry> entries;
    auto add_pair = [&](const std::string &name,
                        const std::function<
                            std::unique_ptr<SqliteDeployment>(int)>
                            &make) {
        Entry e;
        e.name = name;
        e.ms3 = minOverReps(
            [&] { return runWorkload(*make(1), scale); }, reps);
        e.ms4 = minOverReps(
            [&] { return runWorkload(*make(2), scale); }, reps);
        entries.push_back(e);
    };

    add_pair("Genode/Linux", [&](int hops) {
        return SqliteDeployment::makeMicrokernel(genodeLinux(), hops,
                                                 cache);
    });
    add_pair("seL4", [&](int hops) {
        return SqliteDeployment::makeMicrokernel(seL4(), hops, cache);
    });
    add_pair("Fiasco.OC", [&](int hops) {
        return SqliteDeployment::makeMicrokernel(fiascoOC(), hops,
                                                 cache);
    });
    add_pair("NOVA", [&](int hops) {
        return SqliteDeployment::makeMicrokernel(nova(), hops, cache);
    });
    add_pair("CubicleOS", [&](int hops) {
        return SqliteDeployment::makeCubicles(
            hops == 1 ? 3 : 4, core::IsolationMode::kFull, cache);
    });

    // --- Fig. 10a: slowdown vs Linux -------------------------------
    std::printf("Fig. 10a: slowdown vs native Linux (paper values in "
                "parentheses)\n");
    bench::rule('-', 64);
    std::printf("  %-16s %8.2fx   (1.0x, by definition)\n", "Linux",
                1.0);
    std::printf("  %-16s %8.2fx   (paper: 2.8x)\n", "Unikraft",
                unikraft_ms / linux_ms);
    for (const Entry &e : entries) {
        const char *paper3 = e.name == "Genode/Linux" ? "1.4x"
                             : e.name == "CubicleOS"  ? "4.1x"
                                                      : "-";
        const char *paper4 = e.name == "Genode/Linux" ? "29x"
                             : e.name == "CubicleOS"  ? "5.4x"
                                                      : "-";
        std::printf("  %-16s %8.2fx   (paper: %s)\n",
                    (e.name + "-3").c_str(), e.ms3 / linux_ms, paper3);
        std::printf("  %-16s %8.2fx   (paper: %s)\n",
                    (e.name + "-4").c_str(), e.ms4 / linux_ms, paper4);
    }
    bench::rule('-', 64);

    // --- Fig. 10b: cost of the extra compartment --------------------
    std::printf("\nFig. 10b: slowdown of 4 components vs 3 (adding "
                "the RAMFS compartment)\n");
    bench::rule('-', 64);
    for (const Entry &e : entries) {
        const char *paper = e.name == "seL4"        ? "7.5x"
                            : e.name == "Fiasco.OC" ? "4.5x"
                            : e.name == "NOVA"      ? "4.7x"
                            : e.name == "CubicleOS" ? "1.4x"
                            : e.name == "Genode/Linux" ? "~20x" : "-";
        std::printf("  %-16s %8.2fx   (paper: %s)\n", e.name.c_str(),
                    e.ms4 / e.ms3, paper);
    }
    bench::rule('-', 64);
    std::printf("\nheadline: adding a compartment costs >4x on "
                "message-based systems\nbut stays near 1.3-1.4x on "
                "CubicleOS (artifact appendix A.8).\n");
    return 0;
}
