/**
 * @file
 * Tag-pressure smoke test: a 64-cubicle multi-tenant web deployment
 * must boot and serve correctly on 16 physical MPK tags.
 *
 * 12 infrastructure cubicles plus 26 tenant groups (an NGINX instance
 * and a request-log cubicle each) put 64 logical cubicles behind the
 * monitor's logical-key table (DESIGN.md §14). The test serves every
 * tenant once cold (forcing parked tenants through the full
 * evict/fault-back-in path), then re-serves a working set in
 * per-tenant batches and hard-fails if the steady-state physical-tag
 * hit rate drops below the committed floor. Deterministic (virtual
 * clock + counters), so it runs as an ordinary tier-1 ctest.
 */

#include <cstdio>
#include <string>

#include "baselines/deployments.h"

using namespace cubicleos;

namespace {

constexpr int kTenants = 26; // 12 + 2*26 = 64 cubicles
constexpr std::size_t kFileSize = 4096;

/**
 * Committed floor for the steady-state physical-tag hit rate under
 * per-tenant request batching (acceptance gate: >= 90% at 64
 * cubicles). Batching keeps each tenant's group resident across its
 * burst, so misses only happen on the first request of a batch.
 */
constexpr double kHitRateFloor = 90.0;

} // namespace

int
main()
{
    auto h = baselines::makeMultiTenantHttpd(
        kTenants, core::IsolationMode::kFull, 65536);

    const std::size_t cubicles = h->sys().cubicleCount();
    if (cubicles < 64) {
        std::fprintf(stderr,
                     "tag_pressure_smoke: only %zu cubicles booted, "
                     "need >= 64\n",
                     cubicles);
        return 1;
    }

    // Cold pass: every tenant serves once. Most tenants are parked at
    // this point, so each request exercises eviction + fault-back-in.
    // File contents are deterministic per path, so each tenant's body
    // from the cold pass is the reference for the pressured re-serve.
    std::string want[kTenants];
    for (int t = 0; t < kTenants; ++t) {
        h->createFile(t, "/index.html", kFileSize);
        const auto res = h->fetch(t, "/index.html");
        if (res.status != 200 || res.bodyBytes != kFileSize) {
            std::fprintf(stderr,
                         "tag_pressure_smoke: tenant %d cold fetch "
                         "failed (status %d, %zu bytes)\n",
                         t, res.status, res.bodyBytes);
            return 1;
        }
        want[t] = res.body;
    }

    auto &st = h->sys().stats();
    const uint64_t cold_evictions = st.evictions();
    const uint64_t cold_fault_ins = st.faultIns();
    if (cold_evictions == 0) {
        std::fprintf(stderr,
                     "tag_pressure_smoke: 64 cubicles on 16 tags took "
                     "no evictions — virtualisation is not engaged\n");
        return 1;
    }

    // Steady-state pass: per-tenant batches over a 6-tenant working
    // set. Reset the counters so the rate reflects serving, not boot.
    h->sys().stats().reset();
    for (int t = 0; t < 6; ++t) {
        for (int i = 0; i < 8; ++i) {
            const auto res = h->fetch(t, "/index.html");
            if (res.status != 200 || res.bodyBytes != kFileSize) {
                std::fprintf(stderr,
                             "tag_pressure_smoke: tenant %d batch "
                             "fetch failed (status %d)\n",
                             t, res.status);
                return 1;
            }
            if (res.body != want[t]) {
                std::fprintf(stderr,
                             "tag_pressure_smoke: tenant %d served "
                             "wrong bytes under tag pressure\n",
                             t);
                return 1;
            }
        }
    }

    const double hit_rate = st.tagHitRatePercent();
    if (hit_rate < kHitRateFloor) {
        std::fprintf(stderr,
                     "tag_pressure_smoke: steady-state tag hit rate "
                     "%.1f%%, floor is %.1f%%.\nPer-tenant batching "
                     "should keep each group resident across its "
                     "burst: check the LRU stamp (Monitor::noteSwitch) "
                     "and the dynamic pool size.\n",
                     hit_rate, kHitRateFloor);
        return 1;
    }

    // Request accounting crossed every tenant's log cubicle.
    for (int t = 0; t < 6; ++t) {
        if (h->tenantLog(t).totalRequests() == 0) {
            std::fprintf(stderr,
                         "tag_pressure_smoke: tenant %d log cubicle "
                         "recorded no requests\n",
                         t);
            return 1;
        }
    }

    std::printf("tag_pressure_smoke: %zu cubicles on %d physical tags; "
                "%llu evictions / %llu fault-ins during cold serve; "
                "steady-state tag hit rate %.1f%% (floor %.1f%%)\n",
                cubicles, hw::kNumPhysPkeys,
                static_cast<unsigned long long>(cold_evictions),
                static_cast<unsigned long long>(cold_fault_ins),
                hit_rate, kHitRateFloor);
    return 0;
}
