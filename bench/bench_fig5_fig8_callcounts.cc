/**
 * @file
 * Figures 5 and 8: the component graphs with per-edge cross-cubicle
 * call counts for the NGINX deployment (8 isolated cubicles) and the
 * SQLite deployment (7 isolated cubicles).
 *
 * The paper annotates each edge with the number of cross-cubicle
 * calls observed while running the benchmark (Fig. 5: measurement
 * window; Fig. 8: including boot). This binary regenerates those
 * annotations for our reproduction.
 */

#include <cstdio>

#include "apps/httpd/harness.h"
#include "apps/minisql/speedtest.h"
#include "baselines/deployments.h"
#include "bench/bench_util.h"

using namespace cubicleos;

namespace {

void
printEdges(core::System &sys)
{
    std::printf("%-12s -> %-12s %14s\n", "caller", "callee", "calls");
    bench::rule('-', 44);
    for (const auto &edge : sys.stats().edges()) {
        std::printf("%-12s -> %-12s %14llu\n",
                    sys.monitor().cubicle(edge.caller).name.c_str(),
                    sys.monitor().cubicle(edge.callee).name.c_str(),
                    static_cast<unsigned long long>(edge.count));
    }
    bench::rule('-', 44);
    std::printf("total cross-cubicle calls: %llu\n",
                static_cast<unsigned long long>(
                    sys.stats().totalCalls()));
    std::printf("traps: %llu   retags: %llu   wrpkru writes: %llu\n\n",
                static_cast<unsigned long long>(sys.stats().traps()),
                static_cast<unsigned long long>(sys.stats().retags()),
                static_cast<unsigned long long>(
                    sys.stats().wrpkrus()));
}

} // namespace

int
main()
{
    const int scale = bench::scaleFromEnv("CUBICLE_BENCH_SCALE", 400);

    bench::header("Figure 8: SQLite deployment, cross-cubicle call "
                  "counts (incl. boot)",
                  "Sartakov et al., ASPLOS'21, Fig. 8");
    {
        auto dep = baselines::SqliteDeployment::makeCubicles(
            7, core::IsolationMode::kFull, 256);
        minisql::Speedtest suite(&dep->database(), scale);
        dep->enter([&] { suite.runAll(); });
        printEdges(*dep->system());
        std::printf("paper's hottest edges, for shape comparison:\n"
                    "  SQLITE->VFSCORE 967,366   VFSCORE->RAMFS "
                    "1,948,187   RAMFS->ALLOC 13,876,883\n"
                    "(absolute counts scale with the workload size; "
                    "the topology and ordering match)\n\n");
    }

    bench::header("Figure 5: NGINX deployment, cross-cubicle call "
                  "counts (measurement window)",
                  "Sartakov et al., ASPLOS'21, Fig. 5");
    {
        httpd::HttpHarness harness(core::IsolationMode::kFull, 65536);
        for (std::size_t size : {4096u, 65536u, 262144u}) {
            harness.createFile("/f" + std::to_string(size), size);
        }
        // Boot traffic excluded, as in the paper's Fig. 5.
        harness.sys().stats().reset();
        for (int i = 0; i < 10; ++i) {
            for (std::size_t size : {4096u, 65536u, 262144u})
                harness.fetch("/f" + std::to_string(size));
        }
        printEdges(harness.sys());
        std::printf("paper's hottest edges, for shape comparison:\n"
                    "  NGINX->LWIP 44,135   LWIP->NETDEV 6,991(x4)   "
                    "NGINX->VFSCORE 55,948(+)   VFSCORE->RAMFS 217\n");
    }
    return 0;
}
