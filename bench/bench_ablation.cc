/**
 * @file
 * Ablations of the paper's §8 future-work proposals:
 *
 *  1. Hot windows ("window-specific tags that reduce overhead for
 *     frequently-used windows"): keeping a frequently used buffer's
 *     window open across calls eliminates the per-call trap-and-map
 *     ping-pong; this bench quantifies the saving on an I/O-heavy
 *     read loop.
 *
 *  2. MPK tag virtualisation (>16 compartments): overflow cubicles
 *     hold logical keys and time-multiplex a dynamic pool of physical
 *     tags (DESIGN.md §14); this bench shows a 20-isolated-cubicle
 *     system boots and runs, and reports its tag hit rate.
 */

#include <cstdio>
#include <cstring>

#include "bench/bench_util.h"
#include "libos/app.h"
#include "libos/stack.h"
#include "libos/ukapi.h"

using namespace cubicleos;

namespace {

struct Rig {
    explicit Rig(bool hot)
    {
        core::SystemConfig cfg;
        cfg.numPages = 16384;
        sys = std::make_unique<core::System>(cfg);
        libos::addLibosComponents(*sys);
        app = static_cast<libos::AppComponent *>(
            &sys->addComponent(std::make_unique<libos::AppComponent>()));
        libos::finishBoot(*sys);
        app->run([&] {
            fs = std::make_unique<libos::CubicleFileApi>(*sys, "ramfs",
                                                         hot);
        });
    }

    ~Rig()
    {
        app->run([&] { fs.reset(); });
    }

    std::unique_ptr<core::System> sys;
    libos::AppComponent *app = nullptr;
    std::unique_ptr<libos::CubicleFileApi> fs;
};

bench::Measurement
readLoop(Rig &rig, int iters)
{
    bench::Measurement m;
    rig.app->run([&] {
        char *buf = static_cast<char *>(rig.sys->heapAlloc(4096));
        const int fd = rig.fs->open("/hot.bin", libos::kCreate |
                                                    libos::kRdWr);
        rig.fs->pwrite(fd, buf, 4096, 0);
        m = bench::measure(rig.sys->clock(), [&] {
            for (int i = 0; i < iters; ++i)
                rig.fs->pread(fd, buf, 4096, 0);
        });
        rig.fs->close(fd);
    });
    return m;
}

} // namespace

int
main()
{
    const int iters = bench::intFromEnv("CUBICLE_BENCH_SCALE", 5000);

    bench::header("Ablation 1: hot windows (paper Sec. 8 proposal)",
                  "Sartakov et al., ASPLOS'21, Sec. 8 discussion");
    {
        Rig per_call(false);
        Rig hot(true);
        readLoop(per_call, 100); // warm-up
        readLoop(hot, 100);
        const auto cold_m = readLoop(per_call, iters);
        const auto hot_m = readLoop(hot, iters);
        std::printf("%-28s %12s %12s %10s %10s\n", "config",
                    "total(ms)", "model(ms)", "traps", "retags");
        bench::rule('-', 78);
        std::printf("%-28s %12.2f %12.2f %10llu %10llu\n",
                    "per-call windows", cold_m.totalMs(),
                    cold_m.modelMs,
                    static_cast<unsigned long long>(
                        per_call.sys->stats().traps()),
                    static_cast<unsigned long long>(
                        per_call.sys->stats().retags()));
        std::printf("%-28s %12.2f %12.2f %10llu %10llu\n",
                    "hot windows", hot_m.totalMs(), hot_m.modelMs,
                    static_cast<unsigned long long>(
                        hot.sys->stats().traps()),
                    static_cast<unsigned long long>(
                        hot.sys->stats().retags()));
        bench::rule('-', 78);
        std::printf("speedup from hot windows: %.2fx on a cached "
                    "4 kB pread loop\n\n",
                    cold_m.totalMs() / hot_m.totalMs());
    }

    bench::header(
        "Ablation 2: MPK tag virtualisation (>16 compartments)",
        "Sartakov et al., ASPLOS'21, Sec. 8 discussion");
    {
        core::SystemConfig cfg;
        cfg.numPages = 16384;
        cfg.virtualizeTags = true;
        core::System sys(cfg);
        constexpr int kCubicles = 20;
        struct Echo : core::Component {
            std::string name_;
            explicit Echo(std::string n) : name_(std::move(n)) {}
            core::ComponentSpec spec() const override
            {
                core::ComponentSpec s;
                s.name = name_;
                s.stackPages = 2;
                return s;
            }
            void registerExports(core::Exporter &exp) override
            {
                exp.fn<int(int)>(name_ + "_inc",
                                 [](int x) { return x + 1; });
            }
        };
        for (int i = 0; i < kCubicles; ++i) {
            sys.addComponent(
                std::make_unique<Echo>("c" + std::to_string(i)));
        }
        sys.boot();

        // Chain a call through every cubicle.
        std::vector<core::CrossFn<int(int)>> fns;
        for (int i = 0; i < kCubicles; ++i) {
            fns.push_back(sys.resolve<int(int)>(
                "c" + std::to_string(i),
                "c" + std::to_string(i) + "_inc"));
        }
        int v = 0;
        const auto m = bench::measure(sys.clock(), [&] {
            sys.runAs(sys.cidOf("c0"), [&] {
                for (int round = 0; round < 2000; ++round) {
                    for (auto &fn : fns)
                        v = fn(v);
                }
            });
        });
        std::printf("20 isolated cubicles on 16 hardware keys: boot OK, "
                    "%d calls in %.2f ms\n", v, m.totalMs());
        int parked = 0, logical = 0;
        for (core::Cid cid = 0;
             cid < static_cast<core::Cid>(sys.cubicleCount()); ++cid) {
            const auto &cub = sys.monitor().cubicle(cid);
            if (cub.lkey >= hw::kFirstLogicalKey)
                ++logical;
            if (cub.pkey == sys.monitor().parkedKey())
                ++parked;
        }
        const uint64_t hits = sys.stats().tagHits();
        const uint64_t misses = sys.stats().tagMisses();
        std::printf("logical-key cubicles: %d (%d currently parked); "
                    "physical-tag hit rate %.1f%% over %llu switches — "
                    "evicted cubicles keep full isolation behind the "
                    "parked tag and fault back in on demand "
                    "(evictions: %llu)\n",
                    logical, parked,
                    hits + misses
                        ? 100.0 * static_cast<double>(hits) /
                              static_cast<double>(hits + misses)
                        : 0.0,
                    static_cast<unsigned long long>(hits + misses),
                    static_cast<unsigned long long>(
                        sys.stats().evictions()));
    }
    return 0;
}
