/**
 * @file
 * Tag-virtualisation benchmark (DESIGN.md §14): what does it cost to
 * run more logical cubicles than the 16 MPK keys the hardware has?
 *
 * Two sections, machine-readably mirrored in BENCH_tag_pressure.json:
 *
 *  1. Micro sweep, 8 -> 128 logical cubicles on toy components:
 *     per-eviction cost and fault-back-in latency (modelled cycles),
 *     plus the physical-tag hit rate under the two canonical access
 *     patterns — adversarial round-robin (every switch touches a
 *     different parked cubicle) and per-cubicle batching (each
 *     cubicle serves a burst before the next one runs).
 *
 *  2. The 64-cubicle multi-tenant web deployment (26 tenant groups on
 *     the Fig. 5 networked stack) serving a working set in per-tenant
 *     batches: the acceptance gate is a >= 90% steady-state hit rate.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/deployments.h"
#include "bench/bench_util.h"
#include "tests/core/toy_components.h"

using namespace cubicleos;

namespace {

struct MicroResult {
    int cubicles = 0;
    uint64_t evictions = 0;
    uint64_t faultIns = 0;
    double cyclesPerEviction = 0;  ///< full evict sweep, amortised
    double faultInCycles = 0;      ///< one parked->resident transition
    double roundRobinHitPct = 0;
    double batchedHitPct = 0;
};

/** Boots @p n toy cubicles plus a hot driver and measures the sweep. */
MicroResult
runMicro(int n)
{
    core::SystemConfig cfg;
    cfg.numPages = 32768;
    cfg.stackPages = 2;
    cfg.virtualizeTags = true;
    core::System sys(cfg);
    // Worker 0 doubles as the driver (it runs constantly, so it stays
    // resident); workers 1..n-1 are the parked population under test.
    // That keeps the whole sweep inside the 128-cid ACL width even at
    // the top of the range.
    for (int i = 0; i < n; ++i) {
        core::testing::addToy(sys, "w" + std::to_string(i))
            .onExports([](core::Exporter &exp,
                          core::testing::ToyComponent &) {
                exp.fn<int(int)>("ping", [](int x) { return x + 1; });
            });
    }
    sys.boot();

    std::vector<core::CrossFn<int(int)>> ping;
    for (int i = 1; i < n; ++i) {
        ping.push_back(
            sys.resolve<int(int)>("w" + std::to_string(i), "ping"));
    }
    const core::Cid driver = sys.cidOf("w0");

    MicroResult r;
    r.cubicles = n;

    // Adversarial round-robin: with more cubicles than dynamic tags,
    // LRU makes every switch a miss — the worst case for the table.
    sys.stats().reset();
    const uint64_t cyc0 = sys.clock().read();
    sys.runAs(driver, [&] {
        for (int round = 0; round < 10; ++round) {
            for (auto &p : ping)
                p(round);
        }
    });
    const uint64_t cyc1 = sys.clock().read();
    r.evictions = sys.stats().evictions();
    r.faultIns = sys.stats().faultIns();
    r.roundRobinHitPct = sys.stats().tagHitRatePercent();
    if (r.evictions > 0) {
        r.cyclesPerEviction =
            static_cast<double>(cyc1 - cyc0) /
            static_cast<double>(r.evictions);
    }

    // Fault-back-in latency: after the round-robin, the
    // least-recently-used workers are parked; time one cross-call
    // into the coldest one (includes evicting today's LRU victim).
    for (int i = 1; i < n; ++i) {
        if (sys.monitor().cubicle(sys.cidOf("w" + std::to_string(i)))
                .pkey != sys.monitor().parkedKey())
            continue;
        const uint64_t f0 = sys.clock().read();
        sys.runAs(driver, [&] { ping[i - 1](1); });
        r.faultInCycles = static_cast<double>(sys.clock().read() - f0);
        break;
    }

    // Per-cubicle batching: each cubicle serves a burst of 16 calls
    // before the next one runs — the steady-state serving pattern.
    sys.stats().reset();
    sys.runAs(driver, [&] {
        for (auto &p : ping) {
            for (int k = 0; k < 16; ++k)
                p(k);
        }
    });
    r.batchedHitPct = sys.stats().tagHitRatePercent();
    return r;
}

struct ServeResult {
    std::size_t cubicles = 0;
    uint64_t coldEvictions = 0;
    uint64_t coldFaultIns = 0;
    uint64_t coldFaultInPages = 0;
    double steadyHitPct = 0;
    double coldMs = 0;
    double steadyMs = 0;
};

/** The 64-cubicle acceptance workload (and a 128-cubicle stretch). */
ServeResult
runServe(int tenants)
{
    auto h = baselines::makeMultiTenantHttpd(
        tenants, core::IsolationMode::kFull, 65536);
    ServeResult r;
    r.cubicles = h->sys().cubicleCount();

    const auto cold = bench::measure(h->sys().clock(), [&] {
        for (int t = 0; t < tenants; ++t) {
            h->createFile(t, "/index.html", 4096);
            h->fetch(t, "/index.html");
        }
    });
    r.coldMs = cold.totalMs();
    r.coldEvictions = h->sys().stats().evictions();
    r.coldFaultIns = h->sys().stats().faultIns();
    r.coldFaultInPages = h->sys().stats().faultInPages();

    // Steady state: a 6-tenant working set served in batches of 8.
    h->sys().stats().reset();
    const auto steady = bench::measure(h->sys().clock(), [&] {
        for (int t = 0; t < 6 && t < tenants; ++t) {
            for (int i = 0; i < 8; ++i)
                h->fetch(t, "/index.html");
        }
    });
    r.steadyMs = steady.totalMs();
    r.steadyHitPct = h->sys().stats().tagHitRatePercent();
    return r;
}

} // namespace

int
main()
{
    bench::header("bench_tag_pressure: virtual protection keys — "
                  "logical cubicles on 16 MPK tags",
                  "Sartakov et al., ASPLOS'21, §8 (tag "
                  "virtualisation); DESIGN.md §14");

    std::printf("%9s %10s %10s %14s %12s %9s %9s\n", "cubicles",
                "evictions", "fault-ins", "cyc/eviction",
                "faultin cyc", "rrobin%", "batched%");
    std::vector<MicroResult> micro;
    for (int n : {8, 16, 32, 64, 128}) {
        MicroResult r = runMicro(n);
        std::printf("%9d %10llu %10llu %14.0f %12.0f %8.1f%% %8.1f%%\n",
                    r.cubicles,
                    static_cast<unsigned long long>(r.evictions),
                    static_cast<unsigned long long>(r.faultIns),
                    r.cyclesPerEviction, r.faultInCycles,
                    r.roundRobinHitPct, r.batchedHitPct);
        micro.push_back(r);
    }

    bench::rule('-', 78);
    std::printf("multi-tenant web serving (per-tenant request "
                "batches)\n");
    std::printf("%9s %10s %10s %12s %10s %10s\n", "cubicles",
                "evictions", "fault-ins", "faultin pgs", "steady%",
                "steady ms");
    std::vector<ServeResult> serve;
    for (int tenants : {26, 58}) { // 64 and 128 cubicles
        ServeResult r = runServe(tenants);
        std::printf("%9zu %10llu %10llu %12llu %9.1f%% %10.1f\n",
                    r.cubicles,
                    static_cast<unsigned long long>(r.coldEvictions),
                    static_cast<unsigned long long>(r.coldFaultIns),
                    static_cast<unsigned long long>(r.coldFaultInPages),
                    r.steadyHitPct, r.steadyMs);
        serve.push_back(r);
    }

    FILE *json = std::fopen("BENCH_tag_pressure.json", "w");
    if (!json) {
        std::perror("BENCH_tag_pressure.json");
        return 1;
    }
    std::fprintf(json,
                 "{\n"
                 "  \"bench\": \"tag_pressure\",\n"
                 "  \"physical_tags\": %d,\n"
                 "  \"dynamic_pool\": 4,\n"
                 "  \"micro_sweep\": [\n",
                 hw::kNumPhysPkeys);
    for (std::size_t i = 0; i < micro.size(); ++i) {
        const MicroResult &r = micro[i];
        std::fprintf(
            json,
            "    {\"logical_cubicles\": %d, \"evictions\": %llu, "
            "\"fault_ins\": %llu, \"cycles_per_eviction\": %.0f, "
            "\"fault_in_latency_cycles\": %.0f, "
            "\"round_robin_hit_pct\": %.2f, "
            "\"batched_hit_pct\": %.2f}%s\n",
            r.cubicles, static_cast<unsigned long long>(r.evictions),
            static_cast<unsigned long long>(r.faultIns),
            r.cyclesPerEviction, r.faultInCycles, r.roundRobinHitPct,
            r.batchedHitPct, i + 1 < micro.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n  \"multi_tenant_serving\": [\n");
    for (std::size_t i = 0; i < serve.size(); ++i) {
        const ServeResult &r = serve[i];
        std::fprintf(
            json,
            "    {\"cubicles\": %zu, \"cold_evictions\": %llu, "
            "\"cold_fault_ins\": %llu, \"cold_fault_in_pages\": %llu, "
            "\"cold_ms\": %.2f, \"steady_state_hit_pct\": %.2f, "
            "\"steady_ms\": %.2f}%s\n",
            r.cubicles,
            static_cast<unsigned long long>(r.coldEvictions),
            static_cast<unsigned long long>(r.coldFaultIns),
            static_cast<unsigned long long>(r.coldFaultInPages),
            r.coldMs, r.steadyHitPct, r.steadyMs,
            i + 1 < serve.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("\nwrote BENCH_tag_pressure.json\n");

    // Acceptance gate mirrored here (the tier-1 ctest enforces it):
    // >= 90%% steady-state hit rate at 64 cubicles.
    if (serve[0].steadyHitPct < 90.0) {
        std::fprintf(stderr,
                     "bench_tag_pressure: steady-state hit rate %.1f%% "
                     "at %zu cubicles is below the 90%% target\n",
                     serve[0].steadyHitPct, serve[0].cubicles);
        return 1;
    }
    return 0;
}
