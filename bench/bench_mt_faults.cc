/**
 * @file
 * Multi-threaded trap-and-map + cross-call throughput.
 *
 * Measures the scalability of the monitor's decomposed lock hierarchy:
 * at 1/2/4/8 threads, each thread runs in its own cubicle, shares its
 * own buffer through its own window with one server cubicle, and loops
 * { cross-call into the server (which faults the buffer in and sums
 * it), reclaim the buffer with a write (owner self-retag fast path) }.
 * Every iteration therefore exercises the fault path twice (window
 * walk under the shared lock + lock-free owner retag) and the
 * cross-call trampoline twice.
 *
 * Under the old design every one of those operations serialised on the
 * monitor's single mutex; now the only shared write point is the
 * atomic tag store. Results go to stdout and, machine-readably, to
 * BENCH_mt_faults.json (see EXPERIMENTS.md). On a single-core host the
 * wall-clock columns cannot show parallel speedup — the JSON records
 * hardware_concurrency so readers can interpret the numbers.
 *
 * Scale via CUBICLE_BENCH_MT_ITERS (iterations per thread, default
 * 2000).
 */

#include <atomic>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/system.h"
#include "libos/grant.h"
#include "tests/core/toy_components.h"

namespace cubicleos {
namespace {

using core::Cid;
using core::Exporter;
using core::System;
using core::SystemConfig;
using core::testing::ToyComponent;
using core::testing::addToy;

struct Result {
    int threads = 0;
    int iters = 0;
    bench::Measurement m;
    uint64_t traps = 0;
    uint64_t retags = 0;
    uint64_t grantCacheHits = 0;
    uint64_t crossCalls = 0;
    double opsPerSec() const
    {
        const double secs = m.totalMs() / 1e3;
        return secs > 0 ? threads * iters / secs : 0;
    }
};

Result
run(int threads, int iters)
{
    SystemConfig cfg;
    cfg.numPages = 8192;
    System sys(cfg);
    addToy(sys, "srv").onExports([](Exporter &exp, ToyComponent &me) {
        exp.fn<long(const char *, std::size_t)>(
            "sum", [&me](const char *p, std::size_t n) {
                me.sys()->touch(p, n, hw::Access::kRead);
                long s = 0;
                for (std::size_t i = 0; i < n; ++i)
                    s += p[i];
                return s;
            });
    });
    for (int t = 0; t < threads; ++t)
        addToy(sys, "w" + std::to_string(t));
    sys.boot();
    auto sum = sys.resolve<long(const char *, std::size_t)>("srv", "sum");
    const Cid srv = sys.cidOf("srv");

    Result r;
    r.threads = threads;
    r.iters = iters;
    std::atomic<long> bad{0};

    r.m = bench::measure(sys.clock(), [&] {
        std::vector<std::thread> pool;
        for (int t = 0; t < threads; ++t) {
            pool.emplace_back([&, t] {
                const Cid me = sys.cidOf("w" + std::to_string(t));
                sys.runAs(me, [&] {
                    auto *buf = reinterpret_cast<char *>(
                        sys.monitor()
                            .allocPagesFor(me, 1, mem::PageType::kHeap)
                            .ptr);
                    std::memset(buf, 1, 256);
                    // Share through the grant layer (the wiring lint
                    // forbids raw window calls here).
                    libos::GrantWindow win(sys, libos::PeerSet{srv});
                    win.stage(buf, 256);
                    win.open(win.peers());
                    for (int i = 0; i < iters; ++i) {
                        if (sum(buf, 256) != 256)
                            ++bad;
                        // Reclaim: owner self-retag fast path.
                        sys.touch(buf, 256, hw::Access::kWrite);
                    }
                    win.destroy();
                });
            });
        }
        for (auto &th : pool)
            th.join();
    });
    if (bad != 0)
        std::fprintf(stderr, "BUG: %ld bad sums\n", bad.load());

    r.traps = sys.stats().traps();
    r.retags = sys.stats().retags();
    r.grantCacheHits = sys.stats().grantCacheHits();
    r.crossCalls = sys.stats().totalCalls();
    return r;
}

} // namespace
} // namespace cubicleos

int
main()
{
    using namespace cubicleos;

    const int iters = bench::intFromEnv("CUBICLE_BENCH_MT_ITERS", 2000);
    const unsigned hw_threads = std::thread::hardware_concurrency();

    bench::header("bench_mt_faults: trap-and-map + cross-call "
                  "throughput vs thread count",
                  "lock-decomposition scalability (DESIGN.md "
                  "\"Concurrency model\")");
    std::printf("iterations/thread: %d (CUBICLE_BENCH_MT_ITERS), "
                "host cores: %u\n\n",
                iters, hw_threads);
    std::printf("%8s %10s %12s %12s %10s %10s %12s\n", "threads",
                "wall ms", "model ms", "ops/s", "traps", "retags",
                "cache hits");

    std::vector<Result> results;
    for (int threads : {1, 2, 4, 8}) {
        Result r = run(threads, iters);
        std::printf("%8d %10.2f %12.2f %12.0f %10llu %10llu %12llu\n",
                    r.threads, r.m.wallMs, r.m.modelMs, r.opsPerSec(),
                    static_cast<unsigned long long>(r.traps),
                    static_cast<unsigned long long>(r.retags),
                    static_cast<unsigned long long>(r.grantCacheHits));
        results.push_back(r);
    }

    FILE *json = std::fopen("BENCH_mt_faults.json", "w");
    if (!json) {
        std::perror("BENCH_mt_faults.json");
        return 1;
    }
    std::fprintf(json,
                 "{\n"
                 "  \"bench\": \"mt_faults\",\n"
                 "  \"iters_per_thread\": %d,\n"
                 "  \"hardware_concurrency\": %u,\n"
                 "  \"note\": \"wall-clock scaling requires a "
                 "multi-core host; on 1 core the series shows "
                 "serialisation overhead only\",\n"
                 "  \"runs\": [\n",
                 iters, hw_threads);
    for (std::size_t i = 0; i < results.size(); ++i) {
        const Result &r = results[i];
        std::fprintf(
            json,
            "    {\"threads\": %d, \"wall_ms\": %.3f, "
            "\"model_ms\": %.3f, \"total_ms\": %.3f, "
            "\"ops_per_sec\": %.1f, \"traps\": %llu, "
            "\"retags\": %llu, \"grant_cache_hits\": %llu, "
            "\"cross_calls\": %llu}%s\n",
            r.threads, r.m.wallMs, r.m.modelMs, r.m.totalMs(),
            r.opsPerSec(),
            static_cast<unsigned long long>(r.traps),
            static_cast<unsigned long long>(r.retags),
            static_cast<unsigned long long>(r.grantCacheHits),
            static_cast<unsigned long long>(r.crossCalls),
            i + 1 < results.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("\nwrote BENCH_mt_faults.json\n");
    return 0;
}
