/**
 * @file
 * CI gate: boots every in-tree deployment, drives a representative
 * workload so the fault history is populated, and runs the combined
 * isolation audit (syntactic lint + least-privilege dataflow + the
 * per-image pass-3 records). Exits non-zero on any warning-or-worse
 * finding — `cmake --build build --target verify-audit` is the
 * one-command deployment audit.
 *
 * Pass a file path as argv[1] to also dump the httpd deployment's
 * machine-readable audit JSON (System::auditJson) for diffing.
 */

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "apps/httpd/harness.h"
#include "apps/minisql/speedtest.h"
#include "baselines/deployments.h"
#include "core/system.h"
#include "core/verifier/lint.h"

namespace {

using namespace cubicleos;

/** Prints every finding; returns the number at warning or above. */
int
reportFindings(const char *deployment, core::System &sys)
{
    const std::vector<core::verifier::LintFinding> findings =
        sys.auditIsolation();
    int bad = 0;
    for (const core::verifier::LintFinding &f : findings) {
        std::printf("  [%s] %s: %s\n",
                    core::verifier::lintSeverityName(f.severity),
                    core::verifier::lintRuleName(f.rule),
                    f.message.c_str());
        if (f.severity >= core::verifier::LintSeverity::kWarning)
            ++bad;
    }

    std::size_t resolved = 0;
    std::size_t unresolved = 0;
    const std::size_t count = sys.monitor().cubicleCount();
    for (core::Cid cid = 0; cid < count; ++cid) {
        const core::verifier::ImageAudit &audit =
            sys.monitor().verifierReport(cid).audit;
        resolved += audit.resolvedSites;
        unresolved += audit.unresolvedSites;
    }
    std::printf("%s: %zu cubicles, %zu findings (%d warning+), "
                "indirect sites %zu resolved / %zu unresolved\n",
                deployment, count, findings.size(), bad, resolved,
                unresolved);
    return bad;
}

} // namespace

int
main(int argc, char **argv)
{
    int bad = 0;

    std::printf("== httpd (8 cubicles, full isolation) ==\n");
    httpd::HttpHarness harness(core::IsolationMode::kFull, 32768, 0);
    harness.createFile("/index.html", 4096);
    if (harness.fetch("/index.html").status != 200) {
        std::printf("FAIL: httpd workload did not serve\n");
        return 1;
    }
    bad += reportFindings("httpd", harness.sys());
    if (argc > 1) {
        std::ofstream out(argv[1], std::ios::trunc);
        out << harness.sys().auditJson();
        std::printf("audit JSON written to %s\n", argv[1]);
    }

    std::printf("== multi-tenant httpd (64 cubicles on 16 MPK tags, "
                "full isolation) ==\n");
    auto mt = baselines::makeMultiTenantHttpd(
        26, core::IsolationMode::kFull, 65536);
    mt->createFile(0, "/index.html", 2048);
    mt->createFile(13, "/index.html", 2048);
    mt->createFile(25, "/index.html", 2048);
    for (int t : {0, 13, 25}) {
        if (mt->fetch(t, "/index.html").status != 200) {
            std::printf("FAIL: tenant %d did not serve\n", t);
            return 1;
        }
    }
    bad += reportFindings("multitenant-httpd", mt->sys());

    std::printf("== minisql (7 cubicles, full isolation) ==\n");
    auto dep = baselines::SqliteDeployment::makeCubicles(
        7, core::IsolationMode::kFull);
    minisql::Speedtest bench(&dep->database(), 50);
    dep->enter([&] {
        for (int id : {100, 110, 120})
            bench.run(id);
    });
    bad += reportFindings("minisql", *dep->system());

    if (bad > 0) {
        std::printf("verify-audit: FAILED — %d warning-or-worse "
                    "finding(s)\n", bad);
        return 1;
    }
    std::printf("verify-audit: clean\n");
    return 0;
}
