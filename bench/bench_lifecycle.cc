/**
 * @file
 * Lifecycle benchmark (DESIGN.md §15): what does it cost to kill and
 * hot-restart a cubicle, and does the rest of the deployment notice?
 *
 * Two sections, machine-readably mirrored in BENCH_lifecycle.json:
 *
 *  1. Micro cycles on a toy cubicle with a realistic CFI image:
 *     destroy latency (quiesce + revoke + reclaim) and restart
 *     latency with the verify cache warm (the image re-verifies from
 *     its memoised report) vs cold (cache cleared, full decoder sweep
 *     + CFG walks — what a cold load pays). The acceptance story is
 *     hit ≪ miss: hot-restart rides the cache.
 *
 *  2. The crash lab under service: HTTP req/s through the networked
 *     stack before the database cubicle dies, while it is dead, and
 *     after its hot-restart — the "system keeps serving" number.
 */

#include <cstdio>
#include <string>

#include "baselines/crashlab.h"
#include "bench/bench_util.h"
#include "core/codescan.h"
#include "core/verifier/cache.h"
#include "tests/core/toy_components.h"

using namespace cubicleos;

namespace {

struct MicroResult {
    int cycles = 0;
    double destroyMs = 0;      ///< mean destroy latency
    double restartHitMs = 0;   ///< mean restart, verify cache warm
    double restartMissMs = 0;  ///< mean restart, verify cache cleared
    std::size_t reclaimedPages = 0;
};

MicroResult
runMicro(int cycles)
{
    core::SystemConfig cfg;
    cfg.mode = core::IsolationMode::kFull;
    core::System sys(cfg);

    core::testing::addToy(sys, "anchor");
    core::verifier::EntryTable table;
    core::testing::addToy(sys, "victim")
        .withImage(core::makeCfiImage(262144, 0x11FEC1C5, &table))
        .withIndirectTables({table})
        .onExports([](core::Exporter &exp, auto &) {
            exp.fn<int(int)>("ping", [](int x) { return x + 1; });
        });
    sys.boot();

    auto ping = sys.resolve<int(int)>("victim", "ping");
    const core::Cid anchor = sys.cidOf("anchor");

    MicroResult r;
    r.cycles = cycles;

    // Warm-cache cycles: destroy + restart, image report memoised.
    for (int i = 0; i < cycles; ++i) {
        const auto d = bench::measure(sys.clock(), [&] {
            r.reclaimedPages = sys.destroyComponent("victim");
        });
        const auto rs = bench::measure(
            sys.clock(), [&] { sys.restartComponent("victim"); });
        r.destroyMs += d.totalMs();
        r.restartHitMs += rs.totalMs();
        sys.runAs(anchor, [&] { ping(i); }); // stays functional
    }

    // Cold cycles: clearing the process-wide verify cache forces the
    // full sweep + CFG walks — the cold-load cost a restart avoids.
    for (int i = 0; i < cycles; ++i) {
        sys.destroyComponent("victim");
        core::verifier::VerifyCache::instance().clear();
        const auto rs = bench::measure(
            sys.clock(), [&] { sys.restartComponent("victim"); });
        r.restartMissMs += rs.totalMs();
    }

    r.destroyMs /= cycles;
    r.restartHitMs /= cycles;
    r.restartMissMs /= cycles;
    return r;
}

struct ServiceResult {
    int requestsPerWindow = 0;
    double rpsBaseline = 0;
    double rpsOutage = 0;       ///< minisql dead, stack serving on
    double rpsAfterRestart = 0;
    double destroyMs = 0;
    double restartMs = 0;
    std::size_t reclaimedPages = 0;
};

/** Serves @p n requests and returns requests per modelled+wall second. */
double
measureRps(baselines::CrashLabHarness &h, int n)
{
    double total_ms = 0;
    for (int i = 0; i < n; ++i) {
        const auto res = h.fetch("/site.txt");
        if (res.status != 200)
            std::abort(); // the deployment must keep serving
        total_ms += res.latencyMs();
    }
    return n / (total_ms / 1e3);
}

ServiceResult
runService(int window)
{
    baselines::CrashLabHarness h(core::IsolationMode::kFull);
    h.createFile("/site.txt", 16384);
    h.exec("CREATE TABLE kv (k INT, v INT)");
    h.exec("INSERT INTO kv VALUES (1, 10)");

    ServiceResult r;
    r.requestsPerWindow = window;
    measureRps(h, 4); // warm up connections and windows
    r.rpsBaseline = measureRps(h, window);

    const auto d = bench::measure(h.sys().clock(), [&] {
        r.reclaimedPages = h.killMinisql();
    });
    r.destroyMs = d.totalMs();
    r.rpsOutage = measureRps(h, window);

    const auto rs = bench::measure(h.sys().clock(),
                                   [&] { h.restartMinisql(); });
    r.restartMs = rs.totalMs();
    r.rpsAfterRestart = measureRps(h, window);

    // The restarted database answers queries again (journal-clean).
    if (h.exec("SELECT COUNT(*) FROM kv").scalarInt() != 1)
        std::abort();
    return r;
}

} // namespace

int
main()
{
    bench::header("Cubicle lifecycle: destroy, hot-restart, service dip",
                  "DESIGN.md §15 (crash isolation & hot-restart)");

    const int cycles = bench::intFromEnv("CUBICLEOS_BENCH_CYCLES", 10);
    const int window = bench::intFromEnv("CUBICLEOS_BENCH_WINDOW", 15);

    const MicroResult m = runMicro(cycles);
    std::printf("micro (%d cycles, 64-page CFI image):\n", m.cycles);
    std::printf("  destroy            %8.3f ms  (%zu pages reclaimed)\n",
                m.destroyMs, m.reclaimedPages);
    std::printf("  restart, cache hit %8.3f ms\n", m.restartHitMs);
    std::printf("  restart, cold      %8.3f ms  (%.1fx the hit path)\n",
                m.restartMissMs,
                m.restartHitMs > 0 ? m.restartMissMs / m.restartHitMs
                                   : 0.0);
    bench::rule();

    const ServiceResult s = runService(window);
    std::printf("crash lab (%d requests per window):\n",
                s.requestsPerWindow);
    std::printf("  req/s baseline       %10.1f\n", s.rpsBaseline);
    std::printf("  req/s during outage  %10.1f  (minisql dead)\n",
                s.rpsOutage);
    std::printf("  req/s after restart  %10.1f\n", s.rpsAfterRestart);
    std::printf("  destroy %0.3f ms, restart %0.3f ms, %zu pages\n",
                s.destroyMs, s.restartMs, s.reclaimedPages);
    bench::rule();

    FILE *json = std::fopen("BENCH_lifecycle.json", "w");
    if (!json) {
        std::perror("BENCH_lifecycle.json");
        return 1;
    }
    std::fprintf(
        json,
        "{\n"
        "  \"micro\": {\n"
        "    \"cycles\": %d,\n"
        "    \"destroy_ms\": %.4f,\n"
        "    \"restart_hit_ms\": %.4f,\n"
        "    \"restart_miss_ms\": %.4f,\n"
        "    \"reclaimed_pages\": %zu\n"
        "  },\n"
        "  \"service\": {\n"
        "    \"window_requests\": %d,\n"
        "    \"rps_baseline\": %.2f,\n"
        "    \"rps_during_outage\": %.2f,\n"
        "    \"rps_after_restart\": %.2f,\n"
        "    \"destroy_ms\": %.4f,\n"
        "    \"restart_ms\": %.4f,\n"
        "    \"reclaimed_pages\": %zu\n"
        "  }\n"
        "}\n",
        m.cycles, m.destroyMs, m.restartHitMs, m.restartMissMs,
        m.reclaimedPages, s.requestsPerWindow, s.rpsBaseline,
        s.rpsOutage, s.rpsAfterRestart, s.destroyMs, s.restartMs,
        s.reclaimedPages);
    std::fclose(json);
    std::printf("wrote BENCH_lifecycle.json\n");

    // Acceptance gate: hot-restart must ride the verify cache — the
    // cold path re-decodes a 256 KiB image and must be visibly slower.
    if (m.restartMissMs <= m.restartHitMs) {
        std::fprintf(stderr,
                     "FAIL: cold restart (%.4f ms) not slower than "
                     "cache-hit restart (%.4f ms)\n",
                     m.restartMissMs, m.restartHitMs);
        return 1;
    }
    return 0;
}
