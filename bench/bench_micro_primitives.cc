/**
 * @file
 * Microbenchmarks of the isolation primitives (google-benchmark).
 *
 * Covers the costs the paper cites in §2.2 — wrpkru ≈ 20 cycles,
 * pkey assignment ≈ 1,100 cycles — plus the building blocks of every
 * figure: cross-cubicle call vs direct call vs message-based RPC,
 * window operations, and the trap-and-map path.
 *
 * Times shown are real host time of the simulation; modelled virtual
 * cycles are reported as counters where relevant.
 */

#include <benchmark/benchmark.h>

#include "baselines/memfs.h"
#include "baselines/microkernel.h"
#include "core/system.h"
#include "libos/app.h"
#include "libos/grant.h"
#include "libos/stack.h"

using namespace cubicleos;

namespace {

/** Minimal two-cubicle system with one exported no-op. */
struct CallRig {
    explicit CallRig(core::IsolationMode mode)
    {
        core::SystemConfig cfg;
        cfg.numPages = 2048;
        cfg.mode = mode;
        sys = std::make_unique<core::System>(cfg);
        struct Srv : core::Component {
            core::ComponentSpec spec() const override
            {
                core::ComponentSpec s;
                s.name = "srv";
                return s;
            }
            void registerExports(core::Exporter &exp) override
            {
                exp.fn<int(int)>("noop", [](int x) { return x + 1; });
            }
        };
        sys->addComponent(std::make_unique<Srv>());
        sys->addComponent(std::make_unique<libos::AppComponent>("app"));
        sys->boot();
        fn = sys->resolve<int(int)>("srv", "noop");
        app = sys->cidOf("app");
    }

    std::unique_ptr<core::System> sys;
    core::CrossFn<int(int)> fn;
    core::Cid app{};
};

void
BM_DirectCall(benchmark::State &state)
{
    CallRig rig(core::IsolationMode::kUnikraft);
    rig.sys->runAs(rig.app, [&] {
        int v = 0;
        for (auto _ : state)
            benchmark::DoNotOptimize(v = rig.fn(v));
    });
}
BENCHMARK(BM_DirectCall);

void
BM_CrossCubicleCall(benchmark::State &state)
{
    CallRig rig(core::IsolationMode::kFull);
    rig.sys->runAs(rig.app, [&] {
        int v = 0;
        for (auto _ : state)
            benchmark::DoNotOptimize(v = rig.fn(v));
    });
    state.counters["model_cycles/call"] = benchmark::Counter(
        static_cast<double>(rig.sys->clock().read()) /
        static_cast<double>(state.iterations()));
}
BENCHMARK(BM_CrossCubicleCall);

void
BM_MicrokernelRpc(benchmark::State &state)
{
    hw::CycleClock clock;
    baselines::MemFileApi server;
    baselines::MicrokernelFileApi ipc(baselines::kernels::seL4(),
                                      &clock, &server, 1);
    const int fd = ipc.open("/f", libos::kCreate | libos::kRdWr);
    for (auto _ : state)
        benchmark::DoNotOptimize(ipc.lseek(fd, 0, libos::kSeekSet));
    state.counters["model_cycles/call"] = benchmark::Counter(
        static_cast<double>(clock.read()) /
        static_cast<double>(state.iterations()));
}
BENCHMARK(BM_MicrokernelRpc);

void
BM_WrpkruModel(benchmark::State &state)
{
    // The PKRU write itself: permission-set swap on the thread ctx.
    hw::Pkru pkru = hw::Pkru::denyAll();
    int key = 3;
    for (auto _ : state) {
        pkru.allow(key);
        pkru.deny(key);
        benchmark::DoNotOptimize(pkru.raw());
    }
    state.counters["paper_cycles"] = hw::cost::kWrpkru;
}
BENCHMARK(BM_WrpkruModel);

void
BM_WindowOpenClose(benchmark::State &state)
{
    // Grant-layer ACL cycling over an already-staged range: each
    // iteration is exactly one windowOpen + one windowClose in the
    // monitor, reached through the GrantWindow wrappers every port
    // uses (the raw System::window* API is grant.cc-private).
    CallRig rig(core::IsolationMode::kFull);
    rig.sys->runAs(rig.app, [&] {
        void *buf = rig.sys->heapAlloc(256);
        const core::Cid srv = rig.sys->cidOf("srv");
        const libos::PeerSet peers{srv};
        libos::GrantWindow win(*rig.sys);
        win.stage(buf, 256);
        for (auto _ : state) {
            win.open(peers);
            win.closeAll();
        }
        win.destroy();
    });
}
BENCHMARK(BM_WindowOpenClose);

void
BM_WindowAddRemove(benchmark::State &state)
{
    // Range staging churn via the grant layer: each iteration adds a
    // range and removes it again, paying the removal's epoch bump.
    CallRig rig(core::IsolationMode::kFull);
    rig.sys->runAs(rig.app, [&] {
        void *buf = rig.sys->heapAlloc(256);
        libos::GrantWindow win(*rig.sys);
        for (auto _ : state) {
            win.stage(buf, 256);
            win.unstage(buf);
        }
        win.destroy();
    });
}
BENCHMARK(BM_WindowAddRemove);

void
BM_TrapAndMap(benchmark::State &state)
{
    // Full fault path: access denied -> trap -> window lookup -> ACL
    // check -> retag. Ping-pong between two cubicles so every
    // iteration faults.
    CallRig rig(core::IsolationMode::kFull);
    auto &sys = *rig.sys;
    const core::Cid app = rig.app;
    const core::Cid srv = sys.cidOf("srv");
    char *buf = nullptr;
    libos::GrantWindow win;
    sys.runAs(app, [&] {
        buf = static_cast<char *>(sys.heapAlloc(64));
        const libos::PeerSet peers{srv};
        win = libos::GrantWindow(sys, peers);
        win.stage(buf, 64);
        win.open(peers);
    });
    const uint64_t cycles0 = sys.clock().read();
    for (auto _ : state) {
        sys.runAs(srv,
                  [&] { sys.touch(buf, 64, hw::Access::kRead); });
        sys.runAs(app,
                  [&] { sys.touch(buf, 64, hw::Access::kWrite); });
    }
    state.counters["model_cycles/trap"] = benchmark::Counter(
        static_cast<double>(sys.clock().read() - cycles0) /
        (2.0 * static_cast<double>(state.iterations())));
    state.counters["traps"] = benchmark::Counter(
        static_cast<double>(sys.stats().traps()));
}
BENCHMARK(BM_TrapAndMap);

void
BM_TouchCheckHit(benchmark::State &state)
{
    // The no-fault fast path: MPK check passes, no monitor involved.
    CallRig rig(core::IsolationMode::kFull);
    rig.sys->runAs(rig.app, [&] {
        void *buf = rig.sys->heapAlloc(4096);
        rig.sys->touch(buf, 4096, hw::Access::kWrite);
        for (auto _ : state)
            rig.sys->touch(buf, 4096, hw::Access::kWrite);
    });
}
BENCHMARK(BM_TouchCheckHit);

void
BM_PkeyMprotectModel(benchmark::State &state)
{
    hw::CycleClock clock;
    hw::AddressSpace space(16, &clock);
    space.map(0, 16, hw::kPermRead | hw::kPermWrite, 2);
    uint8_t key = 3;
    for (auto _ : state) {
        space.setKey(0, 1, key);
        key = key == 3 ? 4 : 3;
    }
    state.counters["paper_cycles"] = hw::cost::kPkeyMprotect;
}
BENCHMARK(BM_PkeyMprotectModel);

} // namespace

BENCHMARK_MAIN();
