/**
 * @file
 * Shared helpers for the figure-reproduction benchmarks.
 *
 * Reported time = real wall time of the simulation + modelled
 * hardware cycles at the paper's 2.2 GHz. Real time covers the work
 * the simulation performs natively (B-tree operations, copies, table
 * lookups); modelled cycles cover what this machine cannot execute
 * (wrpkru, pkey retags, kernel IPC, wire latency).
 */

#ifndef CUBICLEOS_BENCH_BENCH_UTIL_H_
#define CUBICLEOS_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>

#include "hw/cycles.h"

namespace cubicleos::bench {

/** One measured interval. */
struct Measurement {
    double wallMs = 0;
    double modelMs = 0;
    double totalMs() const { return wallMs + modelMs; }
};

/** Times @p fn, attributing cycle growth on @p clock to the model. */
template <typename F>
Measurement
measure(hw::CycleClock &clock, F &&fn)
{
    Measurement m;
    const uint64_t cycles0 = clock.read();
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    m.wallMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    m.modelMs =
        hw::CycleClock::toNanoseconds(clock.read() - cycles0) / 1e6;
    return m;
}

/** Prints a rule line. */
inline void
rule(char c = '-', int width = 72)
{
    for (int i = 0; i < width; ++i)
        std::putchar(c);
    std::putchar('\n');
}

/** Prints a benchmark header box. */
inline void
header(const std::string &title, const std::string &paper_ref)
{
    rule('=');
    std::printf("%s\n", title.c_str());
    std::printf("reproduces: %s\n", paper_ref.c_str());
    rule('=');
}

/** Environment-variable integer override. */
inline int
intFromEnv(const char *name, int def, int min_value = 1)
{
    if (const char *s = std::getenv(name)) {
        const int v = std::atoi(s);
        return v < min_value ? min_value : v;
    }
    return def;
}

/** Environment-variable override for workload scale. */
inline int
scaleFromEnv(const char *name, int def)
{
    return intFromEnv(name, def, 10);
}

} // namespace cubicleos::bench

#endif // CUBICLEOS_BENCH_BENCH_UTIL_H_
