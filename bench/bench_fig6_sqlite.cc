/**
 * @file
 * Figure 6: SQLite (speedtest1) query execution times under the four
 * configurations — baseline Unikraft, CubicleOS without MPK,
 * CubicleOS without ACLs, and full CubicleOS — on the 7-isolated-
 * cubicle deployment of Fig. 8.
 *
 * Paper result (§6.4): two query populations. Cache-friendly queries:
 * trampolines +2%, MPK +50%, windows +20%, overall ≈1.8x. OS-heavy
 * queries: up to ≈8x, dominated by MPK trap-and-map. Average 1.7–8x
 * vs the non-isolated baseline.
 *
 * Scale via CUBICLE_BENCH_SCALE (default 400 rows).
 */

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "apps/minisql/speedtest.h"
#include "baselines/deployments.h"
#include "bench/bench_util.h"

using namespace cubicleos;
using baselines::SqliteDeployment;
using bench::Measurement;

namespace {

struct ModeRun {
    core::IsolationMode mode;
    const char *label;
    std::map<int, Measurement> perQuery;
};

} // namespace

int
main()
{
    const int scale = bench::scaleFromEnv("CUBICLE_BENCH_SCALE", 400);
    bench::header("Figure 6: SQLite query execution times (4 configs)",
                  "Sartakov et al., ASPLOS'21, Fig. 6 / Sec. 6.4");
    std::printf("speedtest scale: %d (CUBICLE_BENCH_SCALE)\n\n", scale);

    ModeRun runs[] = {
        {core::IsolationMode::kUnikraft, "Unikraft", {}},
        {core::IsolationMode::kNoMpk, "CubicleOS w/o MPK", {}},
        {core::IsolationMode::kNoAcl, "CubicleOS w/o ACLs", {}},
        {core::IsolationMode::kFull, "CubicleOS", {}},
    };

    // One throwaway pass warms the process (allocator, code paging),
    // then min-of-R per query suppresses host wall-clock noise.
    const int reps = bench::intFromEnv("CUBICLE_BENCH_REPS", 3);
    // SQLite's page cache size determines how often queries reach the
    // OS interface; 64 pages keeps the working set realistic relative
    // to our scaled-down database, as the paper's 2 MB default cache
    // was to its full-size speedtest1 database.
    const std::size_t cache = static_cast<std::size_t>(
        bench::intFromEnv("CUBICLE_BENCH_CACHE", 64, 8));
    for (int rep = -1; rep < reps; ++rep) {
        for (ModeRun &run : runs) {
            auto dep = SqliteDeployment::makeCubicles(7, run.mode, cache);
            minisql::Speedtest bench_suite(&dep->database(), scale);
            auto &clock = dep->system()->clock();
            for (int id : minisql::Speedtest::queryIds()) {
                Measurement m;
                dep->enter([&] {
                    m = bench::measure(clock,
                                       [&] { bench_suite.run(id); });
                });
                if (rep < 0)
                    continue; // warm-up pass
                auto it = run.perQuery.find(id);
                if (it == run.perQuery.end() ||
                    m.totalMs() < it->second.totalMs()) {
                    run.perQuery[id] = m;
                }
            }
        }
    }

    // Per-query table.
    std::printf("%-6s %-38s %10s %10s %10s %10s %8s\n", "query",
                "label", "unikraft", "no-mpk", "no-acl", "cubicleos",
                "slowdn");
    bench::rule('-', 98);
    double geo_sum = 0;
    int geo_n = 0;
    std::vector<double> slowdowns;
    for (int id : minisql::Speedtest::queryIds()) {
        const double base = runs[0].perQuery[id].totalMs();
        const double full = runs[3].perQuery[id].totalMs();
        const double slow = base > 0 ? full / base : 0;
        slowdowns.push_back(slow);
        std::printf("%-6d %-38s %9.2fms %9.2fms %9.2fms %9.2fms %7.2fx\n",
                    id, minisql::Speedtest::labelOf(id),
                    runs[0].perQuery[id].totalMs(),
                    runs[1].perQuery[id].totalMs(),
                    runs[2].perQuery[id].totalMs(), full, slow);
        if (base > 0) {
            geo_sum += std::log(slow);
            ++geo_n;
        }
    }
    bench::rule('-', 98);

    // Population split, as in the paper's discussion.
    double lo_max = 0;
    int lo_n = 0, hi_n = 0;
    double lo_sum = 0, hi_sum = 0;
    for (double s : slowdowns) {
        if (s < 3.0) {
            lo_sum += s;
            ++lo_n;
            lo_max = std::max(lo_max, s);
        } else {
            hi_sum += s;
            ++hi_n;
        }
    }
    std::printf("\nsummary (CubicleOS vs Unikraft):\n");
    std::printf("  geometric-mean slowdown : %.2fx   (paper: 1.7-8x "
                "range)\n",
                std::exp(geo_sum / std::max(1, geo_n)));
    if (lo_n) {
        std::printf("  cache-friendly group    : %d queries, avg "
                    "%.2fx   (paper: ~1.8x)\n",
                    lo_n, lo_sum / lo_n);
    }
    if (hi_n) {
        std::printf("  OS-intensive group      : %d queries, avg "
                    "%.2fx   (paper: ~8x)\n",
                    hi_n, hi_sum / hi_n);
    }
    return 0;
}
