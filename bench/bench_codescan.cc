/**
 * @file
 * Load-time verification throughput: the conservative byte-grep, the
 * instruction-aware linear-sweep verifier, the reachability walk
 * (sweep + direct-branch CFG from entry 0), and the interprocedural
 * pass 3 (jump-table/lea-call/entry-table resolution), over
 * synthesized component images from 64 KiB to 16 MiB.
 *
 * The verifier runs the grep *and* a full linear-sweep disassembly;
 * the CFG walk re-decodes only the reachable subset on top of that;
 * pass 3 adds the indirect-flow resolution on top of the walk. Their
 * throughputs bound how much load-time latency each pass adds on top
 * of the original scan. All are one-shot load-time costs, not
 * steady-state costs.
 *
 * The benign generator plants indirect sites on purpose (bounded
 * switches, lea/call singletons, and a fraction of naked register
 * calls): the "unres" / "rate" columns report how much indirect flow
 * pass 3 fails to resolve. The rate is a hard gate — above 20% the
 * benchmark fails, because at that point the auditor is rubber-
 * stamping opacity. Set CODESCAN_LIST_UNRESOLVED=1 to dump every
 * unresolved site (offset and kind); the per-deployment audit JSON
 * (System::auditJson) always lists them all.
 */

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "bench/bench_util.h"
#include "core/codescan.h"
#include "core/verifier/cfg.h"
#include "core/verifier/ipcfg.h"
#include "core/verifier/scanner.h"

namespace {

using namespace cubicleos;

double
mbPerSec(std::size_t bytes, double ms)
{
    if (ms <= 0.0)
        return 0.0;
    return (static_cast<double>(bytes) / (1024.0 * 1024.0)) / (ms / 1e3);
}

} // namespace

int
main()
{
    bench::header("Load-time code verification throughput",
                  "loader rule 2 (paper §5.4) — grep vs sweep vs CFG "
                  "walk vs interprocedural pass 3");

    const int reps = bench::intFromEnv("CODESCAN_REPS", 8);
    const bool listUnresolved =
        std::getenv("CODESCAN_LIST_UNRESOLVED") != nullptr;
    const std::size_t sizes[] = {64u << 10, 256u << 10, 1u << 20,
                                 4u << 20, 16u << 20};

    std::printf("%10s %6s %11s %11s %11s %11s %8s %8s %6s\n", "image",
                "reps", "grep MB/s", "verify MB/s", "cfg MB/s",
                "inter MB/s", "indirect", "unres", "rate%");
    bench::rule();

    hw::CycleClock clock; // unused by any scanner; wall time only
    bool rateOk = true;
    for (const std::size_t size : sizes) {
        std::vector<std::size_t> entries;
        const auto image =
            core::makeBenignImage(size, /*seed=*/size, &entries);

        // Warm-up + correctness guard: benign images must pass all.
        if (core::scanCodeImage(image).has_value() ||
            !core::verifier::verifyImage(image).accepted() ||
            !core::verifier::verifyImageFrom(image, entries).accepted() ||
            !core::verifier::verifyImageInter(image, entries, {})
                 .accepted()) {
            std::printf("BUG: benign image flagged at size %zu\n", size);
            return 1;
        }

        auto grep = bench::measure(clock, [&] {
            for (int r = 0; r < reps; ++r) {
                if (core::scanCodeImage(image).has_value())
                    return;
            }
        });

        auto verify = bench::measure(clock, [&] {
            for (int r = 0; r < reps; ++r)
                (void)core::verifier::verifyImage(image).insnCount;
        });

        auto walk = bench::measure(clock, [&] {
            for (int r = 0; r < reps; ++r)
                (void)core::verifier::verifyImageFrom(image, entries)
                    .cfg.reachableInsns;
        });

        core::verifier::VerifierReport interReport;
        auto inter = bench::measure(clock, [&] {
            for (int r = 0; r < reps; ++r)
                interReport =
                    core::verifier::verifyImageInter(image, entries, {});
        });

        const std::size_t resolved = interReport.audit.resolvedSites;
        const std::size_t unresolved = interReport.audit.unresolvedSites;
        const double rate = interReport.audit.unresolvedRate();
        if (rate >= 0.20)
            rateOk = false;

        const std::size_t total = size * static_cast<std::size_t>(reps);
        std::printf(
            "%8zuK %6d %11.1f %11.1f %11.1f %11.1f %8zu %8zu %6.2f\n",
            size >> 10, reps, mbPerSec(total, grep.wallMs),
            mbPerSec(total, verify.wallMs), mbPerSec(total, walk.wallMs),
            mbPerSec(total, inter.wallMs), resolved + unresolved,
            unresolved, 100.0 * rate);

        if (listUnresolved) {
            for (const core::verifier::IndirectSiteRecord &site :
                 interReport.audit.indirectSites) {
                if (site.resolved)
                    continue;
                std::printf("    unresolved %s at offset %zu "
                            "(function %zu)\n",
                            site.isJump ? "jmp r/m" : "call r/m",
                            site.offset, site.function);
            }
        }
    }
    bench::rule();
    std::printf("verify = grep + instruction-length decode of every "
                "byte; cfg = verify + direct-branch\nreachability walk "
                "from every function entry; inter = cfg + jump-table/"
                "lea-call\nresolution (all one-shot, at load). unres "
                "counts residual CFI-trusted indirect calls.\n");
    if (!rateOk) {
        std::printf("BUG: unresolved-indirect rate reached 20%% — "
                    "pass 3 lost its resolution power\n");
        return 1;
    }
    return 0;
}
