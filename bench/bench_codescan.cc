/**
 * @file
 * Load-time verification throughput: the conservative byte-grep, the
 * instruction-aware linear-sweep verifier, and the reachability walk
 * (sweep + direct-branch CFG from entry 0), over synthesized component
 * images from 64 KiB to 16 MiB.
 *
 * The verifier runs the grep *and* a full linear-sweep disassembly;
 * the CFG walk re-decodes only the reachable subset on top of that.
 * Their throughputs bound how much load-time latency each pass adds on
 * top of the original scan. All are one-shot load-time costs, not
 * steady-state costs.
 */

#include <cstdint>
#include <vector>

#include "bench/bench_util.h"
#include "core/codescan.h"
#include "core/verifier/cfg.h"
#include "core/verifier/scanner.h"

namespace {

using namespace cubicleos;

double
mbPerSec(std::size_t bytes, double ms)
{
    if (ms <= 0.0)
        return 0.0;
    return (static_cast<double>(bytes) / (1024.0 * 1024.0)) / (ms / 1e3);
}

} // namespace

int
main()
{
    bench::header("Load-time code verification throughput",
                  "loader rule 2 (paper §5.4) — grep vs sweep vs CFG walk");

    const int reps = bench::intFromEnv("CODESCAN_REPS", 8);
    const std::size_t sizes[] = {64u << 10, 256u << 10, 1u << 20,
                                 4u << 20, 16u << 20};

    std::printf("%10s %6s %12s %12s %12s %10s %10s\n", "image", "reps",
                "grep MB/s", "verify MB/s", "cfg MB/s", "insns",
                "reached");
    bench::rule();

    hw::CycleClock clock; // unused by any scanner; wall time only
    for (const std::size_t size : sizes) {
        const auto image = core::makeBenignImage(size, /*seed=*/size);

        // Warm-up + correctness guard: benign images must pass all.
        if (core::scanCodeImage(image).has_value() ||
            !core::verifier::verifyImage(image).accepted() ||
            !core::verifier::verifyImageFrom(image, {}).accepted()) {
            std::printf("BUG: benign image flagged at size %zu\n", size);
            return 1;
        }

        auto grep = bench::measure(clock, [&] {
            for (int r = 0; r < reps; ++r) {
                if (core::scanCodeImage(image).has_value())
                    return;
            }
        });

        std::size_t insns = 0;
        auto verify = bench::measure(clock, [&] {
            for (int r = 0; r < reps; ++r)
                insns = core::verifier::verifyImage(image).insnCount;
        });

        std::size_t reached = 0;
        auto walk = bench::measure(clock, [&] {
            for (int r = 0; r < reps; ++r)
                reached = core::verifier::verifyImageFrom(image, {})
                              .cfg.reachableInsns;
        });

        const std::size_t total = size * static_cast<std::size_t>(reps);
        std::printf("%8zuK %6d %12.1f %12.1f %12.1f %10zu %10zu\n",
                    size >> 10, reps, mbPerSec(total, grep.wallMs),
                    mbPerSec(total, verify.wallMs),
                    mbPerSec(total, walk.wallMs), insns, reached);
    }
    bench::rule();
    std::printf("verify = grep + instruction-length decode of every "
                "byte; cfg = verify + direct-branch\nreachability walk "
                "from entry 0 (all one-shot, at load).\n");
    return 0;
}
