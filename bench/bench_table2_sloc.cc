/**
 * @file
 * Table 2: sizes of the CubicleOS components (SLOC).
 *
 * The paper reports the implementation effort: monitor 3,000 C +
 * 110 asm; builder 640 Python; Unikraft window support 600; SQLite
 * port 620; NGINX port 390. This binary counts the equivalent modules
 * of this reproduction (non-blank, non-comment lines) so the
 * comparison is inspectable on any checkout.
 */

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace {

int
slocOfFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return -1;
    int sloc = 0;
    std::string line;
    bool in_block_comment = false;
    while (std::getline(in, line)) {
        // Strip leading whitespace.
        std::size_t i = line.find_first_not_of(" \t\r");
        if (i == std::string::npos)
            continue;
        const std::string t = line.substr(i);
        if (in_block_comment) {
            if (t.find("*/") != std::string::npos)
                in_block_comment = false;
            continue;
        }
        if (t.rfind("//", 0) == 0)
            continue;
        if (t.rfind("/*", 0) == 0 || t.rfind("/**", 0) == 0) {
            if (t.find("*/") == std::string::npos)
                in_block_comment = true;
            continue;
        }
        if (t.rfind("*", 0) == 0)
            continue; // doc-comment continuation
        ++sloc;
    }
    return sloc;
}

int
slocOfFiles(const std::vector<std::string> &files)
{
    int total = 0;
    for (const auto &f : files) {
        int n = slocOfFile("src/" + f);
        if (n < 0)
            n = slocOfFile("../src/" + f); // run from build/
        if (n < 0) {
            std::fprintf(stderr,
                         "note: %s not found (run from the repo "
                         "root)\n",
                         f.c_str());
            continue;
        }
        total += n;
    }
    return total;
}

} // namespace

int
main()
{
    cubicleos::bench::header(
        "Table 2: sizes of CubicleOS components (SLOC)",
        "Sartakov et al., ASPLOS'21, Table 2");

    struct RowDef {
        const char *component;
        const char *paper;
        std::vector<std::string> files;
    };
    const RowDef rows[] = {
        {"Monitor (cross-cubicle calls)", "110 asm",
         {"core/system.cc", "core/system.h"}},
        {"Monitor (all components)", "3,000 C",
         {"core/monitor.cc", "core/monitor.h", "core/window.h",
          "core/cubicle.h", "core/stats.h", "hw/mpk.h",
          "hw/page_table.cc", "hw/page_table.h", "mem/arena.cc",
          "mem/suballoc.cc", "mem/page_meta.h"}},
        {"Builder (trampoline generation)", "640 Python",
         {"core/component.h", "core/codescan.cc", "core/codescan.h"}},
        {"Unikraft window support", "600 C",
         {"libos/ukapi.cc", "libos/sockapi.cc"}},
        {"SQLite port", "620 C",
         {"libos/ukapi.h", "apps/minisql/speedtest.h"}},
        {"NGINX port", "390 C",
         {"libos/sockapi.h", "apps/httpd/harness.h"}},
    };

    std::printf("%-36s %12s %14s\n", "component", "paper SLOC",
                "this repo");
    cubicleos::bench::rule('-', 64);
    for (const auto &row : rows) {
        std::printf("%-36s %12s %14d\n", row.component, row.paper,
                    slocOfFiles(row.files));
    }
    cubicleos::bench::rule('-', 64);
    std::printf("\nnote: this reproduction implements every substrate "
                "from scratch, so the\nline counts bound the same "
                "responsibilities rather than matching exactly;\n"
                "the point of Table 2 — isolation with a small "
                "trusted core and a small\nper-application porting "
                "effort — is preserved.\n");
    return 0;
}
