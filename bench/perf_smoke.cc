/**
 * @file
 * Perf smoke test: the bulk-transfer hot path must stay trap-cheap.
 *
 * Runs one 2 MB zero-copy sendfile request on the full NGINX
 * deployment and hard-fails if the measured traps/request exceeds the
 * committed ceiling. This is the regression guard for the
 * range-granular retag + prestage + submission-ring machinery: before
 * that work the same request cost ~388 traps; with it, low
 * single-digits. The ceiling is deliberately far above today's number
 * (timing noise never matters — traps are deterministic counters) but
 * far below the per-page-lazy regime, so any change that silently
 * reverts a hot window, a prestage hint, or range-granular retagging
 * trips it.
 *
 * Registered as a tier-1 ctest (label: perf); runtime well under a
 * second.
 */

#include <cstdio>

#include "apps/httpd/harness.h"

using namespace cubicleos;

namespace {

/**
 * Committed ceiling for one steady-state 2 MB sendfile request
 * (64 borrowed 32 KiB spans, each queued by reference into the TCP
 * stack through the submission ring). Paper target (§6.3 discussion):
 * fewer than 100 traps for the whole request; measured today: 2.
 */
constexpr double kTrapCeiling = 100.0;

constexpr std::size_t kFileSize = 2 << 20;

} // namespace

int
main()
{
    httpd::HttpHarness h(core::IsolationMode::kFull,
                         /*num_pages=*/65536,
                         /*request_base_cycles=*/11'000'000,
                         /*sendfile=*/true);
    h.createFile("/smoke", kFileSize);
    h.fetch("/smoke"); // warm-up: faults the working set in

    auto &st = h.sys().stats();
    const uint64_t traps0 = st.traps();
    const uint64_t zc0 = st.zeroCopyBytes();
    const auto res = h.fetch("/smoke");
    const double traps = double(st.traps() - traps0);
    const uint64_t zc = st.zeroCopyBytes() - zc0;

    if (res.status != 200 || res.bodyBytes != kFileSize) {
        std::fprintf(stderr,
                     "perf_smoke: transfer failed (status %d, %zu "
                     "bytes)\n",
                     res.status, res.bodyBytes);
        return 1;
    }
    if (zc != kFileSize) {
        std::fprintf(stderr,
                     "perf_smoke: body not served zero-copy (%llu of "
                     "%zu bytes)\n",
                     static_cast<unsigned long long>(zc), kFileSize);
        return 1;
    }
    if (traps > kTrapCeiling) {
        std::fprintf(stderr,
                     "perf_smoke: %.0f traps/request on the 2 MB "
                     "sendfile, ceiling is %.0f.\n"
                     "The bulk-transfer hot path regressed: check hot "
                     "windows (lwip/netdev frame\nbuffers, ukapi "
                     "transfer arena), prestage hints (ramfs span "
                     "windows, sockapi\nbuffers) and range-granular "
                     "retagging (Monitor::handleFault chunking).\n",
                     traps, kTrapCeiling);
        return 1;
    }
    std::printf("perf_smoke: 2 MB sendfile in %.0f traps/request "
                "(ceiling %.0f), %llu bytes zero-copy\n",
                traps, kTrapCeiling,
                static_cast<unsigned long long>(zc));
    return 0;
}
