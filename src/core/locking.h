/**
 * @file
 * Machine-checked locking: annotation-capable mutex wrappers plus a
 * debug lock-hierarchy checker (lockdep).
 *
 * The monitor's lock hierarchy (monitor.h file header) used to live
 * only in a comment; nothing stopped a new call path from acquiring
 * pageMutex_ before windowMutex_ and deadlocking only under load on a
 * multi-core host. This header makes the hierarchy machine-checked at
 * two layers:
 *
 *  1. **Static** — every lock in src/core and src/libos is one of the
 *     wrappers below, annotated with clang's thread-safety capability
 *     attributes. Building with the `tidy-tsa` preset (clang,
 *     `-Wthread-safety -Werror=thread-safety`) turns "field X is only
 *     touched under lock L" (GUARDED_BY) and "helper F runs under L"
 *     (REQUIRES) into compile errors when violated. Under other
 *     compilers the annotation macros expand to nothing. The
 *     locking_wrapper_lint ctest rejects any raw std::mutex /
 *     std::shared_mutex / lock_guard declaration outside this file, so
 *     new locks cannot bypass the annotations.
 *
 *  2. **Dynamic (lockdep)** — each wrapper carries a static rank from
 *     the hierarchy below plus an optional same-rank order key (the
 *     cubicle id for per-cubicle locks). When built with
 *     CUBICLE_LOCKDEP (default ON; a debug backstop), every
 *     acquisition is checked against the calling thread's held-lock
 *     stack: acquiring a lower rank than one already held, acquiring
 *     equal rank out of key order, or re-entering a held lock (the
 *     shared-vs-exclusive windowMutex_ re-entry case annotations
 *     cannot express) aborts the process with both acquisition
 *     backtraces. See locking.cc.
 *
 * # Lock ranks
 *
 * Ranks mirror the monitor's documented acquisition order; gaps leave
 * room for future levels (vkey eviction, per-core sharding):
 *
 *   kLifecycle   (5)   Monitor::lifecycleMutex_     (destroy/restart)
 *   kLoader      (10)  Monitor::loaderMutex_
 *   kVerifyCache (20)  verifier::VerifyCache::mu_   (under the loader)
 *   kWindow      (30)  Monitor::windowMutex_
 *   kKeyTable    (35)  Monitor::keyMutex_           (vkey bind/evict)
 *   kCubicle     (40)  Cubicle::stackMu / heapMu    (key = cubicle id)
 *   kPage        (50)  Monitor::pageMutex_          (leaf)
 *
 * A thread may skip levels downwards (loader → page is fine) but never
 * acquire upwards. Same-rank nesting is only legal in strictly
 * increasing key order, which makes any same-rank cycle impossible by
 * total order (two threads chaining per-cubicle locks in opposite cid
 * order would deadlock; lockdep rejects the first out-of-order link).
 *
 * # Adding a new lock (checklist, see DESIGN.md §11)
 *
 *   1. pick its rank: strictly between the highest lock held when it
 *      is acquired and the lowest lock acquired while it is held;
 *   2. declare it as locking wrapper with that rank and a unique name;
 *   3. GUARDED_BY every field it protects, REQUIRES every helper that
 *      assumes it, ACQUIRED_AFTER its predecessor;
 *   4. take it only through the scoped guards below;
 *   5. build the tidy-tsa preset and run the concurrency ctest label.
 */

#ifndef CUBICLEOS_CORE_LOCKING_H_
#define CUBICLEOS_CORE_LOCKING_H_

#include <cstdint>
#include <mutex>
#include <shared_mutex>

// ----------------------------------------------------------------------
// Clang thread-safety annotation macros (no-ops elsewhere).
// Standard spellings from the clang Thread Safety Analysis docs.
// ----------------------------------------------------------------------

#if defined(__clang__)
#define CUBICLE_TSA_ATTR(x) __attribute__((x))
#else
#define CUBICLE_TSA_ATTR(x)
#endif

#define CAPABILITY(x) CUBICLE_TSA_ATTR(capability(x))
#define SCOPED_CAPABILITY CUBICLE_TSA_ATTR(scoped_lockable)
#define GUARDED_BY(x) CUBICLE_TSA_ATTR(guarded_by(x))
#define PT_GUARDED_BY(x) CUBICLE_TSA_ATTR(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) CUBICLE_TSA_ATTR(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) CUBICLE_TSA_ATTR(acquired_after(__VA_ARGS__))
#define REQUIRES(...) CUBICLE_TSA_ATTR(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
    CUBICLE_TSA_ATTR(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) CUBICLE_TSA_ATTR(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
    CUBICLE_TSA_ATTR(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) CUBICLE_TSA_ATTR(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
    CUBICLE_TSA_ATTR(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
    CUBICLE_TSA_ATTR(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) CUBICLE_TSA_ATTR(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) CUBICLE_TSA_ATTR(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) CUBICLE_TSA_ATTR(assert_capability(x))
#define RETURN_CAPABILITY(x) CUBICLE_TSA_ATTR(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS CUBICLE_TSA_ATTR(no_thread_safety_analysis)

namespace cubicleos::core {

/** Static lock ranks, in the only legal acquisition order. */
enum class LockRank : uint16_t {
    kLifecycle = 5,    ///< Monitor::lifecycleMutex_ (destroy/restart)
    kLoader = 10,      ///< Monitor::loaderMutex_
    kVerifyCache = 20, ///< verifier::VerifyCache::mu_
    kWindow = 30,      ///< Monitor::windowMutex_
    kKeyTable = 35,    ///< Monitor::keyMutex_ (vkey bind/evict)
    kCubicle = 40,     ///< Cubicle::stackMu / heapMu (key = cid)
    kPage = 50,        ///< Monitor::pageMutex_ (leaf)
};

/** Human-readable rank name for lockdep reports. */
const char *lockRankName(LockRank rank);

namespace lockdep {

/** Compile-time switch: true when the dynamic checker is built in. */
#if CUBICLE_LOCKDEP
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

/** Static identity of one lock instance, for reports. */
struct LockTag {
    const char *name = "lock";
    LockRank rank = LockRank::kPage;
    /**
     * Same-rank order key. Locks of equal rank may only be nested in
     * strictly increasing key order (per-cubicle locks use the cubicle
     * id), which rules out same-rank cycles by total order.
     */
    uint32_t key = 0;
};

/**
 * Hierarchy check + held-stack push for one acquisition. Called by the
 * wrappers *before* blocking on the underlying mutex, so a violation
 * aborts with a report instead of deadlocking. Aborts the process on
 * rank violation, same-rank key-order violation, or re-entry of a held
 * lock (including shared-then-exclusive re-entry), printing the
 * recorded acquisition backtrace of the conflicting held lock and the
 * current backtrace.
 */
void onAcquire(const LockTag &tag, const void *lock, bool shared);

/** Held-stack pop (tolerates out-of-order release). */
void onRelease(const void *lock);

/** Locks the calling thread currently holds (tests). */
std::size_t heldCount();

/** True when the calling thread holds @p lock (in either mode). */
bool isHeld(const void *lock);

/**
 * Aborts with a report unless the calling thread holds @p lock. The
 * runtime counterpart of REQUIRES() for the two guard relations the
 * static analysis cannot express (DESIGN.md §11): state published
 * lock-free behind a serialising lock (Monitor::cubicles_), and data
 * guarded by a lock living in a different object (WindowTable).
 * Call sites gate on lockdep::kEnabled so release builds pay nothing.
 */
void assertHeld(const void *lock, const char *what);

} // namespace lockdep

// ----------------------------------------------------------------------
// Annotated mutex wrappers
// ----------------------------------------------------------------------

/**
 * Exclusive mutex with a static hierarchy rank.
 *
 * A thin std::mutex wrapper that (a) carries clang thread-safety
 * capability annotations and (b) feeds the debug lockdep checker.
 * Acquire through MutexLock, not by calling lock() directly, so the
 * static analysis sees a scoped capability (raw lock()/unlock() exist
 * for the checker's own tests).
 */
class CAPABILITY("mutex") Mutex {
  public:
    explicit Mutex(LockRank rank, const char *name, uint32_t key = 0)
        : tag_{name, rank, key}
    {}

    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() ACQUIRE()
    {
        if constexpr (lockdep::kEnabled)
            lockdep::onAcquire(tag_, this, /*shared=*/false);
        mu_.lock();
    }

    void unlock() RELEASE()
    {
        mu_.unlock();
        if constexpr (lockdep::kEnabled)
            lockdep::onRelease(this);
    }

    /**
     * Rebinds the same-rank order key. Only legal before the lock is
     * published to other threads (the loader sets per-cubicle locks'
     * keys to the cubicle id once it is assigned).
     */
    void setOrderKey(uint32_t key) { tag_.key = key; }

    const lockdep::LockTag &tag() const { return tag_; }

  private:
    std::mutex mu_;
    lockdep::LockTag tag_;
};

/**
 * Reader/writer mutex with a static hierarchy rank.
 *
 * Wraps std::shared_mutex; faults take it shared, mutations exclusive
 * (see Monitor::windowMutex_). Re-entry in *either* mode while already
 * held by the same thread is a lockdep violation: upgrading shared →
 * exclusive self-deadlocks, and shared → shared can deadlock behind a
 * blocked writer.
 */
class CAPABILITY("shared_mutex") SharedMutex {
  public:
    explicit SharedMutex(LockRank rank, const char *name, uint32_t key = 0)
        : tag_{name, rank, key}
    {}

    SharedMutex(const SharedMutex &) = delete;
    SharedMutex &operator=(const SharedMutex &) = delete;

    void lock() ACQUIRE()
    {
        if constexpr (lockdep::kEnabled)
            lockdep::onAcquire(tag_, this, /*shared=*/false);
        mu_.lock();
    }

    void unlock() RELEASE()
    {
        mu_.unlock();
        if constexpr (lockdep::kEnabled)
            lockdep::onRelease(this);
    }

    void lockShared() ACQUIRE_SHARED()
    {
        if constexpr (lockdep::kEnabled)
            lockdep::onAcquire(tag_, this, /*shared=*/true);
        mu_.lock_shared();
    }

    void unlockShared() RELEASE_SHARED()
    {
        mu_.unlock_shared();
        if constexpr (lockdep::kEnabled)
            lockdep::onRelease(this);
    }

    const lockdep::LockTag &tag() const { return tag_; }

  private:
    std::shared_mutex mu_;
    lockdep::LockTag tag_;
};

// ----------------------------------------------------------------------
// Scoped guards (the only way core/libos code takes a lock)
// ----------------------------------------------------------------------

/** RAII exclusive hold of a Mutex. */
class SCOPED_CAPABILITY MutexLock {
  public:
    explicit MutexLock(Mutex &mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
    ~MutexLock() RELEASE() { mu_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mu_;
};

/** RAII exclusive (writer) hold of a SharedMutex. */
class SCOPED_CAPABILITY WriterLock {
  public:
    explicit WriterLock(SharedMutex &mu) ACQUIRE(mu) : mu_(mu)
    {
        mu_.lock();
    }
    ~WriterLock() RELEASE() { mu_.unlock(); }

    WriterLock(const WriterLock &) = delete;
    WriterLock &operator=(const WriterLock &) = delete;

  private:
    SharedMutex &mu_;
};

/** RAII shared (reader) hold of a SharedMutex. */
class SCOPED_CAPABILITY ReaderLock {
  public:
    explicit ReaderLock(SharedMutex &mu) ACQUIRE_SHARED(mu) : mu_(mu)
    {
        mu_.lockShared();
    }
    ~ReaderLock() RELEASE() { mu_.unlockShared(); }

    ReaderLock(const ReaderLock &) = delete;
    ReaderLock &operator=(const ReaderLock &) = delete;

  private:
    SharedMutex &mu_;
};

} // namespace cubicleos::core

#endif // CUBICLEOS_CORE_LOCKING_H_
