/**
 * @file
 * The CubicleOS system facade: boot, cross-cubicle calls, checked
 * memory access, and the public window API.
 *
 * This is the one header applications and components include. It ties
 * together the trusted pieces — builder (component registry + trampoline
 * generation), loader, and memory monitor — and manages the per-thread
 * execution context (current cubicle + PKRU), mirroring MPK's per-thread
 * permission semantics.
 */

#ifndef CUBICLEOS_CORE_SYSTEM_H_
#define CUBICLEOS_CORE_SYSTEM_H_

#include <array>
#include <cstring>
#include <functional>
#include <memory>
#include <new>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/component.h"
#include "core/errors.h"
#include "core/monitor.h"
#include "core/stats.h"

namespace cubicleos::core {

class System;

/**
 * Per-thread cache of resolved window grants — the simulated TLB.
 *
 * After trap-and-map resolves a fault, the page's tag belongs to the
 * accessor until someone else faults it away; but two cubicles
 * ping-ponging accesses through one window would otherwise take a trap
 * + retag on every alternation. The cache remembers "(page, cubicle)
 * was granted at revocation epoch E": a later PKU fault on that page
 * by the same cubicle is absorbed without a trap, exactly as a TLB
 * entry carrying a permitted translation absorbs the walk.
 *
 * Correctness: a hit is only trusted while the monitor's revocation
 * epoch still equals E. Any close/remove/destroy bumps the epoch, so
 * stale grants fall back to the fault path, whose ACL walk then
 * rejects them — the cache can only ever re-grant what a full
 * trap-and-map at insert time already granted, within the same lazy
 * revocation bounds as §5.6's tag consistency.
 *
 * Direct-mapped by (page, cubicle) — like TLB entries tagged with an
 * address-space id, one thread's entries for different cubicles
 * coexist across cross-call switches. Collisions just evict (a miss
 * is only a performance event).
 */
struct GrantCache {
    static constexpr std::size_t kSlots = 64;

    struct Entry {
        std::size_t page = 0;
        Cid cid = kNoCubicle;
        uint64_t epoch = 0;
    };

    std::array<Entry, kSlots> slots{};

    static std::size_t slotOf(std::size_t page, Cid cid)
    {
        return (page + static_cast<std::size_t>(cid) * 7919) % kSlots;
    }

    bool hit(std::size_t page, Cid cid, uint64_t currentEpoch) const
    {
        const Entry &e = slots[slotOf(page, cid)];
        return e.cid == cid && e.page == page && e.epoch == currentEpoch;
    }

    void insert(std::size_t page, Cid cid, uint64_t epoch)
    {
        slots[slotOf(page, cid)] = Entry{page, cid, epoch};
    }
};

/**
 * Per-thread execution state: the currently executing cubicle, the
 * thread's PKRU register, the cross-call stack used for return CFI,
 * and the thread's grant cache (simulated TLB).
 */
struct ThreadCtx {
    Cid current = kNoCubicle;
    hw::Pkru pkru = hw::Pkru::denyAll();
    std::vector<Cid> callStack;
    GrantCache grants;
    /**
     * The monitor's key-binding epoch this thread's pkru was computed
     * at. Tag virtualisation rebinds physical tags (eviction); a PKRU
     * computed before a rebind may still allow a tag that now backs a
     * *different* cubicle, so checked accesses compare this against
     * Monitor::keyEpoch() and recompute the register on mismatch —
     * the simulated equivalent of the PKRU-update IPI a real kernel
     * would broadcast (see DESIGN.md §14).
     */
    uint64_t keyEpoch = 0;
};

/**
 * A resolved cross-cubicle callable for signature @c Sig.
 *
 * Produced by System::resolve(). Invoking it goes through the
 * cross-cubicle call trampoline (permission + stack switch, CFI, edge
 * accounting) unless the callee is a shared cubicle, which executes
 * directly with the caller's privileges (paper §3 step ❹).
 */
template <typename Sig>
class CrossFn;

/**
 * RAII trampoline context: performs the cubicle switch on construction
 * and the return switch on destruction (exception-safe).
 *
 * The guard is also the lifecycle gate (DESIGN.md §15): entry into a
 * draining or dead cubicle is refused with core::PeerFault, and every
 * successful entry is tracked in the callee's in-flight counter so
 * Monitor::destroyCubicle can quiesce before reclaiming.
 */
class CrossCallGuard {
  public:
    /** @throws PeerFault when @p callee is not kLive. */
    CrossCallGuard(System &sys, ThreadCtx &ctx, Cid callee);
    ~CrossCallGuard();

    CrossCallGuard(const CrossCallGuard &) = delete;
    CrossCallGuard &operator=(const CrossCallGuard &) = delete;

  private:
    System &sys_;
    ThreadCtx &ctx_;
    Cid caller_;
    hw::Pkru savedPkru_;
    /** True once this guard holds an in-flight ref on the callee. */
    bool tracked_ = false;
};

/**
 * The CubicleOS instance.
 *
 * Typical lifecycle:
 * @code
 *   System sys(cfg);
 *   sys.addComponent(std::make_unique<MyComponent>());
 *   ...
 *   sys.boot();
 *   auto f = sys.resolve<int(int)>("comp", "fn");
 *   sys.runAs(sys.cidOf("app"), [&] { f(42); });
 * @endcode
 */
class System {
  public:
    explicit System(SystemConfig cfg = {});
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    // ------------------------------------------------------------------
    // Builder: component registration and boot
    // ------------------------------------------------------------------

    /** Registers a component; must precede boot(). */
    Component &addComponent(std::unique_ptr<Component> comp);

    /**
     * Loads every registered component into its cubicle, collects
     * exports (generating trampolines), and runs init() hooks in
     * registration order, each inside its own cubicle.
     */
    void boot();

    bool booted() const { return booted_; }

    /** Looks up a component's cubicle ID by name. */
    Cid cidOf(std::string_view name) const;

    /** Returns the component loaded into @p cid. */
    Component &componentAt(Cid cid);

    /** Number of loaded cubicles. */
    std::size_t cubicleCount() const { return monitor_.cubicleCount(); }

    // ------------------------------------------------------------------
    // Lifecycle (DESIGN.md §15)
    // ------------------------------------------------------------------

    /**
     * Kills @p name's cubicle with crash semantics — no teardown hook
     * runs; the component is treated exactly like a crashed process —
     * and reclaims its pages, windows, grants and key
     * (Monitor::destroyCubicle). In-flight cross-calls into it unwind
     * with PeerFault; the rest of the deployment keeps serving.
     * @return pages reclaimed.
     * @throws LoaderError when called from inside the victim (the
     *         quiesce would wait on the calling thread forever).
     */
    std::size_t destroyComponent(std::string_view name);

    /**
     * Relaunches a destroyed component in place: the monitor reloads
     * the image through the verify cache and replays recorded grants
     * (Monitor::restartCubicle), then teardown() releases pre-crash
     * handles and init() re-runs — both inside the fresh cubicle.
     * Under strictVerify the restarted cubicle re-earns the boot gate:
     * warning-or-worse lint findings involving it refuse the restart.
     */
    void restartComponent(std::string_view name);

    // ------------------------------------------------------------------
    // Dynamic symbol resolution (through trampolines)
    // ------------------------------------------------------------------

    /**
     * Resolves @p fn_name exported by @p comp_name with signature Sig.
     * @throws LinkError on unknown names or signature mismatch.
     */
    template <typename Sig>
    CrossFn<Sig> resolve(std::string_view comp_name,
                         std::string_view fn_name);

    // ------------------------------------------------------------------
    // Execution
    // ------------------------------------------------------------------

    /** Runs @p f with the calling thread switched into cubicle @p cid. */
    template <typename F>
    decltype(auto) runAs(Cid cid, F &&f)
    {
        ThreadCtx &ctx = currentCtx();
        CrossCallGuard guard(*this, ctx, cid);
        return std::forward<F>(f)();
    }

    /** The cubicle the calling thread currently executes in. */
    Cid currentCubicle() { return currentCtx().current; }

    /** The calling thread's context (monitor/trampoline internal). */
    ThreadCtx &currentCtx();

    // ------------------------------------------------------------------
    // Checked memory access (the simulated MPK enforcement point)
    // ------------------------------------------------------------------

    /**
     * Verifies that the current cubicle may access [ptr, ptr+len).
     *
     * Faults are delivered to the monitor's trap-and-map handler; an
     * unresolvable fault throws hw::CubicleFault. No-op in modes
     * without MPK enforcement.
     */
    void touch(const void *ptr, std::size_t len, hw::Access access)
    {
        if (mode_ < IsolationMode::kNoAcl)
            return;
        ThreadCtx &ctx = currentCtx();
        touchSlow(ctx, ptr, len, access);
    }

    /** Checked memcpy: the shared LIBC cubicle's copy primitive. */
    void memcpyChecked(void *dst, const void *src, std::size_t n)
    {
        touch(dst, n, hw::Access::kWrite);
        touch(src, n, hw::Access::kRead);
        std::memcpy(dst, src, n);
    }

    /** Checked memset. */
    void memsetChecked(void *dst, int value, std::size_t n)
    {
        touch(dst, n, hw::Access::kWrite);
        std::memset(dst, value, n);
    }

    /**
     * Verifies the current cubicle may start executing at @p ptr,
     * under the modified-MPK execute semantics. Used by the CFI tests
     * and the trampoline guard model.
     */
    void checkExec(const void *ptr);

    // ------------------------------------------------------------------
    // Window API (paper Table 1), on behalf of the current cubicle
    // ------------------------------------------------------------------

    // In the Unikraft baseline the window-management code is not part
    // of the build at all (it belongs to the CubicleOS port), so the
    // whole API degenerates to no-ops there.

    Wid windowInit()
    {
        if (mode_ == IsolationMode::kUnikraft)
            return 0;
        return monitor_.windowInit(currentCtx().current);
    }
    void windowAdd(Wid wid, const void *ptr, std::size_t size)
    {
        if (mode_ == IsolationMode::kUnikraft)
            return;
        monitor_.windowAdd(currentCtx().current, wid, ptr, size);
    }
    void windowRemove(Wid wid, const void *ptr)
    {
        if (mode_ == IsolationMode::kUnikraft)
            return;
        monitor_.windowRemove(currentCtx().current, wid, ptr);
    }
    void windowOpen(Wid wid, Cid peer)
    {
        if (mode_ == IsolationMode::kUnikraft)
            return;
        monitor_.windowOpen(currentCtx().current, wid, peer);
    }
    void windowClose(Wid wid, Cid peer)
    {
        if (mode_ == IsolationMode::kUnikraft)
            return;
        monitor_.windowClose(currentCtx().current, wid, peer);
    }
    void windowCloseAll(Wid wid)
    {
        if (mode_ == IsolationMode::kUnikraft)
            return;
        monitor_.windowCloseAll(currentCtx().current, wid);
    }
    void windowDestroy(Wid wid)
    {
        if (mode_ == IsolationMode::kUnikraft)
            return;
        monitor_.windowDestroy(currentCtx().current, wid);
    }
    /** Promotes a window to a hot window (paper §8 proposal). */
    void windowSetHot(Wid wid)
    {
        if (mode_ == IsolationMode::kUnikraft)
            return;
        monitor_.windowSetHot(currentCtx().current, wid);
    }
    /**
     * Prestaging hint: eagerly retags @p wid's ranges to @p peer now
     * instead of at @p peer's first-touch fault (Monitor::
     * windowPrestage). @return pages retagged (0 in Unikraft mode).
     */
    std::size_t windowPrestage(Wid wid, Cid peer, hw::Access expected)
    {
        if (mode_ == IsolationMode::kUnikraft)
            return 0;
        return monitor_.windowPrestage(currentCtx().current, wid, peer,
                                       expected);
    }

    // ------------------------------------------------------------------
    // Per-cubicle memory
    // ------------------------------------------------------------------

    /** Allocates from the current cubicle's heap sub-allocator. */
    void *heapAlloc(std::size_t size);
    /** Zero-initialised variant. */
    void *heapAllocZeroed(std::size_t size);
    /** Frees memory allocated by the current cubicle. */
    void heapFree(void *ptr);

    /**
     * Rewires @p cid's heap page source to the given functions (used by
     * boot code to route chunk requests through the ALLOC component).
     */
    void setHeapSource(Cid cid, mem::HeapAllocator::PageSource source,
                       mem::HeapAllocator::PageReturn ret);

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    Monitor &monitor() { return monitor_; }
    Stats &stats() { return stats_; }

    /**
     * Plain-data snapshot of the booted system's wiring — cubicles,
     * live windows, exports — as input to the isolation linter.
     */
    verifier::WiringSnapshot wiringSnapshot() const;

    /**
     * Runs the isolation linter over the current wiring and records
     * the run in stats(). Findings never throw; callers decide policy
     * (see verifier::lintClean).
     */
    std::vector<verifier::LintFinding> lintWiring();

    /**
     * Full isolation audit: the syntactic lint rules plus the dataflow
     * least-privilege rules (verifier::auditWiring) over one wiring
     * snapshot. Run it after traffic — the dataflow rules compare the
     * declared ACLs against the accesses that actually happened, so a
     * fresh boot makes every grant look over-broad. Findings never
     * throw; callers decide policy.
     */
    std::vector<verifier::LintFinding> auditIsolation();

    /**
     * The combined machine-readable audit: per-image verifier pass-3
     * records, the window usage matrix, and every lint + dataflow
     * finding, rendered as deterministic JSON
     * (verifier::auditReportJson). Safe to diff against a committed
     * baseline.
     */
    std::string auditJson();

    hw::CycleClock &clock() { return monitor_.clock(); }
    IsolationMode mode() const { return mode_; }
    const SystemConfig &config() const { return monitor_.config(); }

    // Internal: trampoline implementation detail, public for CrossFn.
    template <typename R, typename FnT, typename... Args>
    R crossCall(Cid callee, bool callee_shared, FnT &fn, Args &&...args)
    {
        // Shared cubicles execute with the caller's privileges and
        // never involve the runtime TCB (paper §3 step ❹).
        if (callee_shared || mode_ == IsolationMode::kUnikraft)
            return fn(std::forward<Args>(args)...);

        ThreadCtx &ctx = currentCtx();
        // Calls within one cubicle (colocated components) are plain
        // calls: no switch, no cross-cubicle edge.
        if (ctx.current == callee)
            return fn(std::forward<Args>(args)...);
        stats_.countCall(ctx.current, callee);

        CrossCallGuard guard(*this, ctx, callee);
        return fn(std::forward<Args>(args)...);
    }

  private:
    friend class CrossCallGuard;

    void touchSlow(ThreadCtx &ctx, const void *ptr, std::size_t len,
                   hw::Access access);

    const ExportSlot &findSlot(std::string_view comp_name,
                               std::string_view fn_name,
                               const char *sig_name) const;

    Stats stats_;
    Monitor monitor_;
    IsolationMode mode_;
    uint64_t serial_;

    std::vector<std::unique_ptr<Component>> components_;
    std::vector<std::string> componentNames_;
    std::vector<ExportSlot> exports_;
    bool booted_ = false;
};

template <typename R, typename... Args>
class CrossFn<R(Args...)> {
  public:
    CrossFn() = default;

    CrossFn(System *sys, const std::function<R(Args...)> *target,
            Cid callee, bool callee_shared)
        : sys_(sys), target_(target), callee_(callee),
          shared_(callee_shared)
    {}

    /** True if resolution succeeded (non-default-constructed). */
    explicit operator bool() const { return target_ != nullptr; }

    R operator()(Args... args) const
    {
        return sys_->crossCall<R>(
            callee_, shared_, *target_, std::forward<Args>(args)...);
    }

    /** The callee's cubicle ID. */
    Cid callee() const { return callee_; }

  private:
    System *sys_ = nullptr;
    const std::function<R(Args...)> *target_ = nullptr;
    Cid callee_ = kNoCubicle;
    bool shared_ = false;
};

template <typename Sig>
CrossFn<Sig>
System::resolve(std::string_view comp_name, std::string_view fn_name)
{
    const ExportSlot &slot =
        findSlot(comp_name, fn_name, typeid(Sig).name());
    return CrossFn<Sig>(
        this, static_cast<const std::function<Sig> *>(slot.fn.get()),
        slot.owner, slot.ownerKind == CubicleKind::kShared);
}

/**
 * A fixed-depth submission ring of pending cross-cubicle calls to one
 * callee — the io_uring shape for trampoline amortisation.
 *
 * Every queued call is a full logical cross-call: it is accounted on
 * the caller→callee edge exactly as if invoked through CrossFn (the
 * Fig. 5 edge counts do not change), and it executes inside the
 * callee's cubicle with the callee's PKRU. What the ring amortises is
 * the *switch*: flush() performs one trampoline + stack switch + two
 * PKRU write pairs for the whole batch instead of per call, the way
 * io_uring amortises syscall entries. Shared callees and the Unikraft
 * baseline run the thunks directly, as CrossFn would.
 *
 * Usage: capture result targets by pointer in the queued thunk and
 * read them after flush():
 * @code
 *   CallRing ring(sys, lwipCid);
 *   int64_t sent = 0, done = 0;
 *   ring.push([&sendz, fd, span, n, &sent] { sent = sendz(fd, span, n); });
 *   ring.push([&zcdone, fd, &done] { done = zcdone(fd); });
 *   ring.flush(); // one switch, two calls
 * @endcode
 *
 * Queued thunks must not themselves cross back into the caller's
 * cubicle (the usual cross-call nesting rules apply — the CFI call
 * stack sees one entry into the callee for the whole batch). A thunk
 * that throws aborts the rest of the batch: remaining entries are
 * discarded unexecuted and the exception propagates through the
 * guard's exception-safe return switch. The one exception is
 * core::PeerFault — the callee died mid-batch: the ring absorbs it
 * and delivers kPeerFaultVerdict through each remaining slot's
 * verdict pointer (see push), so batched submitters observe a peer
 * crash as per-call error codes, not an unwinding exception.
 *
 * Thread-compatibility: a ring belongs to one thread, like the
 * ThreadCtx it runs against. This is also the API seam an async
 * channel transport can later reuse — a channel is a CallRing whose
 * flush happens on the callee's schedule instead of the caller's.
 */
class CallRing {
  public:
    /** Queue depth: calls buffered per switch. */
    static constexpr std::size_t kDepth = 16;
    /** Inline storage per queued thunk (no heap on the hot path). */
    static constexpr std::size_t kSlotBytes = 64;

    CallRing(System &sys, Cid callee)
        : sys_(sys), callee_(callee),
          shared_(sys.monitor().cubicle(callee).kind ==
                  CubicleKind::kShared)
    {}

    /** Discards (without executing) anything left unflushed. */
    ~CallRing()
    {
        for (std::size_t i = 0; i < count_; ++i)
            slots_[i].destroy(slots_[i].storage);
    }

    CallRing(const CallRing &) = delete;
    CallRing &operator=(const CallRing &) = delete;

    std::size_t pending() const { return count_; }
    bool empty() const { return count_ == 0; }
    bool full() const { return count_ == kDepth; }
    Cid callee() const { return callee_; }

    /**
     * Queues one call. @return false when the ring is full — flush()
     * first. @p fn must fit the inline slot (enforced at compile time).
     *
     * @p verdict, when given, is the slot's completion word: if the
     * callee dies mid-batch (or is already dead at flush), every
     * entry from the failure point on gets kPeerFaultVerdict written
     * through its verdict pointer instead of running — the submitter
     * reads per-call outcomes after flush() rather than unwinding.
     * Entries without a verdict pointer fail silently.
     */
    template <typename Fn>
    bool push(Fn &&fn, int64_t *verdict = nullptr)
    {
        using Decayed = std::decay_t<Fn>;
        static_assert(sizeof(Decayed) <= kSlotBytes,
                      "CallRing thunk exceeds inline slot storage");
        if (full())
            return false;
        Slot &s = slots_[count_];
        new (s.storage) Decayed(std::forward<Fn>(fn));
        s.invoke = [](std::byte *p) {
            auto *f = reinterpret_cast<Decayed *>(p);
            struct Reaper {
                Decayed *f;
                ~Reaper() { f->~Decayed(); }
            } reaper{f};
            (*f)();
        };
        s.destroy = [](std::byte *p) {
            reinterpret_cast<Decayed *>(p)->~Decayed();
        };
        s.verdict = verdict;
        ++count_;
        return true;
    }

    /**
     * Executes every queued call under a single cross-cubicle switch.
     * @return the number of calls executed.
     */
    std::size_t flush();

  private:
    struct Slot {
        alignas(std::max_align_t) std::byte storage[kSlotBytes];
        void (*invoke)(std::byte *) = nullptr;
        void (*destroy)(std::byte *) = nullptr;
        /** Completion word for peer-fault delivery; may be null. */
        int64_t *verdict = nullptr;
    };

    /**
     * Runs the thunks. A PeerFault — the callee died mid-batch — is
     * absorbed: the failing entry and everything after it get the
     * peer-fault verdict instead of tearing the submitter down. Any
     * other throw discards the rest of the batch and propagates.
     */
    void runAll()
    {
        std::size_t i = 0;
        try {
            for (; i < count_; ++i)
                slots_[i].invoke(slots_[i].storage);
        } catch (const PeerFault &) {
            // Slot i's thunk was destroyed by its Reaper; later slots
            // are discarded unexecuted. The fault's own unwind was
            // already counted at the throw site; count the discards.
            for (std::size_t j = i; j < count_; ++j) {
                if (slots_[j].verdict)
                    *slots_[j].verdict = kPeerFaultVerdict;
                if (j > i)
                    slots_[j].destroy(slots_[j].storage);
            }
            if (count_ > i + 1)
                sys_.stats().countUnwound(count_ - i - 1);
            count_ = 0;
            return;
        } catch (...) {
            for (std::size_t j = i + 1; j < count_; ++j)
                slots_[j].destroy(slots_[j].storage);
            count_ = 0;
            throw;
        }
        count_ = 0;
    }

    /** Fails every queued entry by verdict (callee already dead). */
    void faultAll()
    {
        for (std::size_t i = 0; i < count_; ++i) {
            if (slots_[i].verdict)
                *slots_[i].verdict = kPeerFaultVerdict;
            slots_[i].destroy(slots_[i].storage);
        }
        sys_.stats().countUnwound(count_);
        count_ = 0;
    }

    System &sys_;
    Cid callee_;
    bool shared_;
    std::array<Slot, kDepth> slots_{};
    std::size_t count_ = 0;
};

/**
 * RAII bump allocation from the current cubicle's stack arena.
 *
 * Buffers that are passed by pointer across cubicles must live in
 * cubicle-owned, tagged memory; StackFrame is the idiom for "stack
 * variables" such as Fig. 2's BUF. Allocations are page-aligned on
 * request to avoid unintended sharing through page-granular windows
 * (paper §5.3 note on alignment).
 */
class StackFrame {
  public:
    explicit StackFrame(System &sys)
        : sys_(sys), cid_(sys.currentCubicle()),
          saved_(sys.monitor().stackOffset(cid_))
    {}

    ~StackFrame() { sys_.monitor().stackRestore(cid_, saved_); }

    StackFrame(const StackFrame &) = delete;
    StackFrame &operator=(const StackFrame &) = delete;

    /** Allocates @p size bytes with @p align alignment. */
    void *alloc(std::size_t size, std::size_t align = 16)
    {
        return sys_.monitor().stackAlloc(cid_, size, align);
    }

    /** Page-aligned allocation padded to whole pages. */
    void *allocPageAligned(std::size_t size)
    {
        return sys_.monitor().stackAlloc(
            cid_, hw::pagesFor(size) * hw::kPageSize, hw::kPageSize);
    }

  private:
    System &sys_;
    Cid cid_;
    std::size_t saved_;
};

} // namespace cubicleos::core

#endif // CUBICLEOS_CORE_SYSTEM_H_
