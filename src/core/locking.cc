/**
 * @file
 * Debug lock-hierarchy checker (lockdep) behind the locking.h wrappers.
 *
 * Kernel-style design scaled down to the library OS: every thread keeps
 * a small stack of currently-held locks, and each acquisition is
 * validated against that stack *before* the underlying mutex is
 * touched, so a violation reports and aborts instead of deadlocking.
 * Three rules, checked in order:
 *
 *   1. **Re-entry** — acquiring a lock this thread already holds, in
 *      any mode, is fatal. This is the only way to catch the fault
 *      path's shared-vs-exclusive windowMutex_ re-entry: upgrading a
 *      reader hold to a writer hold self-deadlocks, and even
 *      shared→shared re-entry deadlocks behind a writer queued between
 *      the two acquisitions.
 *   2. **Rank order** — a new lock's rank must be ≥ every held rank.
 *      Ranks are the monitor's documented hierarchy (locking.h); a
 *      lower-ranked acquisition is exactly the inversion TSan on a
 *      1-core host never observes.
 *   3. **Same-rank key order** — equal-rank locks (per-cubicle
 *      stackMu/heapMu, keyed by cubicle id) must be chained in
 *      strictly increasing key order. A strict total order makes
 *      same-rank cycles impossible; two threads chaining opposite cid
 *      orders would deadlock, and the first out-of-order link aborts.
 *
 * Each held entry records a 16-frame backtrace at acquisition
 * (~1 µs/capture on this host — fine for a debug backstop), so a
 * violation report shows where the conflicting lock was taken as well
 * as where the bad acquisition is happening.
 *
 * Everything here is per-thread state with no allocation, so the
 * checker itself takes no locks and is async-signal tolerant enough
 * for the fault path.
 */

#include "core/locking.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#if defined(__GLIBC__)
#include <execinfo.h>
#define CUBICLE_LOCKDEP_HAVE_BACKTRACE 1
#else
#define CUBICLE_LOCKDEP_HAVE_BACKTRACE 0
#endif

namespace cubicleos::core {

const char *
lockRankName(LockRank rank)
{
    switch (rank) {
    case LockRank::kLifecycle:
        return "lifecycle";
    case LockRank::kLoader:
        return "loader";
    case LockRank::kVerifyCache:
        return "verify-cache";
    case LockRank::kWindow:
        return "window";
    case LockRank::kKeyTable:
        return "key-table";
    case LockRank::kCubicle:
        return "cubicle";
    case LockRank::kPage:
        return "page";
    }
    return "?";
}

namespace lockdep {
namespace {

constexpr int kMaxHeld = 32;   ///< deepest legal nesting is 4 today
constexpr int kMaxFrames = 16; ///< backtrace depth per acquisition

/** One lock this thread currently holds. */
struct Held {
    const void *lock = nullptr; ///< wrapper address (identity)
    LockTag tag;
    bool shared = false;
    int frameCount = 0;
    void *frames[kMaxFrames];
};

/** Per-thread held-lock stack. Trivial layout: plain TLS, no ctor. */
struct ThreadState {
    int depth = 0;
    Held held[kMaxHeld];
};

thread_local ThreadState tls;

int
captureBacktrace(void **frames, int max)
{
#if CUBICLE_LOCKDEP_HAVE_BACKTRACE
    return backtrace(frames, max);
#else
    (void)frames;
    (void)max;
    return 0;
#endif
}

void
printBacktrace(void *const *frames, int count)
{
#if CUBICLE_LOCKDEP_HAVE_BACKTRACE
    if (count > 0)
        backtrace_symbols_fd(const_cast<void *const *>(frames), count,
                             /*fd=*/2);
    else
        std::fputs("    (no backtrace captured)\n", stderr);
#else
    (void)frames;
    (void)count;
    std::fputs("    (backtrace unavailable on this libc)\n", stderr);
#endif
}

void
printLock(const char *role, const void *lock, const LockTag &tag,
          bool shared)
{
    std::fprintf(stderr,
                 "lockdep:   %s %s (%p) rank=%u/%s key=%" PRIu32
                 " mode=%s\n",
                 role, tag.name, lock,
                 static_cast<unsigned>(tag.rank), lockRankName(tag.rank),
                 tag.key, shared ? "shared" : "exclusive");
}

[[noreturn]] void
violation(const char *kind, const Held &conflict, const LockTag &tag,
          const void *lock, bool shared)
{
    std::fprintf(stderr,
                 "lockdep: FATAL lock hierarchy violation: %s\n", kind);
    printLock("acquiring", lock, tag, shared);
    printLock("while holding", conflict.lock, conflict.tag,
              conflict.shared);
    std::fprintf(stderr,
                 "lockdep: held lock was acquired at:\n");
    printBacktrace(conflict.frames, conflict.frameCount);
    std::fprintf(stderr,
                 "lockdep: bad acquisition attempted at:\n");
    void *now[kMaxFrames];
    printBacktrace(now, captureBacktrace(now, kMaxFrames));
    std::fflush(stderr);
    std::abort();
}

} // namespace

void
onAcquire(const LockTag &tag, const void *lock, bool shared)
{
    ThreadState &st = tls;

    // Rule 1: re-entry of a held lock, in any mode. Covers the fault
    // path re-entering windowMutex_ (shared or exclusive) while a
    // shared hold is already open.
    for (int i = 0; i < st.depth; ++i) {
        if (st.held[i].lock == lock)
            violation("re-entrant acquisition of a held lock",
                      st.held[i], tag, lock, shared);
    }

    if (st.depth > 0) {
        // Rules 2 and 3 only need the strictest (highest-rank, then
        // highest-key) lock currently held; acquisitions are pushed in
        // check order, so that is the maximum over the stack.
        const Held *strictest = &st.held[0];
        for (int i = 1; i < st.depth; ++i) {
            const Held &h = st.held[i];
            if (h.tag.rank > strictest->tag.rank ||
                (h.tag.rank == strictest->tag.rank &&
                 h.tag.key > strictest->tag.key))
                strictest = &h;
        }
        if (tag.rank < strictest->tag.rank)
            violation("rank inversion (acquiring above a held lock)",
                      *strictest, tag, lock, shared);
        if (tag.rank == strictest->tag.rank &&
            tag.key <= strictest->tag.key)
            violation("same-rank acquisition out of key order",
                      *strictest, tag, lock, shared);
    }

    if (st.depth >= kMaxHeld) {
        std::fprintf(stderr,
                     "lockdep: FATAL held-lock stack overflow "
                     "(%d locks) acquiring %s\n",
                     st.depth, tag.name);
        std::fflush(stderr);
        std::abort();
    }

    Held &h = st.held[st.depth];
    h.lock = lock;
    h.tag = tag;
    h.shared = shared;
    h.frameCount = captureBacktrace(h.frames, kMaxFrames);
    ++st.depth;
}

void
onRelease(const void *lock)
{
    ThreadState &st = tls;
    // Releases are usually LIFO (scoped guards), but scan from the top
    // so explicit unlock() in another order stays legal.
    for (int i = st.depth - 1; i >= 0; --i) {
        if (st.held[i].lock != lock)
            continue;
        for (int j = i; j + 1 < st.depth; ++j)
            st.held[j] = st.held[j + 1];
        --st.depth;
        return;
    }
    // Unmatched release: the wrapper guards make this unreachable, but
    // do not abort — the underlying mutex has already been released and
    // the process is not at risk of deadlock.
    std::fprintf(stderr,
                 "lockdep: warning: release of un-held lock %p\n", lock);
}

std::size_t
heldCount()
{
    return static_cast<std::size_t>(tls.depth);
}

bool
isHeld(const void *lock)
{
    const ThreadState &st = tls;
    for (int i = 0; i < st.depth; ++i) {
        if (st.held[i].lock == lock)
            return true;
    }
    return false;
}

void
assertHeld(const void *lock, const char *what)
{
    if (isHeld(lock))
        return;
    std::fprintf(stderr,
                 "lockdep: FATAL: %s accessed without its guard "
                 "(%p not held by this thread)\n",
                 what, lock);
    std::fprintf(stderr, "lockdep: unguarded access attempted at:\n");
    void *now[kMaxFrames];
    printBacktrace(now, captureBacktrace(now, kMaxFrames));
    std::fflush(stderr);
    std::abort();
}

} // namespace lockdep
} // namespace cubicleos::core
