#include "core/codescan.h"

#include "hw/prng.h"

namespace cubicleos::core {

namespace {

struct Pattern {
    const char *mnemonic;
    uint8_t bytes[3];
    std::size_t len;
};

/**
 * Forbidden encodings. wrpkru changes MPK permissions directly; the
 * syscall family could ask the host kernel to change page tags
 * (pkey_mprotect) or permissions (mprotect).
 */
constexpr Pattern kForbidden[] = {
    {"wrpkru", {0x0F, 0x01, 0xEF}, 3},
    {"xsetbv", {0x0F, 0x01, 0xD1}, 3},
    {"syscall", {0x0F, 0x05, 0x00}, 2},
    {"sysenter", {0x0F, 0x34, 0x00}, 2},
    {"int80", {0xCD, 0x80, 0x00}, 2},
};

bool
matchAt(std::span<const uint8_t> image, std::size_t pos, const Pattern &p)
{
    if (pos + p.len > image.size())
        return false;
    for (std::size_t i = 0; i < p.len; ++i) {
        if (image[pos + i] != p.bytes[i])
            return false;
    }
    return true;
}

} // namespace

std::optional<ForbiddenInsn>
scanCodeImage(std::span<const uint8_t> image)
{
    for (std::size_t pos = 0; pos < image.size(); ++pos) {
        for (const Pattern &p : kForbidden) {
            if (matchAt(image, pos, p))
                return ForbiddenInsn{pos, p.mnemonic};
        }
    }
    return std::nullopt;
}

std::vector<ForbiddenInsn>
scanCodeImageAll(std::span<const uint8_t> image)
{
    std::vector<ForbiddenInsn> out;
    for (std::size_t pos = 0; pos < image.size(); ++pos) {
        for (const Pattern &p : kForbidden) {
            if (matchAt(image, pos, p))
                out.push_back(ForbiddenInsn{pos, p.mnemonic});
        }
    }
    return out;
}

std::vector<uint8_t>
makeBenignImage(std::size_t size, uint64_t seed)
{
    std::vector<uint8_t> image(size);
    hw::Prng prng(seed | 1);
    for (auto &b : image) {
        // Only single-byte NOP/arith opcodes: cannot form any multi-byte
        // forbidden sequence (none begins with these values).
        static constexpr uint8_t kSafe[] = {0x90, 0x50, 0x58, 0x48, 0x89};
        b = kSafe[prng.nextBelow(sizeof(kSafe))];
    }
    return image;
}

} // namespace cubicleos::core
