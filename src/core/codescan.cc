#include "core/codescan.h"

#include "hw/prng.h"

namespace cubicleos::core {

namespace {

/**
 * Forbidden encodings. wrpkru changes MPK permissions directly; xsetbv
 * and xrstor (/5 selects the state component that restores PKRU) can
 * smuggle a PKRU change through XSAVE state; the syscall family could
 * ask the host kernel to change page tags (pkey_mprotect) or
 * permissions (mprotect).
 */
constexpr ForbiddenPattern kForbidden[] = {
    {"wrpkru", {0x0F, 0x01, 0xEF}, {0xFF, 0xFF, 0xFF}, 3},
    {"xsetbv", {0x0F, 0x01, 0xD1}, {0xFF, 0xFF, 0xFF}, 3},
    {"xrstor", {0x0F, 0xAE, 0x28}, {0xFF, 0xFF, 0x38}, 3},
    {"syscall", {0x0F, 0x05, 0x00}, {0xFF, 0xFF, 0x00}, 2},
    {"sysenter", {0x0F, 0x34, 0x00}, {0xFF, 0xFF, 0x00}, 2},
    {"int80", {0xCD, 0x80, 0x00}, {0xFF, 0xFF, 0x00}, 2},
};

bool
matchAt(std::span<const uint8_t> image, std::size_t pos,
        const ForbiddenPattern &p)
{
    if (pos + p.len > image.size())
        return false;
    for (std::size_t i = 0; i < p.len; ++i) {
        if ((image[pos + i] & p.mask[i]) != p.bytes[i])
            return false;
    }
    return true;
}

} // namespace

std::span<const ForbiddenPattern>
forbiddenPatterns()
{
    return kForbidden;
}

std::optional<ForbiddenInsn>
scanCodeImage(std::span<const uint8_t> image)
{
    for (std::size_t pos = 0; pos < image.size(); ++pos) {
        for (const ForbiddenPattern &p : kForbidden) {
            if (matchAt(image, pos, p))
                return ForbiddenInsn{pos, p.mnemonic, p.len};
        }
    }
    return std::nullopt;
}

std::vector<ForbiddenInsn>
scanCodeImageAll(std::span<const uint8_t> image)
{
    std::vector<ForbiddenInsn> out;
    std::size_t pos = 0;
    while (pos < image.size()) {
        std::size_t advance = 1;
        for (const ForbiddenPattern &p : kForbidden) {
            if (matchAt(image, pos, p)) {
                out.push_back(ForbiddenInsn{pos, p.mnemonic, p.len});
                // Resume past the match so one sequence is reported
                // once, not again at its interior positions.
                advance = p.len;
                break;
            }
        }
        pos += advance;
    }
    return out;
}

std::vector<uint8_t>
makeBenignImage(std::size_t size, uint64_t seed,
                std::vector<std::size_t> *entries)
{
    std::vector<uint8_t> image;
    image.reserve(size);
    hw::Prng prng(seed | 1);
    if (entries != nullptr && size > 0)
        entries->push_back(0);

    // mod=11 ModRM byte over random registers, avoiding the one value
    // (0xCD) that starts the int80 pattern.
    auto modrmReg = [&]() -> uint8_t {
        const auto reg = static_cast<uint8_t>(prng.nextBelow(8));
        auto rm = static_cast<uint8_t>(prng.nextBelow(8));
        if (reg == 1 && rm == 5) // 0xC0 | 1<<3 | 5 == 0xCD
            rm = 0;
        return static_cast<uint8_t>(0xC0 | (reg << 3) | rm);
    };
    // Immediate bytes drawn from a menu that contains neither 0x0F nor
    // 0xCD, so no forbidden pattern can start inside an immediate.
    auto immByte = [&]() -> uint8_t {
        static constexpr uint8_t kImm[] = {0x00, 0x01, 0x11, 0x22, 0x33,
                                           0x44, 0x55, 0x66, 0x77, 0x7F};
        return kImm[prng.nextBelow(sizeof(kImm))];
    };

    while (image.size() < size) {
        const std::size_t room = size - image.size();
        switch (prng.nextBelow(14)) {
          case 0: // nop
            image.push_back(0x90);
            break;
          case 1: // push r64
            image.push_back(static_cast<uint8_t>(0x50 + prng.nextBelow(8)));
            break;
          case 2: // pop r64
            image.push_back(static_cast<uint8_t>(0x58 + prng.nextBelow(8)));
            break;
          case 3: // mov r64, r64
            if (room < 3) {
                image.push_back(0x90);
                break;
            }
            image.push_back(0x48);
            image.push_back(0x89);
            image.push_back(modrmReg());
            break;
          case 4: // mov r32, imm32
            if (room < 5) {
                image.push_back(0x90);
                break;
            }
            image.push_back(static_cast<uint8_t>(0xB8 + prng.nextBelow(8)));
            for (int i = 0; i < 4; ++i)
                image.push_back(immByte());
            break;
          case 5: // add/sub/cmp r64, imm8
            if (room < 4) {
                image.push_back(0x90);
                break;
            }
            image.push_back(0x48);
            image.push_back(0x83);
            image.push_back(modrmReg());
            image.push_back(immByte());
            break;
          case 6: // test r64, r64
            if (room < 3) {
                image.push_back(0x90);
                break;
            }
            image.push_back(0x48);
            image.push_back(0x85);
            image.push_back(modrmReg());
            break;
          case 7: // ret — the byte after it starts a fresh function
            image.push_back(0xC3);
            if (entries != nullptr && image.size() < size)
                entries->push_back(image.size());
            break;
          // The two-byte-map and prefixed entries below keep the
          // invariant: 0x0F is always followed by a second opcode byte
          // outside {01, AE, 05, 34}, and 0xCD is never emitted.
          case 8: // movaps xmm, xmm
            if (room < 3) {
                image.push_back(0x90);
                break;
            }
            image.push_back(0x0F);
            image.push_back(0x28);
            image.push_back(modrmReg());
            break;
          case 9: // movzx r32, r8
            if (room < 3) {
                image.push_back(0x90);
                break;
            }
            image.push_back(0x0F);
            image.push_back(0xB6);
            image.push_back(modrmReg());
            break;
          case 10: // shl/shr r64, imm8 (group 2)
            if (room < 4) {
                image.push_back(0x90);
                break;
            }
            image.push_back(0x48);
            image.push_back(0xC1);
            image.push_back(modrmReg());
            image.push_back(immByte());
            break;
          case 11: // rep movsb
            if (room < 2) {
                image.push_back(0x90);
                break;
            }
            image.push_back(0xF3);
            image.push_back(0xA4);
            break;
          case 12: { // bounded-switch jump-table dispatch (pass-3 idiom)
            // cmp rax,bound; ja default; lea rcx,[rip+9];
            // movsxd rdx,[rcx+rax*4]; add rcx,rdx; jmp rcx; then the
            // table ((bound+1) LE32 offsets relative to its own base)
            // and a nop sled the entries point into. Entry value bytes
            // are {4c+4k, 0, 0, 0} — multiples of 4 up to 28, so every
            // table byte pair decodes as a benign 2-byte ALU op and the
            // linear sweep re-aligns exactly at the sled. ja skips the
            // whole construct, so the pass-2 walk never enters the
            // table either.
            const std::size_t count = 2 + prng.nextBelow(3); // 2..4
            if (room < 22 + 8 * count) {
                image.push_back(0x90);
                break;
            }
            constexpr uint8_t kL = 1; // rcx: table base, then target
            constexpr uint8_t kD = 2; // rdx: sign-extended entry
            image.push_back(0x48); // cmp rax, count-1
            image.push_back(0x83);
            image.push_back(0xF8);
            image.push_back(static_cast<uint8_t>(count - 1));
            image.push_back(0x77); // ja past table + sled
            image.push_back(static_cast<uint8_t>(16 + 8 * count));
            image.push_back(0x48); // lea rcx, [rip+9]
            image.push_back(0x8D);
            image.push_back(0x05 | (kL << 3));
            image.push_back(0x09);
            image.push_back(0x00);
            image.push_back(0x00);
            image.push_back(0x00);
            image.push_back(0x48); // movsxd rdx, dword [rcx+rax*4]
            image.push_back(0x63);
            image.push_back(0x04 | (kD << 3));
            image.push_back(0x80 | kL);
            image.push_back(0x48); // add rcx, rdx
            image.push_back(0x01);
            image.push_back(0xC0 | (kD << 3) | kL);
            image.push_back(0xFF); // jmp rcx
            image.push_back(0xE0 | kL);
            for (std::size_t k = 0; k < count; ++k) {
                image.push_back(
                    static_cast<uint8_t>(4 * count + 4 * k));
                image.push_back(0x00);
                image.push_back(0x00);
                image.push_back(0x00);
            }
            for (std::size_t k = 0; k < 4 * count; ++k)
                image.push_back(0x90);
            break;
          }
          case 13: { // lea/call singleton; rarely a naked call r64
            if (room < 10) { // keep the lea target inside the image
                image.push_back(0x90);
                break;
            }
            if (prng.nextBelow(8) == 0) {
                // Residual CFI-trusted indirect call: pass 3 counts
                // and lists it as unresolved.
                image.push_back(0xFF);
                image.push_back(
                    static_cast<uint8_t>(0xD0 | prng.nextBelow(8)));
                break;
            }
            const auto reg = static_cast<uint8_t>(prng.nextBelow(8));
            image.push_back(0x48); // lea reg, [rip+2] → after the call
            image.push_back(0x8D);
            image.push_back(static_cast<uint8_t>(0x05 | (reg << 3)));
            image.push_back(0x02);
            image.push_back(0x00);
            image.push_back(0x00);
            image.push_back(0x00);
            image.push_back(0xFF); // call reg
            image.push_back(static_cast<uint8_t>(0xD0 | reg));
            break;
          }
        }
    }
    return image;
}

std::vector<uint8_t>
makeCfiImage(std::size_t size, uint64_t seed,
             verifier::EntryTable *table,
             std::vector<std::size_t> *entries)
{
    std::vector<uint8_t> image = makeBenignImage(size, seed, entries);
    image.push_back(0xC3); // seal fallthrough before the table data
    if (table != nullptr) {
        table->offset = image.size();
        table->count = 1;
    }
    // One address-taken entry: offset 0. All-zero bytes, so even if a
    // misaligned decode reads the table, no forbidden pattern can form.
    for (int i = 0; i < 4; ++i)
        image.push_back(0x00);
    return image;
}

} // namespace cubicleos::core
