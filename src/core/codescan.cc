#include "core/codescan.h"

#include "hw/prng.h"

namespace cubicleos::core {

namespace {

/**
 * Forbidden encodings. wrpkru changes MPK permissions directly; xsetbv
 * and xrstor (/5 selects the state component that restores PKRU) can
 * smuggle a PKRU change through XSAVE state; the syscall family could
 * ask the host kernel to change page tags (pkey_mprotect) or
 * permissions (mprotect).
 */
constexpr ForbiddenPattern kForbidden[] = {
    {"wrpkru", {0x0F, 0x01, 0xEF}, {0xFF, 0xFF, 0xFF}, 3},
    {"xsetbv", {0x0F, 0x01, 0xD1}, {0xFF, 0xFF, 0xFF}, 3},
    {"xrstor", {0x0F, 0xAE, 0x28}, {0xFF, 0xFF, 0x38}, 3},
    {"syscall", {0x0F, 0x05, 0x00}, {0xFF, 0xFF, 0x00}, 2},
    {"sysenter", {0x0F, 0x34, 0x00}, {0xFF, 0xFF, 0x00}, 2},
    {"int80", {0xCD, 0x80, 0x00}, {0xFF, 0xFF, 0x00}, 2},
};

bool
matchAt(std::span<const uint8_t> image, std::size_t pos,
        const ForbiddenPattern &p)
{
    if (pos + p.len > image.size())
        return false;
    for (std::size_t i = 0; i < p.len; ++i) {
        if ((image[pos + i] & p.mask[i]) != p.bytes[i])
            return false;
    }
    return true;
}

} // namespace

std::span<const ForbiddenPattern>
forbiddenPatterns()
{
    return kForbidden;
}

std::optional<ForbiddenInsn>
scanCodeImage(std::span<const uint8_t> image)
{
    for (std::size_t pos = 0; pos < image.size(); ++pos) {
        for (const ForbiddenPattern &p : kForbidden) {
            if (matchAt(image, pos, p))
                return ForbiddenInsn{pos, p.mnemonic, p.len};
        }
    }
    return std::nullopt;
}

std::vector<ForbiddenInsn>
scanCodeImageAll(std::span<const uint8_t> image)
{
    std::vector<ForbiddenInsn> out;
    std::size_t pos = 0;
    while (pos < image.size()) {
        std::size_t advance = 1;
        for (const ForbiddenPattern &p : kForbidden) {
            if (matchAt(image, pos, p)) {
                out.push_back(ForbiddenInsn{pos, p.mnemonic, p.len});
                // Resume past the match so one sequence is reported
                // once, not again at its interior positions.
                advance = p.len;
                break;
            }
        }
        pos += advance;
    }
    return out;
}

std::vector<uint8_t>
makeBenignImage(std::size_t size, uint64_t seed)
{
    std::vector<uint8_t> image;
    image.reserve(size);
    hw::Prng prng(seed | 1);

    // mod=11 ModRM byte over random registers, avoiding the one value
    // (0xCD) that starts the int80 pattern.
    auto modrmReg = [&]() -> uint8_t {
        const auto reg = static_cast<uint8_t>(prng.nextBelow(8));
        auto rm = static_cast<uint8_t>(prng.nextBelow(8));
        if (reg == 1 && rm == 5) // 0xC0 | 1<<3 | 5 == 0xCD
            rm = 0;
        return static_cast<uint8_t>(0xC0 | (reg << 3) | rm);
    };
    // Immediate bytes drawn from a menu that contains neither 0x0F nor
    // 0xCD, so no forbidden pattern can start inside an immediate.
    auto immByte = [&]() -> uint8_t {
        static constexpr uint8_t kImm[] = {0x00, 0x01, 0x11, 0x22, 0x33,
                                           0x44, 0x55, 0x66, 0x77, 0x7F};
        return kImm[prng.nextBelow(sizeof(kImm))];
    };

    while (image.size() < size) {
        const std::size_t room = size - image.size();
        switch (prng.nextBelow(12)) {
          case 0: // nop
            image.push_back(0x90);
            break;
          case 1: // push r64
            image.push_back(static_cast<uint8_t>(0x50 + prng.nextBelow(8)));
            break;
          case 2: // pop r64
            image.push_back(static_cast<uint8_t>(0x58 + prng.nextBelow(8)));
            break;
          case 3: // mov r64, r64
            if (room < 3) {
                image.push_back(0x90);
                break;
            }
            image.push_back(0x48);
            image.push_back(0x89);
            image.push_back(modrmReg());
            break;
          case 4: // mov r32, imm32
            if (room < 5) {
                image.push_back(0x90);
                break;
            }
            image.push_back(static_cast<uint8_t>(0xB8 + prng.nextBelow(8)));
            for (int i = 0; i < 4; ++i)
                image.push_back(immByte());
            break;
          case 5: // add/sub/cmp r64, imm8
            if (room < 4) {
                image.push_back(0x90);
                break;
            }
            image.push_back(0x48);
            image.push_back(0x83);
            image.push_back(modrmReg());
            image.push_back(immByte());
            break;
          case 6: // test r64, r64
            if (room < 3) {
                image.push_back(0x90);
                break;
            }
            image.push_back(0x48);
            image.push_back(0x85);
            image.push_back(modrmReg());
            break;
          case 7: // ret
            image.push_back(0xC3);
            break;
          // The two-byte-map and prefixed entries below keep the
          // invariant: 0x0F is always followed by a second opcode byte
          // outside {01, AE, 05, 34}, and 0xCD is never emitted.
          case 8: // movaps xmm, xmm
            if (room < 3) {
                image.push_back(0x90);
                break;
            }
            image.push_back(0x0F);
            image.push_back(0x28);
            image.push_back(modrmReg());
            break;
          case 9: // movzx r32, r8
            if (room < 3) {
                image.push_back(0x90);
                break;
            }
            image.push_back(0x0F);
            image.push_back(0xB6);
            image.push_back(modrmReg());
            break;
          case 10: // shl/shr r64, imm8 (group 2)
            if (room < 4) {
                image.push_back(0x90);
                break;
            }
            image.push_back(0x48);
            image.push_back(0xC1);
            image.push_back(modrmReg());
            image.push_back(immByte());
            break;
          case 11: // rep movsb
            if (room < 2) {
                image.push_back(0x90);
                break;
            }
            image.push_back(0xF3);
            image.push_back(0xA4);
            break;
        }
    }
    return image;
}

} // namespace cubicleos::core
