/**
 * @file
 * The logical→physical key table: tag virtualisation bookkeeping.
 *
 * With SystemConfig::virtualizeTags the loader hands every isolated
 * cubicle a *logical* key (unbounded, hw::Mpk::allocLogicalKey) once
 * the static physical tags run out. This table records which of the
 * reserved *dynamic* physical tags currently backs which logical
 * cubicle; the monitor multiplexes the rest BULKHEAD-style — LRU
 * eviction parks a victim's pages under the reserved parked tag, the
 * next touch faults the cubicle back in through Monitor::handleFault.
 *
 * The table is bookkeeping only: it never touches page tables or PKRU
 * state itself (the monitor owns the retag sweeps, see
 * Monitor::ensureResident). All mutation happens under
 * Monitor::keyMutex_ (rank kKeyTable, core/locking.h); like
 * WindowTable, the guard lives in a different object, so the relation
 * is enforced at runtime via bindGuard + lockdep instead of a
 * GUARDED_BY annotation.
 */

#ifndef CUBICLEOS_CORE_KEYTABLE_H_
#define CUBICLEOS_CORE_KEYTABLE_H_

#include <cstdint>
#include <vector>

#include "core/ids.h"
#include "core/locking.h"

namespace cubicleos::core {

/** One dynamic physical tag and the cubicle it currently backs. */
struct KeyBinding {
    int tag = -1;
    Cid cid = kNoCubicle; ///< kNoCubicle = tag is free
};

class KeyTable {
  public:
    /**
     * Binds the table to the cross-object lock that guards it; every
     * later operation asserts (under lockdep) that the calling thread
     * holds it. Bind before publishing the table to other threads.
     */
    void bindGuard(const Mutex *guard) { guard_ = guard; }

    /** Adds a free physical tag to the dynamic pool (boot-time). */
    void addTag(int tag)
    {
        checkGuard();
        slots_.push_back(KeyBinding{tag, kNoCubicle});
    }

    /** Number of physical tags in the dynamic pool. */
    std::size_t poolSize() const
    {
        checkGuard();
        return slots_.size();
    }

    /**
     * Binds @p cid to a free tag if one exists.
     * @return the tag, or -1 when every tag is bound (evict first).
     */
    int bindFree(Cid cid)
    {
        checkGuard();
        for (KeyBinding &s : slots_) {
            if (s.cid == kNoCubicle) {
                s.cid = cid;
                return s.tag;
            }
        }
        return -1;
    }

    /**
     * Rebinds @p tag (currently backing some victim) to @p newCid.
     * @return the previous owner cid.
     */
    Cid rebind(int tag, Cid new_cid)
    {
        checkGuard();
        for (KeyBinding &s : slots_) {
            if (s.tag == tag) {
                const Cid prev = s.cid;
                s.cid = new_cid;
                return prev;
            }
        }
        return kNoCubicle;
    }

    /** Releases @p tag back to the free pool (cubicle teardown). */
    void release(int tag)
    {
        checkGuard();
        for (KeyBinding &s : slots_) {
            if (s.tag == tag)
                s.cid = kNoCubicle;
        }
    }

    /** The cubicle currently backed by @p tag, or kNoCubicle. */
    Cid ownerOf(int tag) const
    {
        checkGuard();
        for (const KeyBinding &s : slots_) {
            if (s.tag == tag)
                return s.cid;
        }
        return kNoCubicle;
    }

    /** Snapshot of every slot (for the monitor's LRU victim scan). */
    const std::vector<KeyBinding> &slots() const
    {
        checkGuard();
        return slots_;
    }

  private:
    void checkGuard() const
    {
        if constexpr (lockdep::kEnabled) {
            if (guard_ != nullptr)
                lockdep::assertHeld(guard_, "KeyTable");
        }
    }

    std::vector<KeyBinding> slots_;
    const Mutex *guard_ = nullptr;
};

} // namespace cubicleos::core

#endif // CUBICLEOS_CORE_KEYTABLE_H_
