/**
 * @file
 * Core identifier types and configuration enums for CubicleOS.
 */

#ifndef CUBICLEOS_CORE_IDS_H_
#define CUBICLEOS_CORE_IDS_H_

#include <cstdint>

#include "mem/page_meta.h" // Cid

namespace cubicleos::core {

// Re-export the cubicle-ID types so users can spell them core::Cid.
using cubicleos::Cid;
using cubicleos::kNoCubicle;

/** Window identifier, unique within a System. */
using Wid = uint32_t;

/** Sentinel for an invalid window. */
inline constexpr Wid kInvalidWindow = 0xFFFFFFFF;

/**
 * Maximum cubicles representable in a window ACL bitmask.
 *
 * With tag virtualisation (SystemConfig::virtualizeTags) the loader is
 * no longer bounded by the 16 hardware tags, so the ACL mask is a
 * 128-bit pair (core::AclMask) rather than a single machine word.
 */
inline constexpr int kMaxCubicles = 128;

/** Kind of a cubicle (paper §3). */
enum class CubicleKind : uint8_t {
    kIsolated, ///< own MPK key; all interactions cross-cubicle
    kShared,   ///< little-state component executing with caller privileges
};

/**
 * Isolation modes for the Fig. 6 ablation.
 *
 * Each mode adds one CubicleOS mechanism on top of the previous:
 * trampolines, then MPK enforcement, then window ACLs.
 */
enum class IsolationMode : uint8_t {
    kUnikraft, ///< baseline: direct calls, no protection
    kNoMpk,    ///< cross-cubicle trampolines, MPK checks disabled
    kNoAcl,    ///< MPK enforced, window ACLs treated as always open
    kFull,     ///< full CubicleOS
};

/** Returns a human-readable isolation-mode name. */
const char *isolationModeName(IsolationMode mode);

} // namespace cubicleos::core

#endif // CUBICLEOS_CORE_IDS_H_
