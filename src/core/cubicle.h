/**
 * @file
 * Cubicle descriptors: spatial memory isolation units (paper §3).
 *
 * Each component is loaded into its own cubicle containing its code,
 * global data, heap and per-thread stacks. Isolated cubicles map to one
 * MPK protection key each; shared cubicles (small, stateless helpers such
 * as LIBC) use a common key readable from every cubicle and execute with
 * their caller's privileges.
 */

#ifndef CUBICLEOS_CORE_CUBICLE_H_
#define CUBICLEOS_CORE_CUBICLE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "core/ids.h"
#include "core/lifecycle.h"
#include "core/locking.h"
#include "core/window.h"
#include "hw/mpk.h"
#include "hw/relaxed_atomic.h"
#include "mem/arena.h"
#include "mem/suballoc.h"

namespace cubicleos::core {

/**
 * Runtime state of one cubicle.
 *
 * Created by the loader; owned by the monitor. Untrusted code never holds
 * a Cubicle pointer — it interacts through the System facade.
 *
 * Concurrency: id/name/kind/lkey and the page ranges are immutable after
 * loadComponent publishes the cubicle, so any thread may read them
 * without locking. pkey is immutable too for statically-tagged
 * cubicles, but under tag virtualisation a parked cubicle's pkey is
 * rewritten by eviction/re-binding (Monitor::ensureResident), so it is
 * a relaxed atomic — readers racing a rebind see either the old or the
 * new tag, and both are safe (the stale one merely faults and retries;
 * see DESIGN.md §14). Remaining mutable state is split per concern so
 * cubicles never contend with each other: the stack arena cursor under
 * stackMu, the heap sub-allocator under heapMu, the window-descriptor
 * arrays under the monitor's window lock, and extraAllow as an atomic
 * PKRU image (see monitor.h for the lock hierarchy).
 */
struct Cubicle {
    Cid id = kNoCubicle;
    std::string name;
    CubicleKind kind = CubicleKind::kIsolated;

    /**
     * Physical MPK tag currently backing this cubicle (shared key for
     * shared cubicles, parked key while evicted). Written by the
     * loader before publication and thereafter only by the monitor's
     * key table under keyMutex_; read lock-free everywhere.
     */
    hw::RelaxedAtomic<int> pkey{-1};

    /**
     * Logical key (≥ hw::kFirstLogicalKey) when this cubicle is
     * dynamically tagged under virtualisation, or -1 for statically
     * tagged cubicles. Immutable after load.
     */
    int lkey = -1;

    /**
     * Lifecycle state (DESIGN.md §15). kLive from publication until
     * destroyCubicle marks it kDraining; kDead once reclaimed;
     * restartCubicle flips it back to kLive. Deliberately std::atomic
     * (seq_cst), not RelaxedAtomic: the quiesce handshake — an
     * entering thread increments inFlight *then* checks life, the
     * destroyer stores kDraining *then* reads inFlight — relies on a
     * total order over the four operations; with relaxed ordering both
     * sides could miss each other (store-buffering) and a thread would
     * enter a cubicle being reclaimed.
     */
    std::atomic<uint8_t> life{static_cast<uint8_t>(LifeState::kLive)};

    /**
     * Threads currently executing *inside* this cubicle via a
     * cross-call (CrossCallGuard increments on entry, decrements on
     * exit). destroyCubicle quiesces by waiting for this to reach 0
     * after marking the cubicle kDraining. seq_cst, paired with life
     * (see above).
     */
    std::atomic<uint32_t> inFlight{0};

    /** LRU clock value of the last cross-call into this cubicle. */
    hw::RelaxedAtomic<uint64_t> lastUse{0};

    /** Times this cubicle's tag was evicted (residency stats). */
    hw::RelaxedAtomic<uint64_t> evictions{0};

    /** Times this cubicle faulted back in after eviction. */
    hw::RelaxedAtomic<uint64_t> faultIns{0};

    /** Code image pages (execute-only after load). */
    mem::PageRange codeRange;

    /** Global data pages. */
    mem::PageRange globalRange;

    /**
     * Guards stackUsed (StackFrame save/alloc/restore). LockRank
     * kCubicle; the loader rebinds the order key to the cubicle id at
     * publication (setOrderKey), so lockdep enforces the cid-order
     * rule below.
     */
    mutable Mutex stackMu{LockRank::kCubicle, "cubicle.stack"};
    /** Per-cubicle stack pages with a bump offset (see StackFrame). */
    mem::PageRange stackRange;
    std::size_t stackUsed GUARDED_BY(stackMu) = 0;

    /**
     * Guards the heap sub-allocator's free lists. Chunk-source
     * callbacks run under it and may cross-call (e.g. into ALLOC); a
     * callback that heap-allocates in another cubicle would nest two
     * heapMu, so per-cubicle locks must be chained in increasing cid
     * order — machine-checked by lockdep via the same-rank order key
     * (in-tree chunk sources only ever take the leaf pageMutex_).
     */
    mutable Mutex heapMu{LockRank::kCubicle, "cubicle.heap"};
    /**
     * Fine-grained heap backed by pages tagged with this cubicle's
     * key. The pointer itself is written once by the loader before
     * publication; the allocator behind it is only used under heapMu.
     */
    std::unique_ptr<mem::HeapAllocator> heap PT_GUARDED_BY(heapMu);

    /** The per-cubicle window descriptor arrays. */
    WindowTable windows;

    /**
     * Extra PKRU grants from hot windows opened for this cubicle
     * (merged into pkruFor's result at every switch). Written by
     * window open/close under the monitor's window lock; read
     * lock-free by every permission switch, hence atomic.
     */
    hw::AtomicPkru extraAllow;

    bool isolated() const { return kind == CubicleKind::kIsolated; }
};

} // namespace cubicleos::core

#endif // CUBICLEOS_CORE_CUBICLE_H_
