/**
 * @file
 * Cubicle descriptors: spatial memory isolation units (paper §3).
 *
 * Each component is loaded into its own cubicle containing its code,
 * global data, heap and per-thread stacks. Isolated cubicles map to one
 * MPK protection key each; shared cubicles (small, stateless helpers such
 * as LIBC) use a common key readable from every cubicle and execute with
 * their caller's privileges.
 */

#ifndef CUBICLEOS_CORE_CUBICLE_H_
#define CUBICLEOS_CORE_CUBICLE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/ids.h"
#include "core/window.h"
#include "mem/arena.h"
#include "mem/suballoc.h"

namespace cubicleos::core {

/**
 * Runtime state of one cubicle.
 *
 * Created by the loader; owned by the monitor. Untrusted code never holds
 * a Cubicle pointer — it interacts through the System facade.
 */
struct Cubicle {
    Cid id = kNoCubicle;
    std::string name;
    CubicleKind kind = CubicleKind::kIsolated;

    /** MPK key assigned by the loader (shared key for shared cubicles). */
    int pkey = -1;

    /** Code image pages (execute-only after load). */
    mem::PageRange codeRange;

    /** Global data pages. */
    mem::PageRange globalRange;

    /** Per-cubicle stack pages with a bump offset (see StackFrame). */
    mem::PageRange stackRange;
    std::size_t stackUsed = 0;

    /** Fine-grained heap backed by pages tagged with this cubicle's key. */
    std::unique_ptr<mem::HeapAllocator> heap;

    /** The per-cubicle window descriptor arrays. */
    WindowTable windows;

    /**
     * Extra PKRU grants from hot windows opened for this cubicle
     * (merged into pkruFor's result at every switch).
     */
    hw::Pkru extraAllow = hw::Pkru::denyAll();

    bool isolated() const { return kind == CubicleKind::kIsolated; }
};

} // namespace cubicleos::core

#endif // CUBICLEOS_CORE_CUBICLE_H_
