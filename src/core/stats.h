/**
 * @file
 * Runtime statistics: cross-cubicle call edges, traps, retags.
 *
 * The per-edge call counters regenerate the annotations on the component
 * graphs of Fig. 5 (NGINX) and Fig. 8 (SQLite).
 */

#ifndef CUBICLEOS_CORE_STATS_H_
#define CUBICLEOS_CORE_STATS_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/ids.h"

namespace cubicleos::core {

/** One (caller → callee) edge with its call count. */
struct CallEdge {
    Cid caller;
    Cid callee;
    uint64_t count;
};

/** Aggregated runtime counters for one System. */
class Stats {
  public:
    Stats() : edgeMatrix_(kMaxCubicles * kMaxCubicles, 0) {}

    /**
     * Records one cross-cubicle call on the (caller, callee) edge.
     * A flat-matrix increment: cheap enough to keep on in every mode.
     */
    void countCall(Cid caller, Cid callee)
    {
        edgeMatrix_[matrixIndex(caller, callee)]++;
    }

    /** Memory-protection traps taken (trap-and-map entries). */
    void countTrap() { ++traps_; }
    /** Pages retagged by the trap handler. */
    void countRetag() { ++retags_; }
    /** PKRU register writes. */
    void countWrpkru(uint64_t n = 1) { wrpkrus_ += n; }
    /** Window API operations (init/add/open/close/...). */
    void countWindowOp() { ++windowOps_; }
    /** Faults the monitor could not resolve (isolation violations). */
    void countViolation() { ++violations_; }

    /** Records one load-time verifier run over a component image. */
    void countVerifiedImage(uint64_t imageBytes, uint64_t decodedBytes,
                            uint64_t insns, uint64_t rejecting,
                            uint64_t reportOnly)
    {
        ++imagesVerified_;
        verifierBytesScanned_ += imageBytes;
        verifierBytesDecoded_ += decodedBytes;
        verifierInsns_ += insns;
        verifierRejected_ += rejecting;
        verifierReported_ += reportOnly;
    }
    /** Records one isolation-lint run yielding @p findings findings. */
    void countLintRun(uint64_t findings)
    {
        ++lintRuns_;
        lintFindings_ += findings;
    }

    uint64_t traps() const { return traps_; }
    uint64_t retags() const { return retags_; }
    uint64_t wrpkrus() const { return wrpkrus_; }
    uint64_t windowOps() const { return windowOps_; }
    uint64_t violations() const { return violations_; }
    uint64_t imagesVerified() const { return imagesVerified_; }
    uint64_t verifierBytesScanned() const { return verifierBytesScanned_; }
    uint64_t verifierBytesDecoded() const { return verifierBytesDecoded_; }
    uint64_t verifierInsns() const { return verifierInsns_; }
    uint64_t verifierRejected() const { return verifierRejected_; }
    uint64_t verifierReported() const { return verifierReported_; }
    uint64_t lintRuns() const { return lintRuns_; }
    uint64_t lintFindings() const { return lintFindings_; }

    /** Returns the call count on one edge. */
    uint64_t callsOnEdge(Cid caller, Cid callee) const
    {
        return edgeMatrix_[matrixIndex(caller, callee)];
    }

    /** Total cross-cubicle calls over all edges. */
    uint64_t totalCalls() const
    {
        uint64_t n = 0;
        for (uint64_t v : edgeMatrix_)
            n += v;
        return n;
    }

    /** All edges with non-zero counts. */
    std::vector<CallEdge> edges() const
    {
        std::vector<CallEdge> out;
        for (int c = 0; c < kMaxCubicles; ++c) {
            for (int e = 0; e < kMaxCubicles; ++e) {
                uint64_t v = edgeMatrix_[c * kMaxCubicles + e];
                if (v > 0) {
                    out.push_back(CallEdge{static_cast<Cid>(c),
                                           static_cast<Cid>(e), v});
                }
            }
        }
        return out;
    }

    /** Resets every counter (benchmark warm-up boundary). */
    void reset()
    {
        std::fill(edgeMatrix_.begin(), edgeMatrix_.end(), 0);
        traps_ = retags_ = wrpkrus_ = windowOps_ = violations_ = 0;
        imagesVerified_ = verifierBytesScanned_ = verifierBytesDecoded_ = 0;
        verifierInsns_ = verifierRejected_ = verifierReported_ = 0;
        lintRuns_ = lintFindings_ = 0;
    }

  private:
    static std::size_t matrixIndex(Cid caller, Cid callee)
    {
        return (caller % kMaxCubicles) * kMaxCubicles
            + (callee % kMaxCubicles);
    }

    std::vector<uint64_t> edgeMatrix_;
    uint64_t traps_ = 0;
    uint64_t retags_ = 0;
    uint64_t wrpkrus_ = 0;
    uint64_t windowOps_ = 0;
    uint64_t violations_ = 0;
    uint64_t imagesVerified_ = 0;
    uint64_t verifierBytesScanned_ = 0;
    uint64_t verifierBytesDecoded_ = 0;
    uint64_t verifierInsns_ = 0;
    uint64_t verifierRejected_ = 0;
    uint64_t verifierReported_ = 0;
    uint64_t lintRuns_ = 0;
    uint64_t lintFindings_ = 0;
};

} // namespace cubicleos::core

#endif // CUBICLEOS_CORE_STATS_H_
