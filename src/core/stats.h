/**
 * @file
 * Runtime statistics: cross-cubicle call edges, traps, retags.
 *
 * The per-edge call counters regenerate the annotations on the component
 * graphs of Fig. 5 (NGINX) and Fig. 8 (SQLite).
 *
 * Thread-safety: every counter is a relaxed atomic. CrossCallGuard
 * bumps countCall/countWrpkru on every cross-cubicle call from any
 * thread, and the trap-and-map handler runs concurrently across
 * threads, so the counters must not serialise the hot paths: relaxed
 * increments add no ordering and no locks, mirroring per-CPU event
 * counters. Readers (benches, tests) see values at least as fresh as
 * the last synchronisation point (thread join, lock release).
 */

#ifndef CUBICLEOS_CORE_STATS_H_
#define CUBICLEOS_CORE_STATS_H_

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/ids.h"
#include "hw/relaxed_atomic.h"

namespace cubicleos::core {

/** One (caller → callee) edge with its call count. */
struct CallEdge {
    Cid caller;
    Cid callee;
    uint64_t count;
};

/** Aggregated runtime counters for one System. */
class Stats {
  public:
    Stats() : edgeMatrix_(kMaxCubicles * kMaxCubicles) {}

    Stats(const Stats &) = delete;
    Stats &operator=(const Stats &) = delete;

    /**
     * Records one cross-cubicle call on the (caller, callee) edge.
     * A flat-matrix increment: cheap enough to keep on in every mode.
     * @throws std::out_of_range when either cubicle ID is outside the
     *         ACL/matrix width (kMaxCubicles) — out-of-range IDs used
     *         to alias silently onto `cid % kMaxCubicles`, corrupting
     *         another cubicle's edge counters.
     */
    void countCall(Cid caller, Cid callee)
    {
        edgeMatrix_[matrixIndex(caller, callee)].fetchAdd(1);
    }

    /** Memory-protection traps taken (trap-and-map entries). */
    void countTrap() { traps_.fetchAdd(1); }
    /**
     * One retag operation (one pkey_mprotect call) covering @p pages
     * pages. The ratio retagPages()/retags() is the amortisation the
     * range-granular fault handler buys: per-page retagging keeps it
     * at 1, a 2 MiB chunk pushes it to 512.
     */
    void countRetag(uint64_t pages = 1)
    {
        retags_.fetchAdd(1);
        retagPages_.fetchAdd(pages);
    }
    /**
     * One eager (prestaged) retag: pages tagged for a peer at window
     * open rather than lazily at first-touch fault time.
     */
    void countPrestage(uint64_t pages)
    {
        prestages_.fetchAdd(1);
        prestagePages_.fetchAdd(pages);
    }
    /**
     * One submission-ring flush executing @p calls queued cross-calls
     * under a single trampoline/PKRU switch.
     */
    void countRingFlush(uint64_t calls)
    {
        ringFlushes_.fetchAdd(1);
        ringCalls_.fetchAdd(calls);
    }
    /** PKRU register writes. */
    void countWrpkru(uint64_t n = 1) { wrpkrus_.fetchAdd(n); }
    /** Window API operations (init/add/open/close/...). */
    void countWindowOp() { windowOps_.fetchAdd(1); }
    /** Faults the monitor could not resolve (isolation violations). */
    void countViolation() { violations_.fetchAdd(1); }
    /**
     * Faults absorbed by a thread's grant cache (the simulated TLB):
     * the access was allowed from the cached window grant without
     * entering the monitor or retagging the page.
     */
    void countGrantCacheHit() { grantCacheHits_.fetchAdd(1); }

    /**
     * Cross-call into a dynamically-tagged cubicle whose physical tag
     * was already bound (no eviction machinery on the path).
     */
    void countTagHit() { tagHits_.fetchAdd(1); }
    /** Cross-call that found its callee parked (fault-in required). */
    void countTagMiss() { tagMisses_.fetchAdd(1); }
    /**
     * One eviction: a victim cubicle's resident pages were swept to
     * the parked tag in range-granular retags covering @p pages pages.
     */
    void countEviction(uint64_t pages)
    {
        evictions_.fetchAdd(1);
        evictionPages_.fetchAdd(pages);
    }
    /**
     * One fault-in: a parked cubicle was re-bound to a physical tag
     * and @p pages of its pages restored from the parked tag.
     */
    void countFaultIn(uint64_t pages)
    {
        faultIns_.fetchAdd(1);
        faultInPages_.fetchAdd(pages);
    }

    /**
     * One cubicle destroyed (lifecycle subsystem): @p pages of its
     * code/global/stack/heap pages were returned to the allocator.
     */
    void countDestroy(uint64_t pages)
    {
        destroys_.fetchAdd(1);
        reclaimedPages_.fetchAdd(pages);
    }
    /** One cubicle relaunched through Monitor::restartCubicle. */
    void countRestart() { restarts_.fetchAdd(1); }
    /**
     * @p calls in-flight or queued cross-calls unwound with a
     * kPeerFaultVerdict because their callee died.
     */
    void countUnwound(uint64_t calls = 1) { unwoundCalls_.fetchAdd(calls); }

    /** Records one load-time verifier run over a component image. */
    void countVerifiedImage(uint64_t imageBytes, uint64_t decodedBytes,
                            uint64_t insns, uint64_t rejecting,
                            uint64_t reportOnly)
    {
        imagesVerified_.fetchAdd(1);
        verifierBytesScanned_.fetchAdd(imageBytes);
        verifierBytesDecoded_.fetchAdd(decodedBytes);
        verifierInsns_.fetchAdd(insns);
        verifierRejected_.fetchAdd(rejecting);
        verifierReported_.fetchAdd(reportOnly);
    }
    /** Records one isolation-lint run yielding @p findings findings. */
    void countLintRun(uint64_t findings)
    {
        lintRuns_.fetchAdd(1);
        lintFindings_.fetchAdd(findings);
    }
    /** Records one least-privilege audit run yielding @p findings. */
    void countAuditRun(uint64_t findings)
    {
        auditRuns_.fetchAdd(1);
        auditFindings_.fetchAdd(findings);
    }
    /** Load served from the verifier's image-hash cache. */
    void countVerifyCacheHit() { verifyCacheHits_.fetchAdd(1); }
    /** Load that ran the sweep + CFG walk for real. */
    void countVerifyCacheMiss() { verifyCacheMisses_.fetchAdd(1); }
    /**
     * One payload memcpy on the data path (FS block ↔ app buffer,
     * header staging, send-queue staging). The sendfile experiment
     * compares this counter between the copying and zero-copy paths.
     */
    void countDataCopy(uint64_t bytes)
    {
        dataCopies_.fetchAdd(1);
        dataCopyBytes_.fetchAdd(bytes);
    }
    /** TCP segments whose payload came straight from a borrowed span. */
    void countZeroCopySend(uint64_t bytes, uint64_t segs = 1)
    {
        zeroCopySends_.fetchAdd(segs);
        zeroCopyBytes_.fetchAdd(bytes);
    }

    uint64_t traps() const { return traps_; }
    uint64_t retags() const { return retags_; }
    uint64_t retagPages() const { return retagPages_; }
    uint64_t prestages() const { return prestages_; }
    uint64_t prestagePages() const { return prestagePages_; }
    uint64_t ringFlushes() const { return ringFlushes_; }
    uint64_t ringCalls() const { return ringCalls_; }
    uint64_t wrpkrus() const { return wrpkrus_; }
    uint64_t windowOps() const { return windowOps_; }
    uint64_t violations() const { return violations_; }
    uint64_t grantCacheHits() const { return grantCacheHits_; }
    uint64_t tagHits() const { return tagHits_; }
    uint64_t tagMisses() const { return tagMisses_; }
    uint64_t evictions() const { return evictions_; }
    uint64_t evictionPages() const { return evictionPages_; }
    uint64_t faultIns() const { return faultIns_; }
    uint64_t faultInPages() const { return faultInPages_; }
    uint64_t destroys() const { return destroys_; }
    uint64_t restarts() const { return restarts_; }
    uint64_t reclaimedPages() const { return reclaimedPages_; }
    uint64_t unwoundCalls() const { return unwoundCalls_; }

    /**
     * Physical-tag hit rate over all cross-calls into virtual-key
     * cubicles, in percent; 100 when no such call happened yet.
     */
    double tagHitRatePercent() const
    {
        const uint64_t hits = tagHits_;
        const uint64_t misses = tagMisses_;
        if (hits + misses == 0)
            return 100.0;
        return 100.0 * static_cast<double>(hits) /
               static_cast<double>(hits + misses);
    }

    uint64_t imagesVerified() const { return imagesVerified_; }
    uint64_t verifierBytesScanned() const { return verifierBytesScanned_; }
    uint64_t verifierBytesDecoded() const { return verifierBytesDecoded_; }
    uint64_t verifierInsns() const { return verifierInsns_; }
    uint64_t verifierRejected() const { return verifierRejected_; }
    uint64_t verifierReported() const { return verifierReported_; }
    uint64_t lintRuns() const { return lintRuns_; }
    uint64_t lintFindings() const { return lintFindings_; }
    uint64_t auditRuns() const { return auditRuns_; }
    uint64_t auditFindings() const { return auditFindings_; }
    uint64_t verifyCacheHits() const { return verifyCacheHits_; }
    uint64_t verifyCacheMisses() const { return verifyCacheMisses_; }
    uint64_t dataCopies() const { return dataCopies_; }
    uint64_t dataCopyBytes() const { return dataCopyBytes_; }
    uint64_t zeroCopySends() const { return zeroCopySends_; }
    uint64_t zeroCopyBytes() const { return zeroCopyBytes_; }

    /** Returns the call count on one edge. */
    uint64_t callsOnEdge(Cid caller, Cid callee) const
    {
        return edgeMatrix_[matrixIndex(caller, callee)];
    }

    /** Total cross-cubicle calls over all edges. */
    uint64_t totalCalls() const
    {
        uint64_t n = 0;
        for (const auto &v : edgeMatrix_)
            n += v;
        return n;
    }

    /** All edges with non-zero counts. */
    std::vector<CallEdge> edges() const
    {
        std::vector<CallEdge> out;
        for (int c = 0; c < kMaxCubicles; ++c) {
            for (int e = 0; e < kMaxCubicles; ++e) {
                uint64_t v = edgeMatrix_[c * kMaxCubicles + e];
                if (v > 0) {
                    out.push_back(CallEdge{static_cast<Cid>(c),
                                           static_cast<Cid>(e), v});
                }
            }
        }
        return out;
    }

    /** Resets every counter (benchmark warm-up boundary). */
    void reset()
    {
        for (auto &v : edgeMatrix_)
            v = 0;
        traps_ = 0;
        retags_ = 0;
        retagPages_ = 0;
        prestages_ = 0;
        prestagePages_ = 0;
        ringFlushes_ = 0;
        ringCalls_ = 0;
        wrpkrus_ = 0;
        windowOps_ = 0;
        violations_ = 0;
        grantCacheHits_ = 0;
        tagHits_ = 0;
        tagMisses_ = 0;
        evictions_ = 0;
        evictionPages_ = 0;
        faultIns_ = 0;
        faultInPages_ = 0;
        destroys_ = 0;
        restarts_ = 0;
        reclaimedPages_ = 0;
        unwoundCalls_ = 0;
        imagesVerified_ = 0;
        verifierBytesScanned_ = 0;
        verifierBytesDecoded_ = 0;
        verifierInsns_ = 0;
        verifierRejected_ = 0;
        verifierReported_ = 0;
        lintRuns_ = 0;
        lintFindings_ = 0;
        auditRuns_ = 0;
        auditFindings_ = 0;
        verifyCacheHits_ = 0;
        verifyCacheMisses_ = 0;
        dataCopies_ = 0;
        dataCopyBytes_ = 0;
        zeroCopySends_ = 0;
        zeroCopyBytes_ = 0;
    }

  private:
    static std::size_t matrixIndex(Cid caller, Cid callee)
    {
        if (caller >= static_cast<Cid>(kMaxCubicles) ||
            callee >= static_cast<Cid>(kMaxCubicles)) {
            throw std::out_of_range(
                "Stats: cubicle id outside the " +
                std::to_string(kMaxCubicles) +
                "-wide call-edge matrix (caller " +
                std::to_string(caller) + ", callee " +
                std::to_string(callee) + ")");
        }
        return static_cast<std::size_t>(caller) * kMaxCubicles + callee;
    }

    using Counter = hw::RelaxedAtomic<uint64_t>;

    std::vector<Counter> edgeMatrix_;
    Counter traps_;
    Counter retags_;
    Counter retagPages_;
    Counter prestages_;
    Counter prestagePages_;
    Counter ringFlushes_;
    Counter ringCalls_;
    Counter wrpkrus_;
    Counter windowOps_;
    Counter violations_;
    Counter grantCacheHits_;
    Counter tagHits_;
    Counter tagMisses_;
    Counter evictions_;
    Counter evictionPages_;
    Counter faultIns_;
    Counter faultInPages_;
    Counter destroys_;
    Counter restarts_;
    Counter reclaimedPages_;
    Counter unwoundCalls_;
    Counter imagesVerified_;
    Counter verifierBytesScanned_;
    Counter verifierBytesDecoded_;
    Counter verifierInsns_;
    Counter verifierRejected_;
    Counter verifierReported_;
    Counter lintRuns_;
    Counter lintFindings_;
    Counter auditRuns_;
    Counter auditFindings_;
    Counter verifyCacheHits_;
    Counter verifyCacheMisses_;
    Counter dataCopies_;
    Counter dataCopyBytes_;
    Counter zeroCopySends_;
    Counter zeroCopyBytes_;
};

} // namespace cubicleos::core

#endif // CUBICLEOS_CORE_STATS_H_
