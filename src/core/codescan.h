/**
 * @file
 * Conservative byte-pattern scan for isolation-subverting instructions.
 *
 * The loader refuses to make code pages executable if they contain
 * encodings that could undermine the isolation mechanisms (paper §5.4):
 * wrpkru (0F 01 EF), xsetbv (0F 01 D1), xrstor with its PKRU-restoring
 * state component (0F AE /5, matched as 0F AE with ModRM reg field 5),
 * syscall (0F 05), sysenter (0F 34) and int 0x80 (CD 80). The scan is
 * performed over the full image so sequences spanning page boundaries
 * are found too.
 *
 * This byte-grep is deliberately conservative: it reports every
 * occurrence of the patterns, including bytes buried inside a longer
 * instruction's immediate and benign aliases of the masked xrstor
 * pattern (lfence shares its reg field). The instruction-aware
 * verifier in core/verifier classifies each match before the loader
 * decides; the grep's verdict is therefore always at least as strict
 * as the verifier's.
 */

#ifndef CUBICLEOS_CORE_CODESCAN_H_
#define CUBICLEOS_CORE_CODESCAN_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/verifier/report.h"

namespace cubicleos::core {

/** A forbidden instruction pattern found by the scanner. */
struct ForbiddenInsn {
    std::size_t offset;   ///< byte offset in the image
    std::string mnemonic; ///< e.g. "wrpkru"
    std::size_t length;   ///< matched pattern length in bytes
};

/**
 * One forbidden encoding: up to three bytes, each compared under a
 * mask (mask 0xFF = exact byte, 0x38 = ModRM reg field, 0 = unused).
 */
struct ForbiddenPattern {
    const char *mnemonic;
    uint8_t bytes[3];
    uint8_t mask[3];
    std::size_t len;
};

/** The forbidden-pattern table (shared with the verifier). */
std::span<const ForbiddenPattern> forbiddenPatterns();

/**
 * Scans @p image for forbidden instruction encodings.
 *
 * @return the first match, or no value if the image is clean.
 */
std::optional<ForbiddenInsn> scanCodeImage(std::span<const uint8_t> image);

/**
 * Scans and collects every match (diagnostics / verifier input).
 * Matches are non-overlapping: after a match the scan resumes past the
 * matched bytes, so a sequence is reported once, not at every
 * sub-position.
 */
std::vector<ForbiddenInsn> scanCodeImageAll(std::span<const uint8_t> image);

/**
 * Generates a benign pseudo code image of @p size bytes, deterministic
 * in @p seed, guaranteed to contain no forbidden sequence. Components
 * in this reproduction are native C++, so their "binary image" — the
 * thing the loader scans and maps execute-only — is synthesised. The
 * image is a well-formed x86-64 instruction stream (fully decodable by
 * the verifier's linear sweep): 0F appears only before a benign
 * two-byte opcode and CD is never emitted, so no forbidden pattern can
 * arise even across instruction boundaries. The stream also carries
 * the indirect-dispatch idioms pass 3 resolves — bounded-switch
 * jump tables and rip-relative lea/call pairs, plus the occasional
 * naked indirect call that stays CFI-trusted — so loaded images
 * exercise the interprocedural auditor end to end.
 *
 * When @p entries is non-null it receives the function entry offsets
 * the generator knows by construction: offset 0 plus the offset after
 * every emitted ret. Feeding them to the reachability walk as entry
 * points makes the whole stream reachable, the way a real component's
 * export table covers its text section.
 */
std::vector<uint8_t>
makeBenignImage(std::size_t size, uint64_t seed,
                std::vector<std::size_t> *entries = nullptr);

/**
 * Like makeBenignImage, but finished the way a CFI-hardened build
 * ships: the stream is sealed with a terminal ret and followed by a
 * builder-declared entry table (one 4-byte slot naming offset 0, the
 * canonical address-taken entry). Declaring @p table in
 * ComponentSpec::indirectTables lets verifier pass 3 resolve the
 * stream's residual naked indirect calls entry-table-style instead of
 * reporting them opaque — the idiom for components loaded at scale,
 * where deployment audits bound the per-cubicle unresolved rate.
 */
std::vector<uint8_t>
makeCfiImage(std::size_t size, uint64_t seed,
             verifier::EntryTable *table,
             std::vector<std::size_t> *entries = nullptr);

} // namespace cubicleos::core

#endif // CUBICLEOS_CORE_CODESCAN_H_
