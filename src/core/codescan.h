/**
 * @file
 * Load-time binary scanner for isolation-subverting instructions.
 *
 * The loader refuses to make code pages executable if they contain byte
 * sequences encoding instructions that could undermine the isolation
 * mechanisms (paper §5.4): wrpkru (0F 01 EF), xrstor with PKRU,
 * syscall (0F 05), sysenter (0F 34) and int 0x80 (CD 80). The scan is
 * performed over the full image so sequences spanning page boundaries
 * are found too.
 */

#ifndef CUBICLEOS_CORE_CODESCAN_H_
#define CUBICLEOS_CORE_CODESCAN_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace cubicleos::core {

/** A forbidden instruction found by the scanner. */
struct ForbiddenInsn {
    std::size_t offset;   ///< byte offset in the image
    std::string mnemonic; ///< e.g. "wrpkru"
};

/**
 * Scans @p image for forbidden instruction encodings.
 *
 * @return the first match, or no value if the image is clean.
 */
std::optional<ForbiddenInsn> scanCodeImage(std::span<const uint8_t> image);

/**
 * Scans and collects every match (diagnostics / tests).
 */
std::vector<ForbiddenInsn> scanCodeImageAll(std::span<const uint8_t> image);

/**
 * Generates a benign pseudo code image of @p size bytes, deterministic
 * in @p seed, guaranteed to contain no forbidden sequence. Components in
 * this reproduction are native C++, so their "binary image" — the thing
 * the loader scans and maps execute-only — is synthesised.
 */
std::vector<uint8_t> makeBenignImage(std::size_t size, uint64_t seed);

} // namespace cubicleos::core

#endif // CUBICLEOS_CORE_CODESCAN_H_
