/**
 * @file
 * Cubicle lifecycle: crash isolation, resource reclaim, hot-restart
 * (DESIGN.md §15).
 *
 * The paper's pitch is that a faulty component must not take down the
 * library OS — this header holds the vocabulary for what happens
 * *after* the fault. A cubicle moves through three states:
 *
 *   kLive ──destroyCubicle──▶ kDraining ──reclaim──▶ kDead
 *     ▲                                                │
 *     └────────────────restartCubicle─────────────────┘
 *
 * kDraining quiesces in-flight cross-calls: CrossCallGuard refuses new
 * entries with core::PeerFault, and threads already inside are unwound
 * by the next checked access (System::touchSlow / heapAlloc) throwing
 * the same. Once Cubicle::inFlight reaches zero the monitor reclaims
 * windows, grants, pages and the logical key, then marks the cubicle
 * kDead. restartCubicle reloads the image through the verify cache and
 * replays the grants recorded at destroy time (RevokedGrant).
 *
 * Tracing: set CUBICLEOS_TRACE_LIFECYCLE to log destroy/restart/unwind
 * events to stderr (same pattern as CUBICLEOS_TRACE_FAULTS and
 * CUBICLEOS_TRACE_EVICTIONS).
 */

#ifndef CUBICLEOS_CORE_LIFECYCLE_H_
#define CUBICLEOS_CORE_LIFECYCLE_H_

#include <cstdint>
#include <vector>

#include "core/ids.h"

namespace cubicleos::core {

/** Lifecycle state of one cubicle (stored in Cubicle::life). */
enum class LifeState : uint8_t {
    kLive = 0,   ///< serving; cross-calls enter normally
    kDraining,   ///< destroy in progress; entries refused, insiders unwound
    kDead,       ///< reclaimed; only restartCubicle may touch it
};

/** Human-readable state name for traces and errors. */
const char *lifeStateName(LifeState state);

/**
 * One grant a dying cubicle held on somebody else's window, recorded
 * by destroyCubicle so restartCubicle can replay it. Destroy clears
 * the victim's ACL bit (plus its usage/prestage mask bits — the audit
 * must not credit a dead peer) from every live window of every other
 * owner; restart re-opens exactly the recorded set, restores the
 * recorded masks, and re-runs the prestage sweep for windows that had
 * a standing hint. Windows *owned* by the victim are not recorded:
 * they are destroyed outright and the component's init() re-creates
 * them, exactly as at first boot.
 */
struct RevokedGrant {
    Wid wid = kInvalidWindow;
    Cid owner = kNoCubicle; ///< window owner (sanity check at replay)
    bool usedRead = false;  ///< audit usage mask bits held at destroy
    bool usedWrite = false;
    bool prestagedRead = false;  ///< standing prestage hints to replay
    bool prestagedWrite = false;
    bool hot = false; ///< window had a dedicated hot key at destroy
};

/**
 * Per-cubicle lifecycle bookkeeping, owned by the monitor and guarded
 * by its lifecycleMutex_ (LockRank::kLifecycle — above every other
 * monitor lock, so destroy/restart can take the rest of the hierarchy
 * underneath it).
 */
struct LifecycleRecord {
    /**
     * The static physical tag the cubicle held before death, or -1
     * for dynamically-tagged cubicles. Physical keys can never be
     * returned to hw::Mpk (the allocator is monotonic, mirroring how
     * scarce real pkeys are), so a restart reuses the saved key
     * instead of allocating a fresh one.
     */
    int staticKey = -1;
    /** Completed destroy/restart cycles (trace + test introspection). */
    uint64_t generation = 0;
    /** Grants on other owners' windows to replay at restart. */
    std::vector<RevokedGrant> revoked;
};

namespace lifecycle {

/** True when CUBICLEOS_TRACE_LIFECYCLE is set (checked once). */
bool traceEnabled();

/** printf-style trace line, prefixed "[lifecycle] " (stderr). */
void trace(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace lifecycle

} // namespace cubicleos::core

#endif // CUBICLEOS_CORE_LIFECYCLE_H_
