#include "core/lifecycle.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace cubicleos::core {

const char *
lifeStateName(LifeState state)
{
    switch (state) {
    case LifeState::kLive:
        return "live";
    case LifeState::kDraining:
        return "draining";
    case LifeState::kDead:
        return "dead";
    }
    return "?";
}

namespace lifecycle {

bool
traceEnabled()
{
    static const bool trace =
        std::getenv("CUBICLEOS_TRACE_LIFECYCLE") != nullptr;
    return trace;
}

void
trace(const char *fmt, ...)
{
    if (!traceEnabled())
        return;
    std::fprintf(stderr, "[lifecycle] ");
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fputc('\n', stderr);
}

} // namespace lifecycle

} // namespace cubicleos::core
