/**
 * @file
 * The component model: what third-party code looks like to CubicleOS.
 *
 * A Component is the unit of isolation — one Unikraft-style library (VFS,
 * RAMFS, the network stack, the application...). Components declare a
 * spec (name, cubicle kind, image/stack/heap sizes), register exported
 * functions with the trusted builder, and get an init() hook executed
 * inside their freshly loaded cubicle at boot.
 *
 * This mirrors the paper's §5.2 build flow: Unikraft's exportsyms.uk
 * becomes registerExports(); the builder generates one cross-cubicle
 * trampoline per exported symbol; callback tables are resolved as
 * dynamic symbols so the loader can interpose trampolines.
 */

#ifndef CUBICLEOS_CORE_COMPONENT_H_
#define CUBICLEOS_CORE_COMPONENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <typeinfo>
#include <vector>

#include "core/ids.h"
#include "core/verifier/report.h"

namespace cubicleos::core {

class System;

/** Static description of a component, consumed by the loader. */
struct ComponentSpec {
    std::string name;
    CubicleKind kind = CubicleKind::kIsolated;

    /**
     * Binary code image scanned by the loader. Components in this
     * reproduction are native C++, so when empty the loader synthesises
     * a benign image of @c codePages pages; tests supply hostile images.
     */
    std::vector<uint8_t> image;

    std::size_t codePages = 2;
    std::size_t globalPages = 2;
    std::size_t stackPages = 0;     ///< 0: use system default
    std::size_t heapChunkPages = 0; ///< 0: use system default

    /**
     * Offsets of exported entry points within @c image, seeding the
     * verifier's reachability walk (pass 2). Empty means "the image
     * exports its base": the walk starts at offset 0. An offset past
     * the image end fails the load.
     */
    std::vector<std::size_t> entryPoints;

    /**
     * Builder-declared indirect-call target tables (the address-taken
     * set a CFI-instrumented build publishes): each table is @c count
     * 4-byte little-endian image offsets at @c offset. The verifier's
     * pass 3 resolves every indirect call site against their union and
     * treats the table bytes as data. Empty means no declared targets.
     */
    std::vector<verifier::EntryTable> indirectTables;

    /**
     * If non-empty, load this component into the cubicle of the named
     * (earlier-registered) component instead of a fresh one. This is
     * how coarser partitionings are expressed — e.g. the paper's
     * Fig. 9a merges VFS, RAMFS and the platform code into one "core"
     * module. Calls between colocated components are plain calls; no
     * trampoline, no permission switch.
     */
    std::string colocateWith;
};

/**
 * One exported symbol: a type-erased function owned by a component.
 *
 * @c fn points to a std::function with the exact signature recorded in
 * @c sigName; resolution checks the signature before handing out a
 * callable, the software analogue of the builder parsing the function
 * definition to generate a matching trampoline thunk.
 */
struct ExportSlot {
    std::string name;
    Cid owner = kNoCubicle;
    CubicleKind ownerKind = CubicleKind::kIsolated;
    std::shared_ptr<void> fn;
    const char *sigName = nullptr;
};

/** Collects a component's exports during boot (trusted builder side). */
class Exporter {
  public:
    Exporter(Cid owner, CubicleKind kind,
             std::vector<ExportSlot> *out)
        : owner_(owner), kind_(kind), out_(out)
    {}

    /**
     * Exports @p f under @p name with signature @p Sig.
     *
     * Example: @code exp.fn<int(int, int)>("add", ...); @endcode
     */
    template <typename Sig>
    void fn(const std::string &name, std::function<Sig> f)
    {
        ExportSlot slot;
        slot.name = name;
        slot.owner = owner_;
        slot.ownerKind = kind_;
        slot.fn = std::make_shared<std::function<Sig>>(std::move(f));
        slot.sigName = typeid(Sig).name();
        out_->push_back(std::move(slot));
    }

  private:
    Cid owner_;
    CubicleKind kind_;
    std::vector<ExportSlot> *out_;
};

/**
 * Base class for all components (library OS pieces and applications).
 */
class Component {
  public:
    virtual ~Component() = default;

    /** Static description used by the loader. */
    virtual ComponentSpec spec() const = 0;

    /** Registers public entry points with the trusted builder. */
    virtual void registerExports(Exporter &exp) = 0;

    /**
     * One-time initialisation, executed inside this component's cubicle
     * after every component is loaded (so imports resolve).
     */
    virtual void init() {}

    /**
     * Releases component-held state before a hot-restart re-runs
     * init() (System::restartComponent). Runs inside the *fresh*
     * cubicle, after the monitor swapped the image and heap — a
     * crashed cubicle cannot run code, so pre-crash handles are
     * released best-effort here: stale heap pointers are ignored by
     * the new allocator, and cross-calls into still-live peers work
     * normally. Never called at system shutdown.
     */
    virtual void teardown() {}

    /** The cubicle this component was loaded into. */
    Cid self() const { return self_; }

    /** The owning system (valid from load time). */
    System *sys() const { return sys_; }

    /**
     * Deployment-time colocation override: load this component into
     * the named component's cubicle (takes precedence over the spec's
     * colocateWith). Lets one component set serve several
     * partitionings, as in Fig. 9's CORE vs CORE+RAMFS splits.
     */
    void colocateWith(std::string host)
    {
        colocationOverride_ = std::move(host);
    }

    const std::string &colocationOverride() const
    {
        return colocationOverride_;
    }

  private:
    friend class System;
    System *sys_ = nullptr;
    Cid self_ = kNoCubicle;
    std::string colocationOverride_;
};

} // namespace cubicleos::core

#endif // CUBICLEOS_CORE_COMPONENT_H_
