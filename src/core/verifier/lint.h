/**
 * @file
 * Isolation linter: syntactic checks over system wiring. (The
 * dataflow least-privilege rules that complement these live in
 * audit.h; both emit LintFinding records.)
 *
 * The linter inspects a plain-data snapshot of a booted system — the
 * cubicle table, the live window descriptors with their ACL bitmasks,
 * and the export registry — and reports wiring that weakens isolation
 * without being an outright runtime violation:
 *
 *   - window ACL bits granting cubicle IDs that do not exist;
 *   - ACL grants to shared cubicles (they execute with the caller's
 *     privileges, so the grant is dead weight that widens the ACL);
 *   - self-grants (the owner has implicit access; a self bit hides
 *     missing-peer bugs);
 *   - isolated components mapped with the shared MPK key (their state
 *     would be readable from every cubicle);
 *   - pointer-passing exports of isolated components that no declared
 *     window anywhere grants access to (callees cannot legally reach
 *     the pointed-to memory).
 *
 * Findings are structured and severity-graded; the linter never
 * throws. "Clean" for CI purposes means no finding at warning
 * severity or above (see lintClean).
 */

#ifndef CUBICLEOS_CORE_VERIFIER_LINT_H_
#define CUBICLEOS_CORE_VERIFIER_LINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/ids.h"
#include "core/window.h"

namespace cubicleos::core::verifier {

/** Lint rule identifiers. */
enum class LintRule : uint8_t {
    kIsolatedUsesSharedKey, ///< isolated cubicle tagged with shared key
    kAclGhostPeer,          ///< ACL bit for a cubicle that doesn't exist
    kAclSharedPeer,         ///< ACL grants a shared cubicle
    kAclSelfGrant,          ///< ACL grants the window's own owner
    kPointerExportNoWindow, ///< pointer export, no window grants callee
    kOpenWindowNoRanges,    ///< non-empty ACL over an empty window
    kAclStaleGrant,         ///< ACL outlived every range ever added
    // Dataflow least-privilege rules (audit.h): diff the *used*
    // communication matrix against the declared ACLs.
    kAclOverBroad,          ///< ACL bit for a peer that never used it
    kWindowNeverUsed,       ///< live window no peer ever faulted into
    kWriteGrantReadOnly,    ///< write-capable grant, peer only read
};

enum class LintSeverity : uint8_t { kInfo, kWarning, kError };

const char *lintRuleName(LintRule rule);
const char *lintSeverityName(LintSeverity severity);

/** One linter finding. */
struct LintFinding {
    LintRule rule;
    LintSeverity severity;
    Cid cubicle = kNoCubicle;   ///< cubicle concerned (if any)
    Wid window = kInvalidWindow; ///< window concerned (if any)
    std::string message;
};

// ----------------------------------------------------------------------
// Wiring snapshot: the linter's plain-data view of a booted system.
// Tests construct snapshots directly; System::wiringSnapshot() builds
// one from the live monitor and export registry.
// ----------------------------------------------------------------------

struct CubicleWiring {
    Cid id = kNoCubicle;
    std::string name;
    CubicleKind kind = CubicleKind::kIsolated;
    int pkey = -1;
};

struct WindowWiring {
    Wid wid = kInvalidWindow;
    Cid owner = kNoCubicle;
    AclMask acl = 0;
    uint32_t rangeCount = 0;
    int hotKey = -1;
    /** Ranges added over the window's whole lifetime (survives removes). */
    uint32_t rangesEverAdded = 0;
    /** Peers that actually faulted a read / write through the window
     *  (dataflow history for the least-privilege audit; zero for hot
     *  windows, which are retagged eagerly and never fault). */
    AclMask usedRead = 0;
    AclMask usedWrite = 0;
};

struct ExportWiring {
    std::string name;
    Cid owner = kNoCubicle;
    CubicleKind ownerKind = CubicleKind::kIsolated;
    bool passesPointers = false;
};

struct WiringSnapshot {
    int sharedKey = -1;
    std::vector<CubicleWiring> cubicles;
    std::vector<WindowWiring> windows; ///< live windows only
    std::vector<ExportWiring> exports;
};

/** Runs every lint rule over @p snapshot. */
std::vector<LintFinding> lintWiring(const WiringSnapshot &snapshot);

/** True when no finding reaches @p threshold severity. */
bool lintClean(const std::vector<LintFinding> &findings,
               LintSeverity threshold = LintSeverity::kWarning);

/**
 * Best-effort detection of pointer parameters in an Itanium-mangled
 * function-type name (what typeid(Sig).name() yields for ExportSlot
 * signatures): scans for a 'P' type code while skipping
 * length-prefixed identifiers and substitution references.
 */
bool signaturePassesPointers(const char *mangledSig);

} // namespace cubicleos::core::verifier

#endif // CUBICLEOS_CORE_VERIFIER_LINT_H_
