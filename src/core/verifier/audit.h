/**
 * @file
 * Deployment-wide isolation auditor: least-privilege dataflow rules
 * over wiring history, plus the machine-readable combined report.
 *
 * The syntactic linter (lint.h) checks what the wiring *declares*;
 * the auditor checks what the deployment actually *did*. The monitor
 * records, per live window, which peers faulted a read or a write
 * through it (WindowWiring::usedRead/usedWrite). Diffing that used
 * communication matrix against the declared ACL masks yields the
 * least-privilege findings:
 *
 *   - acl-over-broad (warning): a peer holds an ACL bit it never
 *     exercised — the grant can be dropped;
 *   - window-never-used (warning): a live window with ranges and a
 *     non-empty ACL that no peer ever faulted through;
 *   - write-grant-read-only (info): every access a peer made through
 *     its grant was a read, so a read-only window would do (the
 *     simulator's windows are read+write, per the paper; the finding
 *     records where a narrower primitive would help).
 *
 * Usage is fault-observed, so two deliberate blind spots apply (both
 * documented in DESIGN.md §12): hot windows are retagged eagerly and
 * never fault, so they are skipped entirely; and the audit is only as
 * good as the workload that ran before it — audit after traffic, not
 * after boot, unless init itself is meant to exercise every grant
 * (that is exactly what AuditLevel::kStrict asserts).
 *
 * auditReportJson renders the combined audit — per-image pass-3
 * records plus wiring and findings — as deterministic JSON (stable
 * key order, integers only, no addresses or timestamps) so tests can
 * diff it against a committed baseline.
 */

#ifndef CUBICLEOS_CORE_VERIFIER_AUDIT_H_
#define CUBICLEOS_CORE_VERIFIER_AUDIT_H_

#include <span>
#include <string>
#include <vector>

#include "core/verifier/lint.h"
#include "core/verifier/report.h"

namespace cubicleos::core::verifier {

/**
 * Runs the dataflow least-privilege rules over @p snapshot.
 * Complements lintWiring (which stays purely syntactic); callers
 * wanting the full rule set concatenate both (System::auditIsolation).
 */
std::vector<LintFinding> auditWiring(const WiringSnapshot &snapshot);

/** One component image plus its load report, for the JSON render. */
struct ImageAuditView {
    std::string component;
    const VerifierReport *report = nullptr;
};

/**
 * Renders the combined audit as deterministic JSON. Unresolved
 * indirect sites are listed individually (no silent opacity);
 * resolved sites are aggregated per resolution kind.
 */
std::string auditReportJson(const WiringSnapshot &snapshot,
                            std::span<const ImageAuditView> images,
                            std::span<const LintFinding> findings);

} // namespace cubicleos::core::verifier

#endif // CUBICLEOS_CORE_VERIFIER_AUDIT_H_
