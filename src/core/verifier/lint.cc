#include "core/verifier/lint.h"

#include <cctype>

namespace cubicleos::core::verifier {

const char *
lintRuleName(LintRule rule)
{
    switch (rule) {
      case LintRule::kIsolatedUsesSharedKey: return "isolated-uses-shared-key";
      case LintRule::kAclGhostPeer: return "acl-ghost-peer";
      case LintRule::kAclSharedPeer: return "acl-shared-peer";
      case LintRule::kAclSelfGrant: return "acl-self-grant";
      case LintRule::kPointerExportNoWindow: return "pointer-export-no-window";
      case LintRule::kOpenWindowNoRanges: return "open-window-no-ranges";
      case LintRule::kAclStaleGrant: return "acl-stale-grant";
      case LintRule::kAclOverBroad: return "acl-over-broad";
      case LintRule::kWindowNeverUsed: return "window-never-used";
      case LintRule::kWriteGrantReadOnly: return "write-grant-read-only";
    }
    return "unknown";
}

const char *
lintSeverityName(LintSeverity severity)
{
    switch (severity) {
      case LintSeverity::kInfo: return "info";
      case LintSeverity::kWarning: return "warning";
      case LintSeverity::kError: return "error";
    }
    return "unknown";
}

bool
signaturePassesPointers(const char *mangledSig)
{
    if (mangledSig == nullptr)
        return false;
    for (const char *p = mangledSig; *p != '\0';) {
        const unsigned char c = static_cast<unsigned char>(*p);
        if (std::isdigit(c)) {
            // Length-prefixed identifier: skip the digits, then the
            // identifier body (its characters are not type codes).
            std::size_t len = 0;
            while (std::isdigit(static_cast<unsigned char>(*p)))
                len = len * 10 + static_cast<std::size_t>(*p++ - '0');
            while (len-- > 0 && *p != '\0')
                ++p;
            continue;
        }
        if (c == 'S') {
            // Substitution reference (S_, S0_, ...): skip through '_'.
            ++p;
            while (*p != '\0' && *p != '_')
                ++p;
            if (*p == '_')
                ++p;
            continue;
        }
        if (c == 'P')
            return true;
        ++p;
    }
    return false;
}

std::vector<LintFinding>
lintWiring(const WiringSnapshot &snapshot)
{
    std::vector<LintFinding> findings;
    const std::size_t count = snapshot.cubicles.size();

    auto cubicleName = [&](Cid cid) -> std::string {
        for (const CubicleWiring &c : snapshot.cubicles) {
            if (c.id == cid)
                return c.name;
        }
        return "cubicle " + std::to_string(cid);
    };
    auto isShared = [&](Cid cid) {
        for (const CubicleWiring &c : snapshot.cubicles) {
            if (c.id == cid)
                return c.kind == CubicleKind::kShared;
        }
        return false;
    };

    // Rule: isolated components must not be tagged with the shared key
    // — their whole state would be readable from every cubicle.
    for (const CubicleWiring &c : snapshot.cubicles) {
        if (c.kind == CubicleKind::kIsolated &&
            c.pkey == snapshot.sharedKey) {
            findings.push_back(LintFinding{
                LintRule::kIsolatedUsesSharedKey, LintSeverity::kError,
                c.id, kInvalidWindow,
                "isolated component '" + c.name +
                    "' is mapped with the shared MPK key; its memory "
                    "is readable from every cubicle"});
        }
    }

    for (const WindowWiring &w : snapshot.windows) {
        // Rule: ACL bits must name cubicles that exist. A bit beyond
        // the cubicle table is latent access for whatever loads next.
        for (int cid = 0; cid < kMaxCubicles; ++cid) {
            if ((w.acl & aclBit(static_cast<Cid>(cid))) == 0)
                continue;
            const auto peer = static_cast<Cid>(cid);
            if (peer >= count) {
                findings.push_back(LintFinding{
                    LintRule::kAclGhostPeer, LintSeverity::kError,
                    w.owner, w.wid,
                    "window " + std::to_string(w.wid) + " of '" +
                        cubicleName(w.owner) + "' grants cubicle " +
                        std::to_string(cid) +
                        ", which does not exist; the grant leaks to "
                        "the next loaded component"});
            } else if (peer == w.owner) {
                // Rule: the owner has implicit access (window 0); a
                // self bit is dead weight that hides peer bugs.
                findings.push_back(LintFinding{
                    LintRule::kAclSelfGrant, LintSeverity::kWarning,
                    w.owner, w.wid,
                    "window " + std::to_string(w.wid) + " of '" +
                        cubicleName(w.owner) +
                        "' grants its own owner; owners have implicit "
                        "access"});
            } else if (isShared(peer)) {
                // Rule: shared cubicles execute with the caller's
                // privileges and never trap on their own key; the
                // grant only widens the ACL.
                findings.push_back(LintFinding{
                    LintRule::kAclSharedPeer, LintSeverity::kWarning,
                    w.owner, w.wid,
                    "window " + std::to_string(w.wid) + " of '" +
                        cubicleName(w.owner) + "' grants shared "
                        "cubicle '" + cubicleName(peer) +
                        "', which executes with caller privileges and "
                        "cannot use the grant"});
            }
        }

        // Rule: an open ACL over an empty window. Two flavours: if
        // ranges *were* added and have all been removed (or destroyed
        // and the slot recycled), the ACL has outlived every grant it
        // covered — that is the stale-grant bug class from the paper's
        // window lifecycle (§4.2) and warrants a warning. An ACL that
        // never covered any range is merely odd wiring (info).
        if (w.acl != 0 && w.rangeCount == 0) {
            if (w.rangesEverAdded > 0) {
                findings.push_back(LintFinding{
                    LintRule::kAclStaleGrant, LintSeverity::kWarning,
                    w.owner, w.wid,
                    "window " + std::to_string(w.wid) + " of '" +
                        cubicleName(w.owner) +
                        "' keeps an open ACL after every range it ever "
                        "added (" + std::to_string(w.rangesEverAdded) +
                        ") was removed; peers retain a grant over "
                        "nothing and the next add re-exposes memory"});
            } else {
                findings.push_back(LintFinding{
                    LintRule::kOpenWindowNoRanges, LintSeverity::kInfo,
                    w.owner, w.wid,
                    "window " + std::to_string(w.wid) + " of '" +
                        cubicleName(w.owner) +
                        "' has an open ACL but no memory ranges"});
            }
        }
    }

    // Rule: a pointer-passing export of an isolated component is only
    // usable if some window grants that component access to foreign
    // memory; otherwise every call is doomed to fault.
    std::vector<bool> flagged(count, false);
    for (const ExportWiring &e : snapshot.exports) {
        if (!e.passesPointers || e.ownerKind == CubicleKind::kShared)
            continue;
        if (e.owner >= count || flagged[e.owner])
            continue;
        bool granted = false;
        for (const WindowWiring &w : snapshot.windows) {
            if ((w.acl & aclBit(e.owner)) != 0) {
                granted = true;
                break;
            }
        }
        if (!granted) {
            flagged[e.owner] = true;
            findings.push_back(LintFinding{
                LintRule::kPointerExportNoWindow, LintSeverity::kInfo,
                e.owner, kInvalidWindow,
                "isolated component '" + cubicleName(e.owner) +
                    "' exports pointer-taking '" + e.name +
                    "' but no declared window grants it access to any "
                    "caller memory"});
        }
    }
    return findings;
}

bool
lintClean(const std::vector<LintFinding> &findings, LintSeverity threshold)
{
    for (const LintFinding &f : findings) {
        if (f.severity >= threshold)
            return false;
    }
    return true;
}

} // namespace cubicleos::core::verifier
