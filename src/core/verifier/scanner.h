/**
 * @file
 * Instruction-aware linear-sweep scanner (verifier pass 1).
 *
 * Replaces the loader's raw byte-grep: every grep match is located by
 * the conservative pattern scan in core/codescan, then *classified*
 * against a linear-sweep disassembly of the image:
 *
 *   - instruction-aligned: the match starts on a decoded instruction
 *     boundary and decodes to the forbidden instruction → reject;
 *   - misaligned-but-reachable: the match overlaps structural encoding
 *     bytes, spans instructions, lies in an undecodable region, or is
 *     the exact target of a direct branch → reject (a component can
 *     jump into it);
 *   - unreachable-embedded: the match lies wholly inside one decoded
 *     instruction's displacement/immediate payload → report-only (a
 *     compiler constant; see DESIGN.md for the threat-model argument).
 *
 * A grep match whose bytes decode to a *different*, benign instruction
 * at the match offset (e.g. the masked xrstor pattern also matching
 * lfence) is a false positive of the byte-grep and is downgraded to
 * report-only: jumping to the offset executes the benign instruction.
 *
 * The sweep is conservative about undecodable bytes: it resynchronises
 * one byte at a time, counts the gap against decode coverage, and any
 * match touching a gap is rejected.
 */

#ifndef CUBICLEOS_CORE_VERIFIER_SCANNER_H_
#define CUBICLEOS_CORE_VERIFIER_SCANNER_H_

#include <cstdint>
#include <span>

#include "core/verifier/report.h"

namespace cubicleos::core::verifier {

/**
 * Verifies @p image: linear-sweep disassembly + classification of
 * every forbidden byte sequence. Never throws on hostile input; the
 * verdict is in the returned report (see VerifierReport::accepted).
 */
VerifierReport verifyImage(std::span<const uint8_t> image);

} // namespace cubicleos::core::verifier

#endif // CUBICLEOS_CORE_VERIFIER_SCANNER_H_
