#include "core/verifier/cache.h"

#include "core/verifier/ipcfg.h"

namespace cubicleos::core::verifier {

VerifyCache &
VerifyCache::instance()
{
    static VerifyCache cache;
    return cache;
}

uint64_t
VerifyCache::hashImage(std::span<const uint8_t> image,
                       std::span<const std::size_t> entryPoints,
                       std::span<const EntryTable> tables)
{
    constexpr uint64_t kOffset = 0xcbf29ce484222325ull;
    constexpr uint64_t kPrime = 0x100000001b3ull;
    uint64_t h = kOffset;
    auto mix = [&h](uint8_t byte) {
        h ^= byte;
        h *= kPrime;
    };
    for (uint8_t b : image)
        mix(b);
    for (int i = 0; i < 8; ++i)
        mix(static_cast<uint8_t>(image.size() >> (8 * i)));
    for (std::size_t e : entryPoints) {
        for (int i = 0; i < 8; ++i)
            mix(static_cast<uint8_t>(e >> (8 * i)));
    }
    for (const EntryTable &t : tables) {
        for (int i = 0; i < 8; ++i)
            mix(static_cast<uint8_t>(t.offset >> (8 * i)));
        for (int i = 0; i < 8; ++i)
            mix(static_cast<uint8_t>(t.count >> (8 * i)));
    }
    return h;
}

VerifierReport
VerifyCache::verify(std::span<const uint8_t> image,
                    std::span<const std::size_t> entryPoints,
                    std::span<const EntryTable> tables, bool *hit)
{
    const uint64_t key = hashImage(image, entryPoints, tables);
    {
        ReaderLock lock(mu_);
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            if (hit)
                *hit = true;
            return it->second;
        }
    }
    if (hit)
        *hit = false;
    VerifierReport report = verifyImageInter(image, entryPoints, tables);
    {
        WriterLock lock(mu_);
        if (entries_.size() >= kMaxEntries)
            entries_.clear();
        entries_.emplace(key, report);
    }
    return report;
}

void
VerifyCache::clear()
{
    WriterLock lock(mu_);
    entries_.clear();
}

std::size_t
VerifyCache::size() const
{
    ReaderLock lock(mu_);
    return entries_.size();
}

} // namespace cubicleos::core::verifier
