/**
 * @file
 * Entry-point reachability walk (verifier pass 2).
 *
 * Pass 1 (scanner.h) classifies forbidden byte sequences against a
 * blind linear sweep: every instruction boundary the sweep visits is
 * presumed executable. That over-rejects — a `0f 01 ef` landing
 * misaligned inside data after a `ret`, or inside an instruction in a
 * dead code island, can never execute, yet pass 1 calls it
 * misaligned-reachable and the loader refuses the component.
 *
 * Pass 2 builds a direct-branch control-flow graph over the image and
 * walks it from every exported entry point:
 *
 *   - fall-through edges from every sequential instruction;
 *   - `jcc rel8/rel32`: target + fall-through;
 *   - `jmp rel8/rel32`: target only;
 *   - `call rel32`: target + fall-through (callees return);
 *   - `call r/m`: fall-through only — the unknowable callee is an
 *     *indirect site*, counted but not followed (in-image indirect
 *     targets are constrained by the trampoline CFI story, DESIGN.md);
 *   - `ret` / `jmp r/m` / `hlt` / `ud2` / `int3`: sinks, no successor;
 *   - a direct edge leaving the image is an external sink (imports go
 *     through relocated call stubs; nothing more is reachable here).
 *
 * A rejecting pass-1 finding that overlaps no *reachable* instruction
 * span is downgraded to kUnreachable (report-only). A reachable
 * boundary that decodes forbidden is upgraded/kept as kAligned. The
 * walk never makes the verdict more permissive on reachable code than
 * pass 1: it only ever downgrades findings it has proven dead.
 *
 * Conservatism fallback: if the walk reaches a byte it cannot decode,
 * or an entry point lies outside the image, the image is *opaque* —
 * the refinement is discarded and the pass-1 classes stand unchanged
 * (CfgSummary::opaque is set so callers can see why).
 */

#ifndef CUBICLEOS_CORE_VERIFIER_CFG_H_
#define CUBICLEOS_CORE_VERIFIER_CFG_H_

#include <cstddef>
#include <cstdint>
#include <span>

#include "core/verifier/report.h"

namespace cubicleos::core::verifier {

/**
 * Verifies @p image with the reachability refinement: runs the pass-1
 * linear sweep, then walks the direct-branch CFG from every offset in
 * @p entryPoints and reclassifies findings against the reachable set.
 *
 * @param entryPoints exported entry offsets; an empty span seeds the
 *        walk at offset 0. Out-of-range entries make the image opaque
 *        (pass-1 classes kept), they do not throw.
 * @return report with CfgSummary filled in (cfg.ran == true).
 */
VerifierReport verifyImageFrom(std::span<const uint8_t> image,
                               std::span<const std::size_t> entryPoints);

} // namespace cubicleos::core::verifier

#endif // CUBICLEOS_CORE_VERIFIER_CFG_H_
