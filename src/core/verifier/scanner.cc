#include "core/verifier/scanner.h"

#include <algorithm>

#include "core/codescan.h"
#include "core/verifier/insn.h"

namespace cubicleos::core::verifier {

const char *
findingClassName(FindingClass cls)
{
    switch (cls) {
      case FindingClass::kAligned: return "instruction-aligned";
      case FindingClass::kMisalignedReachable: return "misaligned-reachable";
      case FindingClass::kEmbedded: return "unreachable-embedded";
      case FindingClass::kUnreachable: return "unreachable-code";
      case FindingClass::kIndirectReachable: return "indirect-reachable";
    }
    return "unknown";
}

VerifierReport
verifyImage(std::span<const uint8_t> image)
{
    VerifierReport report;
    report.imageBytes = image.size();
    report.firstUndecodable = image.size();

    // Pass 1a: conservative byte-grep locates candidate sequences.
    // Matches are non-overlapping and sorted by offset.
    const std::vector<ForbiddenInsn> matches = scanCodeImageAll(image);

    // Offsets of matches, for the direct-branch reachability check.
    std::vector<std::size_t> matchOffsets;
    matchOffsets.reserve(matches.size());
    for (const ForbiddenInsn &m : matches)
        matchOffsets.push_back(m.offset);

    // Direct-branch targets that land exactly on a match offset: a
    // jump there executes the forbidden instruction even if the match
    // is buried in another instruction's payload.
    std::vector<std::size_t> branchHits;

    std::size_t mi = 0;
    std::size_t pos = 0;
    const std::size_t n = image.size();

    auto classify = [&](const ForbiddenInsn &m, FindingClass cls) {
        report.findings.push_back(
            CodeFinding{m.offset, m.length, m.mnemonic, cls});
    };

    while (pos < n) {
        const auto insn = decodeAt(image, pos);
        if (!insn) {
            // Undecodable byte: resynchronise one byte ahead. Any
            // match starting here cannot be proven unreachable.
            report.undecodableBytes++;
            report.firstUndecodable =
                std::min(report.firstUndecodable, pos);
            while (mi < matches.size() && matches[mi].offset == pos) {
                classify(matches[mi], FindingClass::kMisalignedReachable);
                ++mi;
            }
            ++pos;
            continue;
        }

        const std::size_t start = pos;
        const std::size_t end = pos + insn->length;
        const std::size_t payload = pos + insn->payloadOff;
        report.insnCount++;
        report.decodedBytes += insn->length;

        if (insn->isDirectBranch && !matchOffsets.empty()) {
            const int64_t target =
                static_cast<int64_t>(end) + insn->branchRel;
            if (target >= 0 &&
                std::binary_search(matchOffsets.begin(),
                                   matchOffsets.end(),
                                   static_cast<std::size_t>(target))) {
                branchHits.push_back(static_cast<std::size_t>(target));
            }
        }

        while (mi < matches.size() && matches[mi].offset < end) {
            const ForbiddenInsn &m = matches[mi];
            if (m.offset == start) {
                // Starts on a boundary: dangerous iff the canonical
                // decode really is the forbidden instruction (the
                // masked grep patterns also hit benign aliases, e.g.
                // lfence under the xrstor pattern).
                classify(m, insn->forbidden
                                ? FindingClass::kAligned
                                : (m.offset + m.length <= end
                                       ? FindingClass::kEmbedded
                                       : FindingClass::kMisalignedReachable));
            } else if (m.offset >= payload && m.offset + m.length <= end) {
                classify(m, FindingClass::kEmbedded);
            } else {
                classify(m, FindingClass::kMisalignedReachable);
            }
            ++mi;
        }
        pos = end;
    }

    // Pass 1b: upgrade payload-embedded matches that a direct branch
    // targets head-on — the component can reach them after all.
    if (!branchHits.empty()) {
        std::sort(branchHits.begin(), branchHits.end());
        for (CodeFinding &f : report.findings) {
            if (f.cls == FindingClass::kEmbedded &&
                std::binary_search(branchHits.begin(), branchHits.end(),
                                   f.offset)) {
                f.cls = FindingClass::kMisalignedReachable;
            }
        }
    }
    return report;
}

} // namespace cubicleos::core::verifier
