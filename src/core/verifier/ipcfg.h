/**
 * @file
 * Pass 3 of the load-time verifier: interprocedural control flow.
 *
 * Pass 2 (cfg.h) walks direct branches only and treats every indirect
 * jump as an opaque sink — sound for rejecting what it *can* see, but
 * silent about what it cannot: a `jmp r/m` might land anywhere, so an
 * image whose forbidden bytes sit in "unreachable" code is only safe
 * if no indirect flow can reach them. Pass 3 closes that gap:
 *
 *  - it resolves the compiler's bounded-switch jump-table idiom
 *    (cmp/ja guard, rip-relative lea of the table base, movsxd of a
 *    scaled 32-bit entry, add, jmp reg) to the exact target set the
 *    table encodes, and follows those edges;
 *  - it resolves the rip-relative `lea reg, [rip+disp]` immediately
 *    followed by `call reg` singleton to its one target;
 *  - it takes builder-declared relocation-like entry tables
 *    (ComponentSpec::indirectTables) as the universe of indirect
 *    *call* targets, the way a CFI-instrumented build publishes its
 *    address-taken set;
 *  - residual indirect flow is classified per function and reported,
 *    never silently ignored: if a reachable indirect *jump* stays
 *    unresolved (or reachable bytes stay undecodable) while the image
 *    contains forbidden byte sequences anywhere, the image rejects —
 *    the sequences get class kIndirectReachable. Unresolved indirect
 *    *calls* keep pass-2's fall-through treatment (calls are confined
 *    to published entry slots by the cross-call trampoline), but are
 *    counted and listed in the audit record.
 *
 * The walk also emits the per-image ImageAudit (report.h): the
 * function partition, every indirect site with its resolution, the
 * bytes identified as jump-table data (so decode coverage accounts
 * them as data, not undecodable gaps), and a shortest witness path
 * from an entry point for every rejecting finding.
 */

#ifndef CUBICLEOS_CORE_VERIFIER_IPCFG_H_
#define CUBICLEOS_CORE_VERIFIER_IPCFG_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/verifier/report.h"

namespace cubicleos::core::verifier {

/**
 * One matched bounded-switch jump table (see matchJumpTable).
 * Offsets are image-relative, like everything in the verifier.
 */
struct JumpTableMatch {
    bool matched = false;
    std::size_t idiomStart = 0; ///< offset of the cmp guard
    std::size_t jmpOffset = 0;  ///< offset of the dispatching jmp reg
    std::size_t idiomEnd = 0;   ///< offset just past the jmp
    std::size_t tableBase = 0;  ///< offset of the entry table
    std::size_t count = 0;      ///< entries (guard bound + 1)
    /** Decoded dispatch targets: tableBase + entry value, in table
     *  order (duplicates kept — the soundness property tests compare
     *  against a brute-force interpreter over every index). */
    std::vector<std::size_t> targets;
};

/**
 * Matches the bounded-switch dispatch idiom starting at @p pos:
 *
 *   cmp rax, imm8/imm32        48 83 F8 ib | 48 3D id
 *   ja  default                77 rel8     | 0F 87 rel32
 *   lea reg, [rip+disp32]      48/4C 8D /r (mod=00, rm=101)
 *   movsxd reg, [reg+reg*4]    48 63 /r (SIB, scale=4)
 *   add reg, reg               48 01 /r (mod=3)
 *   jmp reg                    FF /4 (mod=3)
 *
 * and decodes the table the lea addresses: (bound+1) little-endian
 * 32-bit entries, each a target offset relative to the table base.
 * Returns an unmatched result if any instruction deviates from the
 * shape, the bound is implausibly large, or the table or any target
 * falls outside the image.
 */
JumpTableMatch matchJumpTable(std::span<const uint8_t> image,
                              std::size_t pos);

/** One matched lea/call singleton (see matchLeaCall). */
struct LeaCallMatch {
    bool matched = false;
    std::size_t callOffset = 0; ///< offset of the call reg
    std::size_t idiomEnd = 0;   ///< offset just past the call
    std::size_t target = 0;     ///< resolved callee offset
};

/**
 * Matches `lea reg, [rip+disp32]` (48/4C 8D /r, mod=00, rm=101)
 * immediately followed by `call reg` (FF /2, mod=3) on the same
 * register, starting at @p pos. The resolved target is the lea's
 * rip-relative destination (end of lea + disp32); out-of-image
 * targets do not match.
 */
LeaCallMatch matchLeaCall(std::span<const uint8_t> image,
                          std::size_t pos);

/**
 * Pass 3: verifies @p image interprocedurally from @p entryPoints.
 *
 * Runs passes 1+2 (verifyImageFrom) and then the interprocedural
 * refinement described in the file header. @p tables is the builder's
 * declared indirect-call target tables (may be empty). The returned
 * report has audit.ran set; decodedBytes counts identified table
 * bytes as covered data.
 */
VerifierReport verifyImageInter(std::span<const uint8_t> image,
                                std::span<const std::size_t> entryPoints,
                                std::span<const EntryTable> tables);

} // namespace cubicleos::core::verifier

#endif // CUBICLEOS_CORE_VERIFIER_IPCFG_H_
