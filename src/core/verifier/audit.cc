#include "core/verifier/audit.h"

#include <algorithm>
#include <cstdio>

namespace cubicleos::core::verifier {

namespace {

std::string
cubicleNameIn(const WiringSnapshot &snapshot, Cid cid)
{
    for (const CubicleWiring &c : snapshot.cubicles) {
        if (c.id == cid)
            return c.name;
    }
    return "cubicle " + std::to_string(cid);
}

bool
isSharedIn(const WiringSnapshot &snapshot, Cid cid)
{
    for (const CubicleWiring &c : snapshot.cubicles) {
        if (c.id == cid)
            return c.kind == CubicleKind::kShared;
    }
    return false;
}

} // namespace

std::vector<LintFinding>
auditWiring(const WiringSnapshot &snapshot)
{
    std::vector<LintFinding> findings;
    const std::size_t count = snapshot.cubicles.size();

    for (const WindowWiring &w : snapshot.windows) {
        // Hot windows are retagged eagerly and never fault, so the
        // usage matrix is structurally blind to them (DESIGN.md §12).
        if (w.hotKey >= 0)
            continue;
        if (w.acl == 0)
            continue;

        const AclMask used = w.usedRead | w.usedWrite;

        // A window with memory behind it that no peer ever touched is
        // one collapsed finding, not one over-broad finding per peer.
        // (An empty window with an open ACL is the syntactic linter's
        // stale-grant / no-ranges territory; skip it here.)
        if (used == 0) {
            if (w.rangeCount > 0) {
                findings.push_back(LintFinding{
                    LintRule::kWindowNeverUsed, LintSeverity::kWarning,
                    w.owner, w.wid,
                    "window " + std::to_string(w.wid) + " of '" +
                        cubicleNameIn(snapshot, w.owner) +
                        "' has ranges and an open ACL but no peer ever "
                        "accessed it; the grant is pure attack surface"});
            }
            continue;
        }

        for (int cid = 0; cid < kMaxCubicles; ++cid) {
            const auto peer = static_cast<Cid>(cid);
            const AclMask bit = aclBit(peer);
            if ((w.acl & bit) == 0)
                continue;
            // Self, ghost and shared grants are already flagged by the
            // syntactic linter; repeating them as dataflow findings
            // would double-report one wiring mistake.
            if (peer == w.owner || peer >= count ||
                isSharedIn(snapshot, peer))
                continue;
            if ((used & bit) == 0) {
                findings.push_back(LintFinding{
                    LintRule::kAclOverBroad, LintSeverity::kWarning,
                    w.owner, w.wid,
                    "window " + std::to_string(w.wid) + " of '" +
                        cubicleNameIn(snapshot, w.owner) + "' grants '" +
                        cubicleNameIn(snapshot, peer) +
                        "', which never accessed it; the grant can be "
                        "dropped"});
            } else if ((w.usedWrite & bit) == 0) {
                findings.push_back(LintFinding{
                    LintRule::kWriteGrantReadOnly, LintSeverity::kInfo,
                    w.owner, w.wid,
                    "window " + std::to_string(w.wid) + " of '" +
                        cubicleNameIn(snapshot, w.owner) + "' grants '" +
                        cubicleNameIn(snapshot, peer) +
                        "' read+write but the peer only ever read; a "
                        "read-only window would suffice"});
            }
        }
    }
    return findings;
}

// ----------------------------------------------------------------------
// JSON rendering. Hand-rolled on purpose: the output must be byte-for-
// byte deterministic so tests can diff it against a committed baseline,
// which rules out floats, addresses, timestamps and map iteration
// order. Everything below emits integers, booleans and escaped strings
// in a fixed key order.
// ----------------------------------------------------------------------

namespace {

void
appendEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (const char ch : s) {
        switch (ch) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(ch)));
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    out += '"';
}

void
appendNum(std::string &out, std::size_t v)
{
    out += std::to_string(v);
}

void
appendBool(std::string &out, bool v)
{
    out += v ? "true" : "false";
}

/** Renders an ACL mask as an ascending array of cubicle IDs. */
void
appendAcl(std::string &out, AclMask mask)
{
    out += '[';
    bool first = true;
    for (int cid = 0; cid < kMaxCubicles; ++cid) {
        if ((mask & aclBit(static_cast<Cid>(cid))) == 0)
            continue;
        if (!first)
            out += ',';
        first = false;
        appendNum(out, static_cast<std::size_t>(cid));
    }
    out += ']';
}

void
appendImage(std::string &out, const ImageAuditView &view)
{
    const VerifierReport &r = *view.report;
    out += "{\"component\":";
    appendEscaped(out, view.component);
    out += ",\"bytes\":";
    appendNum(out, r.imageBytes);
    out += ",\"insns\":";
    appendNum(out, r.insnCount);
    out += ",\"undecodable\":";
    appendNum(out, r.undecodableBytes);
    out += ",\"findings\":{\"rejecting\":";
    appendNum(out, r.rejectingCount());
    out += ",\"reported\":";
    appendNum(out, r.embeddedCount());
    out += "},\"pass2\":{\"ran\":";
    appendBool(out, r.cfg.ran);
    out += ",\"reachableInsns\":";
    appendNum(out, r.cfg.reachableInsns);
    out += ",\"indirectCalls\":";
    appendNum(out, r.cfg.indirectSites);
    out += ",\"indirectJumps\":";
    appendNum(out, r.cfg.indirectJumps);
    out += "},\"pass3\":{\"ran\":";
    appendBool(out, r.audit.ran);
    out += ",\"functions\":";
    appendNum(out, r.audit.functionCount);
    out += ",\"resolvedSites\":";
    appendNum(out, r.audit.resolvedSites);
    out += ",\"unresolvedSites\":";
    appendNum(out, r.audit.unresolvedSites);
    out += ",\"tableBytes\":";
    appendNum(out, r.audit.tableBytes);

    // Resolved sites aggregate per resolution kind; unresolved sites
    // are listed one by one — no silent opacity.
    std::size_t byKind[3] = {0, 0, 0};
    for (const IndirectSiteRecord &s : r.audit.indirectSites) {
        if (!s.resolved)
            continue;
        const std::string how = s.how;
        if (how == "jump-table")
            byKind[0]++;
        else if (how == "lea-call")
            byKind[1]++;
        else if (how == "entry-table")
            byKind[2]++;
    }
    out += ",\"resolvedByKind\":{\"jump-table\":";
    appendNum(out, byKind[0]);
    out += ",\"lea-call\":";
    appendNum(out, byKind[1]);
    out += ",\"entry-table\":";
    appendNum(out, byKind[2]);
    out += "},\"unresolved\":[";
    bool first = true;
    for (const IndirectSiteRecord &s : r.audit.indirectSites) {
        if (s.resolved)
            continue;
        if (!first)
            out += ',';
        first = false;
        out += "{\"offset\":";
        appendNum(out, s.offset);
        out += ",\"kind\":";
        out += s.isJump ? "\"jump\"" : "\"call\"";
        out += ",\"function\":";
        appendNum(out, s.function);
        out += '}';
    }
    out += "],\"witnesses\":[";
    first = true;
    for (const WitnessPath &w : r.audit.witnessPaths) {
        if (!first)
            out += ',';
        first = false;
        out += "{\"finding\":";
        appendNum(out, w.findingOffset);
        out += ",\"steps\":[";
        for (std::size_t i = 0; i < w.steps.size(); ++i) {
            if (i != 0)
                out += ',';
            appendNum(out, w.steps[i]);
        }
        out += "]}";
    }
    out += "]}}";
}

} // namespace

std::string
auditReportJson(const WiringSnapshot &snapshot,
                std::span<const ImageAuditView> images,
                std::span<const LintFinding> findings)
{
    std::string out;
    out.reserve(4096);
    out += "{\"schema\":\"cubicleos-audit-v1\",\"images\":[";
    bool first = true;
    for (const ImageAuditView &view : images) {
        if (view.report == nullptr)
            continue;
        if (!first)
            out += ',';
        first = false;
        appendImage(out, view);
    }

    out += "],\"windows\":[";
    first = true;
    for (const WindowWiring &w : snapshot.windows) {
        if (!first)
            out += ',';
        first = false;
        out += "{\"wid\":";
        appendNum(out, static_cast<std::size_t>(w.wid));
        out += ",\"owner\":";
        appendNum(out, static_cast<std::size_t>(w.owner));
        out += ",\"hot\":";
        appendBool(out, w.hotKey >= 0);
        out += ",\"ranges\":";
        appendNum(out, w.rangeCount);
        out += ",\"acl\":";
        appendAcl(out, w.acl);
        out += ",\"usedRead\":";
        appendAcl(out, w.usedRead);
        out += ",\"usedWrite\":";
        appendAcl(out, w.usedWrite);
        out += '}';
    }

    out += "],\"findings\":[";
    first = true;
    for (const LintFinding &f : findings) {
        if (!first)
            out += ',';
        first = false;
        out += "{\"rule\":";
        appendEscaped(out, lintRuleName(f.rule));
        out += ",\"severity\":";
        appendEscaped(out, lintSeverityName(f.severity));
        out += ",\"cubicle\":";
        appendNum(out, static_cast<std::size_t>(f.cubicle));
        out += ",\"window\":";
        appendNum(out, static_cast<std::size_t>(f.window));
        out += ",\"message\":";
        appendEscaped(out, f.message);
        out += '}';
    }
    out += "]}";
    return out;
}

} // namespace cubicleos::core::verifier
