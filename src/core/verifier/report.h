/**
 * @file
 * Verifier result types: per-image code findings and the load report
 * threaded from the loader through Monitor/System into Stats.
 */

#ifndef CUBICLEOS_CORE_VERIFIER_REPORT_H_
#define CUBICLEOS_CORE_VERIFIER_REPORT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cubicleos::core::verifier {

/**
 * Classification of one forbidden byte sequence found in an image.
 *
 * The classes encode the reject/report policy (DESIGN.md §"Load-time
 * verification"): aligned and misaligned-reachable sequences are
 * executable by the component and must be rejected; a sequence wholly
 * inside one instruction's displacement/immediate payload is a
 * compiler constant no in-image control flow reaches, and is recorded
 * for audit instead.
 *
 * kUnreachable is produced only by pass 2 (the entry-point
 * reachability walk, cfg.h): a sequence the linear sweep would reject
 * but that no branch path from any exported entry point executes —
 * e.g. bytes after an unconditional ret, or a misaligned overlap in
 * dead code. Like kEmbedded it is report-only.
 *
 * kIndirectReachable is produced only by pass 3 (the interprocedural
 * analysis, ipcfg.h): the function holding the finding is reachable
 * from an entry point and contains an *unresolved* indirect jump, so
 * the analysis cannot prove the forbidden bytes dead — the finding
 * rejects even though no resolved path lands on it.
 */
enum class FindingClass : uint8_t {
    kAligned,             ///< starts on an instruction boundary
    kMisalignedReachable, ///< overlaps structural bytes / undecoded region
    kEmbedded,            ///< wholly inside one instruction's payload
    kUnreachable,         ///< pass 2: no path from any entry point
    kIndirectReachable,   ///< pass 3: unresolved indirect flow nearby
};

/** Human-readable class name. */
const char *findingClassName(FindingClass cls);

/** One forbidden byte sequence, located and classified. */
struct CodeFinding {
    std::size_t offset = 0;     ///< byte offset in the image
    std::size_t length = 0;     ///< matched pattern length
    std::string mnemonic;       ///< e.g. "wrpkru"
    FindingClass cls = FindingClass::kMisalignedReachable;

    bool rejecting() const
    {
        return cls == FindingClass::kAligned ||
               cls == FindingClass::kMisalignedReachable ||
               cls == FindingClass::kIndirectReachable;
    }
};

/**
 * One relocation-like indirect-call target table supplied by the
 * builder in @c ComponentSpec::indirectTables: @c count 4-byte
 * little-endian image offsets starting at @c offset. Pass 3 treats
 * the union of all table entries as the target set of every indirect
 * *call* site (calls are CFI-confined to published entry slots), and
 * treats the table bytes themselves as data, not code.
 */
struct EntryTable {
    std::size_t offset = 0; ///< byte offset of the table in the image
    std::size_t count = 0;  ///< number of 4-byte entries
};

/**
 * Summary of the pass-2 reachability walk (zeroed when only the
 * linear sweep ran).
 *
 * When @c opaque is true the walk hit a reachable byte it could not
 * decode (or an entry point outside the image) and its refinement was
 * discarded: the report keeps the conservative pass-1 classes.
 */
struct CfgSummary {
    bool ran = false;            ///< verifyImageFrom was used
    bool opaque = false;         ///< walk aborted, pass-1 classes kept
    std::size_t firstOpaque = 0; ///< offset that stopped the walk
    std::size_t entryCount = 0;
    std::size_t reachableInsns = 0;
    std::size_t reachableBytes = 0;
    std::size_t directBranches = 0;  ///< jcc/jmp/call edges followed
    std::size_t indirectSites = 0;   ///< call r/m seen (fall-through kept)
    std::size_t indirectJumps = 0;   ///< jmp r/m seen (sink for pass 2)
    std::size_t terminals = 0;       ///< ret/hlt/ud2/int3 sinks
    std::size_t externalTargets = 0; ///< direct edges leaving the image
};

/** How pass 3 resolved (or failed to resolve) one indirect site. */
struct IndirectSiteRecord {
    std::size_t offset = 0;   ///< offset of the jmp/call r/m instruction
    bool isJump = false;      ///< jmp r/m (true) vs call r/m (false)
    bool resolved = false;    ///< target set statically known
    std::size_t function = 0; ///< entry offset of the containing function
    std::size_t tableBase = 0; ///< jump table offset (jump-table sites)
    std::vector<std::size_t> targets; ///< resolved target offsets, sorted
    /** How the set was obtained: "jump-table", "lea-call",
     *  "entry-table", or "" when unresolved. */
    const char *how = "";
};

/** One per-function summary from the pass-3 call-graph walk. */
struct FunctionAudit {
    std::size_t entry = 0;        ///< function entry offset
    bool reachable = false;       ///< reachable from an image entry point
    std::size_t insnCount = 0;    ///< instructions assigned to it
    std::size_t unresolvedSites = 0; ///< unresolved indirect sites inside
};

/** Shortest entry→forbidden-instruction path for one rejecting finding. */
struct WitnessPath {
    std::size_t findingOffset = 0;      ///< offset of the finding reached
    std::vector<std::size_t> steps;     ///< insn offsets, entry first
};

/**
 * Pass-3 (interprocedural) audit record for one image. Zeroed unless
 * @c ran is set (verifyImageInter was used).
 */
struct ImageAudit {
    bool ran = false;
    std::size_t functionCount = 0;
    std::size_t resolvedSites = 0;   ///< indirect sites with known targets
    std::size_t unresolvedSites = 0; ///< residual opaque indirect sites
    std::size_t tableBytes = 0;      ///< bytes identified as table data
    std::vector<FunctionAudit> functions;      ///< sorted by entry
    std::vector<IndirectSiteRecord> indirectSites; ///< sorted by offset
    std::vector<WitnessPath> witnessPaths;     ///< per rejecting finding

    /** Fraction of indirect sites left unresolved (0 when none seen). */
    double unresolvedRate() const
    {
        const std::size_t total = resolvedSites + unresolvedSites;
        if (total == 0)
            return 0.0;
        return static_cast<double>(unresolvedSites) /
               static_cast<double>(total);
    }
};

/** Result of verifying one component image. */
struct VerifierReport {
    std::size_t imageBytes = 0;
    std::size_t decodedBytes = 0;      ///< bytes covered by decoded insns
    std::size_t insnCount = 0;
    std::size_t undecodableBytes = 0;  ///< gap bytes skipped by the sweep
    /** Offset of the first undecodable byte, or imageBytes if none. */
    std::size_t firstUndecodable = 0;
    std::vector<CodeFinding> findings;
    CfgSummary cfg;
    ImageAudit audit; ///< pass-3 record (audit.ran false unless pass 3 ran)

    /** True when no finding forces a reject. */
    bool accepted() const
    {
        for (const CodeFinding &f : findings) {
            if (f.rejecting())
                return false;
        }
        return true;
    }

    /** First rejecting finding, or nullptr when accepted. */
    const CodeFinding *firstRejecting() const
    {
        for (const CodeFinding &f : findings) {
            if (f.rejecting())
                return &f;
        }
        return nullptr;
    }

    /** Report-only (embedded) findings. */
    std::size_t embeddedCount() const
    {
        std::size_t n = 0;
        for (const CodeFinding &f : findings)
            n += f.rejecting() ? 0 : 1;
        return n;
    }

    /** Rejecting findings. */
    std::size_t rejectingCount() const
    {
        return findings.size() - embeddedCount();
    }

    /** Fraction of image bytes covered by decoded instructions. */
    double decodeCoverage() const
    {
        if (imageBytes == 0)
            return 1.0;
        return static_cast<double>(decodedBytes) /
               static_cast<double>(imageBytes);
    }

    /** Fraction of image bytes proven reachable by pass 2 (0 if not run). */
    double reachableCoverage() const
    {
        if (!cfg.ran || imageBytes == 0)
            return 0.0;
        return static_cast<double>(cfg.reachableBytes) /
               static_cast<double>(imageBytes);
    }
};

} // namespace cubicleos::core::verifier

#endif // CUBICLEOS_CORE_VERIFIER_REPORT_H_
