/**
 * @file
 * Verifier result types: per-image code findings and the load report
 * threaded from the loader through Monitor/System into Stats.
 */

#ifndef CUBICLEOS_CORE_VERIFIER_REPORT_H_
#define CUBICLEOS_CORE_VERIFIER_REPORT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cubicleos::core::verifier {

/**
 * Classification of one forbidden byte sequence found in an image.
 *
 * The classes encode the reject/report policy (DESIGN.md §"Load-time
 * verification"): aligned and misaligned-reachable sequences are
 * executable by the component and must be rejected; a sequence wholly
 * inside one instruction's displacement/immediate payload is a
 * compiler constant no in-image control flow reaches, and is recorded
 * for audit instead.
 */
enum class FindingClass : uint8_t {
    kAligned,             ///< starts on an instruction boundary
    kMisalignedReachable, ///< overlaps structural bytes / undecoded region
    kEmbedded,            ///< wholly inside one instruction's payload
};

/** Human-readable class name. */
const char *findingClassName(FindingClass cls);

/** One forbidden byte sequence, located and classified. */
struct CodeFinding {
    std::size_t offset = 0;     ///< byte offset in the image
    std::size_t length = 0;     ///< matched pattern length
    std::string mnemonic;       ///< e.g. "wrpkru"
    FindingClass cls = FindingClass::kMisalignedReachable;

    bool rejecting() const { return cls != FindingClass::kEmbedded; }
};

/** Result of verifying one component image. */
struct VerifierReport {
    std::size_t imageBytes = 0;
    std::size_t decodedBytes = 0;      ///< bytes covered by decoded insns
    std::size_t insnCount = 0;
    std::size_t undecodableBytes = 0;  ///< gap bytes skipped by the sweep
    /** Offset of the first undecodable byte, or imageBytes if none. */
    std::size_t firstUndecodable = 0;
    std::vector<CodeFinding> findings;

    /** True when no finding forces a reject. */
    bool accepted() const
    {
        for (const CodeFinding &f : findings) {
            if (f.rejecting())
                return false;
        }
        return true;
    }

    /** First rejecting finding, or nullptr when accepted. */
    const CodeFinding *firstRejecting() const
    {
        for (const CodeFinding &f : findings) {
            if (f.rejecting())
                return &f;
        }
        return nullptr;
    }

    /** Report-only (embedded) findings. */
    std::size_t embeddedCount() const
    {
        std::size_t n = 0;
        for (const CodeFinding &f : findings)
            n += f.rejecting() ? 0 : 1;
        return n;
    }

    /** Rejecting findings. */
    std::size_t rejectingCount() const
    {
        return findings.size() - embeddedCount();
    }

    /** Fraction of image bytes covered by decoded instructions. */
    double decodeCoverage() const
    {
        if (imageBytes == 0)
            return 1.0;
        return static_cast<double>(decodedBytes) /
               static_cast<double>(imageBytes);
    }
};

} // namespace cubicleos::core::verifier

#endif // CUBICLEOS_CORE_VERIFIER_REPORT_H_
