/**
 * @file
 * Verifier result types: per-image code findings and the load report
 * threaded from the loader through Monitor/System into Stats.
 */

#ifndef CUBICLEOS_CORE_VERIFIER_REPORT_H_
#define CUBICLEOS_CORE_VERIFIER_REPORT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cubicleos::core::verifier {

/**
 * Classification of one forbidden byte sequence found in an image.
 *
 * The classes encode the reject/report policy (DESIGN.md §"Load-time
 * verification"): aligned and misaligned-reachable sequences are
 * executable by the component and must be rejected; a sequence wholly
 * inside one instruction's displacement/immediate payload is a
 * compiler constant no in-image control flow reaches, and is recorded
 * for audit instead.
 *
 * kUnreachable is produced only by pass 2 (the entry-point
 * reachability walk, cfg.h): a sequence the linear sweep would reject
 * but that no branch path from any exported entry point executes —
 * e.g. bytes after an unconditional ret, or a misaligned overlap in
 * dead code. Like kEmbedded it is report-only.
 */
enum class FindingClass : uint8_t {
    kAligned,             ///< starts on an instruction boundary
    kMisalignedReachable, ///< overlaps structural bytes / undecoded region
    kEmbedded,            ///< wholly inside one instruction's payload
    kUnreachable,         ///< pass 2: no path from any entry point
};

/** Human-readable class name. */
const char *findingClassName(FindingClass cls);

/** One forbidden byte sequence, located and classified. */
struct CodeFinding {
    std::size_t offset = 0;     ///< byte offset in the image
    std::size_t length = 0;     ///< matched pattern length
    std::string mnemonic;       ///< e.g. "wrpkru"
    FindingClass cls = FindingClass::kMisalignedReachable;

    bool rejecting() const
    {
        return cls == FindingClass::kAligned ||
               cls == FindingClass::kMisalignedReachable;
    }
};

/**
 * Summary of the pass-2 reachability walk (zeroed when only the
 * linear sweep ran).
 *
 * When @c opaque is true the walk hit a reachable byte it could not
 * decode (or an entry point outside the image) and its refinement was
 * discarded: the report keeps the conservative pass-1 classes.
 */
struct CfgSummary {
    bool ran = false;            ///< verifyImageFrom was used
    bool opaque = false;         ///< walk aborted, pass-1 classes kept
    std::size_t firstOpaque = 0; ///< offset that stopped the walk
    std::size_t entryCount = 0;
    std::size_t reachableInsns = 0;
    std::size_t reachableBytes = 0;
    std::size_t directBranches = 0;  ///< jcc/jmp/call edges followed
    std::size_t indirectSites = 0;   ///< call r/m seen (fall-through kept)
    std::size_t terminals = 0;       ///< ret/jmp r/m/hlt/ud2/int3 sinks
    std::size_t externalTargets = 0; ///< direct edges leaving the image
};

/** Result of verifying one component image. */
struct VerifierReport {
    std::size_t imageBytes = 0;
    std::size_t decodedBytes = 0;      ///< bytes covered by decoded insns
    std::size_t insnCount = 0;
    std::size_t undecodableBytes = 0;  ///< gap bytes skipped by the sweep
    /** Offset of the first undecodable byte, or imageBytes if none. */
    std::size_t firstUndecodable = 0;
    std::vector<CodeFinding> findings;
    CfgSummary cfg;

    /** True when no finding forces a reject. */
    bool accepted() const
    {
        for (const CodeFinding &f : findings) {
            if (f.rejecting())
                return false;
        }
        return true;
    }

    /** First rejecting finding, or nullptr when accepted. */
    const CodeFinding *firstRejecting() const
    {
        for (const CodeFinding &f : findings) {
            if (f.rejecting())
                return &f;
        }
        return nullptr;
    }

    /** Report-only (embedded) findings. */
    std::size_t embeddedCount() const
    {
        std::size_t n = 0;
        for (const CodeFinding &f : findings)
            n += f.rejecting() ? 0 : 1;
        return n;
    }

    /** Rejecting findings. */
    std::size_t rejectingCount() const
    {
        return findings.size() - embeddedCount();
    }

    /** Fraction of image bytes covered by decoded instructions. */
    double decodeCoverage() const
    {
        if (imageBytes == 0)
            return 1.0;
        return static_cast<double>(decodedBytes) /
               static_cast<double>(imageBytes);
    }

    /** Fraction of image bytes proven reachable by pass 2 (0 if not run). */
    double reachableCoverage() const
    {
        if (!cfg.ran || imageBytes == 0)
            return 0.0;
        return static_cast<double>(cfg.reachableBytes) /
               static_cast<double>(imageBytes);
    }
};

} // namespace cubicleos::core::verifier

#endif // CUBICLEOS_CORE_VERIFIER_REPORT_H_
