/**
 * @file
 * Minimal x86-64 instruction-length decoder for the load-time verifier.
 *
 * Decodes the compiler-emitted subset our synthesized images and tests
 * use: legacy/REX prefixes, ModRM/SIB addressing, displacement and
 * immediate sizing, the one-byte ALU/mov/push/pop/branch groups, the
 * group-2 shifts/rotates, the string ops (with rep prefixes), and the
 * two-byte 0F map entries real code leans on — SSE moves and packed
 * arithmetic, movzx/movsx, cmov/setcc, plus the isolation-relevant
 * entries (syscall, sysenter, the 0F 01 and 0F AE groups). AVX code is
 * covered through the VEX prefixes: the 2-byte (c5) form implies the
 * 0F map, the 3-byte (c4) form selects 0F/0F38/0F3A via its escape-map
 * field, and the map fixes the immediate size (0F38 none, 0F3A imm8),
 * so instruction length follows without per-opcode tables. AVX-512 is
 * covered the same way through the 4-byte EVEX (62) prefix: its P0
 * byte selects the escape map like VEX.mmmmm, so the VEX length rules
 * apply unchanged (EVEX adds no immediates, and disp8*N compression
 * rescales the displacement's meaning, not its width). Anything
 * outside the subset is *undecodable*: the caller must treat such
 * bytes conservatively (reject-on-reach), never optimistically.
 *
 * The decoder answers four questions per instruction:
 *   - how long is it (so a sweep or walk can find the next boundary)?
 *   - where do its data bytes (displacement + immediate) start, so a
 *     forbidden byte pattern can be classified as embedded-in-constant
 *     versus overlapping structural opcode bytes?
 *   - is it itself a forbidden, isolation-subverting instruction?
 *   - how does control leave it (fall through, direct branch, indirect
 *     sink), so the reachability pass can build a branch graph?
 */

#ifndef CUBICLEOS_CORE_VERIFIER_INSN_H_
#define CUBICLEOS_CORE_VERIFIER_INSN_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>

namespace cubicleos::core::verifier {

/** Architectural maximum x86 instruction length. */
inline constexpr std::size_t kMaxInsnLen = 15;

/** How control flow leaves an instruction (CFG successor shape). */
enum class FlowKind : uint8_t {
    kSequential,   ///< falls through to the next instruction only
    kBranch,       ///< conditional direct branch: target + fall-through
    kJump,         ///< unconditional direct jump: target only
    kCall,         ///< direct call: target + fall-through
    kIndirectCall, ///< call r/m: unknown target, falls through
    kIndirectJump, ///< jmp r/m: unknown target, no fall-through
    kTerminal,     ///< ret / hlt / ud2 / int3: no successor
};

/** One decoded instruction. */
struct Insn {
    /** Total length in bytes (prefixes through last immediate byte). */
    uint8_t length = 0;
    /**
     * Offset of the first displacement/immediate byte within the
     * instruction; equals @c length when the instruction carries no
     * data bytes. Bytes in [payloadOff, length) are compiler-chosen
     * constants, not structural encoding.
     */
    uint8_t payloadOff = 0;
    /** Decodes to an isolation-subverting instruction (wrpkru, ...). */
    bool forbidden = false;
    /** rel8/rel32 direct jump, call or jcc. */
    bool isDirectBranch = false;
    /** Sign-extended branch displacement (valid iff isDirectBranch). */
    int32_t branchRel = 0;
    /** Successor shape for the reachability walk. */
    FlowKind flow = FlowKind::kSequential;
    /** Static mnemonic (coarse; "insn" for generic group members). */
    const char *mnemonic = "insn";
};

/**
 * Decodes the instruction starting at @p pos.
 *
 * @return the decoded instruction, or no value if the bytes are
 *         truncated or outside the supported subset (undecodable).
 */
std::optional<Insn> decodeAt(std::span<const uint8_t> image,
                             std::size_t pos);

} // namespace cubicleos::core::verifier

#endif // CUBICLEOS_CORE_VERIFIER_INSN_H_
