/**
 * @file
 * Verification cache keyed by image content (verifier follow-up,
 * ROADMAP "cache sweep results by image hash").
 *
 * The linear sweep + reachability walk is deterministic in the image
 * bytes and the entry-point set, so verifying the same image twice is
 * pure waste — and common: every System in a test binary reloads the
 * same generated components, and a deployment restarting a component
 * reloads an identical file. The cache memoises the full
 * VerifierReport under a 64-bit FNV-1a hash of (image bytes, image
 * size, entry points).
 *
 * The cache is process-global (images are immutable inputs, not System
 * state) and thread-safe: lookups take a shared lock, inserts an
 * exclusive one. Two threads missing on the same image both verify and
 * both insert — the results are identical, so the race is benign.
 */

#ifndef CUBICLEOS_CORE_VERIFIER_CACHE_H_
#define CUBICLEOS_CORE_VERIFIER_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_map>

#include "core/locking.h"
#include "core/verifier/report.h"

namespace cubicleos::core::verifier {

/** Process-global memo of verifier verdicts, keyed by image content. */
class VerifyCache {
  public:
    /** The process-wide instance used by the loader. */
    static VerifyCache &instance();

    /**
     * Verifies @p image from @p entryPoints, consulting the cache
     * first. Semantically identical to verifier::verifyImageInter
     * with the declared indirect-target @p tables (which feed the key:
     * the same bytes under different tables verify apart).
     *
     * @param hit if non-null, set to true when the report came from
     *        the cache without re-running the sweep + CFG walks.
     */
    VerifierReport verify(std::span<const uint8_t> image,
                          std::span<const std::size_t> entryPoints,
                          std::span<const EntryTable> tables = {},
                          bool *hit = nullptr);

    /** Drops every entry (tests; and the eviction policy when full). */
    void clear();

    /** Number of cached reports. */
    std::size_t size() const;

    /**
     * Content hash: FNV-1a 64 over the image bytes, then the image
     * size, each entry-point offset and each declared table's
     * (offset, count), so images differing only in their export set
     * or target tables hash apart. (A 64-bit digest can collide in
     * principle; a collision would replay another image's verdict.
     * For the simulator's image population this is accepted — a
     * deployment-grade cache would key on a cryptographic digest.)
     */
    static uint64_t hashImage(std::span<const uint8_t> image,
                              std::span<const std::size_t> entryPoints,
                              std::span<const EntryTable> tables = {});

  private:
    /** Eviction bound: clearing at the cap keeps the map O(1)-ish
     *  without LRU bookkeeping on the (rare) insert path. */
    static constexpr std::size_t kMaxEntries = 256;

    // Rank kVerifyCache: taken while the loader holds loaderMutex_
    // (rank kLoader) and before any lower level.
    mutable SharedMutex mu_{LockRank::kVerifyCache, "verifier.cache"};
    std::unordered_map<uint64_t, VerifierReport> entries_ GUARDED_BY(mu_);
};

} // namespace cubicleos::core::verifier

#endif // CUBICLEOS_CORE_VERIFIER_CACHE_H_
