#include "core/verifier/insn.h"

namespace cubicleos::core::verifier {

namespace {

/** Structural size of a ModRM-encoded operand (modrm + sib + disp). */
struct ModRmEnc {
    uint8_t structBytes = 1; ///< modrm byte, plus SIB when present
    uint8_t dispBytes = 0;
    uint8_t mod = 0;
    uint8_t reg = 0;
    uint8_t rm = 0;
};

std::optional<ModRmEnc>
parseModRm(std::span<const uint8_t> image, std::size_t pos)
{
    if (pos >= image.size())
        return std::nullopt;
    ModRmEnc enc;
    const uint8_t m = image[pos];
    enc.mod = m >> 6;
    enc.reg = (m >> 3) & 7;
    enc.rm = m & 7;
    if (enc.mod == 3)
        return enc;
    if (enc.rm == 4) { // SIB follows
        if (pos + 1 >= image.size())
            return std::nullopt;
        enc.structBytes = 2;
        const uint8_t base = image[pos + 1] & 7;
        if (enc.mod == 0 && base == 5)
            enc.dispBytes = 4;
    } else if (enc.mod == 0 && enc.rm == 5) {
        enc.dispBytes = 4; // RIP-relative
    }
    if (enc.mod == 1)
        enc.dispBytes = 1;
    else if (enc.mod == 2)
        enc.dispBytes = 4;
    return enc;
}

/** Reads a little-endian rel8/rel32 branch displacement. */
int32_t
readRel(std::span<const uint8_t> image, std::size_t pos, unsigned bytes)
{
    if (bytes == 1)
        return static_cast<int8_t>(image[pos]);
    uint32_t v = 0;
    for (unsigned i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(image[pos + i]) << (8 * i);
    return static_cast<int32_t>(v);
}

/** Shape of one opcode: operand encoding and immediate class. */
struct OpSpec {
    bool valid = false;
    bool hasModRm = false;
    /** 0, 1, 2, 4 bytes; kImmZ/kImmV resolve against prefixes. */
    int imm = 0;
    bool forbidden = false;
    bool branch = false;     ///< rel8/rel32 direct branch
    int branchBytes = 0;     ///< 1 or 4
    FlowKind flow = FlowKind::kSequential;
    const char *mnemonic = "insn";
};

constexpr int kImmZ = -1; ///< imm16/imm32 by operand size
constexpr int kImmV = -2; ///< imm16/imm32/imm64 (B8..BF)

OpSpec
specOneByte(uint8_t op)
{
    OpSpec s;
    s.valid = true;
    // The 00-3F ALU block: eight groups of eight; /0../3 take ModRM,
    // /4 imm8, /5 immZ, /6 and /7 are 64-bit-invalid (pop/push seg,
    // BCD adjusts) or prefixes/escape handled by the caller.
    if (op <= 0x3D && (op & 7) <= 5) {
        const uint8_t low = op & 7;
        if (low <= 3)
            s.hasModRm = true;
        else if (low == 4)
            s.imm = 1;
        else
            s.imm = kImmZ;
        s.mnemonic = "alu";
        return s;
    }
    if (op >= 0x50 && op <= 0x57) { s.mnemonic = "push"; return s; }
    if (op >= 0x58 && op <= 0x5F) { s.mnemonic = "pop"; return s; }
    if (op >= 0x70 && op <= 0x7F) {
        s.branch = true;
        s.branchBytes = 1;
        s.imm = 1;
        s.flow = FlowKind::kBranch;
        s.mnemonic = "jcc";
        return s;
    }
    if (op >= 0x91 && op <= 0x97) { s.mnemonic = "xchg"; return s; }
    // String ops; rep/repne arrive as legacy prefixes.
    if (op >= 0xA4 && op <= 0xAF && op != 0xA8 && op != 0xA9) {
        s.mnemonic = "string";
        return s;
    }
    if (op >= 0xB0 && op <= 0xB7) { s.imm = 1; s.mnemonic = "mov"; return s; }
    if (op >= 0xB8 && op <= 0xBF) {
        s.imm = kImmV;
        s.mnemonic = "mov";
        return s;
    }
    switch (op) {
      case 0x63: s.hasModRm = true; s.mnemonic = "movsxd"; return s;
      case 0x68: s.imm = kImmZ; s.mnemonic = "push"; return s;
      case 0x69: s.hasModRm = true; s.imm = kImmZ; s.mnemonic = "imul"; return s;
      case 0x6A: s.imm = 1; s.mnemonic = "push"; return s;
      case 0x6B: s.hasModRm = true; s.imm = 1; s.mnemonic = "imul"; return s;
      case 0x80: s.hasModRm = true; s.imm = 1; s.mnemonic = "grp1"; return s;
      case 0x81: s.hasModRm = true; s.imm = kImmZ; s.mnemonic = "grp1"; return s;
      case 0x83: s.hasModRm = true; s.imm = 1; s.mnemonic = "grp1"; return s;
      case 0x84: case 0x85: s.hasModRm = true; s.mnemonic = "test"; return s;
      case 0x86: case 0x87: s.hasModRm = true; s.mnemonic = "xchg"; return s;
      case 0x88: case 0x89: case 0x8A: case 0x8B:
        s.hasModRm = true; s.mnemonic = "mov"; return s;
      case 0x8D: s.hasModRm = true; s.mnemonic = "lea"; return s;
      case 0x8F: s.hasModRm = true; s.mnemonic = "pop"; return s;
      case 0x90: s.mnemonic = "nop"; return s;
      case 0x98: s.mnemonic = "cwde"; return s;
      case 0x99: s.mnemonic = "cdq"; return s;
      case 0xA8: s.imm = 1; s.mnemonic = "test"; return s;
      case 0xA9: s.imm = kImmZ; s.mnemonic = "test"; return s;
      // Group 2 shifts/rotates (rol..sar by imm8, 1 or cl).
      case 0xC0: s.hasModRm = true; s.imm = 1; s.mnemonic = "shift"; return s;
      case 0xC1: s.hasModRm = true; s.imm = 1; s.mnemonic = "shift"; return s;
      case 0xD0: case 0xD1: case 0xD2: case 0xD3:
        s.hasModRm = true; s.mnemonic = "shift"; return s;
      case 0xC2:
        s.imm = 2; s.flow = FlowKind::kTerminal; s.mnemonic = "ret";
        return s;
      case 0xC3: s.flow = FlowKind::kTerminal; s.mnemonic = "ret"; return s;
      case 0xC6: s.hasModRm = true; s.imm = 1; s.mnemonic = "mov"; return s;
      case 0xC7: s.hasModRm = true; s.imm = kImmZ; s.mnemonic = "mov"; return s;
      case 0xC9: s.mnemonic = "leave"; return s;
      case 0xCC: s.flow = FlowKind::kTerminal; s.mnemonic = "int3"; return s;
      case 0xCD: s.imm = 1; s.mnemonic = "int"; return s;
      case 0xE8:
        s.branch = true; s.branchBytes = 4; s.imm = 4;
        s.flow = FlowKind::kCall;
        s.mnemonic = "call";
        return s;
      case 0xE9:
        s.branch = true; s.branchBytes = 4; s.imm = 4;
        s.flow = FlowKind::kJump;
        s.mnemonic = "jmp";
        return s;
      case 0xEB:
        s.branch = true; s.branchBytes = 1; s.imm = 1;
        s.flow = FlowKind::kJump;
        s.mnemonic = "jmp";
        return s;
      case 0xF4: s.flow = FlowKind::kTerminal; s.mnemonic = "hlt"; return s;
      case 0xF6: case 0xF7: s.hasModRm = true; s.mnemonic = "grp3"; return s;
      case 0xFE: case 0xFF: s.hasModRm = true; s.mnemonic = "grp5"; return s;
      default:
        s.valid = false;
        return s;
    }
}

OpSpec
specTwoByte(uint8_t op)
{
    OpSpec s;
    s.valid = true;
    // SSE/SSE2 moves and unpacks (movups/movlps/movhps/unpck...,
    // movaps + conversions/comparisons, movd/movq/movdqa under their
    // 66/F3 prefixes). All plain ModRM operands; VEX forms are a
    // different encoding and stay undecodable.
    if (op >= 0x10 && op <= 0x17) { s.hasModRm = true; s.mnemonic = "ssemov"; return s; }
    if (op >= 0x28 && op <= 0x2F) { s.hasModRm = true; s.mnemonic = "ssemov"; return s; }
    if (op >= 0x40 && op <= 0x4F) { s.hasModRm = true; s.mnemonic = "cmov"; return s; }
    // Packed single/double arithmetic (sqrtps..maxps block).
    if (op >= 0x51 && op <= 0x5F) { s.hasModRm = true; s.mnemonic = "ssearith"; return s; }
    // punpck/packss/pcmpgt/movd/movdqa block.
    if (op >= 0x60 && op <= 0x6F) { s.hasModRm = true; s.mnemonic = "sse"; return s; }
    // Groups 12-14: packed shifts by imm8 (psrlw xmm, imm8, ...).
    if (op >= 0x71 && op <= 0x73) {
        s.hasModRm = true; s.imm = 1; s.mnemonic = "sseshift"; return s;
    }
    if (op >= 0x74 && op <= 0x76) { s.hasModRm = true; s.mnemonic = "pcmpeq"; return s; }
    if (op >= 0x80 && op <= 0x8F) {
        s.branch = true;
        s.branchBytes = 4;
        s.imm = 4;
        s.flow = FlowKind::kBranch;
        s.mnemonic = "jcc";
        return s;
    }
    if (op >= 0x90 && op <= 0x9F) { s.hasModRm = true; s.mnemonic = "setcc"; return s; }
    if (op >= 0xC8 && op <= 0xCF) { s.mnemonic = "bswap"; return s; }
    switch (op) {
      case 0x05: s.forbidden = true; s.mnemonic = "syscall"; return s;
      case 0x0B: s.flow = FlowKind::kTerminal; s.mnemonic = "ud2"; return s;
      case 0x1E: s.hasModRm = true; s.mnemonic = "endbr"; return s;
      case 0x1F: s.hasModRm = true; s.mnemonic = "nop"; return s;
      case 0x34: s.forbidden = true; s.mnemonic = "sysenter"; return s;
      case 0x70: s.hasModRm = true; s.imm = 1; s.mnemonic = "pshuf"; return s;
      case 0x7E: case 0x7F: s.hasModRm = true; s.mnemonic = "ssemov"; return s;
      case 0xA2: s.mnemonic = "cpuid"; return s;
      case 0xAF: s.hasModRm = true; s.mnemonic = "imul"; return s;
      case 0xB6: case 0xB7: s.hasModRm = true; s.mnemonic = "movzx"; return s;
      case 0xBE: case 0xBF: s.hasModRm = true; s.mnemonic = "movsx"; return s;
      case 0xC6: s.hasModRm = true; s.imm = 1; s.mnemonic = "shufps"; return s;
      case 0xD6: s.hasModRm = true; s.mnemonic = "ssemov"; return s;
      case 0xEF: s.hasModRm = true; s.mnemonic = "pxor"; return s;
      default:
        s.valid = false;
        return s;
    }
}

} // namespace

std::optional<Insn>
decodeAt(std::span<const uint8_t> image, std::size_t pos)
{
    const std::size_t n = image.size();
    if (pos >= n)
        return std::nullopt;

    std::size_t i = pos;
    bool opsize16 = false;
    bool rexW = false;

    // Legacy prefixes in any order, then an optional REX byte.
    while (i < n && i - pos < kMaxInsnLen) {
        const uint8_t b = image[i];
        if (b == 0x66) { opsize16 = true; ++i; continue; }
        if (b == 0x67 || b == 0xF0 || b == 0xF2 || b == 0xF3 ||
            b == 0x2E || b == 0x36 || b == 0x3E || b == 0x26 ||
            b == 0x64 || b == 0x65) {
            ++i;
            continue;
        }
        if ((b & 0xF0) == 0x40) { // REX
            rexW = (b & 0x08) != 0;
            ++i;
        }
        break;
    }
    if (i >= n || i - pos >= kMaxInsnLen)
        return std::nullopt;

    Insn insn;
    OpSpec spec;
    std::size_t opcodeLen = 1;
    const uint8_t op = image[i];

    if (op == 0xC5 || op == 0xC4) {
        // VEX prefix — always VEX in 64-bit mode (the LES/LDS forms
        // these opcodes had in 32-bit mode are invalid). The 2-byte
        // form (c5 RvvvvLpp) implies escape map 1 (0F); the 3-byte
        // form (c4 RXBmmmmm WvvvvLpp) selects the map explicitly, and
        // the map determines the length: map 2 (0F 38) never carries
        // an immediate, map 3 (0F 3A) always carries imm8.
        const std::size_t vexBytes = (op == 0xC5) ? 2 : 3;
        if (i + vexBytes >= n) // prefix bytes plus the opcode byte
            return std::nullopt;
        uint8_t map = 1;
        if (op == 0xC4) {
            map = image[i + 1] & 0x1F; // mmmmm escape-map selector
            if (map < 1 || map > 3)
                return std::nullopt; // reserved map
        }
        const uint8_t vop = image[i + vexBytes];
        opcodeLen = vexBytes + 1;
        if (map == 1) {
            // Reuse the 0F-map table, restricted to its plain
            // sequential ModRM entries: the branch/system/forbidden
            // rows have no VEX forms, so a VEX encoding of one is
            // undecodable rather than trusted with a guessed length.
            spec = specTwoByte(vop);
            if (!spec.valid || !spec.hasModRm || spec.branch ||
                spec.forbidden || spec.flow != FlowKind::kSequential)
                return std::nullopt;
        } else {
            spec.valid = true;
            spec.hasModRm = true;
            if (map == 3)
                spec.imm = 1;
            spec.mnemonic = "avx";
        }
        // VEX.pp replaces the legacy 66/F2/F3 prefixes and VEX.W
        // replaces REX.W for operand sizing; neither resizes any
        // immediate in the subset above (imm8 only).
        opsize16 = false;
        rexW = false;
    } else if (op == 0x62) {
        // EVEX prefix — always EVEX in 64-bit mode (BOUND is invalid).
        // Layout: 62 P0 P1 P2 opcode modrm... P0's low bits select the
        // escape map exactly like VEX.mmmmm, so the VEX map rules give
        // the length: map 1 reuses the 0F table restricted to plain
        // sequential ModRM entries, map 2 (0F 38) carries no
        // immediate, map 3 (0F 3A) carries imm8. disp8*N compression
        // rescales a disp8's meaning but not its width, so ModRM
        // sizing is unchanged. Encodings with reserved bits set are
        // not EVEX instructions and stay undecodable.
        if (i + 4 >= n) // 62 + P0 P1 P2 + at least the opcode byte
            return std::nullopt;
        const uint8_t p0 = image[i + 1];
        const uint8_t p1 = image[i + 2];
        const uint8_t map = p0 & 0x07; // mmm escape-map selector
        if (map < 1 || map > 3)
            return std::nullopt; // reserved / unsupported map (map5/6)
        if ((p0 & 0x08) != 0)    // P0[3] must be 0
            return std::nullopt;
        if ((p1 & 0x04) == 0)    // P1[2] is a fixed 1 bit
            return std::nullopt;
        const uint8_t vop = image[i + 4];
        opcodeLen = 5; // 62 P0 P1 P2 opcode
        if (map == 1) {
            spec = specTwoByte(vop);
            if (!spec.valid || !spec.hasModRm || spec.branch ||
                spec.forbidden || spec.flow != FlowKind::kSequential)
                return std::nullopt;
        } else {
            spec.valid = true;
            spec.hasModRm = true;
            if (map == 3)
                spec.imm = 1;
        }
        spec.mnemonic = "avx512";
        // EVEX.pp/EVEX.W replace the legacy prefixes, as with VEX.
        opsize16 = false;
        rexW = false;
    } else if (op == 0x0F) { // two-byte map
        if (i + 1 >= n)
            return std::nullopt;
        const uint8_t op2 = image[i + 1];
        opcodeLen = 2;

        if (op2 == 0x01) {
            // 0F 01 group: only the two isolation-relevant register
            // forms are in the subset; the rest (sgdt, sidt, ...) are
            // system instructions we conservatively refuse to decode.
            if (i + 2 >= n)
                return std::nullopt;
            const uint8_t m = image[i + 2];
            if (m != 0xEF && m != 0xD1)
                return std::nullopt;
            spec.valid = true;
            spec.hasModRm = true;
            spec.forbidden = true;
            spec.mnemonic = (m == 0xEF) ? "wrpkru" : "xsetbv";
        } else if (op2 == 0xAE) {
            // 0F AE group: xsave family (memory forms) and fences
            // (register forms). xrstor (/5 mem) restores XSAVE state
            // including PKRU, so it is forbidden.
            auto enc = parseModRm(image, i + 2);
            if (!enc)
                return std::nullopt;
            spec.valid = true;
            spec.hasModRm = true;
            if (enc->mod == 3) {
                if (enc->reg < 5) // only lfence/mfence/sfence decode
                    return std::nullopt;
                spec.mnemonic = "fence";
            } else {
                spec.forbidden = (enc->reg == 5);
                spec.mnemonic = spec.forbidden ? "xrstor" : "xsave";
            }
        } else {
            spec = specTwoByte(op2);
        }
    } else {
        spec = specOneByte(op);
    }
    if (!spec.valid)
        return std::nullopt;

    std::size_t len = (i - pos) + opcodeLen;
    std::size_t payload = len;

    if (spec.hasModRm) {
        auto enc = parseModRm(image, i + opcodeLen);
        if (!enc)
            return std::nullopt;
        len += enc->structBytes;
        payload = len;
        len += enc->dispBytes;
        // grp3 test r/m, imm carries an immediate on /0 and /1.
        if (spec.mnemonic[0] == 'g' && (op == 0xF6 || op == 0xF7) &&
            enc->reg <= 1) {
            spec.imm = (op == 0xF6) ? 1 : kImmZ;
        }
        // grp5 splits by /reg: call r/m falls through past the call
        // site; jmp r/m transfers to an unknowable target (indirect
        // sink for the reachability walk).
        if (op == 0xFF) {
            if (enc->reg == 2 || enc->reg == 3) {
                spec.flow = FlowKind::kIndirectCall;
                spec.mnemonic = "call";
            } else if (enc->reg == 4 || enc->reg == 5) {
                spec.flow = FlowKind::kIndirectJump;
                spec.mnemonic = "jmp";
            }
        }
    }

    int immBytes = spec.imm;
    if (immBytes == kImmZ)
        immBytes = opsize16 ? 2 : 4;
    else if (immBytes == kImmV)
        immBytes = rexW ? 8 : (opsize16 ? 2 : 4);
    len += static_cast<std::size_t>(immBytes);

    if (len > kMaxInsnLen || pos + len > n)
        return std::nullopt;

    insn.length = static_cast<uint8_t>(len);
    insn.payloadOff = static_cast<uint8_t>(payload);
    insn.forbidden = spec.forbidden;
    insn.flow = spec.flow;
    insn.mnemonic = spec.mnemonic;

    // int imm8: only vector 0x80 (the legacy Linux syscall gate) is
    // isolation-subverting; other vectors stay in the cubicle.
    if (op == 0xCD) {
        const uint8_t vec = image[pos + len - 1];
        if (vec == 0x80) {
            insn.forbidden = true;
            insn.mnemonic = "int80";
        }
    }

    if (spec.branch) {
        insn.isDirectBranch = true;
        insn.branchRel = readRel(
            image, pos + len - static_cast<std::size_t>(spec.branchBytes),
            static_cast<unsigned>(spec.branchBytes));
    }
    return insn;
}

} // namespace cubicleos::core::verifier
