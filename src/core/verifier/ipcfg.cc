#include "core/verifier/ipcfg.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "core/verifier/cfg.h"
#include "core/verifier/insn.h"

namespace cubicleos::core::verifier {

namespace {

/** Plausibility bound on any table: a larger count is a misparse. */
constexpr std::size_t kMaxTableEntries = std::size_t{1} << 16;

uint32_t
readLe32(std::span<const uint8_t> image, std::size_t pos)
{
    uint32_t v = 0;
    for (unsigned i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(image[pos + i]) << (8 * i);
    return v;
}

/** A reachable instruction span that decodes forbidden. */
struct ForbiddenSpan {
    std::size_t start = 0;
    std::size_t length = 0;
    const char *mnemonic = "insn";
};

bool
overlaps(const CodeFinding &f, const ForbiddenSpan &s)
{
    return f.offset < s.start + s.length &&
           s.start < f.offset + f.length;
}

} // namespace

JumpTableMatch
matchJumpTable(std::span<const uint8_t> image, std::size_t pos)
{
    JumpTableMatch m;
    const std::size_t n = image.size();
    std::size_t p = pos;

    // cmp rax, imm8/imm32 — the bound guard is always on rax (the
    // shortest encodings, 48 83 F8 ib and the rax-form 48 3D id).
    if (p + 4 > n || image[p] != 0x48)
        return m;
    std::size_t bound = 0;
    if (image[p + 1] == 0x83 && image[p + 2] == 0xF8) {
        if (image[p + 3] >= 0x80) // sign-extends negative: not a bound
            return m;
        bound = image[p + 3];
        p += 4;
    } else if (image[p + 1] == 0x3D) {
        if (p + 6 > n)
            return m;
        bound = readLe32(image, p + 2);
        p += 6;
    } else {
        return m;
    }
    if (bound + 1 > kMaxTableEntries)
        return m;

    // ja default — unsigned, so rax is confined to [0, bound] on the
    // dispatch path.
    if (p + 2 > n)
        return m;
    if (image[p] == 0x77) {
        p += 2;
    } else if (image[p] == 0x0F && p + 6 <= n && image[p + 1] == 0x87) {
        p += 6;
    } else {
        return m;
    }

    // lea L, [rip+disp32]: 48 8D /r with mod=00, rm=101. REX fixed at
    // 48 keeps every register in the low bank so the later ModRM rm
    // fields can name L without REX.B tracking.
    if (p + 7 > n || image[p] != 0x48 || image[p + 1] != 0x8D)
        return m;
    const uint8_t leaModRm = image[p + 2];
    if ((leaModRm >> 6) != 0 || (leaModRm & 7) != 5)
        return m;
    const uint8_t regL = (leaModRm >> 3) & 7;
    const auto disp = static_cast<int32_t>(readLe32(image, p + 3));
    const std::size_t leaEnd = p + 7;
    const int64_t base = static_cast<int64_t>(leaEnd) + disp;
    p = leaEnd;

    // movsxd D, dword [L + rax*4]: 48 63 /r, SIB scale=4, index=rax
    // (the guarded register), base=L.
    if (p + 4 > n || image[p] != 0x48 || image[p + 1] != 0x63)
        return m;
    const uint8_t mxModRm = image[p + 2];
    if ((mxModRm >> 6) != 0 || (mxModRm & 7) != 4)
        return m;
    const uint8_t regD = (mxModRm >> 3) & 7;
    const uint8_t sib = image[p + 3];
    if ((sib >> 6) != 2 || ((sib >> 3) & 7) != 0 || (sib & 7) != regL)
        return m;
    p += 4;

    // add L, D: 48 01 /r with mod=3, reg=D, rm=L.
    if (p + 3 > n || image[p] != 0x48 || image[p + 1] != 0x01)
        return m;
    const uint8_t addModRm = image[p + 2];
    if ((addModRm >> 6) != 3 || ((addModRm >> 3) & 7) != regD ||
        (addModRm & 7) != regL)
        return m;
    p += 3;

    // jmp L: FF /4 with mod=3, rm=L.
    if (p + 2 > n || image[p] != 0xFF)
        return m;
    const uint8_t jmpModRm = image[p + 1];
    if ((jmpModRm >> 6) != 3 || ((jmpModRm >> 3) & 7) != 4 ||
        (jmpModRm & 7) != regL)
        return m;
    const std::size_t jmpOff = p;
    p += 2;

    // The table itself: count 32-bit entries, each a target offset
    // relative to the table base. Any escape from the image voids the
    // match (the site stays unresolved rather than mis-resolved).
    const std::size_t count = bound + 1;
    if (base < 0 || static_cast<std::size_t>(base) >= n ||
        4 * count > n - static_cast<std::size_t>(base))
        return m;
    const auto tbase = static_cast<std::size_t>(base);
    std::vector<std::size_t> targets;
    targets.reserve(count);
    for (std::size_t k = 0; k < count; ++k) {
        const uint64_t t = tbase + readLe32(image, tbase + 4 * k);
        if (t >= n)
            return m;
        targets.push_back(static_cast<std::size_t>(t));
    }

    m.matched = true;
    m.idiomStart = pos;
    m.jmpOffset = jmpOff;
    m.idiomEnd = p;
    m.tableBase = tbase;
    m.count = count;
    m.targets = std::move(targets);
    return m;
}

LeaCallMatch
matchLeaCall(std::span<const uint8_t> image, std::size_t pos)
{
    LeaCallMatch m;
    const std::size_t n = image.size();
    // lea L, [rip+disp32] (48 8D /r, mod=00, rm=101) then call L
    // (FF /2, mod=3). REX fixed at 48: the 2-byte call cannot name
    // r8..r15 without REX.B, so high-bank leas never match.
    if (pos + 9 > n || image[pos] != 0x48 || image[pos + 1] != 0x8D)
        return m;
    const uint8_t leaModRm = image[pos + 2];
    if ((leaModRm >> 6) != 0 || (leaModRm & 7) != 5)
        return m;
    const uint8_t regL = (leaModRm >> 3) & 7;
    const auto disp = static_cast<int32_t>(readLe32(image, pos + 3));
    const std::size_t leaEnd = pos + 7;
    if (image[leaEnd] != 0xFF)
        return m;
    const uint8_t callModRm = image[leaEnd + 1];
    if ((callModRm >> 6) != 3 || ((callModRm >> 3) & 7) != 2 ||
        (callModRm & 7) != regL)
        return m;
    const int64_t target = static_cast<int64_t>(leaEnd) + disp;
    if (target < 0 || static_cast<std::size_t>(target) >= n)
        return m;
    m.matched = true;
    m.callOffset = leaEnd;
    m.idiomEnd = leaEnd + 2;
    m.target = static_cast<std::size_t>(target);
    return m;
}

VerifierReport
verifyImageInter(std::span<const uint8_t> image,
                 std::span<const std::size_t> entryPoints,
                 std::span<const EntryTable> tables)
{
    VerifierReport report = verifyImageFrom(image, entryPoints);
    ImageAudit &audit = report.audit;
    audit.ran = true;
    const std::size_t n = image.size();
    if (n == 0)
        return report;

    static constexpr std::size_t kDefaultEntry[] = {0};
    std::span<const std::size_t> entries =
        entryPoints.empty() ? std::span<const std::size_t>(kDefaultEntry)
                            : entryPoints;
    for (const std::size_t e : entries) {
        if (e >= n) // pass 2 already went opaque; nothing to refine
            return report;
    }

    // ---- Declared entry tables: the indirect-call target universe.
    std::vector<std::size_t> callUniverse;
    std::vector<uint8_t> isData(n, 0);
    auto markData = [&](std::size_t start, std::size_t len) {
        for (std::size_t b = start; b < start + len; ++b)
            isData[b] = 1;
    };
    for (const EntryTable &t : tables) {
        // A malformed table resolves nothing: the calls it should have
        // covered simply stay unresolved (conservative direction).
        if (t.count == 0 || t.count > kMaxTableEntries)
            continue;
        if (t.offset >= n || 4 * t.count > n - t.offset)
            continue;
        for (std::size_t k = 0; k < t.count; ++k) {
            const uint32_t e = readLe32(image, t.offset + 4 * k);
            if (e < n)
                callUniverse.push_back(e);
        }
        markData(t.offset, 4 * t.count);
    }
    std::sort(callUniverse.begin(), callUniverse.end());
    callUniverse.erase(
        std::unique(callUniverse.begin(), callUniverse.end()),
        callUniverse.end());

    // ---- Idiom scan: probe every byte offset (cheap first-byte
    // filter), so tables in code the linear sweep misparses are still
    // found; matching is byte-exact, so context cannot change what a
    // matched dispatch does.
    std::vector<JumpTableMatch> jumpTables;
    std::unordered_map<std::size_t, std::size_t> jtByJmp;
    std::unordered_map<std::size_t, LeaCallMatch> lcByCall;
    for (std::size_t o = 0; o + 4 <= n; ++o) {
        if (image[o] != 0x48)
            continue;
        const uint8_t b1 = image[o + 1];
        if (b1 == 0x83 || b1 == 0x3D) {
            JumpTableMatch jm = matchJumpTable(image, o);
            if (jm.matched && !jtByJmp.contains(jm.jmpOffset)) {
                jtByJmp.emplace(jm.jmpOffset, jumpTables.size());
                markData(jm.tableBase, 4 * jm.count);
                jumpTables.push_back(std::move(jm));
            }
        } else if (b1 == 0x8D) {
            LeaCallMatch lm = matchLeaCall(image, o);
            if (lm.matched)
                lcByCall.emplace(lm.callOffset, lm);
        }
    }

    // ---- Interprocedural walk (BFS, so recorded parents give the
    // shortest witness path). funcOf propagates the function
    // partition: call targets and image entries open functions,
    // every other edge stays in the caller's.
    constexpr int32_t kUnvisited = -2;
    constexpr int32_t kRoot = -1;
    std::vector<int32_t> parent(n, kUnvisited);
    std::vector<int32_t> funcOf(n, -1);
    std::deque<std::size_t> queue;
    std::vector<ForbiddenSpan> spans;
    std::vector<uint8_t> jtCompromised(jumpTables.size(), 0);
    bool opaqueFlow = false;
    std::size_t opaquePos = n;

    std::unordered_map<std::size_t, std::size_t> funcIdByEntry;
    auto functionFor = [&](std::size_t entry) -> int32_t {
        auto it = funcIdByEntry.find(entry);
        if (it != funcIdByEntry.end())
            return static_cast<int32_t>(it->second);
        const std::size_t id = audit.functions.size();
        funcIdByEntry.emplace(entry, id);
        FunctionAudit fn;
        fn.entry = entry;
        fn.reachable = true;
        audit.functions.push_back(fn);
        return static_cast<int32_t>(id);
    };

    // Sorted idiom interiors, for the guard-bypass check: a resolved
    // dispatch is only bounded when control enters through its cmp/ja
    // guard, so any edge into the interior from outside voids the
    // resolution.
    struct Interior {
        std::size_t start, end, idx;
    };
    std::vector<Interior> interiors;
    interiors.reserve(jumpTables.size());
    for (std::size_t k = 0; k < jumpTables.size(); ++k)
        interiors.push_back(Interior{jumpTables[k].idiomStart,
                                     jumpTables[k].idiomEnd, k});
    std::sort(interiors.begin(), interiors.end(),
              [](const Interior &a, const Interior &b) {
                  return a.start < b.start;
              });
    auto checkInterior = [&](std::size_t from, std::size_t to) {
        // First interior starting after `to`, then step back once:
        // idiom interiors never nest (each is one straight-line code
        // run), so one predecessor candidate suffices.
        auto it = std::upper_bound(
            interiors.begin(), interiors.end(), to,
            [](std::size_t v, const Interior &r) { return v < r.start; });
        if (it == interiors.begin())
            return;
        --it;
        if (to < it->end && to != it->start &&
            (from < it->start || from >= it->end))
            jtCompromised[it->idx] = 1;
    };

    // callTarget: the edge opens a function (direct or resolved call
    // target); otherwise the successor inherits `func`.
    auto pushEdge = [&](std::size_t from, int64_t target, int32_t func,
                        bool callTarget = false) {
        if (target < 0 || static_cast<std::size_t>(target) >= n)
            return; // external sink (import stubs / image end)
        const auto t = static_cast<std::size_t>(target);
        if (!interiors.empty())
            checkInterior(from, t);
        if (parent[t] != kUnvisited)
            return;
        parent[t] = static_cast<int32_t>(from);
        funcOf[t] = callTarget ? functionFor(t) : func;
        queue.push_back(t);
    };

    for (const std::size_t e : entries) {
        if (parent[e] != kUnvisited)
            continue;
        parent[e] = kRoot;
        funcOf[e] = functionFor(e);
        queue.push_back(e);
    }

    while (!queue.empty()) {
        const std::size_t pos = queue.front();
        queue.pop_front();
        const int32_t func = funcOf[pos];

        const auto insn = decodeAt(image, pos);
        if (!insn) {
            // Reachable bytes we cannot decode: unresolved flow, same
            // policy as an unresolved indirect jump. Recorded, never
            // silently skipped.
            opaqueFlow = true;
            opaquePos = std::min(opaquePos, pos);
            continue;
        }
        const std::size_t end = pos + insn->length;
        if (func >= 0)
            audit.functions[static_cast<std::size_t>(func)].insnCount++;
        if (insn->forbidden) {
            spans.push_back(
                ForbiddenSpan{pos, insn->length, insn->mnemonic});
            continue;
        }

        const int64_t target =
            static_cast<int64_t>(end) + insn->branchRel;
        switch (insn->flow) {
          case FlowKind::kSequential:
            pushEdge(pos, static_cast<int64_t>(end), func);
            break;
          case FlowKind::kBranch:
            pushEdge(pos, target, func);
            pushEdge(pos, static_cast<int64_t>(end), func);
            break;
          case FlowKind::kJump:
            pushEdge(pos, target, func);
            break;
          case FlowKind::kCall:
            pushEdge(pos, target, func, /*callTarget=*/true);
            pushEdge(pos, static_cast<int64_t>(end), func);
            break;
          case FlowKind::kIndirectCall: {
            IndirectSiteRecord rec;
            rec.offset = pos;
            rec.isJump = false;
            if (auto it = lcByCall.find(pos); it != lcByCall.end()) {
                rec.resolved = true;
                rec.how = "lea-call";
                rec.targets.push_back(it->second.target);
                pushEdge(pos, static_cast<int64_t>(it->second.target),
                         func, /*callTarget=*/true);
            } else if (!callUniverse.empty()) {
                // CFI-style: an indirect call goes somewhere in the
                // declared address-taken set.
                rec.resolved = true;
                rec.how = "entry-table";
                rec.targets = callUniverse;
                for (const std::size_t t : callUniverse)
                    pushEdge(pos, static_cast<int64_t>(t), func,
                             /*callTarget=*/true);
            }
            rec.function = (func >= 0)
                ? audit.functions[static_cast<std::size_t>(func)].entry
                : 0;
            audit.indirectSites.push_back(std::move(rec));
            pushEdge(pos, static_cast<int64_t>(end), func);
            break;
          }
          case FlowKind::kIndirectJump: {
            IndirectSiteRecord rec;
            rec.offset = pos;
            rec.isJump = true;
            if (auto it = jtByJmp.find(pos); it != jtByJmp.end()) {
                const JumpTableMatch &jm = jumpTables[it->second];
                rec.resolved = true;
                rec.how = "jump-table";
                rec.tableBase = jm.tableBase;
                rec.targets = jm.targets;
                std::sort(rec.targets.begin(), rec.targets.end());
                rec.targets.erase(std::unique(rec.targets.begin(),
                                              rec.targets.end()),
                                  rec.targets.end());
                for (const std::size_t t : jm.targets)
                    pushEdge(pos, static_cast<int64_t>(t), func);
            }
            rec.function = (func >= 0)
                ? audit.functions[static_cast<std::size_t>(func)].entry
                : 0;
            audit.indirectSites.push_back(std::move(rec));
            break;
          }
          case FlowKind::kTerminal:
            break;
        }
    }

    // ---- Guard-bypass downgrade: a compromised dispatch is not
    // bounded by its table after all.
    for (IndirectSiteRecord &rec : audit.indirectSites) {
        if (!rec.isJump || !rec.resolved)
            continue;
        auto it = jtByJmp.find(rec.offset);
        if (it != jtByJmp.end() && jtCompromised[it->second]) {
            rec.resolved = false;
            rec.how = "";
            rec.targets.clear();
        }
    }

    std::sort(audit.indirectSites.begin(), audit.indirectSites.end(),
              [](const IndirectSiteRecord &a,
                 const IndirectSiteRecord &b) {
                  return a.offset < b.offset;
              });
    std::size_t firstUnresolvedJump = n;
    for (const IndirectSiteRecord &rec : audit.indirectSites) {
        if (rec.resolved) {
            audit.resolvedSites++;
            continue;
        }
        audit.unresolvedSites++;
        if (rec.isJump)
            firstUnresolvedJump = std::min(firstUnresolvedJump,
                                           rec.offset);
        for (FunctionAudit &fn : audit.functions) {
            if (fn.entry == rec.function) {
                fn.unresolvedSites++;
                break;
            }
        }
    }
    std::sort(audit.functions.begin(), audit.functions.end(),
              [](const FunctionAudit &a, const FunctionAudit &b) {
                  return a.entry < b.entry;
              });
    audit.functionCount = audit.functions.size();

    // ---- Finding refinement. Resolved edges extend the reachable
    // set, so spans found here upgrade pass-2 verdicts; then the
    // unresolved-jump policy: while any reachable indirect *jump*
    // stays unresolved (or reachable bytes stay undecodable), no
    // forbidden byte sequence in the image is provably dead, so every
    // non-rejecting finding escalates to kIndirectReachable.
    for (CodeFinding &f : report.findings) {
        for (const ForbiddenSpan &s : spans) {
            if (overlaps(f, s)) {
                f.cls = FindingClass::kAligned;
                break;
            }
        }
    }
    for (const ForbiddenSpan &s : spans) {
        bool reported = false;
        for (const CodeFinding &f : report.findings) {
            if (f.cls == FindingClass::kAligned && overlaps(f, s)) {
                reported = true;
                break;
            }
        }
        if (!reported) {
            report.findings.push_back(CodeFinding{
                s.start, s.length, s.mnemonic, FindingClass::kAligned});
        }
    }
    const bool unresolvedJumpFlow =
        opaqueFlow || firstUnresolvedJump < n;
    if (unresolvedJumpFlow) {
        for (CodeFinding &f : report.findings) {
            if (!f.rejecting())
                f.cls = FindingClass::kIndirectReachable;
        }
    }
    std::sort(report.findings.begin(), report.findings.end(),
              [](const CodeFinding &a, const CodeFinding &b) {
                  return a.offset < b.offset;
              });

    // ---- Shortest witness path per rejecting finding: the BFS
    // parent chain from an entry point to the forbidden instruction,
    // or — for kIndirectReachable — to the unresolved site (or the
    // first undecodable reachable byte) that voids the deadness proof.
    auto chainTo = [&](std::size_t pos) {
        std::vector<std::size_t> steps;
        int64_t cur = static_cast<int64_t>(pos);
        while (cur >= 0 && steps.size() <= n) {
            steps.push_back(static_cast<std::size_t>(cur));
            if (parent[static_cast<std::size_t>(cur)] == kRoot)
                break;
            cur = parent[static_cast<std::size_t>(cur)];
            if (cur == kUnvisited)
                return std::vector<std::size_t>{};
        }
        std::reverse(steps.begin(), steps.end());
        return steps;
    };
    constexpr std::size_t kMaxWitnesses = 16;
    for (const CodeFinding &f : report.findings) {
        if (!f.rejecting() ||
            audit.witnessPaths.size() >= kMaxWitnesses)
            continue;
        WitnessPath w;
        w.findingOffset = f.offset;
        if (f.cls == FindingClass::kIndirectReachable) {
            const std::size_t cause = (firstUnresolvedJump < n)
                ? firstUnresolvedJump
                : opaquePos;
            if (cause < n)
                w.steps = chainTo(cause);
        } else {
            for (const ForbiddenSpan &s : spans) {
                if (overlaps(f, s)) {
                    w.steps = chainTo(s.start);
                    break;
                }
            }
        }
        if (!w.steps.empty())
            audit.witnessPaths.push_back(std::move(w));
    }

    // ---- Coverage re-sweep with the identified table bytes excluded:
    // table data is *covered* (we know exactly what it is), so decode
    // coverage reflects genuinely unexplained bytes only.
    std::size_t decoded = 0;
    std::size_t undecodable = 0;
    std::size_t insnCount = 0;
    std::size_t tableBytes = 0;
    std::size_t firstUndec = n;
    std::size_t pos = 0;
    while (pos < n) {
        if (isData[pos]) {
            tableBytes++;
            pos++;
            continue;
        }
        const auto insn = decodeAt(image, pos);
        bool crossesData = false;
        if (insn) {
            for (std::size_t b = pos; b < pos + insn->length; ++b) {
                if (isData[b]) {
                    crossesData = true;
                    break;
                }
            }
        }
        if (!insn || crossesData) {
            undecodable++;
            firstUndec = std::min(firstUndec, pos);
            pos++;
            continue;
        }
        insnCount++;
        decoded += insn->length;
        pos += insn->length;
    }
    report.decodedBytes = decoded + tableBytes;
    report.insnCount = insnCount;
    report.undecodableBytes = undecodable;
    report.firstUndecodable = (undecodable > 0) ? firstUndec : n;
    audit.tableBytes = tableBytes;
    return report;
}

} // namespace cubicleos::core::verifier
