#include "core/verifier/cfg.h"

#include <algorithm>
#include <vector>

#include "core/verifier/insn.h"
#include "core/verifier/scanner.h"

namespace cubicleos::core::verifier {

namespace {

/** A reachable instruction span that decodes forbidden. */
struct ForbiddenSpan {
    std::size_t start = 0;
    std::size_t length = 0;
    const char *mnemonic = "insn";
};

bool
overlaps(const CodeFinding &f, const ForbiddenSpan &s)
{
    return f.offset < s.start + s.length &&
           s.start < f.offset + f.length;
}

} // namespace

VerifierReport
verifyImageFrom(std::span<const uint8_t> image,
                std::span<const std::size_t> entryPoints)
{
    VerifierReport report = verifyImage(image);
    CfgSummary &cfg = report.cfg;
    const std::size_t n = image.size();
    cfg.ran = true;
    cfg.firstOpaque = n;
    cfg.entryCount = entryPoints.size();
    if (n == 0)
        return report;

    // An image that names no entry points exports its base offset.
    static constexpr std::size_t kDefaultEntry[] = {0};
    std::span<const std::size_t> entries =
        entryPoints.empty() ? std::span<const std::size_t>(kDefaultEntry)
                            : entryPoints;
    cfg.entryCount = entries.size();

    std::vector<std::size_t> work;
    for (const std::size_t e : entries) {
        if (e >= n) {
            // A broken export table leaves us nothing to prove: keep
            // the conservative pass-1 classes.
            cfg.opaque = true;
            cfg.firstOpaque = std::min(cfg.firstOpaque, e);
            return report;
        }
        work.push_back(e);
    }

    std::vector<uint8_t> visitedStart(n, 0);  // walked boundaries
    std::vector<uint8_t> reachableByte(n, 0); // union of insn spans
    std::vector<ForbiddenSpan> forbiddenSpans;

    // A direct edge out of the image is an external sink (imports go
    // through relocated stubs); so is falling off the image end.
    auto pushEdge = [&](int64_t target) {
        if (target < 0 || static_cast<std::size_t>(target) >= n) {
            cfg.externalTargets++;
            return;
        }
        work.push_back(static_cast<std::size_t>(target));
    };

    while (!work.empty()) {
        const std::size_t pos = work.back();
        work.pop_back();
        if (visitedStart[pos])
            continue;
        visitedStart[pos] = 1;

        const auto insn = decodeAt(image, pos);
        if (!insn) {
            // Reachable bytes we cannot decode: the CFG has a hole, so
            // no unreachability claim downstream of here is sound.
            // Abort the refinement; pass-1 classes stand.
            cfg.opaque = true;
            cfg.firstOpaque = pos;
            return report;
        }

        const std::size_t end = pos + insn->length;
        cfg.reachableInsns++;
        for (std::size_t b = pos; b < end; ++b)
            reachableByte[b] = 1;
        if (insn->forbidden) {
            // The walk stops here: the load is already lost, and the
            // instruction's behaviour (trap or PKRU write) makes its
            // architectural fall-through irrelevant.
            forbiddenSpans.push_back(
                ForbiddenSpan{pos, insn->length, insn->mnemonic});
            continue;
        }

        const int64_t target =
            static_cast<int64_t>(end) + insn->branchRel;
        switch (insn->flow) {
          case FlowKind::kSequential:
            pushEdge(static_cast<int64_t>(end));
            break;
          case FlowKind::kBranch:
            cfg.directBranches++;
            pushEdge(target);
            pushEdge(static_cast<int64_t>(end));
            break;
          case FlowKind::kJump:
            cfg.directBranches++;
            pushEdge(target);
            break;
          case FlowKind::kCall:
            cfg.directBranches++;
            pushEdge(target);
            pushEdge(static_cast<int64_t>(end));
            break;
          case FlowKind::kIndirectCall:
            cfg.indirectSites++;
            pushEdge(static_cast<int64_t>(end));
            break;
          case FlowKind::kIndirectJump:
            // Sink for this pass; pass 3 (ipcfg.cc) resolves the
            // jump-table idiom and classifies the residue.
            cfg.indirectJumps++;
            break;
          case FlowKind::kTerminal:
            cfg.terminals++;
            break;
        }
    }

    for (std::size_t b = 0; b < n; ++b)
        cfg.reachableBytes += reachableByte[b];

    // Refine pass-1 classes against the reachable set. A finding that
    // overlaps a reachable forbidden span is executed from an entry
    // point: hard reject. Any other rejecting finding sits wholly in
    // code no direct path reaches: downgrade to report-only. Embedded
    // findings can only be *upgraded* (an entry point may land right
    // on a payload constant).
    for (CodeFinding &f : report.findings) {
        bool hit = false;
        for (const ForbiddenSpan &s : forbiddenSpans) {
            if (overlaps(f, s)) {
                hit = true;
                break;
            }
        }
        if (hit)
            f.cls = FindingClass::kAligned;
        else if (f.cls != FindingClass::kEmbedded)
            f.cls = FindingClass::kUnreachable;
    }

    // Safety net: a reachable forbidden instruction the byte-grep
    // somehow missed still rejects the image.
    for (const ForbiddenSpan &s : forbiddenSpans) {
        bool reported = false;
        for (const CodeFinding &f : report.findings) {
            if (f.cls == FindingClass::kAligned && overlaps(f, s)) {
                reported = true;
                break;
            }
        }
        if (!reported) {
            report.findings.push_back(CodeFinding{
                s.start, s.length, s.mnemonic, FindingClass::kAligned});
        }
    }
    std::sort(report.findings.begin(), report.findings.end(),
              [](const CodeFinding &a, const CodeFinding &b) {
                  return a.offset < b.offset;
              });
    return report;
}

} // namespace cubicleos::core::verifier
