/**
 * @file
 * Error types raised by the CubicleOS trusted components.
 */

#ifndef CUBICLEOS_CORE_ERRORS_H_
#define CUBICLEOS_CORE_ERRORS_H_

#include <cstdint>
#include <stdexcept>
#include <string>

#include "core/ids.h"

namespace cubicleos::core {

/**
 * Verdict value delivered to a caller whose cross-call (or batched
 * CallRing slot) was unwound because the callee cubicle died. Mirrored
 * by the porting layers as libos::VfsErr::kErrPeerFault and
 * libos::NetErr::kNetPeerFault; -131 (ENOTRECOVERABLE) collides with
 * neither error range.
 */
inline constexpr int64_t kPeerFaultVerdict = -131;

/** Misuse of the window API (non-owner management, bad wid, ...). */
class WindowError : public std::runtime_error {
  public:
    explicit WindowError(const std::string &what)
        : std::runtime_error("window error: " + what) {}
};

/** The loader refused an image or ran out of resources. */
class LoaderError : public std::runtime_error {
  public:
    explicit LoaderError(const std::string &what)
        : std::runtime_error("loader error: " + what) {}
};

/**
 * The load-time verifier rejected an image: a forbidden instruction
 * sequence is reachable (instruction-aligned or misaligned-reachable;
 * see core/verifier). A LoaderError subtype so callers treating every
 * load refusal uniformly keep working.
 */
class VerifierError : public LoaderError {
  public:
    explicit VerifierError(const std::string &what) : LoaderError(what) {}
};

/** Symbol resolution failure (unknown component/symbol, bad signature). */
class LinkError : public std::runtime_error {
  public:
    explicit LinkError(const std::string &what)
        : std::runtime_error("link error: " + what) {}
};

/** Control-flow-integrity violation in cross-cubicle calls. */
class CfiError : public std::runtime_error {
  public:
    explicit CfiError(const std::string &what)
        : std::runtime_error("CFI violation: " + what) {}
};

/**
 * A cross-call's callee cubicle is dead or draining (lifecycle
 * subsystem, DESIGN.md §15). Thrown by CrossCallGuard on entry to a
 * non-live cubicle and by the fault/heap paths when a victim thread is
 * being unwound; porting layers catch it and return kPeerFaultVerdict
 * to their callers instead of crashing the deployment.
 */
class PeerFault : public std::runtime_error {
  public:
    PeerFault(Cid peer, const std::string &what)
        : std::runtime_error("peer fault: " + what), peer_(peer)
    {
    }

    /** The dead/draining cubicle the call was headed into. */
    Cid peer() const { return peer_; }

  private:
    Cid peer_;
};

/** Out of memory in the monitor's page pool or a cubicle heap. */
class OutOfMemory : public std::runtime_error {
  public:
    explicit OutOfMemory(const std::string &what)
        : std::runtime_error("out of memory: " + what) {}
};

} // namespace cubicleos::core

#endif // CUBICLEOS_CORE_ERRORS_H_
