#include "core/system.h"

#include <algorithm>
#include <atomic>
#include <cassert>

#include "core/lifecycle.h"
#include "core/verifier/audit.h"

namespace cubicleos::core {

namespace {

/** Monotonic serial so TLS entries never alias across System lifetimes. */
std::atomic<uint64_t> g_system_serial{1};

struct TlsEntry {
    uint64_t serial;
    std::unique_ptr<ThreadCtx> ctx;
};

thread_local std::vector<TlsEntry> tls_entries;
thread_local uint64_t tls_cached_serial = 0;
thread_local ThreadCtx *tls_cached_ctx = nullptr;

} // namespace

// ----------------------------------------------------------------------
// CrossCallGuard: the cross-cubicle call trampoline (paper §5.5)
// ----------------------------------------------------------------------

CrossCallGuard::CrossCallGuard(System &sys, ThreadCtx &ctx, Cid callee)
    : sys_(sys), ctx_(ctx), caller_(ctx.current), savedPkru_(ctx.pkru)
{
    // Lifecycle gate (DESIGN.md §15): increment-then-check pairs with
    // destroyCubicle's mark-then-wait. Both sides are seq_cst, so in
    // the total order either the destroyer's kDraining store precedes
    // our life load (we back out and refuse), or our increment
    // precedes the destroyer's in-flight read (it waits for us).
    // Relaxed ordering would admit the store-buffering interleaving
    // where the destroyer reads 0 while we read kLive.
    if (callee < sys.monitor().cubicleCount()) {
        Cubicle &cub = sys.monitor().cubicle(callee);
        cub.inFlight.fetch_add(1);
        const auto state = static_cast<LifeState>(cub.life.load());
        if (state != LifeState::kLive) {
            cub.inFlight.fetch_sub(1);
            sys.stats().countUnwound();
            lifecycle::trace("refused entry into %s cubicle %s",
                             lifeStateName(state), cub.name.c_str());
            throw PeerFault(callee, "cross-call into " +
                                        std::string(lifeStateName(state)) +
                                        " cubicle '" + cub.name + "'");
        }
        tracked_ = true;
    }

    const IsolationMode mode = sys.mode();
    if (mode >= IsolationMode::kNoMpk) {
        // Trampoline bookkeeping + per-cubicle stack switch.
        sys.clock().charge(hw::cost::kTrampoline + hw::cost::kStackSwitch);
    }
    if (mode >= IsolationMode::kNoAcl) {
        // Tag virtualisation: stamp the callee's LRU clock and bind it
        // a physical tag if it is parked, BEFORE computing its PKRU —
        // pkruFor never allows the parked tag.
        sys.monitor().noteSwitch(callee);
        // Guard-page wrpkru (enables the trampoline in the monitor's
        // cubicle) + the trampoline's wrpkru to the callee's key set.
        sys.clock().charge(2 * hw::cost::kWrpkru);
        sys.stats().countWrpkru(2);
        ctx.pkru = sys.monitor().pkruFor(callee);
        ctx.keyEpoch = sys.monitor().keyEpoch();
    }
    ctx.callStack.push_back(caller_);
    ctx.current = callee;
}

CrossCallGuard::~CrossCallGuard()
{
    const Cid callee = ctx_.current;

    // Return CFI: returns must unwind through the trampoline that made
    // the call, back to the recorded caller.
    assert(!ctx_.callStack.empty() && ctx_.callStack.back() == caller_ &&
           "cross-cubicle return CFI violated");
    ctx_.callStack.pop_back();
    ctx_.current = caller_;

    const IsolationMode mode = sys_.mode();
    if (mode >= IsolationMode::kNoAcl) {
        sys_.clock().charge(2 * hw::cost::kWrpkru);
        sys_.stats().countWrpkru(2);
        ctx_.pkru = savedPkru_;
    }
    if (mode >= IsolationMode::kNoMpk) {
        sys_.clock().charge(hw::cost::kTrampoline +
                            hw::cost::kStackSwitch);
    }

    // Drop the in-flight ref last: once the counter reads zero the
    // destroyer may reclaim, so this thread must be fully out first.
    if (tracked_)
        sys_.monitor().cubicle(callee).inFlight.fetch_sub(1);
}

// ----------------------------------------------------------------------
// CallRing: batched cross-cubicle submission (io_uring shape)
// ----------------------------------------------------------------------

std::size_t
CallRing::flush()
{
    if (count_ == 0)
        return 0;
    const std::size_t n = count_;
    // Mirror crossCall's fast paths: shared callees and the Unikraft
    // baseline never involve the runtime TCB, and calls within one
    // cubicle are plain calls.
    if (shared_ || sys_.mode() == IsolationMode::kUnikraft) {
        runAll();
        return n;
    }
    ThreadCtx &ctx = sys_.currentCtx();
    if (ctx.current == callee_) {
        runAll();
        return n;
    }
    // Dead callee: fail the whole batch as verdicts without paying for
    // a doomed switch. The guard would refuse anyway; this is the
    // cheap path when the submitter races a destroy.
    if (!sys_.monitor().cubicleAlive(callee_)) {
        faultAll();
        return n;
    }
    // Edge accounting stays per logical call — Fig. 5 counts calls,
    // not switches. Only the switch itself is amortised.
    for (std::size_t i = 0; i < n; ++i)
        sys_.stats().countCall(ctx.current, callee_);
    sys_.stats().countRingFlush(n);
    try {
        CrossCallGuard guard(sys_, ctx, callee_);
        runAll();
    } catch (const PeerFault &) {
        // The guard refused entry (callee died between the pre-check
        // and the switch): the batch never ran, so every slot gets a
        // fault verdict. The guard's throw site already counted one
        // unwound call for itself.
        faultAll();
    }
    return n;
}

// ----------------------------------------------------------------------
// System
// ----------------------------------------------------------------------

System::System(SystemConfig cfg)
    : stats_(), monitor_(cfg, &stats_), mode_(cfg.mode),
      serial_(g_system_serial.fetch_add(1))
{
}

System::~System()
{
    // Detach heap page sources that route through components: export
    // slots die before the monitor's cubicles, so a heap destructor
    // must not cross-call into them. Chunks go down with the pool.
    for (Cid cid = 0; cid < static_cast<Cid>(monitor_.cubicleCount());
         ++cid) {
        Cubicle &cub = monitor_.cubicle(cid);
        if (cub.heap) {
            MutexLock lock(cub.heapMu);
            cub.heap->setSource(
                [](std::size_t) { return mem::PageRange{}; }, nullptr);
        }
    }

    // Invalidate this thread's cache; other threads' stale entries are
    // harmless because serials are never reused.
    if (tls_cached_serial == serial_) {
        tls_cached_serial = 0;
        tls_cached_ctx = nullptr;
    }
    std::erase_if(tls_entries,
                  [this](const TlsEntry &e) { return e.serial == serial_; });
}

ThreadCtx &
System::currentCtx()
{
    if (tls_cached_serial == serial_)
        return *tls_cached_ctx;
    for (auto &e : tls_entries) {
        if (e.serial == serial_) {
            tls_cached_serial = serial_;
            tls_cached_ctx = e.ctx.get();
            return *e.ctx;
        }
    }
    tls_entries.push_back(TlsEntry{serial_, std::make_unique<ThreadCtx>()});
    tls_cached_serial = serial_;
    tls_cached_ctx = tls_entries.back().ctx.get();
    return *tls_cached_ctx;
}

Component &
System::addComponent(std::unique_ptr<Component> comp)
{
    if (booted_)
        throw LoaderError("cannot add components after boot");
    componentNames_.push_back(comp->spec().name);
    components_.push_back(std::move(comp));
    return *components_.back();
}

void
System::boot()
{
    if (booted_)
        throw LoaderError("system already booted");

    // Loader: every component into its own cubicle, except colocated
    // ones, which join an earlier component's cubicle (coarser
    // partitioning, paper Fig. 9).
    for (auto &comp : components_) {
        ComponentSpec spec = comp->spec();
        comp->sys_ = this;
        if (!comp->colocationOverride().empty())
            spec.colocateWith = comp->colocationOverride();
        if (!spec.colocateWith.empty()) {
            Cid host = kNoCubicle;
            for (auto &other : components_) {
                if (other->self_ != kNoCubicle &&
                    monitor_.cubicle(other->self_).name ==
                        spec.colocateWith) {
                    host = other->self_;
                }
            }
            if (host == kNoCubicle) {
                throw LoaderError("colocation target '" +
                                  spec.colocateWith +
                                  "' not loaded before '" + spec.name +
                                  "'");
            }
            comp->self_ = host;
            continue;
        }
        comp->self_ = monitor_.loadComponent(spec);
    }

    // Builder: collect public entry points; each export slot is the
    // software analogue of a generated trampoline thunk.
    for (auto &comp : components_) {
        Exporter exp(comp->self_, comp->spec().kind, &exports_);
        comp->registerExports(exp);
    }

    booted_ = true;

    // Init hooks, each inside its own cubicle, in registration order
    // (components list dependencies first, like Unikraft's link order).
    for (auto &comp : components_) {
        runAs(comp->self_, [&] { comp->init(); });
    }

    // Strict mode: init hooks have wired windows and heap sources, so
    // the snapshot now shows the deployment's real topology. Refuse to
    // hand it to the application if the linter finds anything at
    // warning severity or above. At AuditLevel::kStrict the dataflow
    // least-privilege rules join the gate — that asserts init itself
    // exercised every grant; kReport runs them for the counters only.
    if (config().strictVerify) {
        std::vector<verifier::LintFinding> findings = lintWiring();
        if (config().auditLevel != AuditLevel::kOff) {
            std::vector<verifier::LintFinding> audit =
                verifier::auditWiring(wiringSnapshot());
            stats_.countAuditRun(audit.size());
            if (config().auditLevel == AuditLevel::kStrict) {
                findings.insert(findings.end(),
                                std::make_move_iterator(audit.begin()),
                                std::make_move_iterator(audit.end()));
            }
        }
        if (!verifier::lintClean(findings)) {
            std::string msg =
                "strict verify: isolation lint failed at boot:";
            for (const verifier::LintFinding &f : findings) {
                if (f.severity < verifier::LintSeverity::kWarning)
                    continue;
                msg += "\n  [";
                msg += verifier::lintSeverityName(f.severity);
                msg += "] ";
                msg += verifier::lintRuleName(f.rule);
                msg += ": ";
                msg += f.message;
            }
            throw LoaderError(msg);
        }
    }
}

Cid
System::cidOf(std::string_view name) const
{
    // Component names resolve to the cubicle they were loaded into;
    // colocated components resolve to their host cubicle.
    for (std::size_t i = 0; i < components_.size(); ++i) {
        if (componentNames_[i] == name &&
            components_[i]->self_ != kNoCubicle) {
            return components_[i]->self_;
        }
    }
    throw LinkError("unknown component '" + std::string(name) + "'");
}

Component &
System::componentAt(Cid cid)
{
    for (auto &comp : components_) {
        if (comp->self_ == cid)
            return *comp;
    }
    throw LinkError("no component in cubicle " + std::to_string(cid));
}

verifier::WiringSnapshot
System::wiringSnapshot() const
{
    verifier::WiringSnapshot snap = monitor_.snapshotWiring();
    snap.exports.reserve(exports_.size());
    for (const ExportSlot &slot : exports_) {
        snap.exports.push_back(verifier::ExportWiring{
            slot.name, slot.owner, slot.ownerKind,
            verifier::signaturePassesPointers(slot.sigName)});
    }
    return snap;
}

std::vector<verifier::LintFinding>
System::lintWiring()
{
    std::vector<verifier::LintFinding> findings =
        verifier::lintWiring(wiringSnapshot());
    stats_.countLintRun(findings.size());
    return findings;
}

std::vector<verifier::LintFinding>
System::auditIsolation()
{
    const verifier::WiringSnapshot snap = wiringSnapshot();
    std::vector<verifier::LintFinding> findings =
        verifier::lintWiring(snap);
    stats_.countLintRun(findings.size());
    std::vector<verifier::LintFinding> audit = verifier::auditWiring(snap);
    stats_.countAuditRun(audit.size());
    findings.insert(findings.end(),
                    std::make_move_iterator(audit.begin()),
                    std::make_move_iterator(audit.end()));
    return findings;
}

std::string
System::auditJson()
{
    const verifier::WiringSnapshot snap = wiringSnapshot();
    std::vector<verifier::LintFinding> findings =
        verifier::lintWiring(snap);
    std::vector<verifier::LintFinding> audit = verifier::auditWiring(snap);
    findings.insert(findings.end(),
                    std::make_move_iterator(audit.begin()),
                    std::make_move_iterator(audit.end()));
    std::vector<verifier::ImageAuditView> images;
    const std::size_t count = monitor_.cubicleCount();
    images.reserve(count);
    for (Cid cid = 0; cid < static_cast<Cid>(count); ++cid) {
        images.push_back(verifier::ImageAuditView{
            monitor_.cubicle(cid).name, &monitor_.verifierReport(cid)});
    }
    return verifier::auditReportJson(snap, images, findings);
}

const ExportSlot &
System::findSlot(std::string_view comp_name, std::string_view fn_name,
                 const char *sig_name) const
{
    if (!booted_)
        throw LinkError("resolution before boot");
    const Cid cid = cidOf(comp_name);
    for (const auto &slot : exports_) {
        if (slot.owner == cid && slot.name == fn_name) {
            if (std::strcmp(slot.sigName, sig_name) != 0) {
                throw LinkError(
                    "signature mismatch resolving '" +
                    std::string(comp_name) + ":" + std::string(fn_name) +
                    "'");
            }
            return slot;
        }
    }
    throw LinkError("component '" + std::string(comp_name) +
                    "' does not export '" + std::string(fn_name) + "'");
}

void
System::touchSlow(ThreadCtx &ctx, const void *ptr, std::size_t len,
                  hw::Access access)
{
    for (;;) {
        // Lifecycle: a destroy may have marked this thread's own
        // cubicle kDraining while it was computing. Unwind at the next
        // memory touch so the destroyer's quiesce wait terminates.
        if (ctx.current < monitor_.cubicleCount() &&
            !monitor_.cubicleAlive(ctx.current)) {
            stats_.countUnwound();
            throw PeerFault(ctx.current,
                            "cubicle '" +
                                monitor_.cubicle(ctx.current).name +
                                "' destroyed while running");
        }
        // Tag virtualisation: an eviction (or fault-in) since this
        // thread last loaded PKRU may have rebound a physical tag to a
        // different cubicle; a stale PKRU allowing that tag would now
        // reach the *new* owner's pages without faulting. The epoch
        // check models the PKRU-update IPI real MPK kernels broadcast.
        if (ctx.keyEpoch != monitor_.keyEpoch()) {
            ctx.keyEpoch = monitor_.keyEpoch();
            ctx.pkru = monitor_.pkruFor(ctx.current);
            clock().charge(hw::cost::kWrpkru);
            stats_.countWrpkru();
        }
        auto fault = monitor_.space().check(monitor_.mpk(), ctx.pkru,
                                            ptr, len, access);
        if (!fault)
            return;
        // Pointers outside the simulated space are host memory private
        // to the running component (unsimulated); allow them.
        if (fault->reason == hw::FaultReason::kOutsideSpace)
            return;
        // The thread's PKRU may be stale (a hot-window grant arrived
        // since the last switch): refresh it first, as the monitor's
        // fault handler would before escalating.
        const hw::Pkru fresh = monitor_.pkruFor(ctx.current);
        if (!(fresh == ctx.pkru)) {
            ctx.pkru = fresh;
            clock().charge(hw::cost::kWrpkru);
            stats_.countWrpkru();
            continue;
        }

        const bool pku_fault =
            fault->reason == hw::FaultReason::kPkuRead ||
            fault->reason == hw::FaultReason::kPkuWrite;
        const bool in_space = monitor_.space().contains(fault->addr);
        const std::size_t page =
            in_space ? monitor_.space().pageIndexOf(fault->addr) : 0;

        if (pku_fault && in_space) {
            // Grant cache (simulated TLB): this thread already took a
            // full trap-and-map on this page as this cubicle, and no
            // revocation happened since. Absorb the fault — skip past
            // the page without retagging, so two cubicles alternating
            // accesses through one window stop ping-ponging the tag.
            if (ctx.grants.hit(page, ctx.current,
                               monitor_.windowEpoch())) {
                stats_.countGrantCacheHit();
                const auto *addr =
                    static_cast<const std::byte *>(fault->addr);
                const std::size_t in_page = hw::kPageSize -
                    (reinterpret_cast<uintptr_t>(addr) &
                     (hw::kPageSize - 1));
                const std::size_t consumed = static_cast<std::size_t>(
                    addr - static_cast<const std::byte *>(ptr)) + in_page;
                if (consumed >= len)
                    return;
                ptr = addr + in_page;
                len -= consumed;
                continue;
            }
        }

        // Capture the revocation epoch BEFORE the fault walk: if a
        // close races between the walk and the insert, the cached
        // entry carries the pre-close epoch and can never hit.
        const uint64_t epoch = monitor_.windowEpoch();
        if (!monitor_.handleFault(*fault, ctx.current, mode_)) {
            stats_.countViolation();
            throw hw::CubicleFault(*fault);
        }
        if (pku_fault && in_space)
            ctx.grants.insert(page, ctx.current, epoch);
        // handleFault retagged the faulting page; re-check continues
        // with the next page, guaranteeing progress.
    }
}

void
System::checkExec(const void *ptr)
{
    if (mode_ < IsolationMode::kNoAcl)
        return;
    ThreadCtx &ctx = currentCtx();
    // Bounded retry: an exec fault can be a parked code page of the
    // *running* cubicle (its tag was evicted while it kept executing
    // host-side). Fault the cubicle back in and re-check once per
    // rebinding; genuine cross-cubicle exec faults still throw.
    for (int attempt = 0;; ++attempt) {
        if (ctx.keyEpoch != monitor_.keyEpoch()) {
            ctx.keyEpoch = monitor_.keyEpoch();
            ctx.pkru = monitor_.pkruFor(ctx.current);
            clock().charge(hw::cost::kWrpkru);
            stats_.countWrpkru();
        }
        auto fault = monitor_.space().check(monitor_.mpk(), ctx.pkru,
                                            ptr, 1, hw::Access::kExec);
        if (!fault)
            return;
        if (attempt < 2 && monitor_.parkedKey() >= 0 &&
            monitor_.space().contains(fault->addr) &&
            ctx.current != kNoCubicle) {
            const std::size_t page =
                monitor_.space().pageIndexOf(fault->addr);
            if (monitor_.pageMeta().at(page).owner == ctx.current &&
                monitor_.space().entryAt(page).pkey ==
                    static_cast<uint8_t>(monitor_.parkedKey())) {
                monitor_.ensureResident(ctx.current);
                continue;
            }
        }
        // Execute faults are never resolvable by trap-and-map: windows
        // grant data access only.
        stats_.countViolation();
        throw hw::CubicleFault(*fault);
    }
}

void *
System::heapAlloc(std::size_t size)
{
    const Cid cid = currentCtx().current;
    if (cid == kNoCubicle)
        throw LoaderError("heapAlloc outside any cubicle");
    Cubicle &cub = monitor_.cubicle(cid);
    // Lifecycle: the heap dies with its cubicle, and a destroyed
    // cubicle has cub.heap == nullptr until a restart rebuilds it.
    if (static_cast<LifeState>(cub.life.load()) != LifeState::kLive) {
        stats_.countUnwound();
        throw PeerFault(cid, "heapAlloc in destroyed cubicle '" +
                                 cub.name + "'");
    }
    void *p;
    {
        // Per-cubicle heap lock: threads in different cubicles allocate
        // in parallel; a chunk-source cross-call from here may nest
        // another cubicle's heapMu (acyclic routing, see cubicle.h).
        MutexLock lock(cub.heapMu);
        p = cub.heap->alloc(size);
    }
    if (!p)
        throw OutOfMemory("heap of '" + cub.name + "'");
    return p;
}

void *
System::heapAllocZeroed(std::size_t size)
{
    const Cid cid = currentCtx().current;
    if (cid == kNoCubicle)
        throw LoaderError("heapAlloc outside any cubicle");
    Cubicle &cub = monitor_.cubicle(cid);
    if (static_cast<LifeState>(cub.life.load()) != LifeState::kLive) {
        stats_.countUnwound();
        throw PeerFault(cid, "heapAlloc in destroyed cubicle '" +
                                 cub.name + "'");
    }
    void *p;
    {
        MutexLock lock(cub.heapMu);
        p = cub.heap->allocZeroed(size);
    }
    if (!p)
        throw OutOfMemory("heap of '" + cub.name + "'");
    return p;
}

void
System::heapFree(void *ptr)
{
    const Cid cid = currentCtx().current;
    if (cid == kNoCubicle)
        throw LoaderError("heapFree outside any cubicle");
    Cubicle &cub = monitor_.cubicle(cid);
    if (static_cast<LifeState>(cub.life.load()) != LifeState::kLive) {
        stats_.countUnwound();
        throw PeerFault(cid, "heapFree in destroyed cubicle '" +
                                 cub.name + "'");
    }
    MutexLock lock(cub.heapMu);
    cub.heap->free(ptr);
}

void
System::setHeapSource(Cid cid, mem::HeapAllocator::PageSource source,
                      mem::HeapAllocator::PageReturn ret)
{
    Cubicle &cub = monitor_.cubicle(cid);
    MutexLock lock(cub.heapMu);
    cub.heap->setSource(std::move(source), std::move(ret));
}

// ----------------------------------------------------------------------
// Lifecycle (DESIGN.md §15)
// ----------------------------------------------------------------------

std::size_t
System::destroyComponent(std::string_view name)
{
    const Cid cid = cidOf(name);
    // A cubicle cannot destroy itself (or any cubicle on its call
    // stack): the quiesce wait would count this thread's own in-flight
    // entry and never terminate. Crash *injection* for such cubicles
    // runs from a different thread — see the fault-injection tests.
    ThreadCtx &ctx = currentCtx();
    if (ctx.current == cid ||
        std::find(ctx.callStack.begin(), ctx.callStack.end(), cid) !=
            ctx.callStack.end()) {
        throw LoaderError("cubicle " + std::to_string(cid) +
                          " cannot destroy itself (quiesce deadlock)");
    }
    return monitor_.destroyCubicle(cid);
}

void
System::restartComponent(std::string_view name)
{
    const Cid cid = cidOf(name);
    Component &comp = componentAt(cid);
    const ComponentSpec spec = comp.spec();

    monitor_.restartCubicle(cid, spec);

    // Teardown runs AFTER the monitor swap, inside the fresh cubicle:
    // a crashed cubicle cannot execute code, so pre-crash handles are
    // released best-effort here. Stale heap pointers are absorbed by
    // HeapAllocator::owns; cross-calls into live peers work normally.
    runAs(cid, [&] { comp.teardown(); });
    runAs(cid, [&] { comp.init(); });

    // Scoped re-audit (§12 for one cubicle): re-run the wiring lint
    // and gate on findings anchored to the restarted cubicle. Other
    // cubicles' wiring did not change, so a full-deployment gate would
    // only re-report pre-existing accepted findings.
    if (config().strictVerify) {
        std::string msg;
        for (const verifier::LintFinding &f : lintWiring()) {
            if (f.cubicle != cid ||
                f.severity < verifier::LintSeverity::kWarning)
                continue;
            msg += "\n  [";
            msg += verifier::lintSeverityName(f.severity);
            msg += "] ";
            msg += verifier::lintRuleName(f.rule);
            msg += ": ";
            msg += f.message;
        }
        if (!msg.empty()) {
            throw LoaderError(
                "strict verify: isolation lint failed after restart "
                "of '" + std::string(name) + "':" + msg);
        }
    }
}

} // namespace cubicleos::core
