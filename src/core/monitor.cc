#include "core/monitor.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "core/codescan.h"
#include "core/lifecycle.h"
#include "core/verifier/cache.h"

namespace cubicleos::core {

const char *
isolationModeName(IsolationMode mode)
{
    switch (mode) {
      case IsolationMode::kUnikraft: return "unikraft";
      case IsolationMode::kNoMpk: return "cubicleos-no-mpk";
      case IsolationMode::kNoAcl: return "cubicleos-no-acl";
      case IsolationMode::kFull: return "cubicleos";
    }
    return "unknown";
}

Monitor::Monitor(const SystemConfig &cfg, Stats *stats)
    : cfg_(cfg), stats_(stats), clock_(),
      space_(cfg.numPages, &clock_),
      mpk_(cfg.modifiedExecSemantics, cfg.physTagBudget),
      meta_(cfg.numPages),
      pageAlloc_(&space_, &meta_, /*reserve_first=*/0)
{
    // One key for all shared cubicles' static data; readable everywhere.
    sharedKey_ = mpk_.allocKey();
    assert(sharedKey_ == 1);
    if (cfg_.virtualizeTags) {
        // Reserve the parked tag plus the dynamic pool up front, so
        // the static-tag allocator and hot windows share what remains.
        parkedKey_ = mpk_.allocKey();
        if (parkedKey_ < 0)
            throw LoaderError("virtualizeTags: no physical tag left "
                              "for the parked key");
        keys_.bindGuard(&keyMutex_);
        MutexLock keys(keyMutex_);
        for (std::size_t i = 0; i < cfg_.dynamicTags; ++i) {
            const int tag = mpk_.allocKey();
            if (tag < 0)
                break; // tight budget: smaller pool, more eviction
            keys_.addTag(tag);
        }
        if (keys_.poolSize() == 0)
            throw LoaderError("virtualizeTags: physical-tag budget too "
                              "small for a dynamic pool");
    }
    // Pre-reserve so the tables never reallocate: fault-path readers
    // index them without holding any lock.
    cubicles_.reserve(kMaxCubicles);
    loadReports_.reserve(kMaxCubicles);
    lifeRecords_.reserve(kMaxCubicles);
}

Cid
Monitor::loadComponent(const ComponentSpec &spec)
{
    MutexLock lock(loaderMutex_);

    if (cubicles_.size() >= static_cast<std::size_t>(kMaxCubicles))
        throw LoaderError("too many cubicles for ACL bitmask width");

    // Rule 2 (§5.4): refuse code that could subvert isolation. The
    // reachability verifier walks the direct-branch CFG from every
    // exported entry point; only forbidden sequences an entry path
    // executes block the load, while sequences in payload constants or
    // provably dead code are recorded in the report for audit. An
    // undecodable reachable byte falls back to the linear-sweep
    // verdict (never more permissive). The verdict is memoised by
    // image content hash, so reloading an identical image skips the
    // sweep + walk.
    std::vector<uint8_t> image = spec.image.empty()
        ? makeBenignImage(spec.codePages * hw::kPageSize,
                          cubicles_.size() + 1)
        : spec.image;
    verifier::VerifierReport report = verifyImage(spec, image);

    auto cub = std::make_unique<Cubicle>();
    cub->id = static_cast<Cid>(cubicles_.size());
    cub->name = spec.name;
    cub->kind = spec.kind;
    // Per-cubicle locks order by cid (lockdep same-rank key): legal to
    // rebind here because the cubicle is not published yet. The window
    // table is guarded by windowMutex_ (a cross-object relation TSA
    // cannot annotate); binding it here makes lockdep enforce it.
    cub->stackMu.setOrderKey(cub->id);
    cub->heapMu.setOrderKey(cub->id);
    cub->windows.bindGuard(&windowMutex_);

    if (spec.kind == CubicleKind::kIsolated) {
        // Under virtualisation, stop handing out static tags before
        // the physical space is bone dry: the reserve keeps a few
        // keys allocatable for hot windows (paper §8), which need a
        // dedicated hardware tag each.
        const bool reserve_hit =
            cfg_.virtualizeTags &&
            mpk_.remainingKeys() <= cfg_.hotKeyReserve;
        const int key = reserve_hit ? -1 : mpk_.allocKey();
        if (key >= 0) {
            // Statically tagged: this cubicle keeps its physical tag
            // forever and never enters the eviction pool. The libos
            // infrastructure loads first, so under virtualisation the
            // core stack stays permanently resident.
            cub->pkey = key;
        } else if (cfg_.virtualizeTags) {
            // Physical tags exhausted: dynamically tagged. The cubicle
            // starts parked; its first cross-call or touch binds a
            // pool tag through ensureResident.
            cub->lkey = mpk_.allocLogicalKey();
            cub->pkey = parkedKey_;
        } else {
            throw LoaderError(
                "MPK keys exhausted loading '" + spec.name +
                "' (enable virtualizeTags for >14 isolated cubicles)");
        }
    } else {
        cub->pkey = sharedKey_;
    }
    const Cid cid = cub->id;
    provisionCubicle(*cub, spec, image);

    // Publish: the release store pairs with cubicleCount()'s acquire
    // load, making the fully constructed cubicle (and its parallel
    // report) visible to lock-free readers. The tables are deliberately
    // not GUARDED_BY(loaderMutex_) — readers go through the publication
    // protocol — so the "growth only under the loader lock" half is
    // enforced at runtime instead.
    if constexpr (lockdep::kEnabled) {
        lockdep::assertHeld(&loaderMutex_,
                            "Monitor cubicle-table publication");
    }
    cubicles_.push_back(std::move(cub));
    loadReports_.push_back(std::move(report));
    lifeRecords_.emplace_back();
    cubicleCount_.store(cubicles_.size(), std::memory_order_release);
    return cid;
}

verifier::VerifierReport
Monitor::verifyImage(const ComponentSpec &spec,
                     const std::vector<uint8_t> &image)
{
    for (const std::size_t e : spec.entryPoints) {
        if (e >= image.size()) {
            throw VerifierError(
                "component '" + spec.name + "' exports entry point " +
                std::to_string(e) + " outside its " +
                std::to_string(image.size()) + "-byte image");
        }
    }
    for (const verifier::EntryTable &t : spec.indirectTables) {
        if (t.offset >= image.size() ||
            t.count > (image.size() - t.offset) / 4) {
            throw VerifierError(
                "component '" + spec.name +
                "' declares an indirect-target table at offset " +
                std::to_string(t.offset) + " (" + std::to_string(t.count) +
                " entries) outside its " + std::to_string(image.size()) +
                "-byte image");
        }
    }
    bool cacheHit = false;
    verifier::VerifierReport report =
        verifier::VerifyCache::instance().verify(image, spec.entryPoints,
                                                 spec.indirectTables,
                                                 &cacheHit);
    if (cacheHit)
        stats_->countVerifyCacheHit();
    else
        stats_->countVerifyCacheMiss();
    // Counted per load, hit or miss: imagesVerified tracks verified
    // loads, the hit/miss counters tell how many ran the passes.
    stats_->countVerifiedImage(report.imageBytes, report.decodedBytes,
                               report.insnCount, report.rejectingCount(),
                               report.embeddedCount());
    if (const verifier::CodeFinding *f = report.firstRejecting()) {
        throw VerifierError(
            "component '" + spec.name +
            "' contains forbidden instruction '" + f->mnemonic +
            "' at offset " + std::to_string(f->offset) + " (" +
            verifier::findingClassName(f->cls) + ")");
    }
    return report;
}

void
Monitor::provisionCubicle(Cubicle &cub, const ComponentSpec &spec,
                          const std::vector<uint8_t> &image)
{
    const auto pkey = static_cast<uint8_t>(cub.pkey);
    const Cid cid = cub.id;

    // Code pages: map writable to copy the image, then execute-only
    // (rule 1, §5.4: cubicles cannot change execute permissions later).
    const std::size_t code_pages = hw::pagesFor(image.size());
    {
        MutexLock pages(pageMutex_);
        cub.codeRange = pageAlloc_.allocPages(code_pages, cid,
                                              mem::PageType::kCode,
                                              hw::kPermWrite, pkey);
    }
    if (!cub.codeRange.valid())
        throw OutOfMemory("code pages for '" + spec.name + "'");
    std::memcpy(cub.codeRange.ptr, image.data(), image.size());
    space_.setPerms(cub.codeRange.first, cub.codeRange.count,
                    hw::kPermExec);

    // Global data pages.
    if (spec.globalPages > 0) {
        MutexLock pages(pageMutex_);
        cub.globalRange = pageAlloc_.allocPages(
            spec.globalPages, cid, mem::PageType::kGlobal,
            hw::kPermRead | hw::kPermWrite, pkey);
        if (!cub.globalRange.valid())
            throw OutOfMemory("global pages for '" + spec.name + "'");
    }

    // Per-cubicle stack arena.
    const std::size_t stack_pages =
        spec.stackPages ? spec.stackPages : cfg_.stackPages;
    {
        MutexLock pages(pageMutex_);
        cub.stackRange = pageAlloc_.allocPages(
            stack_pages, cid, mem::PageType::kStack,
            hw::kPermRead | hw::kPermWrite, pkey);
    }
    if (!cub.stackRange.valid())
        throw OutOfMemory("stack pages for '" + spec.name + "'");

    // Heap: default page source is the monitor's pool. The boot code may
    // rewire it to cross-call the ALLOC component (see System::boot).
    // The callbacks run under the owning cubicle's heapMu and take only
    // the leaf pageMutex_, per the lock hierarchy.
    const std::size_t chunk_pages =
        spec.heapChunkPages ? spec.heapChunkPages : cfg_.heapChunkPages;
    cub.heap = std::make_unique<mem::HeapAllocator>(
        [this, cid](std::size_t pages) {
            // Through allocPagesFor: reads the cubicle's current tag
            // and re-parks the fresh pages if an eviction raced it.
            return allocPagesFor(cid, pages, mem::PageType::kHeap);
        },
        [this](const mem::PageRange &r) {
            MutexLock l(pageMutex_);
            pageAlloc_.freePages(r);
        },
        chunk_pages);
}

const verifier::VerifierReport &
Monitor::verifierReport(Cid cid) const
{
    assert(cid < cubicleCount());
    return loadReports_[cid];
}

verifier::WiringSnapshot
Monitor::snapshotWiring() const
{
    // Loader lock freezes the cubicle table, shared window lock
    // freezes ACLs — acquired in hierarchy order.
    MutexLock loader(loaderMutex_);
    ReaderLock windows(windowMutex_);
    verifier::WiringSnapshot snap;
    snap.sharedKey = sharedKey_;
    snap.cubicles.reserve(cubicles_.size());
    for (const auto &cub : cubicles_) {
        snap.cubicles.push_back(verifier::CubicleWiring{
            cub->id, cub->name, cub->kind, cub->pkey});
    }
    for (Wid wid = 0; wid < windows_.size(); ++wid) {
        const Window &w = windows_[wid];
        if (!w.live)
            continue;
        snap.windows.push_back(verifier::WindowWiring{
            wid, w.owner, w.acl, w.rangeCount, w.hotKey,
            w.rangesEverAdded, windowUsage_[wid].usedRead.load(),
            windowUsage_[wid].usedWrite.load()});
    }
    return snap;
}

Cubicle &
Monitor::cubicle(Cid cid)
{
    assert(cid < cubicleCount());
    return *cubicles_[cid];
}

const Cubicle &
Monitor::cubicle(Cid cid) const
{
    assert(cid < cubicleCount());
    return *cubicles_[cid];
}

hw::Pkru
Monitor::pkruFor(Cid cid) const
{
    // Lock-free: pkey is a word-atomic tag and extraAllow is an atomic
    // register image. Runs on every cross-call switch.
    hw::Pkru pkru = hw::Pkru::denyAll();
    if (cid < cubicleCount()) {
        // Never allow the parked tag: every parked cubicle shares it,
        // so allowing it would cross-expose all of them. A parked
        // cubicle's accesses fault and re-bind via ensureResident.
        // A dead cubicle without tag virtualisation has pkey == -1
        // (its static tag is saved for restart): allow nothing.
        const int k = cubicles_[cid]->pkey;
        if (k >= 0 && k != parkedKey_)
            pkru.allow(k);
        // Hot-window keys granted to this cubicle (paper §8).
        pkru.mergeAllow(cubicles_[cid]->extraAllow.load());
    }
    // Shared cubicles' static data is accessible from every cubicle.
    pkru.allow(sharedKey_);
    return pkru;
}

// ----------------------------------------------------------------------
// Window API
// ----------------------------------------------------------------------

Window &
Monitor::windowChecked(Cid caller, Wid wid, const char *op)
{
    if (wid >= windows_.size() || !windows_[wid].live)
        throw WindowError(std::string(op) + ": invalid window id");
    Window &w = windows_[wid];
    // Windows are assigned to the creating cubicle and can only be
    // managed by it (paper §4).
    if (w.owner != caller)
        throw WindowError(std::string(op) + ": cubicle " +
                          std::to_string(caller) +
                          " does not own window " + std::to_string(wid));
    return w;
}

Wid
Monitor::windowInit(Cid caller)
{
    WriterLock lock(windowMutex_);
    stats_->countWindowOp();
    // Reuse a dead slot if available.
    for (Wid wid = 0; wid < windows_.size(); ++wid) {
        if (!windows_[wid].live) {
            windows_[wid] = Window{caller, 0, true, 0};
            windowUsage_[wid] = WindowUsage{};
            return wid;
        }
    }
    windows_.push_back(Window{caller, 0, true, 0});
    windowUsage_.emplace_back();
    return static_cast<Wid>(windows_.size() - 1);
}

void
Monitor::windowAdd(Cid caller, Wid wid, const void *ptr, std::size_t size)
{
    WriterLock lock(windowMutex_);
    stats_->countWindowOp();
    Window &w = windowChecked(caller, wid, "window_add");

    if (!space_.contains(ptr) || size == 0)
        throw WindowError("window_add: range outside the address space");
    const auto &pm = meta_.at(space_.pageIndexOf(ptr));
    // Only memory owned by the calling cubicle may be shared.
    if (pm.owner != caller)
        throw WindowError("window_add: cubicle " + std::to_string(caller) +
                          " does not own the memory range");
    cubicles_[caller]->windows.add(pm.type, ptr, size, wid);
    ++w.rangeCount;
    ++w.rangesEverAdded;

    if (w.hotKey >= 0) {
        // Hot window: tag the pages with the window key now, so uses
        // by any ACL member need no trap at all.
        const std::size_t first = space_.pageIndexOf(ptr);
        const std::size_t last = space_.pageIndexOf(
            static_cast<const uint8_t *>(ptr) + size - 1);
        space_.setKey(first, last - first + 1,
                      static_cast<uint8_t>(w.hotKey));
        stats_->countRetag();
    }
}

void
Monitor::windowRemove(Cid caller, Wid wid, const void *ptr)
{
    WriterLock lock(windowMutex_);
    stats_->countWindowOp();
    Window &w = windowChecked(caller, wid, "window_remove");
    if (!cubicles_[caller]->windows.remove(wid, ptr))
        throw WindowError("window_remove: no such range in window");
    --w.rangeCount;
    bumpEpoch(); // the range's pages are no longer grantable
}

void
Monitor::windowOpen(Cid caller, Wid wid, Cid peer)
{
    WriterLock lock(windowMutex_);
    stats_->countWindowOp();
    Window &w = windowChecked(caller, wid, "window_open");
    w.acl |= aclBit(peer);
    if (w.hotKey >= 0 && peer < cubicleCount())
        cubicles_[peer]->extraAllow.allow(w.hotKey);
    // No epoch bump: opening only widens grants, cached ones stay valid.
}

void
Monitor::windowClose(Cid caller, Wid wid, Cid peer)
{
    WriterLock lock(windowMutex_);
    stats_->countWindowOp();
    Window &w = windowChecked(caller, wid, "window_close");
    // Lazy revocation: the ACL bit is cleared but pages keep their
    // current tag (causal tag consistency, §5.6). Hot windows revoke
    // eagerly through the PKRU mask instead.
    w.acl &= ~aclBit(peer);
    if (w.hotKey >= 0 && peer < cubicleCount())
        cubicles_[peer]->extraAllow.deny(w.hotKey);
    bumpEpoch();
}

void
Monitor::windowCloseAll(Cid caller, Wid wid)
{
    WriterLock lock(windowMutex_);
    stats_->countWindowOp();
    Window &w = windowChecked(caller, wid, "window_close_all");
    if (w.hotKey >= 0) {
        for (Cid cid = 0; cid < cubicleCount(); ++cid) {
            if ((w.acl & aclBit(cid)) && cid != caller)
                cubicles_[cid]->extraAllow.deny(w.hotKey);
        }
    }
    w.acl = 0;
    bumpEpoch();
}

void
Monitor::windowDestroy(Cid caller, Wid wid)
{
    WriterLock lock(windowMutex_);
    stats_->countWindowOp();
    windowChecked(caller, wid, "window_destroy");
    destroyWindowLocked(caller, wid);
}

void
Monitor::destroyWindowLocked(Cid owner, Wid wid)
{
    Window &w = windows_[wid];
    if (w.hotKey >= 0) {
        // Return the window's pages to the owner's tag and revoke the
        // key from every PKRU mask. (The key itself is not recycled;
        // hardware keys are a scarce, explicitly-requested resource.)
        // A lock-free fast-path fault (owner retag / no-ACL mode) may
        // race this sweep and win on a page; it leaves the page tagged
        // for a still-entitled accessor, which lazy close already
        // permits.
        for (std::size_t page = 0; page < space_.numPages(); ++page) {
            if (space_.entryAt(page).present &&
                space_.entryAt(page).pkey == w.hotKey) {
                space_.setKey(page, 1,
                              static_cast<uint8_t>(
                                  cubicles_[owner]->pkey));
            }
        }
        for (std::size_t i = 0; i < cubicleCount(); ++i)
            cubicles_[i]->extraAllow.deny(w.hotKey);
    }
    cubicles_[owner]->windows.removeAll(wid);
    w = Window{}; // live = false; slot reusable
    bumpEpoch();
}

void
Monitor::windowSetHot(Cid caller, Wid wid)
{
    WriterLock lock(windowMutex_);
    stats_->countWindowOp();
    Window &w = windowChecked(caller, wid, "window_set_hot");
    if (w.hotKey >= 0)
        return;
    const int key = mpk_.allocKey();
    if (key < 0) {
        // Under virtualisation key exhaustion is an expected steady
        // state (every key beyond the reserve is spoken for), and hot
        // windows are a performance hint: degrade to an ordinary
        // trap-and-map window instead of failing the deployment.
        if (cfg_.virtualizeTags)
            return;
        throw WindowError(
            "window_set_hot: MPK keys exhausted (hot windows use one "
            "dedicated hardware key each)");
    }
    w.hotKey = key;
    cubicles_[caller]->extraAllow.allow(key);
    for (Cid cid = 0; cid < cubicleCount(); ++cid) {
        if (w.acl & aclBit(cid))
            cubicles_[cid]->extraAllow.allow(key);
    }
}

std::size_t
Monitor::windowPrestage(Cid caller, Wid wid, Cid peer,
                        hw::Access expected)
{
    WriterLock lock(windowMutex_);
    stats_->countWindowOp();
    Window &w = windowChecked(caller, wid, "window_prestage");
    if (peer >= cubicleCount())
        throw WindowError("window_prestage: unknown peer cubicle");
    if ((w.acl & aclBit(peer)) == 0) {
        throw WindowError("window_prestage: peer " +
                          std::to_string(peer) +
                          " is not in the ACL of window " +
                          std::to_string(wid));
    }
    if (w.hotKey >= 0)
        return 0; // hot windows are already eagerly tagged

    // The hint is a usage declaration: the audit would otherwise never
    // see a fault from a peer whose first touch was prestaged away.
    if (expected == hw::Access::kWrite)
        windowUsage_[wid].usedWrite.fetchOr(aclBit(peer));
    windowUsage_[wid].usedRead.fetchOr(aclBit(peer));
    // Remember the standing hint so an eviction of the peer does not
    // erase it: fault-in replays the prestage (DESIGN.md §14).
    if (expected == hw::Access::kWrite)
        windowUsage_[wid].prestagedWrite.fetchOr(aclBit(peer));
    else
        windowUsage_[wid].prestagedRead.fetchOr(aclBit(peer));

    const int peer_pkey = cubicles_[peer]->pkey;
    if (parkedKey_ >= 0 && peer_pkey == parkedKey_) {
        // Parked peer: retagging to the parked tag would park the
        // owner's pages. The hint is recorded above; fault-in replays
        // the physical sweep when the peer re-binds.
        return 0;
    }

    const std::size_t total =
        prestageSweep(caller, wid, static_cast<uint8_t>(peer_pkey),
                      /*only_parked=*/false);
    if (total > 0)
        stats_->countPrestage(total);
    return total;
}

std::size_t
Monitor::prestageSweep(Cid owner, Wid wid, uint8_t peer_key,
                       bool only_parked)
{
    const std::size_t chunk =
        cfg_.retagChunkPages ? cfg_.retagChunkPages : 1;
    std::size_t total = 0;
    // Owner intersection, exactly as in handleFault: windowAdd
    // validates only the first page, so foreign pages inside a range
    // are skipped, never granted. Pages already carrying the peer's
    // tag are skipped too, so re-prestaging a window after each new
    // staged range (the grant layer does this) only pays for the
    // pages that actually changed hands. With @p only_parked (the
    // fault-in replay) the sweep reclaims only pages the eviction
    // parked, plus pages the window's owner pulled back under its own
    // tag when it faulted in first — pages a third party currently
    // holds keep their tag.
    const uint8_t owner_key = static_cast<uint8_t>(cubicles_[owner]->pkey);
    auto eligible = [&](std::size_t i) {
        if (meta_.at(i).owner != owner ||
            space_.entryAt(i).pkey == peer_key)
            return false;
        if (only_parked &&
            space_.entryAt(i).pkey != static_cast<uint8_t>(parkedKey_) &&
            space_.entryAt(i).pkey != owner_key)
            return false;
        return true;
    };
    for (const WindowRange &r : cubicles_[owner]->windows.rangesOf(wid)) {
        const auto *p = static_cast<const std::byte *>(r.ptr);
        if (r.size == 0 || !space_.contains(p))
            continue;
        const std::byte *last_byte = p + r.size - 1;
        const std::size_t first = space_.pageIndexOf(p);
        const std::size_t last = space_.contains(last_byte)
            ? space_.pageIndexOf(last_byte)
            : space_.numPages() - 1;
        std::size_t i = first;
        while (i <= last) {
            if (!eligible(i)) {
                ++i;
                continue;
            }
            std::size_t run_end = i + 1;
            while (run_end <= last && run_end - i < chunk &&
                   eligible(run_end))
                ++run_end;
            space_.setKeyRange(i, run_end - i, peer_key);
            total += run_end - i;
            i = run_end;
        }
    }
    return total;
}

AclMask
Monitor::windowAcl(Wid wid) const
{
    ReaderLock lock(windowMutex_);
    if (wid >= windows_.size() || !windows_[wid].live)
        throw WindowError("windowAcl: invalid window id");
    return windows_[wid].acl;
}

// ----------------------------------------------------------------------
// Trap-and-map
// ----------------------------------------------------------------------

bool
Monitor::handleFault(const hw::Fault &fault, Cid accessor,
                     IsolationMode mode)
{
    clock_.charge(hw::cost::kFaultTrap);
    stats_->countTrap();

    // Opt-in fault trace for hot-path tuning: every trap is a modelled
    // 3,500-cycle event, so when a workload traps more than expected
    // this names the accessor, the page owner and the access at the
    // fault site. Gated by env var; zero cost when unset.
    static const bool trace =
        std::getenv("CUBICLEOS_TRACE_FAULTS") != nullptr;
    if (trace && space_.contains(fault.addr) &&
        accessor < cubicleCount()) {
        const std::size_t pg = space_.pageIndexOf(fault.addr);
        const Cid own = meta_.at(pg).owner;
        std::fprintf(
            stderr, "[fault] %s %s page=%zu owner=%s pkey=%u\n",
            cubicles_[accessor]->name.c_str(),
            fault.reason == hw::FaultReason::kPkuWrite ? "W" : "R", pg,
            own < cubicleCount() ? cubicles_[own]->name.c_str() : "?",
            static_cast<unsigned>(fault.pkey));
    }

    // Only MPK faults are resolvable; page-permission and not-present
    // faults are genuine errors.
    if (fault.reason != hw::FaultReason::kPkuRead &&
        fault.reason != hw::FaultReason::kPkuWrite) {
        return false;
    }
    if (!space_.contains(fault.addr) || accessor >= cubicleCount())
        return false;

    // ❷ page metadata: owner and type in O(1). Atomic reads — no lock.
    const std::size_t page = space_.pageIndexOf(fault.addr);
    const mem::PageMeta &pm = meta_.at(page);
    const Cid page_owner = pm.owner;
    if (page_owner == kNoCubicle || page_owner >= cubicleCount())
        return false;

    // Tag virtualisation: a parked accessor must be re-bound before
    // any grant can be committed with its tag (retagging to the parked
    // tag would hand the page to every parked cubicle). Lock-free when
    // the accessor is statically tagged or already bound.
    int accessor_key_i = cubicles_[accessor]->pkey;
    if (parkedKey_ >= 0 && accessor_key_i == parkedKey_)
        accessor_key_i = ensureResident(accessor);
    const auto accessor_key = static_cast<uint8_t>(accessor_key_i);
    const std::size_t chunk =
        cfg_.retagChunkPages ? cfg_.retagChunkPages : 1;

    // The owner always has access to its own pages (implicit window 0):
    // a fault here means the page was lazily left tagged for a previous
    // accessor; retag it back. Range-granular: the contiguous run of
    // pages with the same owner and the same stale tag was granted
    // away by the same lazy history, so one pkey_mprotect reclaims all
    // of it (capped at retagChunkPages). Matching on the faulting tag
    // keeps hot-window pages (dedicated key) out of the run. Lock-free:
    // the atomic tag stores are the whole commit.
    // "CubicleOS w/o ACLs" takes the same path: MPK enforced, windows
    // open for any access.
    if (page_owner == accessor || mode == IsolationMode::kNoAcl) {
        const std::size_t limit =
            std::min(space_.numPages(), page + chunk);
        std::size_t end = page + 1;
        while (end < limit && meta_.at(end).owner == page_owner &&
               space_.entryAt(end).pkey == fault.pkey)
            ++end;
        space_.setKeyRange(page, end - page, accessor_key);
        stats_->countRetag(end - page);
        if (parkedKey_ >= 0 &&
            cubicles_[accessor]->pkey != accessor_key_i) {
            // An eviction re-bound our tag between the read above and
            // the lock-free commit: the range now carries a tag that
            // belongs to another cubicle. Undo to the parked tag —
            // losing access is always safe — and let the retried
            // access fault back in through ensureResident.
            space_.setKeyRange(page, end - page,
                               static_cast<uint8_t>(parkedKey_));
        }
        return true;
    }

    // ❸ interval lookup in the owner's window-descriptor array and
    // ❹ the O(1) ACL bitmask check — both reads, under the shared
    // window lock so faults in different cubicles proceed in parallel
    // and only window mutations exclude them.
    ReaderLock lock(windowMutex_);
    const Cubicle &owner = *cubicles_[page_owner];
    const Wid wid = owner.windows.findWindowFor(pm.type, fault.addr);
    if (wid == kInvalidWindow)
        return false;

    const Window &w = windows_[wid];
    if (!w.live || (w.acl & aclBit(accessor)) == 0)
        return false;

    // Record the exercised grant for the least-privilege audit: this
    // is the one point where a peer demonstrably used its ACL bit.
    // Relaxed fetch-or under the shared lock — the audit only reads
    // the masks after quiescing through snapshotWiring's locks.
    if (fault.reason == hw::FaultReason::kPkuWrite)
        windowUsage_[wid].usedWrite.fetchOr(aclBit(accessor));
    else
        windowUsage_[wid].usedRead.fetchOr(aclBit(accessor));

    // ❺ grant: range-granular. The ACL covers the whole window, not
    // one page, so one fault may retag the entire merged coverage of
    // the matched window's ranges around the faulting address —
    // intersected per page with the owner's pages (windowAdd validates
    // only the first page of a range) and capped at retagChunkPages.
    // The tag stores are atomic, so the commit needs no exclusive
    // lock; a concurrent close cannot interleave (it takes the lock
    // exclusively).
    std::size_t lo = page;
    std::size_t hi = page + 1; // retag [lo, hi)
    const RangeSpan span =
        owner.windows.coverageFor(pm.type, wid, fault.addr);
    if (!span.empty()) {
        const auto *span_last =
            reinterpret_cast<const std::byte *>(span.end - 1);
        const std::size_t first = space_.pageIndexOf(
            reinterpret_cast<const std::byte *>(span.start));
        const std::size_t last = space_.contains(span_last)
            ? space_.pageIndexOf(span_last)
            : space_.numPages() - 1;
        while (hi <= last && hi - lo < chunk &&
               meta_.at(hi).owner == page_owner)
            ++hi;
        while (lo > first && hi - lo < chunk &&
               meta_.at(lo - 1).owner == page_owner)
            --lo;
    }
    if (parkedKey_ >= 0 && cubicles_[accessor]->pkey != accessor_key_i) {
        // An eviction completed between ensureResident and this
        // ReaderLock (evictions hold the lock exclusively, so none is
        // concurrent with us): the tag we were about to grant now
        // backs another cubicle. Retry; the next round re-binds.
        return true;
    }
    space_.setKeyRange(lo, hi - lo, accessor_key);
    stats_->countRetag(hi - lo);
    return true;
}

// ----------------------------------------------------------------------
// Tag virtualisation (DESIGN.md §14)
// ----------------------------------------------------------------------

namespace {

bool
traceEvictions()
{
    static const bool trace =
        std::getenv("CUBICLEOS_TRACE_EVICTIONS") != nullptr;
    return trace;
}

} // namespace

int
Monitor::ensureResident(Cid cid)
{
    if (cid >= cubicleCount())
        return -1;
    Cubicle &cub = *cubicles_[cid];
    // Lock-free fast path: statically tagged, or already bound.
    if (cub.lkey < 0)
        return cub.pkey;
    if (cub.pkey != parkedKey_)
        return cub.pkey;

    // Bind/evict under the exclusive window lock (the page sweeps must
    // not race the fault handler's window walk) then the key lock.
    WriterLock windows(windowMutex_);
    MutexLock keys(keyMutex_);
    if (cub.pkey != parkedKey_)
        return cub.pkey; // another thread bound us while we waited

    int tag = keys_.bindFree(cid);
    if (tag < 0) {
        tag = evictLocked();
        keys_.rebind(tag, cid);
    }
    const std::size_t restored = faultInLocked(cid, tag);
    // Publish the binding only after the pages are restored, then
    // invalidate every thread's cached PKRU (the IPI analogue).
    cub.pkey = tag;
    cub.lastUse = useClock_.fetch_add(1, std::memory_order_relaxed) + 1;
    keyEpoch_.fetch_add(1, std::memory_order_seq_cst);
    if (traceEvictions()) {
        std::fprintf(stderr, "[faultin] %s tag=%d pages=%zu\n",
                     cub.name.c_str(), tag, restored);
    }
    return tag;
}

void
Monitor::noteSwitch(Cid callee)
{
    if (parkedKey_ < 0 || callee >= cubicleCount())
        return;
    Cubicle &cub = *cubicles_[callee];
    if (cub.lkey < 0)
        return; // statically tagged: never evicted
    cub.lastUse = useClock_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (cub.pkey == parkedKey_) {
        stats_->countTagMiss();
        ensureResident(callee);
    } else {
        stats_->countTagHit();
    }
}

int
Monitor::evictLocked()
{
    // LRU victim scan over the (≤ dynamicTags) bound slots.
    const KeyBinding *victim = nullptr;
    uint64_t oldest = ~uint64_t{0};
    for (const KeyBinding &s : keys_.slots()) {
        if (s.cid == kNoCubicle || s.cid >= cubicleCount())
            continue;
        const uint64_t lu = cubicles_[s.cid]->lastUse;
        if (victim == nullptr || lu < oldest) {
            oldest = lu;
            victim = &s;
        }
    }
    assert(victim != nullptr && "evictLocked: empty dynamic pool");
    Cubicle &v = *cubicles_[victim->cid];
    const int tag = victim->tag;

    // Park the victim BEFORE the sweep: lock-free fast paths re-check
    // the accessor's pkey after their atomic retag and undo on
    // mismatch, so ordering the store first closes the race.
    v.pkey = parkedKey_;
    keyEpoch_.fetch_add(1, std::memory_order_seq_cst);

    // Sweep EVERY present page still carrying the victim's tag to the
    // parked tag — the victim's own pages and pages other owners
    // granted it through windows (their tag ran ahead of revocation
    // under §5.6 laziness; parking them is a narrowing, always safe).
    const std::size_t pages =
        sweepTag(0, space_.numPages(), tag, parkedKey_);

    // Unlike PR 8's widening retags, an eviction is a *narrowing*
    // retag that cached grants may still cover: bump the revocation
    // epoch so no thread's grant cache can absorb a touch on a page
    // that is now parked.
    bumpEpoch();

    v.evictions.fetchAdd(1);
    stats_->countEviction(pages);
    keys_.release(tag);
    if (traceEvictions()) {
        std::fprintf(stderr, "[evict] %s tag=%d pages=%zu\n",
                     v.name.c_str(), tag, pages);
    }
    return tag;
}

std::size_t
Monitor::faultInLocked(Cid cid, int tag)
{
    const auto parked = static_cast<uint8_t>(parkedKey_);
    const auto to = static_cast<uint8_t>(tag);
    const std::size_t chunk =
        cfg_.retagChunkPages ? cfg_.retagChunkPages : 1;
    const std::size_t n = space_.numPages();

    // Restore the cubicle's own parked pages in chunked runs.
    auto wants = [&](std::size_t p) {
        return space_.entryAt(p).present &&
               space_.entryAt(p).pkey == parked && meta_.at(p).owner == cid;
    };
    std::size_t total = 0;
    std::size_t i = 0;
    while (i < n) {
        if (!wants(i)) {
            ++i;
            continue;
        }
        std::size_t run = i + 1;
        while (run < n && run - i < chunk && wants(run))
            ++run;
        space_.setKeyRange(i, run - i, to);
        stats_->countRetag(run - i);
        total += run - i;
        i = run;
    }

    // Replay standing prestage hints: every live window that prestaged
    // for this cubicle (and still lists it in the ACL) gets its parked
    // range pages restored to the new tag, so a grant-layer Prestage
    // declaration survives eviction instead of decaying to first-touch
    // faults.
    const AclMask bit = aclBit(cid);
    for (Wid wid = 0; wid < windows_.size(); ++wid) {
        const Window &w = windows_[wid];
        if (!w.live || !(w.acl & bit))
            continue;
        const bool hinted =
            static_cast<bool>(windowUsage_[wid].prestagedRead.load() & bit) ||
            static_cast<bool>(windowUsage_[wid].prestagedWrite.load() & bit);
        if (!hinted)
            continue;
        const std::size_t replayed =
            prestageSweep(w.owner, wid, to, /*only_parked=*/true);
        if (replayed > 0) {
            stats_->countPrestage(replayed);
            total += replayed;
        }
    }

    cubicles_[cid]->faultIns.fetchAdd(1);
    stats_->countFaultIn(total);
    return total;
}

std::size_t
Monitor::sweepTag(std::size_t first, std::size_t end, int from, int to)
{
    const auto from_key = static_cast<uint8_t>(from);
    const auto to_key = static_cast<uint8_t>(to);
    const std::size_t chunk =
        cfg_.retagChunkPages ? cfg_.retagChunkPages : 1;
    auto wants = [&](std::size_t p) {
        return space_.entryAt(p).present &&
               space_.entryAt(p).pkey == from_key;
    };
    std::size_t total = 0;
    std::size_t i = first;
    while (i < end) {
        if (!wants(i)) {
            ++i;
            continue;
        }
        std::size_t run = i + 1;
        while (run < end && run - i < chunk && wants(run))
            ++run;
        space_.setKeyRange(i, run - i, to_key);
        stats_->countRetag(run - i);
        total += run - i;
        i = run;
    }
    return total;
}

// ----------------------------------------------------------------------
// Lifecycle (DESIGN.md §15)
// ----------------------------------------------------------------------

std::size_t
Monitor::destroyCubicle(Cid cid)
{
    MutexLock life(lifecycleMutex_);
    if (cid >= cubicleCount())
        throw LoaderError("destroyCubicle: unknown cubicle " +
                          std::to_string(cid));
    Cubicle &cub = *cubicles_[cid];
    if (!cub.isolated()) {
        throw LoaderError("destroyCubicle: '" + cub.name +
                          "' is a shared cubicle (its static data is "
                          "mapped into every other cubicle)");
    }
    if (static_cast<LifeState>(cub.life.load()) != LifeState::kLive) {
        throw LoaderError(
            "destroyCubicle: '" + cub.name + "' is " +
            lifeStateName(static_cast<LifeState>(cub.life.load())));
    }
    lifecycle::trace("destroy %s (cid=%u): draining",
                     cub.name.c_str(), static_cast<unsigned>(cid));

    // 1. Refuse new entries (CrossCallGuard checks life before
    // charging) and unwind threads already inside: their next checked
    // access — System::touchSlow, heapAlloc — throws PeerFault.
    cub.life.store(static_cast<uint8_t>(LifeState::kDraining));

    // 2. Quiesce. We hold only lifecycleMutex_ (above the whole
    // hierarchy), so draining threads are free to fault, allocate and
    // unwind underneath us.
    while (cub.inFlight.load() != 0)
        std::this_thread::yield();

    // Everything the cubicle owns right now is what destroy reclaims.
    const std::size_t reclaimed = meta_.countOwnedBy(cid);
    LifecycleRecord &rec = lifeRecords_[cid];
    rec.revoked.clear();

    {
        WriterLock windows(windowMutex_);

        // 3a. Windows the victim owns die outright (init re-creates
        // them at restart, exactly as at first boot).
        for (Wid wid = 0; wid < windows_.size(); ++wid) {
            if (windows_[wid].live && windows_[wid].owner == cid)
                destroyWindowLocked(cid, wid);
        }

        // 3b. Revoke the victim's grants on every other owner's
        // window, recording them for restart replay. The usage and
        // prestage masks are scrubbed too: the least-privilege audit
        // must not credit a dead peer with exercised access.
        const AclMask bit = aclBit(cid);
        const AclMask keep = ~bit;
        for (Wid wid = 0; wid < windows_.size(); ++wid) {
            Window &w = windows_[wid];
            if (!w.live || (w.acl & bit) == AclMask{})
                continue;
            RevokedGrant g;
            g.wid = wid;
            g.owner = w.owner;
            g.usedRead =
                (windowUsage_[wid].usedRead.load() & bit) != AclMask{};
            g.usedWrite =
                (windowUsage_[wid].usedWrite.load() & bit) != AclMask{};
            g.prestagedRead =
                (windowUsage_[wid].prestagedRead.load() & bit) !=
                AclMask{};
            g.prestagedWrite =
                (windowUsage_[wid].prestagedWrite.load() & bit) !=
                AclMask{};
            g.hot = w.hotKey >= 0;
            rec.revoked.push_back(g);
            w.acl &= keep;
            windowUsage_[wid].usedRead.store(
                windowUsage_[wid].usedRead.load() & keep);
            windowUsage_[wid].usedWrite.store(
                windowUsage_[wid].usedWrite.load() & keep);
            windowUsage_[wid].prestagedRead.store(
                windowUsage_[wid].prestagedRead.load() & keep);
            windowUsage_[wid].prestagedWrite.store(
                windowUsage_[wid].prestagedWrite.load() & keep);
        }

        // 3c. Pages of OTHER owners still carrying the victim's tag
        // (granted through windows; §5.6 laziness let the tag outlive
        // the grant) go back to their owner's current tag, so a
        // recycled dynamic tag cannot leak foreign pages to its next
        // holder. The victim's own pages keep their tag: they are
        // unmapped below, and reallocation retags. A parked victim's
        // tag backs nothing — the eviction already swept it — so the
        // scan finds no pages and the destroy never faults the victim
        // back in.
        const int victim_tag = cub.pkey;
        if (victim_tag >= 0 && victim_tag != parkedKey_) {
            const auto vkey = static_cast<uint8_t>(victim_tag);
            std::size_t returned = 0;
            for (std::size_t p = 0; p < space_.numPages(); ++p) {
                if (!space_.entryAt(p).present ||
                    space_.entryAt(p).pkey != vkey)
                    continue;
                const Cid own = meta_.at(p).owner;
                if (own == cid || own >= cubicleCount())
                    continue;
                space_.setKey(p, 1,
                              static_cast<uint8_t>(cubicles_[own]->pkey));
                ++returned;
            }
            if (returned > 0)
                stats_->countRetag(returned);
        }

        // 3d. Hot-window keys granted TO the victim die with it.
        cub.extraAllow.reset();

        // 3e. Cached grants over anything revoked above are now stale.
        bumpEpoch();

        // 4. Release the physical tag. A bound dynamic tag returns to
        // the pool for other logical cubicles; a static tag is saved —
        // hw::Mpk's allocator is monotonic, so restart must reuse it.
        {
            MutexLock keys(keyMutex_);
            if (cub.lkey >= 0) {
                rec.staticKey = -1;
                if (victim_tag >= 0 && victim_tag != parkedKey_)
                    keys_.release(victim_tag);
            } else {
                rec.staticKey = victim_tag;
            }
            cub.pkey = parkedKey_; // -1 without tag virtualisation
        }
    }
    keyEpoch_.fetch_add(1, std::memory_order_seq_cst);

    // 5. Return the memory. Heap chunks go straight to the pool: boot
    // may have routed this heap's growth through another component,
    // and a cross-call from the destroyer's (host) context is not
    // possible — per the suballoc contract, chunks already held are
    // returned through the new PageReturn.
    {
        MutexLock heap(cub.heapMu);
        if (cub.heap) {
            cub.heap->setSource(
                [](std::size_t) { return mem::PageRange{}; },
                [this](const mem::PageRange &r) {
                    MutexLock l(pageMutex_);
                    pageAlloc_.freePages(r);
                });
            cub.heap.reset();
        }
    }
    freePages(cub.codeRange);
    cub.codeRange = mem::PageRange{};
    freePages(cub.globalRange);
    cub.globalRange = mem::PageRange{};
    {
        MutexLock stack(cub.stackMu);
        freePages(cub.stackRange);
        cub.stackRange = mem::PageRange{};
        cub.stackUsed = 0;
    }
    assert(meta_.countOwnedBy(cid) == 0);

    cub.life.store(static_cast<uint8_t>(LifeState::kDead));
    stats_->countDestroy(reclaimed);
    lifecycle::trace("destroy %s: %zu pages reclaimed, %zu grants "
                     "revoked, static key %d saved",
                     cub.name.c_str(), reclaimed, rec.revoked.size(),
                     rec.staticKey);
    return reclaimed;
}

void
Monitor::restartCubicle(Cid cid, const ComponentSpec &spec)
{
    MutexLock life(lifecycleMutex_);
    if (cid >= cubicleCount())
        throw LoaderError("restartCubicle: unknown cubicle " +
                          std::to_string(cid));
    Cubicle &cub = *cubicles_[cid];
    if (static_cast<LifeState>(cub.life.load()) != LifeState::kDead) {
        throw LoaderError(
            "restartCubicle: '" + cub.name + "' is " +
            lifeStateName(static_cast<LifeState>(cub.life.load())) +
            ", not dead");
    }
    LifecycleRecord &rec = lifeRecords_[cid];

    {
        MutexLock loader(loaderMutex_);
        // Same image synthesis as the original load (the seed was this
        // cubicle's table position), so an unchanged spec re-verifies
        // as a content hit in the verify cache — the cheap path the
        // restart benchmark measures.
        std::vector<uint8_t> image = spec.image.empty()
            ? makeBenignImage(spec.codePages * hw::kPageSize,
                              static_cast<std::size_t>(cid) + 1)
            : spec.image;
        verifier::VerifierReport report = verifyImage(spec, image);

        // Tag restore: dynamically-tagged cubicles come back parked
        // and re-bind on first touch; statically-tagged ones reuse the
        // key saved at destroy (the hardware allocator is monotonic).
        if (cub.lkey >= 0) {
            cub.pkey = parkedKey_;
        } else {
            assert(rec.staticKey >= 0 &&
                   "static cubicle died without a saved key");
            cub.pkey = rec.staticKey;
        }
        provisionCubicle(cub, spec, image);
        loadReports_[cid] = std::move(report);
    }

    // Replay the grants peers had given the dying cubicle, so wiring
    // that survived the crash (the peers' windows) does not need the
    // peers' cooperation to resume. Windows that died or were recycled
    // since are skipped — their owner re-opens on its own schedule.
    {
        WriterLock windows(windowMutex_);
        const AclMask bit = aclBit(cid);
        const int pk = cub.pkey;
        std::size_t replayed = 0;
        for (const RevokedGrant &g : rec.revoked) {
            if (g.wid >= windows_.size())
                continue;
            Window &w = windows_[g.wid];
            if (!w.live || w.owner != g.owner)
                continue;
            w.acl |= bit;
            if (g.usedRead)
                windowUsage_[g.wid].usedRead.fetchOr(bit);
            if (g.usedWrite)
                windowUsage_[g.wid].usedWrite.fetchOr(bit);
            if (g.prestagedRead)
                windowUsage_[g.wid].prestagedRead.fetchOr(bit);
            if (g.prestagedWrite)
                windowUsage_[g.wid].prestagedWrite.fetchOr(bit);
            if (w.hotKey >= 0)
                cub.extraAllow.allow(w.hotKey);
            if ((g.prestagedRead || g.prestagedWrite) &&
                pk != parkedKey_) {
                // Resident restart: replay the eager sweep now. A
                // parked restart leaves it to fault-in (as after an
                // eviction).
                replayed += prestageSweep(g.owner, g.wid,
                                          static_cast<uint8_t>(pk),
                                          /*only_parked=*/false);
            }
        }
        if (replayed > 0)
            stats_->countPrestage(replayed);
        rec.revoked.clear();
        // No epoch bump needed: a restart only widens grants.
    }

    // New tag binding (parked or restored static key): cached PKRUs
    // must recompute, same as after an eviction.
    keyEpoch_.fetch_add(1, std::memory_order_seq_cst);

    cub.life.store(static_cast<uint8_t>(LifeState::kLive));
    ++rec.generation;
    stats_->countRestart();
    lifecycle::trace("restart %s (cid=%u): generation %llu, pkey=%d",
                     cub.name.c_str(), static_cast<unsigned>(cid),
                     static_cast<unsigned long long>(rec.generation),
                     static_cast<int>(cub.pkey));
}

uint64_t
Monitor::lifeGeneration(Cid cid) const
{
    MutexLock life(lifecycleMutex_);
    assert(cid < cubicleCount());
    return lifeRecords_[cid].generation;
}

// ----------------------------------------------------------------------
// Memory management
// ----------------------------------------------------------------------

mem::PageRange
Monitor::allocPagesFor(Cid cid, std::size_t n, mem::PageType type,
                       uint8_t perms)
{
    assert(cid < cubicleCount());
    const int key_i = cubicles_[cid]->pkey;
    const auto key = static_cast<uint8_t>(key_i);
    MutexLock lock(pageMutex_);
    mem::PageRange r = pageAlloc_.allocPages(n, cid, type, perms, key);
    if (r.valid() && parkedKey_ >= 0 &&
        cubicles_[cid]->pkey != key_i) {
        // An eviction re-bound (or parked) the cubicle's tag while we
        // tagged the fresh pages with the stale value. Park them —
        // always safe — and let first touch fault them in.
        space_.setKeyRange(r.first, r.count,
                           static_cast<uint8_t>(parkedKey_));
    }
    return r;
}

void
Monitor::freePages(const mem::PageRange &range)
{
    MutexLock lock(pageMutex_);
    pageAlloc_.freePages(range);
}

std::byte *
Monitor::stackAlloc(Cid cid, std::size_t size, std::size_t align)
{
    Cubicle &cub = cubicle(cid);
    MutexLock lock(cub.stackMu);
    std::size_t off = (cub.stackUsed + align - 1) & ~(align - 1);
    if (off + size > cub.stackRange.sizeBytes())
        throw OutOfMemory("stack arena of '" + cub.name + "'");
    cub.stackUsed = off + size;
    return cub.stackRange.ptr + off;
}

std::size_t
Monitor::stackOffset(Cid cid) const
{
    const Cubicle &cub = cubicle(cid);
    MutexLock lock(cub.stackMu);
    return cub.stackUsed;
}

void
Monitor::stackRestore(Cid cid, std::size_t saved)
{
    Cubicle &cub = cubicle(cid);
    MutexLock lock(cub.stackMu);
    cub.stackUsed = saved;
}

void
Monitor::debugAcquirePageThenWindowForTest() const
{
    // Deliberate inversion: pageMutex_ (rank page, the leaf) is taken
    // first, then windowMutex_ (rank window). With CUBICLE_LOCKDEP
    // this aborts inside ReaderLock before touching the shared_mutex;
    // without it the scopes simply nest and release.
    MutexLock pages(pageMutex_);
    ReaderLock windows(windowMutex_);
}

void
Monitor::debugWindowLookupUnlockedForTest(Cid cid) const
{
    // Deliberate cross-object guard bypass: the loader bound this
    // table to windowMutex_, which this thread does not hold. With
    // lockdep the table's checkGuard aborts before touching any state.
    cubicles_[cid]->windows.findWindowFor(mem::PageType::kGlobal,
                                          nullptr);
}

} // namespace cubicleos::core
