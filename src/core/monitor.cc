#include "core/monitor.h"

#include <cassert>
#include <cstring>

#include "core/codescan.h"
#include "core/verifier/cfg.h"

namespace cubicleos::core {

const char *
isolationModeName(IsolationMode mode)
{
    switch (mode) {
      case IsolationMode::kUnikraft: return "unikraft";
      case IsolationMode::kNoMpk: return "cubicleos-no-mpk";
      case IsolationMode::kNoAcl: return "cubicleos-no-acl";
      case IsolationMode::kFull: return "cubicleos";
    }
    return "unknown";
}

Monitor::Monitor(const SystemConfig &cfg, Stats *stats)
    : cfg_(cfg), stats_(stats), clock_(),
      space_(cfg.numPages, &clock_),
      mpk_(cfg.modifiedExecSemantics),
      meta_(cfg.numPages),
      pageAlloc_(&space_, &meta_, /*reserve_first=*/0)
{
    // One key for all shared cubicles' static data; readable everywhere.
    sharedKey_ = mpk_.allocKey();
    assert(sharedKey_ == 1);
}

Cid
Monitor::loadComponent(const ComponentSpec &spec)
{
    std::lock_guard<std::mutex> lock(mutex_);

    if (cubicles_.size() >= static_cast<std::size_t>(kMaxCubicles))
        throw LoaderError("too many cubicles for ACL bitmask width");

    // Rule 2 (§5.4): refuse code that could subvert isolation. The
    // reachability verifier walks the direct-branch CFG from every
    // exported entry point; only forbidden sequences an entry path
    // executes block the load, while sequences in payload constants or
    // provably dead code are recorded in the report for audit. An
    // undecodable reachable byte falls back to the linear-sweep
    // verdict (never more permissive).
    std::vector<uint8_t> image = spec.image.empty()
        ? makeBenignImage(spec.codePages * hw::kPageSize,
                          cubicles_.size() + 1)
        : spec.image;
    for (const std::size_t e : spec.entryPoints) {
        if (e >= image.size()) {
            throw VerifierError(
                "component '" + spec.name + "' exports entry point " +
                std::to_string(e) + " outside its " +
                std::to_string(image.size()) + "-byte image");
        }
    }
    verifier::VerifierReport report =
        verifier::verifyImageFrom(image, spec.entryPoints);
    stats_->countVerifiedImage(report.imageBytes, report.decodedBytes,
                               report.insnCount, report.rejectingCount(),
                               report.embeddedCount());
    if (const verifier::CodeFinding *f = report.firstRejecting()) {
        throw VerifierError(
            "component '" + spec.name +
            "' contains forbidden instruction '" + f->mnemonic +
            "' at offset " + std::to_string(f->offset) + " (" +
            verifier::findingClassName(f->cls) + ")");
    }

    auto cub = std::make_unique<Cubicle>();
    cub->id = static_cast<Cid>(cubicles_.size());
    cub->name = spec.name;
    cub->kind = spec.kind;

    if (spec.kind == CubicleKind::kIsolated) {
        cub->pkey = mpk_.allocKey(cfg_.virtualizeTags);
        if (cub->pkey < 0) {
            throw LoaderError(
                "MPK keys exhausted loading '" + spec.name +
                "' (enable virtualizeTags for >14 isolated cubicles)");
        }
    } else {
        cub->pkey = sharedKey_;
    }
    const auto pkey = static_cast<uint8_t>(cub->pkey);
    const Cid cid = cub->id;

    // Code pages: map writable to copy the image, then execute-only
    // (rule 1, §5.4: cubicles cannot change execute permissions later).
    const std::size_t code_pages = hw::pagesFor(image.size());
    cub->codeRange = pageAlloc_.allocPages(code_pages, cid,
                                           mem::PageType::kCode,
                                           hw::kPermWrite, pkey);
    if (!cub->codeRange.valid())
        throw OutOfMemory("code pages for '" + spec.name + "'");
    std::memcpy(cub->codeRange.ptr, image.data(), image.size());
    space_.setPerms(cub->codeRange.first, cub->codeRange.count,
                    hw::kPermExec);

    // Global data pages.
    if (spec.globalPages > 0) {
        cub->globalRange = pageAlloc_.allocPages(
            spec.globalPages, cid, mem::PageType::kGlobal,
            hw::kPermRead | hw::kPermWrite, pkey);
        if (!cub->globalRange.valid())
            throw OutOfMemory("global pages for '" + spec.name + "'");
    }

    // Per-cubicle stack arena.
    const std::size_t stack_pages =
        spec.stackPages ? spec.stackPages : cfg_.stackPages;
    cub->stackRange = pageAlloc_.allocPages(
        stack_pages, cid, mem::PageType::kStack,
        hw::kPermRead | hw::kPermWrite, pkey);
    if (!cub->stackRange.valid())
        throw OutOfMemory("stack pages for '" + spec.name + "'");

    // Heap: default page source is the monitor's pool. The boot code may
    // rewire it to cross-call the ALLOC component (see System::boot).
    const std::size_t chunk_pages =
        spec.heapChunkPages ? spec.heapChunkPages : cfg_.heapChunkPages;
    cub->heap = std::make_unique<mem::HeapAllocator>(
        [this, cid](std::size_t pages) {
            std::lock_guard<std::mutex> l(mutex_);
            return pageAlloc_.allocPages(
                pages, cid, mem::PageType::kHeap,
                hw::kPermRead | hw::kPermWrite,
                static_cast<uint8_t>(cubicles_[cid]->pkey));
        },
        [this](const mem::PageRange &r) {
            std::lock_guard<std::mutex> l(mutex_);
            pageAlloc_.freePages(r);
        },
        chunk_pages);

    cubicles_.push_back(std::move(cub));
    loadReports_.push_back(std::move(report));
    return cid;
}

const verifier::VerifierReport &
Monitor::verifierReport(Cid cid) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    assert(cid < loadReports_.size());
    return loadReports_[cid];
}

verifier::WiringSnapshot
Monitor::snapshotWiring() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    verifier::WiringSnapshot snap;
    snap.sharedKey = sharedKey_;
    snap.cubicles.reserve(cubicles_.size());
    for (const auto &cub : cubicles_) {
        snap.cubicles.push_back(verifier::CubicleWiring{
            cub->id, cub->name, cub->kind, cub->pkey});
    }
    for (Wid wid = 0; wid < windows_.size(); ++wid) {
        const Window &w = windows_[wid];
        if (!w.live)
            continue;
        snap.windows.push_back(verifier::WindowWiring{
            wid, w.owner, w.acl, w.rangeCount, w.hotKey,
            w.rangesEverAdded});
    }
    return snap;
}

Cubicle &
Monitor::cubicle(Cid cid)
{
    assert(cid < cubicles_.size());
    return *cubicles_[cid];
}

const Cubicle &
Monitor::cubicle(Cid cid) const
{
    assert(cid < cubicles_.size());
    return *cubicles_[cid];
}

hw::Pkru
Monitor::pkruFor(Cid cid) const
{
    hw::Pkru pkru = hw::Pkru::denyAll();
    if (cid < cubicles_.size()) {
        pkru.allow(cubicles_[cid]->pkey);
        // Hot-window keys granted to this cubicle (paper §8).
        pkru.mergeAllow(cubicles_[cid]->extraAllow);
    }
    // Shared cubicles' static data is accessible from every cubicle.
    pkru.allow(sharedKey_);
    return pkru;
}

// ----------------------------------------------------------------------
// Window API
// ----------------------------------------------------------------------

Window &
Monitor::windowChecked(Cid caller, Wid wid, const char *op)
{
    if (wid >= windows_.size() || !windows_[wid].live)
        throw WindowError(std::string(op) + ": invalid window id");
    Window &w = windows_[wid];
    // Windows are assigned to the creating cubicle and can only be
    // managed by it (paper §4).
    if (w.owner != caller)
        throw WindowError(std::string(op) + ": cubicle " +
                          std::to_string(caller) +
                          " does not own window " + std::to_string(wid));
    return w;
}

Wid
Monitor::windowInit(Cid caller)
{
    std::lock_guard<std::mutex> lock(mutex_);
    stats_->countWindowOp();
    // Reuse a dead slot if available.
    for (Wid wid = 0; wid < windows_.size(); ++wid) {
        if (!windows_[wid].live) {
            windows_[wid] = Window{caller, 0, true, 0};
            return wid;
        }
    }
    windows_.push_back(Window{caller, 0, true, 0});
    return static_cast<Wid>(windows_.size() - 1);
}

void
Monitor::windowAdd(Cid caller, Wid wid, const void *ptr, std::size_t size)
{
    std::lock_guard<std::mutex> lock(mutex_);
    stats_->countWindowOp();
    Window &w = windowChecked(caller, wid, "window_add");

    if (!space_.contains(ptr) || size == 0)
        throw WindowError("window_add: range outside the address space");
    const auto &pm = meta_.at(space_.pageIndexOf(ptr));
    // Only memory owned by the calling cubicle may be shared.
    if (pm.owner != caller)
        throw WindowError("window_add: cubicle " + std::to_string(caller) +
                          " does not own the memory range");
    cubicles_[caller]->windows.add(pm.type, ptr, size, wid);
    ++w.rangeCount;
    ++w.rangesEverAdded;

    if (w.hotKey >= 0) {
        // Hot window: tag the pages with the window key now, so uses
        // by any ACL member need no trap at all.
        const std::size_t first = space_.pageIndexOf(ptr);
        const std::size_t last = space_.pageIndexOf(
            static_cast<const uint8_t *>(ptr) + size - 1);
        space_.setKey(first, last - first + 1,
                      static_cast<uint8_t>(w.hotKey));
        stats_->countRetag();
    }
}

void
Monitor::windowRemove(Cid caller, Wid wid, const void *ptr)
{
    std::lock_guard<std::mutex> lock(mutex_);
    stats_->countWindowOp();
    Window &w = windowChecked(caller, wid, "window_remove");
    if (!cubicles_[caller]->windows.remove(wid, ptr))
        throw WindowError("window_remove: no such range in window");
    --w.rangeCount;
}

void
Monitor::windowOpen(Cid caller, Wid wid, Cid peer)
{
    std::lock_guard<std::mutex> lock(mutex_);
    stats_->countWindowOp();
    Window &w = windowChecked(caller, wid, "window_open");
    w.acl |= aclBit(peer);
    if (w.hotKey >= 0 && peer < cubicles_.size())
        cubicles_[peer]->extraAllow.allow(w.hotKey);
}

void
Monitor::windowClose(Cid caller, Wid wid, Cid peer)
{
    std::lock_guard<std::mutex> lock(mutex_);
    stats_->countWindowOp();
    Window &w = windowChecked(caller, wid, "window_close");
    // Lazy revocation: the ACL bit is cleared but pages keep their
    // current tag (causal tag consistency, §5.6). Hot windows revoke
    // eagerly through the PKRU mask instead.
    w.acl &= ~aclBit(peer);
    if (w.hotKey >= 0 && peer < cubicles_.size())
        cubicles_[peer]->extraAllow.deny(w.hotKey);
}

void
Monitor::windowCloseAll(Cid caller, Wid wid)
{
    std::lock_guard<std::mutex> lock(mutex_);
    stats_->countWindowOp();
    Window &w = windowChecked(caller, wid, "window_close_all");
    if (w.hotKey >= 0) {
        for (Cid cid = 0; cid < cubicles_.size(); ++cid) {
            if ((w.acl & aclBit(cid)) && cid != caller)
                cubicles_[cid]->extraAllow.deny(w.hotKey);
        }
    }
    w.acl = 0;
}

void
Monitor::windowDestroy(Cid caller, Wid wid)
{
    std::lock_guard<std::mutex> lock(mutex_);
    stats_->countWindowOp();
    Window &w = windowChecked(caller, wid, "window_destroy");
    if (w.hotKey >= 0) {
        // Return the window's pages to the owner's tag and revoke the
        // key from every PKRU mask. (The key itself is not recycled;
        // hardware keys are a scarce, explicitly-requested resource.)
        for (std::size_t page = 0; page < space_.numPages(); ++page) {
            if (space_.entryAt(page).present &&
                space_.entryAt(page).pkey == w.hotKey) {
                space_.setKey(page, 1,
                              static_cast<uint8_t>(
                                  cubicles_[caller]->pkey));
            }
        }
        for (auto &cub : cubicles_)
            cub->extraAllow.deny(w.hotKey);
    }
    cubicles_[caller]->windows.removeAll(wid);
    w = Window{}; // live = false; slot reusable
}

void
Monitor::windowSetHot(Cid caller, Wid wid)
{
    std::lock_guard<std::mutex> lock(mutex_);
    stats_->countWindowOp();
    Window &w = windowChecked(caller, wid, "window_set_hot");
    if (w.hotKey >= 0)
        return;
    const int key = mpk_.allocKey();
    if (key < 0) {
        throw WindowError(
            "window_set_hot: MPK keys exhausted (hot windows use one "
            "dedicated hardware key each)");
    }
    w.hotKey = key;
    cubicles_[caller]->extraAllow.allow(key);
    for (Cid cid = 0; cid < cubicles_.size(); ++cid) {
        if (w.acl & aclBit(cid))
            cubicles_[cid]->extraAllow.allow(key);
    }
}

AclMask
Monitor::windowAcl(Wid wid) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (wid >= windows_.size() || !windows_[wid].live)
        throw WindowError("windowAcl: invalid window id");
    return windows_[wid].acl;
}

// ----------------------------------------------------------------------
// Trap-and-map
// ----------------------------------------------------------------------

bool
Monitor::handleFault(const hw::Fault &fault, Cid accessor,
                     IsolationMode mode)
{
    std::lock_guard<std::mutex> lock(mutex_);

    clock_.charge(hw::cost::kFaultTrap);
    stats_->countTrap();

    // Only MPK faults are resolvable; page-permission and not-present
    // faults are genuine errors.
    if (fault.reason != hw::FaultReason::kPkuRead &&
        fault.reason != hw::FaultReason::kPkuWrite) {
        return false;
    }
    if (!space_.contains(fault.addr) || accessor >= cubicles_.size())
        return false;

    // ❷ page metadata: owner and type in O(1).
    const std::size_t page = space_.pageIndexOf(fault.addr);
    const mem::PageMeta &pm = meta_.at(page);
    if (pm.owner == kNoCubicle || pm.owner >= cubicles_.size())
        return false;

    const auto accessor_key =
        static_cast<uint8_t>(cubicles_[accessor]->pkey);

    // The owner always has access to its own pages (implicit window 0):
    // a fault here means the page was lazily left tagged for a previous
    // accessor; retag it back.
    if (pm.owner == accessor) {
        space_.setKey(page, 1, accessor_key);
        stats_->countRetag();
        return true;
    }

    // "CubicleOS w/o ACLs": MPK enforced, windows open for any access.
    if (mode == IsolationMode::kNoAcl) {
        space_.setKey(page, 1, accessor_key);
        stats_->countRetag();
        return true;
    }

    // ❸ linear search of the owner's window-descriptor array.
    Cubicle &owner = *cubicles_[pm.owner];
    const Wid wid = owner.windows.findWindowFor(pm.type, fault.addr);
    if (wid == kInvalidWindow)
        return false;

    // ❹ O(1) ACL bitmask check.
    const Window &w = windows_[wid];
    if (!w.live || (w.acl & aclBit(accessor)) == 0)
        return false;

    // ❺ grant: retag the page to the accessor's cubicle.
    space_.setKey(page, 1, accessor_key);
    stats_->countRetag();
    return true;
}

// ----------------------------------------------------------------------
// Memory management
// ----------------------------------------------------------------------

mem::PageRange
Monitor::allocPagesFor(Cid cid, std::size_t n, mem::PageType type,
                       uint8_t perms)
{
    std::lock_guard<std::mutex> lock(mutex_);
    assert(cid < cubicles_.size());
    return pageAlloc_.allocPages(
        n, cid, type, perms, static_cast<uint8_t>(cubicles_[cid]->pkey));
}

void
Monitor::freePages(const mem::PageRange &range)
{
    std::lock_guard<std::mutex> lock(mutex_);
    pageAlloc_.freePages(range);
}

std::byte *
Monitor::stackAlloc(Cid cid, std::size_t size, std::size_t align)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Cubicle &cub = cubicle(cid);
    std::size_t off = (cub.stackUsed + align - 1) & ~(align - 1);
    if (off + size > cub.stackRange.sizeBytes())
        throw OutOfMemory("stack arena of '" + cub.name + "'");
    cub.stackUsed = off + size;
    return cub.stackRange.ptr + off;
}

std::size_t
Monitor::stackOffset(Cid cid) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return cubicles_[cid]->stackUsed;
}

void
Monitor::stackRestore(Cid cid, std::size_t saved)
{
    std::lock_guard<std::mutex> lock(mutex_);
    cubicles_[cid]->stackUsed = saved;
}

} // namespace cubicleos::core
