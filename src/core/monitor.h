/**
 * @file
 * The trusted memory monitor (paper §4, §5.3) and cubicle loader (§5.4).
 *
 * The monitor bootstraps the system and enforces cubicle isolation and
 * window access permissions. It owns the simulated address space, the
 * MPK key allocator, the page metadata map and the page pool, plus the
 * cubicle and window tables. Its central operation is the lazy
 * trap-and-map fault handler:
 *
 *   ❶ a cross-cubicle access faults (simulated MPK check fails);
 *   ❷ the faulting page's metadata yields its owner and type in O(1);
 *   ❸ the owner's window-descriptor array for that type is searched
 *     for a range containing the address (sorted interval index);
 *   ❹ the window's ACL bitmask is indexed by the accessor's cubicle ID;
 *   ❺ on success the page's MPK tag is reassigned to the accessor.
 *
 * Closing a window does not retag pages (causal tag consistency, §5.6):
 * the page keeps its tag until a cubicle with access — including the
 * owner — touches it again and traps.
 *
 * # Lock hierarchy
 *
 * The monitor used to serialise every entry point — loads, window ops,
 * faults, stack bumps, heap chunks — on one mutex, so concurrent
 * cubicles queued behind each other's faults. State is now guarded by
 * scope, acquired strictly in this order (never the reverse). The
 * order is machine-checked: every lock is a core/locking.h wrapper
 * carrying the level's LockRank (validated at runtime by the debug
 * lockdep checker), and the fields each lock protects are GUARDED_BY
 * it (validated at compile time by clang's thread-safety analysis —
 * `tidy-tsa` preset):
 *
 *   1. loaderMutex_      — cubicle/report table growth (loadComponent)
 *   2. windowMutex_      — windows_, per-cubicle WindowTables, ACLs,
 *                          hot keys. shared_mutex: faults take it
 *                          shared (❸/❹ are reads), window mutations
 *                          take it exclusive.
 *   3. Cubicle::stackMu / Cubicle::heapMu — per-cubicle arena and heap
 *                          state; cubicles never contend with each
 *                          other. heapMu of different cubicles may
 *                          chain through cross-calling chunk sources
 *                          (acyclic heap-source routing).
 *   4. pageMutex_        — the page pool + metadata assignment (leaf).
 *
 * Lock-free by design (no level): the fault fast paths. Page metadata
 * (owner/type), page-table entries (present/perms/pkey) and each
 * cubicle's published fields are word-atomic, the cubicle table is
 * pre-reserved and append-only behind an atomic count, and the grant
 * commit ❺ is an atomic tag store (hw::AddressSpace::setKey) — so an
 * owner re-faulting its own page, and the whole no-ACL ablation mode,
 * resolve without taking any lock, and System::touch's no-fault check
 * never synchronises at all (like the hardware TLB check).
 *
 * Revocation ordering: windowClose/CloseAll/Remove/Destroy bump
 * windowEpoch_ after mutating the ACL/ranges, which invalidates every
 * thread's grant cache (see System::touch). Revocation remains lazy
 * exactly as §5.6 specifies — pages keep their tags — so a bounded
 * stale-grant window is inherent to the design, not added by the
 * caching.
 */

#ifndef CUBICLEOS_CORE_MONITOR_H_
#define CUBICLEOS_CORE_MONITOR_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "core/component.h"
#include "core/cubicle.h"
#include "core/errors.h"
#include "core/keytable.h"
#include "core/locking.h"
#include "core/stats.h"
#include "core/verifier/lint.h"
#include "core/verifier/report.h"
#include "core/window.h"
#include "hw/cycles.h"
#include "hw/mpk.h"
#include "hw/page_table.h"
#include "hw/relaxed_atomic.h"
#include "mem/arena.h"
#include "mem/page_meta.h"
#include "mem/suballoc.h"

namespace cubicleos::core {

/**
 * How the least-privilege audit (verifier::auditWiring) is applied at
 * strict-verify boot. kOff keeps the historical behaviour: only the
 * syntactic linter gates boot. kReport runs the dataflow rules and
 * records their findings in Stats but never refuses. kStrict turns
 * warning-or-worse dataflow findings into boot refusals — asserting
 * that init itself exercises every grant the deployment declares.
 */
enum class AuditLevel : uint8_t { kOff, kReport, kStrict };

/** System-wide configuration knobs. */
struct SystemConfig {
    /** Size of the simulated address space in pages (default 64 MiB). */
    std::size_t numPages = 16384;
    /** Isolation mode (Fig. 6 ablation switch). */
    IsolationMode mode = IsolationMode::kFull;
    /**
     * Tag virtualisation (DESIGN.md §14): when the 16 physical MPK
     * tags run out, give further isolated cubicles *logical* keys and
     * multiplex them onto a reserved pool of dynamic physical tags
     * with LRU eviction — evicted cubicles' pages are parked under a
     * reserved tag and fault back in on next touch. Off by default:
     * loading past the hardware limit then fails exactly as before.
     */
    bool virtualizeTags = false;
    /**
     * Physical tags the dynamic pool reserves for virtualised
     * cubicles (only meaningful with virtualizeTags). The rest of the
     * tag space keeps serving statically-tagged cubicles and hot
     * windows.
     */
    std::size_t dynamicTags = 4;
    /**
     * Caps the simulated hardware's physical-tag space below 16
     * (test-only: forces tag pressure with as few as 4 tags;
     * clamped to [2, hw::kNumPhysPkeys]).
     */
    int physTagBudget = hw::kNumPhysPkeys;
    /**
     * Physical keys kept allocatable for hot windows (paper §8) when
     * virtualizeTags is on: static cubicle tagging stops once only
     * this many keys remain, so the infrastructure's hot windows can
     * still claim dedicated hardware tags. Hot windows requested
     * after the reserve too is spent degrade to ordinary trap-and-map
     * windows instead of failing the boot.
     */
    int hotKeyReserve = 2;
    /** Model the paper's modified-MPK execute semantics. */
    bool modifiedExecSemantics = true;
    /** Default per-cubicle stack arena size in pages. */
    std::size_t stackPages = 16;
    /** Default heap growth granularity in pages. */
    std::size_t heapChunkPages = 16;
    /**
     * Strict verification: after boot wires every component, run the
     * isolation linter over the wiring snapshot and refuse to boot on
     * any warning-or-worse finding. Off by default: deliberately loose
     * deployments (ablation baselines, lint demos) must stay bootable.
     */
    bool strictVerify = false;
    /**
     * Least-privilege audit level applied when @c strictVerify gates
     * boot (no effect otherwise). See AuditLevel.
     */
    AuditLevel auditLevel = AuditLevel::kOff;
    /**
     * Upper bound, in pages, on one range-granular retag (trap-and-map
     * step ❺ and eager prestaging). One fault retags the whole
     * window-range ∩ owner-pages intersection around the faulting
     * address, but never more than this many pages per pkey_mprotect
     * call, so a huge window cannot turn one trap into an unbounded
     * tag sweep. Default 512 pages = 2 MiB (a huge-page analogue).
     * Setting 1 restores the paper's per-page behaviour exactly.
     */
    std::size_t retagChunkPages = 512;
};

/**
 * Trusted memory monitor + cubicle loader.
 *
 * Thread-safety: see the lock-hierarchy note in the file header. Every
 * public entry point is safe to call from any thread after boot;
 * loadComponent additionally serialises against itself.
 */
class Monitor {
  public:
    explicit Monitor(const SystemConfig &cfg, Stats *stats);

    Monitor(const Monitor &) = delete;
    Monitor &operator=(const Monitor &) = delete;

    hw::AddressSpace &space() { return space_; }
    const hw::AddressSpace &space() const { return space_; }
    hw::Mpk &mpk() { return mpk_; }
    hw::CycleClock &clock() { return clock_; }
    mem::PageMetaMap &pageMeta() { return meta_; }
    const SystemConfig &config() const { return cfg_; }

    /** MPK key shared by all shared cubicles' static data. */
    int sharedKey() const { return sharedKey_; }

    /**
     * The reserved "parked" physical tag evicted cubicles' pages are
     * swept to, or -1 when tag virtualisation is off. No cubicle's
     * PKRU ever allows it — all parked cubicles share the tag, so
     * allowing it would cross-expose every parked cubicle; any access
     * to a parked page faults into handleFault, which re-binds the
     * owner first (DESIGN.md §14).
     */
    int parkedKey() const { return parkedKey_; }

    /**
     * Monotonic key-binding epoch, bumped on every eviction/re-bind.
     * Models the PKRU-update IPI of a real implementation: threads
     * whose cached PKRU predates the current epoch must recompute it
     * before trusting a permission check (see System::touch).
     */
    uint64_t keyEpoch() const
    {
        return keyEpoch_.load(std::memory_order_seq_cst);
    }

    /**
     * Ensures @p cid's pages are resident under a physical tag,
     * evicting the LRU dynamically-tagged cubicle if the pool is full.
     * No-op (lock-free) when the cubicle is statically tagged or
     * already bound.
     * @return the physical tag now backing @p cid.
     */
    int ensureResident(Cid cid);

    /**
     * LRU bookkeeping + fault-in hook for a cross-call into @p callee:
     * stamps the LRU clock and, when @p callee is parked, binds it a
     * physical tag (counting a tag miss; hits are counted otherwise).
     * Called by CrossCallGuard before computing the callee's PKRU.
     */
    void noteSwitch(Cid callee);

    // ------------------------------------------------------------------
    // Loader (paper §5.4)
    // ------------------------------------------------------------------

    /**
     * Loads a component into a fresh cubicle.
     *
     * Runs the interprocedural verifier over the code image (linear
     * sweep, direct-branch walk, then jump-table/entry-table indirect
     * resolution; see core/verifier/ipcfg.h) through the process-wide
     * image-hash cache (core/verifier/cache.h), allocates an MPK key
     * (isolated cubicles), maps code pages execute-only, and sets up
     * globals, the stack arena and the heap sub-allocator.
     *
     * @throws VerifierError when a forbidden sequence is reachable
     *         from an entry point, when unresolved indirect jump flow
     *         (or an undecodable reachable byte) leaves forbidden
     *         bytes possibly live, when an entry point or declared
     *         indirect-target table lies outside the image;
     *         LoaderError on key or table exhaustion.
     */
    Cid loadComponent(const ComponentSpec &spec);

    // ------------------------------------------------------------------
    // Lifecycle (DESIGN.md §15)
    // ------------------------------------------------------------------

    /**
     * Kills cubicle @p cid and reclaims everything it held, while the
     * rest of the deployment keeps serving.
     *
     * Crash semantics: no component teardown hook runs here — the
     * cubicle is treated exactly like a crashed process. The sequence:
     *
     *   1. mark kDraining: CrossCallGuard refuses new entries with
     *      PeerFault, and every checked access (touch/heap) by a
     *      thread already inside throws PeerFault, unwinding it;
     *   2. quiesce: wait for Cubicle::inFlight to drain to zero;
     *   3. close every window it owns and revoke its ACL bit (plus
     *      usage/prestage mask bits) from every other live window,
     *      recording the revoked set for restart replay; sweep every
     *      page still carrying its tag back to the page owner's tag;
     *      bump the revocation epoch so no grant cache or prestage
     *      hint can touch the reclaimed pages;
     *   4. release its physical tag: a bound dynamic tag returns to
     *      the key table's free pool, a static tag is saved for
     *      restart (hw::Mpk cannot recycle physical keys); bump the
     *      key epoch (the PKRU-refresh IPI analogue);
     *   5. return its heap chunks and code/global/stack pages to the
     *      page allocator; mark kDead.
     *
     * Parked (tag-evicted) cubicles are destroyed in place: their
     * pages are reclaimed under the parked tag without faulting the
     * cubicle back in.
     *
     * @return pages reclaimed (also counted in Stats::reclaimedPages).
     * @throws LoaderError on an unknown, shared, or non-live cubicle.
     */
    std::size_t destroyCubicle(Cid cid);

    /**
     * Relaunches a destroyed cubicle in place: re-verifies the image
     * through the process-wide verify cache (a content-identical image
     * hits and skips the sweep + CFG walk, which is what makes restart
     * cheap), reallocates code/global/stack/heap under the saved
     * static tag (or re-parks a dynamically-tagged cubicle until first
     * touch), and replays the grants recorded at destroy time —
     * including standing prestage hints. The caller is responsible for
     * re-running the component's init() and any boot-time audit (see
     * System::restartComponent).
     * @throws LoaderError unless the cubicle is kDead; VerifierError
     *         as in loadComponent.
     */
    void restartCubicle(Cid cid, const ComponentSpec &spec);

    /** Lock-free: true while @p cid is kLive (unknown cids are not). */
    bool cubicleAlive(Cid cid) const
    {
        if (cid >= cubicleCount())
            return false;
        return static_cast<LifeState>(cubicles_[cid]->life.load()) ==
               LifeState::kLive;
    }

    /** Lifecycle state of @p cid (lock-free snapshot). */
    LifeState lifeState(Cid cid) const
    {
        return static_cast<LifeState>(cubicles_[cid]->life.load());
    }

    /** Completed destroy/restart cycles of @p cid. */
    uint64_t lifeGeneration(Cid cid) const;

    Cubicle &cubicle(Cid cid);
    const Cubicle &cubicle(Cid cid) const;
    std::size_t cubicleCount() const
    {
        return cubicleCount_.load(std::memory_order_acquire);
    }

    /**
     * The verifier report for @p cid's image, recorded at load time
     * (including report-only embedded findings that did not block the
     * load).
     */
    const verifier::VerifierReport &verifierReport(Cid cid) const;

    /**
     * Plain-data snapshot of the current wiring — cubicle table and
     * live windows — for the isolation linter. Exports are appended by
     * System::wiringSnapshot, which owns the export registry.
     */
    verifier::WiringSnapshot snapshotWiring() const;

    /** Computes the PKRU register value for a thread running in @p cid. */
    hw::Pkru pkruFor(Cid cid) const;

    // ------------------------------------------------------------------
    // Window API (paper Table 1); @p caller is the invoking cubicle
    // ------------------------------------------------------------------

    /** cubicle_window_init: creates an empty window owned by @p caller. */
    Wid windowInit(Cid caller);
    /** cubicle_window_add: associates [ptr, ptr+size) with @p wid. */
    void windowAdd(Cid caller, Wid wid, const void *ptr, std::size_t size);
    /** cubicle_window_remove: removes the range starting at @p ptr. */
    void windowRemove(Cid caller, Wid wid, const void *ptr);
    /** cubicle_window_open: allows @p peer to access @p wid's contents. */
    void windowOpen(Cid caller, Wid wid, Cid peer);
    /** cubicle_window_close: disallows @p peer. Lazy: no retagging. */
    void windowClose(Cid caller, Wid wid, Cid peer);
    /** cubicle_window_close_all: clears the whole ACL. */
    void windowCloseAll(Cid caller, Wid wid);
    /** cubicle_window_destroy: removes all ranges and frees @p wid. */
    void windowDestroy(Cid caller, Wid wid);

    /**
     * Promotes @p wid to a hot window (paper §8: window-specific
     * tags): allocates a dedicated MPK key, eagerly tags the window's
     * pages with it, and folds the key into the PKRU of the owner and
     * every cubicle currently in the ACL. Subsequent opens/closes
     * update PKRU masks instead of relying on trap-and-map.
     * @throws WindowError if the hardware keys are exhausted.
     */
    void windowSetHot(Cid caller, Wid wid);

    /**
     * Prestaging hint (eager trap-and-map): retags @p wid's ranges to
     * @p peer's key now, instead of lazily at @p peer's first-touch
     * fault. @p peer must already be in the window's ACL — the hint
     * never widens rights, it only moves the grant's step ❺ from
     * fault time to open time, so a prestaged access is exactly as
     * authorised as a faulted one. Per-page owner intersection and the
     * retagChunkPages cap apply as in handleFault. The hint counts as
     * exercised usage for the least-privilege audit: declaring
     * expected access *is* the usage declaration (same contract as
     * hot windows, which never fault either).
     *
     * @return the number of pages retagged.
     */
    std::size_t windowPrestage(Cid caller, Wid wid, Cid peer,
                               hw::Access expected);

    /** Returns the ACL of a window (introspection for tests/tools). */
    AclMask windowAcl(Wid wid) const;

    /**
     * Monotonic revocation epoch. Bumped by every operation that can
     * shrink a grant (close, closeAll, remove, destroy); per-thread
     * grant caches compare their entries' epoch against it and fall
     * back to the fault path on mismatch.
     */
    uint64_t windowEpoch() const
    {
        return windowEpoch_.load(std::memory_order_seq_cst);
    }

    // ------------------------------------------------------------------
    // Trap-and-map (paper §5.3, Fig. 4)
    // ------------------------------------------------------------------

    /**
     * Attempts to resolve a protection fault taken by @p accessor.
     *
     * Lock-free when the accessor owns the page (or in no-ACL mode);
     * otherwise takes windowMutex_ shared for the window walk and
     * commits the grant with an atomic tag store, so concurrent faults
     * in different cubicles resolve in parallel.
     *
     * @return true if the page was retagged and the access may be
     *         retried; false if this is a genuine isolation violation.
     */
    bool handleFault(const hw::Fault &fault, Cid accessor,
                     IsolationMode mode);

    // ------------------------------------------------------------------
    // Memory management for cubicles
    // ------------------------------------------------------------------

    /**
     * Allocates @p n pages for cubicle @p cid, tagged with its key and
     * typed @p type in the metadata map.
     */
    mem::PageRange allocPagesFor(Cid cid, std::size_t n,
                                 mem::PageType type,
                                 uint8_t perms = hw::kPermRead |
                                                 hw::kPermWrite);

    /** Returns pages to the pool. */
    void freePages(const mem::PageRange &range);

    /** Bump-allocates @p size bytes from @p cid's stack arena. */
    std::byte *stackAlloc(Cid cid, std::size_t size, std::size_t align);
    /** Current stack offset (for StackFrame save/restore). */
    std::size_t stackOffset(Cid cid) const;
    /** Restores the stack offset to @p saved. */
    void stackRestore(Cid cid, std::size_t saved);

    /** Free pages remaining in the monitor's pool. */
    std::size_t freePageCount() const
    {
        MutexLock lock(pageMutex_);
        return pageAlloc_.freePageCount();
    }

    /**
     * Test-only: acquires pageMutex_ then windowMutex_ — a deliberate
     * hierarchy inversion. Exists solely so the lockdep regression
     * suite can prove the checker rejects it (death test); never call
     * it from product code.
     */
    void debugAcquirePageThenWindowForTest() const;

    /**
     * Test-only: performs a window-table lookup without holding
     * windowMutex_ — the cross-object guard violation that
     * WindowTable::bindGuard exists to catch. With CUBICLE_LOCKDEP
     * this aborts; never call it from product code.
     */
    void debugWindowLookupUnlockedForTest(Cid cid) const;

  private:
    Window &windowChecked(Cid caller, Wid wid, const char *op)
        REQUIRES(windowMutex_);

    /**
     * windowDestroy's body without the lock: hot-key sweep back to the
     * owner's tag, extraAllow revocation, range removal, slot free.
     * Shared between the public windowDestroy and destroyCubicle.
     */
    void destroyWindowLocked(Cid owner, Wid wid) REQUIRES(windowMutex_);

    /** Image validation + verify-cache run shared by load and restart. */
    verifier::VerifierReport verifyImage(const ComponentSpec &spec,
                                         const std::vector<uint8_t> &image);

    /** Allocates code/global/stack + heap for @p cub (load/restart). */
    void provisionCubicle(Cubicle &cub, const ComponentSpec &spec,
                          const std::vector<uint8_t> &image);
    void bumpEpoch() REQUIRES(windowMutex_)
    {
        windowEpoch_.fetch_add(1, std::memory_order_seq_cst);
    }

    /**
     * Evicts the LRU dynamically-tagged cubicle and returns its tag,
     * now free for re-binding. Sweeps every present page still tagged
     * with the victim's tag — the victim's own pages *and* pages it
     * was granted through windows — to the parked tag, and bumps both
     * the revocation epoch (cached grants must not touch parked
     * pages) and the key epoch.
     */
    int evictLocked() REQUIRES(windowMutex_, keyMutex_);

    /**
     * Restores @p cid's pages from the parked tag to @p tag and
     * replays standing prestage hints on its live windows.
     * @return pages restored.
     */
    std::size_t faultInLocked(Cid cid, int tag)
        REQUIRES(windowMutex_, keyMutex_);

    /** One chunked setKeyRange sweep: pages in [first,end) whose
     *  current tag is @p from become @p to. Returns pages retagged. */
    std::size_t sweepTag(std::size_t first, std::size_t end, int from,
                         int to);

    /**
     * Eagerly retags window @p wid's ranges (owner ∩ not-peer-tagged,
     * chunked) to @p peer_key. With @p only_parked, restricted to
     * currently parked pages — the fault-in prestage replay.
     * @return pages retagged.
     */
    std::size_t prestageSweep(Cid owner, Wid wid, uint8_t peer_key,
                              bool only_parked) REQUIRES(windowMutex_);

    SystemConfig cfg_;
    Stats *stats_;
    hw::CycleClock clock_;
    hw::AddressSpace space_;
    hw::Mpk mpk_;
    mem::PageMetaMap meta_;
    mem::PageAllocator pageAlloc_ GUARDED_BY(pageMutex_);
    int sharedKey_;
    int parkedKey_ = -1;

    /** Logical→physical bindings for dynamically-tagged cubicles. */
    KeyTable keys_; // guarded by keyMutex_ (bindGuard + lockdep)
    std::atomic<uint64_t> keyEpoch_{0};
    /** LRU clock: stamped into Cubicle::lastUse on every switch. */
    std::atomic<uint64_t> useClock_{0};

    // Locks, in acquisition order (see the file-header hierarchy).
    // Declared before the cubicle table: cubicle heap destructors
    // return chunks through callbacks that lock pageMutex_, so it must
    // outlive them.
    /**
     * Serialises destroy/restart against each other. Rank kLifecycle
     * sits above the whole hierarchy: a lifecycle operation walks
     * loader → window → key → cubicle → page underneath it, and no
     * code path ever acquires it while holding another monitor lock.
     */
    mutable Mutex lifecycleMutex_{LockRank::kLifecycle,
                                  "monitor.lifecycle"};
    mutable Mutex loaderMutex_
        ACQUIRED_AFTER(lifecycleMutex_){LockRank::kLoader,
                                        "monitor.loader"};
    mutable SharedMutex windowMutex_
        ACQUIRED_AFTER(loaderMutex_){LockRank::kWindow, "monitor.window"};
    /**
     * Serialises key-table bind/evict decisions. Rank kKeyTable sits
     * between kWindow and kCubicle: eviction runs under the exclusive
     * window lock (its page sweep must not race the fault handler's
     * window walk, and it bumps the revocation epoch), and never takes
     * per-cubicle or page locks (the sweep is an atomic tag store).
     */
    mutable Mutex keyMutex_
        ACQUIRED_AFTER(windowMutex_){LockRank::kKeyTable, "monitor.keys"};
    mutable Mutex pageMutex_
        ACQUIRED_AFTER(keyMutex_){LockRank::kPage, "monitor.page"};

    /**
     * Append-only, pre-reserved to kMaxCubicles so readers index it
     * without locking: elements never move, and cubicleCount_'s
     * release/acquire pair publishes each new entry. Deliberately NOT
     * GUARDED_BY(loaderMutex_): the fault/cross-call paths read it
     * lock-free through the publication protocol, which thread-safety
     * analysis cannot express (growth is serialised by loaderMutex_).
     */
    std::vector<std::unique_ptr<Cubicle>> cubicles_;
    std::atomic<std::size_t> cubicleCount_{0};

    std::vector<Window> windows_ GUARDED_BY(windowMutex_);
    std::atomic<uint64_t> windowEpoch_{0};

    /**
     * Per-window dataflow history for the least-privilege audit
     * (verifier::auditWiring): which peers actually faulted a read or
     * a write through the window. Parallel to windows_; slots are
     * reset when windowInit recycles a descriptor. The members are
     * relaxed atomics so the fault path can record usage under the
     * shared window lock; hot windows never fault and therefore stay
     * blank (the audit's documented blind spot).
     */
    struct WindowUsage {
        AtomicAclMask usedRead;
        AtomicAclMask usedWrite;
        /**
         * Peers with a standing prestage hint on this window (read /
         * write), recorded by windowPrestage and cleared with the
         * usage masks on slot recycle. Fault-in replays these so a
         * prestage hint survives its pages being parked by an
         * eviction (the grant layer declared the access once; the
         * monitor keeps the declaration, DESIGN.md §14).
         */
        AtomicAclMask prestagedRead;
        AtomicAclMask prestagedWrite;
    };
    std::vector<WindowUsage> windowUsage_ GUARDED_BY(windowMutex_);

    /** Load-time verifier reports, parallel to cubicles_ (same
     *  pre-reserved append-only publication scheme). */
    std::vector<verifier::VerifierReport> loadReports_;

    /**
     * Per-cubicle lifecycle bookkeeping (saved static key, revoked
     * grants to replay, generation), parallel to cubicles_. Grown at
     * load under loaderMutex_; the record contents are only touched by
     * destroy/restart under lifecycleMutex_.
     */
    std::vector<LifecycleRecord> lifeRecords_;
};

} // namespace cubicleos::core

#endif // CUBICLEOS_CORE_MONITOR_H_
