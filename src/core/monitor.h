/**
 * @file
 * The trusted memory monitor (paper §4, §5.3) and cubicle loader (§5.4).
 *
 * The monitor bootstraps the system and enforces cubicle isolation and
 * window access permissions. It owns the simulated address space, the
 * MPK key allocator, the page metadata map and the page pool, plus the
 * cubicle and window tables. Its central operation is the lazy
 * trap-and-map fault handler:
 *
 *   ❶ a cross-cubicle access faults (simulated MPK check fails);
 *   ❷ the faulting page's metadata yields its owner and type in O(1);
 *   ❸ the owner's window-descriptor array for that type is searched
 *     linearly for a range containing the address;
 *   ❹ the window's ACL bitmask is indexed by the accessor's cubicle ID;
 *   ❺ on success the page's MPK tag is reassigned to the accessor.
 *
 * Closing a window does not retag pages (causal tag consistency, §5.6):
 * the page keeps its tag until a cubicle with access — including the
 * owner — touches it again and traps.
 */

#ifndef CUBICLEOS_CORE_MONITOR_H_
#define CUBICLEOS_CORE_MONITOR_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/component.h"
#include "core/cubicle.h"
#include "core/errors.h"
#include "core/stats.h"
#include "core/verifier/lint.h"
#include "core/verifier/report.h"
#include "core/window.h"
#include "hw/cycles.h"
#include "hw/mpk.h"
#include "hw/page_table.h"
#include "mem/arena.h"
#include "mem/page_meta.h"
#include "mem/suballoc.h"

namespace cubicleos::core {

/** System-wide configuration knobs. */
struct SystemConfig {
    /** Size of the simulated address space in pages (default 64 MiB). */
    std::size_t numPages = 16384;
    /** Isolation mode (Fig. 6 ablation switch). */
    IsolationMode mode = IsolationMode::kFull;
    /** Allow >16 cubicles by multiplexing spilled ones onto one key. */
    bool virtualizeTags = false;
    /** Model the paper's modified-MPK execute semantics. */
    bool modifiedExecSemantics = true;
    /** Default per-cubicle stack arena size in pages. */
    std::size_t stackPages = 16;
    /** Default heap growth granularity in pages. */
    std::size_t heapChunkPages = 16;
    /**
     * Strict verification: after boot wires every component, run the
     * isolation linter (verifier pass 3) over the wiring snapshot and
     * refuse to boot on any warning-or-worse finding. Off by default:
     * deliberately loose deployments (ablation baselines, lint demos)
     * must stay bootable.
     */
    bool strictVerify = false;
};

/**
 * Trusted memory monitor + cubicle loader.
 *
 * Thread-safety: mutating entry points (loading, window ops, page
 * allocation, fault handling) serialise on an internal mutex; the fast
 * no-fault access check path in System::touch reads page entries without
 * locking, mirroring how the hardware TLB check is free of software
 * synchronisation.
 */
class Monitor {
  public:
    explicit Monitor(const SystemConfig &cfg, Stats *stats);

    Monitor(const Monitor &) = delete;
    Monitor &operator=(const Monitor &) = delete;

    hw::AddressSpace &space() { return space_; }
    const hw::AddressSpace &space() const { return space_; }
    hw::Mpk &mpk() { return mpk_; }
    hw::CycleClock &clock() { return clock_; }
    mem::PageMetaMap &pageMeta() { return meta_; }
    const SystemConfig &config() const { return cfg_; }

    /** MPK key shared by all shared cubicles' static data. */
    int sharedKey() const { return sharedKey_; }

    // ------------------------------------------------------------------
    // Loader (paper §5.4)
    // ------------------------------------------------------------------

    /**
     * Loads a component into a fresh cubicle.
     *
     * Runs the reachability verifier over the code image (linear-sweep
     * classification refined by a branch-graph walk from the spec's
     * entry points; see core/verifier/cfg.h), allocates an MPK key
     * (isolated cubicles), maps code pages execute-only, and sets up
     * globals, the stack arena and the heap sub-allocator.
     *
     * @throws VerifierError when a forbidden sequence is reachable
     *         from an entry point (or conservatively, when the walk
     *         hits undecodable reachable bytes and the linear sweep
     *         rejects), or when an entry point lies outside the image;
     *         LoaderError on key or table exhaustion.
     */
    Cid loadComponent(const ComponentSpec &spec);

    Cubicle &cubicle(Cid cid);
    const Cubicle &cubicle(Cid cid) const;
    std::size_t cubicleCount() const { return cubicles_.size(); }

    /**
     * The verifier report for @p cid's image, recorded at load time
     * (including report-only embedded findings that did not block the
     * load).
     */
    const verifier::VerifierReport &verifierReport(Cid cid) const;

    /**
     * Plain-data snapshot of the current wiring — cubicle table and
     * live windows — for the isolation linter. Exports are appended by
     * System::wiringSnapshot, which owns the export registry.
     */
    verifier::WiringSnapshot snapshotWiring() const;

    /** Computes the PKRU register value for a thread running in @p cid. */
    hw::Pkru pkruFor(Cid cid) const;

    // ------------------------------------------------------------------
    // Window API (paper Table 1); @p caller is the invoking cubicle
    // ------------------------------------------------------------------

    /** cubicle_window_init: creates an empty window owned by @p caller. */
    Wid windowInit(Cid caller);
    /** cubicle_window_add: associates [ptr, ptr+size) with @p wid. */
    void windowAdd(Cid caller, Wid wid, const void *ptr, std::size_t size);
    /** cubicle_window_remove: removes the range starting at @p ptr. */
    void windowRemove(Cid caller, Wid wid, const void *ptr);
    /** cubicle_window_open: allows @p peer to access @p wid's contents. */
    void windowOpen(Cid caller, Wid wid, Cid peer);
    /** cubicle_window_close: disallows @p peer. Lazy: no retagging. */
    void windowClose(Cid caller, Wid wid, Cid peer);
    /** cubicle_window_close_all: clears the whole ACL. */
    void windowCloseAll(Cid caller, Wid wid);
    /** cubicle_window_destroy: removes all ranges and frees @p wid. */
    void windowDestroy(Cid caller, Wid wid);

    /**
     * Promotes @p wid to a hot window (paper §8: window-specific
     * tags): allocates a dedicated MPK key, eagerly tags the window's
     * pages with it, and folds the key into the PKRU of the owner and
     * every cubicle currently in the ACL. Subsequent opens/closes
     * update PKRU masks instead of relying on trap-and-map.
     * @throws WindowError if the hardware keys are exhausted.
     */
    void windowSetHot(Cid caller, Wid wid);

    /** Returns the ACL of a window (introspection for tests/tools). */
    AclMask windowAcl(Wid wid) const;

    // ------------------------------------------------------------------
    // Trap-and-map (paper §5.3, Fig. 4)
    // ------------------------------------------------------------------

    /**
     * Attempts to resolve a protection fault taken by @p accessor.
     *
     * @return true if the page was retagged and the access may be
     *         retried; false if this is a genuine isolation violation.
     */
    bool handleFault(const hw::Fault &fault, Cid accessor,
                     IsolationMode mode);

    // ------------------------------------------------------------------
    // Memory management for cubicles
    // ------------------------------------------------------------------

    /**
     * Allocates @p n pages for cubicle @p cid, tagged with its key and
     * typed @p type in the metadata map.
     */
    mem::PageRange allocPagesFor(Cid cid, std::size_t n,
                                 mem::PageType type,
                                 uint8_t perms = hw::kPermRead |
                                                 hw::kPermWrite);

    /** Returns pages to the pool. */
    void freePages(const mem::PageRange &range);

    /** Bump-allocates @p size bytes from @p cid's stack arena. */
    std::byte *stackAlloc(Cid cid, std::size_t size, std::size_t align);
    /** Current stack offset (for StackFrame save/restore). */
    std::size_t stackOffset(Cid cid) const;
    /** Restores the stack offset to @p saved. */
    void stackRestore(Cid cid, std::size_t saved);

    /** Free pages remaining in the monitor's pool. */
    std::size_t freePageCount() const { return pageAlloc_.freePageCount(); }

  private:
    Window &windowChecked(Cid caller, Wid wid, const char *op);

    SystemConfig cfg_;
    Stats *stats_;
    hw::CycleClock clock_;
    hw::AddressSpace space_;
    hw::Mpk mpk_;
    mem::PageMetaMap meta_;
    mem::PageAllocator pageAlloc_;
    int sharedKey_;

    /**
     * Declared before the cubicle table: cubicle heap destructors
     * return chunks through callbacks that lock this mutex, so it must
     * outlive them.
     */
    mutable std::mutex mutex_;

    std::vector<std::unique_ptr<Cubicle>> cubicles_;
    std::vector<Window> windows_;
    /** Load-time verifier reports, parallel to cubicles_. */
    std::vector<verifier::VerifierReport> loadReports_;
};

} // namespace cubicleos::core

#endif // CUBICLEOS_CORE_MONITOR_H_
