/**
 * @file
 * Windows: user-managed temporal memory isolation (paper §3, §5.3).
 *
 * A window is a set of memory ranges owned by one cubicle plus an ACL
 * bitmask of the cubicles allowed to access those ranges. Windows are
 * discretionary ACLs consulted lazily by the monitor's trap-and-map
 * handler; opening or closing a window never touches page tables.
 *
 * Each cubicle keeps three window-descriptor arrays — for global, stack
 * and heap data — so the trap handler can locate candidate ranges from
 * the faulting page's type in O(1) + a short linear search.
 */

#ifndef CUBICLEOS_CORE_WINDOW_H_
#define CUBICLEOS_CORE_WINDOW_H_

#include <array>
#include <cstdint>
#include <vector>

#include "core/ids.h"
#include "mem/page_meta.h"

namespace cubicleos::core {

/** ACL bitmask over cubicle IDs (bit i = cubicle i may access). */
using AclMask = uint64_t;

/** Returns the ACL bit for cubicle @p cid. */
constexpr AclMask
aclBit(Cid cid)
{
    return AclMask{1} << (cid % kMaxCubicles);
}

/** One memory range associated with a window. */
struct WindowRange {
    const void *ptr = nullptr;
    std::size_t size = 0;
    Wid wid = kInvalidWindow;

    bool contains(const void *p) const
    {
        auto a = reinterpret_cast<uintptr_t>(ptr);
        auto q = reinterpret_cast<uintptr_t>(p);
        return q >= a && q < a + size;
    }
};

/** A window descriptor: owner, ACL, and liveness. */
struct Window {
    Cid owner = kNoCubicle;
    AclMask acl = 0;
    bool live = false;
    uint32_t rangeCount = 0;
    /**
     * Dedicated MPK key for a "hot" window (paper §8's proposed
     * window-specific tags), or -1. Pages added to a hot window are
     * eagerly tagged with this key, and every cubicle in the ACL has
     * the key in its PKRU — frequent use costs no trap-and-map.
     */
    int hotKey = -1;
    /**
     * Ranges added over the descriptor's whole lifetime, never
     * decremented by removes. The stale-ACL lint rule uses it to tell
     * "ACL outlived its ranges" (warning) from "ACL never covered a
     * range" (info). Reset when the slot is recycled by windowCreate.
     */
    uint32_t rangesEverAdded = 0;
};

/**
 * The per-cubicle window-descriptor arrays (global / stack / heap).
 *
 * Ranges are stored by the data type of their pages so the trap handler
 * goes straight from page metadata to the right array.
 */
class WindowTable {
  public:
    /** Adds a range (classified as @p type) belonging to window @p wid. */
    void add(mem::PageType type, const void *ptr, std::size_t size, Wid wid)
    {
        arrayFor(type).push_back(WindowRange{ptr, size, wid});
    }

    /**
     * Removes the range starting at @p ptr from window @p wid.
     * @return true if a range was removed.
     */
    bool remove(Wid wid, const void *ptr)
    {
        for (auto &arr : arrays_) {
            for (std::size_t i = 0; i < arr.size(); ++i) {
                if (arr[i].wid == wid && arr[i].ptr == ptr) {
                    arr[i] = arr.back();
                    arr.pop_back();
                    return true;
                }
            }
        }
        return false;
    }

    /** Removes every range belonging to window @p wid. */
    void removeAll(Wid wid)
    {
        for (auto &arr : arrays_) {
            std::erase_if(arr,
                          [wid](const WindowRange &r) { return r.wid == wid; });
        }
    }

    /**
     * Linear search (paper §5.3 step ❸) for a range containing @p ptr
     * in the array for @p type.
     * @return the window id, or kInvalidWindow.
     */
    Wid findWindowFor(mem::PageType type, const void *ptr) const
    {
        for (const auto &r : arrayFor(type)) {
            if (r.contains(ptr))
                return r.wid;
        }
        return kInvalidWindow;
    }

    /** Number of ranges currently registered for @p type. */
    std::size_t rangeCount(mem::PageType type) const
    {
        return arrayFor(type).size();
    }

    /** Total ranges across all three arrays. */
    std::size_t totalRanges() const
    {
        std::size_t n = 0;
        for (const auto &arr : arrays_)
            n += arr.size();
        return n;
    }

  private:
    static std::size_t indexFor(mem::PageType type)
    {
        switch (type) {
          case mem::PageType::kGlobal:
          case mem::PageType::kCode:
            return 0;
          case mem::PageType::kStack:
            return 1;
          default:
            return 2; // heap
        }
    }

    std::vector<WindowRange> &arrayFor(mem::PageType type)
    {
        return arrays_[indexFor(type)];
    }
    const std::vector<WindowRange> &arrayFor(mem::PageType type) const
    {
        return arrays_[indexFor(type)];
    }

    std::array<std::vector<WindowRange>, 3> arrays_;
};

} // namespace cubicleos::core

#endif // CUBICLEOS_CORE_WINDOW_H_
