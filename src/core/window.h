/**
 * @file
 * Windows: user-managed temporal memory isolation (paper §3, §5.3).
 *
 * A window is a set of memory ranges owned by one cubicle plus an ACL
 * bitmask of the cubicles allowed to access those ranges. Windows are
 * discretionary ACLs consulted lazily by the monitor's trap-and-map
 * handler; opening or closing a window never touches page tables.
 *
 * Each cubicle keeps three window-descriptor arrays — for global, stack
 * and heap data — so the trap handler can locate candidate ranges from
 * the faulting page's type in O(1) + an interval lookup. The arrays are
 * kept sorted by range start, so the trap-and-map step ❸ search is a
 * binary search instead of the paper's linear scan — the paper notes
 * all but one cubicle have <10 windows, but a server multiplexing many
 * client buffers through one cubicle does not stay that small.
 */

#ifndef CUBICLEOS_CORE_WINDOW_H_
#define CUBICLEOS_CORE_WINDOW_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "core/errors.h"
#include "core/ids.h"
#include "core/locking.h"
#include "hw/relaxed_atomic.h"
#include "mem/page_meta.h"

namespace cubicleos::core {

/**
 * ACL bitmask over cubicle IDs (bit i = cubicle i may access).
 *
 * A 128-bit two-word value type: kMaxCubicles outgrew a single machine
 * word when tag virtualisation lifted the 16-tag loader ceiling. The
 * struct keeps the uint64_t ergonomics the code was written against —
 * implicit construction from integer literals (`AclMask acl = 0`),
 * bitwise ops, shifts, equality — so call sites read unchanged.
 */
struct AclMask {
    uint64_t lo = 0;
    uint64_t hi = 0;

    constexpr AclMask() = default;
    constexpr AclMask(uint64_t v) : lo(v) {} // NOLINT: implicit by design
    constexpr AclMask(uint64_t l, uint64_t h) : lo(l), hi(h) {}

    constexpr bool operator==(const AclMask &) const = default;
    explicit constexpr operator bool() const { return (lo | hi) != 0; }

    friend constexpr AclMask operator|(AclMask a, AclMask b)
    {
        return AclMask{a.lo | b.lo, a.hi | b.hi};
    }
    friend constexpr AclMask operator&(AclMask a, AclMask b)
    {
        return AclMask{a.lo & b.lo, a.hi & b.hi};
    }
    constexpr AclMask operator~() const { return AclMask{~lo, ~hi}; }
    AclMask &operator|=(AclMask o)
    {
        lo |= o.lo;
        hi |= o.hi;
        return *this;
    }
    AclMask &operator&=(AclMask o)
    {
        lo &= o.lo;
        hi &= o.hi;
        return *this;
    }
    constexpr AclMask operator<<(int n) const
    {
        if (n <= 0)
            return *this;
        if (n >= 128)
            return AclMask{};
        if (n >= 64)
            return AclMask{0, lo << (n - 64)};
        return AclMask{lo << n, (hi << n) | (lo >> (64 - n))};
    }
};

/**
 * An AclMask updated atomically word-by-word (relaxed). Used for the
 * monitor's lock-free usage/prestage tracking; OR-only accumulation
 * means per-word atomicity is sufficient — a torn read can only miss a
 * concurrent grant, never invent one.
 */
class AtomicAclMask {
  public:
    AclMask load() const { return AclMask{lo_.load(), hi_.load()}; }
    void fetchOr(AclMask m)
    {
        if (m.lo != 0)
            lo_.fetchOr(m.lo);
        if (m.hi != 0)
            hi_.fetchOr(m.hi);
    }
    void store(AclMask m)
    {
        lo_.store(m.lo);
        hi_.store(m.hi);
    }

  private:
    hw::RelaxedAtomic<uint64_t> lo_{0};
    hw::RelaxedAtomic<uint64_t> hi_{0};
};

/**
 * Returns the ACL bit for cubicle @p cid.
 *
 * @throws WindowError when @p cid does not fit the mask. This used to
 *         alias silently (`cid % kMaxCubicles`), which would have let
 *         cubicle 64 share ACL bits — and therefore window access —
 *         with cubicle 0.
 */
constexpr AclMask
aclBit(Cid cid)
{
    if (cid >= static_cast<Cid>(kMaxCubicles)) {
        throw WindowError("cubicle id " + std::to_string(cid) +
                          " outside the " + std::to_string(kMaxCubicles) +
                          "-bit ACL mask");
    }
    return AclMask{1} << cid;
}

/** One memory range associated with a window. */
struct WindowRange {
    const void *ptr = nullptr;
    std::size_t size = 0;
    Wid wid = kInvalidWindow;

    uintptr_t start() const { return reinterpret_cast<uintptr_t>(ptr); }

    bool contains(const void *p) const
    {
        auto a = reinterpret_cast<uintptr_t>(ptr);
        auto q = reinterpret_cast<uintptr_t>(p);
        return q >= a && q < a + size;
    }
};

/**
 * A half-open byte interval [start, end) of merged window ranges.
 * Returned by WindowTable::coverageFor for range-granular retags.
 */
struct RangeSpan {
    uintptr_t start = 0;
    uintptr_t end = 0;

    bool empty() const { return start == end; }
    std::size_t size() const { return end - start; }
};

/** A window descriptor: owner, ACL, and liveness. */
struct Window {
    Cid owner = kNoCubicle;
    AclMask acl = 0;
    bool live = false;
    uint32_t rangeCount = 0;
    /**
     * Dedicated MPK key for a "hot" window (paper §8's proposed
     * window-specific tags), or -1. Pages added to a hot window are
     * eagerly tagged with this key, and every cubicle in the ACL has
     * the key in its PKRU — frequent use costs no trap-and-map.
     */
    int hotKey = -1;
    /**
     * Ranges added over the descriptor's whole lifetime, never
     * decremented by removes. The stale-ACL lint rule uses it to tell
     * "ACL outlived its ranges" (warning) from "ACL never covered a
     * range" (info). Reset when the slot is recycled by windowCreate.
     */
    uint32_t rangesEverAdded = 0;
};

/**
 * The per-cubicle window-descriptor arrays (global / stack / heap).
 *
 * Ranges are stored by the data type of their pages so the trap handler
 * goes straight from page metadata to the right array. Each array is a
 * sorted interval index: ranges are ordered by start address, and a
 * per-array upper bound on range size caps the backwards walk, so
 * lookups are O(log n) for the disjoint ranges produced by the window
 * API (overlapping ranges degrade gracefully toward the old linear
 * scan, bounded by the largest range ever added).
 *
 * Thread-safety: none here — the monitor wraps mutation in its
 * exclusive window lock and lookups in the shared one (monitor.h).
 * The guard relation is not expressible as a GUARDED_BY annotation
 * because the protecting lock (Monitor::windowMutex_, rank kWindow in
 * core/locking.h) lives in a different object than the table it
 * guards; the static analysis instead checks the monitor's accesses to
 * windows_. The gap is closed at runtime instead: the loader binds
 * each table to the window lock (bindGuard), and with lockdep built
 * in every table operation aborts unless the calling thread holds
 * that lock in some mode. Unbound tables (unit tests using the class
 * directly) skip the check.
 */
class WindowTable {
  public:
    /**
     * Binds the table to the cross-object lock that guards it; every
     * later operation asserts (under lockdep) that the calling thread
     * holds it. Bind before publishing the table to other threads.
     */
    void bindGuard(const SharedMutex *guard) { guard_ = guard; }

    /** Adds a range (classified as @p type) belonging to window @p wid. */
    void add(mem::PageType type, const void *ptr, std::size_t size, Wid wid)
    {
        checkGuard();
        TypeIndex &idx = indexOf(type);
        const WindowRange r{ptr, size, wid};
        idx.ranges.insert(
            std::upper_bound(idx.ranges.begin(), idx.ranges.end(),
                             r.start(),
                             [](uintptr_t q, const WindowRange &w) {
                                 return q < w.start();
                             }),
            r);
        idx.maxSize = std::max(idx.maxSize, size);
    }

    /**
     * Removes the range starting at @p ptr from window @p wid.
     * @return true if a range was removed.
     */
    bool remove(Wid wid, const void *ptr)
    {
        checkGuard();
        for (auto &idx : indexes_) {
            for (std::size_t i = 0; i < idx.ranges.size(); ++i) {
                if (idx.ranges[i].wid == wid &&
                    idx.ranges[i].ptr == ptr) {
                    idx.ranges.erase(idx.ranges.begin() +
                                     static_cast<std::ptrdiff_t>(i));
                    return true;
                }
            }
        }
        return false;
    }

    /** Removes every range belonging to window @p wid. */
    void removeAll(Wid wid)
    {
        checkGuard();
        for (auto &idx : indexes_) {
            std::erase_if(idx.ranges, [wid](const WindowRange &r) {
                return r.wid == wid;
            });
        }
    }

    /**
     * Interval lookup (paper §5.3 step ❸) for a range containing
     * @p ptr in the array for @p type: binary search to the last range
     * starting at or before @p ptr, then walk back no further than the
     * largest registered range could reach.
     * @return the window id, or kInvalidWindow.
     */
    Wid findWindowFor(mem::PageType type, const void *ptr) const
    {
        checkGuard();
        const TypeIndex &idx = indexOf(type);
        const auto q = reinterpret_cast<uintptr_t>(ptr);
        auto it = std::upper_bound(
            idx.ranges.begin(), idx.ranges.end(), q,
            [](uintptr_t p, const WindowRange &w) {
                return p < w.start();
            });
        while (it != idx.ranges.begin()) {
            --it;
            if (it->contains(ptr))
                return it->wid;
            if (it->start() + idx.maxSize <= q)
                break; // nothing earlier can reach ptr
        }
        return kInvalidWindow;
    }

    /**
     * Merged contiguous coverage of window @p wid around @p ptr: the
     * range containing @p ptr extended over byte-adjacent neighbours
     * belonging to the same window. This is what the range-granular
     * fault handler retags in one pkey_mprotect instead of one page —
     * a window staged as many small ranges (e.g. per-block FS grants
     * laid out back-to-back) still coalesces into one retag.
     *
     * @return an empty span when no range of @p wid contains @p ptr.
     */
    RangeSpan coverageFor(mem::PageType type, Wid wid,
                          const void *ptr) const
    {
        checkGuard();
        const TypeIndex &idx = indexOf(type);
        const auto q = reinterpret_cast<uintptr_t>(ptr);
        auto it = std::upper_bound(
            idx.ranges.begin(), idx.ranges.end(), q,
            [](uintptr_t p, const WindowRange &w) {
                return p < w.start();
            });
        std::ptrdiff_t hit = -1;
        while (it != idx.ranges.begin()) {
            --it;
            if (it->wid == wid && it->contains(ptr)) {
                hit = it - idx.ranges.begin();
                break;
            }
            if (it->start() + idx.maxSize <= q)
                break; // nothing earlier can reach ptr
        }
        if (hit < 0)
            return RangeSpan{};
        RangeSpan span{idx.ranges[static_cast<std::size_t>(hit)].start(),
                       idx.ranges[static_cast<std::size_t>(hit)].start() +
                           idx.ranges[static_cast<std::size_t>(hit)].size};
        for (auto i = static_cast<std::size_t>(hit); i-- > 0;) {
            const WindowRange &r = idx.ranges[i];
            if (r.wid != wid || r.start() + r.size != span.start)
                break;
            span.start = r.start();
        }
        for (auto i = static_cast<std::size_t>(hit) + 1;
             i < idx.ranges.size(); ++i) {
            const WindowRange &r = idx.ranges[i];
            if (r.wid != wid || r.start() != span.end)
                break;
            span.end = r.start() + r.size;
        }
        return span;
    }

    /**
     * Every range currently registered for window @p wid, across all
     * three type arrays. Cold-path helper for eager prestaging.
     */
    std::vector<WindowRange> rangesOf(Wid wid) const
    {
        checkGuard();
        std::vector<WindowRange> out;
        for (const auto &idx : indexes_) {
            for (const WindowRange &r : idx.ranges) {
                if (r.wid == wid)
                    out.push_back(r);
            }
        }
        return out;
    }

    /** Number of ranges currently registered for @p type. */
    std::size_t rangeCount(mem::PageType type) const
    {
        return indexOf(type).ranges.size();
    }

    /** Total ranges across all three arrays. */
    std::size_t totalRanges() const
    {
        std::size_t n = 0;
        for (const auto &idx : indexes_)
            n += idx.ranges.size();
        return n;
    }

  private:
    /**
     * One sorted range array. maxSize only ever grows — it is a bound
     * on the backwards walk, not an exact maximum, so removes need not
     * rescan.
     */
    struct TypeIndex {
        std::vector<WindowRange> ranges;
        std::size_t maxSize = 0;
    };

    static std::size_t slotFor(mem::PageType type)
    {
        switch (type) {
          case mem::PageType::kGlobal:
          case mem::PageType::kCode:
            return 0;
          case mem::PageType::kStack:
            return 1;
          default:
            return 2; // heap
        }
    }

    void checkGuard() const
    {
        if constexpr (lockdep::kEnabled) {
            if (guard_ != nullptr)
                lockdep::assertHeld(guard_, "WindowTable");
        }
    }

    TypeIndex &indexOf(mem::PageType type)
    {
        return indexes_[slotFor(type)];
    }
    const TypeIndex &indexOf(mem::PageType type) const
    {
        return indexes_[slotFor(type)];
    }

    std::array<TypeIndex, 3> indexes_;
    const SharedMutex *guard_ = nullptr;
};

} // namespace cubicleos::core

#endif // CUBICLEOS_CORE_WINDOW_H_
