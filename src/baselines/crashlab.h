/**
 * @file
 * Crash lab: the fault-injection deployment for the lifecycle
 * subsystem (DESIGN.md §15).
 *
 * Boots the networked Fig. 5 stack (LWIP, VFSCORE, RAMFS, NGINX, ...)
 * plus a minisql database cubicle sharing the same RAMFS, then lets a
 * test kill and hot-restart individual cubicles while the rest of the
 * deployment keeps serving:
 *
 *  - killMinisql()/restartMinisql(): the database cubicle crashes and
 *    relaunches; HTTP traffic through the untouched stack must not
 *    notice. A query in flight on another thread unwinds with
 *    PeerFault; the next open() after restart rolls back the hot
 *    journal (the pager's crash recovery).
 *  - killLwip(): the network stack dies under the application; every
 *    socket call degrades to kNetPeerFault and nginx drops the
 *    affected connections instead of crashing.
 */

#ifndef CUBICLEOS_BASELINES_CRASHLAB_H_
#define CUBICLEOS_BASELINES_CRASHLAB_H_

#include <memory>
#include <string>

#include "apps/httpd/harness.h"
#include "apps/minisql/db.h"
#include "core/system.h"
#include "libos/netdev.h"
#include "libos/stack.h"
#include "libos/tcpip.h"
#include "libos/ukapi.h"

namespace cubicleos::baselines {

/**
 * The minisql application cubicle: owns a Database over the shared
 * RAMFS backend. Restartable — teardown() abandons the pre-crash
 * pager/window handles (the monitor already reclaimed their cubicle
 * side) and init() reopens the database file, which triggers the
 * pager's hot-journal rollback when the crash interrupted a
 * transaction.
 */
class SqlComponent : public core::Component {
  public:
    core::ComponentSpec spec() const override
    {
        core::ComponentSpec s;
        s.name = "minisql";
        s.kind = core::CubicleKind::kIsolated;
        s.stackPages = 32;
        return s;
    }

    void registerExports(core::Exporter &) override {}

    void init() override;
    void teardown() override;

    /**
     * Builds the file binding and opens /crash.db; must run inside
     * this cubicle. Called by the harness once the boot component has
     * mounted the root (it inits after the applications), and by
     * init() itself on every restart — where the deployment is fully
     * up and service must resume without outside help.
     */
    void openDb();

    /** Orderly close (flush + close); must run inside this cubicle. */
    void shutdown()
    {
        db_.reset();
        fs_.reset();
    }

    /**
     * Harness-destruction path for a cubicle that died and was never
     * restarted: the handles cannot be closed (their cubicle is gone)
     * and the buffers cannot be freed (freeing would have to enter
     * it), so the host-side objects are deliberately leaked.
     */
    void abandonDead() noexcept
    {
        (void)db_.release();
        (void)fs_.release();
    }

    /** The database; access only from inside this cubicle (runAs). */
    minisql::Database &db() { return *db_; }

  private:
    std::unique_ptr<libos::CubicleFileApi> fs_;
    std::unique_ptr<minisql::Database> db_;
};

/**
 * Boots the crash-lab deployment and drives it: HTTP fetches through a
 * host-side TCP client (as HttpHarness) plus SQL queries inside the
 * minisql cubicle, with kill/restart controls for fault injection.
 */
class CrashLabHarness {
  public:
    explicit CrashLabHarness(
        core::IsolationMode mode = core::IsolationMode::kFull,
        std::size_t num_pages = 32768,
        uint64_t request_base_cycles = 11'000'000,
        bool sendfile = false);
    ~CrashLabHarness();

    /** Creates a served file with deterministic contents. */
    void createFile(const std::string &path, std::size_t size);

    /**
     * Fetches @p path over a fresh connection; measures latency.
     * @p max_rounds caps the event-loop budget — a small cap abandons
     * the request client-side, leaving the server connection mid-state
     * (fault-injection setup for killing a peer under it).
     */
    httpd::FetchResult fetch(const std::string &path,
                             int max_rounds = 1'000'000);

    /** Drives @p rounds of the event loop with no client request. */
    void pump(int rounds)
    {
        while (rounds-- > 0)
            pumpOnce();
    }

    /**
     * Executes @p sql inside the minisql cubicle. When the cubicle is
     * destroyed mid-query this propagates the unwind (core::PeerFault
     * or a minisql::SqlError from a failed I/O) to the caller — tests
     * catch it on the victim thread.
     */
    minisql::ResultSet exec(const std::string &sql);

    /** Destroys the minisql cubicle. @return pages reclaimed. */
    std::size_t killMinisql();
    /** Hot-restarts the minisql cubicle (reopen → journal recovery). */
    void restartMinisql();
    /** Destroys the network-stack cubicle under the application. */
    std::size_t killLwip();

    core::System &sys() { return *sys_; }
    httpd::NginxComponent &nginx() { return *nginx_; }
    SqlComponent &minisql() { return *sql_; }

  private:
    void pumpOnce();

    std::unique_ptr<core::System> sys_;
    std::unique_ptr<libos::FrameChannel> wire_;
    std::unique_ptr<libos::TcpIpStack> client_;
    core::CrossFn<int64_t(uint64_t)> nginxPoll_;
    httpd::NginxComponent *nginx_ = nullptr;
    SqlComponent *sql_ = nullptr;
    uint64_t requestBaseCycles_;
    uint64_t now_ = 0;
    core::Cid nginxCid_ = core::kNoCubicle;
    core::Cid sqlCid_ = core::kNoCubicle;
};

} // namespace cubicleos::baselines

#endif // CUBICLEOS_BASELINES_CRASHLAB_H_
