/**
 * @file
 * SQLite-workload deployments for the partitioning experiments
 * (paper §6.5, Fig. 9 and Fig. 10).
 *
 * One factory per bar of Fig. 10:
 *  - Linux          : direct calls + syscall cost model;
 *  - Unikraft       : the full library OS stack, no isolation;
 *  - Genode-3/-4    : message-based IPC on the Linux host (1/2 hops);
 *  - seL4/Fiasco/NOVA (3 or 4 components): microkernel IPC profiles;
 *  - CubicleOS-3/-4 : cubicles with the Fig. 9 partitionings;
 *  - CubicleOS full : the 7-cubicle Fig. 8 deployment (Fig. 6 runs).
 */

#ifndef CUBICLEOS_BASELINES_DEPLOYMENTS_H_
#define CUBICLEOS_BASELINES_DEPLOYMENTS_H_

#include <functional>
#include <memory>
#include <string>

#include "apps/httpd/harness.h"
#include "apps/minisql/db.h"
#include "baselines/microkernel.h"
#include "core/system.h"

namespace cubicleos::baselines {

/**
 * Multi-tenant CubicleOS web deployment (tag-virtualisation showcase):
 * the Fig. 5 networked stack shared by @p tenants independent tenant
 * groups — each an NGINX instance plus a private request-log cubicle.
 * 26 tenants put 64 cubicles on 16 MPK keys; the monitor's logical-key
 * table multiplexes them onto the dynamic physical-tag pool
 * (DESIGN.md §14).
 *
 * @param tenants number of tenant groups (2 cubicles each)
 * @param mode isolation mode (kUnikraft for the unprotected baseline)
 * @param num_pages simulated memory pages
 * @param phys_budget physical MPK tags available (artificial-pressure
 *        knob for tests and benches; 16 = real hardware)
 * @param dynamic_tags size of the monitor's dynamic tag pool
 */
std::unique_ptr<httpd::MultiTenantHarness>
makeMultiTenantHttpd(int tenants, core::IsolationMode mode,
                     std::size_t num_pages = 65536,
                     int phys_budget = hw::kNumPhysPkeys,
                     std::size_t dynamic_tags = 4);

/**
 * A ready-to-measure SQLite substrate: a database plus the execution
 * context and cost model it runs under.
 */
class SqliteDeployment {
  public:
    virtual ~SqliteDeployment() = default;

    const std::string &name() const { return name_; }

    /** The database (already open). */
    virtual minisql::Database &database() = 0;

    /** Modelled hardware cycles accumulated so far. */
    virtual uint64_t modelCycles() = 0;

    /**
     * Runs @p fn in the deployment's application context (inside the
     * app cubicle for cubicle-based deployments; plain call
     * otherwise). All database access must go through this.
     */
    virtual void enter(const std::function<void()> &fn) = 0;

    /** The System, for cubicle-based deployments (else nullptr). */
    virtual core::System *system() { return nullptr; }

    // --- factories ------------------------------------------------------

    /** SQLite directly on the host kernel (Fig. 10a "Linux"). */
    static std::unique_ptr<SqliteDeployment>
    makeLinux(std::size_t cache_pages = 256);

    /** Genode-style IPC on a kernel profile with 1 or 2 hops. */
    static std::unique_ptr<SqliteDeployment>
    makeMicrokernel(const KernelProfile &profile, int hops,
                    std::size_t cache_pages = 256);

    /**
     * Cubicle-based deployments.
     * @param components 3 (Fig. 9a: app | core | timer), 4 (Fig. 9b:
     *        RAMFS separated) or 7 (the full Fig. 8 deployment)
     * @param mode isolation mode; kUnikraft turns any of these into
     *        the unprotected Unikraft baseline
     */
    static std::unique_ptr<SqliteDeployment>
    makeCubicles(int components, core::IsolationMode mode,
                 std::size_t cache_pages = 256,
                 std::size_t num_pages = 32768);

  protected:
    explicit SqliteDeployment(std::string name) : name_(std::move(name))
    {}

  private:
    std::string name_;
};

} // namespace cubicleos::baselines

#endif // CUBICLEOS_BASELINES_DEPLOYMENTS_H_
