/**
 * @file
 * MemFileApi: a host-memory file system implementing FileApi.
 *
 * Used two ways:
 *  - as the "Linux" baseline of Fig. 10a (direct calls, with an
 *    optional per-operation syscall cost charged to a cycle clock);
 *  - as a fast substrate for unit-testing the database engine without
 *    booting a full cubicle system.
 */

#ifndef CUBICLEOS_BASELINES_MEMFS_H_
#define CUBICLEOS_BASELINES_MEMFS_H_

#include <map>
#include <string>
#include <vector>

#include "hw/cycles.h"
#include "libos/fileapi.h"

namespace cubicleos::baselines {

/** In-memory FileApi with optional syscall-cost accounting. */
class MemFileApi : public libos::FileApi {
  public:
    /**
     * @param clock if non-null, every operation charges
     *        hw::cost::kSyscall (the Linux baseline's kernel entry).
     */
    explicit MemFileApi(hw::CycleClock *clock = nullptr)
        : clock_(clock)
    {}

    int open(const char *path, int flags) override;
    int close(int fd) override;
    int64_t read(int fd, void *buf, std::size_t n) override;
    int64_t write(int fd, const void *buf, std::size_t n) override;
    int64_t pread(int fd, void *buf, std::size_t n,
                  uint64_t off) override;
    int64_t pwrite(int fd, const void *buf, std::size_t n,
                   uint64_t off) override;
    int64_t lseek(int fd, int64_t off, int whence) override;
    int stat(const char *path, libos::VfsStat *st) override;
    int fstat(int fd, libos::VfsStat *st) override;
    int unlink(const char *path) override;
    int mkdir(const char *path) override;
    int ftruncate(int fd, uint64_t size) override;
    int fsync(int fd) override;
    int readdir(const char *path, uint64_t idx,
                libos::VfsDirent *out) override;

    /** Number of operations performed (the baseline's syscall count). */
    uint64_t opCount() const { return ops_; }

  private:
    struct OpenFile {
        bool used = false;
        std::string path;
        uint64_t offset = 0;
    };

    void charge()
    {
        ++ops_;
        if (clock_)
            clock_->charge(hw::cost::kSyscall);
    }

    std::string *fileOf(int fd);

    hw::CycleClock *clock_;
    std::map<std::string, std::string> files_;
    std::vector<OpenFile> fds_;
    uint64_t ops_ = 0;
};

} // namespace cubicleos::baselines

#endif // CUBICLEOS_BASELINES_MEMFS_H_
