/**
 * @file
 * Message-based componentisation baselines (paper §6.5, Fig. 9/10).
 *
 * Models Genode-style component systems over different kernels: every
 * operation against a component in another protection domain is a
 * synchronous RPC — arguments and data payloads are marshalled into a
 * message (a real copy), the kernel is entered (a modelled cycle
 * cost), the server unmarshals and executes, and the reply travels
 * the same way back (Figure 1b of the paper).
 *
 * MicrokernelFileApi wraps an inner file system "server": with one
 * hop it models the 3-component deployment of Fig. 9a (application |
 * core | timer); with two hops the separated-RAMFS deployment of
 * Fig. 9b, where the VFS must itself RPC to the file system backend,
 * copying all data twice more.
 */

#ifndef CUBICLEOS_BASELINES_MICROKERNEL_H_
#define CUBICLEOS_BASELINES_MICROKERNEL_H_

#include <memory>
#include <string>
#include <vector>

#include "hw/cycles.h"
#include "libos/fileapi.h"

namespace cubicleos::baselines {

/** Cost profile of one kernel's IPC mechanisms. */
struct KernelProfile {
    std::string name;
    /** Cycles for one synchronous call+reply between servers. */
    uint64_t rpcRoundTripCycles;
    /**
     * Cycles for one operation on the application's file session:
     * Genode backs it with a shared dataspace, so bulk data avoids a
     * full RPC round trip per block — this is why the 3-component
     * deployments stay cheap (Fig. 10a, Genode-3 = 1.4x).
     */
    uint64_t bulkSessionCycles;
    /** Extra per-byte marshalling cost beyond the real memcpy. */
    double perByteCycles;
    /**
     * Synchronous round trips per 4 KiB block on the separated
     * VFS->backend boundary (submit/ack protocol). This is what makes
     * the fourth compartment expensive (Fig. 10b).
     */
    double rpcsPerBlock;
};

/** Kernel profiles used in the paper's Fig. 10. */
namespace kernels {

/** seL4 under Genode (capability transfer + Genode RPC framework). */
KernelProfile seL4();
/** Fiasco.OC under Genode. */
KernelProfile fiascoOC();
/** NOVA microhypervisor under Genode. */
KernelProfile nova();
/** Genode on the Linux kernel: socket-based IPC, scheduler hops. */
KernelProfile genodeLinux();

} // namespace kernels

/** IPC statistics. */
struct IpcStats {
    uint64_t rpcs = 0;
    uint64_t bytesCopied = 0;
};

/**
 * FileApi over message-based IPC with a configurable number of
 * protection-domain hops between the application and the backing
 * store.
 */
class MicrokernelFileApi : public libos::FileApi {
  public:
    /**
     * @param profile kernel cost profile
     * @param clock clock charged for modelled IPC costs
     * @param inner the file system server implementation
     * @param hops protection domains crossed per operation (1 =
     *        Fig. 9a, 2 = Fig. 9b with RAMFS separated)
     */
    MicrokernelFileApi(KernelProfile profile, hw::CycleClock *clock,
                       libos::FileApi *inner, int hops);

    int open(const char *path, int flags) override;
    int close(int fd) override;
    int64_t read(int fd, void *buf, std::size_t n) override;
    int64_t write(int fd, const void *buf, std::size_t n) override;
    int64_t pread(int fd, void *buf, std::size_t n,
                  uint64_t off) override;
    int64_t pwrite(int fd, const void *buf, std::size_t n,
                   uint64_t off) override;
    int64_t lseek(int fd, int64_t off, int whence) override;
    int stat(const char *path, libos::VfsStat *st) override;
    int fstat(int fd, libos::VfsStat *st) override;
    int unlink(const char *path) override;
    int mkdir(const char *path) override;
    int ftruncate(int fd, uint64_t size) override;
    int fsync(int fd) override;
    int readdir(const char *path, uint64_t idx,
                libos::VfsDirent *out) override;

    const IpcStats &stats() const { return stats_; }
    const KernelProfile &profile() const { return profile_; }

  private:
    /** Charges the app->core session cost of one operation. */
    void chargeRpc(std::size_t meta_bytes);
    /** Charges the separated backend's per-block RPC protocol. */
    void chargeBackendBlocks(std::size_t payload_bytes);
    /** Copies a payload through per-hop message buffers. */
    void marshalIn(const void *src, std::size_t n);
    void marshalOut(void *dst, std::size_t n);

    KernelProfile profile_;
    hw::CycleClock *clock_;
    libos::FileApi *inner_;
    int hops_;
    std::vector<std::vector<uint8_t>> msgBufs_; ///< one per hop
    IpcStats stats_;
};

} // namespace cubicleos::baselines

#endif // CUBICLEOS_BASELINES_MICROKERNEL_H_
