#include "baselines/crashlab.h"

#include <chrono>
#include <cstring>

namespace cubicleos::baselines {

void
SqlComponent::init()
{
    // At first boot the root is not yet mounted (the boot component
    // inits last; see the CubicleDeployment pattern) — the harness
    // calls openDb() right after boot. A restart happens on a fully
    // booted deployment, so there init itself restores service.
    if (sys()->monitor().lifeGeneration(self()) > 0)
        openDb();
}

void
SqlComponent::openDb()
{
    fs_ = std::make_unique<libos::CubicleFileApi>(*sys(), "ramfs");
    // I/O buffers live in this cubicle's heap so every page move runs
    // through the window machinery (and so a crash orphans them into
    // the monitor's reclaim sweep, not the host allocator).
    minisql::DbAllocator mem;
    core::System *s = sys();
    mem.alloc = [s](std::size_t n) { return s->heapAlloc(n); };
    mem.free = [s](void *p) { s->heapFree(p); };
    db_ = std::make_unique<minisql::Database>(fs_.get(), "/crash.db",
                                              /*cache_pages=*/64, mem);
    if (const int rc = db_->open(/*create=*/true); rc != 0)
        throw core::LoaderError("minisql: cannot open /crash.db: rc=" +
                                std::to_string(rc));
}

void
SqlComponent::teardown()
{
    // The monitor already reclaimed the crashed cubicle's pages and
    // windows; the fds and window ids these objects remember are stale
    // (possibly reissued). Abandon instead of closing or flushing —
    // the destructors then only free buffers, and those stale heap
    // pointers the fresh allocator ignores. A hot journal left on the
    // (surviving) RAMFS is deliberately NOT touched: the init() reopen
    // rolls it back, which IS the crash recovery under test.
    if (db_)
        db_->pager().abandon();
    db_.reset();
    if (fs_)
        fs_->abandon();
    fs_.reset();
}

CrashLabHarness::CrashLabHarness(core::IsolationMode mode,
                                 std::size_t num_pages,
                                 uint64_t request_base_cycles,
                                 bool sendfile)
    : requestBaseCycles_(request_base_cycles)
{
    core::SystemConfig cfg;
    cfg.numPages = num_pages;
    cfg.mode = mode;
    sys_ = std::make_unique<core::System>(cfg);
    wire_ = std::make_unique<libos::FrameChannel>(&sys_->clock());

    libos::StackOptions opts;
    opts.withNet = true;
    opts.wire = wire_.get();
    libos::addLibosComponents(*sys_, opts);
    nginx_ = static_cast<httpd::NginxComponent *>(&sys_->addComponent(
        std::make_unique<httpd::NginxComponent>(80, sendfile)));
    sql_ = static_cast<SqlComponent *>(
        &sys_->addComponent(std::make_unique<SqlComponent>()));
    libos::finishBoot(*sys_);

    nginxCid_ = sys_->cidOf("nginx");
    sqlCid_ = sys_->cidOf("minisql");
    nginxPoll_ = sys_->resolve<int64_t(uint64_t)>("nginx", "nginx_poll");
    sys_->runAs(sqlCid_, [&] { sql_->openDb(); });

    libos::TcpConfig ccfg;
    ccfg.ipAddr = 0x0A000002;
    client_ = std::make_unique<libos::TcpIpStack>(ccfg);
}

CrashLabHarness::~CrashLabHarness()
{
    // The database must be closed from inside its cubicle: ~Pager
    // flushes through cross-calls, which the host context (and a dead
    // cubicle) cannot make. Mirrors CubicleDeployment's destructor.
    if (sys_ && sql_) {
        if (sys_->monitor().cubicleAlive(sqlCid_))
            sys_->runAs(sqlCid_, [&] { sql_->shutdown(); });
        else
            sql_->abandonDead();
    }
}

void
CrashLabHarness::createFile(const std::string &path, std::size_t size)
{
    nginx_->createFile(path, size);
}

minisql::ResultSet
CrashLabHarness::exec(const std::string &sql)
{
    minisql::ResultSet out;
    sys_->runAs(sqlCid_, [&] { out = sql_->db().exec(sql); });
    return out;
}

std::size_t
CrashLabHarness::killMinisql()
{
    return sys_->destroyComponent("minisql");
}

void
CrashLabHarness::restartMinisql()
{
    sys_->restartComponent("minisql");
}

std::size_t
CrashLabHarness::killLwip()
{
    return sys_->destroyComponent("lwip");
}

void
CrashLabHarness::pumpOnce()
{
    now_ += 1'000'000; // 1 ms of simulated time per round
    client_->tick(now_);
    client_->pollOutput([&](const uint8_t *p, std::size_t n) {
        wire_->hostSend(libos::FrameChannel::Frame(p, p + n));
    });
    sys_->runAs(nginxCid_, [&] { nginxPoll_(now_); });
    while (auto frame = wire_->hostRecv())
        client_->input(frame->data(), frame->size());
}

httpd::FetchResult
CrashLabHarness::fetch(const std::string &path, int max_rounds)
{
    httpd::FetchResult res;
    const auto wall_start = std::chrono::steady_clock::now();
    const uint64_t cycles_start = sys_->clock().read();

    sys_->clock().charge(requestBaseCycles_);

    const int fd = client_->socket();
    client_->connect(fd, 0x0A000001, 80);

    const std::string request =
        "GET " + path + " HTTP/1.1\r\nHost: crashlab\r\n\r\n";
    bool request_sent = false;

    std::string response;
    std::size_t content_length = 0;
    std::size_t header_end = std::string::npos;
    std::vector<char> buf(16384);

    const core::Cid lwip = sys_->cidOf("lwip");
    for (int round = 0; round < max_rounds; ++round) {
        // A destroyed network stack can never answer: bail out with
        // status 0 instead of spinning out the round budget.
        if (!sys_->monitor().cubicleAlive(lwip))
            break;
        pumpOnce();
        if (!request_sent && client_->isEstablished(fd)) {
            client_->send(fd, request.data(), request.size());
            request_sent = true;
        }
        const int64_t n = client_->recv(fd, buf.data(), buf.size());
        if (n > 0) {
            response.append(buf.data(), static_cast<std::size_t>(n));
        } else if (n == 0) {
            break; // orderly close
        }
        if (header_end == std::string::npos) {
            header_end = response.find("\r\n\r\n");
            if (header_end != std::string::npos) {
                const auto cl = response.find("Content-Length: ");
                if (cl != std::string::npos) {
                    content_length = static_cast<std::size_t>(
                        std::strtoull(response.c_str() + cl + 16,
                                      nullptr, 10));
                }
            }
        }
        if (header_end != std::string::npos &&
            response.size() >= header_end + 4 + content_length) {
            break;
        }
    }
    client_->close(fd);
    if (sys_->monitor().cubicleAlive(lwip)) {
        for (int i = 0; i < 5; ++i)
            pumpOnce(); // drain FIN exchange
    }

    if (response.compare(0, 9, "HTTP/1.1 ") == 0)
        res.status = std::atoi(response.c_str() + 9);
    if (header_end != std::string::npos) {
        res.body = response.substr(header_end + 4);
        res.bodyBytes = res.body.size();
    }

    res.wallMs =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - wall_start)
            .count();
    res.modelMs = hw::CycleClock::toNanoseconds(sys_->clock().read() -
                                                cycles_start) /
                  1e6;
    return res;
}

} // namespace cubicleos::baselines
