#include "baselines/memfs.h"

#include <cstdio>
#include <cstring>

namespace cubicleos::baselines {

using namespace libos;

std::string *
MemFileApi::fileOf(int fd)
{
    if (fd < 0 || static_cast<std::size_t>(fd) >= fds_.size() ||
        !fds_[static_cast<std::size_t>(fd)].used) {
        return nullptr;
    }
    auto it = files_.find(fds_[static_cast<std::size_t>(fd)].path);
    return it == files_.end() ? nullptr : &it->second;
}

int
MemFileApi::open(const char *path, int flags)
{
    charge();
    auto it = files_.find(path);
    if (it == files_.end()) {
        if (!(flags & kCreate))
            return kErrNoEnt;
        it = files_.emplace(path, std::string()).first;
    } else if (flags & kTrunc) {
        it->second.clear();
    }
    for (std::size_t fd = 0; fd < fds_.size(); ++fd) {
        if (!fds_[fd].used) {
            fds_[fd] = OpenFile{true, path,
                                (flags & kAppend) ? it->second.size()
                                                  : 0};
            return static_cast<int>(fd);
        }
    }
    fds_.push_back(OpenFile{true, path,
                            (flags & kAppend) ? it->second.size() : 0});
    return static_cast<int>(fds_.size() - 1);
}

int
MemFileApi::close(int fd)
{
    charge();
    if (fd < 0 || static_cast<std::size_t>(fd) >= fds_.size())
        return kErrBadF;
    fds_[static_cast<std::size_t>(fd)].used = false;
    return 0;
}

int64_t
MemFileApi::pread(int fd, void *buf, std::size_t n, uint64_t off)
{
    charge();
    std::string *file = fileOf(fd);
    if (!file)
        return kErrBadF;
    if (off >= file->size())
        return 0;
    const std::size_t take =
        std::min<uint64_t>(n, file->size() - off);
    std::memcpy(buf, file->data() + off, take);
    return static_cast<int64_t>(take);
}

int64_t
MemFileApi::pwrite(int fd, const void *buf, std::size_t n, uint64_t off)
{
    charge();
    std::string *file = fileOf(fd);
    if (!file)
        return kErrBadF;
    if (file->size() < off + n)
        file->resize(off + n, '\0');
    std::memcpy(file->data() + off, buf, n);
    return static_cast<int64_t>(n);
}

int64_t
MemFileApi::read(int fd, void *buf, std::size_t n)
{
    std::string *file = fileOf(fd);
    if (!file)
        return kErrBadF;
    auto &of = fds_[static_cast<std::size_t>(fd)];
    const int64_t got = pread(fd, buf, n, of.offset);
    if (got > 0)
        of.offset += static_cast<uint64_t>(got);
    return got;
}

int64_t
MemFileApi::write(int fd, const void *buf, std::size_t n)
{
    std::string *file = fileOf(fd);
    if (!file)
        return kErrBadF;
    auto &of = fds_[static_cast<std::size_t>(fd)];
    const int64_t put = pwrite(fd, buf, n, of.offset);
    if (put > 0)
        of.offset += static_cast<uint64_t>(put);
    return put;
}

int64_t
MemFileApi::lseek(int fd, int64_t off, int whence)
{
    charge();
    std::string *file = fileOf(fd);
    if (!file)
        return kErrBadF;
    auto &of = fds_[static_cast<std::size_t>(fd)];
    int64_t base = 0;
    switch (whence) {
      case kSeekSet: base = 0; break;
      case kSeekCur: base = static_cast<int64_t>(of.offset); break;
      case kSeekEnd: base = static_cast<int64_t>(file->size()); break;
      default: return kErrInval;
    }
    const int64_t pos = base + off;
    if (pos < 0)
        return kErrInval;
    of.offset = static_cast<uint64_t>(pos);
    return pos;
}

int
MemFileApi::stat(const char *path, VfsStat *st)
{
    charge();
    auto it = files_.find(path);
    if (it == files_.end())
        return kErrNoEnt;
    st->size = it->second.size();
    st->mode = kModeFile;
    st->nlink = 1;
    return 0;
}

int
MemFileApi::fstat(int fd, VfsStat *st)
{
    charge();
    std::string *file = fileOf(fd);
    if (!file)
        return kErrBadF;
    st->size = file->size();
    st->mode = kModeFile;
    st->nlink = 1;
    return 0;
}

int
MemFileApi::unlink(const char *path)
{
    charge();
    return files_.erase(path) ? 0 : kErrNoEnt;
}

int
MemFileApi::mkdir(const char *)
{
    charge();
    return 0; // flat namespace: directories are implicit
}

int
MemFileApi::ftruncate(int fd, uint64_t size)
{
    charge();
    std::string *file = fileOf(fd);
    if (!file)
        return kErrBadF;
    file->resize(size, '\0');
    return 0;
}

int
MemFileApi::fsync(int fd)
{
    charge();
    return fileOf(fd) ? 0 : kErrBadF;
}

int
MemFileApi::readdir(const char *, uint64_t idx, VfsDirent *out)
{
    charge();
    if (idx >= files_.size())
        return kErrNoEnt;
    auto it = files_.begin();
    std::advance(it, static_cast<long>(idx));
    std::snprintf(out->name, sizeof(out->name), "%s",
                  it->first.c_str());
    out->type = kModeFile;
    return 0;
}

} // namespace cubicleos::baselines
