#include "baselines/deployments.h"

#include "baselines/memfs.h"
#include "libos/alloc.h"
#include "libos/app.h"
#include "libos/boot.h"
#include "libos/libc.h"
#include "libos/plat.h"
#include "libos/ramfs.h"
#include "libos/random.h"
#include "libos/stack.h"
#include "libos/time.h"
#include "libos/ukapi.h"
#include "libos/vfscore.h"

namespace cubicleos::baselines {

std::unique_ptr<httpd::MultiTenantHarness>
makeMultiTenantHttpd(int tenants, core::IsolationMode mode,
                     std::size_t num_pages, int phys_budget,
                     std::size_t dynamic_tags)
{
    return std::make_unique<httpd::MultiTenantHarness>(
        tenants, mode, num_pages, phys_budget, dynamic_tags);
}

namespace {

/** Fig. 10a "Linux": MemFileApi with per-op syscall charges. */
class LinuxDeployment : public SqliteDeployment {
  public:
    explicit LinuxDeployment(std::size_t cache_pages)
        : SqliteDeployment("Linux"), fs_(&clock_),
          db_(&fs_, "/bench.db", cache_pages)
    {
        if (db_.open() != 0)
            throw std::runtime_error("linux deployment: open failed");
    }

    minisql::Database &database() override { return db_; }
    uint64_t modelCycles() override { return clock_.read(); }
    void enter(const std::function<void()> &fn) override { fn(); }

  private:
    hw::CycleClock clock_;
    MemFileApi fs_;
    minisql::Database db_;
};

/** Genode-style message-based componentisation. */
class MicrokernelDeployment : public SqliteDeployment {
  public:
    MicrokernelDeployment(const KernelProfile &profile, int hops,
                          std::size_t cache_pages)
        : SqliteDeployment(profile.name + "-" +
                           std::to_string(hops + 2)),
          server_(nullptr), // server executes in user space
          ipc_(profile, &clock_, &server_, hops),
          db_(&ipc_, "/bench.db", cache_pages)
    {
        if (db_.open() != 0)
            throw std::runtime_error("microkernel deployment: open "
                                     "failed");
    }

    minisql::Database &database() override { return db_; }
    uint64_t modelCycles() override { return clock_.read(); }
    void enter(const std::function<void()> &fn) override { fn(); }

    const IpcStats &ipcStats() const { return ipc_.stats(); }

  private:
    hw::CycleClock clock_;
    MemFileApi server_;
    MicrokernelFileApi ipc_;
    minisql::Database db_;
};

/** Cubicle-based deployments (3, 4 or 7 isolated components). */
class CubicleDeployment : public SqliteDeployment {
  public:
    CubicleDeployment(int components, core::IsolationMode mode,
                      std::size_t cache_pages, std::size_t num_pages)
        : SqliteDeployment(std::string(mode ==
                                       core::IsolationMode::kUnikraft
                                           ? "Unikraft"
                                           : "CubicleOS") +
                           "-" + std::to_string(components))
    {
        core::SystemConfig cfg;
        cfg.numPages = num_pages;
        cfg.mode = mode;
        sys_ = std::make_unique<core::System>(cfg);

        if (components >= 7) {
            // Full Fig. 8 deployment.
            libos::addLibosComponents(*sys_);
            app_ = static_cast<libos::AppComponent *>(
                &sys_->addComponent(
                    std::make_unique<libos::AppComponent>("sqlite")));
            libos::finishBoot(*sys_);
        } else {
            // Fig. 9 partitionings: PLAT hosts the "core" module;
            // ALLOC, VFSCORE (and with 3 components RAMFS) colocate
            // into it. TIME stays its own cubicle (the TIMER module).
            sys_->addComponent(std::make_unique<libos::PlatComponent>());
            auto &alloc = sys_->addComponent(
                std::make_unique<libos::AllocComponent>());
            alloc.colocateWith("plat");
            sys_->addComponent(std::make_unique<libos::TimeComponent>());
            auto &vfs = sys_->addComponent(
                std::make_unique<libos::VfsComponent>());
            vfs.colocateWith("plat");
            auto &ramfs = sys_->addComponent(
                std::make_unique<libos::RamfsComponent>());
            if (components <= 3)
                ramfs.colocateWith("plat");
            sys_->addComponent(std::make_unique<libos::LibcComponent>());
            sys_->addComponent(
                std::make_unique<libos::RandomComponent>());
            app_ = static_cast<libos::AppComponent *>(
                &sys_->addComponent(
                    std::make_unique<libos::AppComponent>("sqlite")));
            auto &boot = sys_->addComponent(
                std::make_unique<libos::BootComponent>());
            boot.colocateWith("plat");
            sys_->boot();
        }

        app_->run([&] {
            fs_ = std::make_unique<libos::CubicleFileApi>(*sys_,
                                                          "ramfs");
            minisql::DbAllocator mem;
            core::System *sys = sys_.get();
            mem.alloc = [sys](std::size_t n) {
                return sys->heapAlloc(n);
            };
            mem.free = [sys](void *p) { sys->heapFree(p); };
            db_ = std::make_unique<minisql::Database>(
                fs_.get(), "/bench.db", cache_pages, mem);
            if (db_->open() != 0)
                throw std::runtime_error("cubicle deployment: open "
                                         "failed");
        });
    }

    ~CubicleDeployment() override
    {
        app_->run([&] {
            db_.reset();
            fs_.reset();
        });
    }

    minisql::Database &database() override { return *db_; }
    uint64_t modelCycles() override { return sys_->clock().read(); }
    void enter(const std::function<void()> &fn) override
    {
        app_->run(fn);
    }
    core::System *system() override { return sys_.get(); }

  private:
    std::unique_ptr<core::System> sys_;
    libos::AppComponent *app_ = nullptr;
    std::unique_ptr<libos::CubicleFileApi> fs_;
    std::unique_ptr<minisql::Database> db_;
};

} // namespace

std::unique_ptr<SqliteDeployment>
SqliteDeployment::makeLinux(std::size_t cache_pages)
{
    return std::make_unique<LinuxDeployment>(cache_pages);
}

std::unique_ptr<SqliteDeployment>
SqliteDeployment::makeMicrokernel(const KernelProfile &profile,
                                  int hops, std::size_t cache_pages)
{
    return std::make_unique<MicrokernelDeployment>(profile, hops,
                                                   cache_pages);
}

std::unique_ptr<SqliteDeployment>
SqliteDeployment::makeCubicles(int components, core::IsolationMode mode,
                               std::size_t cache_pages,
                               std::size_t num_pages)
{
    return std::make_unique<CubicleDeployment>(components, mode,
                                               cache_pages, num_pages);
}

} // namespace cubicleos::baselines
