#include "baselines/microkernel.h"

#include <cstring>

namespace cubicleos::baselines {

namespace kernels {

// Costs calibrated against the paper's measured ratios (we cannot run
// the real kernels here): Fig. 10a Genode-3 = 1.4x vs Linux and
// Genode-4 = 29x; Fig. 10b separation penalties seL4 7.5x,
// Fiasco.OC 4.5x, NOVA 4.7x. The structure is what the calibration
// expresses: the app's file session is dataspace-backed and cheap,
// while a separated VFS->backend boundary pays a synchronous RPC
// protocol per 4 KiB block. Genode's RPC on the Linux host rides
// sockets and the scheduler, hence its order-of-magnitude gap.

KernelProfile
seL4()
{
    return KernelProfile{"seL4", 52000, 11000, 4.0, 6.8};
}

KernelProfile
fiascoOC()
{
    return KernelProfile{"Fiasco.OC", 26000, 9000, 2.5, 7.2};
}

KernelProfile
nova()
{
    return KernelProfile{"NOVA", 28000, 9000, 2.5, 7.2};
}

KernelProfile
genodeLinux()
{
    return KernelProfile{"Genode/Linux", 240000, 15000, 6.0, 4.4};
}

} // namespace kernels

MicrokernelFileApi::MicrokernelFileApi(KernelProfile profile,
                                       hw::CycleClock *clock,
                                       libos::FileApi *inner, int hops)
    : profile_(std::move(profile)), clock_(clock), inner_(inner),
      hops_(hops < 1 ? 1 : hops)
{
    msgBufs_.resize(static_cast<std::size_t>(hops_));
}

void
MicrokernelFileApi::chargeRpc(std::size_t meta_bytes)
{
    // Hop 1: the application's (dataspace-backed) file session.
    ++stats_.rpcs;
    clock_->charge(profile_.bulkSessionCycles +
                   static_cast<uint64_t>(profile_.perByteCycles *
                                         static_cast<double>(
                                             meta_bytes)));
    // Further hops: full synchronous RPC per operation.
    for (int h = 1; h < hops_; ++h) {
        ++stats_.rpcs;
        clock_->charge(profile_.rpcRoundTripCycles +
                       static_cast<uint64_t>(profile_.perByteCycles *
                                             static_cast<double>(
                                                 meta_bytes)));
    }
}

void
MicrokernelFileApi::chargeBackendBlocks(std::size_t payload_bytes)
{
    if (hops_ < 2 || payload_bytes == 0)
        return;
    const auto blocks = (payload_bytes + 4095) / 4096;
    const double rpcs = profile_.rpcsPerBlock *
                        static_cast<double>(blocks) *
                        static_cast<double>(hops_ - 1);
    stats_.rpcs += static_cast<uint64_t>(rpcs);
    clock_->charge(static_cast<uint64_t>(
        rpcs * static_cast<double>(profile_.rpcRoundTripCycles)));
}

void
MicrokernelFileApi::marshalIn(const void *src, std::size_t n)
{
    // The payload is copied into each successive domain's message
    // buffer: app -> vfs (-> ramfs).
    const uint8_t *cursor = static_cast<const uint8_t *>(src);
    for (auto &buf : msgBufs_) {
        buf.resize(n);
        std::memcpy(buf.data(), cursor, n);
        cursor = buf.data();
        stats_.bytesCopied += n;
        clock_->charge(static_cast<uint64_t>(
            profile_.perByteCycles * static_cast<double>(n)));
    }
}

void
MicrokernelFileApi::marshalOut(void *dst, std::size_t n)
{
    // Reply path: ramfs -> vfs -> app.
    for (std::size_t h = msgBufs_.size(); h-- > 1;) {
        msgBufs_[h - 1].resize(n);
        std::memcpy(msgBufs_[h - 1].data(), msgBufs_[h].data(), n);
        stats_.bytesCopied += n;
        clock_->charge(static_cast<uint64_t>(
            profile_.perByteCycles * static_cast<double>(n)));
    }
    std::memcpy(dst, msgBufs_[0].data(), n);
    stats_.bytesCopied += n;
    clock_->charge(static_cast<uint64_t>(profile_.perByteCycles *
                                         static_cast<double>(n)));
}

int
MicrokernelFileApi::open(const char *path, int flags)
{
    chargeRpc(std::strlen(path) + 8);
    return inner_->open(path, flags);
}

int
MicrokernelFileApi::close(int fd)
{
    chargeRpc(8);
    return inner_->close(fd);
}

int64_t
MicrokernelFileApi::read(int fd, void *buf, std::size_t n)
{
    chargeRpc(16);
    chargeBackendBlocks(n);
    auto &server_buf = msgBufs_.back();
    server_buf.resize(n);
    const int64_t got = inner_->read(fd, server_buf.data(), n);
    if (got > 0)
        marshalOut(buf, static_cast<std::size_t>(got));
    return got;
}

int64_t
MicrokernelFileApi::write(int fd, const void *buf, std::size_t n)
{
    chargeRpc(16);
    chargeBackendBlocks(n);
    marshalIn(buf, n);
    return inner_->write(fd, msgBufs_.back().data(), n);
}

int64_t
MicrokernelFileApi::pread(int fd, void *buf, std::size_t n,
                          uint64_t off)
{
    chargeRpc(24);
    chargeBackendBlocks(n);
    auto &server_buf = msgBufs_.back();
    server_buf.resize(n);
    const int64_t got = inner_->pread(fd, server_buf.data(), n, off);
    if (got > 0)
        marshalOut(buf, static_cast<std::size_t>(got));
    return got;
}

int64_t
MicrokernelFileApi::pwrite(int fd, const void *buf, std::size_t n,
                           uint64_t off)
{
    chargeRpc(24);
    chargeBackendBlocks(n);
    marshalIn(buf, n);
    return inner_->pwrite(fd, msgBufs_.back().data(), n, off);
}

int64_t
MicrokernelFileApi::lseek(int fd, int64_t off, int whence)
{
    chargeRpc(24);
    return inner_->lseek(fd, off, whence);
}

int
MicrokernelFileApi::stat(const char *path, libos::VfsStat *st)
{
    chargeRpc(std::strlen(path) + sizeof(*st));
    return inner_->stat(path, st);
}

int
MicrokernelFileApi::fstat(int fd, libos::VfsStat *st)
{
    chargeRpc(8 + sizeof(*st));
    return inner_->fstat(fd, st);
}

int
MicrokernelFileApi::unlink(const char *path)
{
    chargeRpc(std::strlen(path));
    return inner_->unlink(path);
}

int
MicrokernelFileApi::mkdir(const char *path)
{
    chargeRpc(std::strlen(path));
    return inner_->mkdir(path);
}

int
MicrokernelFileApi::ftruncate(int fd, uint64_t size)
{
    chargeRpc(16);
    return inner_->ftruncate(fd, size);
}

int
MicrokernelFileApi::fsync(int fd)
{
    chargeRpc(8);
    return inner_->fsync(fd);
}

int
MicrokernelFileApi::readdir(const char *path, uint64_t idx,
                            libos::VfsDirent *out)
{
    chargeRpc(std::strlen(path) + sizeof(*out));
    return inner_->readdir(path, idx, out);
}

} // namespace cubicleos::baselines
