/**
 * @file
 * Per-cubicle heap sub-allocator.
 *
 * Each isolated cubicle has its own memory sub-allocator (paper §4): fine-
 * grained malloc/free served from page chunks owned by the cubicle. Chunks
 * are obtained from a PageSource — in a running system that is a cross-
 * cubicle call into the ALLOC component, which is exactly why the paper's
 * Fig. 8 shows millions of RAMFS→ALLOC calls for allocation-heavy
 * workloads.
 *
 * Implementation: boundary-tag blocks with an explicit doubly-linked free
 * list, first-fit, coalescing on free, whole-chunk return to the source.
 */

#ifndef CUBICLEOS_MEM_SUBALLOC_H_
#define CUBICLEOS_MEM_SUBALLOC_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "mem/arena.h"

namespace cubicleos::mem {

/** Allocation statistics for one heap. */
struct HeapStats {
    uint64_t allocCalls = 0;
    uint64_t freeCalls = 0;
    uint64_t bytesInUse = 0;
    uint64_t chunksHeld = 0;
    uint64_t chunkRequests = 0; ///< calls into the page source
    uint64_t staleFrees = 0;    ///< frees of pointers in no held chunk
};

/**
 * Free-list heap allocator over externally provided page chunks.
 *
 * Not thread-safe; each cubicle's heap is used under the runtime's
 * single-threaded-per-cubicle discipline (callers serialise).
 */
class HeapAllocator {
  public:
    /** Obtains a run of pages; an invalid range signals exhaustion. */
    using PageSource = std::function<PageRange(std::size_t pages)>;
    /** Returns a fully free chunk to its owner. */
    using PageReturn = std::function<void(const PageRange &)>;

    /**
     * @param source page-chunk provider (e.g. ALLOC cross-call)
     * @param ret chunk releaser; may be null to never return chunks
     * @param chunk_pages default growth granularity in pages
     */
    HeapAllocator(PageSource source, PageReturn ret,
                  std::size_t chunk_pages = 16);

    ~HeapAllocator();

    HeapAllocator(const HeapAllocator &) = delete;
    HeapAllocator &operator=(const HeapAllocator &) = delete;

    /**
     * Allocates @p size bytes aligned to 16.
     * @return pointer, or nullptr when the page source is exhausted.
     */
    void *alloc(std::size_t size);

    /** Allocates zero-initialised memory. */
    void *allocZeroed(std::size_t size);

    /**
     * Frees a pointer returned by alloc(); nullptr is a no-op. A
     * pointer lying in no chunk this allocator currently holds is
     * ignored (counted in HeapStats::staleFrees): after a cubicle
     * crash + restart, teardown code legitimately releases handles
     * that predate the fresh heap, and those must not be treated as
     * corruption.
     */
    void free(void *ptr);

    /** True if @p ptr lies inside a chunk this allocator holds. */
    bool owns(const void *ptr) const;

    /** Usable payload size of an allocated block. */
    std::size_t usableSize(const void *ptr) const;

    const HeapStats &stats() const { return stats_; }

    /**
     * Replaces the page source/return functions. Used by the boot code
     * to reroute chunk requests through the ALLOC component once it is
     * up; chunks already held are still returned through the new
     * PageReturn, so callers must ensure it accepts them.
     */
    void setSource(PageSource source, PageReturn ret)
    {
        source_ = std::move(source);
        return_ = std::move(ret);
    }

    /** Verifies heap invariants; returns false on corruption. */
    bool checkIntegrity() const;

  private:
    struct BlockHdr;
    struct Chunk {
        PageRange range;
    };

    BlockHdr *findFit(std::size_t need);
    void addChunk(std::size_t pages);
    void unlinkFree(BlockHdr *b);
    void pushFree(BlockHdr *b);

    PageSource source_;
    PageReturn return_;
    std::size_t chunkPages_;
    std::vector<Chunk> chunks_;
    BlockHdr *freeHead_ = nullptr;
    HeapStats stats_;
};

} // namespace cubicleos::mem

#endif // CUBICLEOS_MEM_SUBALLOC_H_
