/**
 * @file
 * Page-granular allocator over the simulated address space.
 *
 * The trusted monitor uses one PageAllocator to hand whole-page runs to
 * cubicles (code images, per-cubicle stacks, heap chunks). Every
 * allocation tags the pages with the owner's MPK key and records the
 * owner/type in the page metadata map, enforcing the paper's rule that
 * pages are assigned an owner and type at allocation time (§5.3).
 */

#ifndef CUBICLEOS_MEM_ARENA_H_
#define CUBICLEOS_MEM_ARENA_H_

#include <cstddef>
#include <map>

#include "hw/page_table.h"
#include "mem/page_meta.h"

namespace cubicleos::mem {

/** A run of contiguous pages handed out by the PageAllocator. */
struct PageRange {
    std::size_t first = 0; ///< index of the first page
    std::size_t count = 0; ///< number of pages
    std::byte *ptr = nullptr; ///< host pointer to the first byte

    bool valid() const { return ptr != nullptr && count > 0; }
    std::size_t sizeBytes() const { return count * hw::kPageSize; }
};

/**
 * First-fit free-list allocator of page runs.
 *
 * Not thread-safe by itself; the monitor serialises calls.
 */
class PageAllocator {
  public:
    /**
     * Manages all pages of @p space, recording ownership in @p meta.
     *
     * @param reserve_first number of leading pages kept out of the pool
     *        (the monitor's own data lives there).
     */
    PageAllocator(hw::AddressSpace *space, PageMetaMap *meta,
                  std::size_t reserve_first = 0);

    /**
     * Allocates @p n contiguous pages for cubicle @p owner.
     *
     * Pages are mapped with @p perms, tagged with MPK key @p pkey, and
     * recorded as @p type in the metadata map. Returns an invalid range
     * when the pool is exhausted.
     */
    PageRange allocPages(std::size_t n, Cid owner, PageType type,
                         uint8_t perms, uint8_t pkey);

    /** Returns a previously allocated range to the pool. */
    void freePages(const PageRange &range);

    /** Pages currently available in the pool. */
    std::size_t freePageCount() const;

    /** Total pages handed out and not yet freed. */
    std::size_t usedPageCount() const { return used_; }

  private:
    hw::AddressSpace *space_;
    PageMetaMap *meta_;
    /** free runs: first page -> count, coalesced on free */
    std::map<std::size_t, std::size_t> freeRuns_;
    std::size_t used_ = 0;
};

} // namespace cubicleos::mem

#endif // CUBICLEOS_MEM_ARENA_H_
