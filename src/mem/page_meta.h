/**
 * @file
 * Per-page ownership metadata.
 *
 * CubicleOS keeps a page metadata map that identifies, for any page, its
 * owning cubicle and its type (code, global data, stack or heap) so the
 * monitor's trap handler can locate the right window-descriptor array in
 * O(1) time (paper §5.3, step ❷ of the trap-and-map scheme). Pages are
 * strictly assigned an owner and type at allocation time.
 */

#ifndef CUBICLEOS_MEM_PAGE_META_H_
#define CUBICLEOS_MEM_PAGE_META_H_

#include <cstdint>
#include <vector>

#include "hw/relaxed_atomic.h"

namespace cubicleos {

/** Cubicle identifier. IDs are dense and known at link time. */
using Cid = uint16_t;

/** Sentinel: page or resource not owned by any cubicle. */
inline constexpr Cid kNoCubicle = 0xFFFF;

namespace mem {

/** Classification of a page's contents, set at allocation time. */
enum class PageType : uint8_t {
    kFree,
    kCode,
    kGlobal,
    kStack,
    kHeap,
};

/** Returns a human-readable page-type name. */
const char *pageTypeName(PageType type);

/**
 * Metadata for one page.
 *
 * Fields are word-atomic (RelaxedAtomic): the trap-and-map handler
 * reads owner/type without holding the page-pool lock that writers
 * (allocation/free) hold. A fault racing a free of the same page sees
 * either the old owner or kNoCubicle — both are handled; what never
 * happens is a torn read.
 */
struct PageMeta {
    hw::RelaxedAtomic<Cid> owner = kNoCubicle;
    hw::RelaxedAtomic<PageType> type = PageType::kFree;
};

/**
 * O(1) page → (owner, type) map over a simulated address space.
 *
 * Indexed by page number; one entry per page of the AddressSpace.
 */
class PageMetaMap {
  public:
    explicit PageMetaMap(std::size_t num_pages) : meta_(num_pages) {}

    PageMeta &at(std::size_t page) { return meta_[page]; }
    const PageMeta &at(std::size_t page) const { return meta_[page]; }

    std::size_t numPages() const { return meta_.size(); }

    /** Assigns @p n pages starting at @p first to @p owner / @p type. */
    void assign(std::size_t first, std::size_t n, Cid owner, PageType type)
    {
        for (std::size_t i = first; i < first + n; ++i)
            meta_[i] = PageMeta{owner, type};
    }

    /** Releases @p n pages starting at @p first. */
    void release(std::size_t first, std::size_t n)
    {
        for (std::size_t i = first; i < first + n; ++i)
            meta_[i] = PageMeta{};
    }

    /** Counts pages currently owned by @p owner. */
    std::size_t countOwnedBy(Cid owner) const
    {
        std::size_t n = 0;
        for (const auto &m : meta_)
            if (m.owner == owner)
                ++n;
        return n;
    }

  private:
    std::vector<PageMeta> meta_;
};

} // namespace mem
} // namespace cubicleos

#endif // CUBICLEOS_MEM_PAGE_META_H_
