#include "mem/arena.h"

#include <cassert>

namespace cubicleos::mem {

PageAllocator::PageAllocator(hw::AddressSpace *space, PageMetaMap *meta,
                             std::size_t reserve_first)
    : space_(space), meta_(meta)
{
    assert(reserve_first <= space->numPages());
    if (reserve_first < space->numPages()) {
        freeRuns_[reserve_first] = space->numPages() - reserve_first;
    }
}

PageRange
PageAllocator::allocPages(std::size_t n, Cid owner, PageType type,
                          uint8_t perms, uint8_t pkey)
{
    if (n == 0)
        return {};
    for (auto it = freeRuns_.begin(); it != freeRuns_.end(); ++it) {
        if (it->second < n)
            continue;
        const std::size_t first = it->first;
        const std::size_t leftover = it->second - n;
        freeRuns_.erase(it);
        if (leftover > 0)
            freeRuns_[first + n] = leftover;

        space_->map(first, n, perms, pkey);
        meta_->assign(first, n, owner, type);
        used_ += n;
        return PageRange{first, n, space_->pageAt(first)};
    }
    return {};
}

void
PageAllocator::freePages(const PageRange &range)
{
    if (!range.valid())
        return;
    space_->unmap(range.first, range.count);
    meta_->release(range.first, range.count);
    used_ -= range.count;

    // Insert and coalesce with neighbours.
    auto [it, inserted] = freeRuns_.emplace(range.first, range.count);
    assert(inserted);
    if (it != freeRuns_.begin()) {
        auto prev = std::prev(it);
        if (prev->first + prev->second == it->first) {
            prev->second += it->second;
            freeRuns_.erase(it);
            it = prev;
        }
    }
    auto next = std::next(it);
    if (next != freeRuns_.end() && it->first + it->second == next->first) {
        it->second += next->second;
        freeRuns_.erase(next);
    }
}

std::size_t
PageAllocator::freePageCount() const
{
    std::size_t n = 0;
    for (const auto &[first, count] : freeRuns_)
        n += count;
    return n;
}

} // namespace cubicleos::mem
