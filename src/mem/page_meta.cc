#include "mem/page_meta.h"

namespace cubicleos::mem {

const char *
pageTypeName(PageType type)
{
    switch (type) {
      case PageType::kFree: return "free";
      case PageType::kCode: return "code";
      case PageType::kGlobal: return "global";
      case PageType::kStack: return "stack";
      case PageType::kHeap: return "heap";
    }
    return "unknown";
}

} // namespace cubicleos::mem
