#include "mem/suballoc.h"

#include <cassert>
#include <cstring>

namespace cubicleos::mem {

namespace {

constexpr std::size_t kAlign = 16;
constexpr std::size_t kMinSplit = 48; // header + 32-byte payload

constexpr std::size_t
alignUp(std::size_t n)
{
    return (n + kAlign - 1) & ~(kAlign - 1);
}

} // namespace

/**
 * Block layout: a 32-byte header followed by the payload. Blocks within a
 * chunk form an implicit list via @c size; @c prevSize allows backwards
 * coalescing. Free blocks additionally participate in the explicit free
 * list through the @c next/@c prev pointers (stored in the header, not
 * the payload, so checkIntegrity can always validate links).
 */
struct HeapAllocator::BlockHdr {
    uint64_t size;       ///< total block size including header
    uint64_t prevSize;   ///< size of the previous block, 0 if first
    uint32_t chunkIdx;   ///< owning chunk index
    uint8_t free;        ///< 1 if on the free list
    uint8_t last;        ///< 1 if last block in its chunk
    uint16_t magic;      ///< corruption canary
    BlockHdr *next;      ///< free-list link (valid when free)
    BlockHdr *prev;      ///< free-list link (valid when free)
    uint64_t pad_;       ///< keeps payload 16-byte aligned

    static constexpr uint16_t kMagic = 0xCB1C;

    std::byte *payload() { return reinterpret_cast<std::byte *>(this + 1); }
    const std::byte *payload() const
    {
        return reinterpret_cast<const std::byte *>(this + 1);
    }

    BlockHdr *nextInChunk()
    {
        return last ? nullptr
                    : reinterpret_cast<BlockHdr *>(
                          reinterpret_cast<std::byte *>(this) + size);
    }

    BlockHdr *prevInChunk()
    {
        return prevSize == 0
            ? nullptr
            : reinterpret_cast<BlockHdr *>(
                  reinterpret_cast<std::byte *>(this) - prevSize);
    }
};

namespace {
constexpr std::size_t kHdrSize = 48;
} // namespace

HeapAllocator::HeapAllocator(PageSource source, PageReturn ret,
                             std::size_t chunk_pages)
    : source_(std::move(source)), return_(std::move(ret)),
      chunkPages_(chunk_pages)
{
    static_assert(sizeof(BlockHdr) == kHdrSize,
                  "header must keep payload 16-byte aligned");
    assert(chunkPages_ > 0);
}

HeapAllocator::~HeapAllocator()
{
    if (!return_)
        return;
    for (auto &chunk : chunks_) {
        if (chunk.range.valid())
            return_(chunk.range);
    }
}

void
HeapAllocator::pushFree(BlockHdr *b)
{
    b->free = 1;
    b->next = freeHead_;
    b->prev = nullptr;
    if (freeHead_)
        freeHead_->prev = b;
    freeHead_ = b;
}

void
HeapAllocator::unlinkFree(BlockHdr *b)
{
    if (b->prev)
        b->prev->next = b->next;
    else
        freeHead_ = b->next;
    if (b->next)
        b->next->prev = b->prev;
    b->free = 0;
    b->next = nullptr;
    b->prev = nullptr;
}

void
HeapAllocator::addChunk(std::size_t pages)
{
    ++stats_.chunkRequests;
    PageRange range = source_(pages);
    if (!range.valid())
        return;

    auto *block = reinterpret_cast<BlockHdr *>(range.ptr);
    block->size = range.sizeBytes();
    block->prevSize = 0;
    block->chunkIdx = static_cast<uint32_t>(chunks_.size());
    block->last = 1;
    block->magic = BlockHdr::kMagic;
    pushFree(block);

    chunks_.push_back(Chunk{range});
    ++stats_.chunksHeld;
}

HeapAllocator::BlockHdr *
HeapAllocator::findFit(std::size_t need)
{
    for (BlockHdr *b = freeHead_; b; b = b->next) {
        if (b->size >= need)
            return b;
    }
    return nullptr;
}

void *
HeapAllocator::alloc(std::size_t size)
{
    ++stats_.allocCalls;
    if (size == 0)
        size = 1;
    const std::size_t need = alignUp(size) + kHdrSize;

    BlockHdr *b = findFit(need);
    if (!b) {
        const std::size_t grow_pages =
            std::max(chunkPages_, hw::pagesFor(need));
        addChunk(grow_pages);
        b = findFit(need);
        if (!b)
            return nullptr;
    }
    unlinkFree(b);

    // Split if the remainder is big enough to be useful.
    if (b->size >= need + kMinSplit + kHdrSize) {
        auto *rest = reinterpret_cast<BlockHdr *>(
            reinterpret_cast<std::byte *>(b) + need);
        rest->size = b->size - need;
        rest->prevSize = need;
        rest->chunkIdx = b->chunkIdx;
        rest->last = b->last;
        rest->magic = BlockHdr::kMagic;
        if (BlockHdr *after = rest->nextInChunk())
            after->prevSize = rest->size;
        pushFree(rest);
        b->size = need;
        b->last = 0;
    }
    stats_.bytesInUse += b->size;
    return b->payload();
}

void *
HeapAllocator::allocZeroed(std::size_t size)
{
    void *p = alloc(size);
    if (p)
        std::memset(p, 0, usableSize(p));
    return p;
}

bool
HeapAllocator::owns(const void *ptr) const
{
    const auto *p = static_cast<const std::byte *>(ptr);
    for (const auto &chunk : chunks_) {
        if (!chunk.range.valid())
            continue; // tombstoned (returned) chunk
        if (p >= chunk.range.ptr &&
            p < chunk.range.ptr + chunk.range.sizeBytes())
            return true;
    }
    return false;
}

void
HeapAllocator::free(void *ptr)
{
    if (!ptr)
        return;
    ++stats_.freeCalls;
    if (!owns(ptr)) {
        ++stats_.staleFrees;
        return;
    }
    auto *b = reinterpret_cast<BlockHdr *>(ptr) - 1;
    assert(b->magic == BlockHdr::kMagic && "heap corruption or bad free");
    assert(!b->free && "double free");
    stats_.bytesInUse -= b->size;

    // Coalesce with the following block.
    if (BlockHdr *after = b->nextInChunk(); after && after->free) {
        unlinkFree(after);
        b->size += after->size;
        b->last = after->last;
        if (BlockHdr *aa = b->nextInChunk())
            aa->prevSize = b->size;
    }
    // Coalesce with the preceding block.
    if (BlockHdr *before = b->prevInChunk(); before && before->free) {
        unlinkFree(before);
        before->size += b->size;
        before->last = b->last;
        if (BlockHdr *aa = before->nextInChunk())
            aa->prevSize = before->size;
        b = before;
    }
    pushFree(b);

    // Return fully free chunks to the source.
    Chunk &chunk = chunks_[b->chunkIdx];
    if (return_ && b->prevSize == 0 && b->last &&
        b->size == chunk.range.sizeBytes() && chunks_.size() > 1) {
        unlinkFree(b);
        return_(chunk.range);
        chunk.range = PageRange{}; // tombstone; indices stay stable
        --stats_.chunksHeld;
    }
}

std::size_t
HeapAllocator::usableSize(const void *ptr) const
{
    if (!ptr)
        return 0;
    const auto *b = reinterpret_cast<const BlockHdr *>(ptr) - 1;
    return b->size - kHdrSize;
}

bool
HeapAllocator::checkIntegrity() const
{
    // Walk every chunk's implicit list.
    for (const auto &chunk : chunks_) {
        if (!chunk.range.valid())
            continue;
        const std::byte *end = chunk.range.ptr + chunk.range.sizeBytes();
        const auto *b =
            reinterpret_cast<const BlockHdr *>(chunk.range.ptr);
        uint64_t prev_size = 0;
        while (true) {
            if (b->magic != BlockHdr::kMagic)
                return false;
            if (b->prevSize != prev_size)
                return false;
            const std::byte *next =
                reinterpret_cast<const std::byte *>(b) + b->size;
            if (next > end)
                return false;
            if (b->last) {
                if (next != end)
                    return false;
                break;
            }
            prev_size = b->size;
            b = reinterpret_cast<const BlockHdr *>(next);
        }
    }
    // Free-list links must be consistent.
    for (const BlockHdr *b = freeHead_; b; b = b->next) {
        if (!b->free || b->magic != BlockHdr::kMagic)
            return false;
        if (b->next && b->next->prev != b)
            return false;
    }
    return true;
}

} // namespace cubicleos::mem
