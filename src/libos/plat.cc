#include "libos/plat.h"

#include <cstdio>

namespace cubicleos::libos {

uint64_t
PlatComponent::nowNs() const
{
    // Wall progress = real elapsed time + modelled hardware cycles.
    const auto real = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - epoch_)
                          .count();
    const double modelled =
        hw::CycleClock::toNanoseconds(sys()->clock().read());
    return static_cast<uint64_t>(real) + static_cast<uint64_t>(modelled);
}

void
PlatComponent::registerExports(core::Exporter &exp)
{
    exp.fn<void(const char *, std::size_t)>(
        "plat_console_write", [this](const char *s, std::size_t n) {
            sys()->touch(s, n, hw::Access::kRead);
            console_.append(s, n);
            if (echo_)
                std::fwrite(s, 1, n, stdout);
        });

    exp.fn<uint64_t()>("plat_ticks_ns", [this] { return nowNs(); });

    exp.fn<void()>("plat_yield", [this] {
        // Host-OS yield: charged as a syscall on the Linux host.
        sys()->clock().charge(hw::cost::kSyscall);
    });
}

} // namespace cubicleos::libos
