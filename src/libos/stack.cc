#include "libos/stack.h"

#include "libos/alloc.h"
#include "libos/boot.h"
#include "libos/libc.h"
#include "libos/lwip.h"
#include "libos/netdev.h"
#include "libos/plat.h"
#include "libos/ramfs.h"
#include "libos/random.h"
#include "libos/shared_utils.h"
#include "libos/time.h"
#include "libos/vfscore.h"

namespace cubicleos::libos {

void
addLibosComponents(core::System &sys, const StackOptions &opts)
{
    // Registration order is dependency order (Unikraft link order):
    // platform and allocator first, stacks above them.
    sys.addComponent(std::make_unique<PlatComponent>(opts.echoConsole));
    sys.addComponent(std::make_unique<AllocComponent>());
    sys.addComponent(std::make_unique<TimeComponent>());
    sys.addComponent(std::make_unique<VfsComponent>());
    sys.addComponent(std::make_unique<RamfsComponent>());
    if (opts.withNet) {
        sys.addComponent(std::make_unique<NetdevComponent>(opts.wire));
        sys.addComponent(std::make_unique<LwipComponent>());
    }
    // Shared cubicles (the paper's deployments use four: newlibc and
    // the random driver explicitly, plus stateless helpers).
    sys.addComponent(std::make_unique<LibcComponent>());
    sys.addComponent(std::make_unique<RandomComponent>(opts.randomSeed));
    sys.addComponent(std::make_unique<CtypeComponent>());
    sys.addComponent(std::make_unique<UkmathComponent>());
}

void
finishBoot(core::System &sys)
{
    sys.addComponent(std::make_unique<BootComponent>());
    sys.boot();
}

} // namespace cubicleos::libos
