/**
 * @file
 * The shared LIBC cubicle (newlibc stand-in).
 *
 * Small, state-light primitives used by every component. As a shared
 * cubicle it executes with the caller's privileges, stack and heap
 * (paper §3 step ❹): its checked memory primitives consult the MPK
 * state of the *calling* cubicle, which is exactly how Fig. 2's memcpy
 * accesses both the VFS window and RAMFS's own buffer.
 */

#ifndef CUBICLEOS_LIBOS_LIBC_H_
#define CUBICLEOS_LIBOS_LIBC_H_

#include "core/system.h"

namespace cubicleos::libos {

/** The shared LIBC component. */
class LibcComponent : public core::Component {
  public:
    core::ComponentSpec spec() const override
    {
        core::ComponentSpec s;
        s.name = "libc";
        s.kind = core::CubicleKind::kShared;
        return s;
    }

    void registerExports(core::Exporter &exp) override;
};

/**
 * Resolved handle to the LIBC exports; cheap to copy. Every call runs
 * with the current cubicle's privileges (no trampoline).
 */
class Libc {
  public:
    Libc() = default;
    explicit Libc(core::System &sys);

    /** Checked memcpy across cubicle memory. */
    void memcpy(void *dst, const void *src, std::size_t n) const
    {
        memcpy_(dst, src, n);
    }
    /** Checked memset. */
    void memset(void *dst, int v, std::size_t n) const
    {
        memset_(dst, v, n);
    }
    /** Checked strlen (bounded by @p max). */
    std::size_t strnlen(const char *s, std::size_t max) const
    {
        return strnlen_(s, max);
    }
    /** Checked strcmp of NUL-terminated strings (bounded). */
    int strcmp(const char *a, const char *b) const
    {
        return strcmp_(a, b);
    }

  private:
    core::CrossFn<void(void *, const void *, std::size_t)> memcpy_;
    core::CrossFn<void(void *, int, std::size_t)> memset_;
    core::CrossFn<std::size_t(const char *, std::size_t)> strnlen_;
    core::CrossFn<int(const char *, const char *)> strcmp_;
};

} // namespace cubicleos::libos

#endif // CUBICLEOS_LIBOS_LIBC_H_
