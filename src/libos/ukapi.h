/**
 * @file
 * CubicleFileApi: the application-side porting glue for file I/O.
 *
 * This class is the analogue of the paper's per-application porting
 * effort (SQLite: 620 SLOC, NGINX: 390 SLOC): every VFS call is
 * bracketed by grant-layer window management so the callee cubicles
 * can access the caller's buffers, following Fig. 2's open→call→close
 * pattern and the nested-call rule (the caller opens the window for
 * both VFSCORE and the backend, §5.6).
 *
 * Paths and small out-structures are staged in an XferArena — a
 * dedicated, page-aligned transfer page windowed for the whole file
 * stack — so unrelated caller data never shares a windowed page (the
 * alignment discipline of §5.3).
 *
 * After each call the buffer is touched once, modelling the caller's
 * next direct access: on hardware that access would trap and lazily
 * retag the page back — the cost at the heart of the Fig. 6 MPK
 * overhead.
 */

#ifndef CUBICLEOS_LIBOS_UKAPI_H_
#define CUBICLEOS_LIBOS_UKAPI_H_

#include "core/system.h"
#include "libos/fileapi.h"
#include "libos/grant.h"

namespace cubicleos::libos {

/** File API bound to cross-cubicle VFS calls with window management. */
class CubicleFileApi : public FileApi {
  public:
    /**
     * Binds to @p sys's VFS; must be constructed while executing inside
     * the application cubicle (allocates the transfer arena there).
     *
     * @param backend_name the mounted backend whose cubicle also needs
     *        window access (nested-call rule), e.g. "ramfs".
     * @param hot_windows keep buffer windows open across calls and
     *        skip the post-call reclaim, implementing the paper's
     *        proposed optimisation for frequently-used windows (§8:
     *        "window-specific tags that reduce overhead for
     *        frequently-used windows"). Trades temporal-isolation
     *        granularity for fewer traps; measured by
     *        bench_ablation_hotwindow.
     */
    CubicleFileApi(core::System &sys, const std::string &backend_name,
                   bool hot_windows = false);
    ~CubicleFileApi() override = default;

    int open(const char *path, int flags) override;
    int close(int fd) override;
    int64_t read(int fd, void *buf, std::size_t n) override;
    int64_t write(int fd, const void *buf, std::size_t n) override;
    int64_t pread(int fd, void *buf, std::size_t n, uint64_t off) override;
    int64_t pwrite(int fd, const void *buf, std::size_t n,
                   uint64_t off) override;
    int64_t lseek(int fd, int64_t off, int whence) override;
    int stat(const char *path, VfsStat *st) override;
    int fstat(int fd, VfsStat *st) override;
    int unlink(const char *path) override;
    int mkdir(const char *path) override;
    int ftruncate(int fd, uint64_t size) override;
    int fsync(int fd) override;
    int readdir(const char *path, uint64_t idx, VfsDirent *out) override;

    /**
     * Borrows a grant-protected span of the file's backing blocks at
     * @p off (the zero-copy sendfile primitive): the backend pins the
     * blocks and opens a window over them for cubicle @p peer. The
     * backend may merge physically-contiguous blocks into one span
     * (readahead); @p max_len caps the span length (0 = no caller
     * cap). The span stays valid until release(fd, out->token).
     * Returns 0 (span in @p out, len 0 at EOF) or a negative VfsErr.
     */
    int borrow(int fd, uint64_t off, core::Cid peer, std::size_t max_len,
               VfsSpan *out);
    /** Returns a borrowed span; the backend revokes and unpins. */
    int release(int fd, uint64_t token);

    /**
     * Crash teardown (DESIGN.md §15): forgets the transfer arena and
     * I/O window without releasing them. Call from Component::teardown
     * after the owning cubicle was destroyed — the monitor already
     * reclaimed those pages and windows, and the remembered ids may
     * have been reissued. The destructor is then a no-op.
     */
    void abandon() noexcept
    {
        xfer_.abandon();
        ioWin_.abandon();
    }

  private:
    /** Copies a path into the transfer arena, returns the staged copy. */
    const char *stagePath(const char *path);

    /**
     * Runs @p fn, mapping core::PeerFault to kErrPeerFault: a
     * destroyed VFSCORE or backend cubicle (DESIGN.md §15) surfaces as
     * an error return, not an exception — application code predating
     * the lifecycle subsystem already handles negative VfsErr codes.
     */
    template <typename R, typename Fn>
    R guarded(Fn &&fn)
    {
        try {
            return fn();
        } catch (const core::PeerFault &) {
            return static_cast<R>(kErrPeerFault);
        }
    }

    core::System &sys_;
    core::Cid vfsCid_;
    core::Cid backendCid_;
    PeerSet peers_;    ///< {VFSCORE, backend}: the nested-call ACL set
    bool hotWindows_ = false;
    XferArena xfer_;   ///< staging page for paths and out-structs
    GrantWindow ioWin_; ///< per-I/O buffer window (hot-pooled if asked)

    core::CrossFn<int(const char *, int)> open_;
    core::CrossFn<int(int)> close_;
    core::CrossFn<int64_t(int, void *, std::size_t)> read_;
    core::CrossFn<int64_t(int, const void *, std::size_t)> write_;
    core::CrossFn<int64_t(int, void *, std::size_t, uint64_t)> pread_;
    core::CrossFn<int64_t(int, const void *, std::size_t, uint64_t)>
        pwrite_;
    core::CrossFn<int64_t(int, int64_t, int)> lseek_;
    core::CrossFn<int(int, VfsStat *)> fstat_;
    core::CrossFn<int(const char *, VfsStat *)> stat_;
    core::CrossFn<int(const char *)> unlink_;
    core::CrossFn<int(const char *)> mkdir_;
    core::CrossFn<int(const char *, uint64_t, VfsDirent *)> readdir_;
    core::CrossFn<int(int, uint64_t)> ftruncate_;
    core::CrossFn<int(int)> fsync_;
    core::CrossFn<int(int, uint64_t, core::Cid, std::size_t, VfsSpan *)>
        borrow_;
    core::CrossFn<int(int, uint64_t)> release_;
};

/**
 * Mounts @p backend at the VFS root. Helper used by boot code; must run
 * inside a cubicle (usually the application's or BOOT's).
 */
int mountRoot(core::System &sys, const std::string &backend);

} // namespace cubicleos::libos

#endif // CUBICLEOS_LIBOS_UKAPI_H_
