/**
 * @file
 * A compact TCP/IPv4 stack (LWIP stand-in).
 *
 * Implements enough of TCP for the paper's NGINX experiment: the
 * three-way handshake, cumulative ACKs, receiver flow control with a
 * bounded receive buffer (the 64 kB socket buffer whose exhaustion
 * produces the latency knee in Fig. 7), MSS segmentation, FIN
 * teardown and a coarse retransmission timer. Internet checksums are
 * computed and verified on every segment.
 *
 * The class is transport-only and driver-agnostic: input() consumes
 * raw IP packets, pollOutput() emits them. It is used both inside the
 * LWIP cubicle (LwipComponent) and stand-alone by the benchmark
 * client, exercising identical protocol code on both ends of the wire.
 */

#ifndef CUBICLEOS_LIBOS_TCPIP_H_
#define CUBICLEOS_LIBOS_TCPIP_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

namespace cubicleos::libos {

/** Errors returned by the socket API (negative). */
enum NetErr : int {
    kNetOk = 0,
    kNetAgain = -11,    ///< would block
    kNetBadFd = -9,
    kNetInUse = -98,    ///< port already bound
    kNetRefused = -111, ///< no listener at destination
    kNetNotConn = -107,
    kNetBufFull = -105, ///< send buffer exhausted

    /**
     * The network-stack cubicle is destroyed or draining (DESIGN.md
     * §15): the call never reached the stack. Connection state is
     * gone; callers drop the connection and may retry after a
     * restart. Numerically equal to core::kPeerFaultVerdict so ring
     * verdicts pass through unconverted.
     */
    kNetPeerFault = -131,
};

/** Configuration of one stack instance. */
struct TcpConfig {
    uint32_t ipAddr = 0x0A000001; ///< 10.0.0.1
    std::size_t sndBuf = 64 * 1024;
    std::size_t rcvBuf = 64 * 1024;
    uint16_t mss = 1460;
    uint64_t rtoNs = 200'000'000; ///< retransmission timeout
};

/** Transport statistics. */
struct TcpStats {
    uint64_t segsIn = 0;
    uint64_t segsOut = 0;
    uint64_t bytesIn = 0;
    uint64_t bytesOut = 0;
    uint64_t retransmits = 0;
    uint64_t checksumDrops = 0;
    /** Payload copies on the send path (app buf → queue, queue → seg). */
    uint64_t payloadCopies = 0;
    uint64_t payloadCopyBytes = 0;
    /** Segments whose payload was taken straight from a borrowed span. */
    uint64_t zcSegsOut = 0;
    uint64_t zcBytesOut = 0;
};

/**
 * One TCP/IP stack endpoint with a BSD-flavoured non-blocking API.
 */
class TcpIpStack {
  public:
    explicit TcpIpStack(const TcpConfig &cfg = {});
    ~TcpIpStack();

    TcpIpStack(const TcpIpStack &) = delete;
    TcpIpStack &operator=(const TcpIpStack &) = delete;

    // --- socket API (non-blocking) ---
    int socket();
    int bind(int fd, uint16_t port);
    int listen(int fd, int backlog);
    /** @return new connection fd, or kNetAgain. */
    int accept(int fd);
    int connect(int fd, uint32_t dst_ip, uint16_t dst_port);
    /** @return bytes queued (may be < n), or a NetErr. */
    int64_t send(int fd, const void *buf, std::size_t n);
    /**
     * Queues an external span for zero-copy transmission: the bytes
     * are not copied into the send queue — segments are built straight
     * from @p span (the scatter-gather DMA analogue). All-or-nothing:
     * @return n once the whole span is queued, kNetAgain when the send
     * buffer cannot take it yet, or another NetErr.
     *
     * The caller must keep @p span valid (and, across cubicles,
     * granted) until zeroCopyDone() accounts for it: retransmissions
     * re-read the span until every byte is acknowledged.
     */
    int64_t sendZero(int fd, const void *span, std::size_t n);
    /**
     * Number of zero-copy spans fully acknowledged since the last
     * call (consumed on read). Spans complete in FIFO submission
     * order, so the caller can release its oldest outstanding borrows.
     */
    int64_t zeroCopyDone(int fd);
    /** @return bytes read, 0 on orderly close, or kNetAgain. */
    int64_t recv(int fd, void *buf, std::size_t n);
    int close(int fd);
    /** True once the three-way handshake completed. */
    bool isEstablished(int fd) const;
    /** True when all sent data has been acknowledged. */
    bool sendDrained(int fd) const;

    // --- driver interface ---
    /** Delivers one raw IP packet from the wire. */
    void input(const uint8_t *pkt, std::size_t len);
    /** Emits every currently sendable segment through @p tx. */
    void pollOutput(
        const std::function<void(const uint8_t *, std::size_t)> &tx);
    /** Advances timers (retransmission). */
    void tick(uint64_t now_ns);

    const TcpStats &stats() const { return stats_; }
    const TcpConfig &config() const { return cfg_; }

    /**
     * Installs a hook invoked with the byte count of every payload
     * copy the stack performs (LWIP wires it to the system-wide
     * data-copy counters; the stand-alone bench client leaves it
     * unset).
     */
    void setCopyHook(std::function<void(std::size_t)> hook)
    {
        copyHook_ = std::move(hook);
    }

  private:
    struct Conn;
    struct Impl;

    Conn *conn(int fd) const;
    void countCopy(std::size_t bytes);

    std::unique_ptr<Impl> impl_;
    TcpConfig cfg_;
    TcpStats stats_;
    std::function<void(std::size_t)> copyHook_;
};

} // namespace cubicleos::libos

#endif // CUBICLEOS_LIBOS_TCPIP_H_
