#include "libos/alloc.h"

namespace cubicleos::libos {

void
AllocComponent::registerExports(core::Exporter &exp)
{
    // Allocates @p n pages owned by (and tagged for) cubicle @p owner.
    // ALLOC manages the pool; ownership assignment is performed by the
    // trusted monitor, which is the only entity allowed to tag pages.
    exp.fn<void *(core::Cid, std::size_t)>(
        "alloc_pages", [this](core::Cid owner, std::size_t n) -> void * {
            auto range = sys()->monitor().allocPagesFor(
                owner, n, mem::PageType::kHeap);
            if (!range.valid())
                return nullptr;
            pagesServed_ += n;
            return range.ptr;
        });

    exp.fn<void(void *, std::size_t)>(
        "free_pages", [this](void *ptr, std::size_t n) {
            auto &space = sys()->monitor().space();
            if (!space.contains(ptr))
                return;
            mem::PageRange range{space.pageIndexOf(ptr), n,
                                 static_cast<std::byte *>(ptr)};
            sys()->monitor().freePages(range);
        });
}

void
wireHeapsThroughAlloc(core::System &sys)
{
    const core::Cid alloc_cid = sys.cidOf("alloc");
    auto alloc_pages =
        sys.resolve<void *(core::Cid, std::size_t)>("alloc",
                                                    "alloc_pages");
    auto free_pages =
        sys.resolve<void(void *, std::size_t)>("alloc", "free_pages");

    for (core::Cid cid = 0;
         cid < static_cast<core::Cid>(sys.cubicleCount()); ++cid) {
        auto &cub = sys.monitor().cubicle(cid);
        if (!cub.isolated() || cid == alloc_cid)
            continue;
        sys.setHeapSource(
            cid,
            [&sys, cid, alloc_pages](std::size_t n) -> mem::PageRange {
                void *p = alloc_pages(cid, n);
                if (!p)
                    return {};
                return mem::PageRange{
                    sys.monitor().space().pageIndexOf(p), n,
                    static_cast<std::byte *>(p)};
            },
            [free_pages](const mem::PageRange &r) {
                free_pages(r.ptr, r.count);
            });
    }
}

} // namespace cubicleos::libos
