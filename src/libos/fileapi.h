/**
 * @file
 * Abstract file API consumed by applications (SQLite/NGINX stand-ins).
 *
 * One interface, several bindings:
 *  - CubicleFileApi (libos/ukapi.h): through cross-cubicle trampolines
 *    with window management — the "ported to CubicleOS" application;
 *    also serves as the Unikraft baseline when the system runs in
 *    IsolationMode::kUnikraft (trampolines become direct calls).
 *  - MicrokernelFileApi (baselines): through message-based IPC.
 *  - LinuxFileApi (baselines): direct calls + syscall cost model.
 */

#ifndef CUBICLEOS_LIBOS_FILEAPI_H_
#define CUBICLEOS_LIBOS_FILEAPI_H_

#include <cstdint>

#include "libos/vfs_types.h"

namespace cubicleos::libos {

/** POSIX-flavoured file API; negative VfsErr codes on failure. */
class FileApi {
  public:
    virtual ~FileApi() = default;

    virtual int open(const char *path, int flags) = 0;
    virtual int close(int fd) = 0;
    virtual int64_t read(int fd, void *buf, std::size_t n) = 0;
    virtual int64_t write(int fd, const void *buf, std::size_t n) = 0;
    virtual int64_t pread(int fd, void *buf, std::size_t n,
                          uint64_t off) = 0;
    virtual int64_t pwrite(int fd, const void *buf, std::size_t n,
                           uint64_t off) = 0;
    virtual int64_t lseek(int fd, int64_t off, int whence) = 0;
    virtual int stat(const char *path, VfsStat *st) = 0;
    virtual int fstat(int fd, VfsStat *st) = 0;
    virtual int unlink(const char *path) = 0;
    virtual int mkdir(const char *path) = 0;
    virtual int ftruncate(int fd, uint64_t size) = 0;
    virtual int fsync(int fd) = 0;
    virtual int readdir(const char *path, uint64_t idx,
                        VfsDirent *out) = 0;
};

} // namespace cubicleos::libos

#endif // CUBICLEOS_LIBOS_FILEAPI_H_
