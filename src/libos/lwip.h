/**
 * @file
 * The LWIP cubicle: the isolated TCP/IP stack component.
 *
 * Wraps TcpIpStack and exports the socket API; exchanges packets with
 * the NETDEV cubicle through cross-cubicle calls over windowed packet
 * buffers. This is the NGINX deployment's hottest edge in the paper
 * (NGINX→LWIP: 44,135 calls; LWIP→NETDEV: 6,991×4 in Fig. 5).
 */

#ifndef CUBICLEOS_LIBOS_LWIP_H_
#define CUBICLEOS_LIBOS_LWIP_H_

#include "core/system.h"
#include "libos/grant.h"
#include "libos/netdev.h"
#include "libos/tcpip.h"

namespace cubicleos::libos {

/** The isolated network-stack component. */
class LwipComponent : public core::Component {
  public:
    explicit LwipComponent(const TcpConfig &cfg = {}) : tcpCfg_(cfg) {}

    core::ComponentSpec spec() const override
    {
        core::ComponentSpec s;
        s.name = "lwip";
        s.kind = core::CubicleKind::kIsolated;
        return s;
    }

    void registerExports(core::Exporter &exp) override;
    void init() override;

    /** Protocol statistics (introspection). */
    const TcpStats &tcpStats() const { return stack_.stats(); }

  private:
    int64_t doPoll(uint64_t now_ns);

    TcpConfig tcpCfg_;
    TcpIpStack stack_{tcpCfg_};
    core::CrossFn<int(const uint8_t *, std::size_t)> netdevTx_;
    core::CrossFn<int64_t(uint8_t *, std::size_t)> netdevRx_;
    uint8_t *rxBuf_ = nullptr;  ///< windowed for NETDEV
    uint8_t *txBuf_ = nullptr;  ///< windowed for NETDEV
    GrantWindow netdevWin_;     ///< persistent grant over both buffers
    uint64_t zcSegsSeen_ = 0;   ///< stack zc counters already mirrored
    uint64_t zcBytesSeen_ = 0;
};

} // namespace cubicleos::libos

#endif // CUBICLEOS_LIBOS_LWIP_H_
